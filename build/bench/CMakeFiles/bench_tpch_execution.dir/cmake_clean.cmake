file(REMOVE_RECURSE
  "CMakeFiles/bench_tpch_execution.dir/bench_tpch_execution.cc.o"
  "CMakeFiles/bench_tpch_execution.dir/bench_tpch_execution.cc.o.d"
  "bench_tpch_execution"
  "bench_tpch_execution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tpch_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
