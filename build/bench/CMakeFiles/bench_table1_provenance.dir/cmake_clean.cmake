file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_provenance.dir/bench_table1_provenance.cc.o"
  "CMakeFiles/bench_table1_provenance.dir/bench_table1_provenance.cc.o.d"
  "bench_table1_provenance"
  "bench_table1_provenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_provenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
