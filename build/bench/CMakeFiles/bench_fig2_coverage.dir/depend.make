# Empty dependencies file for bench_fig2_coverage.
# This may be replaced when dependencies are built.
