file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_coverage.dir/bench_fig2_coverage.cc.o"
  "CMakeFiles/bench_fig2_coverage.dir/bench_fig2_coverage.cc.o.d"
  "bench_fig2_coverage"
  "bench_fig2_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
