
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig2_coverage.cc" "bench/CMakeFiles/bench_fig2_coverage.dir/bench_fig2_coverage.cc.o" "gcc" "bench/CMakeFiles/bench_fig2_coverage.dir/bench_fig2_coverage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/flock_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/flock/CMakeFiles/flock_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/flock_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/flock_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/flock_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flock_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
