file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_provcompress.dir/bench_ablation_provcompress.cc.o"
  "CMakeFiles/bench_ablation_provcompress.dir/bench_ablation_provcompress.cc.o.d"
  "bench_ablation_provcompress"
  "bench_ablation_provcompress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_provcompress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
