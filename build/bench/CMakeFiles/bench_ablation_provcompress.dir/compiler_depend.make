# Empty compiler generated dependencies file for bench_ablation_provcompress.
# This may be replaced when dependencies are built.
