file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_landscape.dir/bench_fig3_landscape.cc.o"
  "CMakeFiles/bench_fig3_landscape.dir/bench_fig3_landscape.cc.o.d"
  "bench_fig3_landscape"
  "bench_fig3_landscape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_landscape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
