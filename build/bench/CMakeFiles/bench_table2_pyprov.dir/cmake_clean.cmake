file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_pyprov.dir/bench_table2_pyprov.cc.o"
  "CMakeFiles/bench_table2_pyprov.dir/bench_table2_pyprov.cc.o.d"
  "bench_table2_pyprov"
  "bench_table2_pyprov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_pyprov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
