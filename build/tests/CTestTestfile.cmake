# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/sql_engine_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/flock_test[1]_include.cmake")
include("/root/repo/build/tests/policy_test[1]_include.cmake")
include("/root/repo/build/tests/prov_test[1]_include.cmake")
include("/root/repo/build/tests/pyprov_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/flock_catalog_test[1]_include.cmake")
include("/root/repo/build/tests/sql_property_test[1]_include.cmake")
include("/root/repo/build/tests/ml_property_test[1]_include.cmake")
include("/root/repo/build/tests/prov_property_test[1]_include.cmake")
include("/root/repo/build/tests/tpch_execution_test[1]_include.cmake")
include("/root/repo/build/tests/sql_evaluator_test[1]_include.cmake")
