file(REMOVE_RECURSE
  "CMakeFiles/prov_test.dir/prov_test.cc.o"
  "CMakeFiles/prov_test.dir/prov_test.cc.o.d"
  "prov_test"
  "prov_test.pdb"
  "prov_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prov_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
