# Empty dependencies file for prov_test.
# This may be replaced when dependencies are built.
