# Empty compiler generated dependencies file for prov_property_test.
# This may be replaced when dependencies are built.
