file(REMOVE_RECURSE
  "CMakeFiles/prov_property_test.dir/prov_property_test.cc.o"
  "CMakeFiles/prov_property_test.dir/prov_property_test.cc.o.d"
  "prov_property_test"
  "prov_property_test.pdb"
  "prov_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prov_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
