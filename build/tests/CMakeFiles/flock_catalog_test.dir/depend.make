# Empty dependencies file for flock_catalog_test.
# This may be replaced when dependencies are built.
