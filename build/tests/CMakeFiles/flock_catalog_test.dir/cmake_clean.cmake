file(REMOVE_RECURSE
  "CMakeFiles/flock_catalog_test.dir/flock_catalog_test.cc.o"
  "CMakeFiles/flock_catalog_test.dir/flock_catalog_test.cc.o.d"
  "flock_catalog_test"
  "flock_catalog_test.pdb"
  "flock_catalog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flock_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
