file(REMOVE_RECURSE
  "CMakeFiles/tpch_execution_test.dir/tpch_execution_test.cc.o"
  "CMakeFiles/tpch_execution_test.dir/tpch_execution_test.cc.o.d"
  "tpch_execution_test"
  "tpch_execution_test.pdb"
  "tpch_execution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_execution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
