# Empty dependencies file for tpch_execution_test.
# This may be replaced when dependencies are built.
