file(REMOVE_RECURSE
  "CMakeFiles/sql_evaluator_test.dir/sql_evaluator_test.cc.o"
  "CMakeFiles/sql_evaluator_test.dir/sql_evaluator_test.cc.o.d"
  "sql_evaluator_test"
  "sql_evaluator_test.pdb"
  "sql_evaluator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_evaluator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
