# Empty dependencies file for sql_evaluator_test.
# This may be replaced when dependencies are built.
