# Empty dependencies file for pyprov_test.
# This may be replaced when dependencies are built.
