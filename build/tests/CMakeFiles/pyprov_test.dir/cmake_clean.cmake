file(REMOVE_RECURSE
  "CMakeFiles/pyprov_test.dir/pyprov_test.cc.o"
  "CMakeFiles/pyprov_test.dir/pyprov_test.cc.o.d"
  "pyprov_test"
  "pyprov_test.pdb"
  "pyprov_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pyprov_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
