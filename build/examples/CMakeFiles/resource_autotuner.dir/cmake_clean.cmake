file(REMOVE_RECURSE
  "CMakeFiles/resource_autotuner.dir/resource_autotuner.cpp.o"
  "CMakeFiles/resource_autotuner.dir/resource_autotuner.cpp.o.d"
  "resource_autotuner"
  "resource_autotuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resource_autotuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
