# Empty compiler generated dependencies file for resource_autotuner.
# This may be replaced when dependencies are built.
