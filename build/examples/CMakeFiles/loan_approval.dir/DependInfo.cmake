
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/loan_approval.cpp" "examples/CMakeFiles/loan_approval.dir/loan_approval.cpp.o" "gcc" "examples/CMakeFiles/loan_approval.dir/loan_approval.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flock/CMakeFiles/flock_core.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/flock_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/flock_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/flock_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/flock_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flock_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
