file(REMOVE_RECURSE
  "CMakeFiles/healthcare_governance.dir/healthcare_governance.cpp.o"
  "CMakeFiles/healthcare_governance.dir/healthcare_governance.cpp.o.d"
  "healthcare_governance"
  "healthcare_governance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/healthcare_governance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
