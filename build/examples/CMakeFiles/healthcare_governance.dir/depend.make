# Empty dependencies file for healthcare_governance.
# This may be replaced when dependencies are built.
