
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flock/cross_optimizer.cc" "src/flock/CMakeFiles/flock_core.dir/cross_optimizer.cc.o" "gcc" "src/flock/CMakeFiles/flock_core.dir/cross_optimizer.cc.o.d"
  "/root/repo/src/flock/deployment.cc" "src/flock/CMakeFiles/flock_core.dir/deployment.cc.o" "gcc" "src/flock/CMakeFiles/flock_core.dir/deployment.cc.o.d"
  "/root/repo/src/flock/flock_engine.cc" "src/flock/CMakeFiles/flock_core.dir/flock_engine.cc.o" "gcc" "src/flock/CMakeFiles/flock_core.dir/flock_engine.cc.o.d"
  "/root/repo/src/flock/model_registry.cc" "src/flock/CMakeFiles/flock_core.dir/model_registry.cc.o" "gcc" "src/flock/CMakeFiles/flock_core.dir/model_registry.cc.o.d"
  "/root/repo/src/flock/predict_functions.cc" "src/flock/CMakeFiles/flock_core.dir/predict_functions.cc.o" "gcc" "src/flock/CMakeFiles/flock_core.dir/predict_functions.cc.o.d"
  "/root/repo/src/flock/scoring.cc" "src/flock/CMakeFiles/flock_core.dir/scoring.cc.o" "gcc" "src/flock/CMakeFiles/flock_core.dir/scoring.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sql/CMakeFiles/flock_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/flock_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/flock_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flock_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
