file(REMOVE_RECURSE
  "CMakeFiles/flock_core.dir/cross_optimizer.cc.o"
  "CMakeFiles/flock_core.dir/cross_optimizer.cc.o.d"
  "CMakeFiles/flock_core.dir/deployment.cc.o"
  "CMakeFiles/flock_core.dir/deployment.cc.o.d"
  "CMakeFiles/flock_core.dir/flock_engine.cc.o"
  "CMakeFiles/flock_core.dir/flock_engine.cc.o.d"
  "CMakeFiles/flock_core.dir/model_registry.cc.o"
  "CMakeFiles/flock_core.dir/model_registry.cc.o.d"
  "CMakeFiles/flock_core.dir/predict_functions.cc.o"
  "CMakeFiles/flock_core.dir/predict_functions.cc.o.d"
  "CMakeFiles/flock_core.dir/scoring.cc.o"
  "CMakeFiles/flock_core.dir/scoring.cc.o.d"
  "libflock_core.a"
  "libflock_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flock_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
