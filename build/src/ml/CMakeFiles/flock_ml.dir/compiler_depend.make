# Empty compiler generated dependencies file for flock_ml.
# This may be replaced when dependencies are built.
