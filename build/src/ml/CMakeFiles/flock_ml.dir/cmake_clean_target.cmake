file(REMOVE_RECURSE
  "libflock_ml.a"
)
