file(REMOVE_RECURSE
  "CMakeFiles/flock_ml.dir/dataset.cc.o"
  "CMakeFiles/flock_ml.dir/dataset.cc.o.d"
  "CMakeFiles/flock_ml.dir/graph.cc.o"
  "CMakeFiles/flock_ml.dir/graph.cc.o.d"
  "CMakeFiles/flock_ml.dir/linear.cc.o"
  "CMakeFiles/flock_ml.dir/linear.cc.o.d"
  "CMakeFiles/flock_ml.dir/pipeline.cc.o"
  "CMakeFiles/flock_ml.dir/pipeline.cc.o.d"
  "CMakeFiles/flock_ml.dir/row_scorer.cc.o"
  "CMakeFiles/flock_ml.dir/row_scorer.cc.o.d"
  "CMakeFiles/flock_ml.dir/runtime.cc.o"
  "CMakeFiles/flock_ml.dir/runtime.cc.o.d"
  "CMakeFiles/flock_ml.dir/tree.cc.o"
  "CMakeFiles/flock_ml.dir/tree.cc.o.d"
  "libflock_ml.a"
  "libflock_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flock_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
