
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/dataset.cc" "src/ml/CMakeFiles/flock_ml.dir/dataset.cc.o" "gcc" "src/ml/CMakeFiles/flock_ml.dir/dataset.cc.o.d"
  "/root/repo/src/ml/graph.cc" "src/ml/CMakeFiles/flock_ml.dir/graph.cc.o" "gcc" "src/ml/CMakeFiles/flock_ml.dir/graph.cc.o.d"
  "/root/repo/src/ml/linear.cc" "src/ml/CMakeFiles/flock_ml.dir/linear.cc.o" "gcc" "src/ml/CMakeFiles/flock_ml.dir/linear.cc.o.d"
  "/root/repo/src/ml/pipeline.cc" "src/ml/CMakeFiles/flock_ml.dir/pipeline.cc.o" "gcc" "src/ml/CMakeFiles/flock_ml.dir/pipeline.cc.o.d"
  "/root/repo/src/ml/row_scorer.cc" "src/ml/CMakeFiles/flock_ml.dir/row_scorer.cc.o" "gcc" "src/ml/CMakeFiles/flock_ml.dir/row_scorer.cc.o.d"
  "/root/repo/src/ml/runtime.cc" "src/ml/CMakeFiles/flock_ml.dir/runtime.cc.o" "gcc" "src/ml/CMakeFiles/flock_ml.dir/runtime.cc.o.d"
  "/root/repo/src/ml/tree.cc" "src/ml/CMakeFiles/flock_ml.dir/tree.cc.o" "gcc" "src/ml/CMakeFiles/flock_ml.dir/tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/flock_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
