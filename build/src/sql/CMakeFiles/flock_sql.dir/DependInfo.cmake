
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sql/ast.cc" "src/sql/CMakeFiles/flock_sql.dir/ast.cc.o" "gcc" "src/sql/CMakeFiles/flock_sql.dir/ast.cc.o.d"
  "/root/repo/src/sql/engine.cc" "src/sql/CMakeFiles/flock_sql.dir/engine.cc.o" "gcc" "src/sql/CMakeFiles/flock_sql.dir/engine.cc.o.d"
  "/root/repo/src/sql/evaluator.cc" "src/sql/CMakeFiles/flock_sql.dir/evaluator.cc.o" "gcc" "src/sql/CMakeFiles/flock_sql.dir/evaluator.cc.o.d"
  "/root/repo/src/sql/executor.cc" "src/sql/CMakeFiles/flock_sql.dir/executor.cc.o" "gcc" "src/sql/CMakeFiles/flock_sql.dir/executor.cc.o.d"
  "/root/repo/src/sql/function_registry.cc" "src/sql/CMakeFiles/flock_sql.dir/function_registry.cc.o" "gcc" "src/sql/CMakeFiles/flock_sql.dir/function_registry.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/sql/CMakeFiles/flock_sql.dir/lexer.cc.o" "gcc" "src/sql/CMakeFiles/flock_sql.dir/lexer.cc.o.d"
  "/root/repo/src/sql/logical_plan.cc" "src/sql/CMakeFiles/flock_sql.dir/logical_plan.cc.o" "gcc" "src/sql/CMakeFiles/flock_sql.dir/logical_plan.cc.o.d"
  "/root/repo/src/sql/optimizer.cc" "src/sql/CMakeFiles/flock_sql.dir/optimizer.cc.o" "gcc" "src/sql/CMakeFiles/flock_sql.dir/optimizer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/sql/CMakeFiles/flock_sql.dir/parser.cc.o" "gcc" "src/sql/CMakeFiles/flock_sql.dir/parser.cc.o.d"
  "/root/repo/src/sql/planner.cc" "src/sql/CMakeFiles/flock_sql.dir/planner.cc.o" "gcc" "src/sql/CMakeFiles/flock_sql.dir/planner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/flock_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flock_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
