file(REMOVE_RECURSE
  "CMakeFiles/flock_sql.dir/ast.cc.o"
  "CMakeFiles/flock_sql.dir/ast.cc.o.d"
  "CMakeFiles/flock_sql.dir/engine.cc.o"
  "CMakeFiles/flock_sql.dir/engine.cc.o.d"
  "CMakeFiles/flock_sql.dir/evaluator.cc.o"
  "CMakeFiles/flock_sql.dir/evaluator.cc.o.d"
  "CMakeFiles/flock_sql.dir/executor.cc.o"
  "CMakeFiles/flock_sql.dir/executor.cc.o.d"
  "CMakeFiles/flock_sql.dir/function_registry.cc.o"
  "CMakeFiles/flock_sql.dir/function_registry.cc.o.d"
  "CMakeFiles/flock_sql.dir/lexer.cc.o"
  "CMakeFiles/flock_sql.dir/lexer.cc.o.d"
  "CMakeFiles/flock_sql.dir/logical_plan.cc.o"
  "CMakeFiles/flock_sql.dir/logical_plan.cc.o.d"
  "CMakeFiles/flock_sql.dir/optimizer.cc.o"
  "CMakeFiles/flock_sql.dir/optimizer.cc.o.d"
  "CMakeFiles/flock_sql.dir/parser.cc.o"
  "CMakeFiles/flock_sql.dir/parser.cc.o.d"
  "CMakeFiles/flock_sql.dir/planner.cc.o"
  "CMakeFiles/flock_sql.dir/planner.cc.o.d"
  "libflock_sql.a"
  "libflock_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flock_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
