file(REMOVE_RECURSE
  "libflock_sql.a"
)
