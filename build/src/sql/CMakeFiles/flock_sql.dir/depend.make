# Empty dependencies file for flock_sql.
# This may be replaced when dependencies are built.
