# Empty compiler generated dependencies file for flock_storage.
# This may be replaced when dependencies are built.
