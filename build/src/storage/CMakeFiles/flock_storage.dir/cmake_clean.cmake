file(REMOVE_RECURSE
  "CMakeFiles/flock_storage.dir/column_vector.cc.o"
  "CMakeFiles/flock_storage.dir/column_vector.cc.o.d"
  "CMakeFiles/flock_storage.dir/database.cc.o"
  "CMakeFiles/flock_storage.dir/database.cc.o.d"
  "CMakeFiles/flock_storage.dir/record_batch.cc.o"
  "CMakeFiles/flock_storage.dir/record_batch.cc.o.d"
  "CMakeFiles/flock_storage.dir/schema.cc.o"
  "CMakeFiles/flock_storage.dir/schema.cc.o.d"
  "CMakeFiles/flock_storage.dir/table.cc.o"
  "CMakeFiles/flock_storage.dir/table.cc.o.d"
  "CMakeFiles/flock_storage.dir/value.cc.o"
  "CMakeFiles/flock_storage.dir/value.cc.o.d"
  "libflock_storage.a"
  "libflock_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flock_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
