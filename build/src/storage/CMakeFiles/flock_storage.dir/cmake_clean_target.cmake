file(REMOVE_RECURSE
  "libflock_storage.a"
)
