# Empty compiler generated dependencies file for flock_policy.
# This may be replaced when dependencies are built.
