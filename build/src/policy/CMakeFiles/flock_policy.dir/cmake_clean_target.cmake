file(REMOVE_RECURSE
  "libflock_policy.a"
)
