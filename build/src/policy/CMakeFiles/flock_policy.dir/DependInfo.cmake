
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policy/monitor.cc" "src/policy/CMakeFiles/flock_policy.dir/monitor.cc.o" "gcc" "src/policy/CMakeFiles/flock_policy.dir/monitor.cc.o.d"
  "/root/repo/src/policy/policy.cc" "src/policy/CMakeFiles/flock_policy.dir/policy.cc.o" "gcc" "src/policy/CMakeFiles/flock_policy.dir/policy.cc.o.d"
  "/root/repo/src/policy/policy_engine.cc" "src/policy/CMakeFiles/flock_policy.dir/policy_engine.cc.o" "gcc" "src/policy/CMakeFiles/flock_policy.dir/policy_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sql/CMakeFiles/flock_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flock_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/flock_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
