file(REMOVE_RECURSE
  "CMakeFiles/flock_policy.dir/monitor.cc.o"
  "CMakeFiles/flock_policy.dir/monitor.cc.o.d"
  "CMakeFiles/flock_policy.dir/policy.cc.o"
  "CMakeFiles/flock_policy.dir/policy.cc.o.d"
  "CMakeFiles/flock_policy.dir/policy_engine.cc.o"
  "CMakeFiles/flock_policy.dir/policy_engine.cc.o.d"
  "libflock_policy.a"
  "libflock_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flock_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
