file(REMOVE_RECURSE
  "libflock_prov.a"
)
