# Empty dependencies file for flock_prov.
# This may be replaced when dependencies are built.
