
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prov/bridge.cc" "src/prov/CMakeFiles/flock_prov.dir/bridge.cc.o" "gcc" "src/prov/CMakeFiles/flock_prov.dir/bridge.cc.o.d"
  "/root/repo/src/prov/catalog.cc" "src/prov/CMakeFiles/flock_prov.dir/catalog.cc.o" "gcc" "src/prov/CMakeFiles/flock_prov.dir/catalog.cc.o.d"
  "/root/repo/src/prov/compression.cc" "src/prov/CMakeFiles/flock_prov.dir/compression.cc.o" "gcc" "src/prov/CMakeFiles/flock_prov.dir/compression.cc.o.d"
  "/root/repo/src/prov/sql_capture.cc" "src/prov/CMakeFiles/flock_prov.dir/sql_capture.cc.o" "gcc" "src/prov/CMakeFiles/flock_prov.dir/sql_capture.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sql/CMakeFiles/flock_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/flock_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flock_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
