file(REMOVE_RECURSE
  "CMakeFiles/flock_prov.dir/bridge.cc.o"
  "CMakeFiles/flock_prov.dir/bridge.cc.o.d"
  "CMakeFiles/flock_prov.dir/catalog.cc.o"
  "CMakeFiles/flock_prov.dir/catalog.cc.o.d"
  "CMakeFiles/flock_prov.dir/compression.cc.o"
  "CMakeFiles/flock_prov.dir/compression.cc.o.d"
  "CMakeFiles/flock_prov.dir/sql_capture.cc.o"
  "CMakeFiles/flock_prov.dir/sql_capture.cc.o.d"
  "libflock_prov.a"
  "libflock_prov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flock_prov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
