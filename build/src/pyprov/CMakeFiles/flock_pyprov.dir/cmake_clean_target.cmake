file(REMOVE_RECURSE
  "libflock_pyprov.a"
)
