# Empty dependencies file for flock_pyprov.
# This may be replaced when dependencies are built.
