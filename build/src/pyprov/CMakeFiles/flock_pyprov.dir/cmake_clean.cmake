file(REMOVE_RECURSE
  "CMakeFiles/flock_pyprov.dir/analyzer.cc.o"
  "CMakeFiles/flock_pyprov.dir/analyzer.cc.o.d"
  "CMakeFiles/flock_pyprov.dir/knowledge_base.cc.o"
  "CMakeFiles/flock_pyprov.dir/knowledge_base.cc.o.d"
  "CMakeFiles/flock_pyprov.dir/py_parser.cc.o"
  "CMakeFiles/flock_pyprov.dir/py_parser.cc.o.d"
  "libflock_pyprov.a"
  "libflock_pyprov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flock_pyprov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
