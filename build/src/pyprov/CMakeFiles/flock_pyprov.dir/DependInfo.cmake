
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pyprov/analyzer.cc" "src/pyprov/CMakeFiles/flock_pyprov.dir/analyzer.cc.o" "gcc" "src/pyprov/CMakeFiles/flock_pyprov.dir/analyzer.cc.o.d"
  "/root/repo/src/pyprov/knowledge_base.cc" "src/pyprov/CMakeFiles/flock_pyprov.dir/knowledge_base.cc.o" "gcc" "src/pyprov/CMakeFiles/flock_pyprov.dir/knowledge_base.cc.o.d"
  "/root/repo/src/pyprov/py_parser.cc" "src/pyprov/CMakeFiles/flock_pyprov.dir/py_parser.cc.o" "gcc" "src/pyprov/CMakeFiles/flock_pyprov.dir/py_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/prov/CMakeFiles/flock_prov.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flock_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/flock_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/flock_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
