file(REMOVE_RECURSE
  "libflock_workload.a"
)
