# Empty compiler generated dependencies file for flock_workload.
# This may be replaced when dependencies are built.
