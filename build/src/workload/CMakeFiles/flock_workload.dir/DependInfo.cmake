
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/landscape.cc" "src/workload/CMakeFiles/flock_workload.dir/landscape.cc.o" "gcc" "src/workload/CMakeFiles/flock_workload.dir/landscape.cc.o.d"
  "/root/repo/src/workload/notebooks.cc" "src/workload/CMakeFiles/flock_workload.dir/notebooks.cc.o" "gcc" "src/workload/CMakeFiles/flock_workload.dir/notebooks.cc.o.d"
  "/root/repo/src/workload/scripts.cc" "src/workload/CMakeFiles/flock_workload.dir/scripts.cc.o" "gcc" "src/workload/CMakeFiles/flock_workload.dir/scripts.cc.o.d"
  "/root/repo/src/workload/synthetic.cc" "src/workload/CMakeFiles/flock_workload.dir/synthetic.cc.o" "gcc" "src/workload/CMakeFiles/flock_workload.dir/synthetic.cc.o.d"
  "/root/repo/src/workload/tpcc.cc" "src/workload/CMakeFiles/flock_workload.dir/tpcc.cc.o" "gcc" "src/workload/CMakeFiles/flock_workload.dir/tpcc.cc.o.d"
  "/root/repo/src/workload/tpch.cc" "src/workload/CMakeFiles/flock_workload.dir/tpch.cc.o" "gcc" "src/workload/CMakeFiles/flock_workload.dir/tpch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flock/CMakeFiles/flock_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/flock_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/flock_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flock_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/flock_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
