file(REMOVE_RECURSE
  "CMakeFiles/flock_workload.dir/landscape.cc.o"
  "CMakeFiles/flock_workload.dir/landscape.cc.o.d"
  "CMakeFiles/flock_workload.dir/notebooks.cc.o"
  "CMakeFiles/flock_workload.dir/notebooks.cc.o.d"
  "CMakeFiles/flock_workload.dir/scripts.cc.o"
  "CMakeFiles/flock_workload.dir/scripts.cc.o.d"
  "CMakeFiles/flock_workload.dir/synthetic.cc.o"
  "CMakeFiles/flock_workload.dir/synthetic.cc.o.d"
  "CMakeFiles/flock_workload.dir/tpcc.cc.o"
  "CMakeFiles/flock_workload.dir/tpcc.cc.o.d"
  "CMakeFiles/flock_workload.dir/tpch.cc.o"
  "CMakeFiles/flock_workload.dir/tpch.cc.o.d"
  "libflock_workload.a"
  "libflock_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flock_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
