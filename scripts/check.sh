#!/usr/bin/env bash
# Full verification: regular build + tests, then an AddressSanitizer build
# + tests (catches the memory bugs morsel-parallel execution can hide),
# then a ThreadSanitizer build running the concurrency-sensitive suites
# (the serving layer's sessions/admission/plan-cache paths and the thread
# pool) — data races in the shared-engine serving path only show up under
# TSan with genuinely concurrent sessions — and finally a dedicated
# recovery stage: the crash matrix (fault-injected child processes) under
# ASan, plus the WAL group-commit tests under TSan (the one writer path
# with a genuinely concurrent background flusher). The segmented-storage
# suites (ctest label `storage`: segment/zone-map units + the pruning
# differential corpus) and the replication suites (ctest label `repl`:
# wire/publisher/applier/coordinator units, the primary-vs-replica
# differential corpus, and the replication crash matrix) run as
# dedicated stages in both sanitizer builds, as does the model-lifecycle
# suite (ctest label `lifecycle`: rollout state machine, shadow/canary
# scoring, drift monitor, guard-rule auto-rollback), the dense
# scoring-kernel suite (ctest label `kernel`: kernel-vs-interpreted
# bitwise differential, scoring bug-sweep regressions, and the serving
# micro-batcher's coalescing concurrency), and the cancellation suite
# (ctest label `cancel`: deadlines, `.kill`, queued-request shed, and
# the abandon paths those create).
#
# Usage: scripts/check.sh
#          [--asan-only|--no-asan|--tsan-only|--no-tsan|--recovery-only]
set -euo pipefail

cd "$(dirname "$0")/.."

RUN_PLAIN=1
RUN_ASAN=1
RUN_TSAN=1
RUN_RECOVERY=1
case "${1:-}" in
  --asan-only) RUN_PLAIN=0; RUN_TSAN=0; RUN_RECOVERY=0 ;;
  --no-asan) RUN_ASAN=0 ;;
  --tsan-only) RUN_PLAIN=0; RUN_ASAN=0; RUN_RECOVERY=0 ;;
  --no-tsan) RUN_TSAN=0 ;;
  --recovery-only) RUN_PLAIN=0; RUN_ASAN=0; RUN_TSAN=0 ;;
  "") ;;
  *)
    echo "usage: $0 [--asan-only|--no-asan|--tsan-only|--no-tsan|--recovery-only]" >&2
    exit 2
    ;;
esac

JOBS="$(nproc 2>/dev/null || echo 4)"

if [[ "$RUN_PLAIN" == 1 ]]; then
  echo "== plain build + ctest =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS"
  ctest --test-dir build --output-on-failure -j "$JOBS"
fi

if [[ "$RUN_ASAN" == 1 ]]; then
  echo "== ASan build + ctest =="
  cmake -B build-asan -S . -DFLOCK_SANITIZE=address >/dev/null
  cmake --build build-asan -j "$JOBS"
  ASAN_OPTIONS=detect_leaks=0 \
    ctest --test-dir build-asan --output-on-failure -j "$JOBS"

  echo "== ASan storage stage: segments + pruning differential =="
  # The segmented-storage suites carry the `storage` ctest label. Under
  # ASan they vet the zero-copy scan paths: every morsel aliases segment
  # memory, so any use-after-rewrite in the mutation paths (fresh-vector
  # swaps on UPDATE/DELETE) surfaces here.
  cmake --build build-asan -j "$JOBS" --target storage_test \
    pruning_differential_test
  ASAN_OPTIONS=detect_leaks=0 \
    ctest --test-dir build-asan --output-on-failure -j "$JOBS" -L storage

  echo "== ASan repl stage: replication units + differential + crash matrix =="
  # The replication suites carry the `repl` ctest label. Under ASan they
  # vet the snapshot/record (de)serialization round-trips, the applier's
  # apply loop over the shared recovery path, and the failover drain —
  # including the re-exec'd crash child that dies mid-WAL-append.
  cmake --build build-asan -j "$JOBS" --target repl_test \
    repl_differential_test
  ASAN_OPTIONS=detect_leaks=0 \
    ctest --test-dir build-asan --output-on-failure -j "$JOBS" -L repl

  echo "== ASan kernel stage: dense scoring kernel + micro-batcher =="
  # The dense-kernel suite carries the `kernel` ctest label. Under ASan it
  # vets the ping-pong scratch-buffer reuse (block batching over shared
  # thread-local scratch) and the coalescer's row hand-off buffers — the
  # two places a slot-index bug would read or write out of bounds.
  cmake --build build-asan -j "$JOBS" --target kernel_test
  ASAN_OPTIONS=detect_leaks=0 \
    ctest --test-dir build-asan --output-on-failure -j "$JOBS" -L kernel

  echo "== ASan cancel stage: deadlines + cooperative cancellation =="
  # The cancellation suite carries the `cancel` ctest label. Under ASan it
  # vets the abandon paths a kill creates: a follower leaving a live batch
  # whose rows the leader still scores, a shed request whose promise is
  # fulfilled off the worker, and the executor unwinding mid-morsel.
  cmake --build build-asan -j "$JOBS" --target cancel_test
  ASAN_OPTIONS=detect_leaks=0 \
    ctest --test-dir build-asan --output-on-failure -j "$JOBS" -L cancel

  echo "== ASan lifecycle stage: rollouts + drift monitor + auto-rollback =="
  # The model-lifecycle suite carries the `lifecycle` ctest label. Under
  # ASan it vets the rollout snapshot (de)serialization round-trips, the
  # candidate pipeline install/retire paths, and the crash-recovery /
  # replication of rollout state.
  cmake --build build-asan -j "$JOBS" --target lifecycle_test
  ASAN_OPTIONS=detect_leaks=0 \
    ctest --test-dir build-asan --output-on-failure -j "$JOBS" -L lifecycle
fi

if [[ "$RUN_TSAN" == 1 ]]; then
  echo "== TSan build + concurrent-suite ctest =="
  cmake -B build-tsan -S . -DFLOCK_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS" --target serve_test common_test \
    parallel_differential_test obs_test
  # Concurrency-sensitive suites only: serving (concurrent sessions over
  # one shared engine), the thread pool, the morsel-parallel executor,
  # and the observability primitives hit from every serving thread
  # (latency histogram, metrics registry, slow log, admission drain).
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
    -R 'Serve|ServerMetrics|LatencyHistogram|SessionManager|AdmissionController|ThreadPool|ParallelDifferential|MetricsRegistry|SlowQueryLog|ObsEngine'
  # The full observability suite carries the `obs` ctest label; run it
  # whole under TSan too (tracing installs thread-local recorders on the
  # serving workers, exactly the kind of state TSan should vet).
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" -L obs

  echo "== TSan storage stage: concurrent stats + pruned parallel scans =="
  # Zone-map pruning reads live segment stats from every executor worker
  # while GetStats lazily fills its aggregate cache; the `storage` label
  # under TSan proves that reader-side path race-free.
  cmake --build build-tsan -j "$JOBS" --target storage_test \
    pruning_differential_test
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" -L storage

  echo "== TSan repl stage: background streaming + bounded staleness =="
  # The applier's streaming thread races its position/lag gauges against
  # readers (the staleness gate, the coordinator's lag reports, metrics)
  # and its Stop/Start handoff against the coordinator's detach; `repl`
  # under TSan proves those handoffs race-free.
  cmake --build build-tsan -j "$JOBS" --target repl_test \
    repl_differential_test
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" -L repl

  echo "== TSan kernel stage: cross-request coalescing =="
  # The micro-batcher's leader/follower handoff (batch cv, done flag,
  # stats counters) runs on serving worker threads; `kernel` under TSan
  # proves the coalescing path race-free, including the drain/flush wakeup
  # and the stress test's mixed batch shapes.
  cmake --build build-tsan -j "$JOBS" --target kernel_test
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" -L kernel

  echo "== TSan cancel stage: kill vs. running statement =="
  # A kill races the executing worker by design: the token flips on the
  # killer's thread while morsel workers, batch waiters, and the retry
  # loop poll it. The `cancel` label under TSan proves the token state,
  # the session's active-cancel handoff, and the admission expired-path
  # promise fulfillment race-free — the "zero worker leaks under TSan"
  # acceptance check.
  cmake --build build-tsan -j "$JOBS" --target cancel_test
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" -L cancel

  echo "== TSan lifecycle stage: shadow scoring + guard-rule rollback =="
  # The interceptor runs on serve worker threads while guard breaches
  # trigger rollback through DeployTransaction on whichever thread hits
  # the limit first; `lifecycle` under TSan proves the stage/finalizing
  # handoff and the shared counters race-free, and the flock_test deploy
  # race test vets Commit's undo path against concurrent scorers.
  cmake --build build-tsan -j "$JOBS" --target lifecycle_test flock_test
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" -L lifecycle
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
    -R 'DeployRollbackRacesConcurrentScorers'
fi

if [[ "$RUN_RECOVERY" == 1 ]]; then
  echo "== recovery stage: crash matrix under ASan =="
  # The WAL/recovery suites carry the `recovery` ctest label. Running the
  # crash matrix under ASan means every fault-injected child process and
  # every recovery path is memory-checked; leak detection stays off
  # because the injected crashes _exit mid-operation by design.
  cmake -B build-asan -S . -DFLOCK_SANITIZE=address >/dev/null
  cmake --build build-asan -j "$JOBS" --target wal_test recovery_test
  ASAN_OPTIONS=detect_leaks=0 \
    ctest --test-dir build-asan --output-on-failure -j "$JOBS" -L recovery

  echo "== recovery stage: WAL group commit under TSan =="
  # Group commit is the only WAL path with real concurrency (appenders +
  # background flusher); TSan proves the seq/cv handoff race-free.
  cmake -B build-tsan -S . -DFLOCK_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS" --target wal_test
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
    -R 'GroupCommit|FsyncPolicy'
fi

echo "All checks passed."
