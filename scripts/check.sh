#!/usr/bin/env bash
# Full verification: regular build + tests, then an AddressSanitizer build
# + tests (catches the memory bugs morsel-parallel execution can hide).
#
# Usage: scripts/check.sh [--asan-only|--no-asan]
set -euo pipefail

cd "$(dirname "$0")/.."

RUN_PLAIN=1
RUN_ASAN=1
case "${1:-}" in
  --asan-only) RUN_PLAIN=0 ;;
  --no-asan) RUN_ASAN=0 ;;
  "") ;;
  *)
    echo "usage: $0 [--asan-only|--no-asan]" >&2
    exit 2
    ;;
esac

JOBS="$(nproc 2>/dev/null || echo 4)"

if [[ "$RUN_PLAIN" == 1 ]]; then
  echo "== plain build + ctest =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS"
  ctest --test-dir build --output-on-failure -j "$JOBS"
fi

if [[ "$RUN_ASAN" == 1 ]]; then
  echo "== ASan build + ctest =="
  cmake -B build-asan -S . -DFLOCK_SANITIZE=address >/dev/null
  cmake --build build-asan -j "$JOBS"
  ASAN_OPTIONS=detect_leaks=0 \
    ctest --test-dir build-asan --output-on-failure -j "$JOBS"
fi

echo "All checks passed."
