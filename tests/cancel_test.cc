// Tests for the engine-wide deadline + cooperative cancellation layer
// (ctest label `cancel`; check.sh runs these under ASan and TSan so a
// kill that leaks a worker or races the token shows up in CI):
//
//   * CancelToken/CancelScope semantics (null token, deadline expiry,
//     explicit kill precedence, latency accounting, thread-local scope),
//   * mid-scan kill of a large cross join through the executor's morsel
//     poll,
//   * queued-request timeout shed in the admission controller,
//   * micro-batch waiter deadline (a follower leaves an open batch),
//   * replica catch-up abort (a fired token stops the retry loop without
//     wedging sticky health).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/stopwatch.h"
#include "flock/flock_engine.h"
#include "flock/model_registry.h"
#include "flock/scoring.h"
#include "ml/dataset.h"
#include "ml/pipeline.h"
#include "ml/tree.h"
#include "repl/applier.h"
#include "repl/replication.h"
#include "serve/coalescer.h"
#include "serve/server.h"
#include "sql/engine.h"
#include "storage/database.h"

namespace flock {
namespace {

// ---------------------------------------------------------------------
// CancelToken / CancelScope semantics.
// ---------------------------------------------------------------------

TEST(CancelTokenTest, NullTokenNeverFires) {
  CancelToken token;
  EXPECT_FALSE(token.valid());
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.expired());
  EXPECT_TRUE(token.Check("test").ok());
  EXPECT_DOUBLE_EQ(token.CancelLatencyMs(), 0.0);
  token.Cancel();  // no-op on a null token
  EXPECT_TRUE(token.Check("test").ok());
}

TEST(CancelTokenTest, ExplicitCancelIsSharedAcrossCopies) {
  CancelToken token = CancelToken::Cancellable();
  CancelToken copy = token;
  EXPECT_TRUE(copy.Check("test").ok());
  token.Cancel();
  Status fired = copy.Check("join.morsel");
  EXPECT_EQ(fired.code(), StatusCode::kCancelled);
  // The poll site is named in the message for traceability.
  EXPECT_NE(fired.message().find("join.morsel"), std::string::npos);
  EXPECT_TRUE(token.SameStateAs(copy));
  EXPECT_FALSE(token.SameStateAs(CancelToken::Cancellable()));
}

TEST(CancelTokenTest, DeadlineExpires) {
  CancelToken token = CancelToken::WithDeadline(20.0);
  EXPECT_TRUE(token.Check("test").ok());
  EXPECT_GT(token.RemainingMs(), 0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(token.expired());
  EXPECT_EQ(token.Check("test").code(), StatusCode::kDeadlineExceeded);
  EXPECT_LE(token.RemainingMs(), 0.0);
}

TEST(CancelTokenTest, ExplicitKillWinsOverExpiredDeadline) {
  CancelToken token = CancelToken::WithDeadline(1.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  token.Cancel();
  // Both signals have fired; the explicit kill is the more specific
  // cause and must be the one reported.
  EXPECT_EQ(token.Check("test").code(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, CancelLatencyMeasuresFromTheStopSignal) {
  CancelToken token = CancelToken::Cancellable();
  token.Cancel();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  double latency = token.CancelLatencyMs();
  EXPECT_GE(latency, 15.0);
  EXPECT_LT(latency, 5000.0);
}

TEST(CancelScopeTest, InstallsAndRestoresThreadLocalToken) {
  EXPECT_FALSE(CancelToken::Current().valid());
  CancelToken outer = CancelToken::Cancellable();
  {
    CancelScope outer_scope(outer);
    EXPECT_TRUE(CancelToken::Current().SameStateAs(outer));
    {
      // A null inner scope shields deeper code from the outer token —
      // the micro-batch leader uses exactly this to protect a shared
      // kernel invocation from its own kill.
      CancelScope shield{CancelToken()};
      EXPECT_FALSE(CancelToken::Current().valid());
    }
    EXPECT_TRUE(CancelToken::Current().SameStateAs(outer));
  }
  EXPECT_FALSE(CancelToken::Current().valid());
}

TEST(CancelScopeTest, ScopeIsPerThread) {
  CancelToken token = CancelToken::Cancellable();
  CancelScope scope(token);
  std::thread other([&] {
    // A fresh thread sees no scope; workers must re-install it per task.
    EXPECT_FALSE(CancelToken::Current().valid());
  });
  other.join();
  EXPECT_TRUE(CancelToken::Current().SameStateAs(token));
}

// ---------------------------------------------------------------------
// Mid-scan kill through the executor.
// ---------------------------------------------------------------------

void BuildCrossJoinTables(sql::SqlEngine* engine, int rows) {
  for (const char* name : {"lhs", "rhs"}) {
    ASSERT_TRUE(
        engine->Execute(std::string("CREATE TABLE ") + name + " (x INT)")
            .ok());
    std::string insert = std::string("INSERT INTO ") + name + " VALUES ";
    for (int i = 0; i < rows; ++i) {
      if (i > 0) insert += ", ";
      insert += "(" + std::to_string(i) + ")";
    }
    ASSERT_TRUE(engine->Execute(insert).ok());
  }
}

TEST(ExecutorCancelTest, MidScanKillReturnsWithinBudget) {
  storage::Database db;
  sql::EngineOptions options;
  options.num_threads = 2;  // exercise the parallel morsel path
  sql::SqlEngine engine(&db, options);
  BuildCrossJoinTables(&engine, 1200);

  CancelToken token = CancelToken::Cancellable();
  sql::ExecOptions exec;
  exec.cancel = token;
  std::thread killer([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    token.Cancel();
  });
  auto result = engine.Execute(
      "SELECT COUNT(*) FROM lhs CROSS JOIN rhs CROSS JOIN lhs", exec);
  killer.join();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
      << result.status().ToString();
  EXPECT_LT(token.CancelLatencyMs(), 100.0);

  // The engine is healthy afterwards — no wedged worker, no poisoned
  // plan cache.
  auto after = engine.Execute("SELECT COUNT(*) FROM lhs");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
}

TEST(ExecutorCancelTest, DeadlineExceededCarriesDeadlineCode) {
  storage::Database db;
  sql::SqlEngine engine(&db, {});
  BuildCrossJoinTables(&engine, 1200);
  sql::ExecOptions exec;
  exec.cancel = CancelToken::WithDeadline(40.0);
  Stopwatch timer;
  auto result = engine.Execute(
      "SELECT COUNT(*) FROM lhs CROSS JOIN rhs CROSS JOIN lhs", exec);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << result.status().ToString();
  EXPECT_LT(timer.ElapsedMillis(), 1000.0);
}

// ---------------------------------------------------------------------
// Queued-request timeout shed (admission controller).
// ---------------------------------------------------------------------

TEST(AdmissionCancelTest, ExpiredQueuedRequestIsShedBeforeWork) {
  serve::AdmissionOptions options;
  options.num_workers = 1;
  options.max_queue_depth = 8;
  serve::AdmissionController admission(options);

  // Park the only worker.
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::atomic<bool> blocker_started{false};
  ASSERT_TRUE(admission
                  .Admit([&] {
                    blocker_started.store(true);
                    gate.wait();
                  })
                  .ok());
  while (!blocker_started.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Queue a request with an already-tight deadline; it expires waiting.
  std::atomic<bool> work_ran{false};
  std::promise<Status> expired_status;
  CancelToken token = CancelToken::WithDeadline(20.0);
  ASSERT_TRUE(admission
                  .Admit([&] { work_ran.store(true); }, token,
                         [&](Status fired) {
                           expired_status.set_value(std::move(fired));
                         })
                  .ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  release.set_value();  // worker frees up after the deadline passed

  Status fired = expired_status.get_future().get();
  EXPECT_EQ(fired.code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(work_ran.load());
  EXPECT_EQ(admission.deadline_shed_count(), 1u);

  // A token that is already dead at admit time is shed synchronously.
  CancelToken killed = CancelToken::Cancellable();
  killed.Cancel();
  Status at_admit = admission.Admit([] {}, killed, [](Status) {
    FAIL() << "synchronous shed must not invoke the expired callback";
  });
  EXPECT_EQ(at_admit.code(), StatusCode::kCancelled);
  EXPECT_EQ(admission.deadline_shed_count(), 2u);
  admission.Drain();
}

// ---------------------------------------------------------------------
// Micro-batch waiter deadline (coalescer, driven directly).
// ---------------------------------------------------------------------

flock::ModelEntry MakeScoringEntry() {
  ml::Pipeline pipeline;
  pipeline.SetInputs({{"a", ml::FeatureKind::kNumeric, {}},
                      {"b", ml::FeatureKind::kNumeric, {}}});
  pipeline.set_task(ml::ModelTask::kRegression);
  ml::Dataset data;
  data.x = ml::Matrix(64, 2);
  data.y.resize(64);
  for (size_t r = 0; r < 64; ++r) {
    data.x.at(r, 0) = static_cast<double>(r % 8);
    data.x.at(r, 1) = static_cast<double>(r % 5);
    data.y[r] = data.x.at(r, 0) - data.x.at(r, 1);
  }
  ml::GbtOptions gbt;
  gbt.num_trees = 3;
  gbt.max_depth = 2;
  pipeline.SetTreeModel(ml::TrainGradientBoosting(data, gbt));

  flock::ModelEntry entry;
  entry.name = "m";
  entry.pipeline = std::move(pipeline);
  auto graph = entry.pipeline.Compile();
  EXPECT_TRUE(graph.ok());
  entry.graph = *std::move(graph);
  return entry;
}

TEST(MicroBatchCancelTest, WaiterDeadlineLeavesOpenBatch) {
  serve::MicroBatchOptions options;
  options.enabled = true;
  options.max_batch = 32;       // never fills
  options.max_wait_ms = 800.0;  // leader parks for most of a second
  options.bypass_solo = false;
  serve::MicroBatcher batcher(options);
  flock::ModelEntry entry = MakeScoringEntry();
  const double row[2] = {1.0, 2.0};

  // Leader (no token): opens the window and waits. The sleep gives it
  // time to take the leader slot before the follower arrives.
  std::thread leader_thread([&] {
    auto score = batcher.ScoreOne(entry, row, 2);
    EXPECT_TRUE(score.ok()) << score.status().ToString();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Follower with a 50 ms deadline: must leave the batch with
  // kDeadlineExceeded long before the leader's window closes.
  Stopwatch timer;
  CancelToken token = CancelToken::WithDeadline(50.0);
  CancelScope scope(token);
  auto waited = batcher.ScoreOne(entry, row, 2);
  const double waited_ms = timer.ElapsedMillis();
  ASSERT_FALSE(waited.ok());
  EXPECT_EQ(waited.status().code(), StatusCode::kDeadlineExceeded)
      << waited.status().ToString();
  EXPECT_LT(waited_ms, 500.0) << "waiter slept out the leader's window";

  leader_thread.join();
  // The leader scored the abandoned row along with its own (batch of 2).
  EXPECT_EQ(batcher.rows_scored(), 2u);
}

TEST(MicroBatchCancelTest, DeadRequestNeverJoinsABatch) {
  serve::MicroBatchOptions options;
  options.enabled = true;
  options.max_batch = 8;
  serve::MicroBatcher batcher(options);
  flock::ModelEntry entry = MakeScoringEntry();
  const double row[2] = {1.0, 2.0};

  CancelToken token = CancelToken::Cancellable();
  token.Cancel();
  CancelScope scope(token);
  auto score = batcher.ScoreOne(entry, row, 2);
  ASSERT_FALSE(score.ok());
  EXPECT_EQ(score.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(batcher.rows_scored(), 0u);
}

// ---------------------------------------------------------------------
// Replica catch-up abort.
// ---------------------------------------------------------------------

/// A source that is never reachable: every call is Unavailable, so the
/// applier's retry-with-backoff loop spins until its budget (or the
/// caller's token) runs out.
class UnreachableSource : public repl::ReplicationSource {
 public:
  StatusOr<repl::BootstrapResult> Bootstrap() override {
    calls.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("primary unreachable");
  }
  StatusOr<repl::FetchResult> Fetch(repl::ReplicationPosition,
                                    size_t) override {
    calls.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("primary unreachable");
  }
  StatusOr<repl::ReplicationPosition> DurableEnd() override {
    return Status::Unavailable("primary unreachable");
  }
  std::atomic<uint64_t> calls{0};
};

TEST(ReplicaCancelTest, DeadlineAbortsCatchUpWithoutWedgingHealth) {
  flock::FlockEngineOptions engine_options;
  engine_options.sql.num_threads = 1;
  flock::FlockEngine engine(engine_options);
  ASSERT_TRUE(engine.OpenAsReplica().ok());
  UnreachableSource source;

  repl::ReplicaApplierOptions options;
  // Without the token this retry budget spins for many seconds.
  options.retry.max_attempts = 1000;
  options.retry.base_backoff_ms = 10;
  options.retry.max_backoff_ms = 50;
  options.cancel = CancelToken::WithDeadline(80.0);
  repl::ReplicaApplier applier(&engine, &source, options);

  Stopwatch timer;
  Status aborted = applier.CatchUp();
  EXPECT_EQ(aborted.code(), StatusCode::kDeadlineExceeded)
      << aborted.ToString();
  EXPECT_LT(timer.ElapsedMillis(), 2000.0);
  // The abort is the caller's choice, not stream damage: health stays
  // OK and the applier can be driven again later.
  EXPECT_TRUE(applier.health().ok());
}

TEST(ReplicaCancelTest, ExplicitKillAbortsCatchUpBetweenRetries) {
  flock::FlockEngineOptions engine_options;
  engine_options.sql.num_threads = 1;
  flock::FlockEngine engine(engine_options);
  ASSERT_TRUE(engine.OpenAsReplica().ok());
  UnreachableSource source;

  repl::ReplicaApplierOptions options;
  options.retry.max_attempts = 1000;
  options.retry.base_backoff_ms = 10;
  options.retry.max_backoff_ms = 50;
  options.cancel = CancelToken::Cancellable();
  repl::ReplicaApplier applier(&engine, &source, options);

  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    options.cancel.Cancel();
  });
  Status aborted = applier.CatchUp();
  killer.join();
  EXPECT_EQ(aborted.code(), StatusCode::kCancelled) << aborted.ToString();
  EXPECT_TRUE(applier.health().ok());
  EXPECT_GE(source.calls.load(), 1u);
}

// ---------------------------------------------------------------------
// End-to-end: kill through the serving layer, zero worker leaks.
// ---------------------------------------------------------------------

TEST(ServerCancelTest, KillDuringExecutionThenCleanDrain) {
  flock::FlockEngineOptions engine_options;
  engine_options.sql.num_threads = 1;
  flock::FlockEngine engine(engine_options);
  for (const char* name : {"lhs", "rhs"}) {
    ASSERT_TRUE(
        engine.Execute(std::string("CREATE TABLE ") + name + " (x INT)")
            .ok());
    std::string insert = std::string("INSERT INTO ") + name + " VALUES ";
    for (int i = 0; i < 1500; ++i) {
      if (i > 0) insert += ", ";
      insert += "(" + std::to_string(i) + ")";
    }
    ASSERT_TRUE(engine.Execute(insert).ok());
  }

  serve::ServerOptions options;
  options.admission.num_workers = 2;
  serve::PredictionServer server(&engine, options);
  auto id_or = server.OpenSession();
  ASSERT_TRUE(id_or.ok());
  auto pending = server.Submit(
      *id_or, "SELECT COUNT(*) FROM lhs CROSS JOIN rhs CROSS JOIN lhs");
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  ASSERT_TRUE(server.KillSession(*id_or).ok());
  auto result = pending.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
      << result.status().ToString();
  // Shutdown drains workers; TSan/ASan runs of this test are the
  // "zero worker leaks" acceptance check.
  server.Shutdown();
}

}  // namespace
}  // namespace flock
