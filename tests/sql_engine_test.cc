#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/cancel.h"
#include "sql/engine.h"
#include "sql/parser.h"
#include "storage/database.h"

namespace flock::sql {
namespace {

using storage::DataType;
using storage::Database;
using storage::Value;

class SqlEngineTest : public ::testing::Test {
 protected:
  SqlEngineTest() : engine_(&db_, MakeOptions()) {
    Exec("CREATE TABLE emp (id INT, name VARCHAR, dept VARCHAR, "
         "salary DOUBLE, age INT)");
    Exec("INSERT INTO emp VALUES "
         "(1, 'alice', 'eng', 120.0, 34), "
         "(2, 'bob', 'eng', 95.5, 28), "
         "(3, 'carol', 'sales', 80.0, 45), "
         "(4, 'dave', 'sales', 85.0, 31), "
         "(5, 'erin', 'hr', 60.0, 52), "
         "(6, 'frank', 'eng', NULL, 23)");
  }

  static EngineOptions MakeOptions() {
    EngineOptions options;
    options.num_threads = 2;
    return options;
  }

  QueryResult Exec(const std::string& sql) {
    auto result = engine_.Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    return result.ok() ? std::move(result).value() : QueryResult{};
  }

  Database db_;
  SqlEngine engine_;
};

TEST_F(SqlEngineTest, SelectStar) {
  auto r = Exec("SELECT * FROM emp");
  EXPECT_EQ(r.batch.num_rows(), 6u);
  EXPECT_EQ(r.batch.num_columns(), 5u);
}

TEST_F(SqlEngineTest, SelectWithWhere) {
  auto r = Exec("SELECT name FROM emp WHERE dept = 'eng' AND salary > 100");
  ASSERT_EQ(r.batch.num_rows(), 1u);
  EXPECT_EQ(r.batch.column(0)->string_at(0), "alice");
}

TEST_F(SqlEngineTest, NullComparisonRejectsRow) {
  // frank has NULL salary; NULL > 10 is unknown, row filtered out.
  auto r = Exec("SELECT name FROM emp WHERE salary > 10");
  EXPECT_EQ(r.batch.num_rows(), 5u);
}

TEST_F(SqlEngineTest, IsNullPredicate) {
  auto r = Exec("SELECT name FROM emp WHERE salary IS NULL");
  ASSERT_EQ(r.batch.num_rows(), 1u);
  EXPECT_EQ(r.batch.column(0)->string_at(0), "frank");
  auto r2 = Exec("SELECT COUNT(*) FROM emp WHERE salary IS NOT NULL");
  EXPECT_EQ(r2.batch.column(0)->int_at(0), 5);
}

TEST_F(SqlEngineTest, ArithmeticProjection) {
  auto r = Exec("SELECT salary * 2 + 1 AS s2 FROM emp WHERE id = 1");
  ASSERT_EQ(r.batch.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(r.batch.column(0)->double_at(0), 241.0);
  EXPECT_EQ(r.batch.schema().column(0).name, "s2");
}

TEST_F(SqlEngineTest, IntegerDivisionIsDouble) {
  auto r = Exec("SELECT 7 / 2");
  EXPECT_DOUBLE_EQ(r.batch.column(0)->double_at(0), 3.5);
}

TEST_F(SqlEngineTest, OrderByDesc) {
  auto r = Exec("SELECT name FROM emp WHERE salary IS NOT NULL "
                "ORDER BY salary DESC");
  ASSERT_EQ(r.batch.num_rows(), 5u);
  EXPECT_EQ(r.batch.column(0)->string_at(0), "alice");
  EXPECT_EQ(r.batch.column(0)->string_at(4), "erin");
}

TEST_F(SqlEngineTest, OrderByMultipleKeys) {
  auto r = Exec("SELECT name, dept FROM emp ORDER BY dept ASC, name DESC");
  ASSERT_EQ(r.batch.num_rows(), 6u);
  EXPECT_EQ(r.batch.column(0)->string_at(0), "frank");  // eng, desc name
}

TEST_F(SqlEngineTest, LimitOffset) {
  auto r = Exec("SELECT id FROM emp ORDER BY id LIMIT 2 OFFSET 3");
  ASSERT_EQ(r.batch.num_rows(), 2u);
  EXPECT_EQ(r.batch.column(0)->int_at(0), 4);
  EXPECT_EQ(r.batch.column(0)->int_at(1), 5);
}

TEST_F(SqlEngineTest, GroupByWithAggregates) {
  auto r = Exec("SELECT dept, COUNT(*) AS n, AVG(salary) AS avg_sal "
                "FROM emp GROUP BY dept ORDER BY dept");
  ASSERT_EQ(r.batch.num_rows(), 3u);
  // eng: alice, bob, frank (frank's NULL salary excluded from AVG).
  EXPECT_EQ(r.batch.column(0)->string_at(0), "eng");
  EXPECT_EQ(r.batch.column(1)->int_at(0), 3);
  EXPECT_NEAR(r.batch.column(2)->double_at(0), (120.0 + 95.5) / 2, 1e-9);
}

TEST_F(SqlEngineTest, GlobalAggregateOverEmptyResult) {
  auto r = Exec("SELECT COUNT(*), SUM(salary) FROM emp WHERE id > 100");
  ASSERT_EQ(r.batch.num_rows(), 1u);
  EXPECT_EQ(r.batch.column(0)->int_at(0), 0);
  EXPECT_TRUE(r.batch.column(1)->IsNull(0));
}

TEST_F(SqlEngineTest, HavingFiltersGroups) {
  auto r = Exec("SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept "
                "HAVING COUNT(*) > 1 ORDER BY dept");
  ASSERT_EQ(r.batch.num_rows(), 2u);
  EXPECT_EQ(r.batch.column(0)->string_at(0), "eng");
  EXPECT_EQ(r.batch.column(0)->string_at(1), "sales");
}

TEST_F(SqlEngineTest, MinMaxAggregates) {
  auto r = Exec("SELECT MIN(age), MAX(age) FROM emp");
  EXPECT_EQ(r.batch.column(0)->int_at(0), 23);
  EXPECT_EQ(r.batch.column(1)->int_at(0), 52);
}

TEST_F(SqlEngineTest, SelectDistinct) {
  auto r = Exec("SELECT DISTINCT dept FROM emp ORDER BY dept");
  ASSERT_EQ(r.batch.num_rows(), 3u);
}

TEST_F(SqlEngineTest, LikeOperator) {
  auto r = Exec("SELECT name FROM emp WHERE name LIKE '%a%' ORDER BY id");
  // alice, carol, dave, frank
  ASSERT_EQ(r.batch.num_rows(), 4u);
  auto r2 = Exec("SELECT name FROM emp WHERE name LIKE '_ob'");
  ASSERT_EQ(r2.batch.num_rows(), 1u);
  EXPECT_EQ(r2.batch.column(0)->string_at(0), "bob");
}

TEST_F(SqlEngineTest, InAndBetween) {
  auto r = Exec("SELECT COUNT(*) FROM emp WHERE dept IN ('eng', 'hr')");
  EXPECT_EQ(r.batch.column(0)->int_at(0), 4);
  auto r2 = Exec("SELECT COUNT(*) FROM emp WHERE age BETWEEN 30 AND 50");
  EXPECT_EQ(r2.batch.column(0)->int_at(0), 3);
  auto r3 = Exec("SELECT COUNT(*) FROM emp WHERE age NOT BETWEEN 30 AND 50");
  EXPECT_EQ(r3.batch.column(0)->int_at(0), 3);
}

TEST_F(SqlEngineTest, CaseExpression) {
  auto r = Exec("SELECT name, CASE WHEN age < 30 THEN 'young' "
                "WHEN age < 50 THEN 'mid' ELSE 'senior' END AS bucket "
                "FROM emp ORDER BY id");
  EXPECT_EQ(r.batch.column(1)->string_at(0), "mid");     // alice 34
  EXPECT_EQ(r.batch.column(1)->string_at(1), "young");   // bob 28
  EXPECT_EQ(r.batch.column(1)->string_at(4), "senior");  // erin 52
}

TEST_F(SqlEngineTest, CastExpression) {
  auto r = Exec("SELECT CAST(salary AS INT) FROM emp WHERE id = 2");
  EXPECT_EQ(r.batch.column(0)->int_at(0), 96);  // 95.5 rounds
}

TEST_F(SqlEngineTest, ScalarFunctions) {
  auto r = Exec("SELECT ABS(-3.5), UPPER('abc'), LENGTH('hello')");
  EXPECT_DOUBLE_EQ(r.batch.column(0)->double_at(0), 3.5);
  EXPECT_EQ(r.batch.column(1)->string_at(0), "ABC");
  EXPECT_EQ(r.batch.column(2)->int_at(0), 5);
}

TEST_F(SqlEngineTest, InnerJoin) {
  Exec("CREATE TABLE dept (dname VARCHAR, floor INT)");
  Exec("INSERT INTO dept VALUES ('eng', 4), ('sales', 2)");
  auto r = Exec(
      "SELECT e.name, d.floor FROM emp e JOIN dept d ON e.dept = d.dname "
      "ORDER BY e.id");
  ASSERT_EQ(r.batch.num_rows(), 5u);  // hr has no dept row
  EXPECT_EQ(r.batch.column(1)->int_at(0), 4);
}

TEST_F(SqlEngineTest, LeftJoinPadsNulls) {
  Exec("CREATE TABLE dept2 (dname VARCHAR, floor INT)");
  Exec("INSERT INTO dept2 VALUES ('eng', 4)");
  auto r = Exec(
      "SELECT e.name, d.floor FROM emp e LEFT JOIN dept2 d "
      "ON e.dept = d.dname ORDER BY e.id");
  ASSERT_EQ(r.batch.num_rows(), 6u);
  EXPECT_FALSE(r.batch.column(1)->IsNull(0));  // alice/eng
  EXPECT_TRUE(r.batch.column(1)->IsNull(2));   // carol/sales
}

TEST_F(SqlEngineTest, JoinWithGroupBy) {
  Exec("CREATE TABLE dept3 (dname VARCHAR, floor INT)");
  Exec("INSERT INTO dept3 VALUES ('eng', 4), ('sales', 2), ('hr', 1)");
  auto r = Exec(
      "SELECT d.floor, COUNT(*) AS n FROM emp e "
      "JOIN dept3 d ON e.dept = d.dname GROUP BY d.floor ORDER BY d.floor");
  ASSERT_EQ(r.batch.num_rows(), 3u);
  EXPECT_EQ(r.batch.column(0)->int_at(2), 4);
  EXPECT_EQ(r.batch.column(1)->int_at(2), 3);
}

TEST_F(SqlEngineTest, CrossJoinCardinality) {
  Exec("CREATE TABLE two (x INT)");
  Exec("INSERT INTO two VALUES (1), (2)");
  auto r = Exec("SELECT COUNT(*) FROM emp CROSS JOIN two");
  EXPECT_EQ(r.batch.column(0)->int_at(0), 12);
}

TEST_F(SqlEngineTest, UpdateWithWhere) {
  auto r = Exec("UPDATE emp SET salary = salary + 10 WHERE dept = 'eng' "
                "AND salary IS NOT NULL");
  EXPECT_EQ(r.rows_affected, 2u);
  auto check = Exec("SELECT salary FROM emp WHERE id = 1");
  EXPECT_DOUBLE_EQ(check.batch.column(0)->double_at(0), 130.0);
}

TEST_F(SqlEngineTest, DeleteWithWhere) {
  auto r = Exec("DELETE FROM emp WHERE age > 40");
  EXPECT_EQ(r.rows_affected, 2u);
  auto check = Exec("SELECT COUNT(*) FROM emp");
  EXPECT_EQ(check.batch.column(0)->int_at(0), 4);
}

TEST_F(SqlEngineTest, InsertSelect) {
  Exec("CREATE TABLE names (n VARCHAR)");
  auto r = Exec("INSERT INTO names SELECT name FROM emp WHERE dept = 'eng'");
  EXPECT_EQ(r.rows_affected, 3u);
}

TEST_F(SqlEngineTest, InsertColumnSubsetPadsNull) {
  Exec("INSERT INTO emp (id, name) VALUES (7, 'gus')");
  auto r = Exec("SELECT dept FROM emp WHERE id = 7");
  EXPECT_TRUE(r.batch.column(0)->IsNull(0));
}

TEST_F(SqlEngineTest, ExplainShowsPlan) {
  auto r = Exec("EXPLAIN SELECT name FROM emp WHERE salary > 100");
  EXPECT_NE(r.plan_text.find("Scan(emp"), std::string::npos);
  EXPECT_NE(r.plan_text.find("Filter"), std::string::npos);
}

TEST_F(SqlEngineTest, ProjectionPruningNarrowsScan) {
  auto r = Exec("EXPLAIN SELECT name FROM emp WHERE salary > 100");
  // Scan should list only name+salary after pruning.
  EXPECT_NE(r.plan_text.find("cols=[name,salary]"), std::string::npos)
      << r.plan_text;
}

TEST_F(SqlEngineTest, ExplainShowsPhysicalPlan) {
  auto r = Exec("EXPLAIN SELECT name FROM emp WHERE salary > 100");
  EXPECT_NE(r.plan_text.find("== Physical Plan =="), std::string::npos)
      << r.plan_text;
  EXPECT_NE(r.plan_text.find("TableScan(emp"), std::string::npos)
      << r.plan_text;
  EXPECT_NE(r.plan_text.find("width="), std::string::npos) << r.plan_text;
  // Plain EXPLAIN does not execute, so no timings appear.
  EXPECT_EQ(r.plan_text.find("time="), std::string::npos) << r.plan_text;
}

TEST_F(SqlEngineTest, ExplainShowsJoinAndAggregateOperators) {
  Exec("CREATE TABLE dept_info (dept VARCHAR, floor INT)");
  auto r = Exec(
      "EXPLAIN SELECT emp.dept, COUNT(*) FROM emp "
      "JOIN dept_info ON emp.dept = dept_info.dept GROUP BY emp.dept");
  EXPECT_NE(r.plan_text.find("HashJoinProbe"), std::string::npos)
      << r.plan_text;
  EXPECT_NE(r.plan_text.find("HashJoinBuild"), std::string::npos)
      << r.plan_text;
  EXPECT_NE(r.plan_text.find("HashAggregate"), std::string::npos)
      << r.plan_text;
}

TEST_F(SqlEngineTest, ExplainAnalyzeReportsOperatorMetrics) {
  auto r = Exec("EXPLAIN ANALYZE SELECT name FROM emp WHERE salary > 100");
  // ANALYZE executes the plan and annotates operators with row counts and
  // wall time.
  EXPECT_NE(r.plan_text.find("time="), std::string::npos) << r.plan_text;
  EXPECT_NE(r.plan_text.find("in="), std::string::npos) << r.plan_text;
  EXPECT_NE(r.plan_text.find("out="), std::string::npos) << r.plan_text;
  ASSERT_FALSE(r.operator_metrics.empty());
  // The scan (last snapshot, deepest operator) read all 6 emp rows.
  const auto& scan = r.operator_metrics.back();
  EXPECT_EQ(scan.rows_in, 6u);
}

TEST_F(SqlEngineTest, SelectSurfacesOperatorMetrics) {
  auto r = Exec("SELECT name FROM emp WHERE salary > 100");
  ASSERT_FALSE(r.operator_metrics.empty());
  uint64_t total_out = 0;
  for (const auto& m : r.operator_metrics) total_out += m.rows_out;
  EXPECT_GT(total_out, 0u);
  // Root operator emits exactly the result rows.
  EXPECT_EQ(r.operator_metrics.front().rows_out, r.batch.num_rows());
}

TEST_F(SqlEngineTest, ErrorsSurfaceAsStatus) {
  EXPECT_EQ(engine_.Execute("SELECT nope FROM emp").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine_.Execute("SELECT * FROM missing").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine_.Execute("SELEC 1").status().code(),
            StatusCode::kParseError);
}

TEST_F(SqlEngineTest, AmbiguousColumnRejected) {
  Exec("CREATE TABLE e2 (id INT, v INT)");
  Exec("INSERT INTO e2 VALUES (1, 10)");
  auto bad = engine_.Execute(
      "SELECT id FROM emp JOIN e2 ON emp.id = e2.id");
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SqlEngineTest, QueryLogRecordsStatements) {
  size_t before = engine_.query_log().size();
  Exec("SELECT 1");
  EXPECT_EQ(engine_.query_log().size(), before + 1);
  EXPECT_EQ(engine_.query_log().back(), "SELECT 1");
}

TEST_F(SqlEngineTest, SelectWithoutFrom) {
  auto r = Exec("SELECT 1 + 2 AS three, 'x'");
  ASSERT_EQ(r.batch.num_rows(), 1u);
  EXPECT_EQ(r.batch.column(0)->int_at(0), 3);
  EXPECT_EQ(r.batch.column(1)->string_at(0), "x");
}

TEST_F(SqlEngineTest, ParallelMatchesSerialOnLargeScan) {
  Exec("CREATE TABLE big (k INT, v DOUBLE)");
  // Insert 10,000 rows via batched INSERTs.
  for (int chunk = 0; chunk < 10; ++chunk) {
    std::string sql = "INSERT INTO big VALUES ";
    for (int i = 0; i < 1000; ++i) {
      int id = chunk * 1000 + i;
      if (i > 0) sql += ", ";
      sql += "(" + std::to_string(id) + ", " +
             std::to_string((id * 37) % 1000) + ".5)";
    }
    Exec(sql);
  }
  auto parallel = Exec("SELECT COUNT(*), SUM(v) FROM big WHERE v > 250");
  engine_.set_num_threads(1);
  auto serial = Exec("SELECT COUNT(*), SUM(v) FROM big WHERE v > 250");
  EXPECT_EQ(parallel.batch.column(0)->int_at(0),
            serial.batch.column(0)->int_at(0));
  EXPECT_DOUBLE_EQ(parallel.batch.column(1)->double_at(0),
                   serial.batch.column(1)->double_at(0));
}

// --- parser-level checks -------------------------------------------------

TEST(ParserTest, ParseScriptSplitsStatements) {
  auto stmts = Parser::ParseScript(
      "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;");
  ASSERT_TRUE(stmts.ok());
  EXPECT_EQ(stmts->size(), 3u);
}

TEST(ParserTest, PredictParsesAsFunction) {
  auto stmt = Parser::Parse(
      "SELECT PREDICT(churn_model, age, salary) FROM emp");
  ASSERT_TRUE(stmt.ok());
  const auto& select = static_cast<const SelectStatement&>(**stmt);
  ASSERT_EQ(select.select_list.size(), 1u);
  const Expr& e = *select.select_list[0].expr;
  EXPECT_EQ(e.kind, ExprKind::kFunction);
  EXPECT_EQ(e.function_name, "PREDICT");
  EXPECT_EQ(e.children.size(), 3u);
}

TEST(ParserTest, CreateModelStatement) {
  auto stmt = Parser::Parse("CREATE MODEL m FROM 'pipeline v1'");
  ASSERT_TRUE(stmt.ok());
  const auto& create = static_cast<const CreateModelStatement&>(**stmt);
  EXPECT_EQ(create.model_name, "m");
  EXPECT_EQ(create.definition, "pipeline v1");
}

TEST(ParserTest, StringEscapes) {
  auto e = Parser::ParseExpression("'it''s'");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->literal.string_value(), "it's");
}

TEST(ParserTest, CommentsSkipped) {
  auto stmt = Parser::Parse("SELECT 1 -- trailing comment\n");
  EXPECT_TRUE(stmt.ok());
}

TEST(PlanCacheTest, NormalizeSqlCollapsesLayoutAndCase) {
  EXPECT_EQ(NormalizeSql("  SELECT  id\n\tFROM emp ; "),
            "select id from emp");
  EXPECT_EQ(NormalizeSql("SELECT id FROM EMP"),
            NormalizeSql("select id from emp"));
  // String literals keep their case and inner spacing.
  EXPECT_EQ(NormalizeSql("SELECT 'It  IS' FROM emp"),
            "select 'It  IS' from emp");
  // Different literals stay different keys.
  EXPECT_NE(NormalizeSql("SELECT * FROM emp WHERE name = 'a'"),
            NormalizeSql("SELECT * FROM emp WHERE name = 'b'"));
}

TEST(PlanCacheTest, LruEvictionAtCapacity) {
  PlanCache cache(2);
  auto plan = [] { return std::make_unique<LogicalPlan>(); };
  cache.Insert("a", plan());
  cache.Insert("b", plan());
  EXPECT_NE(cache.Lookup("a"), nullptr);  // refresh "a" -> LRU is "b"
  cache.Insert("c", plan());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_GE(stats.invalidations, 2u);  // eviction of "b" + Clear()
}

TEST(PlanCacheTest, LookupReturnsPrivateClones) {
  PlanCache cache(4);
  cache.Insert("k", std::make_unique<LogicalPlan>());
  PlanPtr first = cache.Lookup("k");
  PlanPtr second = cache.Lookup("k");
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_NE(first.get(), second.get());
}

TEST_F(SqlEngineTest, PlanCacheHitSkipsPlanningAndMatchesResults) {
  QueryResult cold = Exec("SELECT dept, COUNT(*) FROM emp GROUP BY dept");
  EXPECT_FALSE(cold.from_plan_cache);
  QueryResult warm =
      Exec("select  dept, count(*)\nFROM emp GROUP BY dept;");
  EXPECT_TRUE(warm.from_plan_cache);
  EXPECT_EQ(cold.batch.num_rows(), warm.batch.num_rows());
  PlanCacheStats stats = engine_.plan_cache()->stats();
  EXPECT_GE(stats.hits, 1u);
}

TEST_F(SqlEngineTest, PlanCacheSeesLiveDataAfterDml) {
  QueryResult before = Exec("SELECT COUNT(*) FROM emp WHERE dept = 'hr'");
  Exec("INSERT INTO emp VALUES (7, 'gina', 'hr', 70.0, 41)");
  QueryResult after = Exec("SELECT COUNT(*) FROM emp WHERE dept = 'hr'");
  EXPECT_TRUE(after.from_plan_cache);
  EXPECT_EQ(after.batch.column(0)->GetValue(0).int_value(),
            before.batch.column(0)->GetValue(0).int_value() + 1);
}

TEST_F(SqlEngineTest, DdlInvalidatesPlanCache) {
  Exec("CREATE TABLE tmp (x INT)");
  Exec("INSERT INTO tmp VALUES (1), (2)");
  QueryResult sum = Exec("SELECT SUM(x) FROM tmp");
  EXPECT_EQ(sum.batch.column(0)->GetValue(0).double_value(), 3.0);
  Exec("SELECT SUM(x) FROM tmp");  // now cached
  Exec("DROP TABLE tmp");
  EXPECT_FALSE(engine_.Execute("SELECT SUM(x) FROM tmp").ok())
      << "dropped table must not serve a stale cached plan";
  Exec("CREATE TABLE tmp (x INT)");
  Exec("INSERT INTO tmp VALUES (10), (20), (30)");
  QueryResult fresh = Exec("SELECT SUM(x) FROM tmp");
  EXPECT_FALSE(fresh.from_plan_cache);
  EXPECT_EQ(fresh.batch.column(0)->GetValue(0).double_value(), 60.0);
}

TEST_F(SqlEngineTest, ExplainAnalyzeReportsPlanCacheCounters) {
  Exec("SELECT id FROM emp WHERE salary > 90");
  Exec("SELECT id FROM emp WHERE salary > 90");
  QueryResult explained =
      Exec("EXPLAIN ANALYZE SELECT id FROM emp WHERE salary > 90");
  EXPECT_NE(explained.plan_text.find("Plan Cache"), std::string::npos);
  EXPECT_NE(explained.plan_text.find("hits="), std::string::npos);
}

TEST(PlanCacheEngineTest, DisabledCacheNeverHits) {
  Database db;
  EngineOptions options;
  options.enable_plan_cache = false;
  SqlEngine engine(&db, options);
  ASSERT_TRUE(engine.Execute("CREATE TABLE t (x INT)").ok());
  ASSERT_TRUE(engine.Execute("INSERT INTO t VALUES (1)").ok());
  for (int i = 0; i < 3; ++i) {
    auto result = engine.Execute("SELECT x FROM t");
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(result->from_plan_cache);
  }
  EXPECT_EQ(engine.plan_cache()->stats().hits, 0u);
}

TEST(ParserTest, ErrorsAreParseErrors) {
  EXPECT_EQ(Parser::Parse("SELECT FROM").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(Parser::Parse("INSERT INTO").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(Parser::ParseExpression("1 +").status().code(),
            StatusCode::kParseError);
}

TEST_F(SqlEngineTest, PreCancelledTokenFailsBeforeExecution) {
  CancelToken token = CancelToken::Cancellable();
  token.Cancel();
  ExecOptions options;
  options.cancel = token;
  auto result = engine_.Execute("SELECT * FROM emp", options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);

  // DML is checked before the statement starts too: a killed session's
  // queued INSERT must not mutate anything.
  auto dml = engine_.Execute("INSERT INTO emp VALUES "
                             "(7, 'zed', 'eng', 50.0, 30)", options);
  ASSERT_FALSE(dml.ok());
  EXPECT_EQ(dml.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM emp").batch.column(0)->int_at(0), 6);
}

void BuildWideCrossJoin(SqlEngine* engine) {
  for (const char* name : {"biga", "bigb", "bigc"}) {
    ASSERT_TRUE(
        engine->Execute(std::string("CREATE TABLE ") + name + " (x INT)")
            .ok());
    std::string insert = std::string("INSERT INTO ") + name + " VALUES ";
    for (int i = 0; i < 1000; ++i) {
      if (i > 0) insert += ", ";
      insert += "(" + std::to_string(i) + ")";
    }
    ASSERT_TRUE(engine->Execute(insert).ok());
  }
}

constexpr const char* kWideCrossJoin =
    "SELECT COUNT(*) FROM biga CROSS JOIN bigb CROSS JOIN bigc";

TEST_F(SqlEngineTest, DeadlineInterruptsLargeCrossJoin) {
  // A billion-combination nested-loop cross join: never finishes inside
  // the deadline, so the morsel/row poll must surface kDeadlineExceeded.
  BuildWideCrossJoin(&engine_);
  ExecOptions options;
  options.cancel = CancelToken::WithDeadline(50.0);
  auto result = engine_.Execute(kWideCrossJoin, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << result.status().ToString();
}

TEST_F(SqlEngineTest, MidScanKillStopsCrossJoinQuickly) {
  BuildWideCrossJoin(&engine_);
  CancelToken token = CancelToken::Cancellable();
  ExecOptions options;
  options.cancel = token;
  std::thread killer([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    token.Cancel();
  });
  auto result = engine_.Execute(kWideCrossJoin, options);
  killer.join();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
      << result.status().ToString();
  // The kill was honoured promptly: the engine noticed within the
  // acceptance budget, not at the end of the join.
  EXPECT_LT(token.CancelLatencyMs(), 100.0);
}

}  // namespace
}  // namespace flock::sql
