// The compiled dense-slot scoring kernel suite (ctest label: `kernel`).
//
// Three contracts under test, per the dense-kernel design:
//
//  1. Differential: over the full model zoo (linear, logistic, boosted
//     trees, averaged forest — with one-hot categoricals, NaN imputation
//     and zero-variance columns) the kernel, the interpreted RowScorer
//     and the GraphRuntime produce BITWISE-identical scores. Not "close":
//     the kernel replaced the named-row scorer on the serving hot path,
//     so any ulp of drift would surface as nondeterministic predictions
//     across deploys.
//
//  2. Robustness bug-sweep: zero-variance scaler columns no longer divide
//     by zero, rows missing features score as NaN-imputed instead of
//     throwing std::out_of_range, arity mismatches are rejected with an
//     error status at the flock::ScoreBatch boundary, and non-chain
//     graphs fall back to the runtime instead of mis-executing.
//
//  3. Coalescing: the serving layer's MicroBatcher groups concurrent
//     single-row calls into shared kernel invocations with bitwise-equal
//     results, bounded waits, and a drain that flushes partial batches.
//     These tests run under TSan via scripts/check.sh's kernel stage.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/stopwatch.h"
#include "flock/model_registry.h"
#include "flock/scoring.h"
#include "ml/dataset.h"
#include "ml/dense_kernel.h"
#include "ml/graph.h"
#include "ml/linear.h"
#include "ml/pipeline.h"
#include "ml/row_scorer.h"
#include "ml/runtime.h"
#include "ml/tree.h"
#include "serve/coalescer.h"

namespace flock::kernel_test {

using ml::Dataset;
using ml::DenseKernel;
using ml::DenseKernelScratch;
using ml::FeatureKind;
using ml::FeatureSpec;
using ml::GraphNode;
using ml::GraphRuntime;
using ml::LinearModel;
using ml::Matrix;
using ml::ModelGraph;
using ml::OpType;
using ml::Pipeline;
using ml::RowScorer;

/// Bitwise double equality: NaN == NaN, and +0.0 != -0.0. This is the
/// stability contract — EXPECT_DOUBLE_EQ would hide ulp drift and choke
/// on NaN propagation rows.
bool BitEq(double a, double b) {
  uint64_t ua, ub;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

Matrix RandomRaw(size_t rows, size_t numeric, size_t categories,
                 uint64_t seed, double nan_fraction = 0.0) {
  Random rng(seed);
  Matrix raw(rows, numeric + (categories > 0 ? 1 : 0));
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < numeric; ++c) {
      raw.at(r, c) = rng.NextDouble() < nan_fraction
                         ? std::nan("")
                         : rng.NextGaussian() * 2.0 + 1.0;
    }
    if (categories > 0) {
      raw.at(r, numeric) = static_cast<double>(rng.Uniform(categories));
    }
  }
  return raw;
}

std::vector<FeatureSpec> NumericSpecs(size_t n) {
  std::vector<FeatureSpec> specs;
  for (size_t c = 0; c < n; ++c) {
    specs.push_back(
        FeatureSpec{"f" + std::to_string(c), FeatureKind::kNumeric, {}});
  }
  return specs;
}

/// The model zoo. Every pipeline has 4 numeric inputs + 1 categorical and
/// fitted imputer/scaler featurizers, so NaN and one-hot paths are always
/// exercised; the variants differ in the model head.
Pipeline MakeZooPipeline(const std::string& kind, uint64_t seed) {
  Matrix fit_raw = RandomRaw(600, 4, 3, seed);
  std::vector<FeatureSpec> specs = NumericSpecs(4);
  specs.push_back(
      FeatureSpec{"seg", FeatureKind::kCategorical, {"a", "b", "c"}});
  Pipeline pipeline;
  pipeline.SetInputs(std::move(specs));
  pipeline.set_task(ml::ModelTask::kBinaryClassification);
  pipeline.FitFeaturizers(fit_raw, /*with_imputer=*/true,
                          /*with_scaler=*/true);

  Matrix raw = RandomRaw(600, 4, 3, seed + 1);
  Dataset features;
  features.x = pipeline.Transform(raw);
  features.y.resize(raw.rows());
  for (size_t r = 0; r < raw.rows(); ++r) {
    features.y[r] =
        (raw.at(r, 0) - raw.at(r, 1) + 0.3 * raw.at(r, 4)) > 0.5 ? 1.0
                                                                 : 0.0;
  }

  if (kind == "linear" || kind == "logistic") {
    ml::LinearTrainerOptions options;
    options.epochs = 12;
    LinearModel model = TrainLinear(features, options);
    model.logistic = (kind == "logistic");
    pipeline.set_task(kind == "logistic"
                          ? ml::ModelTask::kBinaryClassification
                          : ml::ModelTask::kRegression);
    pipeline.SetLinearModel(model);
  } else if (kind == "gbdt") {
    ml::GbtOptions options;
    options.num_trees = 12;
    options.max_depth = 4;
    options.seed = seed;
    pipeline.SetTreeModel(TrainGradientBoosting(features, options));
  } else {  // forest: averaged ensemble, no link
    ml::ForestOptions options;
    options.num_trees = 9;
    options.tree.max_depth = 4;
    pipeline.SetTreeModel(TrainRandomForest(features, options));
  }
  return pipeline;
}

const char* const kZoo[] = {"linear", "logistic", "gbdt", "forest"};

flock::ModelEntry MakeToyEntry() {
  Pipeline pipeline;
  pipeline.SetInputs({FeatureSpec{"x", FeatureKind::kNumeric, {}},
                      FeatureSpec{"y", FeatureKind::kNumeric, {}}});
  LinearModel model;
  model.weights = {1.5, -2.0};
  model.bias = 0.25;
  model.logistic = true;
  pipeline.SetLinearModel(model);
  flock::ModelEntry entry;
  entry.name = "toy";
  entry.pipeline = pipeline;
  auto graph = pipeline.Compile();
  EXPECT_TRUE(graph.ok());
  entry.graph = std::move(graph).value();
  flock::ModelRegistry::AnalyzeEntry(&entry);
  return entry;
}

namespace {

// ---------------------------------------------------------------------------
// 1. Differential: kernel vs interpreted vs graph, bitwise.

TEST(DenseKernelTest, BitwiseStableAcrossModelZoo) {
  uint64_t seed = 101;
  for (const char* kind : kZoo) {
    SCOPED_TRACE(kind);
    Pipeline pipeline = MakeZooPipeline(kind, seed);
    seed += 7;

    auto graph = pipeline.Compile();
    ASSERT_TRUE(graph.ok()) << graph.status().ToString();
    DenseKernel kernel(*graph);
    ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
    EXPECT_EQ(kernel.input_cols(), 5u);
    EXPECT_GT(kernel.num_steps(), 2u);
    RowScorer interpreted(pipeline);
    GraphRuntime runtime(&*graph);

    // 10% NaNs: imputation must happen identically in all three paths.
    Matrix raw = RandomRaw(512, 4, 3, seed, /*nan_fraction=*/0.1);
    std::vector<double> old_scores = interpreted.ScoreAll(raw);
    auto graph_scores = runtime.RunToScores(raw);
    ASSERT_TRUE(graph_scores.ok());
    DenseKernelScratch scratch;
    std::vector<double> kernel_scores;
    ASSERT_TRUE(kernel.ScoreBatch(raw, &scratch, &kernel_scores).ok());
    ASSERT_EQ(kernel_scores.size(), raw.rows());

    for (size_t r = 0; r < raw.rows(); ++r) {
      EXPECT_PRED2(BitEq, kernel_scores[r], old_scores[r])
          << kind << " kernel vs interpreted, row " << r;
      EXPECT_PRED2(BitEq, kernel_scores[r], (*graph_scores)[r])
          << kind << " kernel vs graph, row " << r;
    }
  }
}

TEST(DenseKernelTest, BatchMatchesSingleRowAcrossBlockBoundary) {
  // 1000 rows > kBlockRows, so ScoreBatch crosses block boundaries and a
  // ragged tail; every score must equal the single-row entry point's.
  Pipeline pipeline = MakeZooPipeline("gbdt", 211);
  auto graph = pipeline.Compile();
  ASSERT_TRUE(graph.ok());
  DenseKernel kernel(*graph);
  ASSERT_TRUE(kernel.ok());
  ASSERT_GT(1000u, DenseKernel::kBlockRows);

  Matrix raw = RandomRaw(1000, 4, 3, 223, 0.05);
  DenseKernelScratch scratch;
  std::vector<double> batch;
  ASSERT_TRUE(kernel.ScoreBatch(raw, &scratch, &batch).ok());
  DenseKernelScratch row_scratch;
  for (size_t r = 0; r < raw.rows(); ++r) {
    EXPECT_PRED2(BitEq, batch[r],
                 kernel.ScoreRow(raw.row(r), &row_scratch))
        << "row " << r;
  }
}

TEST(DenseKernelTest, ScratchReuseAcrossModelsIsClean) {
  // One thread_local scratch serves every model on a worker thread; a
  // wider model must not leave residue that perturbs a narrower one.
  Pipeline wide = MakeZooPipeline("gbdt", 307);
  Pipeline narrow = MakeZooPipeline("logistic", 311);
  auto wide_graph = wide.Compile();
  auto narrow_graph = narrow.Compile();
  ASSERT_TRUE(wide_graph.ok() && narrow_graph.ok());
  DenseKernel wide_kernel(*wide_graph);
  DenseKernel narrow_kernel(*narrow_graph);
  ASSERT_TRUE(wide_kernel.ok() && narrow_kernel.ok());

  Matrix raw = RandomRaw(64, 4, 3, 313);
  DenseKernelScratch fresh;
  std::vector<double> expected;
  ASSERT_TRUE(narrow_kernel.ScoreBatch(raw, &fresh, &expected).ok());

  DenseKernelScratch shared;
  std::vector<double> warmup;
  ASSERT_TRUE(wide_kernel.ScoreBatch(raw, &shared, &warmup).ok());
  std::vector<double> reused;
  ASSERT_TRUE(narrow_kernel.ScoreBatch(raw, &shared, &reused).ok());
  for (size_t r = 0; r < raw.rows(); ++r) {
    EXPECT_PRED2(BitEq, reused[r], expected[r]) << "row " << r;
  }
}

// ---------------------------------------------------------------------------
// 2a. Zero-variance scaler columns (the divide-by-zero bug).

TEST(ScalerGuardTest, ZeroVarianceColumnIsPassThroughEverywhere) {
  // A column whose training std is exactly 0 used to compile to
  // scale = 1/0 = inf, poisoning every score downstream. The guard clamps
  // |std| <= kMinScaleStd to 1.0, so the column passes through centered,
  // and all three scorers agree bitwise.
  Pipeline pipeline;
  pipeline.SetInputs(NumericSpecs(3));
  pipeline.set_task(ml::ModelTask::kRegression);
  pipeline.SetImputer({0.0, 0.0, 0.0});
  pipeline.SetScaler({1.0, 5.0, -2.0}, {2.0, 0.0, 1e-300});
  LinearModel model;
  model.weights = {0.5, 1.0, -0.25};
  model.bias = 0.125;
  model.logistic = false;
  pipeline.SetLinearModel(model);

  auto graph = pipeline.Compile();
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  DenseKernel kernel(*graph);
  ASSERT_TRUE(kernel.ok());
  RowScorer interpreted(pipeline);
  GraphRuntime runtime(&*graph);

  Matrix raw(3, 3);
  raw.data() = {2.0, 5.0, -2.0, -1.0, 7.5, 0.0, 0.0, 5.0, -2.0};
  auto graph_scores = runtime.RunToScores(raw);
  ASSERT_TRUE(graph_scores.ok());
  DenseKernelScratch scratch;
  std::vector<double> kernel_scores;
  ASSERT_TRUE(kernel.ScoreBatch(raw, &scratch, &kernel_scores).ok());
  std::vector<double> old_scores = interpreted.ScoreAll(raw);

  for (size_t r = 0; r < raw.rows(); ++r) {
    EXPECT_TRUE(std::isfinite(kernel_scores[r])) << "row " << r;
    EXPECT_PRED2(BitEq, kernel_scores[r], (*graph_scores)[r]) << r;
    EXPECT_PRED2(BitEq, kernel_scores[r], old_scores[r]) << r;
  }
  // Pass-through of the offset: the guarded columns contribute
  // (v - mean) * 1.0. Row 0 sits exactly on the means, so only the first
  // (healthy) column moves the score.
  EXPECT_DOUBLE_EQ(kernel_scores[0], 0.5 * 0.5 + 0.125);
  // And a guarded column still influences the score (centered, not
  // zeroed): row 1 moves it to 7.5 and the tiny-std column to 0.
  EXPECT_DOUBLE_EQ(kernel_scores[1],
                   0.5 * -1.0 + 1.0 * 2.5 - 0.25 * 2.0 + 0.125);
}

TEST(ScalerGuardTest, PipelineTransformAndScoreRowGuarded) {
  // The same guard covers the eager Pipeline paths (Transform/ScoreRow),
  // which divide by std rather than multiplying by the compiled scale.
  Pipeline pipeline;
  pipeline.SetInputs(NumericSpecs(2));
  pipeline.set_task(ml::ModelTask::kRegression);
  pipeline.SetScaler({0.0, 3.0}, {1.0, 0.0});
  LinearModel model;
  model.weights = {1.0, 1.0};
  model.bias = 0.0;
  model.logistic = false;
  pipeline.SetLinearModel(model);

  Matrix raw(1, 2);
  raw.data() = {2.0, 4.5};
  Matrix transformed = pipeline.Transform(raw);
  EXPECT_DOUBLE_EQ(transformed.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(transformed.at(0, 1), 1.5);  // (4.5-3)/guard(0) = 1.5
  EXPECT_DOUBLE_EQ(pipeline.ScoreRow(raw.row(0)), 3.5);
}

// ---------------------------------------------------------------------------
// 2b. Missing features: NaN-imputed results, never std::out_of_range.

TEST(RowScorerTest, ShortRowScoresAsNaNImputed) {
  // RowScorer::Score used to call row.at(name) and throw out_of_range
  // straight through the serving stack when a feature was absent. Now a
  // missing raw entry behaves exactly like an explicit NaN: the imputer
  // fills it.
  Pipeline pipeline = MakeZooPipeline("gbdt", 401);
  RowScorer scorer(pipeline);

  std::vector<double> full = {1.0, -0.5, 2.0, 0.25, 1.0};
  std::vector<double> with_nan = full;
  with_nan[3] = std::nan("");
  std::vector<double> truncated = {1.0, -0.5, 2.0};  // f3 + seg missing

  double full_score = 0.0, nan_score = 0.0, short_score = 0.0;
  EXPECT_NO_THROW(full_score = scorer.Score(full));
  EXPECT_NO_THROW(nan_score = scorer.Score(with_nan));
  EXPECT_NO_THROW(short_score = scorer.Score(truncated));
  EXPECT_TRUE(std::isfinite(full_score));
  EXPECT_TRUE(std::isfinite(nan_score));
  EXPECT_TRUE(std::isfinite(short_score));

  // A short row is the same as padding with NaN.
  std::vector<double> padded = {1.0, -0.5, 2.0, std::nan(""),
                                std::nan("")};
  EXPECT_PRED2(BitEq, short_score, scorer.Score(padded));
}

TEST(RowScorerTest, MissingFeatureWithoutImputerYieldsNaNNotThrow) {
  // No imputer in the pipeline: the NaN must propagate to the score (a
  // deterministic "don't know"), not explode as an exception.
  Pipeline pipeline;
  pipeline.SetInputs(NumericSpecs(2));
  LinearModel model;
  model.weights = {1.0, 2.0};
  model.bias = 0.0;
  pipeline.SetLinearModel(model);
  RowScorer scorer(pipeline);

  double score = 0.0;
  EXPECT_NO_THROW(score = scorer.Score({3.0}));
  EXPECT_TRUE(std::isnan(score));
}

TEST(RowScorerTest, NoModelFallbackIsDeterministic) {
  // A featurizer-only pipeline has no "score" output. With one input the
  // passthrough value is unambiguous; with several, the old code returned
  // whatever map entry sorted first — now it is a deterministic NaN.
  Pipeline single;
  single.SetInputs(NumericSpecs(1));
  RowScorer single_scorer(single);
  EXPECT_DOUBLE_EQ(single_scorer.Score({4.25}), 4.25);

  Pipeline multi;
  multi.SetInputs(NumericSpecs(3));
  RowScorer multi_scorer(multi);
  double score = 0.0;
  EXPECT_NO_THROW(score = multi_scorer.Score({1.0, 2.0, 3.0}));
  EXPECT_TRUE(std::isnan(score));
}

// ---------------------------------------------------------------------------
// 2c. Non-chain graphs fall back to GraphRuntime.

TEST(DenseKernelTest, RejectsNonChainGraphs) {
  // A hand-wired diamond (concat reads node 0 and node 1) is valid for
  // the runtime but outside the kernel's straight-line contract.
  ModelGraph graph;
  int input = graph.SetInput(2);
  GraphNode scale;
  scale.op = OpType::kScaler;
  scale.inputs = {input};
  scale.offset = {0.0, 0.0};
  scale.scale = {1.0, 1.0};
  int scaled = graph.AddNode(scale);
  GraphNode concat;
  concat.op = OpType::kConcat;
  concat.inputs = {input, scaled};
  int both = graph.AddNode(concat);
  GraphNode gemm;
  gemm.op = OpType::kGemm;
  gemm.inputs = {both};
  gemm.gemm_weights = Matrix(1, 4, 0.5);
  gemm.gemm_bias = {0.0};
  graph.SetOutput(graph.AddNode(gemm));
  ASSERT_TRUE(graph.Finalize().ok());

  DenseKernel kernel(graph);
  EXPECT_FALSE(kernel.ok());
  EXPECT_FALSE(kernel.status().ok());
}

TEST(DenseKernelTest, EmptyGraphIsRejectedNotExecuted) {
  ModelGraph graph;
  graph.SetInput(3);
  graph.SetOutput(0);
  DenseKernel kernel(graph);
  EXPECT_FALSE(kernel.ok());
}

// ---------------------------------------------------------------------------
// flock::ScoreBatch boundary + kernel routing

TEST(ScoringBoundaryTest, MismatchedArityIsRejectedNotTruncated) {
  flock::ModelEntry entry = MakeToyEntry();
  ASSERT_EQ(entry.graph.input_cols(), 2u);

  for (size_t cols : {size_t{1}, size_t{3}, size_t{7}}) {
    Matrix raw(4, cols, 0.5);
    auto scores = flock::ScoreBatch(entry, raw);
    EXPECT_FALSE(scores.ok()) << cols << " cols";
    EXPECT_EQ(scores.status().code(), StatusCode::kInvalidArgument);
    auto verdicts = flock::ScoreThresholdBatch(entry, raw, 0.5,
                                               flock::ThresholdOp::kGt);
    EXPECT_FALSE(verdicts.ok()) << cols << " cols";
    EXPECT_EQ(verdicts.status().code(), StatusCode::kInvalidArgument);
  }

  Matrix ok_raw(4, 2, 0.5);
  EXPECT_TRUE(flock::ScoreBatch(entry, ok_raw).ok());
}

TEST(ScoringBoundaryTest, AnalyzeEntryCompilesKernel) {
  flock::ModelEntry entry = MakeToyEntry();
  ASSERT_NE(entry.kernel, nullptr);
  EXPECT_TRUE(entry.kernel->ok()) << entry.kernel->status().ToString();
  EXPECT_EQ(entry.kernel->input_cols(), 2u);
}

TEST(ScoringBoundaryTest, KernelRoutingMatchesRuntimeFallback) {
  // The same entry scored with and without its kernel must agree bitwise
  // — this is the guarantee that lets every caller (serving, lifecycle
  // shadow/canary, the optimizer's specializations) ignore which path
  // actually ran.
  flock::ModelEntry entry = MakeToyEntry();
  ASSERT_NE(entry.kernel, nullptr);

  Random rng(17);
  Matrix raw(64, 2);
  for (size_t r = 0; r < raw.rows(); ++r) {
    raw.at(r, 0) = rng.NextGaussian();
    raw.at(r, 1) = rng.NextGaussian();
  }
  auto with_kernel = flock::ScoreBatch(entry, raw);
  ASSERT_TRUE(with_kernel.ok());

  flock::ModelEntry no_kernel = entry;
  no_kernel.kernel = nullptr;
  auto fallback = flock::ScoreBatch(no_kernel, raw);
  ASSERT_TRUE(fallback.ok());
  for (size_t r = 0; r < raw.rows(); ++r) {
    EXPECT_PRED2(BitEq, (*with_kernel)[r], (*fallback)[r]) << "row " << r;
  }
}

// ---------------------------------------------------------------------------
// 3. serve::MicroBatcher — coalescing correctness under concurrency.

std::vector<double> ReferenceScores(const flock::ModelEntry& entry,
                                    const Matrix& rows) {
  auto scores = flock::ScoreBatch(entry, rows);
  EXPECT_TRUE(scores.ok());
  return std::move(scores).value();
}

TEST(MicroBatcherTest, CoalescedScoresAreBitwiseIdentical) {
  flock::ModelEntry entry = MakeToyEntry();
  serve::MicroBatchOptions options;
  options.enabled = true;
  options.max_batch = 8;
  options.max_wait_ms = 50.0;
  options.bypass_solo = false;  // force the window even when lonely
  serve::MicroBatcher batcher(options);

  const size_t kThreads = 8;
  Random rng(23);
  Matrix rows(kThreads, 2);
  for (size_t r = 0; r < kThreads; ++r) {
    rows.at(r, 0) = rng.NextGaussian();
    rows.at(r, 1) = rng.NextGaussian();
  }
  std::vector<double> expected = ReferenceScores(entry, rows);

  std::vector<double> got(kThreads, 0.0);
  std::vector<Status> statuses(kThreads);
  std::atomic<size_t> ready{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      auto score = batcher.ScoreOne(entry, rows.row(t), 2);
      statuses[t] = score.status();
      if (score.ok()) got[t] = *score;
    });
  }
  for (auto& th : threads) th.join();

  for (size_t t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(statuses[t].ok()) << statuses[t].ToString();
    EXPECT_PRED2(BitEq, got[t], expected[t]) << "request " << t;
  }
  EXPECT_EQ(batcher.rows_scored(), kThreads);
  // With all 8 released together and a 50 ms window, at least one batch
  // actually coalesced (>= 2 rows in one kernel invocation).
  EXPECT_GT(batcher.rows_coalesced(), 0u);
  EXPECT_LT(batcher.batches_executed() + batcher.bypassed(), kThreads);
  EXPECT_GE(batcher.batch_sizes().count(), 1u);
}

TEST(MicroBatcherTest, DrainFlushesPartialBatchPromptly) {
  // One lone request with a 10 s window and no solo bypass: it becomes a
  // leader and waits. Drain() must flush it immediately — this is what
  // guarantees server Shutdown never waits out a coalescing window.
  flock::ModelEntry entry = MakeToyEntry();
  serve::MicroBatchOptions options;
  options.enabled = true;
  options.max_batch = 32;
  options.max_wait_ms = 10'000.0;
  options.bypass_solo = false;
  serve::MicroBatcher batcher(options);

  Matrix row(1, 2);
  row.data() = {0.7, -0.3};
  std::vector<double> expected = ReferenceScores(entry, row);

  Stopwatch timer;
  auto pending = std::async(std::launch::async, [&] {
    return batcher.ScoreOne(entry, row.row(0), 2);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  batcher.Drain();
  auto score = pending.get();
  ASSERT_TRUE(score.ok()) << score.status().ToString();
  EXPECT_PRED2(BitEq, *score, expected[0]);
  EXPECT_LT(timer.ElapsedMillis(), 5000.0) << "drain did not flush";
}

TEST(MicroBatcherTest, SoloRequestBypassesWindow) {
  flock::ModelEntry entry = MakeToyEntry();
  serve::MicroBatchOptions options;
  options.enabled = true;
  options.max_wait_ms = 10'000.0;  // would hang if the window applied
  options.bypass_solo = true;
  serve::MicroBatcher batcher(options);

  Matrix row(1, 2);
  row.data() = {0.1, 0.2};
  std::vector<double> expected = ReferenceScores(entry, row);
  Stopwatch timer;
  auto score = batcher.ScoreOne(entry, row.row(0), 2);
  ASSERT_TRUE(score.ok());
  EXPECT_PRED2(BitEq, *score, expected[0]);
  EXPECT_LT(timer.ElapsedMillis(), 1000.0);
  EXPECT_EQ(batcher.bypassed(), 1u);
  EXPECT_EQ(batcher.rows_coalesced(), 0u);
}

TEST(MicroBatcherTest, ArityErrorPropagatesToEveryWaiter) {
  // A batch whose execution fails (wrong width for the model) must hand
  // the error to leader and followers alike — nobody hangs, nobody gets
  // a stale score.
  flock::ModelEntry entry = MakeToyEntry();
  serve::MicroBatchOptions options;
  options.enabled = true;
  options.max_batch = 4;
  options.max_wait_ms = 50.0;
  options.bypass_solo = false;
  serve::MicroBatcher batcher(options);

  const size_t kThreads = 4;
  std::vector<double> bad_row = {1.0, 2.0, 3.0};  // model wants width 2
  std::vector<Status> statuses(kThreads);
  std::atomic<size_t> ready{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      statuses[t] = batcher.ScoreOne(entry, bad_row.data(), 3).status();
    });
  }
  for (auto& th : threads) th.join();
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_FALSE(statuses[t].ok()) << "request " << t;
    EXPECT_EQ(statuses[t].code(), StatusCode::kInvalidArgument);
  }
}

TEST(MicroBatcherTest, ConcurrentStressStaysCorrect) {
  // The TSan workhorse: many threads, many rounds, tiny window, mixed
  // batch shapes. Every result must still be bitwise-correct for its own
  // row — coalescing must never cross-wire indices.
  flock::ModelEntry entry = MakeToyEntry();
  serve::MicroBatchOptions options;
  options.enabled = true;
  options.max_batch = 6;
  options.max_wait_ms = 0.2;
  options.bypass_solo = true;
  serve::MicroBatcher batcher(options);

  const size_t kThreads = 8;
  const size_t kRounds = 200;
  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rng(1000 + t);
      DenseKernelScratch scratch;
      for (size_t i = 0; i < kRounds; ++i) {
        double row[2] = {rng.NextGaussian(), rng.NextGaussian()};
        double expected = entry.kernel->ScoreRow(row, &scratch);
        auto score = batcher.ScoreOne(entry, row, 2);
        if (!score.ok() || !BitEq(*score, expected)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(batcher.rows_scored(), kThreads * kRounds);
}

}  // namespace
}  // namespace flock::kernel_test
