// Tests for the concurrent prediction-serving layer (src/serve/):
// protocol framing, session lifecycle, admission control and shedding,
// graceful drain, metrics, and — the core guarantee — differential
// equivalence: queries answered through 8 concurrent sessions must match
// the same queries executed serially, including PREDICT calls and the
// TPC-H templates, with the plan cache hot and under DDL/model-redeploy
// invalidation.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/stopwatch.h"
#include "flock/flock_engine.h"
#include "ml/tree.h"
#include "obs/slow_log.h"
#include "policy/policy_engine.h"
#include "serve/admission.h"
#include "serve/metrics.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/session.h"
#include "workload/tpch.h"

namespace flock::serve {
namespace {

using storage::DataType;
using storage::Value;

std::vector<std::string> Canonicalize(const storage::RecordBatch& batch) {
  std::vector<std::string> rows;
  rows.reserve(batch.num_rows());
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    std::ostringstream out;
    for (size_t c = 0; c < batch.num_columns(); ++c) {
      Value v = batch.column(c)->GetValue(r);
      if (!v.is_null() && v.type() == DataType::kDouble) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.6g", v.double_value());
        out << buf << "|";
      } else {
        out << v.ToString() << "|";
      }
    }
    rows.push_back(out.str());
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// emp/dept from the PR-1 differential corpus: nullable join keys,
/// dangling references, enough rows to exercise real plans.
void BuildJoinTables(flock::FlockEngine* engine) {
  ASSERT_TRUE(engine
                  ->Execute("CREATE TABLE emp (id INT, name VARCHAR, "
                            "dept_id INT, salary DOUBLE)")
                  .ok());
  ASSERT_TRUE(engine
                  ->Execute("CREATE TABLE dept (id INT, dname VARCHAR, "
                            "budget DOUBLE)")
                  .ok());
  std::string dept_insert = "INSERT INTO dept VALUES ";
  for (int d = 0; d < 20; ++d) {
    if (d > 0) dept_insert += ", ";
    dept_insert += "(" + std::to_string(d) + ", 'dept" + std::to_string(d) +
                   "', " + std::to_string(1000 + 137 * d) + ".0)";
  }
  ASSERT_TRUE(engine->Execute(dept_insert).ok());
  std::string emp_insert = "INSERT INTO emp VALUES ";
  for (int i = 0; i < 700; ++i) {
    if (i > 0) emp_insert += ", ";
    std::string dept =
        (i % 11 == 0) ? "NULL" : std::to_string((i * 7) % 25);
    emp_insert += "(" + std::to_string(i) + ", 'e" + std::to_string(i) +
                  "', " + dept + ", " +
                  std::to_string(100 + (i * 37) % 3000) + ".5)";
  }
  ASSERT_TRUE(engine->Execute(emp_insert).ok());
}

/// users table + churn GBDT. `invert_labels` trains a deliberately
/// different model for redeploy tests.
void BuildUsersAndChurn(flock::FlockEngine* engine, size_t rows,
                        bool invert_labels = false,
                        const std::string& deployed_by = "tester") {
  if (!engine->database()->HasTable("users")) {
    ASSERT_TRUE(engine
                    ->Execute("CREATE TABLE users (id INT, age DOUBLE, "
                              "income DOUBLE, tenure DOUBLE, "
                              "clicks DOUBLE, plan VARCHAR)")
                    .ok());
    Random rng(7);
    const char* plans[] = {"basic", "plus", "pro"};
    std::string insert = "INSERT INTO users VALUES ";
    for (size_t i = 0; i < rows; ++i) {
      if (i > 0) insert += ", ";
      char row[160];
      std::snprintf(row, sizeof(row),
                    "(%zu, %.3f, %.3f, %.3f, %.3f, '%s')", i,
                    20 + rng.NextDouble() * 50, 30 + rng.NextDouble() * 120,
                    rng.NextDouble() * 10, rng.NextDouble() * 100,
                    plans[rng.Uniform(3)]);
      insert += row;
    }
    ASSERT_TRUE(engine->Execute(insert).ok());
  }

  Random rng(13);
  ml::Matrix raw(rows, 5);
  std::vector<double> labels(rows);
  for (size_t i = 0; i < rows; ++i) {
    double age = 20 + rng.NextDouble() * 50;
    double income = 30 + rng.NextDouble() * 120;
    raw.at(i, 0) = age;
    raw.at(i, 1) = income;
    raw.at(i, 2) = rng.NextDouble() * 10;
    raw.at(i, 3) = rng.NextDouble() * 100;
    raw.at(i, 4) = static_cast<double>(rng.Uniform(3));
    double z = 0.08 * (age - 45) - 0.02 * (income - 90) -
               0.4 * raw.at(i, 2) + 0.03 * raw.at(i, 3);
    bool churned = z > 0;
    labels[i] = (churned != invert_labels) ? 1.0 : 0.0;
  }
  ml::Pipeline pipeline;
  std::vector<ml::FeatureSpec> specs;
  for (const char* n : {"age", "income", "tenure", "clicks"}) {
    specs.push_back(ml::FeatureSpec{n, ml::FeatureKind::kNumeric, {}});
  }
  specs.push_back(ml::FeatureSpec{"plan", ml::FeatureKind::kCategorical,
                                  {"basic", "plus", "pro"}});
  pipeline.SetInputs(specs);
  pipeline.set_task(ml::ModelTask::kBinaryClassification);
  pipeline.FitFeaturizers(raw, true, true);
  ml::Dataset features;
  features.x = pipeline.Transform(raw);
  features.y = labels;
  ml::GbtOptions gbt;
  gbt.num_trees = 8;
  gbt.max_depth = 3;
  pipeline.SetTreeModel(ml::TrainGradientBoosting(features, gbt));
  ASSERT_TRUE(
      engine->DeployModel("churn", pipeline, deployed_by, "serve_test")
          .ok());
}

constexpr const char* kPredictCall =
    "PREDICT(churn, age, income, tenure, clicks, plan)";

/// The read-only serving corpus: the PR-1 differential queries plus
/// PREDICT traffic.
std::vector<std::string> ServingCorpus() {
  std::string predict(kPredictCall);
  return {
      "SELECT id, name, salary * 2 FROM emp "
      "WHERE salary > 800 AND id % 3 = 0",
      "SELECT emp.name, dept.dname FROM emp "
      "JOIN dept ON emp.dept_id = dept.id",
      "SELECT emp.name, dept.dname FROM emp "
      "JOIN dept ON emp.dept_id = dept.id AND emp.salary > dept.budget",
      "SELECT emp.id, dept.dname FROM emp "
      "LEFT JOIN dept ON emp.dept_id = dept.id",
      "SELECT emp.id, dept.dname FROM emp "
      "LEFT JOIN dept ON emp.dept_id = dept.id AND dept.budget > 2000",
      "SELECT dept.dname, COUNT(*), SUM(emp.salary) "
      "FROM emp JOIN dept ON emp.dept_id = dept.id "
      "WHERE emp.salary > 500 GROUP BY dept.dname",
      "SELECT dept_id, COUNT(*), SUM(salary), AVG(salary), "
      "MIN(salary), MAX(salary) FROM emp GROUP BY dept_id",
      "SELECT COUNT(*), SUM(salary), MIN(id), MAX(id), AVG(salary) "
      "FROM emp",
      "SELECT COUNT(DISTINCT dept_id) FROM emp",
      "SELECT dept_id, COUNT(*) FROM emp GROUP BY dept_id "
      "HAVING COUNT(*) > 20",
      "SELECT DISTINCT dept_id FROM emp",
      "SELECT id, salary FROM emp ORDER BY salary DESC, id",
      "SELECT id, salary FROM emp ORDER BY salary DESC, id LIMIT 25",
      "SELECT id, " + predict + " FROM users WHERE id < 50",
      "SELECT COUNT(*) FROM users WHERE " + predict + " > 0.5",
  };
}

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    flock::FlockEngineOptions options;
    options.sql.num_threads = 1;  // concurrency comes from serving workers
    engine_ = std::make_unique<flock::FlockEngine>(options);
    BuildJoinTables(engine_.get());
    BuildUsersAndChurn(engine_.get(), 300);
  }

  std::unique_ptr<flock::FlockEngine> engine_;
};

// ---------------------------------------------------------------------------
// Protocol

TEST(ServeProtocolTest, ParseRequestLine) {
  EXPECT_EQ(ParseRequestLine("").kind, Request::Kind::kEmpty);
  EXPECT_EQ(ParseRequestLine("   \t").kind, Request::Kind::kEmpty);
  EXPECT_EQ(ParseRequestLine("  .metrics ").kind, Request::Kind::kMetrics);
  EXPECT_EQ(ParseRequestLine(".session").kind, Request::Kind::kSession);
  EXPECT_EQ(ParseRequestLine(".quit").kind, Request::Kind::kQuit);
  EXPECT_EQ(ParseRequestLine(".exit").kind, Request::Kind::kQuit);
  EXPECT_EQ(ParseRequestLine(".bogus").kind, Request::Kind::kEmpty);
  Request query = ParseRequestLine(" SELECT 1 ");
  EXPECT_EQ(query.kind, Request::Kind::kQuery);
  EXPECT_EQ(query.text, "SELECT 1");
}

TEST(ServeProtocolTest, ParseRequestLineCommandArguments) {
  Request prom = ParseRequestLine(".metrics prom");
  EXPECT_EQ(prom.kind, Request::Kind::kMetrics);
  EXPECT_EQ(prom.text, "prom");

  Request trace_on = ParseRequestLine(".trace on");
  EXPECT_EQ(trace_on.kind, Request::Kind::kTrace);
  EXPECT_EQ(trace_on.text, "on");
  Request trace_off = ParseRequestLine("  .trace   off ");
  EXPECT_EQ(trace_off.kind, Request::Kind::kTrace);
  EXPECT_EQ(trace_off.text, "off");

  Request dump = ParseRequestLine(".slowlog");
  EXPECT_EQ(dump.kind, Request::Kind::kSlowLog);
  EXPECT_TRUE(dump.text.empty());
  Request clear = ParseRequestLine(".slowlog clear");
  EXPECT_EQ(clear.kind, Request::Kind::kSlowLog);
  EXPECT_EQ(clear.text, "clear");
  Request threshold = ParseRequestLine(".slowlog 25.5");
  EXPECT_EQ(threshold.kind, Request::Kind::kSlowLog);
  EXPECT_EQ(threshold.text, "25.5");
}

TEST(ServeProtocolTest, EscapeField) {
  EXPECT_EQ(EscapeField("a\tb\nc\\d\re"), "a\\tb\\nc\\\\d\\re");
  EXPECT_EQ(EscapeField("plain"), "plain");
}

TEST(ServeProtocolTest, EncodeError) {
  EXPECT_EQ(EncodeError(Status::InvalidArgument("bad\nthing")),
            "ERR InvalidArgument bad thing\n");
  EXPECT_EQ(EncodeError(Status::Unavailable("queue full")),
            "ERR Unavailable queue full\n");
}

TEST(ServeProtocolTest, EncodeResponseFrames) {
  storage::Database db;
  sql::SqlEngine engine(&db);
  ASSERT_TRUE(engine.Execute("CREATE TABLE t (x INT, s VARCHAR)").ok());
  ASSERT_TRUE(
      engine.Execute("INSERT INTO t VALUES (1, 'a'), (2, 'b\tc')").ok());

  std::string dml =
      EncodeResponse(engine.Execute("INSERT INTO t VALUES (3, 'd')"));
  EXPECT_EQ(dml, "OK 0 0 affected=1\nEND\n");

  std::string rows =
      EncodeResponse(engine.Execute("SELECT x, s FROM t ORDER BY x"));
  EXPECT_EQ(rows,
            "OK 3 2\nx\ts\n1\ta\n2\tb\\tc\n3\td\nEND\n");

  std::string err = EncodeResponse(engine.Execute("SELECT nope FROM t"));
  EXPECT_EQ(err.rfind("ERR ", 0), 0u);
  EXPECT_EQ(err.find('\n'), err.size() - 1);  // single line
}

TEST(ServeProtocolTest, EncodeResponseFramesTraceSection) {
  storage::Database db;
  sql::SqlEngine engine(&db);
  ASSERT_TRUE(engine.Execute("CREATE TABLE t (x INT)").ok());
  ASSERT_TRUE(engine.Execute("INSERT INTO t VALUES (1), (2)").ok());

  sql::ExecOptions traced;
  traced.trace = true;
  std::string out = EncodeResponse(engine.Execute("SELECT x FROM t", traced));
  // The trace section is announced with its line count, then the span
  // tree, then the END frame terminator.
  size_t trace_at = out.find("\nTRACE ");
  ASSERT_NE(trace_at, std::string::npos) << out;
  size_t count_end = out.find('\n', trace_at + 1);
  size_t lines = static_cast<size_t>(
      std::stoul(out.substr(trace_at + 7, count_end - trace_at - 7)));
  EXPECT_GT(lines, 0u);
  std::string body = out.substr(count_end + 1);
  ASSERT_GE(body.size(), 4u);
  EXPECT_EQ(body.substr(body.size() - 4), "END\n");
  body.erase(body.size() - 4);
  size_t body_lines = 0;
  for (char c : body) body_lines += c == '\n';
  EXPECT_EQ(body_lines, lines);
  EXPECT_NE(body.find("execute"), std::string::npos);

  // Untraced responses carry no TRACE section.
  std::string plain = EncodeResponse(engine.Execute("SELECT x FROM t"));
  EXPECT_EQ(plain.find("TRACE "), std::string::npos);
}

// ---------------------------------------------------------------------------
// Metrics

TEST(LatencyHistogramTest, PercentilesAreOrderedAndBounded) {
  LatencyHistogram histogram;
  EXPECT_EQ(histogram.PercentileMs(0.5), 0.0);
  for (int i = 1; i <= 1000; ++i) {
    histogram.Record(i * 10.0);  // 10us .. 10ms
  }
  EXPECT_EQ(histogram.count(), 1000u);
  double p50 = histogram.PercentileMs(0.50);
  double p95 = histogram.PercentileMs(0.95);
  double p99 = histogram.PercentileMs(0.99);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Exact p50 is 5ms; bucketed estimate must land within one bucket.
  EXPECT_NEAR(p50, 5.0, 5.0 * (LatencyHistogram::kGrowth - 1.0));
  EXPECT_NEAR(histogram.mean_ms(), 5.005, 0.1);
  histogram.Reset();
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.PercentileMs(0.99), 0.0);
}

TEST(ServerMetricsTest, SnapshotJsonHasAllSections) {
  ServerMetricsSnapshot snapshot;
  snapshot.requests_ok = 5;
  snapshot.p50_ms = 1.25;
  std::string json = snapshot.ToJson();
  for (const char* key :
       {"\"requests\"", "\"sessions\"", "\"queue_depth\"",
        "\"latency_ms\"", "\"plan_cache\"", "\"p50\"", "\"p95\"",
        "\"p99\"", "\"shed\"", "\"hit_rate\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

// ---------------------------------------------------------------------------
// Sessions

TEST(SessionManagerTest, CapAndLifecycle) {
  SessionManager sessions(2);
  auto a = sessions.Open("alice");
  auto b = sessions.Open("bob");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(sessions.Open("carol").status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(sessions.num_open(), 2u);

  ASSERT_TRUE(sessions.Get((*a)->id()).ok());
  EXPECT_TRUE(sessions.Close((*a)->id()).ok());
  EXPECT_EQ(sessions.Get((*a)->id()).status().code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(sessions.Open("carol").ok());  // capacity freed
  EXPECT_EQ(sessions.total_opened(), 3u);
  EXPECT_EQ(sessions.ListSessions().size(), 2u);
}

// ---------------------------------------------------------------------------
// Admission control

TEST(AdmissionControllerTest, ShedsWhenSaturatedThenRecovers) {
  AdmissionOptions options;
  options.num_workers = 1;
  options.max_queue_depth = 1;
  AdmissionController admission(options);

  std::promise<void> gate;
  std::shared_future<void> opened(gate.get_future());
  std::atomic<bool> started{false};
  ASSERT_TRUE(admission
                  .Admit([&] {
                    started.store(true);
                    opened.wait();
                  })
                  .ok());
  while (!started.load()) std::this_thread::yield();

  // Worker busy: one slot in the queue, then shed.
  ASSERT_TRUE(admission.Admit([&] { opened.wait(); }).ok());
  Status shed = admission.Admit([] {});
  EXPECT_EQ(shed.code(), StatusCode::kUnavailable);
  EXPECT_EQ(admission.shed_count(), 1u);

  gate.set_value();
  admission.Drain();
  EXPECT_TRUE(admission.draining());
  EXPECT_EQ(admission.queue_depth(), 0u);
  Status after = admission.Admit([] {});
  EXPECT_EQ(after.code(), StatusCode::kUnavailable);
  EXPECT_EQ(admission.shed_count(), 2u);
}

// ---------------------------------------------------------------------------
// Server end-to-end

TEST_F(ServeTest, LoopbackClientExecutesQueriesAndPredicts) {
  ServerOptions options;
  options.admission.num_workers = 2;
  PredictionServer server(engine_.get(), options);
  LoopbackClient client(&server);
  ASSERT_TRUE(client.status().ok());

  auto count = client.Execute("SELECT COUNT(*) FROM emp");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->batch.column(0)->GetValue(0).int_value(), 700);

  auto scored = client.Execute(
      std::string("SELECT id, ") + kPredictCall + " FROM users WHERE id < 5");
  ASSERT_TRUE(scored.ok());
  EXPECT_EQ(scored->batch.num_rows(), 5u);

  auto bad = client.Execute("SELECT nope FROM emp");
  EXPECT_FALSE(bad.ok());

  ServerMetricsSnapshot snapshot = server.Snapshot();
  EXPECT_EQ(snapshot.requests_ok, 2u);
  EXPECT_EQ(snapshot.requests_error, 1u);
  EXPECT_EQ(snapshot.latency_count, 3u);
  EXPECT_EQ(snapshot.sessions_open, 1u);

  auto session = server.sessions()->Get(client.session_id());
  ASSERT_TRUE(session.ok());
  EXPECT_EQ((*session)->requests(), 3u);
  EXPECT_EQ((*session)->errors(), 1u);
}

TEST_F(ServeTest, EightConcurrentSessionsMatchSerialExecution) {
  const std::vector<std::string> corpus = ServingCorpus();
  std::vector<std::vector<std::string>> expected;
  for (const std::string& sql : corpus) {
    auto serial = engine_->Execute(sql);
    ASSERT_TRUE(serial.ok()) << sql << ": " << serial.status().ToString();
    expected.push_back(Canonicalize(serial->batch));
  }

  ServerOptions options;
  options.admission.num_workers = 8;
  options.admission.max_queue_depth = 256;
  PredictionServer server(engine_.get(), options);

  constexpr int kSessions = 8;
  std::atomic<int> mismatches{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  threads.reserve(kSessions);
  for (int t = 0; t < kSessions; ++t) {
    threads.emplace_back([&, t] {
      LoopbackClient client(&server);
      if (!client.status().ok()) {
        errors.fetch_add(1);
        return;
      }
      // Each session walks the corpus from a different offset so
      // distinct statements overlap in time.
      for (size_t i = 0; i < corpus.size(); ++i) {
        size_t q = (i + t) % corpus.size();
        auto result = client.Execute(corpus[q]);
        if (!result.ok()) {
          errors.fetch_add(1);
        } else if (Canonicalize(result->batch) != expected[q]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  ServerMetricsSnapshot snapshot = server.Snapshot();
  EXPECT_EQ(snapshot.requests_ok,
            static_cast<uint64_t>(kSessions) * corpus.size());
  EXPECT_EQ(snapshot.requests_shed, 0u);
}

TEST_F(ServeTest, TpchTemplatesThroughConcurrentSessions) {
  flock::FlockEngineOptions options;
  options.sql.num_threads = 1;
  flock::FlockEngine tpch_engine(options);
  workload::TpchWorkload tpch(42);
  ASSERT_TRUE(tpch.CreateSchema(tpch_engine.database()).ok());
  ASSERT_TRUE(tpch.PopulateData(tpch_engine.database(), 200).ok());

  std::vector<std::string> queries;
  std::vector<std::vector<std::string>> expected;
  for (size_t q = 0; q < workload::TpchWorkload::NumTemplates(); ++q) {
    workload::TpchWorkload generator(q * 13 + 3);
    queries.push_back(generator.Instantiate(q));
    auto serial = tpch_engine.Execute(queries.back());
    ASSERT_TRUE(serial.ok())
        << queries.back() << ": " << serial.status().ToString();
    expected.push_back(Canonicalize(serial->batch));
  }

  ServerOptions server_options;
  server_options.admission.num_workers = 8;
  server_options.admission.max_queue_depth = 256;
  PredictionServer server(&tpch_engine, server_options);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      LoopbackClient client(&server);
      for (size_t i = 0; i < queries.size(); ++i) {
        size_t q = (i + t * 3) % queries.size();
        auto result = client.Execute(queries[q]);
        if (!result.ok() || Canonicalize(result->batch) != expected[q]) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ServeTest, MixedLoadTenThousandRequestsZeroErrors) {
  // 8 sessions x 1250 requests: a handful of hot templates (>90 % plan
  // cache hits) mixing scans, joins, aggregates and PREDICT scoring.
  std::vector<std::string> templates = {
      "SELECT COUNT(*) FROM emp WHERE salary > 800",
      "SELECT dept_id, COUNT(*) FROM emp GROUP BY dept_id",
      "SELECT emp.name, dept.dname FROM emp "
      "JOIN dept ON emp.dept_id = dept.id AND dept.budget > 2000",
      std::string("SELECT COUNT(*) FROM users WHERE ") + kPredictCall +
          " > 0.5",
      std::string("SELECT id, ") + kPredictCall +
          " FROM users WHERE id < 20",
      "SELECT MIN(salary), MAX(salary) FROM emp",
  };
  std::vector<std::vector<std::string>> expected;
  for (const std::string& sql : templates) {
    auto serial = engine_->Execute(sql);
    ASSERT_TRUE(serial.ok()) << sql;
    expected.push_back(Canonicalize(serial->batch));
  }

  ServerOptions options;
  options.admission.num_workers = 4;
  options.admission.max_queue_depth = 512;
  PredictionServer server(engine_.get(), options);

  constexpr int kSessions = 8;
  constexpr int kPerSession = 1250;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kSessions; ++t) {
    threads.emplace_back([&, t] {
      LoopbackClient client(&server);
      if (!client.status().ok()) {
        failures.fetch_add(kPerSession);
        return;
      }
      for (int i = 0; i < kPerSession; ++i) {
        size_t q = (i + t) % templates.size();
        auto result = client.Execute(templates[q]);
        if (!result.ok() || Canonicalize(result->batch) != expected[q]) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  ServerMetricsSnapshot snapshot = server.Snapshot();
  EXPECT_EQ(snapshot.requests_ok,
            static_cast<uint64_t>(kSessions) * kPerSession);
  EXPECT_EQ(snapshot.requests_error, 0u);
  EXPECT_EQ(snapshot.requests_shed, 0u);
  EXPECT_GT(snapshot.plan_cache_hit_rate, 0.9);
  EXPECT_LE(snapshot.p50_ms, snapshot.p95_ms);
  EXPECT_LE(snapshot.p95_ms, snapshot.p99_ms);
}

TEST_F(ServeTest, PlanCacheHitRateOnRepeatedTemplates) {
  PredictionServer server(engine_.get());
  LoopbackClient client(&server);
  const std::string sql = "SELECT COUNT(*) FROM emp WHERE salary > 1000";
  for (int i = 0; i < 100; ++i) {
    auto result = client.Execute(sql);
    ASSERT_TRUE(result.ok());
    if (i > 0) EXPECT_TRUE(result->from_plan_cache);
  }
  EXPECT_GT(server.Snapshot().plan_cache_hit_rate, 0.9);
}

TEST_F(ServeTest, DdlInvalidatesCachedPlansAcrossSessions) {
  PredictionServer server(engine_.get());
  LoopbackClient client(&server);
  ASSERT_TRUE(client.Execute("CREATE TABLE kv (x INT)").ok());
  ASSERT_TRUE(client.Execute("INSERT INTO kv VALUES (1), (2)").ok());
  const std::string sum = "SELECT SUM(x) FROM kv";
  auto before = client.Execute(sum);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->batch.column(0)->GetValue(0).double_value(), 3.0);
  ASSERT_TRUE(client.Execute(sum).ok());  // cached now

  ASSERT_TRUE(client.Execute("DROP TABLE kv").ok());
  EXPECT_FALSE(client.Execute(sum).ok())
      << "dropped table must not be served from a stale cached plan";

  ASSERT_TRUE(client.Execute("CREATE TABLE kv (x INT)").ok());
  ASSERT_TRUE(client.Execute("INSERT INTO kv VALUES (10), (20), (30)").ok());
  auto after = client.Execute(sum);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->batch.column(0)->GetValue(0).double_value(), 60.0);
}

TEST_F(ServeTest, ModelRedeployAndDropInvalidateCachedPredictPlans) {
  PredictionServer server(engine_.get());
  LoopbackClient client(&server);
  const std::string score =
      std::string("SELECT ") + kPredictCall + " FROM users WHERE id = 5";
  auto v1 = client.Execute(score);
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(client.Execute(score).ok());  // cached now
  double v1_score = v1->batch.column(0)->GetValue(0).double_value();

  // Redeploy churn with inverted labels: same name, different model.
  BuildUsersAndChurn(engine_.get(), 300, /*invert_labels=*/true);
  auto v2 = client.Execute(score);
  ASSERT_TRUE(v2.ok());
  double v2_score = v2->batch.column(0)->GetValue(0).double_value();
  EXPECT_GT(std::abs(v1_score - v2_score), 1e-9)
      << "redeployed model must not score through a stale cached plan";

  ASSERT_TRUE(client.Execute("DROP MODEL churn").ok());
  EXPECT_FALSE(client.Execute(score).ok())
      << "dropped model must fail, not score through a stale plan";
}

TEST_F(ServeTest, PerSessionPrincipalsEnforceModelAccess) {
  ASSERT_TRUE(
      engine_->models()->SetAccessControl("churn", {"system"}).ok());
  PredictionServer server(engine_.get());

  LoopbackClient admin(&server);  // default principal ("system")
  LoopbackClient intern(&server, "intern");
  const std::string score =
      std::string("SELECT ") + kPredictCall + " FROM users WHERE id = 1";

  ASSERT_TRUE(admin.Execute(score).ok());
  auto denied = intern.Execute(score);
  EXPECT_FALSE(denied.ok());
  // Plain SQL (no model access) still works for the intern.
  EXPECT_TRUE(intern.Execute("SELECT COUNT(*) FROM emp").ok());
}

TEST_F(ServeTest, OverloadShedsWithUnavailable) {
  ServerOptions options;
  options.admission.num_workers = 1;
  options.admission.max_queue_depth = 2;
  PredictionServer server(engine_.get(), options);
  LoopbackClient client(&server);

  // Burst far more requests than worker + queue can hold; submission is
  // much faster than execution, so most of the burst must shed.
  std::vector<std::future<StatusOr<sql::QueryResult>>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(server.Submit(
        client.session_id(),
        "SELECT COUNT(*) FROM emp JOIN dept ON emp.dept_id = dept.id"));
  }
  int ok = 0;
  int shed = 0;
  for (auto& future : futures) {
    auto result = future.get();
    if (result.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(result.status().code(), StatusCode::kUnavailable);
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, 64);
  EXPECT_GE(ok, 1);
  EXPECT_GE(shed, 1);
  EXPECT_EQ(server.Snapshot().requests_shed,
            static_cast<uint64_t>(shed));

  // Overload is transient: once the burst clears, requests are admitted.
  EXPECT_TRUE(client.Execute("SELECT COUNT(*) FROM emp").ok());
}

TEST_F(ServeTest, GracefulDrainCompletesInFlightThenRefuses) {
  ServerOptions options;
  options.admission.num_workers = 2;
  PredictionServer server(engine_.get(), options);
  LoopbackClient client(&server);

  std::vector<std::future<StatusOr<sql::QueryResult>>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(
        server.Submit(client.session_id(), "SELECT COUNT(*) FROM emp"));
  }
  server.Shutdown();  // blocks until admitted requests finish

  for (auto& future : futures) {
    auto result = future.get();  // resolved: completed or shed, never lost
    if (result.ok()) {
      EXPECT_EQ(result->batch.column(0)->GetValue(0).int_value(), 700);
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
    }
  }
  EXPECT_FALSE(server.accepting());
  EXPECT_EQ(server.Execute(client.session_id(), "SELECT 1").status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(server.OpenSession().status().code(),
            StatusCode::kUnavailable);
  server.Shutdown();  // idempotent
}

TEST_F(ServeTest, SessionCapAndBadSessionErrors) {
  ServerOptions options;
  options.max_sessions = 2;
  PredictionServer server(engine_.get(), options);
  auto a = server.OpenSession();
  auto b = server.OpenSession();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(server.OpenSession().status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(server.Execute(999, "SELECT 1").status().code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(server.CloseSession(*a).ok());
  EXPECT_TRUE(server.OpenSession().ok());
}

TEST_F(ServeTest, MetricsJsonRoundTrip) {
  PredictionServer server(engine_.get());
  LoopbackClient client(&server);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.Execute("SELECT COUNT(*) FROM emp").ok());
  }
  // The unified registry groups metrics by subsystem; a non-durable
  // engine still exposes the wal.* family (as zeros).
  std::string json = server.MetricsJson();
  EXPECT_NE(json.find("\"serve\": {"), std::string::npos) << json;
  EXPECT_NE(json.find("\"requests_ok\": 5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"plan_cache\": {"), std::string::npos);
  EXPECT_NE(json.find("\"wal\": {"), std::string::npos);
  EXPECT_NE(json.find("\"slowlog\": {"), std::string::npos);
  EXPECT_NE(json.find("\"latency_ms\": {"), std::string::npos);

  std::string prom = server.MetricsPrometheus();
  EXPECT_NE(prom.find("flock_serve_requests_ok 5"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("# TYPE flock_plan_cache_hits counter"),
            std::string::npos);

  // The legacy flat snapshot is still available for older tooling.
  std::string legacy = server.SnapshotJson();
  EXPECT_NE(legacy.find("\"ok\": 5"), std::string::npos) << legacy;
  ServerMetricsSnapshot snapshot = server.Snapshot();
  EXPECT_EQ(snapshot.latency_count, 5u);
  EXPECT_LE(snapshot.p50_ms, snapshot.p99_ms);
}

TEST_F(ServeTest, PolicyCountersJoinUnifiedMetrics) {
  policy::PolicyEngine policy_engine;
  auto policy = policy::Policy::Create("veto", policy::ActionKind::kReject,
                                       "prediction > 0.5");
  ASSERT_TRUE(policy.ok());
  ASSERT_TRUE(policy_engine.AddPolicy(std::move(policy).value()).ok());
  storage::Schema schema(
      {storage::ColumnDef{"amount", DataType::kDouble, false}});
  ASSERT_TRUE(
      policy_engine.Decide(0.9, schema, {Value::Double(10.0)}).ok());

  ServerOptions options;
  options.policy = &policy_engine;
  PredictionServer server(engine_.get(), options);
  std::string json = server.MetricsJson();
  EXPECT_NE(json.find("\"policy\": {"), std::string::npos) << json;
  EXPECT_NE(json.find("\"decisions\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rejections\": 1"), std::string::npos) << json;
  EXPECT_NE(server.MetricsPrometheus().find("flock_policy_decisions 1"),
            std::string::npos);
}

TEST_F(ServeTest, SessionTraceFlagYieldsSpanTreeOverTpch) {
  // Acceptance path: `.trace on` against a TPC-H query must produce a
  // span tree covering every pipeline stage.
  flock::FlockEngineOptions options;
  options.sql.num_threads = 1;
  flock::FlockEngine tpch_engine(options);
  workload::TpchWorkload tpch(42);
  ASSERT_TRUE(tpch.CreateSchema(tpch_engine.database()).ok());
  ASSERT_TRUE(tpch.PopulateData(tpch_engine.database(), 50).ok());

  PredictionServer server(&tpch_engine);
  LoopbackClient client(&server);
  ASSERT_TRUE(client.status().ok());
  auto session = server.sessions()->Get(client.session_id());
  ASSERT_TRUE(session.ok());

  workload::TpchWorkload generator(3);
  const std::string query = generator.Instantiate(0);

  // Tracing off: no spans on the result.
  auto untraced = client.Execute(query);
  ASSERT_TRUE(untraced.ok());
  EXPECT_TRUE(untraced->trace.empty());

  (*session)->set_trace(true);
  auto traced = client.Execute(query);
  ASSERT_TRUE(traced.ok());
  ASSERT_FALSE(traced->trace.empty());
  auto has_span = [&](const std::string& name) {
    for (const auto& s : traced->trace) {
      if (s.name == name) return true;
    }
    return false;
  };
  // Cache hit or miss, the request-level stages must be covered.
  if (traced->from_plan_cache) {
    EXPECT_TRUE(has_span("plan_cache.lookup"));
    EXPECT_TRUE(has_span("lower"));
  } else {
    for (const char* stage : {"parse", "plan", "optimize", "lower"}) {
      EXPECT_TRUE(has_span(stage)) << stage;
    }
  }
  EXPECT_TRUE(has_span("execute"));
  EXPECT_EQ(traced->plan_digest.size(), 16u);

  (*session)->set_trace(false);
  auto again = client.Execute(query);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->trace.empty());
}

TEST_F(ServeTest, ExplainAnalyzeOverServingPathRendersTrace) {
  PredictionServer server(engine_.get());
  LoopbackClient client(&server);
  auto analyzed =
      client.Execute("EXPLAIN ANALYZE SELECT COUNT(*) FROM emp");
  ASSERT_TRUE(analyzed.ok());
  EXPECT_NE(analyzed->plan_text.find("== Trace =="), std::string::npos)
      << analyzed->plan_text;
  EXPECT_NE(analyzed->plan_text.find("execute"), std::string::npos);
}

TEST_F(ServeTest, SlowLogCapturesServedRequests) {
  PredictionServer server(engine_.get());
  obs::SlowQueryLog* slow_log = engine_->sql()->slow_log();
  slow_log->set_threshold_ms(0.0);  // every statement is an outlier
  LoopbackClient client(&server);
  ASSERT_TRUE(client.Execute("SELECT  COUNT(*) FROM emp").ok());
  ASSERT_TRUE(client.Execute("SELECT COUNT(*) FROM emp").ok());

  EXPECT_GE(slow_log->total_recorded(), 2u);
  std::vector<obs::SlowQueryEntry> entries = slow_log->Dump();
  ASSERT_FALSE(entries.empty());
  EXPECT_EQ(entries.back().sql, "select count(*) from emp");
  EXPECT_EQ(entries.back().plan_digest.size(), 16u);
  EXPECT_TRUE(entries.back().from_plan_cache);

  std::string json = server.SlowLogJson();
  EXPECT_NE(json.find("\"threshold_ms\": 0.000"), std::string::npos)
      << json;
  EXPECT_NE(json.find("select count(*) from emp"), std::string::npos);
  // The registry mirrors the slow-log state.
  EXPECT_NE(server.MetricsJson().find("\"slowlog\": {"), std::string::npos);

  slow_log->Clear();
  EXPECT_EQ(slow_log->Dump().size(), 0u);
}

// ---------------------------------------------------------------------
// Retry-with-backoff on Unavailable (replica catch-up and shed reads
// ride this; see serve/retry.h).
// ---------------------------------------------------------------------

TEST(RetryTest, RetriesUnavailableUntilSuccess) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.base_backoff_ms = 0;  // no sleeping in unit tests
  policy.max_backoff_ms = 0;
  int calls = 0;
  Status s = RetryUnavailable(policy, [&]() -> Status {
    return ++calls < 3 ? Status::Unavailable("not yet") : Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, GivesUpAfterMaxAttemptsAndKeepsLastError) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff_ms = 0;
  policy.max_backoff_ms = 0;
  int calls = 0;
  Status s = RetryUnavailable(policy, [&]() -> Status {
    ++calls;
    return Status::Unavailable("still shedding #" + std::to_string(calls));
  });
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_NE(s.message().find("#3"), std::string::npos);
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, NonUnavailableErrorsAreNeverRetried) {
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.base_backoff_ms = 0;
  policy.max_backoff_ms = 0;
  int calls = 0;
  Status s = RetryUnavailable(policy, [&]() -> Status {
    ++calls;
    return Status::InvalidArgument("syntax error");
  });
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);  // retrying a permanent error only repeats it
}

TEST(RetryTest, SeededJitterIsDeterministic) {
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.base_backoff_ms = 5;
  policy.max_backoff_ms = 200;
  policy.jitter = 0.2;
  policy.jitter_seed = 42;

  // The same seed replays the same backoff sequence.
  std::mt19937_64 rng_a{policy.jitter_seed};
  std::mt19937_64 rng_b{policy.jitter_seed};
  std::vector<int> first, second;
  for (int attempt = 0; attempt < 5; ++attempt) {
    first.push_back(JitteredBackoffMs(policy, attempt, rng_a));
    second.push_back(JitteredBackoffMs(policy, attempt, rng_b));
  }
  EXPECT_EQ(first, second);

  // Every backoff stays inside the +/-jitter envelope of base << attempt
  // capped at max.
  for (int attempt = 0; attempt < 5; ++attempt) {
    int nominal = std::min(policy.base_backoff_ms << attempt,
                           policy.max_backoff_ms);
    EXPECT_GE(first[attempt], static_cast<int>(nominal * 0.8) - 1);
    EXPECT_LE(first[attempt], static_cast<int>(nominal * 1.2) + 1);
  }

  // A different seed diverges somewhere in the sequence.
  std::mt19937_64 rng_c{7};
  std::vector<int> third;
  for (int attempt = 0; attempt < 5; ++attempt) {
    third.push_back(JitteredBackoffMs(policy, attempt, rng_c));
  }
  EXPECT_NE(first, third);

  // With jitter disabled the seed is irrelevant: the sequence is exactly
  // the exponential schedule.
  policy.jitter = 0.0;
  std::mt19937_64 rng_d{99};
  for (int attempt = 0; attempt < 5; ++attempt) {
    EXPECT_EQ(JitteredBackoffMs(policy, attempt, rng_d),
              std::min(policy.base_backoff_ms << attempt,
                       policy.max_backoff_ms));
  }
}

TEST(RetryTest, DefaultPolicyIsSingleAttempt) {
  int calls = 0;
  Status s = RetryUnavailable(RetryPolicy{}, [&]() -> Status {
    ++calls;
    return Status::Unavailable("shed");
  });
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 1);
}

TEST_F(ServeTest, LoopbackClientRetriesShedRequests) {
  // One worker, no queue: a request submitted while the worker is busy
  // is shed with Unavailable. A retrying client absorbs the shed.
  ServerOptions options;
  options.admission.num_workers = 1;
  options.admission.max_queue_depth = 1;
  PredictionServer server(engine_.get(), options);

  RetryPolicy retry;
  retry.max_attempts = 8;
  retry.base_backoff_ms = 1;
  retry.max_backoff_ms = 8;
  LoopbackClient slow(&server);
  LoopbackClient retrying(&server, "", retry);
  ASSERT_TRUE(slow.status().ok());
  ASSERT_TRUE(retrying.status().ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 25; ++i) {
        auto result = retrying.Execute("SELECT COUNT(*) FROM emp");
        if (!result.ok()) failures++;
      }
    });
  }
  for (auto& t : threads) t.join();
  // With 8 attempts and backoff the retrying client should ride out the
  // shed window virtually every time (a plain client at this contention
  // level sheds constantly — see OverloadShedsWithUnavailable).
  EXPECT_LE(failures.load(), 2);
  server.Shutdown();
}

// ---------------------------------------------------------------------------
// Cross-request micro-batching (serve/coalescer.h)

/// Point-PREDICT corpus: every statement scores exactly one row, so each
/// lands in the coalescer's single-row path.
std::vector<std::string> PointPredictCorpus(size_t n) {
  std::vector<std::string> corpus;
  corpus.reserve(n);
  for (size_t k = 0; k < n; ++k) {
    corpus.push_back("SELECT id, " + std::string(kPredictCall) +
                     " FROM users WHERE id = " + std::to_string(k));
  }
  return corpus;
}

TEST_F(ServeTest, MicroBatchedPredictionsMatchSerialExecution) {
  // The coalescing differential: 8 concurrent sessions hammering
  // single-row PREDICT statements through an enabled micro-batcher must
  // return exactly what the engine returns serially with no batcher
  // installed. Coalescing may only change latency, never answers.
  const std::vector<std::string> corpus = PointPredictCorpus(50);
  std::vector<std::vector<std::string>> expected;
  for (const std::string& sql : corpus) {
    auto serial = engine_->Execute(sql);
    ASSERT_TRUE(serial.ok()) << sql << ": " << serial.status().ToString();
    expected.push_back(Canonicalize(serial->batch));
  }

  ServerOptions options;
  options.admission.num_workers = 8;
  options.admission.max_queue_depth = 256;
  options.microbatch.enabled = true;
  options.microbatch.max_batch = 8;
  options.microbatch.max_wait_ms = 3.0;
  // Always open a window, even for the first lone request: that makes
  // coalescing deterministic for the assertion below (the solo-bypass
  // heuristic is covered by MicroBatchSoloTrafficBypassesTheWindow).
  options.microbatch.bypass_solo = false;
  PredictionServer server(engine_.get(), options);
  ASSERT_NE(server.microbatcher(), nullptr);

  constexpr int kSessions = 8;
  std::atomic<int> mismatches{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  threads.reserve(kSessions);
  for (int t = 0; t < kSessions; ++t) {
    threads.emplace_back([&, t] {
      LoopbackClient client(&server);
      if (!client.status().ok()) {
        errors.fetch_add(1);
        return;
      }
      for (size_t i = 0; i < corpus.size(); ++i) {
        size_t q = (i + t * 7) % corpus.size();
        auto result = client.Execute(corpus[q]);
        if (!result.ok()) {
          errors.fetch_add(1);
        } else if (Canonicalize(result->batch) != expected[q]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);

  const MicroBatcher* batcher = server.microbatcher();
  EXPECT_EQ(server.microbatcher()->rows_scored(),
            static_cast<uint64_t>(kSessions) * corpus.size());
  // With 8 workers overlapping inside a 2 ms window, some requests must
  // actually have shared a kernel invocation.
  EXPECT_GT(batcher->rows_coalesced(), 0u);
  EXPECT_GE(batcher->batch_sizes().count(), 1u);

  // The batching stage is observable: serve.batch_size and the coalesce
  // counters join the unified metrics exposition.
  // (ToJson nests "serve.batch_size" as serve -> batch_size.)
  std::string json = server.MetricsJson();
  EXPECT_NE(json.find("\"batch_size\""), std::string::npos);
  EXPECT_NE(json.find("\"coalesce_batches\""), std::string::npos);
  EXPECT_NE(json.find("\"coalesce_wait_ms\""), std::string::npos);
  std::string prom = server.MetricsPrometheus();
  EXPECT_NE(prom.find("serve_batch_size"), std::string::npos);
}

TEST_F(ServeTest, MicroBatchSoloTrafficBypassesTheWindow) {
  // A lone client must never pay the coalescing wait: every one of its
  // requests bypasses the window (scored directly), so 10 sequential
  // point-PREDICTs complete far faster than 10 * max_wait_ms.
  ServerOptions options;
  options.admission.num_workers = 2;
  options.microbatch.enabled = true;
  options.microbatch.max_wait_ms = 100.0;
  PredictionServer server(engine_.get(), options);

  LoopbackClient client(&server);
  ASSERT_TRUE(client.status().ok());
  const std::vector<std::string> corpus = PointPredictCorpus(10);
  Stopwatch timer;
  for (const std::string& sql : corpus) {
    ASSERT_TRUE(client.Execute(sql).ok());
  }
  EXPECT_LT(timer.ElapsedMillis(), 10 * 100.0);
  EXPECT_EQ(server.microbatcher()->bypassed(),
            static_cast<uint64_t>(corpus.size()));
  EXPECT_EQ(server.microbatcher()->rows_coalesced(), 0u);
}

TEST_F(ServeTest, KillAbortsInFlightCrossJoin) {
  // The `.kill <session>` contract: a long-running statement aborts with
  // kCancelled within the acceptance budget (100 ms from the kill), the
  // worker drains normally, and the cancel metrics record the event.
  ASSERT_TRUE(engine_
                  ->Execute("CREATE TABLE biga (x INT)")
                  .ok());
  ASSERT_TRUE(engine_->Execute("CREATE TABLE bigb (x INT)").ok());
  for (const char* name : {"biga", "bigb"}) {
    std::string insert = std::string("INSERT INTO ") + name + " VALUES ";
    for (int i = 0; i < 2000; ++i) {
      if (i > 0) insert += ", ";
      insert += "(" + std::to_string(i) + ")";
    }
    ASSERT_TRUE(engine_->Execute(insert).ok());
  }

  ServerOptions options;
  options.admission.num_workers = 2;
  PredictionServer server(engine_.get(), options);
  auto id_or = server.OpenSession();
  ASSERT_TRUE(id_or.ok());

  std::future<StatusOr<sql::QueryResult>> pending = server.Submit(
      *id_or,
      "SELECT COUNT(*) FROM biga CROSS JOIN bigb CROSS JOIN biga");
  // Let the worker get into the join before killing it.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Stopwatch kill_timer;
  ASSERT_TRUE(server.KillSession(*id_or).ok());
  auto result = pending.get();
  const double kill_to_done_ms = kill_timer.ElapsedMillis();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
      << result.status().ToString();
  EXPECT_LT(kill_to_done_ms, 100.0);

  // A second kill finds nothing in flight.
  EXPECT_EQ(server.KillSession(*id_or).code(), StatusCode::kNotFound);
  // Unknown session.
  EXPECT_EQ(server.KillSession(999999).code(), StatusCode::kNotFound);

  // exec.cancelled and the latency histogram saw the abort.
  std::string json = server.MetricsJson();
  EXPECT_NE(json.find("\"cancelled\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("cancel_latency_ms"), std::string::npos);

  // The session (and its worker) is still usable — no leaked state.
  auto after = server.Execute(*id_or, "SELECT COUNT(*) FROM biga");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
}

TEST_F(ServeTest, QueuedRequestPastDeadlineIsShedUnexecuted) {
  // One worker, so a long statement holds the only slot. A queued
  // request whose deadline fires while waiting must be shed with
  // kDeadlineExceeded before any of its SQL runs — the INSERT below must
  // never happen.
  ASSERT_TRUE(engine_->Execute("CREATE TABLE shed_probe (x INT)").ok());
  ASSERT_TRUE(engine_->Execute("CREATE TABLE slow_a (x INT)").ok());
  std::string insert = "INSERT INTO slow_a VALUES ";
  for (int i = 0; i < 1500; ++i) {
    if (i > 0) insert += ", ";
    insert += "(" + std::to_string(i) + ")";
  }
  ASSERT_TRUE(engine_->Execute(insert).ok());

  ServerOptions options;
  options.admission.num_workers = 1;
  PredictionServer server(engine_.get(), options);
  auto blocker_id = server.OpenSession();
  auto victim_id = server.OpenSession();
  ASSERT_TRUE(blocker_id.ok());
  ASSERT_TRUE(victim_id.ok());

  // Occupy the worker with a long cross join (killed at the end).
  std::future<StatusOr<sql::QueryResult>> blocker = server.Submit(
      *blocker_id,
      "SELECT COUNT(*) FROM slow_a CROSS JOIN slow_a CROSS JOIN slow_a");
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  auto victim_or = server.sessions()->Get(*victim_id);
  ASSERT_TRUE(victim_or.ok());
  (*victim_or)->set_deadline_ms(40.0);
  std::future<StatusOr<sql::QueryResult>> victim = server.Submit(
      *victim_id, "INSERT INTO shed_probe VALUES (1)");

  // Let the victim's deadline fire while it is still queued, then free
  // the worker: the dequeue-time check sheds the victim without ever
  // starting its statement.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  ASSERT_TRUE(server.KillSession(*blocker_id).ok());
  EXPECT_EQ(blocker.get().status().code(), StatusCode::kCancelled);

  auto shed = victim.get();
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kDeadlineExceeded)
      << shed.status().ToString();
  EXPECT_GE(server.admission()->deadline_shed_count(), 1u);

  // The shed INSERT never executed.
  auto probe = engine_->Execute("SELECT COUNT(*) FROM shed_probe");
  ASSERT_TRUE(probe.ok());
  EXPECT_EQ(probe->batch.column(0)->int_at(0), 0);
}

TEST_F(ServeTest, MicroBatchFollowerDeadlineDoesNotStickToBatch) {
  // A follower parked on a coalescing batch whose leader holds a long
  // window must leave with kDeadlineExceeded when its own deadline
  // fires — never wait out the leader. The leader (no deadline) still
  // completes its request correctly afterwards.
  const std::string sql = PointPredictCorpus(1)[0];
  auto serial = engine_->Execute(sql);
  ASSERT_TRUE(serial.ok());
  const std::vector<std::string> expected = Canonicalize(serial->batch);

  ServerOptions options;
  options.admission.num_workers = 4;
  options.microbatch.enabled = true;
  options.microbatch.max_batch = 32;        // never fills
  options.microbatch.max_wait_ms = 2000.0;  // leader parks for 2 s
  options.microbatch.bypass_solo = false;
  PredictionServer server(engine_.get(), options);

  auto leader_id = server.OpenSession();
  auto follower_id = server.OpenSession();
  ASSERT_TRUE(leader_id.ok());
  ASSERT_TRUE(follower_id.ok());

  std::future<StatusOr<sql::QueryResult>> leader =
      server.Submit(*leader_id, sql);
  // Let the leader open the window before the follower joins.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  auto follower_session = server.sessions()->Get(*follower_id);
  ASSERT_TRUE(follower_session.ok());
  (*follower_session)->set_deadline_ms(50.0);
  Stopwatch timer;
  auto follower = server.Submit(*follower_id, sql).get();
  const double follower_ms = timer.ElapsedMillis();

  ASSERT_FALSE(follower.ok());
  EXPECT_EQ(follower.status().code(), StatusCode::kDeadlineExceeded)
      << follower.status().ToString();
  EXPECT_LT(follower_ms, 1000.0) << "follower waited out the leader";

  auto leader_result = leader.get();
  ASSERT_TRUE(leader_result.ok()) << leader_result.status().ToString();
  EXPECT_EQ(Canonicalize(leader_result->batch), expected);
}

TEST_F(ServeTest, DefaultDeadlineAppliesAndSessionOverrides) {
  ASSERT_TRUE(engine_->Execute("CREATE TABLE slow_b (x INT)").ok());
  std::string insert = "INSERT INTO slow_b VALUES ";
  for (int i = 0; i < 1500; ++i) {
    if (i > 0) insert += ", ";
    insert += "(" + std::to_string(i) + ")";
  }
  ASSERT_TRUE(engine_->Execute(insert).ok());
  const std::string slow =
      "SELECT COUNT(*) FROM slow_b CROSS JOIN slow_b CROSS JOIN slow_b";

  ServerOptions options;
  options.admission.num_workers = 2;
  options.default_deadline_ms = 60.0;
  PredictionServer server(engine_.get(), options);
  auto id_or = server.OpenSession();
  ASSERT_TRUE(id_or.ok());

  // Inherited server default: the slow query dies at ~60 ms.
  auto capped = server.Execute(*id_or, slow);
  ASSERT_FALSE(capped.ok());
  EXPECT_EQ(capped.status().code(), StatusCode::kDeadlineExceeded);

  // `.deadline off` equivalent: the session opts out of the default and
  // a fast query (which would also pass under the default) still works.
  auto session_or = server.sessions()->Get(*id_or);
  ASSERT_TRUE(session_or.ok());
  (*session_or)->set_deadline_ms(0.0);
  auto uncapped = server.Execute(*id_or, "SELECT COUNT(*) FROM slow_b");
  ASSERT_TRUE(uncapped.ok()) << uncapped.status().ToString();

  // Tighter per-session override.
  (*session_or)->set_deadline_ms(30.0);
  auto tight = server.Execute(*id_or, slow);
  ASSERT_FALSE(tight.ok());
  EXPECT_EQ(tight.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(server.MetricsJson().find("deadline_exceeded"),
            std::string::npos);
}

TEST_F(ServeTest, ProtocolParsesKillAndDeadline) {
  Request kill = ParseRequestLine(".kill 42\n");
  EXPECT_EQ(kill.kind, Request::Kind::kKill);
  EXPECT_EQ(kill.text, "42");
  Request deadline = ParseRequestLine(".deadline 250");
  EXPECT_EQ(deadline.kind, Request::Kind::kDeadline);
  EXPECT_EQ(deadline.text, "250");
  Request off = ParseRequestLine(".deadline off");
  EXPECT_EQ(off.kind, Request::Kind::kDeadline);
  EXPECT_EQ(off.text, "off");
}

TEST_F(ServeTest, RetryPolicyNeverRetriesCancelCodes) {
  // Satellite 3's audit, pinned by test: only kUnavailable is retryable.
  // A cancelled or deadline-exceeded op must come back after exactly one
  // attempt — the budget is spent; retrying would double the damage.
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.base_backoff_ms = 1;
  for (Status terminal :
       {Status::Cancelled("killed"), Status::DeadlineExceeded("late"),
        Status::Corruption("damaged")}) {
    int attempts = 0;
    Status last = RetryUnavailable(policy, [&]() -> Status {
      ++attempts;
      return terminal;
    });
    EXPECT_EQ(last.code(), terminal.code());
    EXPECT_EQ(attempts, 1) << StatusCodeName(terminal.code());
  }
  // And the cancel-aware overload stops a retryable loop the moment the
  // token fires, without sleeping out the remaining backoff budget.
  CancelToken token = CancelToken::Cancellable();
  int attempts = 0;
  Status looped =
      RetryUnavailable(policy, token, [&]() -> Status {
        ++attempts;
        if (attempts == 2) token.Cancel();
        return Status::Unavailable("try again");
      });
  EXPECT_EQ(looped.code(), StatusCode::kCancelled);
  EXPECT_EQ(attempts, 2);
}

TEST_F(ServeTest, ShutdownFlushesPartialMicroBatch) {
  // A leader parked on a long coalescing window (10 s, no solo bypass)
  // must not stall graceful drain: Shutdown flushes the batcher before
  // draining admission, so the in-flight request completes promptly and
  // correctly.
  const std::string sql = PointPredictCorpus(1)[0];
  auto serial = engine_->Execute(sql);
  ASSERT_TRUE(serial.ok());
  const std::vector<std::string> expected = Canonicalize(serial->batch);

  ServerOptions options;
  options.admission.num_workers = 2;
  options.microbatch.enabled = true;
  options.microbatch.max_batch = 32;
  options.microbatch.max_wait_ms = 10'000.0;
  options.microbatch.bypass_solo = false;
  PredictionServer server(engine_.get(), options);

  auto id_or = server.OpenSession();
  ASSERT_TRUE(id_or.ok());
  Stopwatch timer;
  std::future<StatusOr<sql::QueryResult>> pending =
      server.Submit(*id_or, sql);
  // Let the worker reach the leader wait before shutting down.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server.Shutdown();
  auto result = pending.get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(Canonicalize(result->batch), expected);
  EXPECT_LT(timer.ElapsedMillis(), 5000.0)
      << "Shutdown waited out the coalescing window";
}

}  // namespace
}  // namespace flock::serve
