// Differential test for zone-map pruning: every query must produce
// identical (order-normalized) results with pruning force-enabled and
// force-disabled over tables whose tiny segment capacity makes pruning
// decisions frequent. Also pins down the execution-time contract: scan
// morsels are zero-copy views of segment memory, cached plans survive
// DML that changes pruning decisions, and the segments_scanned/pruned
// counters surface through EXPLAIN ANALYZE and the engine totals.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "sql/engine.h"
#include "sql/physical_plan.h"
#include "storage/database.h"
#include "workload/tpch.h"

namespace flock::sql {
namespace {

using storage::Database;
using storage::DataType;
using storage::Value;

std::vector<std::string> Canonicalize(const storage::RecordBatch& batch) {
  std::vector<std::string> rows;
  rows.reserve(batch.num_rows());
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    std::ostringstream out;
    for (size_t c = 0; c < batch.num_columns(); ++c) {
      Value v = batch.column(c)->GetValue(r);
      if (!v.is_null() && v.type() == DataType::kDouble) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.6g", v.double_value());
        out << buf << "|";
      } else {
        out << v.ToString() << "|";
      }
    }
    rows.push_back(out.str());
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

EngineOptions PruningOptions(bool prune) {
  EngineOptions options;
  options.num_threads = 2;
  options.morsel_size = 64;
  options.enable_zone_map_pruning = prune;
  return options;
}

/// emp/dept at segment capacity 16: emp's 700 rows span ~44 segments, so
/// range predicates on the row-order-correlated `id` prune aggressively
/// while predicates on the scrambled `salary` mostly cannot.
Database* JoinDb() {
  static Database* db = [] {
    auto* database = new Database();
    database->set_default_segment_capacity(16);
    SqlEngine setup(database, PruningOptions(true));
    EXPECT_TRUE(setup
                    .Execute("CREATE TABLE emp (id INT, name VARCHAR, "
                             "dept_id INT, salary DOUBLE)")
                    .ok());
    EXPECT_TRUE(setup
                    .Execute("CREATE TABLE dept (id INT, dname VARCHAR, "
                             "budget DOUBLE)")
                    .ok());
    std::string dept_insert = "INSERT INTO dept VALUES ";
    for (int d = 0; d < 20; ++d) {
      if (d > 0) dept_insert += ", ";
      dept_insert += "(" + std::to_string(d) + ", 'dept" +
                     std::to_string(d) + "', " +
                     std::to_string(1000 + 137 * d) + ".0)";
    }
    EXPECT_TRUE(setup.Execute(dept_insert).ok());
    std::string emp_insert = "INSERT INTO emp VALUES ";
    for (int i = 0; i < 700; ++i) {
      if (i > 0) emp_insert += ", ";
      std::string dept =
          (i % 11 == 0) ? "NULL" : std::to_string((i * 7) % 25);
      emp_insert += "(" + std::to_string(i) + ", 'e" + std::to_string(i) +
                    "', " + dept + ", " +
                    std::to_string(100 + (i * 37) % 3000) + ".5)";
    }
    EXPECT_TRUE(setup.Execute(emp_insert).ok());
    return database;
  }();
  return db;
}

/// Runs `sql` with pruning on and off; expects identical multisets.
void ExpectSameResults(Database* db, const std::string& sql,
                       bool count_only = false) {
  SqlEngine pruned(db, PruningOptions(true));
  SqlEngine full(db, PruningOptions(false));
  auto a = pruned.Execute(sql);
  auto b = full.Execute(sql);
  ASSERT_TRUE(a.ok()) << sql << ": " << a.status().ToString();
  ASSERT_TRUE(b.ok()) << sql << ": " << b.status().ToString();
  if (count_only) {
    EXPECT_EQ(a->batch.num_rows(), b->batch.num_rows()) << sql;
    return;
  }
  EXPECT_EQ(Canonicalize(a->batch), Canonicalize(b->batch)) << sql;
  // Pruning-off executions must never report a pruned segment.
  EXPECT_EQ(full.segments_pruned_total(), 0u) << sql;
}

TEST(PruningDifferentialTest, RangeOnRowOrderCorrelatedColumn) {
  ExpectSameResults(JoinDb(), "SELECT id, name FROM emp WHERE id < 50");
  ExpectSameResults(JoinDb(), "SELECT id FROM emp WHERE id >= 650");
  ExpectSameResults(JoinDb(), "SELECT id FROM emp WHERE id > 699");
}

TEST(PruningDifferentialTest, EqualityAndBetween) {
  ExpectSameResults(JoinDb(), "SELECT id, salary FROM emp WHERE id = 123");
  ExpectSameResults(JoinDb(),
                    "SELECT id FROM emp WHERE id BETWEEN 200 AND 240");
}

TEST(PruningDifferentialTest, NullPredicates) {
  ExpectSameResults(JoinDb(),
                    "SELECT id FROM emp WHERE dept_id IS NULL");
  ExpectSameResults(JoinDb(),
                    "SELECT id FROM emp WHERE dept_id IS NOT NULL");
}

TEST(PruningDifferentialTest, ConjunctionsAndUncorrelatedColumns) {
  ExpectSameResults(JoinDb(),
                    "SELECT id, salary FROM emp "
                    "WHERE id < 100 AND salary > 800");
  ExpectSameResults(JoinDb(),
                    "SELECT id FROM emp WHERE salary > 2900");
  // Disjunctions are not pushed down — pruning must stay out of the way.
  ExpectSameResults(JoinDb(),
                    "SELECT id FROM emp WHERE id < 10 OR id > 690");
}

TEST(PruningDifferentialTest, JoinsAndAggregatesAboveAPrunedScan) {
  ExpectSameResults(JoinDb(),
                    "SELECT emp.name, dept.dname FROM emp "
                    "JOIN dept ON emp.dept_id = dept.id "
                    "WHERE emp.id < 200");
  ExpectSameResults(JoinDb(),
                    "SELECT dept_id, COUNT(*), SUM(salary) FROM emp "
                    "WHERE id BETWEEN 100 AND 400 GROUP BY dept_id");
  ExpectSameResults(JoinDb(),
                    "SELECT COUNT(*), MIN(id), MAX(id) FROM emp "
                    "WHERE id >= 350");
}

TEST(PruningDifferentialTest, PruningActuallyFires) {
  SqlEngine engine(JoinDb(), PruningOptions(true));
  auto result = engine.Execute("SELECT id FROM emp WHERE id < 50");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->batch.num_rows(), 50u);
  uint64_t scanned = 0, pruned = 0;
  for (const OperatorMetricsSnapshot& snap : result->operator_metrics) {
    scanned += snap.segments_scanned;
    pruned += snap.segments_pruned;
  }
  // 700 rows at capacity 16; only the first ~4 segments can hold id < 50.
  EXPECT_GT(scanned, 0u);
  EXPECT_GT(pruned, 30u);
  // The same counters accumulate into the engine-lifetime totals that
  // back the storage.segments_{scanned,pruned} obs counters.
  EXPECT_EQ(engine.segments_scanned_total(), scanned);
  EXPECT_EQ(engine.segments_pruned_total(), pruned);
}

TEST(PruningDifferentialTest, ExplainAnalyzeReportsSegmentCounters) {
  SqlEngine engine(JoinDb(), PruningOptions(true));
  auto result =
      engine.Execute("EXPLAIN ANALYZE SELECT id FROM emp WHERE id < 50");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NE(result->plan_text.find("segments="), std::string::npos)
      << result->plan_text;
  EXPECT_NE(result->plan_text.find("pruned="), std::string::npos)
      << result->plan_text;
}

TEST(PruningDifferentialTest, ScanMorselsAliasSegmentMemory) {
  Database db;
  db.set_default_segment_capacity(4);
  SqlEngine setup(&db, PruningOptions(true));
  ASSERT_TRUE(setup.Execute("CREATE TABLE t (a INT, b DOUBLE)").ok());
  ASSERT_TRUE(setup
                  .Execute("INSERT INTO t VALUES (1, 1.0), (2, 2.0), "
                           "(3, 3.0), (4, 4.0), (5, 5.0), (6, 6.0), "
                           "(7, 7.0), (8, 8.0), (9, 9.0), (10, 10.0)")
                  .ok());
  auto table = db.GetTable("t");
  ASSERT_TRUE(table.ok());
  ASSERT_GT((*table)->num_segments(), 1u);

  TableScanOp scan("t", *table, /*projection=*/{}, (*table)->schema());
  for (size_t s = 0; s < (*table)->num_segments(); ++s) {
    storage::RecordBatch morsel =
        scan.ScanMorsel(s, 0, (*table)->segment_rows(s));
    for (size_t c = 0; c < 2; ++c) {
      EXPECT_EQ(morsel.column(c).get(), (*table)->segment_column(s, c).get())
          << "segment " << s << " column " << c
          << " was copied instead of viewed";
    }
  }
  // Projection narrows the view but still shares the backing vectors.
  TableScanOp projected("t", *table, /*projection=*/{1},
                        storage::Schema({(*table)->schema().column(1)}));
  storage::RecordBatch morsel = projected.ScanMorsel(1, 1, 3);
  ASSERT_EQ(morsel.num_rows(), 2u);
  EXPECT_EQ(morsel.column(0).get(), (*table)->segment_column(1, 1).get());
}

TEST(PruningDifferentialTest, CachedPlansStayCorrectAcrossDml) {
  Database db;
  db.set_default_segment_capacity(8);
  SqlEngine engine(&db, PruningOptions(true));
  ASSERT_TRUE(engine.Execute("CREATE TABLE t (k INT, v DOUBLE)").ok());
  std::string insert = "INSERT INTO t VALUES ";
  for (int i = 0; i < 100; ++i) {
    if (i > 0) insert += ", ";
    insert += "(" + std::to_string(i) + ", " + std::to_string(i) + ".5)";
  }
  ASSERT_TRUE(engine.Execute(insert).ok());

  const std::string query = "SELECT k FROM t WHERE k < 20";
  auto first = engine.Execute(query);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->from_plan_cache);
  EXPECT_EQ(first->batch.num_rows(), 20u);
  auto second = engine.Execute(query);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->from_plan_cache);

  // An INSERT that lands a qualifying row in a previously-pruned region:
  // the cached plan must pick it up because pruning decisions are made at
  // execution time from live zone maps, not baked into the plan.
  ASSERT_TRUE(engine.Execute("INSERT INTO t VALUES (5, 500.5)").ok());
  auto after_insert = engine.Execute(query);
  ASSERT_TRUE(after_insert.ok());
  EXPECT_TRUE(after_insert->from_plan_cache);
  EXPECT_EQ(after_insert->batch.num_rows(), 21u);

  // A DELETE that rewrites segments (shifting every pruning decision)
  // must also flow through the cached plan.
  ASSERT_TRUE(engine.Execute("DELETE FROM t WHERE k >= 10 AND k < 15").ok());
  auto after_delete = engine.Execute(query);
  ASSERT_TRUE(after_delete.ok());
  EXPECT_TRUE(after_delete->from_plan_cache);
  EXPECT_EQ(after_delete->batch.num_rows(), 16u);

  // Differential cross-check of the final state.
  SqlEngine full(&db, PruningOptions(false));
  auto reference = full.Execute(query);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(Canonicalize(after_delete->batch),
            Canonicalize(reference->batch));
}

/// All 22 TPC-H templates, pruning on vs off, over multi-segment data.
class TpchPruningDifferentialTest
    : public ::testing::TestWithParam<size_t> {};

Database* TpchDb() {
  static Database* db = [] {
    auto* database = new Database();
    database->set_default_segment_capacity(64);
    workload::TpchWorkload tpch(42);
    EXPECT_TRUE(tpch.CreateSchema(database).ok());
    EXPECT_TRUE(tpch.PopulateData(database, 400).ok());
    return database;
  }();
  return db;
}

TEST_P(TpchPruningDifferentialTest, PrunedAndFullScansAgree) {
  workload::TpchWorkload generator(GetParam() * 13 + 3);
  std::string query = generator.Instantiate(GetParam());
  ExpectSameResults(TpchDb(), query);
}

INSTANTIATE_TEST_SUITE_P(AllTemplates, TpchPruningDifferentialTest,
                         ::testing::Range<size_t>(0, 22));

}  // namespace
}  // namespace flock::sql
