// Differential + crash-matrix tests for replication.
//
// Differential layer: load TPC-H and a deployed churn model into a
// durable primary, stream a replica from its data directory, and assert
// every response — all 22 TPC-H templates plus the PREDICT corpus — is
// byte-identical between the primary's serving path and the replica's.
//
// Crash matrix: the replication extension of the recovery crash matrix.
// A re-exec'd child primary dies mid-WAL-append (torn tail on disk); the
// parent streams a replica from the dead primary's files, promotes it,
// and asserts no committed write was lost and nothing uncommitted
// leaked. A second case kills a replica mid-apply (replicas are
// memory-only, so destroying the engine IS the crash) and re-bootstraps
// a fresh one.
//
// This file has its own main (linked against gtest, not gtest_main) so
// the re-exec'd crash child can branch into the workload before gtest
// runs.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "flock/flock_engine.h"
#include "ml/tree.h"
#include "repl/applier.h"
#include "repl/coordinator.h"
#include "repl/publisher.h"
#include "serve/server.h"
#include "wal/fault_injector.h"
#include "workload/tpch.h"

namespace flock::repl {
namespace {

std::string MakeTempDir() {
  char tmpl[] = "/tmp/flock_repl_diff_XXXXXX";
  char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return std::string(dir);
}

flock::FlockEngineOptions SerialEngineOptions() {
  flock::FlockEngineOptions options;
  options.sql.num_threads = 1;
  return options;
}

constexpr const char* kPredictCall =
    "PREDICT(churn, age, income, tenure, clicks, plan)";

/// PREDICT traffic over the replicated users table + churn model.
std::vector<std::string> PredictCorpus() {
  std::string predict(kPredictCall);
  return {
      "SELECT id, " + predict + " FROM users WHERE id < 50",
      "SELECT COUNT(*) FROM users WHERE " + predict + " > 0.5",
      "SELECT id, " + predict + " FROM users ORDER BY id DESC LIMIT 20",
      "SELECT " + predict + " FROM users WHERE id = 7",
  };
}

/// Builds the users table and deploys the churn model entirely through
/// the engine's write path, so both replicate through the WAL.
void BuildUsersAndChurn(flock::FlockEngine* engine, size_t rows) {
  ASSERT_TRUE(engine
                  ->Execute("CREATE TABLE users (id INT, age DOUBLE, "
                            "income DOUBLE, tenure DOUBLE, "
                            "clicks DOUBLE, plan VARCHAR)")
                  .ok());
  Random rng(7);
  const char* plans[] = {"basic", "plus", "pro"};
  std::string insert = "INSERT INTO users VALUES ";
  for (size_t i = 0; i < rows; ++i) {
    if (i > 0) insert += ", ";
    char row[160];
    std::snprintf(row, sizeof(row), "(%zu, %.3f, %.3f, %.3f, %.3f, '%s')",
                  i, 20 + rng.NextDouble() * 50, 30 + rng.NextDouble() * 120,
                  rng.NextDouble() * 10, rng.NextDouble() * 100,
                  plans[rng.Uniform(3)]);
    insert += row;
  }
  ASSERT_TRUE(engine->Execute(insert).ok());

  ml::Matrix raw(rows, 5);
  std::vector<double> labels(rows);
  Random label_rng(13);
  for (size_t i = 0; i < rows; ++i) {
    double age = 20 + label_rng.NextDouble() * 50;
    double income = 30 + label_rng.NextDouble() * 120;
    raw.at(i, 0) = age;
    raw.at(i, 1) = income;
    raw.at(i, 2) = label_rng.NextDouble() * 10;
    raw.at(i, 3) = label_rng.NextDouble() * 100;
    raw.at(i, 4) = static_cast<double>(label_rng.Uniform(3));
    labels[i] = (0.08 * (age - 45) - 0.02 * (income - 90) -
                 0.4 * raw.at(i, 2) + 0.03 * raw.at(i, 3)) > 0
                    ? 1.0
                    : 0.0;
  }
  ml::Pipeline pipeline;
  std::vector<ml::FeatureSpec> specs;
  for (const char* n : {"age", "income", "tenure", "clicks"}) {
    specs.push_back(ml::FeatureSpec{n, ml::FeatureKind::kNumeric, {}});
  }
  specs.push_back(ml::FeatureSpec{"plan", ml::FeatureKind::kCategorical,
                                  {"basic", "plus", "pro"}});
  pipeline.SetInputs(specs);
  pipeline.set_task(ml::ModelTask::kBinaryClassification);
  pipeline.FitFeaturizers(raw, true, true);
  ml::Dataset features;
  features.x = pipeline.Transform(raw);
  features.y = labels;
  ml::GbtOptions gbt;
  gbt.num_trees = 8;
  gbt.max_depth = 3;
  pipeline.SetTreeModel(ml::TrainGradientBoosting(features, gbt));
  ASSERT_TRUE(
      engine->DeployModel("churn", pipeline, "tester", "repl_diff_test")
          .ok());
}

/// Canonical rendering of one serving response — result bytes or the
/// full error — so primary and replica must agree on failures too.
std::string Render(serve::LoopbackClient* client, const std::string& sql) {
  auto result = client->Execute(sql);
  if (!result.ok()) return "ERR " + result.status().ToString();
  return result->batch.ToString(10000);
}

// ---------------------------------------------------------------------
// Differential corpus.
// ---------------------------------------------------------------------

TEST(ReplDifferentialTest, TpchAndPredictCorpusByteIdenticalOnReplica) {
  std::string dir = MakeTempDir();
  flock::FlockEngine primary(SerialEngineOptions());
  ASSERT_TRUE(primary.Open(dir).ok());

  // TPC-H loads straight into storage (bypassing the WAL), so the
  // primary checkpoints afterwards: the snapshot is what carries these
  // tables to the replica's bootstrap.
  workload::TpchWorkload tpch(42);
  tpch.CreateSchema(primary.database());
  tpch.PopulateData(primary.database(), 8);
  ASSERT_TRUE(primary.RefreshCatalogTables().ok());
  BuildUsersAndChurn(&primary, 300);
  ASSERT_TRUE(primary.Checkpoint().ok());
  // Post-checkpoint writes stream through the log, not the snapshot.
  ASSERT_TRUE(
      primary.Execute("UPDATE users SET clicks = 0.0 WHERE id = 0").ok());

  flock::FlockEngine replica(SerialEngineOptions());
  ASSERT_TRUE(replica.OpenAsReplica().ok());
  ReplicationPublisher publisher(dir);
  ReplicaApplier applier(&replica, &publisher);
  ASSERT_TRUE(applier.CatchUp().ok());

  serve::PredictionServer primary_server(&primary);
  serve::PredictionServer replica_server(&replica);
  serve::LoopbackClient primary_client(&primary_server);
  serve::LoopbackClient replica_client(&replica_server);
  ASSERT_TRUE(primary_client.status().ok());
  ASSERT_TRUE(replica_client.status().ok());

  for (size_t q = 0; q < workload::TpchWorkload::NumTemplates(); ++q) {
    std::string sql = tpch.Instantiate(q);
    EXPECT_EQ(Render(&replica_client, sql), Render(&primary_client, sql))
        << "template " << (q + 1) << ": " << sql;
  }
  for (const std::string& sql : PredictCorpus()) {
    std::string on_primary = Render(&primary_client, sql);
    EXPECT_NE(on_primary.rfind("ERR ", 0), 0u) << sql << "\n" << on_primary;
    EXPECT_EQ(Render(&replica_client, sql), on_primary) << sql;
  }

  replica_server.Shutdown();
  primary_server.Shutdown();
}

// ---------------------------------------------------------------------
// Crash matrix.
// ---------------------------------------------------------------------

/// Statements the crash-child primary commits before dying; the torn
/// final statement must never surface anywhere.
const std::vector<std::string>& CommittedStatements() {
  static const std::vector<std::string> statements = {
      "CREATE TABLE kv (k INT, v DOUBLE, tag VARCHAR)",
      "INSERT INTO kv VALUES (1, 1.5, 'a'), (2, 2.5, 'b'), (3, 3.5, 'c')",
      "UPDATE kv SET v = 40.0 WHERE k = 3",
      "DELETE FROM kv WHERE k = 2",
      "CREATE TABLE notes (id INT, note VARCHAR)",
      "INSERT INTO notes VALUES (1, 'first')",
  };
  return statements;
}

constexpr const char* kTornStatement =
    "INSERT INTO kv VALUES (99, 9.9, 'torn')";

Status RunStatements(flock::FlockEngine* engine,
                     const std::vector<std::string>& statements) {
  for (const std::string& sql : statements) {
    auto result = engine->Execute(sql);
    if (!result.ok()) return result.status();
  }
  return Status::OK();
}

std::string Digest(flock::FlockEngine* engine) {
  std::string digest;
  for (const char* sql : {"SELECT k, v, tag FROM kv ORDER BY k",
                          "SELECT id, note FROM notes ORDER BY id"}) {
    auto result = engine->Execute(sql);
    if (!result.ok()) {
      digest += std::string("ERR ") + sql + ": " +
                result.status().ToString() + "\n";
      continue;
    }
    digest += result->batch.ToString(10000) + "\n";
  }
  return digest;
}

/// The reference digest: what a healthy primary looks like after the
/// committed statements (the torn one excluded).
std::string ReferenceDigest() {
  flock::FlockEngine engine(SerialEngineOptions());
  EXPECT_TRUE(RunStatements(&engine, CommittedStatements()).ok());
  return Digest(&engine);
}

int SpawnCrashChild(const std::string& dir) {
  pid_t pid = fork();
  if (pid == 0) {
    setenv("FLOCK_REPL_CRASH_CHILD", dir.c_str(), 1);
    execl("/proc/self/exe", "repl_differential_test_child",
          static_cast<char*>(nullptr));
    _exit(127);
  }
  int status = 0;
  waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(ReplCrashMatrixTest, PrimaryKilledMidAppendPromotesWithNoLostWrites) {
  std::string dir = MakeTempDir();
  int exit_code = SpawnCrashChild(dir);
  ASSERT_EQ(exit_code, wal::FaultInjector::kCrashExitCode)
      << "crash child did not die at the armed point";

  // Stream a replica from the dead primary's files. The torn final
  // append reads as end-of-durable-log, not an error.
  auto replica =
      std::make_unique<flock::FlockEngine>(SerialEngineOptions());
  ASSERT_TRUE(replica->OpenAsReplica().ok());
  ReplicationPublisher publisher(dir);
  ReplicaApplier applier(replica.get(), &publisher);

  ReplicationCoordinator coordinator;
  ASSERT_TRUE(
      coordinator.AddReplica("survivor", replica.get(), &applier).ok());
  std::string new_dir = MakeTempDir();
  Status promoted = coordinator.Promote("survivor", new_dir);
  ASSERT_TRUE(promoted.ok()) << promoted.ToString();
  EXPECT_EQ(coordinator.failovers(), 1u);

  // Every committed write survived; the torn statement did not.
  EXPECT_EQ(Digest(replica.get()), ReferenceDigest());
  EXPECT_TRUE(replica->durable());
  ASSERT_TRUE(
      replica->Execute("INSERT INTO notes VALUES (2, 'after')").ok());

  // The promoted node's own directory reopens consistently.
  std::string after = Digest(replica.get());
  replica.reset();
  flock::FlockEngine restarted(SerialEngineOptions());
  ASSERT_TRUE(restarted.Open(new_dir).ok());
  EXPECT_EQ(Digest(&restarted), after);
}

TEST(ReplCrashMatrixTest, ReplicaKilledMidApplyFreshReplicaRebootstraps) {
  std::string dir = MakeTempDir();
  flock::FlockEngine primary(SerialEngineOptions());
  ASSERT_TRUE(primary.Open(dir).ok());
  ASSERT_TRUE(RunStatements(&primary, CommittedStatements()).ok());

  // First replica dies mid-apply: one record into catch-up, the engine
  // is destroyed. Replicas are memory-only, so destruction is the crash
  // — there is no replica-side state to corrupt or recover.
  {
    flock::FlockEngine doomed(SerialEngineOptions());
    ASSERT_TRUE(doomed.OpenAsReplica().ok());
    ReplicationPublisher publisher(dir);
    ReplicaApplierOptions one_at_a_time;
    one_at_a_time.batch_records = 1;
    ReplicaApplier applier(&doomed, &publisher, one_at_a_time);
    ASSERT_TRUE(applier.Bootstrap().ok());
    auto round = applier.CatchUpOnce();
    ASSERT_TRUE(round.ok());
    ASSERT_EQ(*round, 1u);
    ASSERT_FALSE(applier.caught_up());
  }

  // The primary keeps committing while the dead replica is replaced.
  ASSERT_TRUE(
      primary.Execute("INSERT INTO notes VALUES (3, 'while down')").ok());

  flock::FlockEngine fresh(SerialEngineOptions());
  ASSERT_TRUE(fresh.OpenAsReplica().ok());
  ReplicationPublisher publisher(dir);
  ReplicaApplier applier(&fresh, &publisher);
  ASSERT_TRUE(applier.CatchUp().ok());
  EXPECT_EQ(Digest(&fresh), Digest(&primary));
  EXPECT_EQ(applier.bootstraps(), 1u);
}

/// Crash-child body: a durable primary that commits the fixed workload,
/// arms the torn-append fault in crash mode, and dies mid-write.
int RunCrashChild(const char* dir) {
  flock::FlockEngine engine(SerialEngineOptions());
  if (!engine.Open(dir).ok()) return 3;
  if (!RunStatements(&engine, CommittedStatements()).ok()) return 4;
  wal::FaultInjector::Get()->Arm("wal.append.partial_write",
                                 wal::FaultInjector::Mode::kCrash);
  engine.Execute(kTornStatement);  // dies here with _exit
  return 5;                        // unreachable if the fault fired
}

}  // namespace
}  // namespace flock::repl

int main(int argc, char** argv) {
  if (const char* dir = std::getenv("FLOCK_REPL_CRASH_CHILD")) {
    return flock::repl::RunCrashChild(dir);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
