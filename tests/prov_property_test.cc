// Property-based provenance tests (TEST_P over workload seeds):
// capture determinism, lineage duality, compression idempotence and
// soundness (no referenced entity disappears).

#include <gtest/gtest.h>

#include <set>

#include "prov/catalog.h"
#include "prov/compression.h"
#include "prov/sql_capture.h"
#include "workload/tpcc.h"
#include "workload/tpch.h"

namespace flock::prov {
namespace {

class ProvPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  /// Captures a deterministic mixed workload into `catalog`.
  void CaptureWorkload(Catalog* catalog, storage::Database* db) {
    workload::TpchWorkload tpch(GetParam());
    ASSERT_TRUE(tpch.CreateSchema(db).ok());
    SqlCaptureModule capture(catalog, db);
    for (const std::string& q : tpch.GenerateQueryStream(120)) {
      ASSERT_TRUE(capture.CaptureStatement(q).ok()) << q;
    }
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(
          capture
              .CaptureStatement("INSERT INTO region VALUES (" +
                                std::to_string(i) + ", 'R', 'c')")
              .ok());
    }
  }
};

TEST_P(ProvPropertyTest, CaptureIsDeterministic) {
  Catalog a, b;
  storage::Database db_a, db_b;
  CaptureWorkload(&a, &db_a);
  CaptureWorkload(&b, &db_b);
  EXPECT_EQ(a.num_entities(), b.num_entities());
  EXPECT_EQ(a.num_edges(), b.num_edges());
}

TEST_P(ProvPropertyTest, LineageDuality) {
  Catalog catalog;
  storage::Database db;
  CaptureWorkload(&catalog, &db);
  // For a sample of entities: A in upstream(B) <=> B in downstream(A).
  size_t checked = 0;
  for (uint64_t id = 1; id <= catalog.num_entities() && checked < 12;
       id += 17, ++checked) {
    auto upstream = catalog.Lineage(id, /*downstream=*/false, 3);
    for (const Entity* up : upstream) {
      auto downstream = catalog.Lineage(up->id, /*downstream=*/true, 3);
      bool found = false;
      for (const Entity* down : downstream) {
        if (down->id == id) found = true;
      }
      EXPECT_TRUE(found) << "duality violated between " << id << " and "
                         << up->id;
    }
  }
}

TEST_P(ProvPropertyTest, CompressionIsIdempotent) {
  Catalog raw;
  storage::Database db;
  CaptureWorkload(&raw, &db);
  Catalog once;
  CompressionStats first;
  ASSERT_TRUE(CompressCatalog(raw, &once, &first).ok());
  Catalog twice;
  CompressionStats second;
  ASSERT_TRUE(CompressCatalog(once, &twice, &second).ok());
  // Compressing an already-compressed graph must not lose more than the
  // version-run relabeling (idempotence up to a tiny epsilon).
  EXPECT_GE(second.SizeAfter() + 4, second.SizeBefore());
}

TEST_P(ProvPropertyTest, CompressionKeepsEveryTableAndColumn) {
  Catalog raw;
  storage::Database db;
  CaptureWorkload(&raw, &db);
  Catalog compressed;
  CompressionStats stats;
  ASSERT_TRUE(CompressCatalog(raw, &compressed, &stats).ok());
  // Every base table/column (version 1) must survive compression.
  for (const Entity& entity : raw.entities()) {
    if ((entity.type == EntityType::kTable ||
         entity.type == EntityType::kColumn) &&
        entity.version == 1) {
      EXPECT_TRUE(compressed.Find(entity.type, entity.name).ok())
          << EntityTypeName(entity.type) << " " << entity.name;
    }
  }
  // And edges never dangle.
  for (const Edge& edge : compressed.edges()) {
    EXPECT_TRUE(compressed.GetEntity(edge.src).ok());
    EXPECT_TRUE(compressed.GetEntity(edge.dst).ok());
  }
}

TEST_P(ProvPropertyTest, VersionsAreMonotone) {
  Catalog catalog;
  storage::Database db;
  CaptureWorkload(&catalog, &db);
  auto versions = catalog.Versions(EntityType::kTable, "region");
  ASSERT_GE(versions.size(), 20u);
  for (size_t i = 1; i < versions.size(); ++i) {
    EXPECT_EQ(versions[i]->version, versions[i - 1]->version + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProvPropertyTest,
                         ::testing::Values(3, 7, 11, 19));

}  // namespace
}  // namespace flock::prov
