#include <gtest/gtest.h>

#include "prov/catalog.h"
#include "pyprov/analyzer.h"
#include "pyprov/knowledge_base.h"
#include "pyprov/py_parser.h"
#include "workload/scripts.h"

namespace flock::pyprov {
namespace {

const char* kCleanScript = R"(
import pandas as pd
from sklearn.linear_model import LogisticRegression
from sklearn.model_selection import train_test_split
from sklearn.metrics import accuracy_score

df = pd.read_csv('loans.csv')
df = df.dropna()
X = df[['age', 'income', 'tenure']]
y = df['default']
X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.2)
model = LogisticRegression(C=0.5, max_iter=200)
model.fit(X_train, y_train)
pred = model.predict(X_test)
acc = accuracy_score(y_test, pred)
)";

TEST(PyParserTest, ParsesCleanScript) {
  auto script = ParseScript("clean.py", kCleanScript);
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  // 4 imports + 9 statements.
  EXPECT_EQ(script->statements.size(), 13u);
}

TEST(PyParserTest, ExpressionShapes) {
  auto call = ParsePyExpression("pd.read_csv('x.csv')");
  ASSERT_TRUE(call.ok());
  EXPECT_EQ((*call)->kind, PyExpr::Kind::kCall);
  EXPECT_EQ((*call)->base->DottedPath(), "pd.read_csv");
  ASSERT_EQ((*call)->items.size(), 1u);
  EXPECT_EQ((*call)->items[0]->str, "x.csv");

  auto kw = ParsePyExpression("LogisticRegression(C=0.5, max_iter=100)");
  ASSERT_TRUE(kw.ok());
  ASSERT_EQ((*kw)->kwargs.size(), 2u);
  EXPECT_EQ((*kw)->kwargs[0].first, "C");
  EXPECT_DOUBLE_EQ((*kw)->kwargs[0].second->num, 0.5);

  auto subscript = ParsePyExpression("df[['a', 'b']]");
  ASSERT_TRUE(subscript.ok());
  EXPECT_EQ((*subscript)->kind, PyExpr::Kind::kSubscript);
  EXPECT_EQ((*subscript)->items[0]->kind, PyExpr::Kind::kList);

  auto chain = ParsePyExpression("LogisticRegression().fit(X, y)");
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ((*chain)->kind, PyExpr::Kind::kCall);
  EXPECT_EQ((*chain)->base->kind, PyExpr::Kind::kAttribute);
}

TEST(PyParserTest, FunctionDefBodiesAreNested) {
  auto script = ParseScript("def.py",
                            "def helper():\n"
                            "    return 1\n"
                            "x = helper()\n");
  ASSERT_TRUE(script.ok());
  ASSERT_EQ(script->statements.size(), 2u);
  EXPECT_EQ(script->statements[0].kind, PyStatement::Kind::kFunctionDef);
  EXPECT_EQ(script->statements[0].func_name, "helper");
}

TEST(PyParserTest, CommentsAndBlanksIgnored) {
  auto script = ParseScript("c.py",
                            "# header comment\n"
                            "\n"
                            "x = 1  # trailing\n");
  ASSERT_TRUE(script.ok());
  EXPECT_EQ(script->statements.size(), 1u);
}

TEST(PyParserTest, ImportForms) {
  auto script = ParseScript("i.py",
                            "import numpy as np\n"
                            "from sklearn.svm import SVC, SVR as R\n");
  ASSERT_TRUE(script.ok());
  ASSERT_EQ(script->statements.size(), 2u);
  EXPECT_EQ(script->statements[0].imports[0].second, "np");
  EXPECT_EQ(script->statements[1].imports[1].second, "R");
  EXPECT_EQ(script->statements[1].imports[1].first, "SVR");
}

class AnalyzerTest : public ::testing::Test {
 protected:
  AnalysisResult Analyze(const std::string& source) {
    auto script = ParseScript("t.py", source);
    EXPECT_TRUE(script.ok()) << script.status().ToString();
    return pyprov::Analyze(*script, kb_);
  }

  KnowledgeBase kb_ = KnowledgeBase::Default();
};

TEST_F(AnalyzerTest, CleanScriptFullyAnalyzed) {
  AnalysisResult result = Analyze(kCleanScript);
  ASSERT_EQ(result.models.size(), 1u);
  EXPECT_EQ(result.models[0].type, "LogisticRegression");
  EXPECT_EQ(result.models[0].variable, "model");
  EXPECT_TRUE(result.models[0].trained);
  ASSERT_EQ(result.models[0].training_sources.size(), 1u);
  EXPECT_EQ(*result.models[0].training_sources.begin(),
            "file:loans.csv");
  EXPECT_EQ(result.models[0].hyperparameters.at("max_iter"), "200");
  ASSERT_EQ(result.datasets.size(), 1u);
  EXPECT_FALSE(result.datasets[0].is_sql);
  ASSERT_EQ(result.metrics.size(), 1u);
  EXPECT_EQ(result.metrics[0].name, "accuracy_score");
  EXPECT_EQ(result.metrics[0].model_variable, "model");
}

TEST_F(AnalyzerTest, SqlReadRecognized) {
  AnalysisResult result = Analyze(
      "df = db.query('SELECT age, income FROM loans')\n"
      "from sklearn.ensemble import RandomForestClassifier\n"
      "m = RandomForestClassifier(n_estimators=50)\n"
      "m.fit(df, df['label'])\n");
  ASSERT_EQ(result.datasets.size(), 1u);
  EXPECT_TRUE(result.datasets[0].is_sql);
  ASSERT_EQ(result.models.size(), 1u);
  EXPECT_EQ(result.models[0].training_sources.size(), 1u);
}

TEST_F(AnalyzerTest, ChainedFitTracksModel) {
  AnalysisResult result = Analyze(
      "import pandas as pd\n"
      "from sklearn.linear_model import Ridge\n"
      "df = pd.read_csv('d.csv')\n"
      "model = Ridge(alpha=0.1).fit(df, df['y'])\n");
  ASSERT_EQ(result.models.size(), 1u);
  EXPECT_TRUE(result.models[0].trained);
  EXPECT_EQ(result.models[0].training_sources.size(), 1u);
}

TEST_F(AnalyzerTest, HelperModelInvisible) {
  AnalysisResult result = Analyze(
      "def build():\n"
      "    return make_model('rf')\n"
      "m = build()\n"
      "m.fit(X, y)\n");
  EXPECT_EQ(result.models.size(), 0u);
}

TEST_F(AnalyzerTest, UnknownLoaderLosesLineageButFindsModel) {
  AnalysisResult result = Analyze(
      "import numpy as np\n"
      "from sklearn.svm import SVC\n"
      "data = np.loadtxt('raw.txt')\n"
      "m = SVC()\n"
      "m.fit(data, data)\n");
  ASSERT_EQ(result.models.size(), 1u);
  EXPECT_TRUE(result.models[0].trained);
  EXPECT_TRUE(result.models[0].training_sources.empty());
}

TEST_F(AnalyzerTest, LineagePropagatesThroughTransforms) {
  AnalysisResult result = Analyze(
      "import pandas as pd\n"
      "from sklearn.tree import DecisionTreeClassifier\n"
      "a = pd.read_csv('a.csv')\n"
      "b = pd.read_csv('b.csv')\n"
      "merged = pd.concat([a, b])\n"
      "clean = merged.dropna()\n"
      "m = DecisionTreeClassifier()\n"
      "m.fit(clean[['x']], clean['y'])\n");
  ASSERT_EQ(result.models.size(), 1u);
  EXPECT_EQ(result.models[0].training_sources.size(), 2u);
}

TEST_F(AnalyzerTest, ExportPopulatesCatalog) {
  AnalysisResult result = Analyze(kCleanScript);
  prov::Catalog catalog;
  ASSERT_TRUE(ExportToCatalog(result, "clean.py", &catalog).ok());
  EXPECT_TRUE(catalog.Find(prov::EntityType::kScript, "clean.py").ok());
  EXPECT_TRUE(
      catalog.Find(prov::EntityType::kModel, "clean.py:model").ok());
  EXPECT_TRUE(
      catalog.Find(prov::EntityType::kDataset, "file:loans.csv").ok());
  EXPECT_TRUE(catalog
                  .Find(prov::EntityType::kHyperparameter,
                        "clean.py:model.max_iter")
                  .ok());
  // Model upstream lineage reaches the dataset.
  auto model_id = catalog.Find(prov::EntityType::kModel, "clean.py:model");
  auto lineage = catalog.Lineage(*model_id, /*downstream=*/false);
  bool found_dataset = false;
  for (const prov::Entity* e : lineage) {
    if (e->type == prov::EntityType::kDataset) found_dataset = true;
  }
  EXPECT_TRUE(found_dataset);
}

// ---------------------------------------------------------------------------
// Corpus-level coverage (the Table 2 mechanism)
// ---------------------------------------------------------------------------

struct Coverage {
  double models = 0.0;
  double datasets = 0.0;
};

Coverage MeasureCoverage(const std::vector<workload::GeneratedScript>& corpus,
                         const KnowledgeBase& kb) {
  size_t true_models = 0, found_models = 0;
  size_t true_links = 0, found_links = 0;
  for (const auto& generated : corpus) {
    auto script = ParseScript(generated.name, generated.source);
    EXPECT_TRUE(script.ok())
        << generated.name << ": " << script.status().ToString() << "\n"
        << generated.source;
    if (!script.ok()) continue;
    AnalysisResult result = Analyze(*script, kb);
    true_models += generated.true_models;
    found_models += std::min(result.models.size(), generated.true_models);
    true_links += generated.true_training_links;
    size_t links = 0;
    for (const auto& model : result.models) {
      links += model.training_sources.empty() ? 0 : 1;
    }
    found_links += std::min(links, generated.true_training_links);
  }
  Coverage c;
  c.models = static_cast<double>(found_models) /
             static_cast<double>(true_models);
  c.datasets = static_cast<double>(found_links) /
               static_cast<double>(true_links);
  return c;
}

TEST(ScriptCorpusTest, InternalCorpusFullyCovered) {
  auto corpus = workload::GenerateInternalCorpus(11);
  ASSERT_EQ(corpus.size(), 37u);
  Coverage c = MeasureCoverage(corpus, KnowledgeBase::Default());
  EXPECT_DOUBLE_EQ(c.models, 1.0);
  EXPECT_DOUBLE_EQ(c.datasets, 1.0);
}

TEST(ScriptCorpusTest, KaggleCorpusLosesDatasetCoverage) {
  auto corpus = workload::GenerateKaggleCorpus(11);
  ASSERT_EQ(corpus.size(), 49u);
  Coverage c = MeasureCoverage(corpus, KnowledgeBase::Default());
  // Paper: 95% models, 61% datasets. Shape: model coverage high but
  // imperfect; dataset coverage notably lower.
  EXPECT_GT(c.models, 0.85);
  EXPECT_LT(c.models, 1.0);
  EXPECT_GT(c.datasets, 0.4);
  EXPECT_LT(c.datasets, 0.85);
  EXPECT_LT(c.datasets, c.models);
}

}  // namespace
}  // namespace flock::pyprov
