// Unit tests for the WAL layer: record codec, frame format, torn-tail
// semantics, fsync policies (incl. concurrent group commit, exercised
// under TSan by scripts/check.sh), resume, fault injection in error
// mode, and snapshot encode/decode.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "storage/record_batch.h"
#include "storage/schema.h"
#include "storage/serialization.h"
#include "storage/value.h"
#include "wal/checkpoint.h"
#include "wal/fault_injector.h"
#include "wal/wal_format.h"
#include "wal/wal_reader.h"
#include "wal/wal_record.h"
#include "wal/wal_writer.h"

namespace flock::wal {
namespace {

using storage::ColumnDef;
using storage::DataType;
using storage::RecordBatch;
using storage::Schema;
using storage::Value;

/// Fresh unique temp directory per test (left behind on failure for
/// post-mortem; /tmp is scratch in CI).
std::string MakeTempDir() {
  char tmpl[] = "/tmp/flock_wal_test_XXXXXX";
  char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return std::string(dir);
}

Schema TwoColSchema() {
  return Schema({{"k", DataType::kInt64, false},
                 {"v", DataType::kDouble, true}});
}

RecordBatch SmallBatch() {
  RecordBatch batch(TwoColSchema());
  EXPECT_TRUE(batch.AppendRow({Value::Int(1), Value::Double(1.5)}).ok());
  EXPECT_TRUE(batch.AppendRow({Value::Int(2), Value::Null()}).ok());
  return batch;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

void AppendBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// All eleven record types, with every field group populated.
std::vector<WalRecord> AllRecordTypes() {
  std::vector<WalRecord> records;
  records.push_back(WalRecord::CreateTable("t", TwoColSchema()));
  records.push_back(WalRecord::AppendBatch("t", SmallBatch()));
  records.push_back(WalRecord::UpdateColumn(
      "t", 1, {0, 1}, {Value::Double(9.0), Value::Double(8.0)}));
  records.push_back(WalRecord::DeleteRows("t", {1, 0}));
  records.push_back(WalRecord::DropTable("t"));
  records.push_back(WalRecord::DeployModel("churn", "pipe-bytes", "alice",
                                           "train.py"));
  records.push_back(WalRecord::DropModel("churn", "bob"));
  records.push_back(WalRecord::PolicyAction(7, "clamp", 1, 0.9, 0.5, true,
                                            "ctx"));
  records.push_back(WalRecord::ProvEntity(3, 5, "churn", 2));
  records.push_back(WalRecord::ProvEdge(3, 1, 4));
  records.push_back(WalRecord::ProvProperty(3, "auc", "0.91"));
  return records;
}

void ExpectRecordsEqual(const WalRecord& a, const WalRecord& b) {
  ASSERT_EQ(a.type, b.type) << WalRecordTypeName(a.type);
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.schema == b.schema, true);
  EXPECT_EQ(a.batch.ToString(), b.batch.ToString());
  EXPECT_EQ(a.column, b.column);
  EXPECT_EQ(a.rows, b.rows);
  ASSERT_EQ(a.values.size(), b.values.size());
  for (size_t i = 0; i < a.values.size(); ++i) {
    EXPECT_TRUE(a.values[i] == b.values[i]);
  }
  EXPECT_EQ(a.keep, b.keep);
  EXPECT_EQ(a.pipeline_text, b.pipeline_text);
  EXPECT_EQ(a.created_by, b.created_by);
  EXPECT_EQ(a.lineage, b.lineage);
  EXPECT_EQ(a.principal, b.principal);
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.action, b.action);
  EXPECT_EQ(a.before, b.before);
  EXPECT_EQ(a.after, b.after);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.context, b.context);
  EXPECT_EQ(a.entity_id, b.entity_id);
  EXPECT_EQ(a.src, b.src);
  EXPECT_EQ(a.dst, b.dst);
  EXPECT_EQ(a.prov_type, b.prov_type);
  EXPECT_EQ(a.version, b.version);
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.value, b.value);
}

TEST(WalRecordTest, PayloadRoundTripAllTypes) {
  for (const WalRecord& record : AllRecordTypes()) {
    std::string payload = EncodeRecordPayload(record);
    auto decoded =
        DecodeRecordPayload(record.type, payload.data(), payload.size());
    ASSERT_TRUE(decoded.ok())
        << WalRecordTypeName(record.type) << ": "
        << decoded.status().ToString();
    ExpectRecordsEqual(record, *decoded);
  }
}

TEST(WalRecordTest, TruncatedPayloadIsDataLoss) {
  for (const WalRecord& record : AllRecordTypes()) {
    std::string payload = EncodeRecordPayload(record);
    if (payload.empty()) continue;
    auto decoded = DecodeRecordPayload(record.type, payload.data(),
                                       payload.size() - 1);
    ASSERT_FALSE(decoded.ok()) << WalRecordTypeName(record.type);
    EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
  }
}

TEST(WalRecordTest, TrailingBytesAreDataLoss) {
  WalRecord record = WalRecord::DropTable("t");
  std::string payload = EncodeRecordPayload(record) + "x";
  auto decoded =
      DecodeRecordPayload(record.type, payload.data(), payload.size());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(WalWriterTest, WriteThenReadBack) {
  std::string dir = MakeTempDir();
  std::string path = dir + "/wal.log";
  WalWriterOptions options;
  options.fsync_policy = FsyncPolicy::kEveryRecord;
  auto writer_or = WalWriter::Create(path, 3, options);
  ASSERT_TRUE(writer_or.ok()) << writer_or.status().ToString();
  std::vector<WalRecord> records = AllRecordTypes();
  for (const WalRecord& record : records) {
    ASSERT_TRUE((*writer_or)->Append(record).ok());
  }
  EXPECT_EQ((*writer_or)->records_appended(), records.size());
  EXPECT_GE((*writer_or)->syncs(), records.size());  // one per append
  writer_or->reset();

  auto reader_or = WalReader::Open(path);
  ASSERT_TRUE(reader_or.ok()) << reader_or.status().ToString();
  EXPECT_EQ((*reader_or)->epoch(), 3u);
  for (const WalRecord& expected : records) {
    WalRecord got;
    bool done = false;
    ASSERT_TRUE((*reader_or)->Next(&got, &done).ok());
    ASSERT_FALSE(done);
    ExpectRecordsEqual(expected, got);
  }
  WalRecord got;
  bool done = false;
  ASSERT_TRUE((*reader_or)->Next(&got, &done).ok());
  EXPECT_TRUE(done);
  EXPECT_FALSE((*reader_or)->tail_truncated());
  EXPECT_EQ((*reader_or)->records_read(), records.size());
}

TEST(WalWriterTest, EveryFsyncPolicyRoundTrips) {
  for (FsyncPolicy policy : {FsyncPolicy::kEveryRecord,
                             FsyncPolicy::kGroupCommit,
                             FsyncPolicy::kNever}) {
    std::string dir = MakeTempDir();
    std::string path = dir + "/wal.log";
    WalWriterOptions options;
    options.fsync_policy = policy;
    options.group_commit_interval_ms = 1;
    auto writer_or = WalWriter::Create(path, 1, options);
    ASSERT_TRUE(writer_or.ok()) << FsyncPolicyName(policy);
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(
          (*writer_or)->Append(WalRecord::DropTable("t" + std::to_string(i)))
              .ok());
    }
    writer_or->reset();
    auto reader_or = WalReader::Open(path);
    ASSERT_TRUE(reader_or.ok());
    WalRecord record;
    bool done = false;
    size_t count = 0;
    while (true) {
      ASSERT_TRUE((*reader_or)->Next(&record, &done).ok());
      if (done) break;
      EXPECT_EQ(record.name, "t" + std::to_string(count));
      ++count;
    }
    EXPECT_EQ(count, 20u) << FsyncPolicyName(policy);
  }
}

// The TSan target in scripts/check.sh runs this: many threads appending
// under group commit, one background flusher fsyncing.
TEST(WalWriterTest, GroupCommitConcurrentAppends) {
  std::string dir = MakeTempDir();
  std::string path = dir + "/wal.log";
  WalWriterOptions options;
  options.fsync_policy = FsyncPolicy::kGroupCommit;
  options.group_commit_interval_ms = 1;
  auto writer_or = WalWriter::Create(path, 1, options);
  ASSERT_TRUE(writer_or.ok());
  WalWriter* writer = writer_or->get();

  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([writer, t, &failures] {
      for (int i = 0; i < kPerThread; ++i) {
        WalRecord record = WalRecord::ProvProperty(
            static_cast<uint64_t>(t), "i", std::to_string(i));
        if (!writer->Append(record).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(writer->records_appended(),
            static_cast<uint64_t>(kThreads * kPerThread));
  writer_or->reset();

  auto reader_or = WalReader::Open(path);
  ASSERT_TRUE(reader_or.ok());
  WalRecord record;
  bool done = false;
  size_t count = 0;
  while (true) {
    ASSERT_TRUE((*reader_or)->Next(&record, &done).ok());
    if (done) break;
    ++count;
  }
  EXPECT_EQ(count, static_cast<size_t>(kThreads * kPerThread));
}

TEST(WalWriterTest, ResumeAppendsAfterIntactPrefix) {
  std::string dir = MakeTempDir();
  std::string path = dir + "/wal.log";
  auto writer_or = WalWriter::Create(path, 2, {});
  ASSERT_TRUE(writer_or.ok());
  ASSERT_TRUE((*writer_or)->Append(WalRecord::DropTable("a")).ok());
  writer_or->reset();

  // Simulate a torn tail: half a frame of garbage at the end.
  std::string contents = ReadFile(path);
  WriteFile(path, contents + std::string(5, '\x7f'));

  auto reader_or = WalReader::Open(path);
  ASSERT_TRUE(reader_or.ok());
  WalRecord record;
  bool done = false;
  ASSERT_TRUE((*reader_or)->Next(&record, &done).ok());
  ASSERT_FALSE(done);
  ASSERT_TRUE((*reader_or)->Next(&record, &done).ok());
  ASSERT_TRUE(done);
  EXPECT_TRUE((*reader_or)->tail_truncated());
  uint64_t valid = (*reader_or)->valid_size();
  EXPECT_EQ(valid, contents.size());

  // Resume truncates the torn tail and appends cleanly after it.
  auto resumed_or = WalWriter::Resume(path, 2, valid, {});
  ASSERT_TRUE(resumed_or.ok()) << resumed_or.status().ToString();
  ASSERT_TRUE((*resumed_or)->Append(WalRecord::DropTable("b")).ok());
  resumed_or->reset();

  auto reread_or = WalReader::Open(path);
  ASSERT_TRUE(reread_or.ok());
  std::vector<std::string> names;
  while (true) {
    ASSERT_TRUE((*reread_or)->Next(&record, &done).ok());
    if (done) break;
    names.push_back(record.name);
  }
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b"}));
  EXPECT_FALSE((*reread_or)->tail_truncated());
}

TEST(WalReaderTest, TornFinalCrcIsDroppedButMidLogCrcIsDataLoss) {
  std::string dir = MakeTempDir();
  std::string path = dir + "/wal.log";
  auto writer_or = WalWriter::Create(path, 1, {});
  ASSERT_TRUE(writer_or.ok());
  ASSERT_TRUE((*writer_or)->Append(WalRecord::DropTable("first")).ok());
  ASSERT_TRUE((*writer_or)->Append(WalRecord::DropTable("second")).ok());
  writer_or->reset();
  const std::string intact = ReadFile(path);

  // Flip a payload bit in the FINAL record: torn tail, dropped.
  std::string tail_damage = intact;
  tail_damage.back() ^= 0x1;
  WriteFile(path, tail_damage);
  auto reader_or = WalReader::Open(path);
  ASSERT_TRUE(reader_or.ok());
  WalRecord record;
  bool done = false;
  ASSERT_TRUE((*reader_or)->Next(&record, &done).ok());
  ASSERT_FALSE(done);
  EXPECT_EQ(record.name, "first");
  ASSERT_TRUE((*reader_or)->Next(&record, &done).ok());
  EXPECT_TRUE(done);
  EXPECT_TRUE((*reader_or)->tail_truncated());

  // The same bit flip in the FIRST record is mid-log: DataLoss.
  std::string mid_damage = intact;
  mid_damage[kWalHeaderSize + kRecordHeaderSize + 2] ^= 0x1;
  WriteFile(path, mid_damage);
  auto bad_or = WalReader::Open(path);
  ASSERT_TRUE(bad_or.ok());  // header is fine; damage surfaces on Next
  Status st = (*bad_or)->Next(&record, &done);
  while (st.ok() && !done) st = (*bad_or)->Next(&record, &done);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
}

TEST(WalReaderTest, TruncatedHeaderIsDataLoss) {
  std::string dir = MakeTempDir();
  std::string path = dir + "/wal.log";
  WriteFile(path, "FLOCKW");  // shorter than the 20-byte header
  auto reader_or = WalReader::Open(path);
  ASSERT_FALSE(reader_or.ok());
  EXPECT_EQ(reader_or.status().code(), StatusCode::kDataLoss);
}

TEST(WalWriterTest, ResetForEpochCutsFreshLog) {
  std::string dir = MakeTempDir();
  std::string path = dir + "/wal.log";
  auto writer_or = WalWriter::Create(path, 1, {});
  ASSERT_TRUE(writer_or.ok());
  ASSERT_TRUE((*writer_or)->Append(WalRecord::DropTable("old")).ok());
  ASSERT_TRUE((*writer_or)->ResetForEpoch(2).ok());
  EXPECT_EQ((*writer_or)->epoch(), 2u);
  ASSERT_TRUE((*writer_or)->Append(WalRecord::DropTable("new")).ok());
  writer_or->reset();

  auto reader_or = WalReader::Open(path);
  ASSERT_TRUE(reader_or.ok());
  EXPECT_EQ((*reader_or)->epoch(), 2u);
  WalRecord record;
  bool done = false;
  ASSERT_TRUE((*reader_or)->Next(&record, &done).ok());
  ASSERT_FALSE(done);
  EXPECT_EQ(record.name, "new");  // the pre-reset record is gone
  ASSERT_TRUE((*reader_or)->Next(&record, &done).ok());
  EXPECT_TRUE(done);
}

TEST(FaultInjectorTest, ErrorModeWedgesTheWriterStickily) {
  std::string dir = MakeTempDir();
  std::string path = dir + "/wal.log";
  auto writer_or = WalWriter::Create(path, 1, {});
  ASSERT_TRUE(writer_or.ok());
  ASSERT_TRUE((*writer_or)->Append(WalRecord::DropTable("ok")).ok());

  FaultInjector::Get()->Arm("wal.append.before_write",
                            FaultInjector::Mode::kError);
  Status st = (*writer_or)->Append(WalRecord::DropTable("fails"));
  FaultInjector::Get()->Disarm();
  ASSERT_FALSE(st.ok());

  // Sticky: the injector disarmed after one shot, but the writer stays
  // wedged with the first error.
  Status again = (*writer_or)->Append(WalRecord::DropTable("still-fails"));
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.ToString(), st.ToString());
  writer_or->reset();

  // Only the pre-fault record is on disk.
  auto reader_or = WalReader::Open(path);
  ASSERT_TRUE(reader_or.ok());
  WalRecord record;
  bool done = false;
  ASSERT_TRUE((*reader_or)->Next(&record, &done).ok());
  ASSERT_FALSE(done);
  EXPECT_EQ(record.name, "ok");
  ASSERT_TRUE((*reader_or)->Next(&record, &done).ok());
  EXPECT_TRUE(done);
}

TEST(FaultInjectorTest, SkipCountDelaysTheFault) {
  FaultInjector* injector = FaultInjector::Get();
  injector->Arm("wal.append.before_write", FaultInjector::Mode::kError, 2);
  EXPECT_TRUE(injector->Hit("wal.append.before_write").ok());  // skip 1
  EXPECT_TRUE(injector->Hit("other.point").ok());              // no match
  EXPECT_TRUE(injector->Hit("wal.append.before_write").ok());  // skip 2
  EXPECT_FALSE(injector->Hit("wal.append.before_write").ok()); // fires
  // One-shot: disarmed after firing.
  EXPECT_TRUE(injector->Hit("wal.append.before_write").ok());
  EXPECT_FALSE(injector->armed());
}

TEST(FaultInjectorTest, PointsListsWritePathThenCheckpointPath) {
  const std::vector<std::string>& points = FaultInjector::Points();
  ASSERT_EQ(points.size(), 9u);
  EXPECT_EQ(points.front(), "wal.append.before_write");
  EXPECT_EQ(points.back(), "checkpoint.after_wal_reset");
  // The segment-flush point sits between snapshot write and rename, so the
  // crash matrix exercises a torn checkpoint image with flushed segments.
  EXPECT_EQ(points[5], "checkpoint.after_segment_flush");
}

SnapshotData SampleSnapshot() {
  SnapshotData data;
  data.epoch = 9;
  TableSnapshot table;
  table.name = "t";
  table.schema = TwoColSchema();
  table.segment_capacity = 4;
  table.segments.push_back(SmallBatch());
  data.tables.push_back(std::move(table));
  ModelSnapshot model;
  model.name = "churn";
  model.version = 4;
  model.pipeline_text = "pipe";
  model.created_by = "alice";
  model.lineage = "train.py";
  model.allowed_principals = {"alice", "bob"};
  data.models.push_back(std::move(model));
  AuditEventSnapshot audit;
  audit.kind = 1;
  audit.model = "churn";
  audit.principal = "alice";
  audit.version = 4;
  audit.rows = 100;
  data.audit.push_back(audit);
  policy::TimelineEntry entry;
  entry.seq = 11;
  entry.policy = "clamp";
  entry.before = 0.9;
  entry.after = 0.5;
  entry.rejected = true;
  entry.context = "ctx";
  data.timeline.push_back(entry);
  data.policy_next_seq = 12;
  prov::Entity entity;
  entity.id = 1;
  entity.type = prov::EntityType::kModel;
  entity.name = "churn";
  entity.version = 4;
  entity.properties = {{"auc", "0.91"}};
  data.entities.push_back(entity);
  data.edges.push_back({1, 1, prov::EdgeType::kVersionOf});
  return data;
}

TEST(SnapshotTest, EncodeDecodeRoundTrip) {
  SnapshotData data = SampleSnapshot();
  auto decoded = DecodeSnapshot(EncodeSnapshot(data));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->epoch, 9u);
  ASSERT_EQ(decoded->tables.size(), 1u);
  EXPECT_EQ(decoded->tables[0].name, "t");
  EXPECT_TRUE(decoded->tables[0].schema == data.tables[0].schema);
  EXPECT_EQ(decoded->tables[0].segment_capacity, 4u);
  ASSERT_EQ(decoded->tables[0].segments.size(), 1u);
  EXPECT_EQ(decoded->tables[0].segments[0].ToString(),
            data.tables[0].segments[0].ToString());
  ASSERT_EQ(decoded->models.size(), 1u);
  EXPECT_EQ(decoded->models[0].name, "churn");
  EXPECT_EQ(decoded->models[0].allowed_principals,
            data.models[0].allowed_principals);
  ASSERT_EQ(decoded->audit.size(), 1u);
  EXPECT_EQ(decoded->audit[0].principal, "alice");
  ASSERT_EQ(decoded->timeline.size(), 1u);
  EXPECT_EQ(decoded->timeline[0].seq, 11u);
  EXPECT_EQ(decoded->timeline[0].rejected, true);
  EXPECT_EQ(decoded->policy_next_seq, 12u);
  ASSERT_EQ(decoded->entities.size(), 1u);
  EXPECT_EQ(decoded->entities[0].type, prov::EntityType::kModel);
  EXPECT_EQ(decoded->entities[0].properties.at("auc"), "0.91");
  ASSERT_EQ(decoded->edges.size(), 1u);
  EXPECT_EQ(decoded->edges[0].type, prov::EdgeType::kVersionOf);
}

// Hand-encodes a version-1 snapshot image: one table stored as a single
// monolithic batch with no segment metadata (the pre-segmentation format).
std::string EncodeV1Snapshot(const RecordBatch& rows) {
  std::string payload;
  storage::PutU32(&payload, 1);  // format version 1
  storage::PutU64(&payload, 9);  // epoch
  storage::PutU32(&payload, 1);  // one table
  storage::PutString(&payload, "t");
  storage::SerializeSchema(TwoColSchema(), &payload);
  storage::SerializeBatch(rows, &payload);
  storage::PutU32(&payload, 0);  // models
  storage::PutU32(&payload, 0);  // audit events
  storage::PutU64(&payload, 0);  // policy next seq
  storage::PutU32(&payload, 0);  // timeline
  storage::PutU32(&payload, 0);  // entities
  storage::PutU32(&payload, 0);  // edges
  std::string out(kSnapshotMagic, sizeof(kSnapshotMagic));
  out.append(payload);
  storage::PutU32(&out, Crc32(payload.data(), payload.size()));
  return out;
}

TEST(SnapshotTest, VersionOneImageStillDecodes) {
  auto decoded = DecodeSnapshot(EncodeV1Snapshot(SmallBatch()));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->tables.size(), 1u);
  const TableSnapshot& t = decoded->tables[0];
  // Capacity 0 marks a v1 image: restore repacks at the catalog default.
  EXPECT_EQ(t.segment_capacity, 0u);
  ASSERT_EQ(t.segments.size(), 1u);
  EXPECT_EQ(t.segments[0].ToString(), SmallBatch().ToString());
}

TEST(SnapshotTest, VersionOneEmptyTableDecodesToNoSegments) {
  auto decoded = DecodeSnapshot(EncodeV1Snapshot(RecordBatch(TwoColSchema())));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->tables.size(), 1u);
  EXPECT_TRUE(decoded->tables[0].segments.empty());
}

TEST(SnapshotTest, MultiSegmentTableRoundTrips) {
  SnapshotData data;
  data.epoch = 3;
  TableSnapshot table;
  table.name = "t";
  table.schema = TwoColSchema();
  table.segment_capacity = 2;
  for (int s = 0; s < 3; ++s) {
    RecordBatch seg(TwoColSchema());
    EXPECT_TRUE(
        seg.AppendRow({Value::Int(2 * s), Value::Double(s * 0.5)}).ok());
    if (s < 2) {  // last segment half-full, like a live open segment
      EXPECT_TRUE(seg.AppendRow({Value::Int(2 * s + 1), Value::Null()}).ok());
    }
    table.segments.push_back(std::move(seg));
  }
  data.tables.push_back(std::move(table));
  auto decoded = DecodeSnapshot(EncodeSnapshot(data));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const TableSnapshot& t = decoded->tables[0];
  EXPECT_EQ(t.segment_capacity, 2u);
  ASSERT_EQ(t.segments.size(), 3u);
  EXPECT_EQ(t.segments[0].num_rows(), 2u);
  EXPECT_EQ(t.segments[2].num_rows(), 1u);
  EXPECT_EQ(t.segments[2].column(0)->int_at(0), 4);
}

TEST(SnapshotTest, ZeroSegmentCapacityInV2ImageIsDataLoss) {
  SnapshotData data = SampleSnapshot();
  data.tables[0].segment_capacity = 0;  // corrupt: v2 requires a capacity
  auto decoded = DecodeSnapshot(EncodeSnapshot(data));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(SnapshotTest, FutureFormatVersionIsDataLoss) {
  std::string payload;
  storage::PutU32(&payload, kSnapshotFormatVersion + 1);
  storage::PutU64(&payload, 1);
  std::string buf(kSnapshotMagic, sizeof(kSnapshotMagic));
  buf.append(payload);
  storage::PutU32(&buf, Crc32(payload.data(), payload.size()));
  auto decoded = DecodeSnapshot(buf);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(SnapshotTest, CorruptedPayloadIsDataLoss) {
  std::string buf = EncodeSnapshot(SampleSnapshot());
  buf[buf.size() / 2] ^= 0x1;
  auto decoded = DecodeSnapshot(buf);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(SnapshotTest, CheckpointManagerWritesAtomicallyAndReadsBack) {
  std::string dir = MakeTempDir();
  CheckpointManager manager(dir);
  EXPECT_EQ(manager.Read().status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(manager.Write(SampleSnapshot()).ok());
  auto read = manager.Read();
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->epoch, 9u);
  // No temp file left behind.
  std::ifstream tmp(manager.temp_path());
  EXPECT_FALSE(tmp.good());
}

// ---------------------------------------------------------------------
// WalTailReader: incremental tailing of a *live* log (replication).
// ---------------------------------------------------------------------

TEST(WalTailReaderTest, PollIsNotFoundUntilTheLogExists) {
  std::string dir = MakeTempDir();
  WalTailReader tail(dir + "/wal.log");
  auto poll = tail.Poll(10);
  ASSERT_FALSE(poll.ok());
  EXPECT_EQ(poll.status().code(), StatusCode::kNotFound);
}

TEST(WalTailReaderTest, TailsALiveWriterIncrementally) {
  std::string dir = MakeTempDir();
  std::string path = dir + "/wal.log";
  WalWriterOptions options;
  options.fsync_policy = FsyncPolicy::kNever;
  auto writer = WalWriter::Create(path, 1, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(
      (*writer)->Append(WalRecord::CreateTable("t", TwoColSchema())).ok());
  ASSERT_TRUE((*writer)->Append(WalRecord::AppendBatch("t", SmallBatch())).ok());

  WalTailReader tail(path);
  auto first = tail.Poll(10);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->records.size(), 2u);
  EXPECT_TRUE(first->end_of_durable_log);
  EXPECT_EQ(tail.epoch(), 1u);
  EXPECT_EQ(tail.next_lsn(), 2u);

  // The writer keeps appending; the next poll picks up only the delta.
  ASSERT_TRUE((*writer)->Append(WalRecord::DeleteRows("t", {0})).ok());
  auto second = tail.Poll(10);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second->records.size(), 1u);
  EXPECT_EQ(second->records[0].type, WalRecordType::kDeleteRows);
  EXPECT_EQ(tail.next_lsn(), 3u);

  // max_records bounds a round without losing position.
  ASSERT_TRUE((*writer)->Append(WalRecord::DeleteRows("t", {1})).ok());
  ASSERT_TRUE((*writer)->Append(WalRecord::DropTable("t")).ok());
  auto capped = tail.Poll(1);
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(capped->records.size(), 1u);
  EXPECT_FALSE(capped->end_of_durable_log);
  auto rest = tail.Poll(10);
  ASSERT_TRUE(rest.ok());
  EXPECT_EQ(rest->records.size(), 1u);
  EXPECT_TRUE(rest->end_of_durable_log);
}

TEST(WalTailReaderTest, TornTailIsEndOfDurableLogNotAnError) {
  std::string dir = MakeTempDir();
  std::string path = dir + "/wal.log";
  WalWriterOptions options;
  options.fsync_policy = FsyncPolicy::kNever;
  auto writer = WalWriter::Create(path, 1, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(
      (*writer)->Append(WalRecord::CreateTable("t", TwoColSchema())).ok());

  // A half-written frame at the tail: to a tailing replica this is a
  // record still in flight, not corruption — retried, never truncated.
  AppendBytes(path, std::string("\x40\x00\x00\x00\xaa\xbb", 6));
  WalTailReader tail(path);
  auto poll = tail.Poll(10);
  ASSERT_TRUE(poll.ok()) << poll.status().ToString();
  EXPECT_EQ(poll->records.size(), 1u);
  EXPECT_TRUE(poll->end_of_durable_log);

  // The condition is not sticky: polling again is still fine.
  auto again = tail.Poll(10);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->records.empty());
  EXPECT_TRUE(again->end_of_durable_log);
}

TEST(WalTailReaderTest, InjectedPartialWriteReadsAsEndOfDurableLog) {
  std::string dir = MakeTempDir();
  std::string path = dir + "/wal.log";
  WalWriterOptions options;
  options.fsync_policy = FsyncPolicy::kNever;
  auto writer = WalWriter::Create(path, 1, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(
      (*writer)->Append(WalRecord::CreateTable("t", TwoColSchema())).ok());

  // The injector tears the next append mid-frame (half the bytes land),
  // exactly what a live tail sees when the primary dies mid-write.
  FaultInjector::Get()->Arm("wal.append.partial_write",
                            FaultInjector::Mode::kError);
  EXPECT_FALSE(
      (*writer)->Append(WalRecord::AppendBatch("t", SmallBatch())).ok());
  FaultInjector::Get()->Disarm();

  WalTailReader tail(path);
  auto poll = tail.Poll(10);
  ASSERT_TRUE(poll.ok()) << poll.status().ToString();
  EXPECT_EQ(poll->records.size(), 1u);  // only the committed record
  EXPECT_TRUE(poll->end_of_durable_log);
}

TEST(WalTailReaderTest, MidLogDamageIsStillDataLoss) {
  std::string dir = MakeTempDir();
  std::string path = dir + "/wal.log";
  WalWriterOptions options;
  options.fsync_policy = FsyncPolicy::kNever;
  auto writer = WalWriter::Create(path, 1, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(
      (*writer)->Append(WalRecord::CreateTable("t", TwoColSchema())).ok());
  size_t first_end = ReadFile(path).size();
  ASSERT_TRUE((*writer)->Append(WalRecord::AppendBatch("t", SmallBatch())).ok());
  writer->reset();

  // Flip a byte inside the *first* record: damage before the tail frame
  // is real corruption, not an in-flight append.
  std::string bytes = ReadFile(path);
  bytes[first_end - 3] ^= 0x5a;
  WriteFile(path, bytes);

  WalTailReader tail(path);
  auto poll = tail.Poll(10);
  ASSERT_FALSE(poll.ok());
  EXPECT_EQ(poll.status().code(), StatusCode::kDataLoss);
}

TEST(WalTailReaderTest, CheckpointEpochSwapIsReported) {
  std::string dir = MakeTempDir();
  std::string path = dir + "/wal.log";
  WalWriterOptions options;
  options.fsync_policy = FsyncPolicy::kNever;
  auto writer = WalWriter::Create(path, 1, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(
      (*writer)->Append(WalRecord::CreateTable("t", TwoColSchema())).ok());

  WalTailReader tail(path);
  ASSERT_TRUE(tail.Poll(10).ok());
  EXPECT_EQ(tail.epoch(), 1u);

  // Checkpoint: the file is atomically replaced under a bumped epoch.
  ASSERT_TRUE((*writer)->ResetForEpoch(2).ok());
  ASSERT_TRUE((*writer)->Append(WalRecord::DropTable("t")).ok());

  auto swapped = tail.Poll(10);
  ASSERT_TRUE(swapped.ok());
  EXPECT_TRUE(swapped->epoch_changed);
  EXPECT_TRUE(swapped->records.empty());  // cursor reset, nothing consumed
  EXPECT_EQ(tail.epoch(), 2u);
  EXPECT_EQ(tail.next_lsn(), 0u);

  auto fresh = tail.Poll(10);
  ASSERT_TRUE(fresh.ok());
  ASSERT_EQ(fresh->records.size(), 1u);
  EXPECT_EQ(fresh->records[0].type, WalRecordType::kDropTable);
}

TEST(WalTailReaderTest, SeekRepositionsWithinTheDurablePrefix) {
  std::string dir = MakeTempDir();
  std::string path = dir + "/wal.log";
  WalWriterOptions options;
  options.fsync_policy = FsyncPolicy::kNever;
  auto writer = WalWriter::Create(path, 3, options);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        (*writer)
            ->Append(WalRecord::DropModel("m" + std::to_string(i), "p"))
            .ok());
  }

  WalTailReader tail(path);
  ASSERT_TRUE(tail.Seek(2).ok());
  EXPECT_EQ(tail.epoch(), 3u);
  auto poll = tail.Poll(10);
  ASSERT_TRUE(poll.ok());
  ASSERT_EQ(poll->records.size(), 2u);
  EXPECT_EQ(poll->records[0].name, "m2");

  // Seeking past the durable log is OutOfRange (the caller re-bootstraps
  // or waits, depending on which side of the epoch it is on).
  EXPECT_EQ(tail.Seek(9).code(), StatusCode::kOutOfRange);
}

TEST(WalFormatTest, Crc32MatchesKnownVector) {
  // IEEE 802.3 CRC-32 of "123456789" is the classic check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  // Chained calls equal one shot.
  uint32_t chained = Crc32("56789", 5, Crc32("1234", 4));
  EXPECT_EQ(chained, 0xCBF43926u);
}

}  // namespace
}  // namespace flock::wal
