// Property-based SQL engine tests (TEST_P sweeps over random seeds):
//  * optimizer equivalence — the rule optimizer must never change results;
//  * parallelism equivalence — thread count / morsel size must not either;
//  * LIKE agrees with a brute-force reference matcher;
//  * expression printing round-trips through the parser.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "common/random.h"
#include "common/string_util.h"
#include "sql/engine.h"
#include "sql/evaluator.h"
#include "sql/parser.h"
#include "storage/database.h"

namespace flock::sql {
namespace {

using storage::DataType;
using storage::Database;
using storage::Value;

/// Renders a result batch as a sorted multiset of row strings (order-
/// insensitive comparison).
std::vector<std::string> Canonicalize(const storage::RecordBatch& batch) {
  std::vector<std::string> rows;
  rows.reserve(batch.num_rows());
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    std::ostringstream out;
    for (size_t c = 0; c < batch.num_columns(); ++c) {
      Value v = batch.column(c)->GetValue(r);
      // Round doubles to tolerate association-order float noise.
      if (!v.is_null() && v.type() == DataType::kDouble) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.9g", v.double_value());
        out << buf << "|";
      } else {
        out << v.ToString() << "|";
      }
    }
    rows.push_back(out.str());
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Builds a deterministic random table and returns seeded query strings.
class QueryFuzzer {
 public:
  explicit QueryFuzzer(uint64_t seed) : rng_(seed) {}

  void PopulateDatabase(Database* db) {
    sql::EngineOptions options;
    options.num_threads = 1;
    SqlEngine setup(db, options);
    ASSERT_TRUE(setup
                    .Execute("CREATE TABLE t (a INT, b DOUBLE, "
                             "c VARCHAR, d BOOL, g INT)")
                    .ok());
    const char* words[] = {"alpha", "beta", "gamma", "delta", "epsilon"};
    std::string insert = "INSERT INTO t VALUES ";
    for (int i = 0; i < 500; ++i) {
      if (i > 0) insert += ", ";
      bool null_b = rng_.NextBool(0.1);
      insert += "(" + std::to_string(rng_.UniformInt(-50, 50)) + ", " +
                (null_b ? std::string("NULL")
                        : FormatDouble(rng_.UniformDouble(-10, 10), 3)) +
                ", '" + words[rng_.Uniform(5)] + "', " +
                (rng_.NextBool() ? "TRUE" : "FALSE") + ", " +
                std::to_string(rng_.UniformInt(0, 5)) + ")";
    }
    ASSERT_TRUE(setup.Execute(insert).ok());
  }

  std::string RandomScalar() {
    switch (rng_.Uniform(6)) {
      case 0:
        return "a";
      case 1:
        return "b";
      case 2:
        return std::to_string(rng_.UniformInt(-20, 20));
      case 3:
        return "a + " + std::to_string(rng_.UniformInt(1, 5));
      case 4:
        return "b * 2";
      default:
        return "a % 7";
    }
  }

  std::string RandomPredicate(int depth = 0) {
    if (depth < 2 && rng_.NextBool(0.4)) {
      std::string op = rng_.NextBool() ? " AND " : " OR ";
      return "(" + RandomPredicate(depth + 1) + op +
             RandomPredicate(depth + 1) + ")";
    }
    switch (rng_.Uniform(6)) {
      case 0:
        return RandomScalar() + " > " + RandomScalar();
      case 1:
        return RandomScalar() + " <= " +
               std::to_string(rng_.UniformInt(-10, 10));
      case 2:
        return "c LIKE '%a%'";
      case 3:
        return "b IS NOT NULL";
      case 4:
        return "a IN (1, 2, 3, " +
               std::to_string(rng_.UniformInt(-5, 5)) + ")";
      default:
        return "a BETWEEN " + std::to_string(rng_.UniformInt(-30, 0)) +
               " AND " + std::to_string(rng_.UniformInt(1, 30));
    }
  }

  std::string RandomQuery() {
    std::string sql = "SELECT ";
    if (rng_.NextBool(0.3)) {
      // Aggregate query.
      sql += "g, COUNT(*), SUM(b), MIN(a), MAX(a) FROM t";
      if (rng_.NextBool(0.7)) sql += " WHERE " + RandomPredicate();
      sql += " GROUP BY g";
      if (rng_.NextBool(0.4)) sql += " HAVING COUNT(*) > 2";
      return sql;
    }
    sql += RandomScalar() + ", " + RandomScalar() + ", c FROM t";
    if (rng_.NextBool(0.8)) sql += " WHERE " + RandomPredicate();
    if (rng_.NextBool(0.3)) {
      sql += " ORDER BY a, c";
      if (rng_.NextBool(0.5)) {
        sql += " LIMIT " + std::to_string(rng_.UniformInt(1, 50));
      }
    }
    return sql;
  }

 private:
  Random rng_;
};

class SqlPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SqlPropertyTest, OptimizerPreservesResults) {
  Database db;
  QueryFuzzer fuzzer(GetParam());
  fuzzer.PopulateDatabase(&db);

  sql::EngineOptions options;
  options.num_threads = 1;
  SqlEngine engine(&db, options);
  for (int q = 0; q < 25; ++q) {
    std::string sql = fuzzer.RandomQuery();
    engine.set_enable_optimizer(false);
    auto naive = engine.Execute(sql);
    engine.set_enable_optimizer(true);
    auto optimized = engine.Execute(sql);
    ASSERT_TRUE(naive.ok()) << sql << ": " << naive.status().ToString();
    ASSERT_TRUE(optimized.ok())
        << sql << ": " << optimized.status().ToString();
    // LIMIT without full ORDER BY may legitimately pick different rows;
    // only compare row counts there.
    if (sql.find("LIMIT") != std::string::npos) {
      EXPECT_EQ(naive->batch.num_rows(), optimized->batch.num_rows())
          << sql;
      continue;
    }
    EXPECT_EQ(Canonicalize(naive->batch), Canonicalize(optimized->batch))
        << sql;
  }
}

TEST_P(SqlPropertyTest, ParallelismPreservesResults) {
  Database db;
  QueryFuzzer fuzzer(GetParam() ^ 0xBEEF);
  fuzzer.PopulateDatabase(&db);

  sql::EngineOptions serial_options;
  serial_options.num_threads = 1;
  SqlEngine serial(&db, serial_options);
  sql::EngineOptions parallel_options;
  parallel_options.num_threads = 4;
  parallel_options.morsel_size = 64;  // stress morsel boundaries
  SqlEngine parallel(&db, parallel_options);

  QueryFuzzer query_gen(GetParam() ^ 0xF00D);
  for (int q = 0; q < 15; ++q) {
    std::string sql = query_gen.RandomQuery();
    if (sql.find("LIMIT") != std::string::npos) continue;
    auto a = serial.Execute(sql);
    auto b = parallel.Execute(sql);
    ASSERT_TRUE(a.ok()) << sql;
    ASSERT_TRUE(b.ok()) << sql;
    EXPECT_EQ(Canonicalize(a->batch), Canonicalize(b->batch)) << sql;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// LIKE reference property
// ---------------------------------------------------------------------------

bool ReferenceLike(const std::string& text, const std::string& pattern,
                   size_t t = 0, size_t p = 0) {
  if (p == pattern.size()) return t == text.size();
  if (pattern[p] == '%') {
    for (size_t skip = 0; skip + t <= text.size(); ++skip) {
      if (ReferenceLike(text, pattern, t + skip, p + 1)) return true;
    }
    return false;
  }
  if (t == text.size()) return false;
  if (pattern[p] == '_' || pattern[p] == text[t]) {
    return ReferenceLike(text, pattern, t + 1, p + 1);
  }
  return false;
}

class LikePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LikePropertyTest, MatchesReferenceImplementation) {
  Random rng(GetParam());
  const char* alphabet = "ab%_";
  for (int i = 0; i < 500; ++i) {
    std::string text, pattern;
    size_t text_len = rng.Uniform(8);
    size_t pattern_len = rng.Uniform(6);
    for (size_t c = 0; c < text_len; ++c) {
      text.push_back("ab"[rng.Uniform(2)]);
    }
    for (size_t c = 0; c < pattern_len; ++c) {
      pattern.push_back(alphabet[rng.Uniform(4)]);
    }
    EXPECT_EQ(LikeMatch(text, pattern), ReferenceLike(text, pattern))
        << "text='" << text << "' pattern='" << pattern << "'";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LikePropertyTest,
                         ::testing::Values(11, 22, 33, 44));

// ---------------------------------------------------------------------------
// Expression print/parse round-trip
// ---------------------------------------------------------------------------

class ExprRoundTripTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  ExprPtr RandomExpr(Random* rng, int depth = 0) {
    if (depth >= 3 || rng->NextBool(0.35)) {
      switch (rng->Uniform(4)) {
        // Literals stay non-negative: "-5" round-trips as unary negation,
        // which is a different (equivalent) tree.
        case 0:
          return Expr::MakeLiteral(Value::Int(rng->UniformInt(0, 99)));
        case 1:
          return Expr::MakeLiteral(
              Value::Double(rng->UniformInt(0, 99) / 4.0));
        case 2:
          return Expr::MakeLiteral(Value::String("s"));
        default:
          return Expr::MakeColumnRef("", "x");
      }
    }
    switch (rng->Uniform(5)) {
      case 0: {
        BinaryOp ops[] = {BinaryOp::kAdd, BinaryOp::kSub, BinaryOp::kMul,
                          BinaryOp::kLt, BinaryOp::kEq, BinaryOp::kAnd};
        return Expr::MakeBinary(ops[rng->Uniform(6)],
                                RandomExpr(rng, depth + 1),
                                RandomExpr(rng, depth + 1));
      }
      case 1:
        return Expr::MakeUnary(rng->NextBool() ? UnaryOp::kNot
                                               : UnaryOp::kNeg,
                               RandomExpr(rng, depth + 1));
      case 2: {
        std::vector<ExprPtr> args;
        args.push_back(RandomExpr(rng, depth + 1));
        return Expr::MakeFunction("ABS", std::move(args));
      }
      case 3:
        return Expr::MakeIsNull(RandomExpr(rng, depth + 1),
                                rng->NextBool());
      default:
        return Expr::MakeCast(RandomExpr(rng, depth + 1),
                              rng->NextBool() ? DataType::kInt64
                                              : DataType::kDouble);
    }
  }
};

TEST_P(ExprRoundTripTest, ToStringReparsesToEqualTree) {
  Random rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    ExprPtr original = RandomExpr(&rng);
    std::string text = original->ToString();
    auto reparsed = Parser::ParseExpression(text);
    ASSERT_TRUE(reparsed.ok())
        << text << " -> " << reparsed.status().ToString();
    EXPECT_TRUE(original->Equals(**reparsed))
        << "original: " << text
        << "\nreparsed: " << (*reparsed)->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprRoundTripTest,
                         ::testing::Values(7, 17, 27, 37));

}  // namespace
}  // namespace flock::sql
