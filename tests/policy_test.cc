#include <gtest/gtest.h>

#include "policy/policy_engine.h"

namespace flock::policy {
namespace {

using storage::ColumnDef;
using storage::DataType;
using storage::RecordBatch;
using storage::Schema;
using storage::Value;

Schema LoanSchema() {
  return Schema({ColumnDef{"amount", DataType::kDouble, false},
                 ColumnDef{"region", DataType::kString, false},
                 ColumnDef{"age", DataType::kInt64, false}});
}

TEST(PolicyTest, CreateParsesCondition) {
  auto policy = Policy::Create("cap", ActionKind::kOverride,
                               "prediction > 0.9 AND amount > 100000");
  ASSERT_TRUE(policy.ok());
  EXPECT_EQ(policy->name(), "cap");
  EXPECT_EQ(policy->action(), ActionKind::kOverride);
}

TEST(PolicyTest, CreateRejectsAggregates) {
  auto policy =
      Policy::Create("bad", ActionKind::kAllow, "SUM(prediction) > 1");
  EXPECT_FALSE(policy.ok());
}

TEST(PolicyTest, CreateRejectsGarbage) {
  EXPECT_FALSE(Policy::Create("bad", ActionKind::kAllow, "><").ok());
}

class PolicyEngineTest : public ::testing::Test {
 protected:
  StatusOr<Decision> Decide(double prediction, double amount,
                            const std::string& region, int64_t age) {
    return engine_.Decide(prediction, LoanSchema(),
                          {Value::Double(amount), Value::String(region),
                           Value::Int(age)});
  }

  PolicyEngine engine_;
};

TEST_F(PolicyEngineTest, NoPoliciesPassesThrough) {
  auto d = Decide(0.75, 1000, "US", 30);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d->final_value, 0.75);
  EXPECT_FALSE(d->rejected);
  EXPECT_TRUE(d->policy.empty());
}

TEST_F(PolicyEngineTest, OverrideReplacesPrediction) {
  auto policy = Policy::Create("cap_large", ActionKind::kOverride,
                               "amount > 500000");
  ASSERT_TRUE(policy.ok());
  policy->set_override_value(0.0).set_reason("manual review required");
  ASSERT_TRUE(engine_.AddPolicy(std::move(policy).value()).ok());

  auto hit = Decide(0.95, 600000, "US", 40);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->overridden);
  EXPECT_DOUBLE_EQ(hit->final_value, 0.0);
  EXPECT_EQ(hit->policy, "cap_large");
  EXPECT_EQ(hit->reason, "manual review required");

  auto miss = Decide(0.95, 1000, "US", 40);
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss->overridden);
  EXPECT_DOUBLE_EQ(miss->final_value, 0.95);
}

TEST_F(PolicyEngineTest, ClampBoundsPrediction) {
  auto policy =
      Policy::Create("bound", ActionKind::kClamp, "region = 'EU'");
  ASSERT_TRUE(policy.ok());
  policy->set_clamp(0.2, 0.8);
  ASSERT_TRUE(engine_.AddPolicy(std::move(policy).value()).ok());
  auto high = Decide(0.99, 100, "EU", 30);
  EXPECT_DOUBLE_EQ(high->final_value, 0.8);
  auto low = Decide(0.05, 100, "EU", 30);
  EXPECT_DOUBLE_EQ(low->final_value, 0.2);
  auto mid = Decide(0.5, 100, "EU", 30);
  EXPECT_DOUBLE_EQ(mid->final_value, 0.5);
  EXPECT_FALSE(mid->overridden);
}

TEST_F(PolicyEngineTest, RejectVetoes) {
  auto policy =
      Policy::Create("minors", ActionKind::kReject, "age < 18");
  ASSERT_TRUE(policy.ok());
  ASSERT_TRUE(engine_.AddPolicy(std::move(policy).value()).ok());
  auto d = Decide(0.9, 100, "US", 16);
  EXPECT_TRUE(d->rejected);
}

TEST_F(PolicyEngineTest, FirstMatchingPolicyWins) {
  auto first =
      Policy::Create("first", ActionKind::kOverride, "prediction > 0.5");
  first->set_override_value(0.11);
  auto second =
      Policy::Create("second", ActionKind::kOverride, "prediction > 0.5");
  second->set_override_value(0.99);
  ASSERT_TRUE(engine_.AddPolicy(std::move(first).value()).ok());
  ASSERT_TRUE(engine_.AddPolicy(std::move(second).value()).ok());
  auto d = Decide(0.8, 100, "US", 30);
  EXPECT_EQ(d->policy, "first");
  EXPECT_DOUBLE_EQ(d->final_value, 0.11);
}

TEST_F(PolicyEngineTest, DuplicateNameRejected) {
  auto a = Policy::Create("p", ActionKind::kAllow, "prediction > 0");
  auto b = Policy::Create("P", ActionKind::kAllow, "prediction > 0");
  ASSERT_TRUE(engine_.AddPolicy(std::move(a).value()).ok());
  EXPECT_EQ(engine_.AddPolicy(std::move(b).value()).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(PolicyEngineTest, UnknownFieldSurfacesError) {
  auto policy =
      Policy::Create("typo", ActionKind::kAllow, "amnt > 5");
  ASSERT_TRUE(policy.ok());
  ASSERT_TRUE(engine_.AddPolicy(std::move(policy).value()).ok());
  auto d = Decide(0.5, 100, "US", 30);
  EXPECT_EQ(d.status().code(), StatusCode::kNotFound);
}

TEST_F(PolicyEngineTest, TimelineRecordsActions) {
  auto policy = Policy::Create("alerts", ActionKind::kAlert,
                               "prediction > 0.9");
  ASSERT_TRUE(engine_.AddPolicy(std::move(policy).value()).ok());
  ASSERT_TRUE(Decide(0.95, 100, "US", 30).ok());
  ASSERT_TRUE(Decide(0.10, 100, "US", 30).ok());  // no match
  ASSERT_TRUE(Decide(0.99, 200, "EU", 50).ok());
  ASSERT_EQ(engine_.timeline().size(), 2u);
  EXPECT_EQ(engine_.timeline()[0].policy, "alerts");
  EXPECT_LT(engine_.timeline()[0].seq, engine_.timeline()[1].seq);
  EXPECT_NE(engine_.timeline()[1].context.find("region=EU"),
            std::string::npos);
}

TEST_F(PolicyEngineTest, DecideBatchMatchesRowwise) {
  auto policy = Policy::Create("cap", ActionKind::kOverride,
                               "prediction > 0.5 AND amount > 100");
  policy->set_override_value(0.5);
  ASSERT_TRUE(engine_.AddPolicy(std::move(policy).value()).ok());

  RecordBatch batch(LoanSchema());
  std::vector<double> predictions;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(batch
                    .AppendRow({Value::Double(i * 20.0),
                                Value::String(i % 2 == 0 ? "US" : "EU"),
                                Value::Int(20 + i)})
                    .ok());
    predictions.push_back(i / 20.0);
  }
  auto batch_decisions = engine_.DecideBatch(predictions, batch);
  ASSERT_TRUE(batch_decisions.ok());
  for (int i = 0; i < 20; ++i) {
    auto single = engine_.Decide(predictions[static_cast<size_t>(i)],
                                 LoanSchema(), batch.GetRow(i));
    ASSERT_TRUE(single.ok());
    EXPECT_DOUBLE_EQ((*batch_decisions)[static_cast<size_t>(i)].final_value,
                     single->final_value)
        << "row " << i;
  }
}

/// Sink that fails on the N-th apply; tracks applied/rolled-back sets.
class FlakySink : public ActionSink {
 public:
  explicit FlakySink(int fail_at) : fail_at_(fail_at) {}
  Status Apply(const Decision& d) override {
    if (applied_ == fail_at_) {
      return Status::Internal("downstream unavailable");
    }
    ++applied_;
    log_.push_back(d.final_value);
    return Status::OK();
  }
  void Rollback(const Decision& d) override {
    ++rolled_back_;
    (void)d;
  }
  int applied() const { return applied_; }
  int rolled_back() const { return rolled_back_; }
  const std::vector<double>& log() const { return log_; }

 private:
  int fail_at_;
  int applied_ = 0;
  int rolled_back_ = 0;
  std::vector<double> log_;
};

TEST_F(PolicyEngineTest, TransactionalApplyCommits) {
  std::vector<Decision> decisions(5);
  FlakySink sink(/*fail_at=*/100);
  ASSERT_TRUE(engine_.ApplyTransactionally(decisions, &sink).ok());
  EXPECT_EQ(sink.applied(), 5);
  EXPECT_EQ(sink.rolled_back(), 0);
}

TEST_F(PolicyEngineTest, TransactionalApplyRollsBack) {
  std::vector<Decision> decisions(5);
  FlakySink sink(/*fail_at=*/3);
  Status st = engine_.ApplyTransactionally(decisions, &sink);
  EXPECT_EQ(st.code(), StatusCode::kAborted);
  EXPECT_EQ(sink.applied(), 3);
  EXPECT_EQ(sink.rolled_back(), 3);
}

TEST_F(PolicyEngineTest, RejectedDecisionsSkipSink) {
  std::vector<Decision> decisions(3);
  decisions[1].rejected = true;
  FlakySink sink(/*fail_at=*/100);
  ASSERT_TRUE(engine_.ApplyTransactionally(decisions, &sink).ok());
  EXPECT_EQ(sink.applied(), 2);
}

}  // namespace
}  // namespace flock::policy
