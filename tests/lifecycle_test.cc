// Tests for the model lifecycle subsystem (src/lifecycle/): the rollout
// state machine (staged → shadow → canary → live, rolled_back on
// failure), PREDICT-call rewriting, shadow scoring and divergence
// accounting, deterministic canary routing, guard-rule breaches
// triggering automatic rollback with zero failed requests, the drift
// monitor's sketches, WAL round-trip of rollout records, crash recovery
// of an interrupted rollout, and replication of rollout state to a read
// replica.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/hash.h"
#include "common/random.h"
#include "flock/flock_engine.h"
#include "lifecycle/monitor.h"
#include "lifecycle/rollout.h"
#include "ml/tree.h"
#include "repl/applier.h"
#include "repl/publisher.h"
#include "wal/wal_record.h"

namespace flock::lifecycle {
namespace {

std::string MakeTempDir() {
  char tmpl[] = "/tmp/flock_lifecycle_test_XXXXXX";
  char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return std::string(dir);
}

flock::FlockEngineOptions SerialEngineOptions() {
  flock::FlockEngineOptions options;
  options.sql.num_threads = 1;
  return options;
}

/// churn GBDT over the 5-input users schema; `invert_labels` trains a
/// deliberately divergent model for guard-breach tests.
ml::Pipeline TrainChurnPipeline(bool invert_labels) {
  const size_t rows = 200;
  Random rng(13);
  ml::Matrix raw(rows, 5);
  std::vector<double> labels(rows);
  for (size_t i = 0; i < rows; ++i) {
    double age = 20 + rng.NextDouble() * 50;
    double income = 30 + rng.NextDouble() * 120;
    raw.at(i, 0) = age;
    raw.at(i, 1) = income;
    raw.at(i, 2) = rng.NextDouble() * 10;
    raw.at(i, 3) = rng.NextDouble() * 100;
    raw.at(i, 4) = static_cast<double>(rng.Uniform(3));
    double z = 0.08 * (age - 45) - 0.02 * (income - 90) -
               0.4 * raw.at(i, 2) + 0.03 * raw.at(i, 3);
    bool churned = z > 0;
    labels[i] = (churned != invert_labels) ? 1.0 : 0.0;
  }
  ml::Pipeline pipeline;
  std::vector<ml::FeatureSpec> specs;
  for (const char* n : {"age", "income", "tenure", "clicks"}) {
    specs.push_back(ml::FeatureSpec{n, ml::FeatureKind::kNumeric, {}});
  }
  specs.push_back(ml::FeatureSpec{"plan", ml::FeatureKind::kCategorical,
                                  {"basic", "plus", "pro"}});
  pipeline.SetInputs(specs);
  pipeline.set_task(ml::ModelTask::kBinaryClassification);
  pipeline.FitFeaturizers(raw, true, true);
  ml::Dataset features;
  features.x = pipeline.Transform(raw);
  features.y = labels;
  ml::GbtOptions gbt;
  gbt.num_trees = 6;
  gbt.max_depth = 3;
  pipeline.SetTreeModel(ml::TrainGradientBoosting(features, gbt));
  return pipeline;
}

void BuildUsersAndChurn(flock::FlockEngine* engine, size_t rows = 200) {
  ASSERT_TRUE(engine
                  ->Execute("CREATE TABLE users (id INT, age DOUBLE, "
                            "income DOUBLE, tenure DOUBLE, "
                            "clicks DOUBLE, plan VARCHAR)")
                  .ok());
  Random rng(7);
  const char* plans[] = {"basic", "plus", "pro"};
  std::string insert = "INSERT INTO users VALUES ";
  for (size_t i = 0; i < rows; ++i) {
    if (i > 0) insert += ", ";
    char row[160];
    std::snprintf(row, sizeof(row), "(%zu, %.3f, %.3f, %.3f, %.3f, '%s')",
                  i, 20 + rng.NextDouble() * 50, 30 + rng.NextDouble() * 120,
                  rng.NextDouble() * 10, rng.NextDouble() * 100,
                  plans[rng.Uniform(3)]);
    insert += row;
  }
  ASSERT_TRUE(engine->Execute(insert).ok());
  ASSERT_TRUE(engine
                  ->DeployModel("churn", TrainChurnPipeline(false),
                                "lifecycle_test", "baseline")
                  .ok());
}

const char* kScoringSql =
    "SELECT id, PREDICT(churn, age, income, tenure, clicks, plan) "
    "FROM users WHERE id < 100";

RolloutConfig GuardlessConfig(uint32_t permille = 500) {
  RolloutConfig config;
  config.canary_permille = permille;
  config.guard.max_divergence_rate = 0.0;
  config.guard.max_latency_regression = 0.0;
  config.guard.max_drift_score = 0.0;
  config.guard.min_observations = 1;
  return config;
}

// ---------------------------------------------------------------------
// PREDICT-call rewriting.
// ---------------------------------------------------------------------

TEST(RewritePredictCallsTest, RewritesAllCallFormsCaseInsensitively) {
  const std::string repl = "'churn#candidate'";
  EXPECT_EQ(RewritePredictCalls("SELECT PREDICT(churn, age) FROM users",
                                "churn", repl),
            "SELECT PREDICT('churn#candidate', age) FROM users");
  EXPECT_EQ(RewritePredictCalls("select predict( CHURN , age) from users",
                                "churn", repl),
            "select predict( 'churn#candidate' , age) from users");
  EXPECT_EQ(RewritePredictCalls("SELECT PREDICT_GT(churn, age, 0.5) "
                                "FROM users WHERE PREDICT_LE(churn, age, "
                                "0.9)",
                                "churn", repl),
            "SELECT PREDICT_GT('churn#candidate', age, 0.5) FROM users "
            "WHERE PREDICT_LE('churn#candidate', age, 0.9)");
  EXPECT_EQ(
      RewritePredictCalls("SELECT PREDICT('churn', age) FROM users",
                          "churn", repl),
      "SELECT PREDICT('churn#candidate', age) FROM users");
}

TEST(RewritePredictCallsTest, LeavesUnrelatedSqlUntouched) {
  for (const char* sql : {
           "SELECT * FROM users",
           "SELECT PREDICT(other_model, age) FROM users",
           "SELECT name FROM t WHERE name = 'predict(churn'",
           "SELECT predictions FROM churn_table",
           "INSERT INTO users VALUES (1, 2.0)",
       }) {
    EXPECT_EQ(RewritePredictCalls(sql, "churn", "'x'"), sql) << sql;
  }
}

// ---------------------------------------------------------------------
// ModelMonitor.
// ---------------------------------------------------------------------

TEST(ModelMonitorTest, SketchesTrackDistributionAndDrift) {
  ModelMonitor monitor;
  flock::ModelEntry entry;
  entry.name = "m";
  entry.training_profile.mean = {10.0, 0.0};
  entry.training_profile.std = {2.0, 1.0};

  ml::Matrix raw(100, 2);
  for (size_t i = 0; i < 100; ++i) {
    raw.at(i, 0) = 10.0 + (i % 2 == 0 ? 1.0 : -1.0);  // mean 10, no drift
    raw.at(i, 1) = 5.0;  // 5 std-devs off the training mean
  }
  monitor.ObserveFeatures(entry, raw, 100);

  std::vector<FeatureSketchSnapshot> sketches = monitor.FeatureSketches("m");
  ASSERT_EQ(sketches.size(), 2u);
  EXPECT_EQ(sketches[0].count, 100u);
  EXPECT_DOUBLE_EQ(sketches[0].min, 9.0);
  EXPECT_DOUBLE_EQ(sketches[0].max, 11.0);
  EXPECT_NEAR(sketches[0].mean, 10.0, 1e-9);
  EXPECT_NEAR(sketches[0].drift, 0.0, 1e-9);
  EXPECT_NEAR(sketches[1].mean, 5.0, 1e-9);
  EXPECT_NEAR(sketches[1].drift, 5.0, 1e-9);
  EXPECT_NEAR(monitor.DriftScore("m"), 5.0, 1e-9);
  EXPECT_GE(sketches[0].p50, 9.0);
  EXPECT_LE(sketches[0].p50, 11.0);

  monitor.Forget("m");
  EXPECT_TRUE(monitor.FeatureSketches("m").empty());
  EXPECT_DOUBLE_EQ(monitor.DriftScore("m"), 0.0);
}

TEST(ModelMonitorTest, SpecializationsFoldIntoBaseModel) {
  ModelMonitor monitor;
  flock::ModelEntry spec;
  spec.name = "churn#candidate";
  spec.base_name = "churn";
  ml::Matrix raw(10, 1);
  for (size_t i = 0; i < 10; ++i) raw.at(i, 0) = 1.0;
  monitor.ObserveFeatures(spec, raw, 10);
  ASSERT_EQ(monitor.FeatureSketches("churn").size(), 1u);
  EXPECT_EQ(monitor.FeatureSketches("churn")[0].count, 10u);
}

TEST(ModelMonitorTest, ScoreHistogramBucketsQueryResults) {
  flock::FlockEngine engine(SerialEngineOptions());
  ASSERT_TRUE(engine.Execute("CREATE TABLE scores (s DOUBLE)").ok());
  ASSERT_TRUE(
      engine.Execute("INSERT INTO scores VALUES (0.02), (0.98), (0.51)")
          .ok());
  auto result = engine.Execute("SELECT s FROM scores");
  ASSERT_TRUE(result.ok());

  ModelMonitor monitor;
  monitor.RecordScores("churn", "candidate", result->batch);
  ScoreHistogramSnapshot hist = monitor.ScoreHistogram("churn", "candidate");
  EXPECT_EQ(hist.count, 3u);
  EXPECT_NEAR(hist.mean, (0.02 + 0.98 + 0.51) / 3.0, 1e-9);
  EXPECT_EQ(hist.buckets.front(), 1u);  // 0.02
  EXPECT_EQ(hist.buckets.back(), 1u);   // 0.98
  EXPECT_EQ(monitor.ScoreHistogram("churn", "live").count, 0u);
  EXPECT_NE(monitor.StatusJson("churn").find("\"candidate\""),
            std::string::npos);
}

// ---------------------------------------------------------------------
// WAL record round-trip.
// ---------------------------------------------------------------------

TEST(WalRolloutRecordTest, PayloadRoundTrips) {
  wal::RolloutSnapshot snapshot;
  snapshot.model = "churn";
  snapshot.state = 2;
  snapshot.canary_permille = 250;
  snapshot.candidate_pipeline_text = "pipeline-bytes";
  snapshot.initiated_by = "ops";
  snapshot.live_version = 7;
  snapshot.max_divergence_rate = 0.05;
  snapshot.max_latency_regression = 2.5;
  snapshot.max_drift_score = 6.0;
  snapshot.min_observations = 123;

  wal::WalRecord record = wal::WalRecord::RolloutChange(snapshot);
  std::string payload = wal::EncodeRecordPayload(record);
  auto decoded = wal::DecodeRecordPayload(wal::WalRecordType::kRolloutState,
                                          payload.data(), payload.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->rollout.model, "churn");
  EXPECT_EQ(decoded->rollout.state, 2);
  EXPECT_EQ(decoded->rollout.canary_permille, 250u);
  EXPECT_EQ(decoded->rollout.candidate_pipeline_text, "pipeline-bytes");
  EXPECT_EQ(decoded->rollout.initiated_by, "ops");
  EXPECT_EQ(decoded->rollout.live_version, 7u);
  EXPECT_DOUBLE_EQ(decoded->rollout.max_divergence_rate, 0.05);
  EXPECT_DOUBLE_EQ(decoded->rollout.max_latency_regression, 2.5);
  EXPECT_DOUBLE_EQ(decoded->rollout.max_drift_score, 6.0);
  EXPECT_EQ(decoded->rollout.min_observations, 123u);
}

// ---------------------------------------------------------------------
// Rollout state machine.
// ---------------------------------------------------------------------

class LifecycleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<flock::FlockEngine>(SerialEngineOptions());
    BuildUsersAndChurn(engine_.get());
    manager_ = std::make_unique<RolloutManager>(engine_.get());
    ASSERT_TRUE(manager_->Resume().ok());
    execute_ = [this](const std::string& sql) {
      return engine_->Execute(sql);
    };
  }

  RolloutStage StageOf(const std::string& model) {
    auto view = manager_->Describe(model);
    EXPECT_TRUE(view.ok());
    return view.ok() ? view->stage : RolloutStage::kRolledBack;
  }

  bool CandidateInstalled() {
    return engine_->models()->HasSpecialization(
        flock::RolloutCandidateKey("churn"));
  }

  std::unique_ptr<flock::FlockEngine> engine_;
  std::unique_ptr<RolloutManager> manager_;
  std::function<StatusOr<sql::QueryResult>(const std::string&)> execute_;
};

TEST_F(LifecycleTest, StateMachineWalksStagedShadowCanaryLive) {
  ASSERT_TRUE(manager_
                  ->BeginWithPipeline("churn", TrainChurnPipeline(false),
                                      GuardlessConfig(), "ops")
                  .ok());
  EXPECT_EQ(StageOf("churn"), RolloutStage::kStaged);
  EXPECT_TRUE(CandidateInstalled());
  EXPECT_EQ(engine_->models()->CurrentVersion("churn"), 1u);

  ASSERT_TRUE(manager_->Promote("churn").ok());
  EXPECT_EQ(StageOf("churn"), RolloutStage::kShadow);
  ASSERT_TRUE(manager_->Promote("churn").ok());
  EXPECT_EQ(StageOf("churn"), RolloutStage::kCanary);
  EXPECT_TRUE(CandidateInstalled());

  // Final promotion registers the candidate as the new live version and
  // retires the specialization in the same deploy transaction.
  ASSERT_TRUE(manager_->Promote("churn").ok());
  EXPECT_EQ(StageOf("churn"), RolloutStage::kLive);
  EXPECT_FALSE(CandidateInstalled());
  EXPECT_EQ(engine_->models()->CurrentVersion("churn"), 2u);
  EXPECT_EQ(manager_->promotions(), 1u);

  Status again = manager_->Promote("churn");
  EXPECT_FALSE(again.ok());

  // A finished rollout frees the model for the next one.
  EXPECT_TRUE(manager_
                  ->BeginWithPipeline("churn", TrainChurnPipeline(true),
                                      GuardlessConfig(), "ops")
                  .ok());
  EXPECT_EQ(StageOf("churn"), RolloutStage::kStaged);
}

TEST_F(LifecycleTest, BeginRejectsUnknownModelAndActiveConflicts) {
  RolloutConfig config = GuardlessConfig();
  EXPECT_FALSE(
      manager_->BeginWithPipeline("ghost", TrainChurnPipeline(false),
                                  config, "ops")
          .ok());
  config.canary_permille = 1001;
  EXPECT_FALSE(
      manager_->BeginWithPipeline("churn", TrainChurnPipeline(false),
                                  config, "ops")
          .ok());
  ASSERT_TRUE(manager_
                  ->BeginWithPipeline("churn", TrainChurnPipeline(false),
                                      GuardlessConfig(), "ops")
                  .ok());
  EXPECT_FALSE(manager_
                   ->BeginWithPipeline("churn", TrainChurnPipeline(true),
                                       GuardlessConfig(), "ops")
                   .ok());
}

TEST_F(LifecycleTest, AbortRetiresCandidateWithoutTouchingLiveVersion) {
  ASSERT_TRUE(manager_
                  ->BeginWithPipeline("churn", TrainChurnPipeline(true),
                                      GuardlessConfig(), "ops")
                  .ok());
  ASSERT_TRUE(manager_->Promote("churn").ok());  // shadow
  ASSERT_TRUE(manager_->Abort("churn").ok());
  EXPECT_EQ(StageOf("churn"), RolloutStage::kRolledBack);
  EXPECT_FALSE(CandidateInstalled());
  EXPECT_EQ(engine_->models()->CurrentVersion("churn"), 1u);
  EXPECT_FALSE(manager_->Abort("churn").ok());
  EXPECT_FALSE(manager_->Promote("churn").ok());
}

TEST_F(LifecycleTest, ShadowScoresBothModelsAndReturnsLiveResult) {
  ASSERT_TRUE(manager_
                  ->BeginWithPipeline("churn", TrainChurnPipeline(false),
                                      GuardlessConfig(), "ops")
                  .ok());
  ASSERT_TRUE(manager_->Promote("churn").ok());  // shadow

  auto direct = engine_->Execute(kScoringSql);
  ASSERT_TRUE(direct.ok());
  auto shadowed = manager_->Intercept("", kScoringSql, execute_);
  ASSERT_TRUE(shadowed.ok());
  EXPECT_EQ(shadowed->batch.num_rows(), direct->batch.num_rows());

  auto view = manager_->Describe("churn");
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->shadow_scored, 1u);
  EXPECT_EQ(view->compared_rows, 100u);
  // Identical pipelines: no divergence, both histograms populated.
  EXPECT_EQ(view->diverged_rows, 0u);
  EXPECT_GT(manager_->monitor()->ScoreHistogram("churn", "live").count, 0u);
  EXPECT_GT(manager_->monitor()->ScoreHistogram("churn", "candidate").count,
            0u);
  // The PREDICT kernels fed the drift monitor through the observer hook.
  EXPECT_FALSE(manager_->monitor()->FeatureSketches("churn").empty());

  // Non-scoring statements pass straight through.
  auto plain = manager_->Intercept("", "SELECT COUNT(*) FROM users",
                                   execute_);
  ASSERT_TRUE(plain.ok());
}

TEST_F(LifecycleTest, CandidateScoresThroughCompiledKernel) {
  // The dense scoring kernel is compiled in ModelRegistry::AnalyzeEntry,
  // so both the live model and a staged rollout candidate carry one:
  // shadow/canary comparisons measure model change, never a scorer-path
  // change between interpreted and compiled execution.
  ASSERT_TRUE(manager_
                  ->BeginWithPipeline("churn", TrainChurnPipeline(false),
                                      GuardlessConfig(), "ops")
                  .ok());
  ASSERT_TRUE(manager_->Promote("churn").ok());  // shadow

  auto live = engine_->models()->Get("churn");
  ASSERT_TRUE(live.ok());
  ASSERT_NE((*live)->kernel, nullptr);
  EXPECT_TRUE((*live)->kernel->ok()) << (*live)->kernel->status().ToString();

  auto candidate = engine_->models()->GetSpecialization(
      flock::RolloutCandidateKey("churn"));
  ASSERT_TRUE(candidate.ok());
  ASSERT_NE((*candidate)->kernel, nullptr);
  EXPECT_TRUE((*candidate)->kernel->ok())
      << (*candidate)->kernel->status().ToString();
  // Identical pipelines compile to kernels over the same slot layout.
  EXPECT_EQ((*candidate)->kernel->input_cols(), (*live)->kernel->input_cols());
}

TEST_F(LifecycleTest, ShadowDivergenceAutoRollsBackWithZeroFailedRequests) {
  RolloutConfig config;
  config.canary_permille = 200;
  config.guard.max_divergence_rate = 0.2;
  config.guard.max_latency_regression = 0.0;  // keep the test deterministic
  config.guard.max_drift_score = 0.0;
  config.guard.min_observations = 50;
  ASSERT_TRUE(manager_
                  ->BeginWithPipeline("churn", TrainChurnPipeline(true),
                                      config, "ops")
                  .ok());
  ASSERT_TRUE(manager_->Promote("churn").ok());  // shadow

  // Hammer the serving path from several threads while the guard breach
  // fires and the automatic rollback swaps the model out: every request
  // must still succeed.
  std::atomic<uint64_t> failed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([this, &failed] {
      for (int i = 0; i < 10; ++i) {
        auto result = manager_->Intercept("", kScoringSql, execute_);
        if (!result.ok()) failed.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(failed.load(), 0u);
  auto view = manager_->Describe("churn");
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->stage, RolloutStage::kRolledBack);
  EXPECT_NE(view->guard_breach.find("divergence"), std::string::npos);
  EXPECT_GT(view->diverged_rows, 0u);
  EXPECT_EQ(manager_->auto_rollbacks(), 1u);
  EXPECT_FALSE(CandidateInstalled());
  // The rollback re-registered the pinned live pipeline as a new version
  // through the deploy transaction.
  EXPECT_EQ(engine_->models()->CurrentVersion("churn"), 2u);
  // The durable store agrees.
  auto states = engine_->RolloutStates();
  ASSERT_EQ(states.size(), 1u);
  EXPECT_EQ(states[0].state, 4);
}

TEST_F(LifecycleTest, CanaryRoutesDeterministicFractionByPrincipal) {
  const uint32_t permille = 400;
  ASSERT_TRUE(manager_
                  ->BeginWithPipeline("churn", TrainChurnPipeline(false),
                                      GuardlessConfig(permille), "ops")
                  .ok());
  ASSERT_TRUE(manager_->Promote("churn").ok());  // shadow
  ASSERT_TRUE(manager_->Promote("churn").ok());  // canary

  size_t routed = 0;
  const size_t principals = 200;
  for (size_t i = 0; i < principals; ++i) {
    const std::string principal = "user" + std::to_string(i);
    bool saw_candidate = false;
    auto probe = [&](const std::string& sql) {
      if (sql.find("#candidate") != std::string::npos) saw_candidate = true;
      return engine_->Execute(sql);
    };
    auto result = manager_->Intercept(principal, kScoringSql, probe);
    ASSERT_TRUE(result.ok());
    const bool expected = HashString(principal) % 1000 < permille;
    EXPECT_EQ(saw_candidate, expected) << principal;
    if (saw_candidate) ++routed;

    // The same principal routes the same way every time.
    bool again = false;
    auto reprobe = [&](const std::string& sql) {
      if (sql.find("#candidate") != std::string::npos) again = true;
      return engine_->Execute(sql);
    };
    ASSERT_TRUE(manager_->Intercept(principal, kScoringSql, reprobe).ok());
    EXPECT_EQ(again, saw_candidate);
  }
  // FNV-1a over distinct principals lands near the configured fraction.
  const double fraction = static_cast<double>(routed) / principals;
  EXPECT_GT(fraction, 0.25);
  EXPECT_LT(fraction, 0.55);

  auto view = manager_->Describe("churn");
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->canary_routed, 2 * routed);
}

TEST_F(LifecycleTest, CanaryFallsBackToLiveOnCandidateError) {
  ASSERT_TRUE(manager_
                  ->BeginWithPipeline("churn", TrainChurnPipeline(false),
                                      GuardlessConfig(1000), "ops")
                  .ok());
  ASSERT_TRUE(manager_->Promote("churn").ok());  // shadow
  ASSERT_TRUE(manager_->Promote("churn").ok());  // canary

  auto failing = [this](const std::string& sql)
      -> StatusOr<sql::QueryResult> {
    if (sql.find("#candidate") != std::string::npos) {
      return Status::Internal("candidate scoring exploded");
    }
    return engine_->Execute(sql);
  };
  auto result = manager_->Intercept("anyone", kScoringSql, failing);
  ASSERT_TRUE(result.ok());  // the request survives the candidate failure
  EXPECT_EQ(result->batch.num_rows(), 100u);

  auto view = manager_->Describe("churn");
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->canary_routed, 1u);
  EXPECT_EQ(view->canary_fallbacks, 1u);
  EXPECT_EQ(view->candidate_errors, 1u);
}

TEST_F(LifecycleTest, MetricsExposition) {
  obs::MetricsRegistry registry;
  manager_->RegisterMetrics(&registry);
  ASSERT_TRUE(manager_
                  ->BeginWithPipeline("churn", TrainChurnPipeline(false),
                                      GuardlessConfig(), "ops")
                  .ok());
  ASSERT_TRUE(manager_->Promote("churn").ok());  // shadow
  ASSERT_TRUE(manager_->Intercept("", kScoringSql, execute_).ok());
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"lifecycle\""), std::string::npos);
  EXPECT_NE(json.find("\"active_rollouts\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"shadow_scored\": 1"), std::string::npos);
  EXPECT_NE(json.find("live_latency_ms"), std::string::npos);
}

// ---------------------------------------------------------------------
// Durability and replication.
// ---------------------------------------------------------------------

TEST(LifecycleDurabilityTest, CrashRecoveryRestoresCanaryRollout) {
  std::string dir = MakeTempDir();
  RolloutConfig config = GuardlessConfig(250);
  config.guard.min_observations = 77;
  {
    flock::FlockEngine engine(SerialEngineOptions());
    ASSERT_TRUE(engine.Open(dir).ok());
    BuildUsersAndChurn(&engine);
    RolloutManager manager(&engine);
    ASSERT_TRUE(manager.Resume().ok());
    ASSERT_TRUE(manager
                    .BeginWithPipeline("churn", TrainChurnPipeline(true),
                                       config, "ops")
                    .ok());
    ASSERT_TRUE(manager.Promote("churn").ok());  // shadow
    ASSERT_TRUE(manager.Promote("churn").ok());  // canary
    // "Crash": no checkpoint, the rollout exists only as WAL records.
  }
  {
    flock::FlockEngine engine(SerialEngineOptions());
    ASSERT_TRUE(engine.Open(dir).ok());
    RolloutManager manager(&engine);
    ASSERT_TRUE(manager.Resume().ok());
    auto view = manager.Describe("churn");
    ASSERT_TRUE(view.ok());
    EXPECT_EQ(view->stage, RolloutStage::kCanary);
    EXPECT_EQ(view->canary_permille, 250u);
    EXPECT_TRUE(engine.models()->HasSpecialization(
        flock::RolloutCandidateKey("churn")));
    // The recovered rollout serves canary traffic immediately.
    bool saw_candidate = false;
    auto probe = [&](const std::string& sql) {
      if (sql.find("#candidate") != std::string::npos) saw_candidate = true;
      return engine.Execute(sql);
    };
    std::string routed_principal;
    for (int i = 0; i < 64 && routed_principal.empty(); ++i) {
      std::string p = "user" + std::to_string(i);
      if (HashString(p) % 1000 < 250) routed_principal = p;
    }
    ASSERT_FALSE(routed_principal.empty());
    ASSERT_TRUE(manager.Intercept(routed_principal, kScoringSql, probe)
                    .ok());
    EXPECT_TRUE(saw_candidate);
    // Fold the WAL into a snapshot for the next reopen.
    ASSERT_TRUE(engine.Checkpoint().ok());
  }
  {
    // Third open restores the rollout from the v3 snapshot section.
    flock::FlockEngine engine(SerialEngineOptions());
    ASSERT_TRUE(engine.Open(dir).ok());
    RolloutManager manager(&engine);
    ASSERT_TRUE(manager.Resume().ok());
    auto view = manager.Describe("churn");
    ASSERT_TRUE(view.ok());
    EXPECT_EQ(view->stage, RolloutStage::kCanary);
    auto states = engine.RolloutStates();
    ASSERT_EQ(states.size(), 1u);
    EXPECT_EQ(states[0].min_observations, 77u);
  }
}

TEST(LifecycleReplicationTest, RolloutStateStreamsToReadReplica) {
  std::string dir = MakeTempDir();
  flock::FlockEngine primary(SerialEngineOptions());
  ASSERT_TRUE(primary.Open(dir).ok());
  BuildUsersAndChurn(&primary);
  RolloutManager manager(&primary);
  ASSERT_TRUE(manager.Resume().ok());
  ASSERT_TRUE(manager
                  .BeginWithPipeline("churn", TrainChurnPipeline(true),
                                     GuardlessConfig(300), "ops")
                  .ok());
  ASSERT_TRUE(manager.Promote("churn").ok());  // shadow
  ASSERT_TRUE(manager.Promote("churn").ok());  // canary

  flock::FlockEngine replica(SerialEngineOptions());
  ASSERT_TRUE(replica.OpenAsReplica().ok());
  repl::ReplicationPublisher publisher(dir);
  repl::ReplicaApplier applier(&replica, &publisher);
  ASSERT_TRUE(applier.CatchUp().ok());

  auto states = replica.RolloutStates();
  ASSERT_EQ(states.size(), 1u);
  EXPECT_EQ(states[0].state, 2);  // canary
  EXPECT_EQ(states[0].canary_permille, 300u);
  EXPECT_TRUE(replica.models()->HasSpecialization(
      flock::RolloutCandidateKey("churn")));
  // Replicas refuse local transitions: rollouts are managed on the
  // primary and stream over.
  wal::RolloutSnapshot manual = states[0];
  manual.state = 4;
  EXPECT_FALSE(replica.UpdateRolloutState(manual).ok());

  // A terminal transition on the primary streams too and retires the
  // replica's candidate specialization.
  ASSERT_TRUE(manager.Abort("churn").ok());
  ASSERT_TRUE(applier.CatchUp().ok());
  states = replica.RolloutStates();
  ASSERT_EQ(states.size(), 1u);
  EXPECT_EQ(states[0].state, 4);
  EXPECT_FALSE(replica.models()->HasSpecialization(
      flock::RolloutCandidateKey("churn")));
}

}  // namespace
}  // namespace flock::lifecycle
