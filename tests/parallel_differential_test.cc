// Differential test for the morsel-parallel physical executor: every query
// must produce identical (order-normalized) results at num_threads=1 and
// num_threads=4 with a small morsel size that stresses chunk boundaries.
// Covers the operators that carry parallel state — hash-join probes and
// thread-local aggregation — plus the 22 TPC-H templates end-to-end.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "sql/engine.h"
#include "storage/database.h"
#include "workload/tpch.h"

namespace flock::sql {
namespace {

using storage::Database;
using storage::DataType;
using storage::Value;

std::vector<std::string> Canonicalize(const storage::RecordBatch& batch) {
  std::vector<std::string> rows;
  rows.reserve(batch.num_rows());
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    std::ostringstream out;
    for (size_t c = 0; c < batch.num_columns(); ++c) {
      Value v = batch.column(c)->GetValue(r);
      // Round doubles: parallel aggregation may re-associate sums.
      if (!v.is_null() && v.type() == DataType::kDouble) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.6g", v.double_value());
        out << buf << "|";
      } else {
        out << v.ToString() << "|";
      }
    }
    rows.push_back(out.str());
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// emp/dept with nullable join keys, dangling references (left-join
/// padding), and enough rows that 4-thread execution with morsel_size=64
/// takes the parallel path.
Database* JoinDb() {
  static Database* db = [] {
    auto* database = new Database();
    EngineOptions options;
    options.num_threads = 1;
    SqlEngine setup(database, options);
    EXPECT_TRUE(setup
                    .Execute("CREATE TABLE emp (id INT, name VARCHAR, "
                             "dept_id INT, salary DOUBLE)")
                    .ok());
    EXPECT_TRUE(setup
                    .Execute("CREATE TABLE dept (id INT, dname VARCHAR, "
                             "budget DOUBLE)")
                    .ok());
    std::string dept_insert = "INSERT INTO dept VALUES ";
    for (int d = 0; d < 20; ++d) {
      if (d > 0) dept_insert += ", ";
      dept_insert += "(" + std::to_string(d) + ", 'dept" +
                     std::to_string(d) + "', " +
                     std::to_string(1000 + 137 * d) + ".0)";
    }
    EXPECT_TRUE(setup.Execute(dept_insert).ok());
    std::string emp_insert = "INSERT INTO emp VALUES ";
    for (int i = 0; i < 700; ++i) {
      if (i > 0) emp_insert += ", ";
      // dept_id cycles through 0..24: ids 20..24 dangle (no dept row);
      // every 11th employee has a NULL dept_id (nulls never join).
      std::string dept =
          (i % 11 == 0) ? "NULL" : std::to_string((i * 7) % 25);
      emp_insert += "(" + std::to_string(i) + ", 'e" + std::to_string(i) +
                    "', " + dept + ", " +
                    std::to_string(100 + (i * 37) % 3000) + ".5)";
    }
    EXPECT_TRUE(setup.Execute(emp_insert).ok());
    return database;
  }();
  return db;
}

/// Runs `sql` serial and 4-way parallel; expects identical multisets.
void ExpectSameResults(Database* db, const std::string& sql,
                       bool count_only = false) {
  EngineOptions serial_options;
  serial_options.num_threads = 1;
  serial_options.morsel_size = 64;
  SqlEngine serial(db, serial_options);

  EngineOptions parallel_options;
  parallel_options.num_threads = 4;
  parallel_options.morsel_size = 64;  // stress morsel/chunk boundaries
  SqlEngine parallel(db, parallel_options);

  auto a = serial.Execute(sql);
  auto b = parallel.Execute(sql);
  ASSERT_TRUE(a.ok()) << sql << ": " << a.status().ToString();
  ASSERT_TRUE(b.ok()) << sql << ": " << b.status().ToString();
  if (count_only) {
    // LIMIT without a total order: only the cardinality is defined.
    EXPECT_EQ(a->batch.num_rows(), b->batch.num_rows()) << sql;
    return;
  }
  EXPECT_EQ(Canonicalize(a->batch), Canonicalize(b->batch)) << sql;
}

TEST(ParallelDifferentialTest, FilterProjectPipeline) {
  ExpectSameResults(JoinDb(),
                    "SELECT id, name, salary * 2 FROM emp "
                    "WHERE salary > 800 AND id % 3 = 0");
}

TEST(ParallelDifferentialTest, InnerHashJoin) {
  ExpectSameResults(JoinDb(),
                    "SELECT emp.name, dept.dname FROM emp "
                    "JOIN dept ON emp.dept_id = dept.id");
}

TEST(ParallelDifferentialTest, HashJoinWithResidual) {
  ExpectSameResults(JoinDb(),
                    "SELECT emp.name, dept.dname FROM emp "
                    "JOIN dept ON emp.dept_id = dept.id "
                    "AND emp.salary > dept.budget");
}

TEST(ParallelDifferentialTest, LeftJoinPadsDanglingRows) {
  ExpectSameResults(JoinDb(),
                    "SELECT emp.id, dept.dname FROM emp "
                    "LEFT JOIN dept ON emp.dept_id = dept.id");
}

TEST(ParallelDifferentialTest, LeftJoinWithResidual) {
  ExpectSameResults(JoinDb(),
                    "SELECT emp.id, dept.dname FROM emp "
                    "LEFT JOIN dept ON emp.dept_id = dept.id "
                    "AND dept.budget > 2000");
}

TEST(ParallelDifferentialTest, JoinThenFilterThenAggregate) {
  ExpectSameResults(JoinDb(),
                    "SELECT dept.dname, COUNT(*), SUM(emp.salary) "
                    "FROM emp JOIN dept ON emp.dept_id = dept.id "
                    "WHERE emp.salary > 500 GROUP BY dept.dname");
}

TEST(ParallelDifferentialTest, GroupedAggregation) {
  ExpectSameResults(JoinDb(),
                    "SELECT dept_id, COUNT(*), SUM(salary), AVG(salary), "
                    "MIN(salary), MAX(salary) FROM emp GROUP BY dept_id");
}

TEST(ParallelDifferentialTest, GlobalAggregation) {
  ExpectSameResults(JoinDb(),
                    "SELECT COUNT(*), SUM(salary), MIN(id), MAX(id), "
                    "AVG(salary) FROM emp");
}

TEST(ParallelDifferentialTest, CountDistinct) {
  ExpectSameResults(JoinDb(),
                    "SELECT COUNT(DISTINCT dept_id) FROM emp");
}

TEST(ParallelDifferentialTest, HavingOverParallelGroups) {
  ExpectSameResults(JoinDb(),
                    "SELECT dept_id, COUNT(*) FROM emp GROUP BY dept_id "
                    "HAVING COUNT(*) > 20");
}

TEST(ParallelDifferentialTest, Distinct) {
  ExpectSameResults(JoinDb(), "SELECT DISTINCT dept_id FROM emp");
}

TEST(ParallelDifferentialTest, OrderByWithTotalOrder) {
  ExpectSameResults(JoinDb(),
                    "SELECT id, salary FROM emp ORDER BY salary DESC, id");
}

TEST(ParallelDifferentialTest, LimitWithTotalOrder) {
  ExpectSameResults(JoinDb(),
                    "SELECT id, salary FROM emp "
                    "ORDER BY salary DESC, id LIMIT 25");
}

TEST(ParallelDifferentialTest, LimitWithoutOrderCountOnly) {
  ExpectSameResults(JoinDb(),
                    "SELECT id FROM emp WHERE salary > 300 LIMIT 50",
                    /*count_only=*/true);
}

/// All 22 TPC-H templates at 1 vs 4 threads against shared generated data.
class TpchParallelDifferentialTest
    : public ::testing::TestWithParam<size_t> {};

Database* TpchDb() {
  static Database* db = [] {
    auto* database = new Database();
    workload::TpchWorkload tpch(42);
    EXPECT_TRUE(tpch.CreateSchema(database).ok());
    EXPECT_TRUE(tpch.PopulateData(database, 400).ok());
    return database;
  }();
  return db;
}

TEST_P(TpchParallelDifferentialTest, SerialAndParallelAgree) {
  workload::TpchWorkload generator(GetParam() * 13 + 3);
  std::string query = generator.Instantiate(GetParam());
  // The adapted templates ORDER BY before LIMIT, so full compare is sound.
  ExpectSameResults(TpchDb(), query);
}

INSTANTIATE_TEST_SUITE_P(AllTemplates, TpchParallelDifferentialTest,
                         ::testing::Range<size_t>(0, 22));

}  // namespace
}  // namespace flock::sql
