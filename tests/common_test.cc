#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <set>

#include "common/random.h"
#include "common/status.h"
#include "common/status_or.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace flock {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("table t");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.ToString(), "NotFound: table t");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Internal("x"), Status::Internal("x"));
  EXPECT_FALSE(Status::Internal("x") == Status::Internal("y"));
  EXPECT_FALSE(Status::Internal("x") == Status::Aborted("x"));
}

TEST(StatusTest, DataLossCarriesCodeAndMessage) {
  Status st = Status::DataLoss("wal record 7: checksum mismatch");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
  EXPECT_EQ(st.ToString(), "DataLoss: wal record 7: checksum mismatch");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDataLoss), "DataLoss");
}

TEST(StatusTest, DataLossIsDistinctFromInternal) {
  // Durability code must not overload Internal for corruption; the two
  // codes have different retry/alerting semantics.
  EXPECT_FALSE(Status::DataLoss("x") == Status::Internal("x"));
  EXPECT_EQ(Status::DataLoss("x"), Status::DataLoss("x"));
}

StatusOr<int> ReturnsValue() { return 42; }
StatusOr<int> ReturnsError() { return Status::InvalidArgument("bad"); }

TEST(StatusOrTest, HoldsValue) {
  auto v = ReturnsValue();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  auto v = ReturnsError();
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(v.value_or(7), 7);
}

StatusOr<int> UsesAssignOrReturn() {
  FLOCK_ASSIGN_OR_RETURN(int x, ReturnsValue());
  return x + 1;
}

StatusOr<int> PropagatesError() {
  FLOCK_ASSIGN_OR_RETURN(int x, ReturnsError());
  return x + 1;
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  EXPECT_EQ(*UsesAssignOrReturn(), 43);
  EXPECT_EQ(PropagatesError().status().code(),
            StatusCode::kInvalidArgument);
}

TEST(StringUtilTest, Split) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtilTest, SplitWhitespace) {
  auto parts = SplitWhitespace("  foo\t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "bar");
}

TEST(StringUtilTest, TrimAndCase) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(ToUpper("SeLeCt"), "SELECT");
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_TRUE(EqualsIgnoreCase("Model", "MODEL"));
  EXPECT_FALSE(EqualsIgnoreCase("Model", "Models"));
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("flock_engine", "flock"));
  EXPECT_FALSE(StartsWith("flock", "flock_engine"));
  EXPECT_TRUE(EndsWith("model.bin", ".bin"));
}

TEST(StringUtilTest, FormatWithCommas) {
  EXPECT_EQ(FormatWithCommas(22330), "22,330");
  EXPECT_EQ(FormatWithCommas(-1234567), "-1,234,567");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(0), "0");
}

TEST(RandomTest, DeterministicForSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RandomTest, UniformIntStaysInRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(99);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(ZipfTest, HeavyHead) {
  ZipfSampler zipf(1000, 1.2, 42);
  size_t head = 0;
  const size_t kSamples = 20000;
  for (size_t i = 0; i < kSamples; ++i) {
    if (zipf.Next() < 10) ++head;
  }
  // With s=1.2 over 1000 ranks, the top-10 should dominate.
  EXPECT_GT(head, kSamples / 2);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndexes) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, WaitIdleBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&done] { done++; });
  }
  pool.WaitIdle();
  EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPoolTest, TrySubmitShedsWhenQueueFull) {
  ThreadPool pool(1, /*max_queue_depth=*/2);
  // Block the single worker so queued tasks pile up deterministically.
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::promise<void> started;
  pool.Submit([&, gate] {
    started.set_value();
    gate.wait();
  });
  started.get_future().wait();

  std::atomic<int> ran{0};
  // The worker is busy, so these two fill the bounded queue...
  EXPECT_TRUE(pool.TrySubmit([&ran] { ran++; }));
  EXPECT_TRUE(pool.TrySubmit([&ran] { ran++; }));
  EXPECT_EQ(pool.queue_depth(), 2u);
  // ...and the next ones are shed without blocking.
  EXPECT_FALSE(pool.TrySubmit([&ran] { ran++; }));
  EXPECT_FALSE(pool.TrySubmit([&ran] { ran++; }));

  release.set_value();
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 2);  // shed tasks never ran

  // Once drained, the queue has room again.
  EXPECT_TRUE(pool.TrySubmit([&ran] { ran++; }));
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPoolTest, UnboundedTrySubmitNeverSheds) {
  ThreadPool pool(2);  // max_queue_depth = 0 -> unbounded
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(pool.TrySubmit([&ran] { ran++; }));
  }
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 64);
}

}  // namespace
}  // namespace flock
