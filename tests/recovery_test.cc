// End-to-end crash-recovery tests for the durability subsystem.
//
// Two layers:
//
//  * In-process tests: write through a durable FlockEngine, reopen the
//    data directory with a fresh engine, and check the recovered state
//    digests identically (plus torn-tail, checkpoint-truncation,
//    idempotence, and derived-state cases).
//
//  * The crash matrix: for every FaultInjector point, re-exec this
//    binary as a child (custom main below) that runs a fixed workload
//    with that point armed in crash mode. The child dies mid-write with
//    _exit — no destructors, no flushes — and the parent recovers the
//    directory and asserts the digest is either the pre-crash state or
//    the fully-committed state, never a hybrid.
//
// This file has its own main (linked against gtest, not gtest_main) so
// the re-exec'd child can branch into the workload before gtest runs.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "flock/flock_engine.h"
#include "ml/tree.h"
#include "policy/policy_engine.h"
#include "prov/catalog.h"
#include "serve/server.h"
#include "wal/checkpoint.h"
#include "wal/fault_injector.h"
#include "workload/tpch.h"

namespace flock {
namespace {

std::string MakeTempDir() {
  char tmpl[] = "/tmp/flock_recovery_test_XXXXXX";
  char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return std::string(dir);
}

void AppendBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

flock::FlockEngineOptions SerialEngineOptions() {
  flock::FlockEngineOptions options;
  options.sql.num_threads = 1;
  return options;
}

/// The deterministic workload the crash matrix runs: DDL, multi-row and
/// single-statement DML, updates and deletes across two tables.
const std::vector<std::string>& SetupStatements() {
  static const std::vector<std::string> statements = {
      "CREATE TABLE kv (k INT, v DOUBLE, tag VARCHAR)",
      "INSERT INTO kv VALUES (1, 1.5, 'a'), (2, 2.5, 'b'), (3, 3.5, 'c')",
      "INSERT INTO kv VALUES (4, 4.5, 'd')",
      "UPDATE kv SET v = 40.0 WHERE k = 4",
      "DELETE FROM kv WHERE k = 2",
      "CREATE TABLE notes (id INT, note VARCHAR)",
      "INSERT INTO notes VALUES (1, 'first')",
  };
  return statements;
}

const std::vector<std::string>& TailStatements() {
  static const std::vector<std::string> statements = {
      "INSERT INTO kv VALUES (5, 5.5, 'e')",
      "INSERT INTO notes VALUES (2, 'second')",
  };
  return statements;
}

constexpr char kFinalStatement[] = "INSERT INTO kv VALUES (9, 9.5, 'z')";

/// Canonical text rendering of all durable state the workload touches.
std::string Digest(flock::FlockEngine* engine) {
  std::string digest;
  for (const char* sql : {"SELECT k, v, tag FROM kv ORDER BY k",
                          "SELECT id, note FROM notes ORDER BY id"}) {
    auto result = engine->Execute(sql);
    if (!result.ok()) {
      digest += std::string("ERR ") + sql + ": " +
                result.status().ToString() + "\n";
      continue;
    }
    digest += result->batch.ToString(10000) + "\n";
  }
  return digest;
}

Status RunStatements(flock::FlockEngine* engine,
                     const std::vector<std::string>& statements) {
  for (const std::string& sql : statements) {
    auto result = engine->Execute(sql);
    if (!result.ok()) return result.status();
  }
  return Status::OK();
}

/// The reference digest for a given prefix of the workload, computed on a
/// throwaway in-memory engine.
std::string ReferenceDigest(bool include_final) {
  flock::FlockEngine engine(SerialEngineOptions());
  EXPECT_TRUE(RunStatements(&engine, SetupStatements()).ok());
  EXPECT_TRUE(RunStatements(&engine, TailStatements()).ok());
  if (include_final) {
    EXPECT_TRUE(engine.Execute(kFinalStatement).ok());
  }
  return Digest(&engine);
}

/// Spawns this binary as a crash child over `dir`. `point` (optional)
/// is armed programmatically in crash mode before the final statement;
/// `extra_env` lets tests drive the injector's env-var path instead.
int SpawnCrashChild(const std::string& dir, const std::string& point,
                    const std::vector<std::string>& extra_env = {}) {
  pid_t pid = fork();
  if (pid == 0) {
    setenv("FLOCK_CRASH_CHILD", dir.c_str(), 1);
    if (!point.empty()) setenv("FLOCK_CRASH_POINT", point.c_str(), 1);
    for (const std::string& kv : extra_env) {
      size_t eq = kv.find('=');
      setenv(kv.substr(0, eq).c_str(), kv.substr(eq + 1).c_str(), 1);
    }
    execl("/proc/self/exe", "recovery_test_child",
          static_cast<char*>(nullptr));
    _exit(127);
  }
  int status = 0;
  waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(RecoveryTest, BasicPersistenceAcrossRestart) {
  std::string dir = MakeTempDir();
  std::string before;
  {
    flock::FlockEngine engine(SerialEngineOptions());
    ASSERT_TRUE(engine.Open(dir).ok());
    ASSERT_TRUE(RunStatements(&engine, SetupStatements()).ok());
    ASSERT_TRUE(RunStatements(&engine, TailStatements()).ok());
    before = Digest(&engine);
  }
  flock::FlockEngine reopened(SerialEngineOptions());
  ASSERT_TRUE(reopened.Open(dir).ok());
  const wal::RecoveryResult& rec = reopened.durability()->recovery();
  EXPECT_TRUE(rec.wal_found);
  EXPECT_FALSE(rec.snapshot_restored);  // never checkpointed
  EXPECT_GT(rec.wal_records_replayed, 0u);
  EXPECT_FALSE(rec.tail_truncated);
  EXPECT_EQ(Digest(&reopened), before);
}

TEST(RecoveryTest, CheckpointTruncatesLogAndRestoresFromSnapshot) {
  std::string dir = MakeTempDir();
  std::string before;
  {
    flock::FlockEngine engine(SerialEngineOptions());
    ASSERT_TRUE(engine.Open(dir).ok());
    ASSERT_TRUE(RunStatements(&engine, SetupStatements()).ok());
    ASSERT_TRUE(engine.Checkpoint().ok());
    EXPECT_EQ(engine.durability()->epoch(), 2u);
    before = Digest(&engine);
  }
  flock::FlockEngine reopened(SerialEngineOptions());
  ASSERT_TRUE(reopened.Open(dir).ok());
  const wal::RecoveryResult& rec = reopened.durability()->recovery();
  EXPECT_TRUE(rec.snapshot_restored);
  EXPECT_EQ(rec.wal_records_replayed, 0u);  // log was cut at the snapshot
  EXPECT_EQ(rec.epoch, 2u);
  EXPECT_EQ(Digest(&reopened), before);

  // Writes after the checkpoint land in the new epoch's log and replay.
  ASSERT_TRUE(reopened.Execute(kFinalStatement).ok());
  std::string after = Digest(&reopened);
  flock::FlockEngine third(SerialEngineOptions());
  ASSERT_TRUE(third.Open(dir).ok());
  EXPECT_GT(third.durability()->recovery().wal_records_replayed, 0u);
  EXPECT_EQ(Digest(&third), after);
}

TEST(RecoveryTest, RecoveryIsIdempotent) {
  std::string dir = MakeTempDir();
  {
    flock::FlockEngine engine(SerialEngineOptions());
    ASSERT_TRUE(engine.Open(dir).ok());
    ASSERT_TRUE(RunStatements(&engine, SetupStatements()).ok());
    ASSERT_TRUE(RunStatements(&engine, TailStatements()).ok());
  }
  std::string first;
  {
    // Read-only reopen: recovery replays, nothing new is written.
    flock::FlockEngine engine(SerialEngineOptions());
    ASSERT_TRUE(engine.Open(dir).ok());
    first = Digest(&engine);
  }
  flock::FlockEngine engine(SerialEngineOptions());
  ASSERT_TRUE(engine.Open(dir).ok());
  EXPECT_EQ(Digest(&engine), first);
  EXPECT_EQ(first, ReferenceDigest(false));
}

TEST(RecoveryTest, TornFinalRecordIsDropped) {
  std::string dir = MakeTempDir();
  std::string before;
  {
    flock::FlockEngine engine(SerialEngineOptions());
    ASSERT_TRUE(engine.Open(dir).ok());
    ASSERT_TRUE(RunStatements(&engine, SetupStatements()).ok());
    before = Digest(&engine);
  }
  // A crash mid-append leaves a half-written frame at the tail.
  AppendBytes(dir + "/wal.log", std::string("\x13\x00\x00\x00\xde\xad", 6));

  flock::FlockEngine reopened(SerialEngineOptions());
  ASSERT_TRUE(reopened.Open(dir).ok());
  EXPECT_TRUE(reopened.durability()->recovery().tail_truncated);
  EXPECT_EQ(Digest(&reopened), before);

  // The torn tail was truncated on resume: appends work and a third
  // restart sees a clean log.
  ASSERT_TRUE(reopened.Execute(kFinalStatement).ok());
}

TEST(RecoveryTest, ProvAndPolicyStatePersists) {
  std::string dir = MakeTempDir();
  size_t entities_before = 0, edges_before = 0, timeline_before = 0;
  {
    prov::Catalog catalog;
    policy::PolicyEngine policy_engine;
    auto policy = policy::Policy::Create("clamp", policy::ActionKind::kClamp,
                                         "prediction > 0.8");
    ASSERT_TRUE(policy.ok()) << policy.status().ToString();
    policy->set_clamp(0.0, 0.8);
    ASSERT_TRUE(policy_engine.AddPolicy(std::move(*policy)).ok());

    flock::FlockEngine engine(SerialEngineOptions());
    flock::FlockDurabilityConfig config;
    config.catalog = &catalog;
    config.policy = &policy_engine;
    ASSERT_TRUE(engine.Open(dir, config).ok());

    // Provenance: a model entity with lineage and properties.
    uint64_t model = catalog.GetOrCreate(prov::EntityType::kModel, "churn");
    uint64_t table = catalog.GetOrCreate(prov::EntityType::kTable, "users");
    catalog.AddEdge(model, table, prov::EdgeType::kDerivesFrom);
    ASSERT_TRUE(catalog.SetProperty(model, "auc", "0.91").ok());
    uint64_t v2 = catalog.NewVersion(prov::EntityType::kModel, "churn");
    ASSERT_NE(v2, model);

    // Policy: decide a batch so the timeline gains entries.
    storage::RecordBatch context(storage::Schema(
        {{"segment", storage::DataType::kString, false}}));
    ASSERT_TRUE(context.AppendRow({storage::Value::String("us")}).ok());
    ASSERT_TRUE(context.AppendRow({storage::Value::String("eu")}).ok());
    auto decisions = policy_engine.DecideBatch({0.95, 0.4}, context);
    ASSERT_TRUE(decisions.ok()) << decisions.status().ToString();

    entities_before = catalog.num_entities();
    edges_before = catalog.num_edges();
    timeline_before = policy_engine.timeline().size();
    ASSERT_GT(entities_before, 0u);
    ASSERT_GT(timeline_before, 0u);
  }

  prov::Catalog catalog;
  policy::PolicyEngine policy_engine;
  flock::FlockEngine reopened(SerialEngineOptions());
  flock::FlockDurabilityConfig config;
  config.catalog = &catalog;
  config.policy = &policy_engine;
  ASSERT_TRUE(reopened.Open(dir, config).ok());

  EXPECT_EQ(catalog.num_entities(), entities_before);
  EXPECT_EQ(catalog.num_edges(), edges_before);
  auto found = catalog.Find(prov::EntityType::kModel, "churn");
  ASSERT_TRUE(found.ok());
  auto entity = catalog.GetEntity(*found);
  ASSERT_TRUE(entity.ok());
  EXPECT_EQ((*entity)->version, 2u);
  auto v1 = catalog.Find(prov::EntityType::kModel, "churn", 1);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ((*catalog.GetEntity(*v1))->properties.at("auc"), "0.91");

  ASSERT_EQ(policy_engine.timeline().size(), timeline_before);
  EXPECT_EQ(policy_engine.timeline()[0].policy, "clamp");
  EXPECT_TRUE(policy_engine.timeline()[0].rejected ||
              policy_engine.timeline()[0].after <= 0.8);

  // Policies themselves are configuration, not durable state — re-add
  // one and check replayed seq numbers keep advancing, not colliding.
  auto repolicied = policy::Policy::Create(
      "clamp", policy::ActionKind::kClamp, "prediction > 0.8");
  ASSERT_TRUE(repolicied.ok());
  repolicied->set_clamp(0.0, 0.8);
  ASSERT_TRUE(policy_engine.AddPolicy(std::move(*repolicied)).ok());
  storage::RecordBatch context(storage::Schema(
      {{"segment", storage::DataType::kString, false}}));
  ASSERT_TRUE(context.AppendRow({storage::Value::String("ap")}).ok());
  ASSERT_TRUE(policy_engine.DecideBatch({0.99}, context).ok());
  ASSERT_GT(policy_engine.timeline().size(), timeline_before);
  EXPECT_GT(policy_engine.timeline().back().seq,
            policy_engine.timeline()[timeline_before - 1].seq);
}

/// Tiny trained pipeline over (x DOUBLE) — enough to exercise model
/// deploy/recover/score without a real training set.
ml::Pipeline TinyPipeline() {
  ml::Pipeline pipeline;
  pipeline.SetInputs(
      {ml::FeatureSpec{"x", ml::FeatureKind::kNumeric, {}}});
  pipeline.set_task(ml::ModelTask::kBinaryClassification);
  ml::Matrix raw(32, 1);
  std::vector<double> labels(32);
  Random rng(13);
  for (size_t i = 0; i < 32; ++i) {
    raw.at(i, 0) = rng.NextDouble() * 10;
    labels[i] = raw.at(i, 0) > 5 ? 1.0 : 0.0;
  }
  pipeline.FitFeaturizers(raw, true, true);
  ml::Dataset features;
  features.x = pipeline.Transform(raw);
  features.y = labels;
  ml::GbtOptions gbt;
  gbt.num_trees = 4;
  gbt.max_depth = 2;
  pipeline.SetTreeModel(ml::TrainGradientBoosting(features, gbt));
  return pipeline;
}

TEST(RecoveryTest, ModelsRecoverAndDerivedCatalogRebuilds) {
  std::string dir = MakeTempDir();
  std::string scores_before;
  {
    flock::FlockEngine engine(SerialEngineOptions());
    ASSERT_TRUE(engine.Open(dir).ok());
    ASSERT_TRUE(
        engine.Execute("CREATE TABLE points (id INT, x DOUBLE)").ok());
    ASSERT_TRUE(engine
                    .Execute("INSERT INTO points VALUES (1, 1.0), (2, 6.0), "
                             "(3, 9.0), (4, 4.0)")
                    .ok());
    ASSERT_TRUE(engine.DeployModel("scorer", TinyPipeline(), "tester",
                                   "tests/recovery_test").ok());
    auto scored = engine.Execute(
        "SELECT id, PREDICT(scorer, x) FROM points ORDER BY id");
    ASSERT_TRUE(scored.ok()) << scored.status().ToString();
    scores_before = scored->batch.ToString(100);
  }

  flock::FlockEngine reopened(SerialEngineOptions());
  ASSERT_TRUE(reopened.Open(dir).ok());

  // The model scores identically after recovery.
  auto scored = reopened.Execute(
      "SELECT id, PREDICT(scorer, x) FROM points ORDER BY id");
  ASSERT_TRUE(scored.ok()) << scored.status().ToString();
  EXPECT_EQ(scored->batch.ToString(100), scores_before);

  // Derived state is rebuilt, not recovered: the catalog views exist and
  // show the model even though snapshots skip them.
  auto models = reopened.Execute("SELECT name FROM flock_models");
  ASSERT_TRUE(models.ok()) << models.status().ToString();
  ASSERT_EQ(models->batch.num_rows(), 1u);
  EXPECT_EQ(models->batch.GetRow(0)[0].string_value(), "scorer");

  // DROP MODEL is durable too.
  ASSERT_TRUE(reopened.Execute("DROP MODEL scorer").ok());
  flock::FlockEngine third(SerialEngineOptions());
  ASSERT_TRUE(third.Open(dir).ok());
  EXPECT_FALSE(
      third.Execute("SELECT id, PREDICT(scorer, x) FROM points").ok());
}

TEST(RecoveryTest, SegmentedLayoutSurvivesCheckpointRestart) {
  std::string dir = MakeTempDir();
  std::string before;
  size_t segments_before = 0;
  std::vector<size_t> rows_per_segment;
  {
    flock::FlockEngine engine(SerialEngineOptions());
    ASSERT_TRUE(engine.Open(dir).ok());
    // Tiny segments so a handful of rows spans several of them.
    engine.database()->set_default_segment_capacity(4);
    ASSERT_TRUE(engine.Execute("CREATE TABLE seg (k INT, v DOUBLE)").ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(engine
                      .Execute("INSERT INTO seg VALUES (" +
                               std::to_string(i) + ", " +
                               std::to_string(i) + ".5)")
                      .ok());
    }
    ASSERT_TRUE(engine.Checkpoint().ok());
    auto table = engine.database()->GetTable("seg");
    ASSERT_TRUE(table.ok());
    segments_before = (*table)->num_segments();
    ASSERT_GT(segments_before, 1u);
    for (size_t s = 0; s < segments_before; ++s) {
      rows_per_segment.push_back((*table)->segment_rows(s));
    }
    auto rows = engine.Execute("SELECT k, v FROM seg ORDER BY k");
    ASSERT_TRUE(rows.ok());
    before = rows->batch.ToString(1000);
  }

  // The reopened engine keeps the stock default capacity: the snapshot's
  // recorded per-table capacity must win, reproducing the exact layout.
  flock::FlockEngine reopened(SerialEngineOptions());
  ASSERT_TRUE(reopened.Open(dir).ok());
  EXPECT_TRUE(reopened.durability()->recovery().snapshot_restored);
  auto table = reopened.database()->GetTable("seg");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->segment_capacity(), 4u);
  ASSERT_EQ((*table)->num_segments(), segments_before);
  for (size_t s = 0; s < segments_before; ++s) {
    EXPECT_EQ((*table)->segment_rows(s), rows_per_segment[s]) << "seg " << s;
  }
  // Zone maps are rebuilt on restore, ready for pruning immediately.
  EXPECT_TRUE((*table)->segment_zone_map(0, 0).has_range);
  auto rows = reopened.Execute("SELECT k, v FROM seg ORDER BY k");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->batch.ToString(1000), before);
}

TEST(RecoveryTest, SegmentFlushErrorLeavesNoTempImage) {
  std::string dir = MakeTempDir();
  flock::FlockEngine engine(SerialEngineOptions());
  ASSERT_TRUE(engine.Open(dir).ok());
  ASSERT_TRUE(RunStatements(&engine, SetupStatements()).ok());
  std::string before = Digest(&engine);

  // Fail (not crash) between the segment-data flush and the CRC write:
  // the checkpoint must abort cleanly and remove its torn temp image.
  wal::FaultInjector::Get()->Arm("checkpoint.after_segment_flush",
                                 wal::FaultInjector::Mode::kError);
  EXPECT_FALSE(engine.Checkpoint().ok());
  wal::FaultInjector::Get()->Disarm();
  std::ifstream tmp(wal::CheckpointManager(dir).temp_path());
  EXPECT_FALSE(tmp.good());
  EXPECT_EQ(Digest(&engine), before);

  // A retry succeeds and the snapshot restores on restart.
  ASSERT_TRUE(engine.Checkpoint().ok());
  flock::FlockEngine reopened(SerialEngineOptions());
  ASSERT_TRUE(reopened.Open(dir).ok());
  EXPECT_TRUE(reopened.durability()->recovery().snapshot_restored);
  EXPECT_EQ(Digest(&reopened), before);
}

// ---------------------------------------------------------------------
// Crash matrix: child-process runs under fault injection.
// ---------------------------------------------------------------------

TEST(CrashMatrixTest, EveryFaultPointRecoversToAConsistentState) {
  const std::string expected_pre = ReferenceDigest(false);
  const std::string expected_post = ReferenceDigest(true);
  ASSERT_NE(expected_pre, expected_post);

  for (const std::string& point : wal::FaultInjector::Points()) {
    SCOPED_TRACE("fault point: " + point);
    std::string dir = MakeTempDir();
    int exit_code = SpawnCrashChild(dir, point);
    EXPECT_EQ(exit_code, wal::FaultInjector::kCrashExitCode)
        << "child did not crash at " << point;

    flock::FlockEngine recovered(SerialEngineOptions());
    Status opened = recovered.Open(dir);
    ASSERT_TRUE(opened.ok()) << opened.ToString();
    std::string digest = Digest(&recovered);
    EXPECT_TRUE(digest == expected_pre || digest == expected_post)
        << "recovered state is neither pre- nor post-crash:\n"
        << digest;

    // The recovered engine accepts new writes and survives another
    // restart (the log/snapshot left by recovery is itself valid).
    ASSERT_TRUE(
        recovered.Execute("INSERT INTO notes VALUES (77, 'post')").ok());
    std::string after = Digest(&recovered);
    flock::FlockEngine again(SerialEngineOptions());
    ASSERT_TRUE(again.Open(dir).ok());
    EXPECT_EQ(Digest(&again), after);
  }
}

TEST(CrashMatrixTest, SegmentFlushCrashPreservesMultiSegmentTables) {
  const std::string expected_pre = ReferenceDigest(false);
  const std::string expected_post = ReferenceDigest(true);
  std::string dir = MakeTempDir();
  // Capacity 2: every table in the workload spans several segments, so
  // the crash lands after *multiple* flushed segments with no CRC yet.
  int exit_code = SpawnCrashChild(dir, "checkpoint.after_segment_flush",
                                  {"FLOCK_CRASH_SEGCAP=2"});
  EXPECT_EQ(exit_code, wal::FaultInjector::kCrashExitCode);

  flock::FlockEngine recovered(SerialEngineOptions());
  ASSERT_TRUE(recovered.Open(dir).ok());
  // Recovery must ignore the CRC-less temp image and rebuild from the
  // previous snapshot + WAL: every row exactly once, none duplicated.
  std::string digest = Digest(&recovered);
  EXPECT_TRUE(digest == expected_pre || digest == expected_post)
      << "recovered state is neither pre- nor post-crash:\n" << digest;

  // The previous snapshot recorded capacity 2, so the restored table is
  // genuinely multi-segment and its geometry is internally consistent.
  auto table = recovered.database()->GetTable("kv");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->segment_capacity(), 2u);
  EXPECT_GT((*table)->num_segments(), 1u);
  size_t total = 0;
  for (size_t s = 0; s < (*table)->num_segments(); ++s) {
    total += (*table)->segment_rows(s);
  }
  EXPECT_EQ(total, (*table)->num_rows());
}

TEST(CrashMatrixTest, EnvVarDrivenFaultInjectionKillsTheChild) {
  std::string dir = MakeTempDir();
  // No FLOCK_CRASH_POINT: the injector arms itself from FLOCK_FAULT_*
  // env vars on first access, so the child dies during the setup
  // statements rather than at the final one.
  int exit_code = SpawnCrashChild(
      dir, "",
      {"FLOCK_FAULT_POINT=wal.append.before_fsync",
       "FLOCK_FAULT_MODE=crash", "FLOCK_FAULT_SKIP=2"});
  EXPECT_EQ(exit_code, wal::FaultInjector::kCrashExitCode);

  flock::FlockEngine recovered(SerialEngineOptions());
  ASSERT_TRUE(recovered.Open(dir).ok());
  // Whatever prefix committed must replay cleanly.
  EXPECT_GE(recovered.durability()->recovery().wal_records_replayed, 0u);
}

// ---------------------------------------------------------------------
// Differential restart: the serving layer returns identical results
// before and after a full stop/checkpoint/restart cycle.
// ---------------------------------------------------------------------

TEST(DifferentialRestartTest, ServerServesIdenticalResultsAfterRestart) {
  std::string dir = MakeTempDir();
  workload::TpchWorkload tpch(42);
  std::vector<std::string> corpus = tpch.GenerateQueryStream(8);
  corpus.push_back("SELECT COUNT(*) FROM lineitem");
  corpus.push_back(
      "SELECT l_returnflag, SUM(l_quantity) FROM lineitem "
      "GROUP BY l_returnflag ORDER BY l_returnflag");

  std::vector<std::string> before;
  {
    flock::FlockEngine engine(SerialEngineOptions());
    ASSERT_TRUE(engine.Open(dir).ok());
    workload::TpchWorkload loader(42);
    ASSERT_TRUE(loader.CreateSchema(engine.database()).ok());
    ASSERT_TRUE(loader.PopulateData(engine.database(), 8).ok());
    ASSERT_TRUE(engine.RefreshCatalogTables().ok());

    serve::PredictionServer server(&engine);
    serve::LoopbackClient client(&server);
    ASSERT_TRUE(client.status().ok());
    for (const std::string& sql : corpus) {
      auto result = client.Execute(sql);
      before.push_back(result.ok() ? result->batch.ToString(10000)
                                   : result.status().ToString());
    }
    server.Shutdown();  // drains and checkpoints
  }

  flock::FlockEngine reopened(SerialEngineOptions());
  ASSERT_TRUE(reopened.Open(dir).ok());
  // Shutdown checkpointed, so the restart restores the snapshot with an
  // empty log.
  EXPECT_TRUE(reopened.durability()->recovery().snapshot_restored);
  EXPECT_EQ(reopened.durability()->recovery().wal_records_replayed, 0u);

  serve::PredictionServer server(&reopened);
  serve::LoopbackClient client(&server);
  ASSERT_TRUE(client.status().ok());
  for (size_t i = 0; i < corpus.size(); ++i) {
    auto result = client.Execute(corpus[i]);
    std::string after = result.ok() ? result->batch.ToString(10000)
                                    : result.status().ToString();
    EXPECT_EQ(after, before[i]) << "query " << i << ": " << corpus[i];
  }
  server.Shutdown();
}

// ---------------------------------------------------------------------
// Crash-child workload (runs in the re-exec'd process, never in gtest).
// ---------------------------------------------------------------------

int RunCrashChild(const char* dir) {
  flock::FlockEngine engine(SerialEngineOptions());
  if (!engine.Open(dir).ok()) return 3;
  // FLOCK_CRASH_SEGCAP shrinks segments so the fixed workload produces
  // multi-segment tables (and multi-segment checkpoint images).
  if (const char* cap = std::getenv("FLOCK_CRASH_SEGCAP")) {
    engine.database()->set_default_segment_capacity(
        static_cast<size_t>(std::atoi(cap)));
  }
  if (!RunStatements(&engine, SetupStatements()).ok()) return 4;
  if (!engine.Checkpoint().ok()) return 5;
  if (!RunStatements(&engine, TailStatements()).ok()) return 6;

  if (const char* point = std::getenv("FLOCK_CRASH_POINT")) {
    wal::FaultInjector::Get()->Arm(point,
                                   wal::FaultInjector::Mode::kCrash);
  }
  // With a wal.append.* point armed this statement dies mid-append; with
  // a checkpoint.* point the statement commits and the checkpoint dies.
  auto final_result = engine.Execute(kFinalStatement);
  Status checkpointed = engine.Checkpoint();
  wal::FaultInjector::Get()->Disarm();
  if (!final_result.ok() || !checkpointed.ok()) return 7;
  return 0;  // no fault armed and everything committed
}

}  // namespace
}  // namespace flock

int main(int argc, char** argv) {
  if (const char* dir = std::getenv("FLOCK_CRASH_CHILD")) {
    return flock::RunCrashChild(dir);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
