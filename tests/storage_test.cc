#include <gtest/gtest.h>

#include "storage/column_vector.h"
#include "storage/database.h"
#include "storage/record_batch.h"
#include "storage/serialization.h"
#include "storage/table.h"
#include "storage/value.h"

namespace flock::storage {
namespace {

TEST(ValueTest, NullByDefault) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, TypedConstruction) {
  EXPECT_EQ(Value::Int(7).int_value(), 7);
  EXPECT_DOUBLE_EQ(Value::Double(1.5).double_value(), 1.5);
  EXPECT_EQ(Value::String("x").string_value(), "x");
  EXPECT_TRUE(Value::Bool(true).bool_value());
}

TEST(ValueTest, CrossNumericEquality) {
  EXPECT_EQ(Value::Int(3), Value::Double(3.0));
  EXPECT_NE(Value::Int(3), Value::Double(3.5));
  EXPECT_NE(Value::Int(3), Value::String("3"));
}

TEST(ValueTest, CompareOrdersNullsFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int(0)), 0);
  EXPECT_GT(Value::Int(0).Compare(Value::Null()), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_LT(Value::String("a").Compare(Value::String("b")), 0);
}

TEST(ValueTest, CastRoundTrips) {
  auto d = Value::Int(42).CastTo(DataType::kDouble);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d->double_value(), 42.0);
  auto i = Value::String("17").CastTo(DataType::kInt64);
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(i->int_value(), 17);
  auto bad = Value::String("xyz").CastTo(DataType::kInt64);
  EXPECT_FALSE(bad.ok());
  auto null_cast = Value::Null().CastTo(DataType::kString);
  ASSERT_TRUE(null_cast.ok());
  EXPECT_TRUE(null_cast->is_null());
}

TEST(ValueTest, HashEqualValuesCollide) {
  EXPECT_EQ(Value::Int(5).Hash(), Value::Double(5.0).Hash());
  EXPECT_EQ(Value::String("abc").Hash(), Value::String("abc").Hash());
  EXPECT_NE(Value::String("abc").Hash(), Value::String("abd").Hash());
}

TEST(DataTypeTest, ParseNames) {
  EXPECT_EQ(*DataTypeFromName("bigint"), DataType::kInt64);
  EXPECT_EQ(*DataTypeFromName("VARCHAR"), DataType::kString);
  EXPECT_EQ(*DataTypeFromName("decimal"), DataType::kDouble);
  EXPECT_EQ(*DataTypeFromName("boolean"), DataType::kBool);
  EXPECT_FALSE(DataTypeFromName("blob").ok());
}

TEST(ColumnVectorTest, AppendAndRead) {
  ColumnVector col(DataType::kInt64);
  col.AppendInt(1);
  col.AppendNull();
  col.AppendInt(3);
  ASSERT_EQ(col.size(), 3u);
  EXPECT_EQ(col.int_at(0), 1);
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_EQ(col.GetValue(2), Value::Int(3));
}

TEST(ColumnVectorTest, AppendValueCasts) {
  ColumnVector col(DataType::kDouble);
  ASSERT_TRUE(col.AppendValue(Value::Int(2)).ok());
  EXPECT_DOUBLE_EQ(col.double_at(0), 2.0);
}

TEST(ColumnVectorTest, AppendSelected) {
  ColumnVector src(DataType::kString);
  src.AppendString("a");
  src.AppendString("b");
  src.AppendString("c");
  ColumnVector dst(DataType::kString);
  dst.AppendSelected(src, {2, 0});
  ASSERT_EQ(dst.size(), 2u);
  EXPECT_EQ(dst.string_at(0), "c");
  EXPECT_EQ(dst.string_at(1), "a");
}

Schema MakeSchema() {
  return Schema({ColumnDef{"id", DataType::kInt64, false},
                 ColumnDef{"name", DataType::kString, true},
                 ColumnDef{"score", DataType::kDouble, true}});
}

TEST(RecordBatchTest, AppendRowAndProject) {
  RecordBatch batch(MakeSchema());
  ASSERT_TRUE(batch
                  .AppendRow({Value::Int(1), Value::String("a"),
                              Value::Double(0.5)})
                  .ok());
  ASSERT_TRUE(
      batch.AppendRow({Value::Int(2), Value::Null(), Value::Double(0.9)})
          .ok());
  EXPECT_EQ(batch.num_rows(), 2u);
  RecordBatch proj = batch.Project({2, 0});
  EXPECT_EQ(proj.schema().column(0).name, "score");
  EXPECT_EQ(proj.column(1)->int_at(1), 2);
}

TEST(RecordBatchTest, SelectSubset) {
  RecordBatch batch(MakeSchema());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(batch
                    .AppendRow({Value::Int(i), Value::String("n"),
                                Value::Double(i * 0.1)})
                    .ok());
  }
  RecordBatch sel = batch.Select({1, 3, 5});
  ASSERT_EQ(sel.num_rows(), 3u);
  EXPECT_EQ(sel.column(0)->int_at(2), 5);
}

TEST(RecordBatchTest, RowArityChecked) {
  RecordBatch batch(MakeSchema());
  EXPECT_FALSE(batch.AppendRow({Value::Int(1)}).ok());
}

TEST(TableTest, VersionLedgerGrowsOnMutation) {
  Table t("t", MakeSchema());
  EXPECT_EQ(t.current_version(), 0u);
  ASSERT_TRUE(
      t.AppendRow({Value::Int(1), Value::String("x"), Value::Double(1.0)})
          .ok());
  EXPECT_EQ(t.current_version(), 1u);
  ASSERT_EQ(t.versions().size(), 2u);
  EXPECT_EQ(t.versions()[1].operation, "INSERT");
  EXPECT_EQ(t.versions()[1].rows_affected, 1u);
}

TEST(TableTest, ScanRangeClamps) {
  Table t("t", MakeSchema());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(t.AppendRow({Value::Int(i), Value::String("x"),
                             Value::Double(0)})
                    .ok());
  }
  RecordBatch batch = t.ScanRange(3, 100);
  EXPECT_EQ(batch.num_rows(), 2u);
  EXPECT_EQ(batch.column(0)->int_at(0), 3);
}

TEST(TableTest, FilterInPlaceDeletes) {
  Table t("t", MakeSchema());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(t.AppendRow({Value::Int(i), Value::String("x"),
                             Value::Double(0)})
                    .ok());
  }
  std::vector<bool> keep = {true, false, true, false};
  EXPECT_EQ(t.FilterInPlace(keep), 2u);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.column(0).int_at(1), 2);
  EXPECT_EQ(t.versions().back().operation, "DELETE");
}

TEST(TableTest, UpdateColumnRewrites) {
  Table t("t", MakeSchema());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(t.AppendRow({Value::Int(i), Value::String("x"),
                             Value::Double(0)})
                    .ok());
  }
  ASSERT_TRUE(
      t.UpdateColumn(2, {1}, {Value::Double(9.5)}).ok());
  EXPECT_DOUBLE_EQ(t.column(2).double_at(1), 9.5);
  EXPECT_DOUBLE_EQ(t.column(2).double_at(0), 0.0);
  EXPECT_EQ(t.versions().back().operation, "UPDATE");
}

TEST(TableTest, StatsComputeMinMaxAndInvalidate) {
  Table t("t", MakeSchema());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(t.AppendRow({Value::Int(i), Value::String("x"),
                             Value::Double(i * 2.0)})
                    .ok());
  }
  auto stats = t.GetStats(2);
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats->min, 0.0);
  EXPECT_DOUBLE_EQ(stats->max, 8.0);
  ASSERT_TRUE(t.AppendRow({Value::Int(9), Value::String("x"),
                           Value::Double(100.0)})
                  .ok());
  auto stats2 = t.GetStats(2);
  EXPECT_DOUBLE_EQ(stats2->max, 100.0);
}

TEST(TableTest, StatsCountNulls) {
  Table t("t", MakeSchema());
  ASSERT_TRUE(
      t.AppendRow({Value::Int(1), Value::Null(), Value::Null()}).ok());
  auto stats = t.GetStats(2);
  EXPECT_EQ(stats->null_count, 1u);
}

TEST(DatabaseTest, CreateGetDrop) {
  Database db;
  ASSERT_TRUE(db.CreateTable("People", MakeSchema()).ok());
  EXPECT_TRUE(db.HasTable("people"));  // case-insensitive
  EXPECT_EQ(db.CreateTable("PEOPLE", MakeSchema()).code(),
            StatusCode::kAlreadyExists);
  auto t = db.GetTable("people");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->name(), "People");
  ASSERT_TRUE(db.DropTable("People").ok());
  EXPECT_EQ(db.GetTable("people").status().code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, ListTables) {
  Database db;
  ASSERT_TRUE(db.CreateTable("b", MakeSchema()).ok());
  ASSERT_TRUE(db.CreateTable("a", MakeSchema()).ok());
  auto names = db.ListTables();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
}

// --- binary serialization round trips (WAL / checkpoint substrate) ---

Value RoundTrip(const Value& v) {
  std::string buf;
  SerializeValue(v, &buf);
  ByteReader reader(buf);
  Value out;
  EXPECT_TRUE(DeserializeValue(&reader, &out).ok());
  EXPECT_TRUE(reader.exhausted());
  return out;
}

TEST(SerializationTest, ValueRoundTripAllTypes) {
  EXPECT_EQ(RoundTrip(Value::Bool(true)), Value::Bool(true));
  EXPECT_EQ(RoundTrip(Value::Bool(false)), Value::Bool(false));
  EXPECT_EQ(RoundTrip(Value::Int(-42)), Value::Int(-42));
  EXPECT_EQ(RoundTrip(Value::Int(INT64_MIN)), Value::Int(INT64_MIN));
  EXPECT_EQ(RoundTrip(Value::Int(INT64_MAX)), Value::Int(INT64_MAX));
  EXPECT_EQ(RoundTrip(Value::Double(3.25)), Value::Double(3.25));
  EXPECT_EQ(RoundTrip(Value::Double(-0.0)).double_value(), 0.0);
  EXPECT_EQ(RoundTrip(Value::String("hello world")),
            Value::String("hello world"));
}

TEST(SerializationTest, ValueRoundTripEmptyAndBinaryStrings) {
  EXPECT_EQ(RoundTrip(Value::String("")), Value::String(""));
  std::string binary("a\0b\n\xff", 5);
  Value v = RoundTrip(Value::String(binary));
  EXPECT_EQ(v.string_value(), binary);
}

TEST(SerializationTest, ValueRoundTripNullsKeepType) {
  for (DataType type : {DataType::kBool, DataType::kInt64,
                        DataType::kDouble, DataType::kString}) {
    Value v = RoundTrip(Value::Null(type));
    EXPECT_TRUE(v.is_null());
    EXPECT_EQ(v.type(), type);
  }
}

TEST(SerializationTest, TruncatedValueIsDataLoss) {
  std::string buf;
  SerializeValue(Value::String("truncate me"), &buf);
  for (size_t cut : {size_t{0}, size_t{1}, buf.size() - 1}) {
    ByteReader reader(buf.data(), cut);
    Value out;
    Status st = DeserializeValue(&reader, &out);
    EXPECT_EQ(st.code(), StatusCode::kDataLoss) << "cut=" << cut;
  }
}

TEST(SerializationTest, UnknownTypeTagIsDataLoss) {
  std::string buf;
  PutU8(&buf, 0);    // not null
  PutU8(&buf, 200);  // bogus type tag
  ByteReader reader(buf);
  Value out;
  EXPECT_EQ(DeserializeValue(&reader, &out).code(), StatusCode::kDataLoss);
}

TEST(SerializationTest, SchemaRoundTrip) {
  Schema schema({ColumnDef{"id", DataType::kInt64, false},
                 ColumnDef{"flag", DataType::kBool, true},
                 ColumnDef{"score", DataType::kDouble, true},
                 ColumnDef{"note", DataType::kString, true}});
  std::string buf;
  SerializeSchema(schema, &buf);
  ByteReader reader(buf);
  Schema out;
  ASSERT_TRUE(DeserializeSchema(&reader, &out).ok());
  EXPECT_EQ(out, schema);
  EXPECT_FALSE(out.column(0).nullable);
  EXPECT_TRUE(out.column(1).nullable);
}

TEST(SerializationTest, EmptySchemaRoundTrip) {
  std::string buf;
  SerializeSchema(Schema(), &buf);
  ByteReader reader(buf);
  Schema out;
  ASSERT_TRUE(DeserializeSchema(&reader, &out).ok());
  EXPECT_EQ(out.num_columns(), 0u);
}

TEST(SerializationTest, BatchRoundTripWithNullsAndEmptyStrings) {
  Schema schema({ColumnDef{"id", DataType::kInt64, false},
                 ColumnDef{"flag", DataType::kBool, true},
                 ColumnDef{"score", DataType::kDouble, true},
                 ColumnDef{"note", DataType::kString, true}});
  RecordBatch batch(schema);
  ASSERT_TRUE(batch.AppendRow({Value::Int(1), Value::Bool(true),
                               Value::Double(0.5), Value::String("")})
                  .ok());
  ASSERT_TRUE(batch.AppendRow({Value::Int(2), Value::Null(DataType::kBool),
                               Value::Null(DataType::kDouble),
                               Value::Null(DataType::kString)})
                  .ok());
  ASSERT_TRUE(batch.AppendRow({Value::Int(3), Value::Bool(false),
                               Value::Double(-1.25), Value::String("x y")})
                  .ok());
  std::string buf;
  SerializeBatch(batch, &buf);
  ByteReader reader(buf);
  RecordBatch out;
  ASSERT_TRUE(DeserializeBatch(&reader, &out).ok());
  ASSERT_EQ(out.num_rows(), batch.num_rows());
  ASSERT_EQ(out.schema(), batch.schema());
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    std::vector<Value> want = batch.GetRow(r);
    std::vector<Value> got = out.GetRow(r);
    for (size_t c = 0; c < want.size(); ++c) {
      EXPECT_EQ(got[c].is_null(), want[c].is_null()) << r << "," << c;
      if (!want[c].is_null()) EXPECT_EQ(got[c], want[c]) << r << "," << c;
    }
  }
}

TEST(SerializationTest, EmptyBatchRoundTrip) {
  Schema schema({ColumnDef{"id", DataType::kInt64, false}});
  RecordBatch batch(schema);
  std::string buf;
  SerializeBatch(batch, &buf);
  ByteReader reader(buf);
  RecordBatch out;
  ASSERT_TRUE(DeserializeBatch(&reader, &out).ok());
  EXPECT_EQ(out.num_rows(), 0u);
  EXPECT_EQ(out.schema(), schema);
}

TEST(SerializationTest, BatchWithSelectionSerializesLogicalRows) {
  Schema schema({ColumnDef{"id", DataType::kInt64, false}});
  RecordBatch batch(schema);
  for (int64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(batch.AppendRow({Value::Int(i)}).ok());
  }
  RecordBatch view = batch.SelectView({1, 3, 5});
  std::string buf;
  SerializeBatch(view, &buf);
  ByteReader reader(buf);
  RecordBatch out;
  ASSERT_TRUE(DeserializeBatch(&reader, &out).ok());
  ASSERT_EQ(out.num_rows(), 3u);
  EXPECT_EQ(out.column(0)->int_at(0), 1);
  EXPECT_EQ(out.column(0)->int_at(1), 3);
  EXPECT_EQ(out.column(0)->int_at(2), 5);
}

TEST(SerializationTest, TruncatedBatchIsDataLoss) {
  Schema schema({ColumnDef{"note", DataType::kString, true}});
  RecordBatch batch(schema);
  ASSERT_TRUE(batch.AppendRow({Value::String("payload")}).ok());
  std::string buf;
  SerializeBatch(batch, &buf);
  ByteReader reader(buf.data(), buf.size() - 3);
  RecordBatch out;
  EXPECT_EQ(DeserializeBatch(&reader, &out).code(),
            StatusCode::kDataLoss);
}

}  // namespace
}  // namespace flock::storage
