#include <gtest/gtest.h>

#include <thread>

#include "storage/column_vector.h"
#include "storage/database.h"
#include "storage/record_batch.h"
#include "storage/serialization.h"
#include "storage/table.h"
#include "storage/value.h"

namespace flock::storage {
namespace {

TEST(ValueTest, NullByDefault) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, TypedConstruction) {
  EXPECT_EQ(Value::Int(7).int_value(), 7);
  EXPECT_DOUBLE_EQ(Value::Double(1.5).double_value(), 1.5);
  EXPECT_EQ(Value::String("x").string_value(), "x");
  EXPECT_TRUE(Value::Bool(true).bool_value());
}

TEST(ValueTest, CrossNumericEquality) {
  EXPECT_EQ(Value::Int(3), Value::Double(3.0));
  EXPECT_NE(Value::Int(3), Value::Double(3.5));
  EXPECT_NE(Value::Int(3), Value::String("3"));
}

TEST(ValueTest, CompareOrdersNullsFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int(0)), 0);
  EXPECT_GT(Value::Int(0).Compare(Value::Null()), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_LT(Value::String("a").Compare(Value::String("b")), 0);
}

TEST(ValueTest, CastRoundTrips) {
  auto d = Value::Int(42).CastTo(DataType::kDouble);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d->double_value(), 42.0);
  auto i = Value::String("17").CastTo(DataType::kInt64);
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(i->int_value(), 17);
  auto bad = Value::String("xyz").CastTo(DataType::kInt64);
  EXPECT_FALSE(bad.ok());
  auto null_cast = Value::Null().CastTo(DataType::kString);
  ASSERT_TRUE(null_cast.ok());
  EXPECT_TRUE(null_cast->is_null());
}

TEST(ValueTest, HashEqualValuesCollide) {
  EXPECT_EQ(Value::Int(5).Hash(), Value::Double(5.0).Hash());
  EXPECT_EQ(Value::String("abc").Hash(), Value::String("abc").Hash());
  EXPECT_NE(Value::String("abc").Hash(), Value::String("abd").Hash());
}

TEST(DataTypeTest, ParseNames) {
  EXPECT_EQ(*DataTypeFromName("bigint"), DataType::kInt64);
  EXPECT_EQ(*DataTypeFromName("VARCHAR"), DataType::kString);
  EXPECT_EQ(*DataTypeFromName("decimal"), DataType::kDouble);
  EXPECT_EQ(*DataTypeFromName("boolean"), DataType::kBool);
  EXPECT_FALSE(DataTypeFromName("blob").ok());
}

TEST(ColumnVectorTest, AppendAndRead) {
  ColumnVector col(DataType::kInt64);
  col.AppendInt(1);
  col.AppendNull();
  col.AppendInt(3);
  ASSERT_EQ(col.size(), 3u);
  EXPECT_EQ(col.int_at(0), 1);
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_EQ(col.GetValue(2), Value::Int(3));
}

TEST(ColumnVectorTest, AppendValueCasts) {
  ColumnVector col(DataType::kDouble);
  ASSERT_TRUE(col.AppendValue(Value::Int(2)).ok());
  EXPECT_DOUBLE_EQ(col.double_at(0), 2.0);
}

TEST(ColumnVectorTest, AppendSelected) {
  ColumnVector src(DataType::kString);
  src.AppendString("a");
  src.AppendString("b");
  src.AppendString("c");
  ColumnVector dst(DataType::kString);
  dst.AppendSelected(src, {2, 0});
  ASSERT_EQ(dst.size(), 2u);
  EXPECT_EQ(dst.string_at(0), "c");
  EXPECT_EQ(dst.string_at(1), "a");
}

Schema MakeSchema() {
  return Schema({ColumnDef{"id", DataType::kInt64, false},
                 ColumnDef{"name", DataType::kString, true},
                 ColumnDef{"score", DataType::kDouble, true}});
}

TEST(RecordBatchTest, AppendRowAndProject) {
  RecordBatch batch(MakeSchema());
  ASSERT_TRUE(batch
                  .AppendRow({Value::Int(1), Value::String("a"),
                              Value::Double(0.5)})
                  .ok());
  ASSERT_TRUE(
      batch.AppendRow({Value::Int(2), Value::Null(), Value::Double(0.9)})
          .ok());
  EXPECT_EQ(batch.num_rows(), 2u);
  RecordBatch proj = batch.Project({2, 0});
  EXPECT_EQ(proj.schema().column(0).name, "score");
  EXPECT_EQ(proj.column(1)->int_at(1), 2);
}

TEST(RecordBatchTest, SelectSubset) {
  RecordBatch batch(MakeSchema());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(batch
                    .AppendRow({Value::Int(i), Value::String("n"),
                                Value::Double(i * 0.1)})
                    .ok());
  }
  RecordBatch sel = batch.Select({1, 3, 5});
  ASSERT_EQ(sel.num_rows(), 3u);
  EXPECT_EQ(sel.column(0)->int_at(2), 5);
}

TEST(RecordBatchTest, RowArityChecked) {
  RecordBatch batch(MakeSchema());
  EXPECT_FALSE(batch.AppendRow({Value::Int(1)}).ok());
}

TEST(TableTest, VersionLedgerGrowsOnMutation) {
  Table t("t", MakeSchema());
  EXPECT_EQ(t.current_version(), 0u);
  ASSERT_TRUE(
      t.AppendRow({Value::Int(1), Value::String("x"), Value::Double(1.0)})
          .ok());
  EXPECT_EQ(t.current_version(), 1u);
  ASSERT_EQ(t.versions().size(), 2u);
  EXPECT_EQ(t.versions()[1].operation, "INSERT");
  EXPECT_EQ(t.versions()[1].rows_affected, 1u);
}

TEST(TableTest, ScanRangeClamps) {
  Table t("t", MakeSchema());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(t.AppendRow({Value::Int(i), Value::String("x"),
                             Value::Double(0)})
                    .ok());
  }
  RecordBatch batch = t.ScanRange(3, 100);
  EXPECT_EQ(batch.num_rows(), 2u);
  EXPECT_EQ(batch.column(0)->int_at(0), 3);
}

TEST(TableTest, FilterInPlaceDeletes) {
  Table t("t", MakeSchema());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(t.AppendRow({Value::Int(i), Value::String("x"),
                             Value::Double(0)})
                    .ok());
  }
  std::vector<bool> keep = {true, false, true, false};
  EXPECT_EQ(t.FilterInPlace(keep), 2u);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.ScanAll().column(0)->int_at(1), 2);
  EXPECT_EQ(t.versions().back().operation, "DELETE");
}

TEST(TableTest, UpdateColumnRewrites) {
  Table t("t", MakeSchema());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(t.AppendRow({Value::Int(i), Value::String("x"),
                             Value::Double(0)})
                    .ok());
  }
  ASSERT_TRUE(
      t.UpdateColumn(2, {1}, {Value::Double(9.5)}).ok());
  RecordBatch rows = t.ScanAll();
  EXPECT_DOUBLE_EQ(rows.column(2)->double_at(1), 9.5);
  EXPECT_DOUBLE_EQ(rows.column(2)->double_at(0), 0.0);
  EXPECT_EQ(t.versions().back().operation, "UPDATE");
}

TEST(TableTest, StatsComputeMinMaxAndInvalidate) {
  Table t("t", MakeSchema());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(t.AppendRow({Value::Int(i), Value::String("x"),
                             Value::Double(i * 2.0)})
                    .ok());
  }
  auto stats = t.GetStats(2);
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats->min, 0.0);
  EXPECT_DOUBLE_EQ(stats->max, 8.0);
  ASSERT_TRUE(t.AppendRow({Value::Int(9), Value::String("x"),
                           Value::Double(100.0)})
                  .ok());
  auto stats2 = t.GetStats(2);
  EXPECT_DOUBLE_EQ(stats2->max, 100.0);
}

TEST(TableTest, StatsCountNulls) {
  Table t("t", MakeSchema());
  ASSERT_TRUE(
      t.AppendRow({Value::Int(1), Value::Null(), Value::Null()}).ok());
  auto stats = t.GetStats(2);
  EXPECT_EQ(stats->null_count, 1u);
}

// --- segmented storage: geometry, zone maps, zero-copy views ---

// Appends one row per value of `ids` with score = id * 1.5.
void Fill(Table* t, int64_t count) {
  for (int64_t i = 0; i < count; ++i) {
    ASSERT_TRUE(t->AppendRow({Value::Int(i), Value::String("r"),
                              Value::Double(i * 1.5)})
                    .ok());
  }
}

TEST(SegmentTest, AppendStraddlesSegmentBoundary) {
  Table t("t", MakeSchema(), /*segment_capacity=*/4);
  // A single batch larger than one segment must split across segments.
  RecordBatch batch(MakeSchema());
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(batch.AppendRow({Value::Int(i), Value::String("r"),
                                 Value::Double(i * 1.5)})
                    .ok());
  }
  ASSERT_TRUE(t.AppendBatch(batch).ok());
  EXPECT_EQ(t.num_rows(), 10u);
  ASSERT_EQ(t.num_segments(), 3u);
  EXPECT_EQ(t.segment_rows(0), 4u);
  EXPECT_EQ(t.segment_rows(1), 4u);
  EXPECT_EQ(t.segment_rows(2), 2u);
  EXPECT_EQ(t.segment_row_begin(0), 0u);
  EXPECT_EQ(t.segment_row_begin(1), 4u);
  EXPECT_EQ(t.segment_row_begin(2), 8u);
  // Row order is preserved across the boundary.
  RecordBatch all = t.ScanAll();
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(all.column(0)->int_at(i), i);
  }
  // One batch INSERT is one version bump, regardless of segments touched.
  EXPECT_EQ(t.versions().back().rows_affected, 10u);
  EXPECT_EQ(t.current_version(), 1u);
}

TEST(SegmentTest, ZoneMapsTrackPerSegmentRanges) {
  Table t("t", MakeSchema(), /*segment_capacity=*/4);
  Fill(&t, 8);
  ASSERT_EQ(t.num_segments(), 2u);
  const ColumnStats& zm0 = t.segment_zone_map(0, 0);
  EXPECT_TRUE(zm0.has_range);
  EXPECT_DOUBLE_EQ(zm0.min, 0.0);
  EXPECT_DOUBLE_EQ(zm0.max, 3.0);
  const ColumnStats& zm1 = t.segment_zone_map(1, 0);
  EXPECT_DOUBLE_EQ(zm1.min, 4.0);
  EXPECT_DOUBLE_EQ(zm1.max, 7.0);
  // String column: counted but no numeric range.
  EXPECT_FALSE(t.segment_zone_map(0, 1).has_range);
  EXPECT_EQ(t.segment_zone_map(0, 1).row_count, 4u);
}

TEST(SegmentTest, ScanSegmentIsZeroCopyView) {
  Table t("t", MakeSchema(), /*segment_capacity=*/4);
  Fill(&t, 8);
  ASSERT_EQ(t.num_segments(), 2u);
  for (size_t s = 0; s < t.num_segments(); ++s) {
    RecordBatch view = t.ScanSegment(s);
    EXPECT_FALSE(view.has_selection());  // full segment -> dense view
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(view.column(c).get(), t.segment_column(s, c).get())
          << "segment " << s << " column " << c << " was copied";
    }
  }
  // A sub-range shares the vectors too, through a selection view.
  RecordBatch part = t.ScanSegment(1, 1, 3);
  EXPECT_TRUE(part.has_selection());
  ASSERT_EQ(part.num_rows(), 2u);
  EXPECT_EQ(part.column(0).get(), t.segment_column(1, 0).get());
  EXPECT_EQ(part.column(0)->int_at(part.selection()[0]), 5);
}

TEST(SegmentTest, FilterEmptyingSegmentDropsIt) {
  Table t("t", MakeSchema(), /*segment_capacity=*/4);
  Fill(&t, 12);
  ASSERT_EQ(t.num_segments(), 3u);
  // Segment 1 untouched: its column vectors must survive by identity.
  ColumnVectorPtr seg1_col0 = t.segment_column(1, 0);
  // Delete all of segment 0 and half of segment 2.
  std::vector<bool> keep(12, true);
  for (size_t i = 0; i < 4; ++i) keep[i] = false;
  keep[8] = false;
  keep[9] = false;
  EXPECT_EQ(t.FilterInPlace(keep), 6u);
  EXPECT_EQ(t.num_rows(), 6u);
  ASSERT_EQ(t.num_segments(), 2u);  // emptied segment erased
  // Former segment 1 is now segment 0, vectors unchanged.
  EXPECT_EQ(t.segment_column(0, 0).get(), seg1_col0.get());
  const ColumnStats& zm0 = t.segment_zone_map(0, 0);
  EXPECT_DOUBLE_EQ(zm0.min, 4.0);
  EXPECT_DOUBLE_EQ(zm0.max, 7.0);
  // Rewritten segment's zone map reflects the surviving rows only.
  const ColumnStats& zm1 = t.segment_zone_map(1, 0);
  EXPECT_DOUBLE_EQ(zm1.min, 10.0);
  EXPECT_DOUBLE_EQ(zm1.max, 11.0);
  RecordBatch all = t.ScanAll();
  EXPECT_EQ(all.column(0)->int_at(0), 4);
  EXPECT_EQ(all.column(0)->int_at(5), 11);
}

TEST(SegmentTest, FilterPreservesSnapshotViews) {
  Table t("t", MakeSchema(), /*segment_capacity=*/4);
  Fill(&t, 8);
  RecordBatch view = t.ScanSegment(0);
  std::vector<bool> keep(8, true);
  keep[1] = false;
  EXPECT_EQ(t.FilterInPlace(keep), 1u);
  // The rewrite swapped in fresh vectors; the old view still sees the
  // pre-delete snapshot.
  ASSERT_EQ(view.num_rows(), 4u);
  EXPECT_EQ(view.column(0)->int_at(1), 1);
  EXPECT_NE(view.column(0).get(), t.segment_column(0, 0).get());
}

TEST(SegmentTest, UpdateRewritesSealedSegmentColumn) {
  Table t("t", MakeSchema(), /*segment_capacity=*/4);
  Fill(&t, 8);
  ASSERT_EQ(t.num_segments(), 2u);
  EXPECT_TRUE(t.segment_zone_map(0, 2).has_range);
  ColumnVectorPtr old_scores = t.segment_column(0, 2);
  ColumnVectorPtr old_ids = t.segment_column(0, 0);
  ColumnVectorPtr seg1_scores = t.segment_column(1, 2);
  // Update a row inside the sealed first segment.
  ASSERT_TRUE(t.UpdateColumn(2, {1}, {Value::Double(99.0)}).ok());
  // Only (segment 0, column 2) got a fresh vector.
  EXPECT_NE(t.segment_column(0, 2).get(), old_scores.get());
  EXPECT_EQ(t.segment_column(0, 0).get(), old_ids.get());
  EXPECT_EQ(t.segment_column(1, 2).get(), seg1_scores.get());
  // Its zone map was recomputed; the untouched segment's was not widened.
  EXPECT_DOUBLE_EQ(t.segment_zone_map(0, 2).max, 99.0);
  EXPECT_DOUBLE_EQ(t.segment_zone_map(1, 2).max, 7 * 1.5);
  EXPECT_DOUBLE_EQ(t.ScanAll().column(2)->double_at(1), 99.0);
}

TEST(SegmentTest, RestoreSegmentsReproducesLayout) {
  Table src("t", MakeSchema(), /*segment_capacity=*/4);
  Fill(&src, 10);
  std::vector<RecordBatch> images;
  for (size_t s = 0; s < src.num_segments(); ++s) {
    images.push_back(src.ScanSegment(s));
  }
  Table dst("t", MakeSchema(), /*segment_capacity=*/4);
  ASSERT_TRUE(dst.RestoreSegments(images).ok());
  ASSERT_EQ(dst.num_segments(), src.num_segments());
  EXPECT_EQ(dst.num_rows(), src.num_rows());
  for (size_t s = 0; s < src.num_segments(); ++s) {
    EXPECT_EQ(dst.segment_rows(s), src.segment_rows(s));
    const ColumnStats& a = dst.segment_zone_map(s, 0);
    const ColumnStats& b = src.segment_zone_map(s, 0);
    EXPECT_DOUBLE_EQ(a.min, b.min);
    EXPECT_DOUBLE_EQ(a.max, b.max);
  }
  // Restoring into a non-empty table is rejected.
  EXPECT_FALSE(dst.RestoreSegments(images).ok());
  // The open segment still accepts appends at the right offset.
  ASSERT_TRUE(dst.AppendRow({Value::Int(10), Value::String("r"),
                             Value::Double(15.0)})
                  .ok());
  EXPECT_EQ(dst.num_segments(), 3u);
  EXPECT_EQ(dst.segment_rows(2), 3u);
}

TEST(SegmentTest, StatsHasRangeFalseForEmptyAndAllNull) {
  Table t("t", MakeSchema(), /*segment_capacity=*/4);
  // Empty table: counts are zero and there is no range to report.
  auto empty = t.GetStats(2);
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty->has_range);
  EXPECT_EQ(empty->row_count, 0u);
  // All-NULL column across two segments: still no range.
  for (int64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        t.AppendRow({Value::Int(i), Value::Null(), Value::Null()}).ok());
  }
  auto all_null = t.GetStats(2);
  ASSERT_TRUE(all_null.ok());
  EXPECT_TRUE(all_null->numeric);
  EXPECT_FALSE(all_null->has_range);
  EXPECT_EQ(all_null->null_count, 6u);
  EXPECT_EQ(all_null->row_count, 6u);
  // One real value flips has_range on.
  ASSERT_TRUE(t.AppendRow({Value::Int(6), Value::String("r"),
                           Value::Double(-2.5)})
                  .ok());
  auto stats = t.GetStats(2);
  EXPECT_TRUE(stats->has_range);
  EXPECT_DOUBLE_EQ(stats->min, -2.5);
  EXPECT_DOUBLE_EQ(stats->max, -2.5);
}

TEST(SegmentTest, StatsFoldAcrossSegments) {
  Table t("t", MakeSchema(), /*segment_capacity=*/4);
  Fill(&t, 10);
  auto stats = t.GetStats(0);
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats->min, 0.0);
  EXPECT_DOUBLE_EQ(stats->max, 9.0);
  EXPECT_EQ(stats->row_count, 10u);
  EXPECT_EQ(stats->null_count, 0u);
}

TEST(SegmentTest, StatsCacheInvalidationIsColumnGranular) {
  Table t("t", MakeSchema(), /*segment_capacity=*/4);
  Fill(&t, 8);
  ASSERT_TRUE(t.GetStats(0).ok());
  ASSERT_TRUE(t.GetStats(2).ok());
  EXPECT_TRUE(t.stats_cached(0));
  EXPECT_TRUE(t.stats_cached(2));
  // UPDATE on column 2 must not evict column 0's aggregate.
  ASSERT_TRUE(t.UpdateColumn(2, {3}, {Value::Double(50.0)}).ok());
  EXPECT_TRUE(t.stats_cached(0));
  EXPECT_FALSE(t.stats_cached(2));
  auto stats = t.GetStats(2);
  EXPECT_DOUBLE_EQ(stats->max, 50.0);
  // DELETE touches row counts everywhere: all columns are invalidated.
  std::vector<bool> keep(8, true);
  keep[0] = false;
  t.FilterInPlace(keep);
  EXPECT_FALSE(t.stats_cached(0));
  EXPECT_FALSE(t.stats_cached(2));
  EXPECT_DOUBLE_EQ(t.GetStats(0)->min, 1.0);
}

TEST(SegmentTest, ConcurrentGetStatsIsSafe) {
  // Mirrors the engine's shared-lock phase: many readers, no mutators.
  // Run under TSan to check the cache's internal synchronization.
  Table t("t", MakeSchema(), /*segment_capacity=*/64);
  Fill(&t, 500);
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&t] {
      for (int iter = 0; iter < 50; ++iter) {
        for (size_t c = 0; c < 3; ++c) {
          auto stats = t.GetStats(c);
          ASSERT_TRUE(stats.ok());
          EXPECT_EQ(stats->row_count, 500u);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_DOUBLE_EQ(t.GetStats(0)->max, 499.0);
}

TEST(DatabaseTest, TablesUseConfiguredDefaultSegmentCapacity) {
  Database db;
  db.set_default_segment_capacity(8);
  ASSERT_TRUE(db.CreateTable("small", MakeSchema()).ok());
  auto t = db.GetTable("small");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->segment_capacity(), 8u);
  // An explicit per-table capacity overrides the catalog default.
  ASSERT_TRUE(db.CreateTable("big", MakeSchema(), 32).ok());
  EXPECT_EQ((*db.GetTable("big"))->segment_capacity(), 32u);
}

TEST(DatabaseTest, CreateGetDrop) {
  Database db;
  ASSERT_TRUE(db.CreateTable("People", MakeSchema()).ok());
  EXPECT_TRUE(db.HasTable("people"));  // case-insensitive
  EXPECT_EQ(db.CreateTable("PEOPLE", MakeSchema()).code(),
            StatusCode::kAlreadyExists);
  auto t = db.GetTable("people");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->name(), "People");
  ASSERT_TRUE(db.DropTable("People").ok());
  EXPECT_EQ(db.GetTable("people").status().code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, ListTables) {
  Database db;
  ASSERT_TRUE(db.CreateTable("b", MakeSchema()).ok());
  ASSERT_TRUE(db.CreateTable("a", MakeSchema()).ok());
  auto names = db.ListTables();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
}

// --- binary serialization round trips (WAL / checkpoint substrate) ---

Value RoundTrip(const Value& v) {
  std::string buf;
  SerializeValue(v, &buf);
  ByteReader reader(buf);
  Value out;
  EXPECT_TRUE(DeserializeValue(&reader, &out).ok());
  EXPECT_TRUE(reader.exhausted());
  return out;
}

TEST(SerializationTest, ValueRoundTripAllTypes) {
  EXPECT_EQ(RoundTrip(Value::Bool(true)), Value::Bool(true));
  EXPECT_EQ(RoundTrip(Value::Bool(false)), Value::Bool(false));
  EXPECT_EQ(RoundTrip(Value::Int(-42)), Value::Int(-42));
  EXPECT_EQ(RoundTrip(Value::Int(INT64_MIN)), Value::Int(INT64_MIN));
  EXPECT_EQ(RoundTrip(Value::Int(INT64_MAX)), Value::Int(INT64_MAX));
  EXPECT_EQ(RoundTrip(Value::Double(3.25)), Value::Double(3.25));
  EXPECT_EQ(RoundTrip(Value::Double(-0.0)).double_value(), 0.0);
  EXPECT_EQ(RoundTrip(Value::String("hello world")),
            Value::String("hello world"));
}

TEST(SerializationTest, ValueRoundTripEmptyAndBinaryStrings) {
  EXPECT_EQ(RoundTrip(Value::String("")), Value::String(""));
  std::string binary("a\0b\n\xff", 5);
  Value v = RoundTrip(Value::String(binary));
  EXPECT_EQ(v.string_value(), binary);
}

TEST(SerializationTest, ValueRoundTripNullsKeepType) {
  for (DataType type : {DataType::kBool, DataType::kInt64,
                        DataType::kDouble, DataType::kString}) {
    Value v = RoundTrip(Value::Null(type));
    EXPECT_TRUE(v.is_null());
    EXPECT_EQ(v.type(), type);
  }
}

TEST(SerializationTest, TruncatedValueIsDataLoss) {
  std::string buf;
  SerializeValue(Value::String("truncate me"), &buf);
  for (size_t cut : {size_t{0}, size_t{1}, buf.size() - 1}) {
    ByteReader reader(buf.data(), cut);
    Value out;
    Status st = DeserializeValue(&reader, &out);
    EXPECT_EQ(st.code(), StatusCode::kDataLoss) << "cut=" << cut;
  }
}

TEST(SerializationTest, UnknownTypeTagIsDataLoss) {
  std::string buf;
  PutU8(&buf, 0);    // not null
  PutU8(&buf, 200);  // bogus type tag
  ByteReader reader(buf);
  Value out;
  EXPECT_EQ(DeserializeValue(&reader, &out).code(), StatusCode::kDataLoss);
}

TEST(SerializationTest, SchemaRoundTrip) {
  Schema schema({ColumnDef{"id", DataType::kInt64, false},
                 ColumnDef{"flag", DataType::kBool, true},
                 ColumnDef{"score", DataType::kDouble, true},
                 ColumnDef{"note", DataType::kString, true}});
  std::string buf;
  SerializeSchema(schema, &buf);
  ByteReader reader(buf);
  Schema out;
  ASSERT_TRUE(DeserializeSchema(&reader, &out).ok());
  EXPECT_EQ(out, schema);
  EXPECT_FALSE(out.column(0).nullable);
  EXPECT_TRUE(out.column(1).nullable);
}

TEST(SerializationTest, EmptySchemaRoundTrip) {
  std::string buf;
  SerializeSchema(Schema(), &buf);
  ByteReader reader(buf);
  Schema out;
  ASSERT_TRUE(DeserializeSchema(&reader, &out).ok());
  EXPECT_EQ(out.num_columns(), 0u);
}

TEST(SerializationTest, BatchRoundTripWithNullsAndEmptyStrings) {
  Schema schema({ColumnDef{"id", DataType::kInt64, false},
                 ColumnDef{"flag", DataType::kBool, true},
                 ColumnDef{"score", DataType::kDouble, true},
                 ColumnDef{"note", DataType::kString, true}});
  RecordBatch batch(schema);
  ASSERT_TRUE(batch.AppendRow({Value::Int(1), Value::Bool(true),
                               Value::Double(0.5), Value::String("")})
                  .ok());
  ASSERT_TRUE(batch.AppendRow({Value::Int(2), Value::Null(DataType::kBool),
                               Value::Null(DataType::kDouble),
                               Value::Null(DataType::kString)})
                  .ok());
  ASSERT_TRUE(batch.AppendRow({Value::Int(3), Value::Bool(false),
                               Value::Double(-1.25), Value::String("x y")})
                  .ok());
  std::string buf;
  SerializeBatch(batch, &buf);
  ByteReader reader(buf);
  RecordBatch out;
  ASSERT_TRUE(DeserializeBatch(&reader, &out).ok());
  ASSERT_EQ(out.num_rows(), batch.num_rows());
  ASSERT_EQ(out.schema(), batch.schema());
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    std::vector<Value> want = batch.GetRow(r);
    std::vector<Value> got = out.GetRow(r);
    for (size_t c = 0; c < want.size(); ++c) {
      EXPECT_EQ(got[c].is_null(), want[c].is_null()) << r << "," << c;
      if (!want[c].is_null()) EXPECT_EQ(got[c], want[c]) << r << "," << c;
    }
  }
}

TEST(SerializationTest, EmptyBatchRoundTrip) {
  Schema schema({ColumnDef{"id", DataType::kInt64, false}});
  RecordBatch batch(schema);
  std::string buf;
  SerializeBatch(batch, &buf);
  ByteReader reader(buf);
  RecordBatch out;
  ASSERT_TRUE(DeserializeBatch(&reader, &out).ok());
  EXPECT_EQ(out.num_rows(), 0u);
  EXPECT_EQ(out.schema(), schema);
}

TEST(SerializationTest, BatchWithSelectionSerializesLogicalRows) {
  Schema schema({ColumnDef{"id", DataType::kInt64, false}});
  RecordBatch batch(schema);
  for (int64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(batch.AppendRow({Value::Int(i)}).ok());
  }
  RecordBatch view = batch.SelectView({1, 3, 5});
  std::string buf;
  SerializeBatch(view, &buf);
  ByteReader reader(buf);
  RecordBatch out;
  ASSERT_TRUE(DeserializeBatch(&reader, &out).ok());
  ASSERT_EQ(out.num_rows(), 3u);
  EXPECT_EQ(out.column(0)->int_at(0), 1);
  EXPECT_EQ(out.column(0)->int_at(1), 3);
  EXPECT_EQ(out.column(0)->int_at(2), 5);
}

TEST(SerializationTest, TruncatedBatchIsDataLoss) {
  Schema schema({ColumnDef{"note", DataType::kString, true}});
  RecordBatch batch(schema);
  ASSERT_TRUE(batch.AppendRow({Value::String("payload")}).ok());
  std::string buf;
  SerializeBatch(batch, &buf);
  ByteReader reader(buf.data(), buf.size() - 3);
  RecordBatch out;
  EXPECT_EQ(DeserializeBatch(&reader, &out).code(),
            StatusCode::kDataLoss);
}

}  // namespace
}  // namespace flock::storage
