// End-to-end execution of all 22 (dialect-adapted) TPC-H query templates
// against generated data, parameterized by template index. Each template
// is also an optimizer-equivalence property: the rule optimizer must not
// change results.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "sql/engine.h"
#include "workload/tpch.h"

namespace flock::workload {
namespace {

using storage::DataType;
using storage::Value;

std::vector<std::string> Canonicalize(const storage::RecordBatch& batch) {
  std::vector<std::string> rows;
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    std::ostringstream out;
    for (size_t c = 0; c < batch.num_columns(); ++c) {
      Value v = batch.column(c)->GetValue(r);
      if (!v.is_null() && v.type() == DataType::kDouble) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.6g", v.double_value());
        out << buf << "|";
      } else {
        out << v.ToString() << "|";
      }
    }
    rows.push_back(out.str());
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Shared database: populated once for the whole suite.
storage::Database* SharedDb() {
  static storage::Database* db = [] {
    auto* database = new storage::Database();
    TpchWorkload tpch(99);
    EXPECT_TRUE(tpch.CreateSchema(database).ok());
    EXPECT_TRUE(tpch.PopulateData(database, 120).ok());
    return database;
  }();
  return db;
}

class TpchExecutionTest : public ::testing::TestWithParam<size_t> {};

TEST_P(TpchExecutionTest, TemplateExecutesAndOptimizerAgrees) {
  TpchWorkload generator(GetParam() * 31 + 7);
  std::string query = generator.Instantiate(GetParam());

  sql::EngineOptions options;
  options.num_threads = 2;
  sql::SqlEngine engine(SharedDb(), options);

  engine.set_enable_optimizer(false);
  auto naive = engine.Execute(query);
  ASSERT_TRUE(naive.ok()) << "template " << GetParam() << ": "
                          << naive.status().ToString() << "\n" << query;
  engine.set_enable_optimizer(true);
  auto optimized = engine.Execute(query);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();

  // Queries ending in LIMIT without a total order can differ in the tail;
  // the adapted templates all ORDER BY before LIMIT, so full compare.
  EXPECT_EQ(Canonicalize(naive->batch), Canonicalize(optimized->batch))
      << "template " << GetParam() << "\n" << query;
}

INSTANTIATE_TEST_SUITE_P(AllTemplates, TpchExecutionTest,
                         ::testing::Range<size_t>(0, 22));

TEST(TpchSemanticsTest, Q1GroupsBoundedByFlagStatus) {
  sql::EngineOptions options;
  options.num_threads = 2;
  sql::SqlEngine engine(SharedDb(), options);
  TpchWorkload generator(1);
  auto r = engine.Execute(generator.Instantiate(0));
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->batch.num_rows(), 6u);  // 3 flags x 2 statuses
  EXPECT_GE(r->batch.num_rows(), 1u);
}

TEST(TpchSemanticsTest, Q6RevenueNonNegative) {
  sql::EngineOptions options;
  options.num_threads = 2;
  sql::SqlEngine engine(SharedDb(), options);
  TpchWorkload generator(2);
  auto r = engine.Execute(generator.Instantiate(5));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->batch.num_rows(), 1u);
  if (!r->batch.column(0)->IsNull(0)) {
    EXPECT_GE(r->batch.column(0)->double_at(0), 0.0);
  }
}

TEST(TpchSemanticsTest, Q13LeftJoinCoversAllCustomers) {
  sql::EngineOptions options;
  options.num_threads = 2;
  sql::SqlEngine engine(SharedDb(), options);
  auto customers = engine.Execute("SELECT COUNT(*) FROM customer");
  ASSERT_TRUE(customers.ok());
  auto r = engine.Execute(
      "SELECT c.c_custkey, COUNT(o.o_orderkey) AS c_count FROM customer c "
      "LEFT JOIN orders o ON c.c_custkey = o.o_custkey "
      "GROUP BY c.c_custkey");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(static_cast<int64_t>(r->batch.num_rows()),
            customers->batch.column(0)->int_at(0));
}

TEST(TpchSemanticsTest, Q16DistinctSupplierCount) {
  sql::EngineOptions options;
  options.num_threads = 2;
  sql::SqlEngine engine(SharedDb(), options);
  auto r = engine.Execute(
      "SELECT COUNT(DISTINCT ps_suppkey), COUNT(ps_suppkey) "
      "FROM partsupp");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Distinct count <= raw count, and bounded by the supplier population.
  EXPECT_LE(r->batch.column(0)->int_at(0), r->batch.column(1)->int_at(0));
  auto suppliers = engine.Execute("SELECT COUNT(*) FROM supplier");
  EXPECT_LE(r->batch.column(0)->int_at(0),
            suppliers->batch.column(0)->int_at(0));
}

TEST(TpchSemanticsTest, AggregatesConsistentAcrossFormulations) {
  sql::EngineOptions options;
  options.num_threads = 2;
  sql::SqlEngine engine(SharedDb(), options);
  // SUM over groups == global SUM.
  auto grouped = engine.Execute(
      "SELECT l_returnflag, SUM(l_quantity) AS q FROM lineitem "
      "GROUP BY l_returnflag");
  auto global = engine.Execute("SELECT SUM(l_quantity) FROM lineitem");
  ASSERT_TRUE(grouped.ok());
  ASSERT_TRUE(global.ok());
  double sum = 0;
  for (size_t i = 0; i < grouped->batch.num_rows(); ++i) {
    sum += grouped->batch.column(1)->double_at(i);
  }
  EXPECT_NEAR(sum, global->batch.column(0)->double_at(0), 1e-6);
}

}  // namespace
}  // namespace flock::workload
