// Tests for the replication subsystem (src/repl/): wire codec, the
// publisher that tails a primary's data directory, the replica applier
// (bootstrap, catch-up streaming, re-bootstrap after checkpoints,
// sticky health), read-only replica semantics (Redirect for writes,
// bounded-staleness admission), and the coordinator (registration, lag
// reports, failover with epoch fencing).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "flock/flock_engine.h"
#include "ml/tree.h"
#include "obs/metrics_registry.h"
#include "repl/applier.h"
#include "repl/coordinator.h"
#include "repl/metrics.h"
#include "repl/publisher.h"
#include "repl/replication.h"
#include "repl/wire.h"
#include "serve/server.h"
#include "storage/schema.h"
#include "wal/fault_injector.h"
#include "wal/wal_record.h"

namespace flock::repl {
namespace {

std::string MakeTempDir() {
  char tmpl[] = "/tmp/flock_repl_test_XXXXXX";
  char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return std::string(dir);
}

flock::FlockEngineOptions SerialEngineOptions() {
  flock::FlockEngineOptions options;
  options.sql.num_threads = 1;
  return options;
}

/// The fixed primary workload: DDL, multi-row inserts, updates, deletes
/// across two tables — the same shape the crash-recovery suite replays.
const std::vector<std::string>& SetupStatements() {
  static const std::vector<std::string> statements = {
      "CREATE TABLE kv (k INT, v DOUBLE, tag VARCHAR)",
      "INSERT INTO kv VALUES (1, 1.5, 'a'), (2, 2.5, 'b'), (3, 3.5, 'c')",
      "INSERT INTO kv VALUES (4, 4.5, 'd')",
      "UPDATE kv SET v = 40.0 WHERE k = 4",
      "DELETE FROM kv WHERE k = 2",
      "CREATE TABLE notes (id INT, note VARCHAR)",
      "INSERT INTO notes VALUES (1, 'first')",
  };
  return statements;
}

Status RunStatements(flock::FlockEngine* engine,
                     const std::vector<std::string>& statements) {
  for (const std::string& sql : statements) {
    auto result = engine->Execute(sql);
    if (!result.ok()) return result.status();
  }
  return Status::OK();
}

/// Canonical text rendering of all replicated state the workload touches.
std::string Digest(flock::FlockEngine* engine) {
  std::string digest;
  for (const char* sql : {"SELECT k, v, tag FROM kv ORDER BY k",
                          "SELECT id, note FROM notes ORDER BY id"}) {
    auto result = engine->Execute(sql);
    if (!result.ok()) {
      digest += std::string("ERR ") + sql + ": " +
                result.status().ToString() + "\n";
      continue;
    }
    digest += result->batch.ToString(10000) + "\n";
  }
  return digest;
}

/// Tiny trained pipeline over (x DOUBLE) for model-replication tests.
ml::Pipeline TinyPipeline() {
  ml::Pipeline pipeline;
  pipeline.SetInputs({ml::FeatureSpec{"x", ml::FeatureKind::kNumeric, {}}});
  pipeline.set_task(ml::ModelTask::kBinaryClassification);
  ml::Matrix raw(32, 1);
  std::vector<double> labels(32);
  Random rng(13);
  for (size_t i = 0; i < 32; ++i) {
    raw.at(i, 0) = rng.NextDouble() * 10;
    labels[i] = raw.at(i, 0) > 5 ? 1.0 : 0.0;
  }
  pipeline.FitFeaturizers(raw, true, true);
  ml::Dataset features;
  features.x = pipeline.Transform(raw);
  features.y = labels;
  ml::GbtOptions gbt;
  gbt.num_trees = 4;
  gbt.max_depth = 2;
  pipeline.SetTreeModel(ml::TrainGradientBoosting(features, gbt));
  return pipeline;
}

/// A primary + replica pair sharing one data directory: the publisher
/// reads the primary's files, the applier drives the replica engine.
struct ReplicaPair {
  std::string dir;
  std::unique_ptr<flock::FlockEngine> primary;
  std::unique_ptr<flock::FlockEngine> replica;
  std::unique_ptr<ReplicationPublisher> publisher;
  std::unique_ptr<ReplicaApplier> applier;
};

ReplicaPair MakePair(ReplicaApplierOptions applier_options = {}) {
  ReplicaPair pair;
  pair.dir = MakeTempDir();
  pair.primary = std::make_unique<flock::FlockEngine>(SerialEngineOptions());
  EXPECT_TRUE(pair.primary->Open(pair.dir).ok());
  pair.replica = std::make_unique<flock::FlockEngine>(SerialEngineOptions());
  EXPECT_TRUE(pair.replica->OpenAsReplica().ok());
  pair.publisher = std::make_unique<ReplicationPublisher>(pair.dir);
  pair.applier = std::make_unique<ReplicaApplier>(
      pair.replica.get(), pair.publisher.get(), applier_options);
  return pair;
}

// ---------------------------------------------------------------------
// Wire codec.
// ---------------------------------------------------------------------

TEST(ReplWireTest, HexRoundTripsAllByteValues) {
  std::string bytes;
  for (int b = 0; b < 256; ++b) bytes.push_back(static_cast<char>(b));
  std::string hex = HexEncode(bytes);
  EXPECT_EQ(hex.size(), 512u);
  auto decoded = HexDecode(hex);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, bytes);
}

TEST(ReplWireTest, HexDecodeRejectsMalformedInput) {
  EXPECT_FALSE(HexDecode("abc").ok());   // odd length
  EXPECT_FALSE(HexDecode("zz").ok());    // non-hex digit
  auto empty = HexDecode("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(ReplWireTest, RecordFrameRoundTrip) {
  storage::Schema schema({{"k", storage::DataType::kInt64, false}});
  std::vector<wal::WalRecord> records;
  records.push_back(wal::WalRecord::CreateTable("t", schema));
  records.push_back(wal::WalRecord::DropTable("t"));
  records.push_back(
      wal::WalRecord::DeployModel("m", "pipe", "alice", "train.py"));
  for (const wal::WalRecord& record : records) {
    std::string frame = EncodeRecordFrame(record);
    auto decoded = DecodeRecordFrame(frame);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->type, record.type);
    // Re-encoding the decoded record reproduces the frame bit-for-bit.
    EXPECT_EQ(EncodeRecordFrame(*decoded), frame);
  }
  EXPECT_FALSE(DecodeRecordFrame("q1").ok());
  EXPECT_FALSE(DecodeRecordFrame("").ok());
}

TEST(ReplWireTest, ParseReplCommandForms) {
  EXPECT_EQ(ParseReplCommand("status").kind, ReplCommand::Kind::kStatus);
  EXPECT_EQ(ParseReplCommand("bootstrap").kind,
            ReplCommand::Kind::kBootstrap);
  ReplCommand fetch = ParseReplCommand("fetch 3 17 256");
  ASSERT_EQ(fetch.kind, ReplCommand::Kind::kFetch);
  EXPECT_EQ(fetch.from.epoch, 3u);
  EXPECT_EQ(fetch.from.lsn, 17u);
  EXPECT_EQ(fetch.max_records, 256u);
  for (const char* bad :
       {"", "fetch", "fetch 1", "fetch 1 2", "fetch a b c", "nonsense"}) {
    EXPECT_EQ(ParseReplCommand(bad).kind, ReplCommand::Kind::kInvalid)
        << bad;
  }
}

TEST(ReplWireTest, StatusResponseRoundTrip) {
  std::string text = EncodeStatusResponse("primary", {7, 42});
  auto parsed = ParseStatusResponse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->role, "primary");
  EXPECT_EQ(parsed->position.epoch, 7u);
  EXPECT_EQ(parsed->position.lsn, 42u);
  EXPECT_FALSE(ParseStatusResponse("REPL STATUS primary 7\n").ok());
}

TEST(ReplWireTest, BootstrapResponseRoundTrip) {
  BootstrapResult bootstrap;
  bootstrap.snapshot.epoch = 5;
  bootstrap.position = {5, 0};
  std::string text = EncodeBootstrapResponse(bootstrap);
  auto parsed = ParseBootstrapResponse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->snapshot.epoch, 5u);
  EXPECT_EQ(parsed->position.epoch, 5u);
  EXPECT_EQ(parsed->position.lsn, 0u);
  EXPECT_GT(parsed->bytes, 0u);
}

TEST(ReplWireTest, FetchResponseRoundTrip) {
  storage::Schema schema({{"k", storage::DataType::kInt64, false}});
  FetchResult fetch;
  fetch.records.push_back(wal::WalRecord::CreateTable("t", schema));
  fetch.records.push_back(wal::WalRecord::DropTable("t"));
  fetch.next = {2, 9};
  fetch.end_of_log = true;
  fetch.snapshot_required = false;
  std::string text = EncodeFetchResponse(fetch);
  auto parsed = ParseFetchResponse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->records.size(), 2u);
  EXPECT_EQ(parsed->records[0].type, wal::WalRecordType::kCreateTable);
  EXPECT_EQ(parsed->records[1].type, wal::WalRecordType::kDropTable);
  EXPECT_EQ(parsed->next.epoch, 2u);
  EXPECT_EQ(parsed->next.lsn, 9u);
  EXPECT_TRUE(parsed->end_of_log);
  EXPECT_FALSE(parsed->snapshot_required);
  EXPECT_GT(parsed->bytes, 0u);
}

// ---------------------------------------------------------------------
// Publisher: catch-up + streaming from a primary's data directory.
// ---------------------------------------------------------------------

TEST(PublisherTest, BootstrapOnFreshDirIsEmptySnapshotAtEpochOne) {
  std::string dir = MakeTempDir();
  flock::FlockEngine primary(SerialEngineOptions());
  ASSERT_TRUE(primary.Open(dir).ok());

  ReplicationPublisher publisher(dir);
  auto bootstrap = publisher.Bootstrap();
  ASSERT_TRUE(bootstrap.ok()) << bootstrap.status().ToString();
  EXPECT_EQ(bootstrap->position.epoch, 1u);
  EXPECT_EQ(bootstrap->position.lsn, 0u);
  EXPECT_TRUE(bootstrap->snapshot.tables.empty());
}

TEST(PublisherTest, StreamsCommittedRecordsToEndOfLog) {
  std::string dir = MakeTempDir();
  flock::FlockEngine primary(SerialEngineOptions());
  ASSERT_TRUE(primary.Open(dir).ok());
  ASSERT_TRUE(RunStatements(&primary, SetupStatements()).ok());

  ReplicationPublisher publisher(dir);
  auto fetch = publisher.Fetch({1, 0}, 1000);
  ASSERT_TRUE(fetch.ok()) << fetch.status().ToString();
  EXPECT_EQ(fetch->records.size(), SetupStatements().size());
  EXPECT_TRUE(fetch->end_of_log);
  EXPECT_FALSE(fetch->snapshot_required);
  EXPECT_EQ(fetch->next.epoch, 1u);
  EXPECT_EQ(fetch->next.lsn, SetupStatements().size());
  EXPECT_GT(fetch->bytes, 0u);

  // Fetching from the end again: empty round, still end-of-log.
  auto drained = publisher.Fetch(fetch->next, 1000);
  ASSERT_TRUE(drained.ok());
  EXPECT_TRUE(drained->records.empty());
  EXPECT_TRUE(drained->end_of_log);
}

TEST(PublisherTest, FetchFromTruncatedEpochRequiresSnapshot) {
  std::string dir = MakeTempDir();
  flock::FlockEngine primary(SerialEngineOptions());
  ASSERT_TRUE(primary.Open(dir).ok());
  ASSERT_TRUE(RunStatements(&primary, SetupStatements()).ok());
  ASSERT_TRUE(primary.Checkpoint().ok());  // WAL truncated, epoch 2

  ReplicationPublisher publisher(dir);
  auto fetch = publisher.Fetch({1, 2}, 1000);
  ASSERT_TRUE(fetch.ok()) << fetch.status().ToString();
  EXPECT_TRUE(fetch->snapshot_required);
  EXPECT_TRUE(fetch->records.empty());

  // And the fresh bootstrap lands in the post-checkpoint epoch.
  auto bootstrap = publisher.Bootstrap();
  ASSERT_TRUE(bootstrap.ok());
  EXPECT_EQ(bootstrap->position.epoch, 2u);
  EXPECT_FALSE(bootstrap->snapshot.tables.empty());
}

TEST(PublisherTest, DurableEndTracksCommittedAppends) {
  std::string dir = MakeTempDir();
  flock::FlockEngine primary(SerialEngineOptions());
  ASSERT_TRUE(primary.Open(dir).ok());

  ReplicationPublisher publisher(dir);
  auto end = publisher.DurableEnd();
  ASSERT_TRUE(end.ok()) << end.status().ToString();
  EXPECT_EQ(end->epoch, 1u);
  EXPECT_EQ(end->lsn, 0u);

  ASSERT_TRUE(RunStatements(&primary, SetupStatements()).ok());
  end = publisher.DurableEnd();
  ASSERT_TRUE(end.ok());
  EXPECT_EQ(end->lsn, SetupStatements().size());
  // The engine's own epoch-local LSN agrees with the on-disk probe.
  EXPECT_EQ(primary.durability()->lsn(), end->lsn);
}

TEST(PublisherTest, ServesCatchUpFromADeadPrimarysFiles) {
  std::string dir = MakeTempDir();
  std::string before;
  {
    flock::FlockEngine primary(SerialEngineOptions());
    ASSERT_TRUE(primary.Open(dir).ok());
    ASSERT_TRUE(RunStatements(&primary, SetupStatements()).ok());
    before = Digest(&primary);
  }  // primary gone; only its files remain — the failover scenario

  flock::FlockEngine replica(SerialEngineOptions());
  ASSERT_TRUE(replica.OpenAsReplica().ok());
  ReplicationPublisher publisher(dir);
  ReplicaApplier applier(&replica, &publisher);
  ASSERT_TRUE(applier.CatchUp().ok());
  EXPECT_EQ(Digest(&replica), before);
}

// ---------------------------------------------------------------------
// Applier + replica engine.
// ---------------------------------------------------------------------

TEST(ReplicaTest, BootstrapAndCatchUpMatchPrimary) {
  ReplicaPair pair = MakePair();
  ASSERT_TRUE(RunStatements(pair.primary.get(), SetupStatements()).ok());

  ASSERT_TRUE(pair.applier->CatchUp().ok());
  EXPECT_EQ(Digest(pair.replica.get()), Digest(pair.primary.get()));
  EXPECT_TRUE(pair.applier->caught_up());
  EXPECT_EQ(pair.applier->lag_records(), 0u);
  EXPECT_EQ(pair.applier->applied().epoch, 1u);
  EXPECT_EQ(pair.applier->applied().lsn, SetupStatements().size());
  EXPECT_EQ(pair.applier->records_applied(), SetupStatements().size());
  EXPECT_EQ(pair.applier->bootstraps(), 1u);
  EXPECT_GT(pair.applier->bytes_received(), 0u);
  EXPECT_TRUE(pair.applier->health().ok());
}

TEST(ReplicaTest, IncrementalStreamingAppliesNewWrites) {
  ReplicaPair pair = MakePair();
  ASSERT_TRUE(RunStatements(pair.primary.get(), SetupStatements()).ok());
  ASSERT_TRUE(pair.applier->CatchUp().ok());

  ASSERT_TRUE(
      pair.primary->Execute("INSERT INTO kv VALUES (9, 9.5, 'z')").ok());
  ASSERT_TRUE(pair.primary->Execute("DELETE FROM notes WHERE id = 1").ok());
  auto round = pair.applier->CatchUpOnce();
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(*round, 2u);
  EXPECT_EQ(Digest(pair.replica.get()), Digest(pair.primary.get()));
}

TEST(ReplicaTest, PrimaryCheckpointTriggersReBootstrap) {
  ReplicaPair pair = MakePair();
  ASSERT_TRUE(RunStatements(pair.primary.get(), SetupStatements()).ok());
  ASSERT_TRUE(pair.applier->CatchUp().ok());
  ASSERT_EQ(pair.applier->bootstraps(), 1u);

  // Checkpoint truncates the epoch-1 log the replica was tailing; the
  // next rounds must re-bootstrap from the snapshot and keep going.
  ASSERT_TRUE(pair.primary->Checkpoint().ok());
  ASSERT_TRUE(
      pair.primary->Execute("INSERT INTO kv VALUES (10, 0.5, 'n')").ok());
  ASSERT_TRUE(pair.applier->CatchUp().ok());
  EXPECT_EQ(pair.applier->bootstraps(), 2u);
  EXPECT_EQ(pair.applier->applied().epoch, 2u);
  EXPECT_EQ(Digest(pair.replica.get()), Digest(pair.primary.get()));
}

TEST(ReplicaTest, ModelsReplicateAndScoreIdentically) {
  ReplicaPair pair = MakePair();
  ASSERT_TRUE(
      pair.primary->Execute("CREATE TABLE points (id INT, x DOUBLE)").ok());
  ASSERT_TRUE(pair.primary
                  ->Execute("INSERT INTO points VALUES (1, 1.0), (2, 6.0), "
                            "(3, 9.0), (4, 4.0)")
                  .ok());
  ASSERT_TRUE(pair.primary
                  ->DeployModel("scorer", TinyPipeline(), "tester",
                                "tests/repl_test")
                  .ok());
  ASSERT_TRUE(pair.applier->CatchUp().ok());

  const char* score =
      "SELECT id, PREDICT(scorer, x) FROM points ORDER BY id";
  auto on_primary = pair.primary->Execute(score);
  ASSERT_TRUE(on_primary.ok()) << on_primary.status().ToString();
  auto on_replica = pair.replica->Execute(score);
  ASSERT_TRUE(on_replica.ok()) << on_replica.status().ToString();
  EXPECT_EQ(on_replica->batch.ToString(100), on_primary->batch.ToString(100));

  // The derived model-catalog view is rebuilt on the replica too.
  auto models = pair.replica->Execute("SELECT name FROM flock_models");
  ASSERT_TRUE(models.ok()) << models.status().ToString();
  ASSERT_EQ(models->batch.num_rows(), 1u);
  EXPECT_EQ(models->batch.GetRow(0)[0].string_value(), "scorer");

  // DROP MODEL replicates and invalidates the replica's cached plans.
  ASSERT_TRUE(pair.primary->Execute("DROP MODEL scorer").ok());
  ASSERT_TRUE(pair.applier->CatchUp().ok());
  EXPECT_FALSE(pair.replica->Execute(score).ok());
}

TEST(ReplicaTest, WritesAndDdlRedirectToPrimary) {
  ReplicaPair pair = MakePair();
  ASSERT_TRUE(RunStatements(pair.primary.get(), SetupStatements()).ok());
  ASSERT_TRUE(pair.applier->CatchUp().ok());

  for (const char* sql :
       {"INSERT INTO kv VALUES (99, 1.0, 'x')",
        "UPDATE kv SET v = 0.0 WHERE k = 1", "DELETE FROM kv WHERE k = 1",
        "CREATE TABLE other (id INT)", "DROP TABLE kv"}) {
    auto result = pair.replica->Execute(sql);
    ASSERT_FALSE(result.ok()) << sql;
    EXPECT_EQ(result.status().code(), StatusCode::kRedirect) << sql;
    EXPECT_NE(result.status().message().find("primary"), std::string::npos);
  }
  // Reads and EXPLAIN stay local.
  EXPECT_TRUE(pair.replica->Execute("SELECT COUNT(*) FROM kv").ok());
  EXPECT_TRUE(
      pair.replica->Execute("EXPLAIN SELECT COUNT(*) FROM kv").ok());
  // Scripts and direct model deploys are write paths too.
  EXPECT_FALSE(
      pair.replica->ExecuteScript("SELECT 1 FROM kv; SELECT 2 FROM kv")
          .ok());
  EXPECT_FALSE(pair.replica
                   ->DeployModel("m", TinyPipeline(), "t", "repl_test")
                   .ok());
  // Nothing leaked through: the replica still matches the primary.
  EXPECT_EQ(Digest(pair.replica.get()), Digest(pair.primary.get()));
}

TEST(ReplicaTest, ApplierSeesOnlyCommittedRecordsAfterTornAppend) {
  ReplicaPair pair = MakePair();
  ASSERT_TRUE(RunStatements(pair.primary.get(), SetupStatements()).ok());
  std::string committed = Digest(pair.primary.get());

  // The primary dies mid-append: half a frame lands. The statement never
  // committed, so the replica must not see any part of it.
  wal::FaultInjector::Get()->Arm("wal.append.partial_write",
                                 wal::FaultInjector::Mode::kError);
  EXPECT_FALSE(
      pair.primary->Execute("INSERT INTO kv VALUES (66, 6.0, 'torn')").ok());
  wal::FaultInjector::Get()->Disarm();

  ASSERT_TRUE(pair.applier->CatchUp().ok());
  EXPECT_EQ(Digest(pair.replica.get()), committed);
  EXPECT_TRUE(pair.applier->health().ok());
}

TEST(ReplicaTest, BackgroundStreamingConverges) {
  ReplicaApplierOptions options;
  options.poll_interval_ms = 1;
  ReplicaPair pair = MakePair(options);
  ASSERT_TRUE(RunStatements(pair.primary.get(), SetupStatements()).ok());

  pair.applier->Start();
  pair.applier->Start();  // idempotent
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(pair.primary
                    ->Execute("INSERT INTO notes VALUES (" +
                              std::to_string(100 + i) + ", 'bg')")
                    .ok());
  }
  size_t expected = SetupStatements().size() + 10;
  for (int spin = 0; spin < 2000; ++spin) {
    if (pair.applier->records_applied() >= expected &&
        pair.applier->caught_up()) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  pair.applier->Stop();
  pair.applier->Stop();  // idempotent
  EXPECT_EQ(pair.applier->records_applied(), expected);
  EXPECT_EQ(Digest(pair.replica.get()), Digest(pair.primary.get()));
}

TEST(ReplicaTest, StalenessGateShedsUntilCaughtUp) {
  ReplicaApplierOptions options;
  options.batch_records = 1;  // one record per round: lag is observable
  ReplicaPair pair = MakePair(options);
  ASSERT_TRUE(RunStatements(pair.primary.get(), SetupStatements()).ok());

  // One round: bootstrap + 1 of 7 records. The probe after the partial
  // round must expose the true durable end, i.e. a real lag.
  ASSERT_TRUE(pair.applier->Bootstrap().ok());
  auto round = pair.applier->CatchUpOnce();
  ASSERT_TRUE(round.ok());
  ASSERT_EQ(*round, 1u);
  uint64_t lag = pair.applier->lag_records();
  ASSERT_EQ(lag, SetupStatements().size() - 1);

  // Serve through the replica with a zero-staleness bound: reads shed
  // with Unavailable while behind, admit once caught up. This is the
  // exact read_gate wiring examples/flock_server.cc uses.
  serve::ServerOptions server_options;
  ReplicaApplier* applier = pair.applier.get();
  server_options.read_gate = [applier]() -> Status {
    uint64_t behind = applier->lag_records();
    if (behind == 0) return Status::OK();
    return Status::Unavailable("replica lag " + std::to_string(behind) +
                               " records exceeds staleness bound 0");
  };
  serve::PredictionServer server(pair.replica.get(), server_options);
  serve::LoopbackClient client(&server);
  ASSERT_TRUE(client.status().ok());

  auto stale = client.Execute("SELECT COUNT(*) FROM kv");
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(stale.status().message().find("staleness"), std::string::npos);

  ASSERT_TRUE(pair.applier->CatchUp().ok());
  EXPECT_EQ(pair.applier->lag_records(), 0u);
  auto fresh = client.Execute("SELECT COUNT(*) FROM kv");
  EXPECT_TRUE(fresh.ok()) << fresh.status().ToString();
  server.Shutdown();
}

TEST(ReplicaTest, ServingPathRedirectsWritesWithRedirectStatus) {
  ReplicaPair pair = MakePair();
  ASSERT_TRUE(RunStatements(pair.primary.get(), SetupStatements()).ok());
  ASSERT_TRUE(pair.applier->CatchUp().ok());

  serve::PredictionServer server(pair.replica.get());
  serve::LoopbackClient client(&server);
  ASSERT_TRUE(client.status().ok());
  auto write = client.Execute("INSERT INTO kv VALUES (5, 5.0, 'w')");
  ASSERT_FALSE(write.ok());
  EXPECT_EQ(write.status().code(), StatusCode::kRedirect);
  auto read = client.Execute("SELECT COUNT(*) FROM kv");
  EXPECT_TRUE(read.ok()) << read.status().ToString();
  server.Shutdown();
}

// ---------------------------------------------------------------------
// Metrics.
// ---------------------------------------------------------------------

TEST(ReplMetricsTest, ReplicaAndCoordinatorMetricsExpose) {
  ReplicaPair pair = MakePair();
  ASSERT_TRUE(RunStatements(pair.primary.get(), SetupStatements()).ok());
  ASSERT_TRUE(pair.applier->CatchUp().ok());

  obs::MetricsRegistry registry;
  RegisterReplicaMetrics(&registry, pair.applier.get());
  ReplicationCoordinator coordinator;
  ASSERT_TRUE(coordinator.AttachPrimary(pair.primary.get()).ok());
  ASSERT_TRUE(coordinator
                  .AddReplica("r1", pair.replica.get(), pair.applier.get())
                  .ok());
  RegisterCoordinatorMetrics(&registry, &coordinator);

  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"repl\": {"), std::string::npos) << json;
  EXPECT_NE(json.find("\"applied_lsn\": " +
                      std::to_string(SetupStatements().size())),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"replica_lag_records\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"replicas\": 1"), std::string::npos);

  std::string prom = registry.ToPrometheus();
  EXPECT_NE(prom.find("# TYPE flock_repl_records_applied counter"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("flock_repl_applied_lsn "), std::string::npos);
  EXPECT_NE(prom.find("flock_repl_failovers 0"), std::string::npos);
}

// ---------------------------------------------------------------------
// Coordinator: registration, lags, failover + fencing.
// ---------------------------------------------------------------------

TEST(CoordinatorTest, AttachRequiresADurablePrimary) {
  flock::FlockEngine memory_only(SerialEngineOptions());
  ReplicationCoordinator coordinator;
  EXPECT_FALSE(coordinator.AttachPrimary(&memory_only).ok());
  EXPECT_EQ(coordinator.primary(), nullptr);
}

TEST(CoordinatorTest, RegistrationLagsAndDetach) {
  ReplicaPair pair = MakePair();
  ASSERT_TRUE(RunStatements(pair.primary.get(), SetupStatements()).ok());
  ASSERT_TRUE(pair.applier->CatchUp().ok());

  ReplicationCoordinator coordinator;
  ASSERT_TRUE(coordinator.AttachPrimary(pair.primary.get()).ok());
  EXPECT_EQ(coordinator.primary(), pair.primary.get());

  // Only replica-mode engines register as replicas.
  EXPECT_FALSE(coordinator
                   .AddReplica("bad", pair.primary.get(), pair.applier.get())
                   .ok());
  ASSERT_TRUE(coordinator
                  .AddReplica("r1", pair.replica.get(), pair.applier.get())
                  .ok());
  EXPECT_EQ(coordinator
                .AddReplica("r1", pair.replica.get(), pair.applier.get())
                .code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(coordinator.num_replicas(), 1u);

  std::vector<ReplicaLag> lags = coordinator.Lags();
  ASSERT_EQ(lags.size(), 1u);
  EXPECT_EQ(lags[0].name, "r1");
  EXPECT_EQ(lags[0].lag_records, 0u);
  EXPECT_TRUE(lags[0].caught_up);
  EXPECT_EQ(lags[0].applied.lsn, SetupStatements().size());
  EXPECT_EQ(lags[0].health, "OK");

  ASSERT_TRUE(coordinator.Detach("r1").ok());
  EXPECT_EQ(coordinator.num_replicas(), 0u);
  EXPECT_EQ(coordinator.Detach("r1").code(), StatusCode::kNotFound);
}

TEST(CoordinatorTest, PromoteUnknownReplicaIsNotFound) {
  ReplicationCoordinator coordinator;
  EXPECT_EQ(coordinator.Promote("ghost", MakeTempDir()).code(),
            StatusCode::kNotFound);
}

TEST(CoordinatorTest, FailoverPromotesCaughtUpReplicaAndFencesOldPrimary) {
  ReplicaPair pair = MakePair();
  ASSERT_TRUE(RunStatements(pair.primary.get(), SetupStatements()).ok());
  std::string committed = Digest(pair.primary.get());
  uint64_t old_epoch = pair.primary->durability()->epoch();

  ReplicationCoordinator coordinator;
  ASSERT_TRUE(coordinator.AttachPrimary(pair.primary.get()).ok());
  ASSERT_TRUE(coordinator
                  .AddReplica("r1", pair.replica.get(), pair.applier.get())
                  .ok());
  // Replica is mid-stream (not caught up) when the primary dies.
  ASSERT_TRUE(pair.applier->Bootstrap().ok());

  pair.primary.reset();  // the primary process is gone; files remain
  coordinator.DetachPrimary();

  // Promote drains the remaining log from the dead primary's directory,
  // then turns the replica durable in a fresh dir with a fenced epoch.
  std::string new_dir = MakeTempDir();
  Status promoted = coordinator.Promote("r1", new_dir);
  ASSERT_TRUE(promoted.ok()) << promoted.ToString();
  EXPECT_EQ(coordinator.failovers(), 1u);
  EXPECT_EQ(coordinator.num_replicas(), 0u);
  EXPECT_EQ(coordinator.primary(), pair.replica.get());
  EXPECT_GE(coordinator.fence_epoch(), old_epoch);

  // No committed write was lost, and the promoted node is a full
  // primary: durable, writable, and strictly ahead of the old epoch.
  EXPECT_FALSE(pair.replica->replica());
  EXPECT_TRUE(pair.replica->durable());
  EXPECT_EQ(Digest(pair.replica.get()), committed);
  EXPECT_GT(pair.replica->durability()->epoch(), old_epoch);
  ASSERT_TRUE(
      pair.replica->Execute("INSERT INTO kv VALUES (11, 1.1, 'post')").ok());

  // The deposed primary's files reopen fine — but the coordinator
  // refuses to re-attach it: its epoch is at or below the fence.
  flock::FlockEngine deposed(SerialEngineOptions());
  ASSERT_TRUE(deposed.Open(pair.dir).ok());
  Status attach = coordinator.AttachPrimary(&deposed);
  ASSERT_FALSE(attach.ok());
  EXPECT_EQ(attach.code(), StatusCode::kAborted);
  EXPECT_NE(attach.message().find("fenced"), std::string::npos);

  // The promoted primary re-attaches, and its state survives restart.
  ASSERT_TRUE(coordinator.AttachPrimary(pair.replica.get()).ok());
  std::string after = Digest(pair.replica.get());
  pair.replica.reset();
  flock::FlockEngine restarted(SerialEngineOptions());
  ASSERT_TRUE(restarted.Open(new_dir).ok());
  EXPECT_EQ(Digest(&restarted), after);
}

TEST(CoordinatorTest, PromotedReplicaCanSeedANewReplica) {
  // The full failover circle: primary -> replica -> promoted primary ->
  // fresh replica streaming from the promoted node's directory.
  ReplicaPair pair = MakePair();
  ASSERT_TRUE(RunStatements(pair.primary.get(), SetupStatements()).ok());

  ReplicationCoordinator coordinator;
  ASSERT_TRUE(coordinator.AttachPrimary(pair.primary.get()).ok());
  ASSERT_TRUE(coordinator
                  .AddReplica("r1", pair.replica.get(), pair.applier.get())
                  .ok());
  pair.primary.reset();
  coordinator.DetachPrimary();
  std::string new_dir = MakeTempDir();
  ASSERT_TRUE(coordinator.Promote("r1", new_dir).ok());
  ASSERT_TRUE(
      pair.replica->Execute("INSERT INTO kv VALUES (12, 2.1, 'new')").ok());

  flock::FlockEngine second(SerialEngineOptions());
  ASSERT_TRUE(second.OpenAsReplica().ok());
  ReplicationPublisher publisher(new_dir);
  ReplicaApplier applier(&second, &publisher);
  ASSERT_TRUE(applier.CatchUp().ok());
  EXPECT_EQ(Digest(&second), Digest(pair.replica.get()));
}

}  // namespace
}  // namespace flock::repl
