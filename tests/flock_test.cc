#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "common/random.h"
#include "flock/flock_engine.h"
#include "flock/scoring.h"
#include "ml/tree.h"

namespace flock::flock {
namespace {

using storage::DataType;
using storage::Value;

/// Trains a GBDT churn pipeline over (age, income, tenure, clicks, 4 noise
/// columns, plan) and loads matching rows into a `users` table.
class FlockEngineTest : public ::testing::Test {
 protected:
  static constexpr size_t kNumeric = 8;  // 4 signal + 4 noise
  static constexpr size_t kRows = 4000;

  FlockEngineTest() : engine_(MakeOptions()) {
    BuildTableAndModel();
  }

  static FlockEngineOptions MakeOptions() {
    FlockEngineOptions options;
    options.sql.num_threads = 2;
    return options;
  }

  void BuildTableAndModel() {
    auto r = engine_.Execute(
        "CREATE TABLE users (id INT, age DOUBLE, income DOUBLE, "
        "tenure DOUBLE, clicks DOUBLE, n0 DOUBLE, n1 DOUBLE, n2 DOUBLE, "
        "n3 DOUBLE, plan VARCHAR)");
    ASSERT_TRUE(r.ok()) << r.status().ToString();

    Random rng(2024);
    const char* plans[] = {"basic", "plus", "pro"};
    ml::Matrix raw(kRows, kNumeric + 1);
    std::vector<double> labels(kRows);

    auto table = engine_.database()->GetTable("users");
    ASSERT_TRUE(table.ok());
    storage::RecordBatch batch((*table)->schema());
    for (size_t i = 0; i < kRows; ++i) {
      double age = 20 + rng.NextDouble() * 50;
      double income = 30 + rng.NextDouble() * 120;
      double tenure = rng.NextDouble() * 10;
      double clicks = rng.NextDouble() * 100;
      size_t plan = rng.Uniform(3);
      raw.at(i, 0) = age;
      raw.at(i, 1) = income;
      raw.at(i, 2) = tenure;
      raw.at(i, 3) = clicks;
      for (size_t c = 4; c < kNumeric; ++c) {
        raw.at(i, c) = rng.NextGaussian();
      }
      raw.at(i, kNumeric) = static_cast<double>(plan);
      double z = 0.08 * (age - 45) - 0.02 * (income - 90) -
                 0.4 * tenure + 0.03 * clicks +
                 (plan == 0 ? 1.0 : (plan == 1 ? 0.0 : -1.0)) +
                 rng.NextGaussian() * 0.3;
      labels[i] = z > 0 ? 1.0 : 0.0;
      ASSERT_TRUE(batch
                      .AppendRow({Value::Int(static_cast<int64_t>(i)),
                                  Value::Double(age), Value::Double(income),
                                  Value::Double(tenure),
                                  Value::Double(clicks),
                                  Value::Double(raw.at(i, 4)),
                                  Value::Double(raw.at(i, 5)),
                                  Value::Double(raw.at(i, 6)),
                                  Value::Double(raw.at(i, 7)),
                                  Value::String(plans[plan])})
                      .ok());
    }
    ASSERT_TRUE((*table)->AppendBatch(batch).ok());

    std::vector<ml::FeatureSpec> specs;
    const char* names[] = {"age",    "income", "tenure", "clicks",
                           "n0",     "n1",     "n2",     "n3"};
    for (const char* n : names) {
      specs.push_back(ml::FeatureSpec{n, ml::FeatureKind::kNumeric, {}});
    }
    specs.push_back(ml::FeatureSpec{
        "plan", ml::FeatureKind::kCategorical, {"basic", "plus", "pro"}});

    pipeline_.SetInputs(specs);
    pipeline_.set_task(ml::ModelTask::kBinaryClassification);
    pipeline_.FitFeaturizers(raw, true, true);
    ml::Dataset features;
    features.x = pipeline_.Transform(raw);
    features.y = labels;
    ml::GbtOptions gbt;
    gbt.num_trees = 20;
    gbt.max_depth = 4;
    pipeline_.SetTreeModel(ml::TrainGradientBoosting(features, gbt));
    ASSERT_TRUE(engine_.DeployModel("churn", pipeline_, "tester",
                                    "train-run-1")
                    .ok());
  }

  sql::QueryResult Exec(const std::string& sql) {
    auto result = engine_.Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    return result.ok() ? std::move(result).value() : sql::QueryResult{};
  }

  static std::string PredictCall() {
    return "PREDICT(churn, age, income, tenure, clicks, n0, n1, n2, n3, "
           "plan)";
  }

  FlockEngine engine_;
  ml::Pipeline pipeline_;
};

TEST_F(FlockEngineTest, PredictInProjection) {
  auto r = Exec("SELECT id, " + PredictCall() +
                " AS score FROM users LIMIT 5");
  ASSERT_EQ(r.batch.num_rows(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    double s = r.batch.column(1)->double_at(i);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST_F(FlockEngineTest, PredictMatchesPipelineScoreRow) {
  auto r = Exec("SELECT age, income, tenure, clicks, n0, n1, n2, n3, "
                "plan, " + PredictCall() + " AS score FROM users LIMIT 64");
  for (size_t i = 0; i < r.batch.num_rows(); ++i) {
    std::vector<double> raw(9);
    for (size_t c = 0; c < 8; ++c) raw[c] = r.batch.column(c)->double_at(i);
    raw[8] = pipeline_.EncodeCategorical(8,
                                         r.batch.column(8)->string_at(i));
    EXPECT_NEAR(r.batch.column(9)->double_at(i),
                pipeline_.ScoreRow(raw.data()), 1e-9);
  }
}

TEST_F(FlockEngineTest, OptimizedEqualsUnoptimizedOnThresholdQuery) {
  const std::string query =
      "SELECT id FROM users WHERE income > 50 AND " + PredictCall() +
      " > 0.7 ORDER BY id";
  engine_.set_enable_cross_optimizer(false);
  auto baseline = Exec(query);
  engine_.set_enable_cross_optimizer(true);
  auto optimized = Exec(query);
  ASSERT_EQ(baseline.batch.num_rows(), optimized.batch.num_rows());
  for (size_t i = 0; i < baseline.batch.num_rows(); ++i) {
    EXPECT_EQ(baseline.batch.column(0)->int_at(i),
              optimized.batch.column(0)->int_at(i));
  }
  EXPECT_GT(optimized.batch.num_rows(), 0u);
}

TEST_F(FlockEngineTest, OptimizerEquivalenceAcrossThresholdsAndOps) {
  const char* ops[] = {">", ">=", "<", "<="};
  const double thresholds[] = {0.2, 0.5, 0.8};
  for (const char* op : ops) {
    for (double t : thresholds) {
      std::string query = "SELECT COUNT(*) FROM users WHERE " +
                          PredictCall() + " " + op + " " +
                          std::to_string(t);
      engine_.set_enable_cross_optimizer(false);
      auto baseline = Exec(query);
      engine_.set_enable_cross_optimizer(true);
      auto optimized = Exec(query);
      EXPECT_EQ(baseline.batch.column(0)->int_at(0),
                optimized.batch.column(0)->int_at(0))
          << "op=" << op << " t=" << t;
    }
  }
}

TEST_F(FlockEngineTest, CrossOptimizerReportsRewrites) {
  Exec("SELECT id FROM users WHERE income > 50 AND " + PredictCall() +
       " > 0.7");
  const auto& stats = engine_.cross_optimizer()->stats();
  EXPECT_EQ(stats.filters_split, 1u);
  EXPECT_EQ(stats.predicates_pushed_up, 1u);
  EXPECT_GT(stats.features_pruned, 0u);  // noise features exist
  EXPECT_GT(engine_.models()->num_specializations(), 0u);
}

TEST_F(FlockEngineTest, ExplainShowsSeparatedFilters) {
  auto r = Exec("EXPLAIN SELECT id FROM users WHERE income > 50 AND " +
                PredictCall() + " > 0.7");
  // The ML predicate and the data predicate end up in separate filters,
  // with the PREDICT_GT intrinsic in the upper one.
  EXPECT_NE(r.plan_text.find("PREDICT_GT"), std::string::npos)
      << r.plan_text;
  EXPECT_NE(r.plan_text.find("income"), std::string::npos);
}

TEST_F(FlockEngineTest, ExplainShowsPredictScoreOperator) {
  auto r = Exec("EXPLAIN SELECT id FROM users WHERE income > 50 AND " +
                PredictCall() + " > 0.7");
  // Model scoring is lowered into a first-class physical operator, placed
  // above the pushed-down data filter.
  EXPECT_NE(r.plan_text.find("== Physical Plan =="), std::string::npos)
      << r.plan_text;
  EXPECT_NE(r.plan_text.find("PredictScore"), std::string::npos)
      << r.plan_text;
}

TEST_F(FlockEngineTest, PredictQuerySurfacesScoringMetrics) {
  auto r = Exec("SELECT id FROM users WHERE " + PredictCall() + " > 0.7");
  bool found_predict_score = false;
  for (const auto& m : r.operator_metrics) {
    if (m.name.find("PredictScore") != std::string::npos) {
      found_predict_score = true;
      EXPECT_GT(m.rows_in, 0u) << m.name;
    }
  }
  EXPECT_TRUE(found_predict_score);
}

TEST_F(FlockEngineTest, PruningNarrowsScanToUsedColumns) {
  auto r = Exec("EXPLAIN SELECT " + PredictCall() + " FROM users");
  // Noise columns that the model ignores should vanish from the scan.
  const auto* entry = *engine_.models()->Get("churn");
  std::vector<bool> used = entry->graph.UsedInputColumns();
  bool any_noise_unused = !used[4] || !used[5] || !used[6] || !used[7];
  if (any_noise_unused) {
    // At least one of n0..n3 must not appear in the scan column list.
    size_t missing = 0;
    for (const char* col : {"n0", "n1", "n2", "n3"}) {
      if (r.plan_text.find(col) == std::string::npos) ++missing;
    }
    EXPECT_GT(missing, 0u) << r.plan_text;
  }
}

TEST_F(FlockEngineTest, CreateAndDropModelViaSql) {
  std::string serialized = pipeline_.Serialize();
  // Escape single quotes for SQL (serialized text has none, but be safe).
  auto r = engine_.Execute("CREATE MODEL churn2 FROM '" + serialized + "'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(engine_.models()->Contains("churn2"));
  auto score = Exec(
      "SELECT PREDICT(churn2, age, income, tenure, clicks, n0, n1, n2, "
      "n3, plan) FROM users LIMIT 1");
  EXPECT_EQ(score.batch.num_rows(), 1u);
  ASSERT_TRUE(engine_.Execute("DROP MODEL churn2").ok());
  EXPECT_FALSE(engine_.models()->Contains("churn2"));
}

TEST_F(FlockEngineTest, ModelVersioningOnRedeploy) {
  EXPECT_EQ(engine_.models()->CurrentVersion("churn"), 1u);
  ASSERT_TRUE(engine_.DeployModel("churn", pipeline_, "tester", "retrain")
                  .ok());
  EXPECT_EQ(engine_.models()->CurrentVersion("churn"), 2u);
  auto v1 = engine_.models()->GetVersion("churn", 1);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ((*v1)->lineage, "train-run-1");
}

TEST_F(FlockEngineTest, AccessControlDeniesAndAudits) {
  ASSERT_TRUE(
      engine_.models()->SetAccessControl("churn", {"alice"}).ok());
  engine_.SetPrincipal("mallory");
  auto denied = engine_.Execute("SELECT " + PredictCall() + " FROM users");
  EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);
  engine_.SetPrincipal("alice");
  auto ok = engine_.Execute(
      "SELECT " + PredictCall() + " FROM users LIMIT 1");
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();

  bool saw_denied = false, saw_score = false;
  for (const auto& event : engine_.models()->audit_log()) {
    if (event.kind == AuditEvent::Kind::kDenied &&
        event.principal == "mallory") {
      saw_denied = true;
    }
    if (event.kind == AuditEvent::Kind::kScore &&
        event.principal == "alice") {
      saw_score = true;
    }
  }
  EXPECT_TRUE(saw_denied);
  EXPECT_TRUE(saw_score);
}

TEST_F(FlockEngineTest, UnknownModelErrors) {
  auto r = engine_.Execute("SELECT PREDICT(ghost, age) FROM users");
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(FlockEngineTest, WrongArityErrors) {
  auto r = engine_.Execute("SELECT PREDICT(churn, age) FROM users");
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FlockEngineTest, DeployTransactionCommitsAtomically) {
  DeployTransaction txn = engine_.BeginDeployment();
  txn.StageRegister("m_a", pipeline_, "tester");
  txn.StageRegister("m_b", pipeline_, "tester");
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_TRUE(engine_.models()->Contains("m_a"));
  EXPECT_TRUE(engine_.models()->Contains("m_b"));
}

TEST_F(FlockEngineTest, DeployTransactionRollsBackOnFailure) {
  uint64_t churn_version = engine_.models()->CurrentVersion("churn");
  DeployTransaction txn = engine_.BeginDeployment();
  txn.StageRegister("churn", pipeline_, "tester", "v2-candidate");
  txn.StageRegister("m_new", pipeline_, "tester");
  txn.StageDrop("does_not_exist");  // forces failure
  Status st = txn.Commit();
  EXPECT_EQ(st.code(), StatusCode::kAborted);
  // Rollback: m_new gone; churn back to a working (prior) pipeline.
  EXPECT_FALSE(engine_.models()->Contains("m_new"));
  auto restored = engine_.models()->Get("churn");
  ASSERT_TRUE(restored.ok());
  EXPECT_GE(engine_.models()->CurrentVersion("churn"), churn_version);
  auto ok = Exec("SELECT " + PredictCall() + " FROM users LIMIT 1");
  EXPECT_EQ(ok.batch.num_rows(), 1u);
}

TEST_F(FlockEngineTest, DeployRollbackRacesConcurrentScorers) {
  // A failing deploy transaction (register churn v2, then a drop that
  // aborts the batch) undoes its staged changes while scorer threads
  // hammer PREDICT. The commit-undo sequence runs under the engine's
  // exclusive lock, so every concurrent query must see a working model —
  // either the prior version or the restored one — and never fail.
  // Run under TSan to verify the cutover path is race-free.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> scored{0};
  std::atomic<uint64_t> failed{0};
  std::mutex err_mu;
  std::string first_error;
  std::vector<std::thread> scorers;
  for (int t = 0; t < 2; ++t) {
    scorers.emplace_back([&] {
      // The pause between queries leaves write-lock windows: glibc's
      // rwlock favors readers, so back-to-back shared acquisitions from
      // two threads would starve Commit's exclusive lock indefinitely.
      while (!stop.load(std::memory_order_acquire)) {
        auto r = engine_.Execute("SELECT " + PredictCall() +
                                 " FROM users LIMIT 4");
        if (r.ok()) {
          scored.fetch_add(1, std::memory_order_relaxed);
        } else {
          failed.fetch_add(1, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(err_mu);
          if (first_error.empty()) first_error = r.status().ToString();
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }
  for (int i = 0; i < 10; ++i) {
    DeployTransaction txn = engine_.BeginDeployment();
    txn.StageRegister("churn", pipeline_, "tester", "race-candidate");
    txn.StageDrop("does_not_exist");  // forces failure + undo-restore
    EXPECT_EQ(txn.Commit().code(), StatusCode::kAborted);
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : scorers) t.join();
  EXPECT_EQ(failed.load(), 0u) << first_error;
  EXPECT_GT(scored.load(), 0u);
  // The undo left churn serving its prior pipeline.
  auto ok = Exec("SELECT " + PredictCall() + " FROM users LIMIT 1");
  EXPECT_EQ(ok.batch.num_rows(), 1u);
}

TEST_F(FlockEngineTest, NullFeaturesGoThroughImputer) {
  Exec("INSERT INTO users (id, age, plan) VALUES (99999, NULL, 'pro')");
  auto r = Exec("SELECT " + PredictCall() +
                " FROM users WHERE id = 99999");
  ASSERT_EQ(r.batch.num_rows(), 1u);
  double s = r.batch.column(0)->double_at(0);
  EXPECT_FALSE(std::isnan(s));
  EXPECT_GE(s, 0.0);
  EXPECT_LE(s, 1.0);
}

TEST_F(FlockEngineTest, RuntimeSelectionSmallBatchMatchesVectorized) {
  FlockEngineOptions options = MakeOptions();
  options.runtime.small_batch_threshold = 1u << 30;  // force row path
  FlockEngine row_engine(options);
  // Rebuild schema/data/model in the second engine via SQL + API.
  auto src = engine_.database()->GetTable("users");
  ASSERT_TRUE(src.ok());
  ASSERT_TRUE(row_engine.database()
                  ->CreateTable("users", (*src)->schema())
                  .ok());
  auto dst = row_engine.database()->GetTable("users");
  ASSERT_TRUE(dst.ok());
  ASSERT_TRUE((*dst)->AppendBatch((*src)->ScanRange(0, 128)).ok());
  ASSERT_TRUE(row_engine.DeployModel("churn", pipeline_).ok());
  row_engine.set_enable_cross_optimizer(false);

  auto interpreted = row_engine.Execute(
      "SELECT " + PredictCall() + " FROM users ORDER BY id");
  ASSERT_TRUE(interpreted.ok());
  engine_.set_enable_cross_optimizer(false);
  auto vectorized = Exec("SELECT " + PredictCall() +
                         " FROM users ORDER BY id LIMIT 128");
  ASSERT_EQ(interpreted->batch.num_rows(), 128u);
  for (size_t i = 0; i < 128; ++i) {
    EXPECT_NEAR(interpreted->batch.column(0)->double_at(i),
                vectorized.batch.column(0)->double_at(i), 1e-9);
  }
}

// --- scoring unit checks ---------------------------------------------------

TEST(ScoringTest, ThresholdBatchMatchesFullScoring) {
  // Small hand-rolled boosted ensemble.
  ml::Pipeline pipeline;
  pipeline.SetInputs({ml::FeatureSpec{"x", ml::FeatureKind::kNumeric, {}},
                      ml::FeatureSpec{"y", ml::FeatureKind::kNumeric, {}}});
  ml::TreeEnsembleModel model;
  model.logistic = true;
  for (int t = 0; t < 5; ++t) {
    ml::Tree tree;
    ml::TreeNode root;
    root.feature = t % 2;
    root.threshold = 0.3 * t - 0.5;
    root.left = 1;
    root.right = 2;
    ml::TreeNode l, r;
    l.feature = -1;
    l.value = -0.4 + 0.1 * t;
    r.feature = -1;
    r.value = 0.5 - 0.05 * t;
    tree.nodes = {root, l, r};
    model.trees.push_back(tree);
  }
  pipeline.SetTreeModel(model);

  ModelEntry entry;
  entry.name = "toy";
  entry.pipeline = pipeline;
  auto graph = pipeline.Compile();
  ASSERT_TRUE(graph.ok());
  entry.graph = std::move(graph).value();
  ModelRegistry::AnalyzeEntry(&entry);
  ASSERT_TRUE(entry.ends_with_sigmoid);
  ASSERT_GE(entry.tree_node_id, 0);

  Random rng(5);
  ml::Matrix raw(500, 2);
  for (size_t i = 0; i < 500; ++i) {
    raw.at(i, 0) = rng.NextGaussian();
    raw.at(i, 1) = rng.NextGaussian();
  }
  auto scores = ScoreBatch(entry, raw);
  ASSERT_TRUE(scores.ok());
  for (double t : {0.3, 0.5, 0.62}) {
    for (ThresholdOp op : {ThresholdOp::kGt, ThresholdOp::kGe,
                           ThresholdOp::kLt, ThresholdOp::kLe}) {
      auto verdicts = ScoreThresholdBatch(entry, raw, t, op);
      ASSERT_TRUE(verdicts.ok());
      for (size_t i = 0; i < 500; ++i) {
        double s = (*scores)[i];
        bool expected = op == ThresholdOp::kGt   ? s > t
                        : op == ThresholdOp::kGe ? s >= t
                        : op == ThresholdOp::kLt ? s < t
                                                 : s <= t;
        EXPECT_EQ((*verdicts)[i], expected) << "row " << i << " t=" << t;
      }
    }
  }
}

TEST(ScoringTest, DegenerateThresholdsResolveStatically) {
  ml::Pipeline pipeline;
  pipeline.SetInputs({ml::FeatureSpec{"x", ml::FeatureKind::kNumeric, {}}});
  ml::LinearModel lm;
  lm.weights = {1.0};
  lm.bias = 0.0;
  lm.logistic = true;
  pipeline.SetLinearModel(lm);
  ModelEntry entry;
  entry.pipeline = pipeline;
  entry.graph = *pipeline.Compile();
  ModelRegistry::AnalyzeEntry(&entry);
  ml::Matrix raw(3, 1, 0.0);
  auto all_true = ScoreThresholdBatch(entry, raw, -0.5, ThresholdOp::kGt);
  ASSERT_TRUE(all_true.ok());
  EXPECT_TRUE((*all_true)[0]);
  auto all_false = ScoreThresholdBatch(entry, raw, 1.5, ThresholdOp::kGt);
  ASSERT_TRUE(all_false.ok());
  EXPECT_FALSE((*all_false)[0]);
}

}  // namespace
}  // namespace flock::flock
