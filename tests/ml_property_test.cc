// Property-based ML tests (TEST_P sweeps over trainer configurations and
// seeds): every executable form of a pipeline must agree, serialization
// must round-trip bit-exactly, and the optimizer's model transformations
// (input compaction, statistics-based tree compression, threshold
// short-circuiting) must preserve semantics on admissible inputs.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/random.h"
#include "flock/model_registry.h"
#include "flock/scoring.h"
#include "ml/pipeline.h"
#include "ml/row_scorer.h"
#include "ml/runtime.h"
#include "ml/tree.h"

namespace flock::ml {
namespace {

// Param: (seed, num_trees, depth, num_noise_features, use_categorical)
using Config = std::tuple<uint64_t, size_t, size_t, size_t, bool>;

class PipelineEquivalenceTest : public ::testing::TestWithParam<Config> {
 protected:
  void SetUp() override {
    auto [seed, trees, depth, noise, categorical] = GetParam();
    seed_ = seed;
    size_t numeric = 3 + noise;
    width_ = numeric + (categorical ? 1 : 0);

    Random rng(seed);
    size_t n = 1200;
    Matrix raw(n, width_);
    std::vector<double> y(n);
    for (size_t r = 0; r < n; ++r) {
      for (size_t c = 0; c < numeric; ++c) {
        raw.at(r, c) = rng.NextGaussian() * 2.0;
      }
      if (categorical) {
        raw.at(r, numeric) = static_cast<double>(rng.Uniform(4));
      }
      double z = raw.at(r, 0) - 1.3 * raw.at(r, 1) +
                 0.7 * raw.at(r, 2) +
                 (categorical && raw.at(r, numeric) == 1.0 ? 0.8 : 0.0);
      y[r] = z > 0 ? 1.0 : 0.0;
    }

    std::vector<FeatureSpec> specs;
    for (size_t c = 0; c < numeric; ++c) {
      specs.push_back(FeatureSpec{"f" + std::to_string(c),
                                  FeatureKind::kNumeric,
                                  {}});
    }
    if (categorical) {
      specs.push_back(FeatureSpec{"cat",
                                  FeatureKind::kCategorical,
                                  {"a", "b", "c", "d"}});
    }
    pipeline_.SetInputs(std::move(specs));
    pipeline_.FitFeaturizers(raw, true, true);
    Dataset data;
    data.x = pipeline_.Transform(raw);
    data.y = std::move(y);
    GbtOptions gbt;
    gbt.num_trees = trees;
    gbt.max_depth = depth;
    gbt.seed = seed;
    pipeline_.SetTreeModel(TrainGradientBoosting(data, gbt));
  }

  Matrix RandomRaw(size_t n, uint64_t salt) const {
    Random rng(seed_ ^ salt);
    Matrix raw(n, width_);
    bool categorical = std::get<4>(GetParam());
    size_t numeric = categorical ? width_ - 1 : width_;
    for (size_t r = 0; r < n; ++r) {
      for (size_t c = 0; c < numeric; ++c) {
        raw.at(r, c) = rng.NextGaussian() * 2.5;
      }
      if (categorical) {
        raw.at(r, numeric) = static_cast<double>(rng.Uniform(4));
      }
    }
    return raw;
  }

  uint64_t seed_ = 0;
  size_t width_ = 0;
  Pipeline pipeline_;
};

TEST_P(PipelineEquivalenceTest, AllExecutablFormsAgree) {
  auto graph = pipeline_.Compile();
  ASSERT_TRUE(graph.ok());
  GraphRuntime runtime(&*graph);
  RowScorer scorer(pipeline_);
  Matrix raw = RandomRaw(200, 0x51);
  auto vectorized = runtime.RunToScores(raw);
  ASSERT_TRUE(vectorized.ok());
  std::vector<double> interpreted = scorer.ScoreAll(raw);
  for (size_t r = 0; r < raw.rows(); ++r) {
    double reference = pipeline_.ScoreRow(raw.row(r));
    EXPECT_NEAR((*vectorized)[r], reference, 1e-9);
    EXPECT_NEAR(interpreted[r], reference, 1e-9);
  }
}

TEST_P(PipelineEquivalenceTest, SerializationRoundTrip) {
  std::string text = pipeline_.Serialize();
  auto restored = Pipeline::Deserialize(text);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->Serialize(), text);
  Matrix raw = RandomRaw(64, 0x52);
  for (size_t r = 0; r < raw.rows(); ++r) {
    EXPECT_DOUBLE_EQ(pipeline_.ScoreRow(raw.row(r)),
                     restored->ScoreRow(raw.row(r)));
  }
}

TEST_P(PipelineEquivalenceTest, CompactUnusedInputsPreservesScores) {
  auto graph = pipeline_.Compile();
  ASSERT_TRUE(graph.ok());
  std::vector<bool> used = graph->UsedInputColumns();
  ModelGraph compact = *graph;
  ASSERT_TRUE(compact.CompactInputs(used).ok());

  Matrix raw = RandomRaw(100, 0x53);
  std::vector<size_t> kept;
  for (size_t c = 0; c < used.size(); ++c) {
    if (used[c]) kept.push_back(c);
  }
  Matrix narrow(raw.rows(), kept.size());
  for (size_t r = 0; r < raw.rows(); ++r) {
    for (size_t c = 0; c < kept.size(); ++c) {
      narrow.at(r, c) = raw.at(r, kept[c]);
    }
  }
  GraphRuntime full(&*graph);
  GraphRuntime pruned(&compact);
  auto a = full.RunToScores(raw);
  auto b = pruned.RunToScores(narrow);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t r = 0; r < raw.rows(); ++r) {
    EXPECT_NEAR((*a)[r], (*b)[r], 1e-9);
  }
}

TEST_P(PipelineEquivalenceTest, RangeCompressionSoundInsideBox) {
  auto graph = pipeline_.Compile();
  ASSERT_TRUE(graph.ok());
  // Random admissible box per seed.
  Random rng(seed_ ^ 0x54);
  bool categorical = std::get<4>(GetParam());
  size_t numeric = categorical ? width_ - 1 : width_;
  std::vector<ColumnRange> box(width_);
  for (size_t c = 0; c < numeric; ++c) {
    double lo = rng.UniformDouble(-2.0, 0.0);
    double hi = lo + rng.UniformDouble(0.5, 2.5);
    box[c] = ColumnRange{lo, hi, true};
  }
  if (categorical) box[numeric] = ColumnRange{0, 3, true};

  ModelGraph compressed = *graph;
  CompressTreesWithRanges(&compressed, box);
  GraphRuntime full(&*graph);
  GraphRuntime small(&compressed);

  Matrix raw(150, width_);
  for (size_t r = 0; r < raw.rows(); ++r) {
    for (size_t c = 0; c < numeric; ++c) {
      raw.at(r, c) = rng.UniformDouble(box[c].min, box[c].max);
    }
    if (categorical) {
      raw.at(r, numeric) = static_cast<double>(rng.Uniform(4));
    }
  }
  auto a = full.RunToScores(raw);
  auto b = small.RunToScores(raw);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t r = 0; r < raw.rows(); ++r) {
    EXPECT_NEAR((*a)[r], (*b)[r], 1e-9) << "row " << r;
  }
}

TEST_P(PipelineEquivalenceTest, ThresholdShortCircuitMatchesFullScores) {
  flock::ModelEntry entry;
  entry.name = "prop";
  entry.pipeline = pipeline_;
  auto graph = pipeline_.Compile();
  ASSERT_TRUE(graph.ok());
  entry.graph = std::move(graph).value();
  flock::ModelRegistry::AnalyzeEntry(&entry);

  Matrix raw = RandomRaw(300, 0x55);
  auto scores = flock::ScoreBatch(entry, raw);
  ASSERT_TRUE(scores.ok());
  Random rng(seed_ ^ 0x56);
  for (int i = 0; i < 4; ++i) {
    double threshold = rng.UniformDouble(0.05, 0.95);
    for (auto op :
         {flock::ThresholdOp::kGt, flock::ThresholdOp::kGe,
          flock::ThresholdOp::kLt, flock::ThresholdOp::kLe}) {
      auto verdicts =
          flock::ScoreThresholdBatch(entry, raw, threshold, op);
      ASSERT_TRUE(verdicts.ok());
      for (size_t r = 0; r < raw.rows(); ++r) {
        double s = (*scores)[r];
        bool expected = op == flock::ThresholdOp::kGt   ? s > threshold
                        : op == flock::ThresholdOp::kGe ? s >= threshold
                        : op == flock::ThresholdOp::kLt ? s < threshold
                                                        : s <= threshold;
        ASSERT_EQ((*verdicts)[r], expected)
            << "row " << r << " threshold " << threshold;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PipelineEquivalenceTest,
    ::testing::Values(Config{1, 5, 3, 0, false},
                      Config{2, 15, 4, 2, true},
                      Config{3, 25, 5, 6, true},
                      Config{4, 10, 6, 1, false},
                      Config{5, 40, 3, 4, true},
                      Config{6, 8, 2, 10, true}));

// ---------------------------------------------------------------------------
// Trainer quality holds across seeds (guards against lucky-seed tests)
// ---------------------------------------------------------------------------

class TrainerQualityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TrainerQualityTest, GbtSeparatesLinearBoundary) {
  Random rng(GetParam());
  Dataset data;
  data.x = Matrix(1500, 4);
  data.y.resize(1500);
  for (size_t r = 0; r < 1500; ++r) {
    for (size_t c = 0; c < 4; ++c) data.x.at(r, c) = rng.NextGaussian();
    data.y[r] =
        data.x.at(r, 0) + data.x.at(r, 1) - data.x.at(r, 2) > 0 ? 1 : 0;
  }
  auto [train, test] = TrainTestSplit(data, 0.3, GetParam());
  GbtOptions options;
  options.num_trees = 30;
  options.seed = GetParam();
  TreeEnsembleModel model = TrainGradientBoosting(train, options);
  std::vector<double> scores;
  for (size_t r = 0; r < test.size(); ++r) {
    scores.push_back(model.Score(test.x.row(r)));
  }
  EXPECT_GT(Auc(scores, test.y), 0.85) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrainerQualityTest,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace flock::ml
