#include <gtest/gtest.h>

#include "prov/bridge.h"
#include "prov/catalog.h"
#include "prov/compression.h"
#include "prov/sql_capture.h"
#include "sql/engine.h"
#include "storage/database.h"
#include "workload/tpch.h"

namespace flock::prov {
namespace {

TEST(CatalogTest, GetOrCreateIsIdempotent) {
  Catalog catalog;
  uint64_t a = catalog.GetOrCreate(EntityType::kTable, "users");
  uint64_t b = catalog.GetOrCreate(EntityType::kTable, "users");
  EXPECT_EQ(a, b);
  EXPECT_EQ(catalog.num_entities(), 1u);
}

TEST(CatalogTest, DistinctTypesDistinctEntities) {
  Catalog catalog;
  uint64_t t = catalog.GetOrCreate(EntityType::kTable, "x");
  uint64_t m = catalog.GetOrCreate(EntityType::kModel, "x");
  EXPECT_NE(t, m);
}

TEST(CatalogTest, NewVersionChains) {
  Catalog catalog;
  uint64_t v1 = catalog.GetOrCreate(EntityType::kTable, "t");
  uint64_t v2 = catalog.NewVersion(EntityType::kTable, "t");
  uint64_t v3 = catalog.NewVersion(EntityType::kTable, "t");
  EXPECT_NE(v1, v2);
  EXPECT_NE(v2, v3);
  auto versions = catalog.Versions(EntityType::kTable, "t");
  ASSERT_EQ(versions.size(), 3u);
  EXPECT_EQ(versions[0]->version, 1u);
  EXPECT_EQ(versions[2]->version, 3u);
  // Latest lookup returns v3.
  auto latest = catalog.Find(EntityType::kTable, "t");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, v3);
  auto specific = catalog.Find(EntityType::kTable, "t", 2);
  ASSERT_TRUE(specific.ok());
  EXPECT_EQ(*specific, v2);
}

TEST(CatalogTest, LineageTraversal) {
  Catalog catalog;
  uint64_t table = catalog.GetOrCreate(EntityType::kTable, "loans");
  uint64_t column = catalog.GetOrCreate(EntityType::kColumn, "loans.age");
  uint64_t dataset = catalog.GetOrCreate(EntityType::kDataset, "ds");
  uint64_t model = catalog.GetOrCreate(EntityType::kModel, "m");
  catalog.AddEdge(table, column, EdgeType::kContains);
  catalog.AddEdge(dataset, column, EdgeType::kDerivesFrom);
  catalog.AddEdge(model, dataset, EdgeType::kDerivesFrom);

  // Upstream from model: dataset, column.
  auto up = catalog.Lineage(model, /*downstream=*/false);
  ASSERT_EQ(up.size(), 2u);
  // Downstream from column: dataset, model, table (table contains col).
  auto down = catalog.Lineage(column, /*downstream=*/true);
  EXPECT_EQ(down.size(), 3u);
}

TEST(CatalogTest, PropertiesStored) {
  Catalog catalog;
  uint64_t q = catalog.GetOrCreate(EntityType::kQuery, "q1");
  ASSERT_TRUE(catalog.SetProperty(q, "sql", "SELECT 1").ok());
  auto entity = catalog.GetEntity(q);
  ASSERT_TRUE(entity.ok());
  EXPECT_EQ((*entity)->properties.at("sql"), "SELECT 1");
  EXPECT_FALSE(catalog.SetProperty(999, "k", "v").ok());
}

class SqlCaptureTest : public ::testing::Test {
 protected:
  SqlCaptureTest() : capture_(&catalog_, &db_) {
    workload::TpchWorkload tpch;
    EXPECT_TRUE(tpch.CreateSchema(&db_).ok());
  }

  storage::Database db_;
  Catalog catalog_;
  SqlCaptureModule capture_;
};

TEST_F(SqlCaptureTest, SelectCapturesTablesAndColumns) {
  ASSERT_TRUE(capture_
                  .CaptureStatement(
                      "SELECT o_orderkey, o_totalprice FROM orders WHERE "
                      "o_orderdate > '1995-01-01'")
                  .ok());
  EXPECT_TRUE(catalog_.Find(EntityType::kTable, "orders").ok());
  EXPECT_TRUE(
      catalog_.Find(EntityType::kColumn, "orders.o_orderkey").ok());
  EXPECT_TRUE(
      catalog_.Find(EntityType::kColumn, "orders.o_orderdate").ok());
  EXPECT_EQ(capture_.stats().statements, 1u);
  EXPECT_EQ(capture_.stats().parse_failures, 0u);
}

TEST_F(SqlCaptureTest, QualifiedJoinColumnsResolveThroughAliases) {
  ASSERT_TRUE(capture_
                  .CaptureStatement(
                      "SELECT c.c_name, o.o_totalprice FROM customer c "
                      "JOIN orders o ON c.c_custkey = o.o_custkey")
                  .ok());
  EXPECT_TRUE(catalog_.Find(EntityType::kColumn, "customer.c_name").ok());
  EXPECT_TRUE(
      catalog_.Find(EntityType::kColumn, "orders.o_custkey").ok());
}

TEST_F(SqlCaptureTest, InsertCreatesNewTableVersion) {
  ASSERT_TRUE(capture_
                  .CaptureStatement("INSERT INTO nation VALUES (1, 'x', "
                                    "1, 'c')")
                  .ok());
  ASSERT_TRUE(capture_
                  .CaptureStatement("INSERT INTO nation VALUES (2, 'y', "
                                    "1, 'c')")
                  .ok());
  auto versions = catalog_.Versions(EntityType::kTable, "nation");
  // First INSERT creates v1 (fresh entity), second appends v2.
  ASSERT_GE(versions.size(), 2u);
  EXPECT_EQ(versions.back()->version, versions.size());
}

TEST_F(SqlCaptureTest, UpdateCapturesReadAndWrite) {
  ASSERT_TRUE(capture_
                  .CaptureStatement(
                      "UPDATE supplier SET s_acctbal = s_acctbal + 10 "
                      "WHERE s_suppkey = 5")
                  .ok());
  EXPECT_TRUE(
      catalog_.Find(EntityType::kColumn, "supplier.s_acctbal").ok());
  EXPECT_TRUE(
      catalog_.Find(EntityType::kColumn, "supplier.s_suppkey").ok());
  EXPECT_GE(catalog_.Versions(EntityType::kTable, "supplier").size(), 1u);
}

TEST_F(SqlCaptureTest, ParseFailureCountedNotFatal) {
  EXPECT_FALSE(capture_.CaptureStatement("MERGE INTO whatever").ok());
  EXPECT_EQ(capture_.stats().parse_failures, 1u);
  // Catalog remains usable.
  EXPECT_TRUE(capture_.CaptureStatement("SELECT 1").ok());
}

TEST_F(SqlCaptureTest, LazyCaptureFromQueryLog) {
  storage::Database db2;
  workload::TpchWorkload tpch;
  ASSERT_TRUE(tpch.CreateSchema(&db2).ok());
  sql::EngineOptions options;
  options.num_threads = 1;
  sql::SqlEngine engine(&db2, options);
  ASSERT_TRUE(engine.Execute("SELECT r_name FROM region").ok());
  ASSERT_TRUE(
      engine.Execute("INSERT INTO region VALUES (1, 'ASIA', 'x')").ok());
  ASSERT_TRUE(
      engine.Execute("SELECT n_name FROM nation WHERE n_regionkey = 1")
          .ok());

  Catalog lazy_catalog;
  SqlCaptureModule lazy(&lazy_catalog, &db2);
  ASSERT_TRUE(lazy.CaptureLog(engine.query_log()).ok());
  EXPECT_EQ(lazy.stats().statements, 3u);
  EXPECT_TRUE(lazy_catalog.Find(EntityType::kTable, "region").ok());
  EXPECT_TRUE(lazy_catalog.Find(EntityType::kTable, "nation").ok());
  EXPECT_GT(lazy_catalog.GraphSize(), 6u);
}

TEST_F(SqlCaptureTest, EagerCaptureViaEngineObserver) {
  storage::Database db2;
  workload::TpchWorkload tpch;
  ASSERT_TRUE(tpch.CreateSchema(&db2).ok());
  sql::EngineOptions options;
  options.num_threads = 1;
  sql::SqlEngine engine(&db2, options);
  Catalog eager_catalog;
  SqlCaptureModule eager(&eager_catalog, &db2);
  engine.set_statement_observer(
      [&](const std::string& sql, const sql::Statement& stmt) {
        (void)stmt;
        (void)eager.CaptureStatement(sql);
      });
  ASSERT_TRUE(engine.Execute("SELECT s_name FROM supplier").ok());
  EXPECT_EQ(eager.stats().statements, 1u);
  EXPECT_TRUE(eager_catalog.Find(EntityType::kTable, "supplier").ok());
}

// ---------------------------------------------------------------------------
// Compression
// ---------------------------------------------------------------------------

TEST(NormalizeQueryTest, LiteralsBecomePlaceholders) {
  EXPECT_EQ(NormalizeQuery("SELECT * FROM t WHERE a = 5 AND b = 'x'"),
            "SELECT * FROM T WHERE A = ? AND B = ?");
  EXPECT_EQ(NormalizeQuery("select  1,   2.5"), "SELECT ?, ?");
  // Identifiers with digits survive.
  EXPECT_EQ(NormalizeQuery("SELECT f1 FROM t2"), "SELECT F1 FROM T2");
}

TEST(NormalizeQueryTest, TemplateInstancesCollide) {
  workload::TpchWorkload tpch(7);
  std::string a = tpch.Instantiate(5);
  workload::TpchWorkload tpch2(99);
  std::string b = tpch2.Instantiate(5);
  EXPECT_NE(a, b);  // different parameters...
  EXPECT_EQ(NormalizeQuery(a), NormalizeQuery(b));  // ...same template
}

TEST_F(SqlCaptureTest, CompressionShrinksGraph) {
  workload::TpchWorkload tpch(3);
  for (const std::string& q : tpch.GenerateQueryStream(110)) {
    ASSERT_TRUE(capture_.CaptureStatement(q).ok()) << q;
  }
  // Plus a burst of inserts to create version chains.
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(capture_.CaptureStatement(
                            "INSERT INTO region VALUES (" +
                            std::to_string(i) + ", 'R', 'c')")
                    .ok());
  }
  Catalog compressed;
  CompressionStats stats;
  ASSERT_TRUE(CompressCatalog(catalog_, &compressed, &stats).ok());
  EXPECT_EQ(stats.SizeBefore(), catalog_.GraphSize());
  EXPECT_LT(stats.SizeAfter(), stats.SizeBefore() / 2)
      << "110 template instances + 30 versions should compress well";
  // 110 queries over 22 TPC-H templates + the INSERT template -> 23
  // template entities.
  size_t templates = 0;
  for (const Entity& e : compressed.entities()) {
    if (e.type == EntityType::kQueryTemplate) ++templates;
  }
  EXPECT_EQ(templates, 23u);
}

// ---------------------------------------------------------------------------
// Bridge (C3)
// ---------------------------------------------------------------------------

TEST(BridgeTest, ColumnChangeFindsImpactedModels) {
  Catalog catalog;
  // SQL side: table + column.
  uint64_t table = catalog.GetOrCreate(EntityType::kTable, "loans");
  uint64_t column = catalog.GetOrCreate(EntityType::kColumn, "loans.age");
  catalog.AddEdge(table, column, EdgeType::kContains);
  // Pipeline side: dataset + model.
  ASSERT_TRUE(
      LinkDatasetToColumn(&catalog, "sql:select * from loans", "loans",
                          "age")
          .ok());
  uint64_t dataset = *catalog.Find(EntityType::kDataset,
                                   "sql:select * from loans");
  uint64_t model = catalog.GetOrCreate(EntityType::kModel, "churn");
  catalog.AddEdge(model, dataset, EdgeType::kDerivesFrom);

  auto impacted = FindImpactedModels(catalog, "loans", "age");
  ASSERT_EQ(impacted.size(), 1u);
  EXPECT_EQ(impacted[0]->name, "churn");
  // A different column impacts nothing.
  EXPECT_TRUE(FindImpactedModels(catalog, "loans", "income").empty());
}

TEST(BridgeTest, ModelTrainingSourcesWalksUpstream) {
  Catalog catalog;
  uint64_t table = catalog.GetOrCreate(EntityType::kTable, "claims");
  ASSERT_TRUE(LinkDatasetToTable(&catalog, "file:claims.csv", "claims")
                  .ok());
  uint64_t dataset =
      *catalog.Find(EntityType::kDataset, "file:claims.csv");
  uint64_t model = catalog.GetOrCreate(EntityType::kModel, "fraud");
  catalog.AddEdge(model, dataset, EdgeType::kDerivesFrom);
  (void)table;

  auto sources = ModelTrainingSources(catalog, "fraud");
  ASSERT_EQ(sources.size(), 2u);  // dataset + table
}

}  // namespace
}  // namespace flock::prov
