// Tests for the observability layer (src/obs/) and the serving-path
// fixes that ride with it: latency-percentile interpolation against a
// sorted-vector oracle, SQL normalization (comments, escaped quotes),
// the Admit-vs-Drain admission race, snapshot JSON completeness, the
// metric registry's JSON/Prometheus expositions, span-tree recording,
// and the slow-query log — plus engine-level integration: traced
// execution, EXPLAIN ANALYZE trace sections, plan digests and slow-log
// capture through sql::SqlEngine.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics_registry.h"
#include "obs/slow_log.h"
#include "obs/trace.h"
#include "serve/admission.h"
#include "serve/metrics.h"
#include "sql/engine.h"
#include "sql/plan_cache.h"
#include "storage/database.h"

namespace flock {
namespace {

using obs::HistogramSnapshot;
using obs::MetricsRegistry;
using obs::SlowQueryEntry;
using obs::SlowQueryLog;
using obs::SpanSnapshot;
using obs::TraceRecorder;
using obs::TraceScope;
using serve::AdmissionController;
using serve::AdmissionOptions;
using serve::LatencyHistogram;
using serve::ServerMetricsSnapshot;

// ---------------------------------------------------------------------
// LatencyHistogram percentiles vs a sorted-vector oracle.

double OraclePercentileMs(std::vector<double> micros, double p) {
  std::sort(micros.begin(), micros.end());
  size_t rank = static_cast<size_t>(std::ceil(p * micros.size()));
  if (rank == 0) rank = 1;
  return micros[rank - 1] / 1e3;
}

TEST(LatencyHistogramPercentile, SubMicrosecondSamplesAreNotInflated) {
  // Regression: the old implementation returned the covering bucket's
  // *upper* bound, so a population of 0.5 µs samples reported
  // p50 = 1.25 µs (0.00125 ms) — 2.5x the truth. Interpolation keeps
  // the estimate inside the bucket.
  LatencyHistogram hist;
  for (int i = 0; i < 100; ++i) hist.Record(0.5);
  double p50 = hist.PercentileMs(0.50);
  EXPECT_GT(p50, 0.0);
  EXPECT_LT(p50, 0.001) << "p50 escaped bucket 0 [0, 1.25 us)";
}

TEST(LatencyHistogramPercentile, TracksSortedVectorOracle) {
  // Log-uniform samples across five decades; every percentile estimate
  // must stay within one geometric bucket (x1.25) of the exact value.
  LatencyHistogram hist;
  std::vector<double> samples;
  uint64_t state = 42;
  for (int i = 0; i < 2000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    double unit = static_cast<double>(state >> 11) /
                  static_cast<double>(1ULL << 53);
    double micros = std::pow(10.0, 1.0 + 5.0 * unit);  // [10us, 1s]
    samples.push_back(micros);
    hist.Record(micros);
  }
  for (double p : {0.50, 0.90, 0.95, 0.99}) {
    double oracle = OraclePercentileMs(samples, p);
    double est = hist.PercentileMs(p);
    EXPECT_GT(est, oracle / LatencyHistogram::kGrowth * 0.99)
        << "p=" << p << " oracle=" << oracle;
    EXPECT_LT(est, oracle * LatencyHistogram::kGrowth * 1.01)
        << "p=" << p << " oracle=" << oracle;
  }
  EXPECT_LE(hist.PercentileMs(0.50), hist.PercentileMs(0.95));
  EXPECT_LE(hist.PercentileMs(0.95), hist.PercentileMs(0.99));
}

TEST(LatencyHistogramPercentile, ExactBucketBoundariesStayHalfOpen) {
  // Regression for the float-truncation boundary: a sample at exactly
  // kGrowth^k belongs to bucket k = [kGrowth^k, kGrowth^{k+1}), so the
  // interpolated percentile can never fall below the sample itself.
  for (int k : {5, 10, 20, 40}) {
    LatencyHistogram hist;
    double boundary = std::pow(LatencyHistogram::kGrowth, k);
    hist.Record(boundary);
    double p50_us = hist.PercentileMs(0.50) * 1e3;
    EXPECT_GE(p50_us, boundary * 0.999) << "k=" << k;
    EXPECT_LT(p50_us, boundary * LatencyHistogram::kGrowth * 1.001)
        << "k=" << k;
  }
}

TEST(LatencyHistogramPercentile, EmptyAndClampedInputs) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.PercentileMs(0.5), 0.0);
  hist.Record(100.0);
  EXPECT_GT(hist.PercentileMs(-0.5), 0.0);  // clamped to p0 -> rank 1
  EXPECT_GT(hist.PercentileMs(1.5), 0.0);   // clamped to p100
}

// ---------------------------------------------------------------------
// NormalizeSql: comments, escaped quotes, case, whitespace.

TEST(NormalizeSql, EquivalenceCorpus) {
  const struct {
    const char* a;
    const char* b;
  } kEquivalent[] = {
      {"SELECT  id FROM t;", "select id from t"},
      {"select id\nfrom T", "SELECT ID FROM T"},
      {"SELECT id FROM t -- trailing note", "SELECT id FROM t"},
      {"SELECT id -- pick the key\nFROM t", "SELECT id FROM t"},
      {"SELECT id FROM t -- it's quoted in a comment", "SELECT id FROM t"},
      {"-- leading comment\nSELECT id FROM t", "SELECT id FROM t"},
      {"SELECT 'don''t' FROM t", "select 'don''t' FROM t"},
      {"SELECT a - -1 FROM t", "select a - -1 from t"},
  };
  for (const auto& pair : kEquivalent) {
    EXPECT_EQ(sql::NormalizeSql(pair.a), sql::NormalizeSql(pair.b))
        << "a=" << pair.a << " b=" << pair.b;
  }
}

TEST(NormalizeSql, DistinctStatementsStayDistinct) {
  // String literals keep their case and content.
  EXPECT_NE(sql::NormalizeSql("SELECT 'A' FROM t"),
            sql::NormalizeSql("SELECT 'a' FROM t"));
  // An escaped quote must not end the literal early: if it did, the
  // remainder of the statement would be case-folded differently.
  EXPECT_NE(sql::NormalizeSql("SELECT 'don''t', X FROM t"),
            sql::NormalizeSql("SELECT 'don''u', X FROM t"));
  // '--' inside a string literal is content, not a comment.
  EXPECT_EQ(sql::NormalizeSql("SELECT '--not a comment' FROM t"),
            "select '--not a comment' from t");
}

TEST(NormalizeSql, CommentDoesNotGlueTokens) {
  EXPECT_EQ(sql::NormalizeSql("SELECT id-- comment\nFROM t"),
            "select id from t");
}

// ---------------------------------------------------------------------
// AdmissionController: Admit vs Drain race.

TEST(AdmissionControllerDrainRace, NoWorkExecutesAfterDrainReturns) {
  // Regression for the check-then-enqueue TOCTOU: admitters that passed
  // the draining check must either complete before Drain returns or be
  // shed — never enqueue behind WaitIdle.
  for (int round = 0; round < 20; ++round) {
    AdmissionOptions options;
    options.num_workers = 2;
    options.max_queue_depth = 64;
    AdmissionController admission(options);

    std::atomic<uint64_t> executed{0};
    std::atomic<bool> stop{false};
    std::vector<std::thread> admitters;
    for (int t = 0; t < 4; ++t) {
      admitters.emplace_back([&] {
        while (!stop.load(std::memory_order_relaxed)) {
          Status s = admission.Admit(
              [&] { executed.fetch_add(1, std::memory_order_relaxed); });
          if (!s.ok() && admission.draining()) break;
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    admission.Drain();
    const uint64_t at_drain = executed.load(std::memory_order_relaxed);
    stop.store(true, std::memory_order_relaxed);
    for (auto& t : admitters) t.join();
    // Drain() waited for everything admitted; nothing may run after.
    EXPECT_EQ(executed.load(std::memory_order_relaxed), at_drain)
        << "round " << round;
    EXPECT_EQ(admission.queue_depth(), 0u);
    Status late = admission.Admit([&] { executed.fetch_add(1); });
    EXPECT_EQ(late.code(), StatusCode::kUnavailable);
    EXPECT_EQ(executed.load(std::memory_order_relaxed), at_drain);
  }
}

// ---------------------------------------------------------------------
// ServerMetricsSnapshot::ToJson completeness.

size_t CountChar(const std::string& s, char c) {
  return static_cast<size_t>(std::count(s.begin(), s.end(), c));
}

TEST(ServerMetricsSnapshotJson, WideCountersProduceCompleteJson) {
  // Regression: a fixed 768-byte snprintf buffer silently truncated the
  // JSON once every counter went wide.
  ServerMetricsSnapshot snap;
  snap.requests_ok = 18446744073709551615ULL;
  snap.requests_error = 18446744073709551614ULL;
  snap.requests_shed = 18446744073709551613ULL;
  snap.sessions_open = 18446744073709551612ULL;
  snap.sessions_opened_total = 18446744073709551611ULL;
  snap.queue_depth = 18446744073709551610ULL;
  snap.latency_count = 18446744073709551609ULL;
  snap.p50_ms = 123456789.123456;
  snap.p95_ms = 223456789.123456;
  snap.p99_ms = 323456789.123456;
  snap.mean_ms = 423456789.123456;
  snap.plan_cache_hits = 18446744073709551608ULL;
  snap.plan_cache_misses = 18446744073709551607ULL;
  snap.plan_cache_hit_rate = 0.987654321;
  std::string json = snap.ToJson();
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.back(), '}');
  EXPECT_EQ(CountChar(json, '{'), CountChar(json, '}'));
  for (const char* key :
       {"\"requests\"", "\"sessions\"", "\"queue_depth\"",
        "\"latency_ms\"", "\"plan_cache\"", "18446744073709551615",
        "18446744073709551607"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << "\n" << json;
  }
}

// ---------------------------------------------------------------------
// MetricsRegistry expositions.

TEST(MetricsRegistryTest, JsonGroupsBySubsystem) {
  MetricsRegistry registry;
  registry.RegisterCounter("serve.requests_ok", [] { return 7u; });
  registry.RegisterGauge("serve.queue_depth", [] { return 2u; });
  registry.RegisterCounter("plan_cache.hits", [] { return 41u; });
  registry.RegisterGaugeF("plan_cache.hit_rate", [] { return 0.5; });
  registry.RegisterHistogram("serve.latency_ms", [] {
    HistogramSnapshot h;
    h.count = 3;
    h.mean_ms = 1.5;
    h.p50_ms = 1.0;
    h.p95_ms = 2.0;
    h.p99_ms = 2.5;
    return h;
  });
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"plan_cache\": {"), std::string::npos) << json;
  EXPECT_NE(json.find("\"serve\": {"), std::string::npos) << json;
  EXPECT_NE(json.find("\"hits\": 41"), std::string::npos) << json;
  EXPECT_NE(json.find("\"hit_rate\": 0.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"requests_ok\": 7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"latency_ms\": {\"count\": 3"), std::string::npos)
      << json;
  EXPECT_EQ(CountChar(json, '{'), CountChar(json, '}'));
}

TEST(MetricsRegistryTest, PrometheusExposition) {
  MetricsRegistry registry;
  registry.RegisterCounter("wal.syncs", [] { return 12u; });
  registry.RegisterGauge("serve.queue_depth", [] { return 4u; });
  registry.RegisterHistogram("serve.latency_ms", [] {
    HistogramSnapshot h;
    h.count = 9;
    h.p50_ms = 0.5;
    h.p95_ms = 0.9;
    h.p99_ms = 1.1;
    return h;
  });
  std::string prom = registry.ToPrometheus();
  EXPECT_NE(prom.find("# TYPE flock_wal_syncs counter\nflock_wal_syncs 12"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("# TYPE flock_serve_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(prom.find("flock_serve_latency_ms_count 9"), std::string::npos);
  EXPECT_NE(prom.find("flock_serve_latency_ms{quantile=\"0.95\"} 0.9"),
            std::string::npos)
      << prom;
}

TEST(MetricsRegistryTest, ReRegistrationReplaces) {
  MetricsRegistry registry;
  registry.RegisterCounter("serve.requests_ok", [] { return 1u; });
  registry.RegisterCounter("serve.requests_ok", [] { return 2u; });
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_NE(registry.ToJson().find("\"requests_ok\": 2"),
            std::string::npos);
}

// ---------------------------------------------------------------------
// TraceRecorder / spans.

TEST(TraceRecorderTest, NestedSpansCarryDepths) {
  TraceRecorder recorder;
  size_t outer = recorder.Begin("parse");
  size_t inner = recorder.Begin("lex");
  recorder.End();
  recorder.End();
  std::vector<SpanSnapshot> spans = recorder.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[outer].name, "parse");
  EXPECT_EQ(spans[outer].depth, 0);
  EXPECT_EQ(spans[inner].name, "lex");
  EXPECT_EQ(spans[inner].depth, 1);
  EXPECT_GE(spans[inner].start_nanos, spans[outer].start_nanos);
}

TEST(TraceRecorderTest, AddUnderGraftsClosedParents) {
  TraceRecorder recorder;
  size_t execute = recorder.Begin("execute");
  recorder.End();
  recorder.AddUnder(execute, "TableScan(t)", 0, 1000);
  recorder.AddUnder(execute, "Filter", 1, 500);
  recorder.AddUnder(execute, "score", -1, 250);  // sibling of execute
  std::vector<SpanSnapshot> spans = recorder.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[2].depth, 2);
  EXPECT_EQ(spans[3].depth, 0);
  EXPECT_EQ(spans[3].duration_nanos, 250u);
}

TEST(TraceRecorderTest, ScopedSpanIsNoopWithoutActiveRecorder) {
  ASSERT_EQ(TraceRecorder::Current(), nullptr);
  {
    obs::ScopedSpan span("orphan");
    EXPECT_FALSE(span.active());
  }
  TraceRecorder recorder;
  {
    TraceScope scope(&recorder);
    ASSERT_EQ(TraceRecorder::Current(), &recorder);
    obs::ScopedSpan span("adopted");
    EXPECT_TRUE(span.active());
  }
  EXPECT_EQ(TraceRecorder::Current(), nullptr);
  EXPECT_EQ(recorder.num_spans(), 1u);
}

TEST(TraceRecorderTest, SnapshotClosesOpenSpans) {
  TraceRecorder recorder;
  recorder.Begin("still_open");
  std::vector<SpanSnapshot> spans = recorder.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_GT(spans[0].duration_nanos, 0u);
}

TEST(TraceRecorderTest, RenderSpanTreeIndentsByDepth) {
  std::vector<SpanSnapshot> spans;
  spans.push_back(SpanSnapshot{"execute", 0, 0, 2000000});
  spans.push_back(SpanSnapshot{"TableScan(t)", 1, 0, 1000000});
  std::string rendered = obs::RenderSpanTree(spans);
  EXPECT_NE(rendered.find("execute"), std::string::npos);
  EXPECT_NE(rendered.find("  TableScan(t)"), std::string::npos);
  EXPECT_EQ(CountChar(rendered, '\n'), 2u);
}

// ---------------------------------------------------------------------
// SlowQueryLog.

SlowQueryEntry MakeEntry(const std::string& sql, double elapsed_ms) {
  SlowQueryEntry e;
  e.sql = sql;
  e.plan_digest = "00deadbeef00cafe";
  e.elapsed_ms = elapsed_ms;
  return e;
}

TEST(SlowQueryLogTest, ThresholdGatesRecording) {
  SlowQueryLog log(8, 10.0);
  EXPECT_FALSE(log.ShouldRecord(9.99));
  EXPECT_TRUE(log.ShouldRecord(10.0));
  log.set_threshold_ms(-1.0);  // negative disables
  EXPECT_FALSE(log.ShouldRecord(1e9));
  log.set_threshold_ms(0.0);  // zero records everything
  EXPECT_TRUE(log.ShouldRecord(0.0));
}

TEST(SlowQueryLogTest, RingKeepsMostRecentEntries) {
  SlowQueryLog log(3, 0.0);
  for (int i = 0; i < 7; ++i) {
    std::string sql = "q";
    sql += std::to_string(i);
    log.Record(MakeEntry(sql, 1.0 + i));
  }
  EXPECT_EQ(log.total_recorded(), 7u);
  EXPECT_EQ(log.size(), 3u);
  std::vector<SlowQueryEntry> entries = log.Dump();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].sql, "q4");  // oldest retained
  EXPECT_EQ(entries[2].sql, "q6");  // newest
  EXPECT_LT(entries[0].seq, entries[2].seq);
}

TEST(SlowQueryLogTest, ClearEmptiesButKeepsTotal) {
  SlowQueryLog log(4, 0.0);
  log.Record(MakeEntry("a", 1.0));
  log.Record(MakeEntry("b", 2.0));
  log.Clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.total_recorded(), 2u);
  log.Record(MakeEntry("c", 3.0));
  EXPECT_EQ(log.Dump().size(), 1u);
}

TEST(SlowQueryLogTest, ToJsonEscapesAndSummarizes) {
  SlowQueryLog log(4, 5.0);
  SlowQueryEntry e = MakeEntry("select \"x\" from t", 12.5);
  e.trace.push_back(SpanSnapshot{"execute", 0, 0, 1000});
  e.from_plan_cache = true;
  log.Record(std::move(e));
  std::string json = log.ToJson();
  EXPECT_NE(json.find("\"threshold_ms\": 5.000"), std::string::npos) << json;
  EXPECT_NE(json.find("select \\\"x\\\" from t"), std::string::npos) << json;
  EXPECT_NE(json.find("\"from_plan_cache\": true"), std::string::npos);
  EXPECT_NE(json.find("\"spans\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"elapsed_ms\": 12.500"), std::string::npos);
}

// ---------------------------------------------------------------------
// Engine integration: tracing, plan digests, slow log through SqlEngine.

class ObsEngineTest : public ::testing::Test {
 protected:
  void Init(double slow_threshold_ms) {
    sql::EngineOptions options;
    options.num_threads = 1;
    options.slow_query_threshold_ms = slow_threshold_ms;
    engine_ = std::make_unique<sql::SqlEngine>(&db_, options);
    ASSERT_TRUE(
        engine_->Execute("CREATE TABLE t (a INT, b DOUBLE)").ok());
    ASSERT_TRUE(engine_
                    ->Execute("INSERT INTO t VALUES (1, 1.5), (2, 2.5), "
                              "(3, 3.5), (4, 4.5)")
                    .ok());
  }

  static bool HasSpan(const std::vector<SpanSnapshot>& spans,
                      const std::string& name) {
    for (const auto& s : spans) {
      if (s.name == name) return true;
    }
    return false;
  }

  storage::Database db_;
  std::unique_ptr<sql::SqlEngine> engine_;
};

TEST_F(ObsEngineTest, TraceOffByDefault) {
  Init(-1.0);
  auto result = engine_->Execute("SELECT a FROM t WHERE b > 2");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->trace.empty());
}

TEST_F(ObsEngineTest, TracedSelectCoversPipelineStages) {
  Init(-1.0);
  sql::ExecOptions opts;
  opts.trace = true;
  auto result = engine_->Execute("SELECT a FROM t WHERE b > 2", opts);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->trace.empty());
  for (const char* stage :
       {"parse", "plan", "optimize", "lower", "execute"}) {
    EXPECT_TRUE(HasSpan(result->trace, stage)) << stage;
  }
  // Optimizer rules appear as children of optimize.
  EXPECT_TRUE(HasSpan(result->trace, "rule.constant_folding"));
  // Per-operator counters are grafted below execute.
  bool has_operator = false;
  for (const auto& s : result->trace) {
    if (s.name.find("Scan") != std::string::npos) has_operator = true;
  }
  EXPECT_TRUE(has_operator);
  EXPECT_EQ(result->plan_digest.size(), 16u);
}

TEST_F(ObsEngineTest, PlanCacheHitTraceShowsLookupNotParse) {
  Init(-1.0);
  sql::ExecOptions opts;
  opts.trace = true;
  const std::string q = "SELECT a FROM t WHERE b > 2";
  ASSERT_TRUE(engine_->Execute(q, opts).ok());
  auto hit = engine_->Execute(q, opts);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->from_plan_cache);
  EXPECT_TRUE(HasSpan(hit->trace, "plan_cache.lookup"));
  EXPECT_TRUE(HasSpan(hit->trace, "execute"));
  EXPECT_FALSE(HasSpan(hit->trace, "parse"));
}

TEST_F(ObsEngineTest, PlanDigestIsStablePerPlanShape) {
  Init(-1.0);
  auto a = engine_->Execute("SELECT a FROM t WHERE b > 2");
  auto b = engine_->Execute("SELECT a FROM t WHERE b > 2");
  auto c = engine_->Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(a->plan_digest, b->plan_digest);
  EXPECT_NE(a->plan_digest, c->plan_digest);
  EXPECT_EQ(a->plan_digest.size(), 16u);
}

TEST_F(ObsEngineTest, ExplainAnalyzeAppendsTraceSection) {
  Init(-1.0);
  auto result = engine_->Execute("EXPLAIN ANALYZE SELECT a FROM t");
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->plan_text.find("== Trace =="), std::string::npos)
      << result->plan_text;
  EXPECT_NE(result->plan_text.find("execute"), std::string::npos);
  auto plain = engine_->Execute("EXPLAIN SELECT a FROM t");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->plan_text.find("== Trace =="), std::string::npos);
}

TEST_F(ObsEngineTest, SlowLogCapturesOutliersWithDigestAndNormalizedSql) {
  Init(0.0);  // zero threshold: everything is an outlier
  ASSERT_TRUE(engine_->Execute("SELECT  a FROM t WHERE b > 2").ok());
  obs::SlowQueryLog* log = engine_->slow_log();
  ASSERT_GE(log->total_recorded(), 1u);
  std::vector<SlowQueryEntry> entries = log->Dump();
  const SlowQueryEntry& last = entries.back();
  EXPECT_EQ(last.sql, "select a from t where b > 2");
  EXPECT_EQ(last.plan_digest.size(), 16u);
  EXPECT_GE(last.elapsed_ms, 0.0);
}

TEST_F(ObsEngineTest, SlowLogDisabledRecordsNothing) {
  Init(-1.0);
  ASSERT_TRUE(engine_->Execute("SELECT a FROM t").ok());
  EXPECT_EQ(engine_->slow_log()->total_recorded(), 0u);
}

TEST_F(ObsEngineTest, TracedDmlGetsExecuteSpan) {
  Init(-1.0);
  sql::ExecOptions opts;
  opts.trace = true;
  auto result = engine_->Execute("INSERT INTO t VALUES (9, 9.5)", opts);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(HasSpan(result->trace, "parse"));
  EXPECT_TRUE(HasSpan(result->trace, "execute"));
  EXPECT_TRUE(result->plan_digest.empty());
}

}  // namespace
}  // namespace flock
