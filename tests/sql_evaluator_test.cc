// Focused unit tests for the vectorized expression evaluator (three-valued
// logic, numeric edge cases, casts) and the rule optimizer's rewrites.

#include <gtest/gtest.h>

#include "sql/engine.h"
#include "sql/evaluator.h"
#include "sql/optimizer.h"
#include "sql/parser.h"
#include "sql/planner.h"
#include "storage/database.h"

namespace flock::sql {
namespace {

using storage::ColumnDef;
using storage::ColumnVectorPtr;
using storage::DataType;
using storage::RecordBatch;
using storage::Schema;
using storage::Value;

class EvaluatorTest : public ::testing::Test {
 protected:
  EvaluatorTest() {
    FunctionRegistry::RegisterBuiltins(&registry_);
    schema_ = Schema({ColumnDef{"x", DataType::kInt64, true},
                      ColumnDef{"y", DataType::kDouble, true},
                      ColumnDef{"s", DataType::kString, true},
                      ColumnDef{"b", DataType::kBool, true}});
    batch_ = RecordBatch(schema_);
    // Row layout: x, y, s, b
    EXPECT_TRUE(batch_
                    .AppendRow({Value::Int(10), Value::Double(2.5),
                                Value::String("abc"), Value::Bool(true)})
                    .ok());
    EXPECT_TRUE(batch_
                    .AppendRow({Value::Null(), Value::Double(-1.0),
                                Value::String(""), Value::Bool(false)})
                    .ok());
    EXPECT_TRUE(batch_
                    .AppendRow({Value::Int(-3), Value::Null(),
                                Value::Null(), Value::Null()})
                    .ok());
  }

  /// Parses, binds against the fixture schema, evaluates.
  ColumnVectorPtr Eval(const std::string& text) {
    auto expr = Parser::ParseExpression(text);
    EXPECT_TRUE(expr.ok()) << text;
    Planner planner(nullptr, &registry_);
    // Bind via the DML-style schema binder exposed through a trivial
    // planner path: reuse BindExprToSchema by planning is private, so
    // bind manually here.
    Status bad = Status::OK();
    VisitExprMutable(expr->get(), [&](Expr* e) {
      if (e->kind == ExprKind::kColumnRef && e->column_index < 0) {
        auto idx = schema_.FindColumn(e->column_name);
        if (!idx.has_value()) {
          bad = Status::NotFound(e->column_name);
          return;
        }
        e->column_index = static_cast<int>(*idx);
        e->resolved_type = schema_.column(*idx).type;
      }
    });
    EXPECT_TRUE(bad.ok()) << bad.ToString();
    auto col = EvaluateExpr(**expr, batch_, &registry_);
    EXPECT_TRUE(col.ok()) << text << ": " << col.status().ToString();
    return col.ok() ? *col : nullptr;
  }

  FunctionRegistry registry_;
  Schema schema_;
  RecordBatch batch_;
};

TEST_F(EvaluatorTest, ArithmeticTypePromotion) {
  auto col = Eval("x + 1");
  EXPECT_EQ(col->type(), DataType::kInt64);
  EXPECT_EQ(col->int_at(0), 11);
  auto mixed = Eval("x + y");
  EXPECT_EQ(mixed->type(), DataType::kDouble);
  EXPECT_DOUBLE_EQ(mixed->double_at(0), 12.5);
}

TEST_F(EvaluatorTest, DivisionAlwaysDouble) {
  auto col = Eval("x / 4");
  EXPECT_EQ(col->type(), DataType::kDouble);
  EXPECT_DOUBLE_EQ(col->double_at(0), 2.5);
}

TEST_F(EvaluatorTest, DivisionByZeroYieldsNull) {
  auto col = Eval("x / 0");
  EXPECT_TRUE(col->IsNull(0));
  auto mod = Eval("x % 0");
  EXPECT_TRUE(mod->IsNull(0));
}

TEST_F(EvaluatorTest, NullPropagatesThroughArithmetic) {
  auto col = Eval("x * 2");
  EXPECT_FALSE(col->IsNull(0));
  EXPECT_TRUE(col->IsNull(1));  // x is NULL in row 1
}

TEST_F(EvaluatorTest, KleeneAnd) {
  // FALSE AND NULL = FALSE; TRUE AND NULL = NULL.
  auto false_and_null = Eval("FALSE AND (s IS NULL AND x > 999)");
  (void)false_and_null;
  auto a = Eval("b AND x IS NULL");
  // row0: b=true, x not null -> true AND false = false
  EXPECT_FALSE(a->IsNull(0));
  EXPECT_FALSE(a->bool_at(0));
  // row2: b NULL, x NOT null -> NULL AND false = false
  EXPECT_FALSE(a->IsNull(2));
  EXPECT_FALSE(a->bool_at(2));
  auto c = Eval("b AND y IS NULL");
  // row2: b NULL AND true -> NULL
  EXPECT_TRUE(c->IsNull(2));
}

TEST_F(EvaluatorTest, KleeneOr) {
  auto a = Eval("b OR y IS NULL");
  // row2: b=NULL, y IS NULL=true -> NULL OR true = true.
  EXPECT_FALSE(a->IsNull(2));
  EXPECT_TRUE(a->bool_at(2));
  auto c = Eval("b OR x IS NULL");
  // row1: b=false, x IS NULL=true -> true.
  EXPECT_TRUE(c->bool_at(1));
  // row2: b=NULL, x=-3 not null -> NULL OR false = NULL.
  EXPECT_TRUE(c->IsNull(2));
}

TEST_F(EvaluatorTest, ComparisonWithNullIsNull) {
  auto col = Eval("x > 0");
  EXPECT_TRUE(col->bool_at(0));
  EXPECT_TRUE(col->IsNull(1));
  EXPECT_FALSE(col->bool_at(2));
}

TEST_F(EvaluatorTest, StringOrderingComparison) {
  auto col = Eval("s < 'b'");
  EXPECT_TRUE(col->bool_at(0));   // "abc" < "b"
  EXPECT_TRUE(col->bool_at(1));   // "" < "b"
  EXPECT_TRUE(col->IsNull(2));
}

TEST_F(EvaluatorTest, MixedTypeOrderingRejected) {
  auto expr = Parser::ParseExpression("s > 5");
  ASSERT_TRUE(expr.ok());
  VisitExprMutable(expr->get(), [&](Expr* e) {
    if (e->kind == ExprKind::kColumnRef) {
      e->column_index = 2;
      e->resolved_type = DataType::kString;
    }
  });
  auto col = EvaluateExpr(**expr, batch_, &registry_);
  EXPECT_FALSE(col.ok());
}

TEST_F(EvaluatorTest, CaseWithoutElseYieldsNull) {
  auto col = Eval("CASE WHEN x > 5 THEN 1 END");
  EXPECT_EQ(col->int_at(0), 1);
  EXPECT_TRUE(col->IsNull(2));  // x=-3 matches nothing, no ELSE
}

TEST_F(EvaluatorTest, CoalescePicksFirstNonNull) {
  auto col = Eval("COALESCE(y, 99)");
  EXPECT_DOUBLE_EQ(col->double_at(0), 2.5);
  EXPECT_DOUBLE_EQ(col->double_at(2), 99.0);
}

TEST_F(EvaluatorTest, InWithNullNeedle) {
  auto col = Eval("x IN (10, -3)");
  EXPECT_TRUE(col->bool_at(0));
  EXPECT_TRUE(col->IsNull(1));  // NULL IN (...) -> NULL
  EXPECT_TRUE(col->bool_at(2));
}

TEST_F(EvaluatorTest, NotInNegates) {
  auto col = Eval("x NOT IN (10)");
  EXPECT_FALSE(col->bool_at(0));
  EXPECT_TRUE(col->bool_at(2));
}

TEST_F(EvaluatorTest, CastStringToNumberErrors) {
  auto expr = Parser::ParseExpression("CAST(s AS INT)");
  ASSERT_TRUE(expr.ok());
  VisitExprMutable(expr->get(), [&](Expr* e) {
    if (e->kind == ExprKind::kColumnRef) {
      e->column_index = 2;
      e->resolved_type = DataType::kString;
    }
  });
  auto col = EvaluateExpr(**expr, batch_, &registry_);
  EXPECT_FALSE(col.ok());  // "abc" is not a number
}

TEST_F(EvaluatorTest, BoolParticipatesInArithmetic) {
  auto col = Eval("b + 1");
  EXPECT_EQ(col->type(), DataType::kDouble);
  EXPECT_DOUBLE_EQ(col->double_at(0), 2.0);
  EXPECT_DOUBLE_EQ(col->double_at(1), 1.0);
}

TEST_F(EvaluatorTest, ConstantEvaluation) {
  auto expr = Parser::ParseExpression("2 * (3 + 4)");
  ASSERT_TRUE(expr.ok());
  EXPECT_TRUE(IsConstantExpr(**expr));
  auto v = EvaluateConstant(**expr, &registry_);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->int_value(), 14);
  auto with_col = Parser::ParseExpression("x + 1");
  EXPECT_FALSE(IsConstantExpr(**with_col));
}

// ---------------------------------------------------------------------------
// Optimizer rewrites
// ---------------------------------------------------------------------------

class OptimizerRewriteTest : public ::testing::Test {
 protected:
  OptimizerRewriteTest() : engine_(&db_, MakeOptions()) {
    EXPECT_TRUE(engine_
                    .Execute("CREATE TABLE t (a INT, b DOUBLE, c VARCHAR)")
                    .ok());
    EXPECT_TRUE(engine_
                    .Execute("CREATE TABLE u (a2 INT, d DOUBLE)")
                    .ok());
  }

  static EngineOptions MakeOptions() {
    EngineOptions options;
    options.num_threads = 1;
    return options;
  }

  std::string Plan(const std::string& sql) {
    auto result = engine_.Execute("EXPLAIN " + sql);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? result->plan_text : "";
  }

  storage::Database db_;
  SqlEngine engine_;
};

TEST_F(OptimizerRewriteTest, ConstantFoldingInPredicate) {
  std::string plan = Plan("SELECT a FROM t WHERE a > 2 + 3");
  EXPECT_NE(plan.find("(a > 5)"), std::string::npos) << plan;
}

TEST_F(OptimizerRewriteTest, FilterMergesThroughProjection) {
  // The WHERE references a projected alias source column; the filter
  // lands below the projection directly over the scan.
  std::string plan = Plan("SELECT a + 1 AS a1 FROM t WHERE a > 3");
  size_t filter_pos = plan.find("Filter");
  size_t project_pos = plan.find("Project");
  ASSERT_NE(filter_pos, std::string::npos);
  ASSERT_NE(project_pos, std::string::npos);
  EXPECT_GT(filter_pos, project_pos) << plan;
}

TEST_F(OptimizerRewriteTest, JoinPredicatePushdownSplitsSides) {
  std::string plan = Plan(
      "SELECT t.a FROM t JOIN u ON t.a = u.a2 "
      "WHERE t.b > 1 AND u.d < 5");
  // Both single-side conjuncts sink below the join: two filters, each
  // directly above its scan.
  EXPECT_NE(plan.find("Filter((t.b > 1"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Filter((u.d < 5"), std::string::npos) << plan;
}

TEST_F(OptimizerRewriteTest, ScanNarrowedToUsedColumns) {
  std::string plan = Plan("SELECT a FROM t WHERE b > 0");
  EXPECT_NE(plan.find("cols=[a,b]"), std::string::npos) << plan;
  EXPECT_EQ(plan.find("c]"), std::string::npos) << plan;
}

TEST_F(OptimizerRewriteTest, SplitAndCombineConjuncts) {
  auto expr = Parser::ParseExpression("a > 1 AND b < 2 AND c = 'x'");
  ASSERT_TRUE(expr.ok());
  auto conjuncts = SplitConjuncts(std::move(*expr));
  EXPECT_EQ(conjuncts.size(), 3u);
  ExprPtr combined = CombineConjuncts(std::move(conjuncts));
  auto reparsed =
      Parser::ParseExpression("a > 1 AND b < 2 AND c = 'x'");
  EXPECT_TRUE(combined->Equals(**reparsed));
}

TEST_F(OptimizerRewriteTest, EmptyConjunctsBecomeTrue) {
  ExprPtr combined = CombineConjuncts({});
  EXPECT_EQ(combined->kind, ExprKind::kLiteral);
  EXPECT_TRUE(combined->literal.bool_value());
}

}  // namespace
}  // namespace flock::sql
