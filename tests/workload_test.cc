#include <gtest/gtest.h>

#include <set>

#include "sql/parser.h"
#include "workload/landscape.h"
#include "workload/notebooks.h"
#include "workload/synthetic.h"
#include "workload/tpcc.h"
#include "workload/tpch.h"

namespace flock::workload {
namespace {

TEST(TpchTest, SchemaCreatesEightTables) {
  storage::Database db;
  TpchWorkload tpch;
  ASSERT_TRUE(tpch.CreateSchema(&db).ok());
  EXPECT_EQ(db.ListTables().size(), 8u);
  auto lineitem = db.GetTable("lineitem");
  ASSERT_TRUE(lineitem.ok());
  EXPECT_EQ((*lineitem)->schema().num_columns(), 16u);
}

TEST(TpchTest, AllTemplatesParse) {
  TpchWorkload tpch(123);
  for (size_t t = 0; t < TpchWorkload::NumTemplates(); ++t) {
    std::string q = tpch.Instantiate(t);
    auto stmt = sql::Parser::Parse(q);
    EXPECT_TRUE(stmt.ok()) << "template " << t << ": "
                           << stmt.status().ToString() << "\n" << q;
  }
}

TEST(TpchTest, StreamCyclesTemplatesWithFreshParameters) {
  TpchWorkload tpch(5);
  auto stream = tpch.GenerateQueryStream(44);
  ASSERT_EQ(stream.size(), 44u);
  // Template 0 reappears at index 22 with different parameters.
  EXPECT_NE(stream[0], stream[22]);
}

TEST(TpccTest, SchemaCreatesNineTables) {
  storage::Database db;
  TpccWorkload tpcc;
  ASSERT_TRUE(tpcc.CreateSchema(&db).ok());
  EXPECT_EQ(db.ListTables().size(), 9u);
}

TEST(TpccTest, AllTransactionStatementsParse) {
  TpccWorkload tpcc(7);
  auto stream = tpcc.GenerateQueryStream(500);
  ASSERT_EQ(stream.size(), 500u);
  size_t writes = 0;
  for (const std::string& q : stream) {
    auto stmt = sql::Parser::Parse(q);
    ASSERT_TRUE(stmt.ok()) << stmt.status().ToString() << "\n" << q;
    auto kind = (*stmt)->kind();
    if (kind == sql::StatementKind::kInsert ||
        kind == sql::StatementKind::kUpdate ||
        kind == sql::StatementKind::kDelete) {
      ++writes;
    }
  }
  // TPC-C is update-heavy: a large fraction of statements mutate.
  EXPECT_GT(writes, stream.size() / 4);
}

TEST(NotebookTest, CorpusShapeMatchesOptions) {
  NotebookCorpusOptions options;
  options.num_notebooks = 2000;
  options.num_packages = 300;
  options.seed = 9;
  NotebookCorpus corpus = GenerateNotebookCorpus(options);
  EXPECT_EQ(corpus.notebooks.size(), 2000u);
  for (const auto& nb : corpus.notebooks) {
    EXPECT_GE(nb.size(), 1u);
    for (uint32_t pkg : nb) EXPECT_LT(pkg, 300u);
  }
}

TEST(NotebookTest, CoverageCurveMonotone) {
  NotebookCorpusOptions options;
  options.num_notebooks = 5000;
  options.seed = 13;
  NotebookCorpus corpus = GenerateNotebookCorpus(options);
  std::vector<size_t> ks = {1, 5, 10, 50, 100, 400};
  auto curve = CoverageCurve(corpus, ks);
  ASSERT_EQ(curve.size(), ks.size());
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i], curve[i - 1]);
  }
  EXPECT_NEAR(curve.back(), 1.0, 1e-9);  // all packages -> full coverage
}

TEST(NotebookTest, HigherSkewConcentratesCoverage) {
  // The Figure-2 mechanism: 2019 has 3x the packages but *more* top-10
  // coverage because popularity concentrated.
  NotebookCorpusOptions y2017;
  y2017.num_packages = 400;
  y2017.zipf_skew = 1.35;
  y2017.num_notebooks = 20000;
  y2017.seed = 17;
  NotebookCorpusOptions y2019 = y2017;
  y2019.num_packages = 1200;
  y2019.zipf_skew = 1.55;
  y2019.seed = 19;
  auto c2017 = CoverageCurve(GenerateNotebookCorpus(y2017), {10});
  auto c2019 = CoverageCurve(GenerateNotebookCorpus(y2019), {10});
  EXPECT_GT(c2019[0], c2017[0]);
}

TEST(LandscapeTest, MatrixShape) {
  Landscape landscape;
  EXPECT_EQ(landscape.features().size(), 17u);
  EXPECT_EQ(landscape.systems().size(), 9u);
  for (const auto& system : landscape.systems()) {
    EXPECT_EQ(system.support.size(), 17u);
  }
}

TEST(LandscapeTest, TrendsMatchPaper) {
  Landscape landscape;
  // Trend 1: proprietary stacks lead on data management.
  EXPECT_GT(landscape.ProprietaryDataManagementGap(), 0.5);
  // Trend 2: complete third-party coverage is rare.
  EXPECT_LT(landscape.OverallGoodFraction(), 0.6);
  std::string rendered = landscape.Render();
  EXPECT_NE(rendered.find("Feature Store"), std::string::npos);
  EXPECT_NE(rendered.find("Bing"), std::string::npos);
}

TEST(SyntheticTest, BuildsTableModelAndMatrix) {
  ::flock::flock::FlockEngineOptions engine_options;
  engine_options.sql.num_threads = 2;
  ::flock::flock::FlockEngine engine(engine_options);
  InferenceWorkloadOptions options;
  options.num_rows = 5000;
  options.train_rows = 2000;
  options.gbt_trees = 10;
  auto workload = BuildInferenceWorkload(&engine, options);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();
  EXPECT_EQ(workload->raw.rows(), 5000u);
  EXPECT_EQ(workload->raw.cols(), 28u);
  EXPECT_TRUE(engine.models()->Contains("ctr"));
  auto count = engine.Execute("SELECT COUNT(*) FROM clickstream");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->batch.column(0)->int_at(0), 5000);

  // In-DB scoring agrees with direct pipeline scoring.
  auto r = engine.Execute(
      "SELECT id, PREDICT(ctr, f0, f1, f2, f3, f4, f5, f6, f7, f8, f9, "
      "f10, f11, f12, f13, f14, f15, f16, f17, f18, f19, f20, f21, f22, "
      "f23, f24, f25, f26, segment) AS p FROM clickstream LIMIT 16");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  for (size_t i = 0; i < r->batch.num_rows(); ++i) {
    int64_t id = r->batch.column(0)->int_at(i);
    EXPECT_NEAR(
        r->batch.column(1)->double_at(i),
        workload->pipeline.ScoreRow(
            workload->raw.row(static_cast<size_t>(id))),
        1e-9);
  }
}

}  // namespace
}  // namespace flock::workload
