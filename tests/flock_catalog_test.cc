#include <gtest/gtest.h>

#include "flock/flock_engine.h"
#include "ml/linear.h"
#include "policy/monitor.h"
#include "common/random.h"

namespace flock::flock {
namespace {

using storage::Value;

ml::Pipeline TinyPipeline() {
  ml::Pipeline pipeline;
  pipeline.SetInputs(
      {ml::FeatureSpec{"x", ml::FeatureKind::kNumeric, {}},
       ml::FeatureSpec{"y", ml::FeatureKind::kNumeric, {}}});
  ml::LinearModel model;
  model.weights = {1.0, -0.5};
  model.bias = 0.1;
  model.logistic = true;
  pipeline.SetLinearModel(model);
  return pipeline;
}

class CatalogTablesTest : public ::testing::Test {
 protected:
  CatalogTablesTest() {
    EXPECT_TRUE(
        engine_.Execute("CREATE TABLE pts (x DOUBLE, y DOUBLE, flagged "
                        "INT)")
            .ok());
    EXPECT_TRUE(engine_
                    .Execute("INSERT INTO pts VALUES (4, 0, 0), "
                             "(-4, 0, 0), (5, 1, 0), (-5, 1, 0)")
                    .ok());
    EXPECT_TRUE(engine_.DeployModel("scorer", TinyPipeline(), "ml-team",
                                    "run-77")
                    .ok());
  }

  FlockEngine engine_;
};

TEST_F(CatalogTablesTest, ModelsAreQueryable) {
  auto r = engine_.Execute(
      "SELECT name, version, created_by, model_type, num_inputs "
      "FROM flock_models");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->batch.num_rows(), 1u);
  EXPECT_EQ(r->batch.column(0)->string_at(0), "scorer");
  EXPECT_EQ(r->batch.column(1)->int_at(0), 1);
  EXPECT_EQ(r->batch.column(2)->string_at(0), "ml-team");
  EXPECT_EQ(r->batch.column(3)->string_at(0), "linear");
  EXPECT_EQ(r->batch.column(4)->int_at(0), 2);
}

TEST_F(CatalogTablesTest, CatalogReflectsRedeployAndDrop) {
  ASSERT_TRUE(engine_.DeployModel("scorer", TinyPipeline()).ok());
  auto r = engine_.Execute("SELECT version FROM flock_models");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->batch.column(0)->int_at(0), 2);
  ASSERT_TRUE(engine_.Execute("DROP MODEL scorer").ok());
  auto empty = engine_.Execute("SELECT COUNT(*) FROM flock_models");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->batch.column(0)->int_at(0), 0);
}

TEST_F(CatalogTablesTest, AuditIsQueryableWithAggregates) {
  (void)engine_.Execute("SELECT PREDICT(scorer, x, y) FROM pts");
  auto r = engine_.Execute(
      "SELECT kind, COUNT(*) AS n FROM flock_audit GROUP BY kind "
      "ORDER BY kind");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  bool saw_register = false, saw_score = false;
  for (size_t i = 0; i < r->batch.num_rows(); ++i) {
    if (r->batch.column(0)->string_at(i) == "REGISTER") {
      saw_register = true;
    }
    if (r->batch.column(0)->string_at(i) == "SCORE") saw_score = true;
  }
  EXPECT_TRUE(saw_register);
  EXPECT_TRUE(saw_score);
}

TEST_F(CatalogTablesTest, RestrictedFlagShowsAcl) {
  ASSERT_TRUE(
      engine_.models()->SetAccessControl("scorer", {"alice"}).ok());
  auto r = engine_.Execute("SELECT restricted FROM flock_models");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->batch.column(0)->bool_at(0));
}

TEST_F(CatalogTablesTest, UpdateWithPredictPredicate) {
  auto r = engine_.Execute(
      "UPDATE pts SET flagged = 1 WHERE PREDICT(scorer, x, y) > 0.5");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Rows with sigmoid(x - 0.5y + 0.1) > 0.5: x=4,y=0 and x=5,y=1.
  EXPECT_EQ(r->rows_affected, 2u);
  auto check = engine_.Execute(
      "SELECT x FROM pts WHERE flagged = 1 ORDER BY x");
  ASSERT_EQ(check->batch.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(check->batch.column(0)->double_at(0), 4.0);
}

TEST_F(CatalogTablesTest, DeleteWithPredictPredicate) {
  auto r = engine_.Execute(
      "DELETE FROM pts WHERE PREDICT(scorer, x, y) < 0.5");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows_affected, 2u);
  auto remaining = engine_.Execute("SELECT COUNT(*) FROM pts");
  EXPECT_EQ(remaining->batch.column(0)->int_at(0), 2);
}

TEST_F(CatalogTablesTest, BatchScoringIntoTable) {
  ASSERT_TRUE(engine_
                  .Execute("CREATE TABLE scores (x DOUBLE, s DOUBLE)")
                  .ok());
  auto r = engine_.Execute(
      "INSERT INTO scores SELECT x, PREDICT(scorer, x, y) FROM pts");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows_affected, 4u);
  auto check = engine_.Execute(
      "SELECT COUNT(*) FROM scores WHERE s BETWEEN 0 AND 1");
  EXPECT_EQ(check->batch.column(0)->int_at(0), 4);
}

}  // namespace
}  // namespace flock::flock

namespace flock::policy {
namespace {

TEST(ModelMonitorTest, NoDriftOnStableDistribution) {
  MonitorOptions options;
  options.window_size = 500;
  ModelMonitor monitor(options);
  ::flock::Random rng(1);
  for (int i = 0; i < 2500; ++i) {
    monitor.Observe(0.3 + 0.2 * rng.NextDouble());
  }
  EXPECT_EQ(monitor.completed_windows(), 5u);
  EXPECT_LT(monitor.LatestPsi(), 0.1);
  EXPECT_FALSE(monitor.DriftDetected());
}

TEST(ModelMonitorTest, DetectsShiftedScores) {
  MonitorOptions options;
  options.window_size = 500;
  ModelMonitor monitor(options);
  ::flock::Random rng(2);
  for (int i = 0; i < 1000; ++i) {
    monitor.Observe(0.2 + 0.1 * rng.NextDouble());  // baseline low scores
  }
  for (int i = 0; i < 1000; ++i) {
    monitor.Observe(0.7 + 0.1 * rng.NextDouble());  // drifted high scores
  }
  EXPECT_TRUE(monitor.DriftDetected());
  EXPECT_GT(monitor.LatestPsi(), 0.25);
  EXPECT_GT(monitor.WindowMean(3), monitor.WindowMean(0));
}

TEST(ModelMonitorTest, RebaselineClearsDrift) {
  MonitorOptions options;
  options.window_size = 200;
  ModelMonitor monitor(options);
  ::flock::Random rng(3);
  for (int i = 0; i < 400; ++i) monitor.Observe(0.2);
  for (int i = 0; i < 400; ++i) {
    monitor.Observe(0.8 + 0.05 * rng.NextDouble());
  }
  ASSERT_TRUE(monitor.DriftDetected());
  monitor.Rebaseline();
  for (int i = 0; i < 400; ++i) {
    monitor.Observe(0.8 + 0.05 * rng.NextDouble());
  }
  EXPECT_FALSE(monitor.DriftDetected()) << monitor.Summary();
}

TEST(ModelMonitorTest, PartialWindowIgnored) {
  MonitorOptions options;
  options.window_size = 100;
  ModelMonitor monitor(options);
  for (int i = 0; i < 150; ++i) monitor.Observe(0.5);
  EXPECT_EQ(monitor.completed_windows(), 1u);
  EXPECT_DOUBLE_EQ(monitor.LatestPsi(), 0.0);  // needs 2 windows
}

TEST(ModelMonitorTest, OutOfRangeScoresClampToEdgeBins) {
  MonitorOptions options;
  options.window_size = 10;
  ModelMonitor monitor(options);
  for (int i = 0; i < 10; ++i) monitor.Observe(-5.0);
  for (int i = 0; i < 10; ++i) monitor.Observe(5.0);
  EXPECT_EQ(monitor.completed_windows(), 2u);
  EXPECT_GT(monitor.LatestPsi(), 0.25);  // all mass moved bins
}

}  // namespace
}  // namespace flock::policy
