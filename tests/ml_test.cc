#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "common/string_util.h"
#include "ml/dataset.h"
#include "ml/graph.h"
#include "ml/linear.h"
#include "ml/pipeline.h"
#include "ml/row_scorer.h"
#include "ml/runtime.h"
#include "ml/tree.h"

namespace flock::ml {
namespace {

/// Synthetic binary-classification data: y depends on features 0..3 only;
/// remaining features are noise (model sparsity for pruning tests).
Dataset MakeClassificationData(size_t n, size_t features, uint64_t seed) {
  Random rng(seed);
  Dataset data;
  data.x = Matrix(n, features);
  data.y.resize(n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < features; ++c) {
      data.x.at(r, c) = rng.NextGaussian();
    }
    double z = 1.5 * data.x.at(r, 0) - 2.0 * data.x.at(r, 1) +
               1.0 * data.x.at(r, 2) * data.x.at(r, 2) -
               0.8 * data.x.at(r, 3) + 0.2 * rng.NextGaussian();
    data.y[r] = z > 0 ? 1.0 : 0.0;
  }
  return data;
}

Dataset MakeLinearData(size_t n, uint64_t seed) {
  Random rng(seed);
  Dataset data;
  data.x = Matrix(n, 3);
  data.y.resize(n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < 3; ++c) data.x.at(r, c) = rng.NextGaussian();
    double z = 2.0 * data.x.at(r, 0) - 1.0 * data.x.at(r, 1) + 0.5;
    data.y[r] = z > 0 ? 1.0 : 0.0;
  }
  return data;
}

TEST(DatasetTest, TrainTestSplitPartitions) {
  Dataset data = MakeClassificationData(100, 4, 1);
  auto [train, test] = TrainTestSplit(data, 0.25, 7);
  EXPECT_EQ(train.size(), 75u);
  EXPECT_EQ(test.size(), 25u);
  EXPECT_EQ(train.num_features(), 4u);
}

TEST(DatasetTest, MetricsBehave) {
  std::vector<double> scores = {0.9, 0.8, 0.2, 0.1};
  std::vector<double> labels = {1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(Accuracy(scores, labels), 1.0);
  EXPECT_DOUBLE_EQ(Auc(scores, labels), 1.0);
  std::vector<double> anti = {0.1, 0.2, 0.8, 0.9};
  EXPECT_DOUBLE_EQ(Auc(anti, labels), 0.0);
  EXPECT_NEAR(Rmse({1.0, 2.0}, {0.0, 2.0}), std::sqrt(0.5), 1e-12);
}

TEST(LinearTrainerTest, LearnsSeparableProblem) {
  Dataset data = MakeLinearData(2000, 11);
  auto [train, test] = TrainTestSplit(data, 0.2, 3);
  LinearTrainerOptions options;
  LinearModel model = TrainLinear(train, options);
  std::vector<double> scores;
  for (size_t r = 0; r < test.size(); ++r) {
    scores.push_back(model.Score(test.x.row(r)));
  }
  EXPECT_GT(Accuracy(scores, test.y), 0.9);
  EXPECT_GT(Auc(scores, test.y), 0.95);
}

TEST(LinearTrainerTest, L1ProducesSparseWeights) {
  Dataset data = MakeClassificationData(2000, 16, 5);
  LinearTrainerOptions options;
  options.l1 = 0.02;
  options.epochs = 30;
  LinearModel model = TrainLinear(data, options);
  size_t zeros = 0;
  for (double w : model.weights) {
    if (w == 0.0) ++zeros;
  }
  EXPECT_GT(zeros, 0u) << "L1 should zero out some noise features";
}

TEST(TreeTrainerTest, SingleTreeBeatsChance) {
  Dataset data = MakeClassificationData(2000, 6, 13);
  auto [train, test] = TrainTestSplit(data, 0.25, 17);
  TreeTrainerOptions options;
  options.max_depth = 6;
  Tree tree = TrainDecisionTree(train, options);
  std::vector<double> scores;
  for (size_t r = 0; r < test.size(); ++r) {
    scores.push_back(tree.Predict(test.x.row(r)));
  }
  EXPECT_GT(Accuracy(scores, test.y), 0.75);
}

TEST(TreeTrainerTest, DepthLimitRespected) {
  Dataset data = MakeClassificationData(500, 4, 29);
  TreeTrainerOptions options;
  options.max_depth = 2;
  Tree tree = TrainDecisionTree(data, options);
  // Depth 2 => at most 3 internal + 4 leaves = 7 nodes.
  EXPECT_LE(tree.size(), 7u);
}

TEST(ForestTest, ForestBeatsSingleTree) {
  Dataset data = MakeClassificationData(3000, 6, 31);
  auto [train, test] = TrainTestSplit(data, 0.25, 37);
  TreeTrainerOptions tree_options;
  tree_options.max_depth = 5;
  Tree single = TrainDecisionTree(train, tree_options);
  ForestOptions forest_options;
  forest_options.num_trees = 25;
  forest_options.tree = tree_options;
  forest_options.tree.max_features = 3;
  TreeEnsembleModel forest = TrainRandomForest(train, forest_options);

  std::vector<double> single_scores, forest_scores;
  for (size_t r = 0; r < test.size(); ++r) {
    single_scores.push_back(single.Predict(test.x.row(r)));
    forest_scores.push_back(forest.Score(test.x.row(r)));
  }
  EXPECT_GE(Auc(forest_scores, test.y) + 0.02, Auc(single_scores, test.y));
  EXPECT_GT(Auc(forest_scores, test.y), 0.85);
}

TEST(GbtTest, BoostingLearnsNonlinearTarget) {
  Dataset data = MakeClassificationData(4000, 6, 41);
  auto [train, test] = TrainTestSplit(data, 0.25, 43);
  GbtOptions options;
  options.num_trees = 40;
  TreeEnsembleModel model = TrainGradientBoosting(train, options);
  std::vector<double> scores;
  for (size_t r = 0; r < test.size(); ++r) {
    scores.push_back(model.Score(test.x.row(r)));
  }
  EXPECT_GT(Auc(scores, test.y), 0.9);
  // Scores are probabilities.
  for (double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(GbtTest, RegressionMode) {
  Random rng(51);
  Dataset data;
  data.x = Matrix(2000, 2);
  data.y.resize(2000);
  for (size_t r = 0; r < 2000; ++r) {
    data.x.at(r, 0) = rng.UniformDouble(-2, 2);
    data.x.at(r, 1) = rng.UniformDouble(-2, 2);
    data.y[r] = 3.0 * data.x.at(r, 0) + data.x.at(r, 1) *
                                             data.x.at(r, 1);
  }
  GbtOptions options;
  options.classification = false;
  options.num_trees = 60;
  options.learning_rate = 0.3;
  TreeEnsembleModel model = TrainGradientBoosting(data, options);
  std::vector<double> predictions;
  for (size_t r = 0; r < data.size(); ++r) {
    predictions.push_back(model.Score(data.x.row(r)));
  }
  EXPECT_LT(Rmse(predictions, data.y), 1.5);
}

// ---------------------------------------------------------------------------
// Pipelines and graphs
// ---------------------------------------------------------------------------

Pipeline MakeTrainedPipeline(uint64_t seed, size_t noise_features = 4) {
  // Inputs: 4 numeric signal + noise numeric + 1 categorical.
  size_t total_numeric = 4 + noise_features;
  Random rng(seed);
  size_t n = 2000;
  Matrix raw(n, total_numeric + 1);
  std::vector<double> y(n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < total_numeric; ++c) {
      raw.at(r, c) = rng.NextGaussian() * 2.0 + 1.0;
    }
    raw.at(r, total_numeric) = static_cast<double>(rng.Uniform(3));
    double z = 1.2 * raw.at(r, 0) - 1.4 * raw.at(r, 1) +
               0.9 * raw.at(r, 2) - 0.5 * raw.at(r, 3) +
               (raw.at(r, total_numeric) == 2.0 ? 1.0 : -0.4);
    y[r] = z > 0.3 ? 1.0 : 0.0;
  }

  std::vector<FeatureSpec> specs;
  for (size_t c = 0; c < total_numeric; ++c) {
    specs.push_back(FeatureSpec{"f" + std::to_string(c),
                                FeatureKind::kNumeric, {}});
  }
  specs.push_back(FeatureSpec{
      "segment", FeatureKind::kCategorical, {"basic", "plus", "pro"}});

  Pipeline pipeline;
  pipeline.SetInputs(std::move(specs));
  pipeline.set_task(ModelTask::kBinaryClassification);
  pipeline.FitFeaturizers(raw, /*with_imputer=*/true, /*with_scaler=*/true);

  Dataset features;
  features.x = pipeline.Transform(raw);
  features.y = std::move(y);
  GbtOptions options;
  options.num_trees = 25;
  options.max_depth = 4;
  options.seed = seed;
  pipeline.SetTreeModel(TrainGradientBoosting(features, options));
  return pipeline;
}

TEST(PipelineTest, TransformWidthMatchesFeatureWidth) {
  Pipeline pipeline = MakeTrainedPipeline(61);
  EXPECT_EQ(pipeline.feature_width(), 8u + 3u);
  Matrix raw(1, 9, 0.5);
  EXPECT_EQ(pipeline.Transform(raw).cols(), pipeline.feature_width());
}

TEST(PipelineTest, EncodeCategorical) {
  Pipeline pipeline = MakeTrainedPipeline(61);
  EXPECT_DOUBLE_EQ(pipeline.EncodeCategorical(8, "plus"), 1.0);
  EXPECT_TRUE(std::isnan(pipeline.EncodeCategorical(8, "unknown")));
}

TEST(PipelineTest, GraphMatchesScoreRow) {
  Pipeline pipeline = MakeTrainedPipeline(67);
  auto graph = pipeline.Compile();
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  GraphRuntime runtime(&*graph);

  Random rng(71);
  Matrix raw(256, 9);
  for (size_t r = 0; r < raw.rows(); ++r) {
    for (size_t c = 0; c < 8; ++c) {
      raw.at(r, c) = rng.NextGaussian() * 2.0 + 1.0;
    }
    raw.at(r, 8) = static_cast<double>(rng.Uniform(3));
  }
  auto scores = runtime.RunToScores(raw);
  ASSERT_TRUE(scores.ok());
  for (size_t r = 0; r < raw.rows(); ++r) {
    EXPECT_NEAR((*scores)[r], pipeline.ScoreRow(raw.row(r)), 1e-9);
  }
}

TEST(PipelineTest, RowScorerMatchesGraph) {
  Pipeline pipeline = MakeTrainedPipeline(73);
  RowScorer scorer(pipeline);
  EXPECT_GT(scorer.num_steps(), 2u);
  auto graph = pipeline.Compile();
  ASSERT_TRUE(graph.ok());
  GraphRuntime runtime(&*graph);

  Random rng(79);
  Matrix raw(128, 9);
  for (size_t r = 0; r < raw.rows(); ++r) {
    for (size_t c = 0; c < 8; ++c) raw.at(r, c) = rng.NextGaussian();
    raw.at(r, 8) = static_cast<double>(rng.Uniform(3));
  }
  std::vector<double> interpreted = scorer.ScoreAll(raw);
  auto vectorized = runtime.RunToScores(raw);
  ASSERT_TRUE(vectorized.ok());
  for (size_t r = 0; r < raw.rows(); ++r) {
    EXPECT_NEAR(interpreted[r], (*vectorized)[r], 1e-9);
  }
}

TEST(PipelineTest, MissingValuesImputedConsistently) {
  Pipeline pipeline = MakeTrainedPipeline(83);
  auto graph = pipeline.Compile();
  ASSERT_TRUE(graph.ok());
  GraphRuntime runtime(&*graph);
  Matrix raw(1, 9, std::nan(""));
  raw.at(0, 8) = 1.0;
  auto scores = runtime.RunToScores(raw);
  ASSERT_TRUE(scores.ok());
  EXPECT_FALSE(std::isnan((*scores)[0]));
  EXPECT_NEAR((*scores)[0], pipeline.ScoreRow(raw.row(0)), 1e-9);
}

TEST(PipelineTest, SerializationRoundTripsExactly) {
  Pipeline pipeline = MakeTrainedPipeline(89);
  std::string text = pipeline.Serialize();
  auto restored = Pipeline::Deserialize(text);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->Serialize(), text);

  Random rng(97);
  for (int i = 0; i < 64; ++i) {
    std::vector<double> row(9);
    for (size_t c = 0; c < 8; ++c) row[c] = rng.NextGaussian();
    row[8] = static_cast<double>(rng.Uniform(3));
    EXPECT_DOUBLE_EQ(pipeline.ScoreRow(row.data()),
                     restored->ScoreRow(row.data()));
  }
}

TEST(PipelineTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Pipeline::Deserialize("not a pipeline").ok());
  EXPECT_FALSE(
      Pipeline::Deserialize("FLOCK_PIPELINE 1\nmodel alien\nend\n").ok());
}

// The corruption matrix: every one of these damaged artifacts must come
// back as Status::Corruption — a recoverable deploy/recovery failure —
// and none may terminate the process (the pre-hardening parser used
// std::stoi/stoul/stod, which throw on garbage and accept trailing junk).
TEST(PipelineTest, DeserializeCorruptionMatrix) {
  const std::string text = MakeTrainedPipeline(89).Serialize();
  auto expect_corruption = [](const std::string& damaged,
                              const std::string& what) {
    auto result = Pipeline::Deserialize(damaged);
    ASSERT_FALSE(result.ok()) << what << ": accepted damaged artifact";
    EXPECT_EQ(result.status().code(), StatusCode::kCorruption)
        << what << ": " << result.status().ToString();
  };

  // Truncation at every line boundary (a torn write of the stored text).
  for (size_t pos = text.find('\n'); pos != std::string::npos;
       pos = text.find('\n', pos + 1)) {
    std::string truncated = text.substr(0, pos + 1);
    if (truncated.size() == text.size()) break;  // full text is valid
    auto result = Pipeline::Deserialize(truncated);
    // A prefix that still ends in a complete section can parse; what it
    // must never do is crash or mis-parse a numeric token. Reject or
    // accept, any failure must be Corruption.
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kCorruption)
          << "truncation at byte " << pos;
    }
  }

  // Token-level damage: trailing junk, non-numeric, overflow — each on a
  // numeric field the old parser would have crashed on or misread.
  auto replace_first = [&](const std::string& from, const std::string& to) {
    std::string damaged = text;
    size_t at = damaged.find(from);
    EXPECT_NE(at, std::string::npos) << "fixture lost marker " << from;
    damaged.replace(at, from.size(), to);
    return damaged;
  };
  expect_corruption(replace_first("model trees", "model trees junk-count"),
                    "non-numeric tree count");
  expect_corruption(replace_first("tree ", "tree 12x"), "trailing junk");
  expect_corruption(replace_first("tree ", "tree 99999999999999999999"),
                    "tree node count overflow");
  expect_corruption(replace_first("tree ", "tree -3"),
                    "negative node count");

  // Flipped bytes inside a tree-node line: child indices out of range
  // (crash in Tree::Predict) or cyclic (infinite loop in Tree::Predict).
  {
    size_t header = text.find("tree ");
    ASSERT_NE(header, std::string::npos);
    size_t node_line = text.find('\n', header) + 1;
    size_t node_end = text.find('\n', node_line);
    std::string node = text.substr(node_line, node_end - node_line);
    std::vector<std::string> fields = SplitWhitespace(node);
    ASSERT_EQ(fields.size(), 5u);
    if (fields[0] != "-1") {  // interior root: children are live indices
      auto with_node = [&](const std::string& left,
                           const std::string& right) {
        std::string damaged = text;
        damaged.replace(node_line, node_end - node_line,
                        fields[0] + " " + fields[1] + " " + left + " " +
                            right + " " + fields[4]);
        return damaged;
      };
      expect_corruption(with_node("100000", fields[3]),
                        "left child out of range");
      expect_corruption(with_node(fields[2], "-7"),
                        "negative right child");
      expect_corruption(with_node("0", fields[3]),
                        "cyclic child (points at root)");
      expect_corruption(with_node("2.5", fields[3]),
                        "fractional child index");
    }
  }

  // Vocab / weight count mismatches.
  expect_corruption(replace_first("categorical 3", "categorical 4"),
                    "vocab count overstated");
  expect_corruption(replace_first("categorical 3", "categorical 3x"),
                    "vocab count trailing junk");

  // The undamaged artifact still round-trips after all of the above.
  EXPECT_TRUE(Pipeline::Deserialize(text).ok());
}

TEST(GraphTest, UsedInputColumnsReflectSparsity) {
  Pipeline pipeline = MakeTrainedPipeline(101, /*noise_features=*/12);
  auto graph = pipeline.Compile();
  ASSERT_TRUE(graph.ok());
  std::vector<bool> used = graph->UsedInputColumns();
  ASSERT_EQ(used.size(), 17u);  // 16 numeric + 1 categorical
  // Signal features should be used; at least some noise should not be.
  EXPECT_TRUE(used[0]);
  EXPECT_TRUE(used[1]);
  size_t unused = 0;
  for (bool u : used) {
    if (!u) ++unused;
  }
  EXPECT_GT(unused, 0u) << "expected some noise features to be unused";
}

TEST(GraphTest, CompactInputsPreservesScores) {
  Pipeline pipeline = MakeTrainedPipeline(103, 12);
  auto graph = pipeline.Compile();
  ASSERT_TRUE(graph.ok());
  std::vector<bool> used = graph->UsedInputColumns();

  ModelGraph compact = *graph;
  ASSERT_TRUE(compact.CompactInputs(used).ok());
  EXPECT_LT(compact.input_cols(), graph->input_cols());

  GraphRuntime full_runtime(&*graph);
  GraphRuntime compact_runtime(&compact);
  Random rng(107);
  Matrix raw(64, 17);
  for (size_t r = 0; r < raw.rows(); ++r) {
    for (size_t c = 0; c < 16; ++c) raw.at(r, c) = rng.NextGaussian();
    raw.at(r, 16) = static_cast<double>(rng.Uniform(3));
  }
  // Project the raw matrix to the kept columns.
  std::vector<size_t> kept;
  for (size_t c = 0; c < used.size(); ++c) {
    if (used[c]) kept.push_back(c);
  }
  Matrix narrow(raw.rows(), kept.size());
  for (size_t r = 0; r < raw.rows(); ++r) {
    for (size_t c = 0; c < kept.size(); ++c) {
      narrow.at(r, c) = raw.at(r, kept[c]);
    }
  }
  auto full = full_runtime.RunToScores(raw);
  auto pruned = compact_runtime.RunToScores(narrow);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(pruned.ok());
  for (size_t r = 0; r < raw.rows(); ++r) {
    EXPECT_NEAR((*full)[r], (*pruned)[r], 1e-9);
  }
}

TEST(GraphTest, CompactRejectsDroppingUsedColumn) {
  Pipeline pipeline = MakeTrainedPipeline(109);
  auto graph = pipeline.Compile();
  ASSERT_TRUE(graph.ok());
  std::vector<bool> keep(graph->input_cols(), true);
  std::vector<bool> used = graph->UsedInputColumns();
  // Drop a used column -> must fail.
  for (size_t c = 0; c < used.size(); ++c) {
    if (used[c]) {
      keep[c] = false;
      break;
    }
  }
  EXPECT_FALSE(graph->CompactInputs(keep).ok());
}

TEST(GraphTest, CompressionPreservesInRangeScores) {
  Pipeline pipeline = MakeTrainedPipeline(113);
  auto graph = pipeline.Compile();
  ASSERT_TRUE(graph.ok());
  size_t before = graph->TotalTreeNodes();

  // Claim the data lives in a narrow slice; trees must agree inside it.
  std::vector<ColumnRange> ranges(9);
  for (size_t c = 0; c < 8; ++c) {
    ranges[c] = ColumnRange{0.0, 1.0, true};
  }
  ranges[8] = ColumnRange{0.0, 2.0, true};

  ModelGraph compressed = *graph;
  size_t removed = CompressTreesWithRanges(&compressed, ranges);
  EXPECT_GT(removed, 0u);
  EXPECT_EQ(compressed.TotalTreeNodes(), before - removed);

  GraphRuntime full(&*graph);
  GraphRuntime small(&compressed);
  Random rng(127);
  Matrix raw(128, 9);
  for (size_t r = 0; r < raw.rows(); ++r) {
    for (size_t c = 0; c < 8; ++c) {
      raw.at(r, c) = rng.NextDouble();  // inside [0, 1]
    }
    raw.at(r, 8) = static_cast<double>(rng.Uniform(3));
  }
  auto a = full.RunToScores(raw);
  auto b = small.RunToScores(raw);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t r = 0; r < raw.rows(); ++r) {
    EXPECT_NEAR((*a)[r], (*b)[r], 1e-9);
  }
}

TEST(GraphTest, FinalizeValidatesWiring) {
  ModelGraph graph;
  graph.SetInput(2);
  GraphNode bad;
  bad.op = OpType::kScaler;
  bad.inputs = {0};
  bad.scale = {1.0};  // width mismatch: input has 2 cols
  bad.offset = {0.0};
  graph.AddNode(std::move(bad));
  graph.SetOutput(1);
  EXPECT_FALSE(graph.Finalize().ok());
}

TEST(GraphTest, LinearPipelineCompiles) {
  Dataset data = MakeLinearData(500, 131);
  LinearModel model = TrainLinear(data, LinearTrainerOptions{});
  Pipeline pipeline;
  pipeline.SetInputs({FeatureSpec{"a", FeatureKind::kNumeric, {}},
                      FeatureSpec{"b", FeatureKind::kNumeric, {}},
                      FeatureSpec{"c", FeatureKind::kNumeric, {}}});
  pipeline.SetLinearModel(model);
  auto graph = pipeline.Compile();
  ASSERT_TRUE(graph.ok());
  GraphRuntime runtime(&*graph);
  Matrix raw(4, 3, 0.5);
  auto scores = runtime.RunToScores(raw);
  ASSERT_TRUE(scores.ok());
  for (size_t r = 0; r < 4; ++r) {
    EXPECT_NEAR((*scores)[r], model.Score(raw.row(r)), 1e-12);
  }
}

}  // namespace
}  // namespace flock::ml
