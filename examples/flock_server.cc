// flock_server: the prediction-serving layer over TCP.
//
// Speaks the line-delimited text protocol from serve/protocol.h: each
// connection gets a session, each line is one SQL statement (or a '.'
// command), each response is an OK/ERR frame. Admission control sheds
// with `ERR Unavailable ...` under overload, and SIGINT triggers a
// graceful drain (in-flight queries finish, new ones are refused).
//
//   ./flock_server [port] [workers] [queue_depth] [--data-dir=PATH]
//   ./flock_client 127.0.0.1 5433
//
// With --data-dir the server is durable: it recovers any existing
// snapshot + WAL from PATH on startup (skipping the demo build when the
// data survived), logs every mutation, and the SIGINT drain checkpoints
// before exit so a restart replays nothing.
//
// The demo database is a `users` table with a deployed GBDT `churn`
// model, so PREDICT traffic works out of the box:
//
//   SELECT id, PREDICT(churn, age, income, tenure, clicks, plan)
//   FROM users WHERE PREDICT(churn, age, income, tenure, clicks, plan)
//   > 0.8;

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "flock/flock_engine.h"
#include "ml/tree.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace {

std::atomic<int> g_listen_fd{-1};

void HandleSigint(int) {
  int fd = g_listen_fd.exchange(-1);
  if (fd >= 0) close(fd);  // unblocks accept(); the main loop drains
}

/// users table + trained churn model, the same shape the serving tests
/// and bench use.
bool BuildDemoDatabase(flock::flock::FlockEngine* engine, size_t rows) {
  auto create = engine->Execute(
      "CREATE TABLE users (id INT, age DOUBLE, income DOUBLE, "
      "tenure DOUBLE, clicks DOUBLE, plan VARCHAR)");
  if (!create.ok()) return false;

  flock::Random rng(7);
  const char* plans[] = {"basic", "plus", "pro"};
  flock::ml::Matrix raw(rows, 5);
  std::vector<double> labels(rows);
  std::string insert = "INSERT INTO users VALUES ";
  for (size_t i = 0; i < rows; ++i) {
    double age = 20 + rng.NextDouble() * 50;
    double income = 30 + rng.NextDouble() * 120;
    double tenure = rng.NextDouble() * 10;
    double clicks = rng.NextDouble() * 100;
    size_t plan = rng.Uniform(3);
    raw.at(i, 0) = age;
    raw.at(i, 1) = income;
    raw.at(i, 2) = tenure;
    raw.at(i, 3) = clicks;
    raw.at(i, 4) = static_cast<double>(plan);
    double z = 0.08 * (age - 45) - 0.02 * (income - 90) - 0.4 * tenure +
               0.03 * clicks + (plan == 0 ? 1.0 : (plan == 2 ? -1.0 : 0.0));
    labels[i] = z > 0 ? 1.0 : 0.0;
    if (i > 0) insert += ", ";
    char row[160];
    std::snprintf(row, sizeof(row), "(%zu, %.3f, %.3f, %.3f, %.3f, '%s')",
                  i, age, income, tenure, clicks, plans[plan]);
    insert += row;
  }
  if (!engine->Execute(insert).ok()) return false;

  flock::ml::Pipeline pipeline;
  std::vector<flock::ml::FeatureSpec> specs;
  for (const char* n : {"age", "income", "tenure", "clicks"}) {
    specs.push_back(
        flock::ml::FeatureSpec{n, flock::ml::FeatureKind::kNumeric, {}});
  }
  specs.push_back(flock::ml::FeatureSpec{
      "plan", flock::ml::FeatureKind::kCategorical,
      {"basic", "plus", "pro"}});
  pipeline.SetInputs(specs);
  pipeline.set_task(flock::ml::ModelTask::kBinaryClassification);
  pipeline.FitFeaturizers(raw, true, true);
  flock::ml::Dataset features;
  features.x = pipeline.Transform(raw);
  features.y = labels;
  flock::ml::GbtOptions gbt;
  gbt.num_trees = 10;
  gbt.max_depth = 3;
  pipeline.SetTreeModel(flock::ml::TrainGradientBoosting(features, gbt));
  return engine->DeployModel("churn", std::move(pipeline), "server-demo",
                             "examples/flock_server").ok();
}

void ServeConnection(flock::serve::PredictionServer* server, int fd) {
  using flock::serve::Request;
  auto session_or = server->OpenSession();
  if (!session_or.ok()) {
    std::string err = flock::serve::EncodeError(session_or.status());
    (void)write(fd, err.data(), err.size());
    close(fd);
    return;
  }
  uint64_t session = *session_or;

  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    size_t newline = buffer.find('\n');
    if (newline == std::string::npos) {
      ssize_t n = read(fd, chunk, sizeof(chunk));
      if (n <= 0) break;  // disconnect
      buffer.append(chunk, static_cast<size_t>(n));
      continue;
    }
    std::string line = buffer.substr(0, newline);
    buffer.erase(0, newline + 1);

    Request request = flock::serve::ParseRequestLine(line);
    std::string response;
    switch (request.kind) {
      case Request::Kind::kQuery:
        response =
            flock::serve::EncodeResponse(server->Execute(session,
                                                         request.text));
        break;
      case Request::Kind::kMetrics:
        if (request.text == "prom") {
          // Prometheus exposition is inherently multi-line; frame it
          // with END like a query response.
          response = server->MetricsPrometheus() + "END\n";
          break;
        }
        // One line on the wire: the client frames replies by newline.
        response = server->MetricsJson();
        response.erase(std::remove(response.begin(), response.end(), '\n'),
                       response.end());
        response += '\n';
        break;
      case Request::Kind::kTrace: {
        auto live = server->sessions()->Get(session);
        if (!live.ok()) {
          response = flock::serve::EncodeError(live.status());
        } else if (request.text == "on" || request.text == "off") {
          (*live)->set_trace(request.text == "on");
          response = "trace " + request.text + "\n";
        } else {
          response = flock::serve::EncodeError(
              flock::Status::InvalidArgument("usage: .trace on|off"));
        }
        break;
      }
      case Request::Kind::kSlowLog: {
        flock::obs::SlowQueryLog* slow_log =
            server->engine()->sql()->slow_log();
        if (request.text.empty()) {
          response = server->SlowLogJson();
          response.erase(
              std::remove(response.begin(), response.end(), '\n'),
              response.end());
          response += '\n';
        } else if (request.text == "clear") {
          slow_log->Clear();
          response = "slowlog cleared\n";
        } else {
          char* end = nullptr;
          double threshold = std::strtod(request.text.c_str(), &end);
          if (end != request.text.c_str() && *end == '\0') {
            slow_log->set_threshold_ms(threshold);
            response = "slowlog threshold_ms=" + request.text + "\n";
          } else {
            response = flock::serve::EncodeError(
                flock::Status::InvalidArgument(
                    "usage: .slowlog [clear|<threshold ms>]"));
          }
        }
        break;
      }
      case Request::Kind::kSession:
        response = "session " + std::to_string(session) + "\n";
        break;
      case Request::Kind::kQuit:
        open = false;
        continue;
      case Request::Kind::kEmpty:
        continue;
    }
    if (write(fd, response.data(), response.size()) < 0) break;
  }
  (void)server->CloseSession(session);
  close(fd);
}

}  // namespace

int main(int argc, char** argv) {
  std::string data_dir;
  std::vector<int> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--data-dir=", 0) == 0) {
      data_dir = arg.substr(std::strlen("--data-dir="));
    } else if (arg == "--data-dir" && i + 1 < argc) {
      data_dir = argv[++i];
    } else {
      positional.push_back(std::atoi(arg.c_str()));
    }
  }
  int port = positional.size() > 0 ? positional[0] : 5433;
  flock::serve::ServerOptions options;
  options.admission.num_workers = positional.size() > 1 ? positional[1] : 4;
  options.admission.max_queue_depth =
      positional.size() > 2 ? positional[2] : 64;

  // One shared engine; serial per query so concurrency comes from the
  // serving worker pool, not nested morsel parallelism.
  flock::flock::FlockEngineOptions engine_options;
  engine_options.sql.num_threads = 1;
  flock::flock::FlockEngine engine(engine_options);
  if (!data_dir.empty()) {
    flock::Status opened = engine.Open(data_dir);
    if (!opened.ok()) {
      std::fprintf(stderr, "open %s: %s\n", data_dir.c_str(),
                   opened.ToString().c_str());
      return 1;
    }
    const flock::wal::RecoveryResult& rec =
        engine.durability()->recovery();
    std::printf(
        "durable at %s (snapshot %s, %zu WAL records replayed%s)\n",
        data_dir.c_str(), rec.snapshot_restored ? "restored" : "none",
        rec.wal_records_replayed,
        rec.tail_truncated ? ", torn tail dropped" : "");
  }
  // A recovered data dir already holds the users table and churn model;
  // rebuilding would fail on CREATE TABLE (AlreadyExists) and re-log the
  // whole demo, so only build into a fresh engine.
  if (!engine.database()->HasTable("users")) {
    if (!BuildDemoDatabase(&engine, 2000)) {
      std::fprintf(stderr, "demo database setup failed\n");
      return 1;
    }
  }
  flock::serve::PredictionServer server(&engine, options);

  int listen_fd = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::perror("socket");
    return 1;
  }
  int reuse = 1;
  setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      listen(listen_fd, 64) < 0) {
    std::perror("bind/listen");
    close(listen_fd);
    return 1;
  }
  g_listen_fd.store(listen_fd);
  signal(SIGINT, HandleSigint);
  signal(SIGPIPE, SIG_IGN);

  std::printf(
      "flock_server listening on port %d (%zu workers, queue %zu)\n"
      "try: ./flock_client 127.0.0.1 %d\n",
      port, options.admission.num_workers,
      options.admission.max_queue_depth, port);

  std::vector<std::thread> connections;
  while (true) {
    int fd = accept(listen_fd, nullptr, nullptr);
    if (fd < 0) break;  // listen socket closed by SIGINT
    connections.emplace_back(ServeConnection, &server, fd);
  }

  std::printf("\ndraining (in-flight queries finish, new ones shed)%s...\n",
              engine.durable() ? ", then checkpointing" : "");
  server.Shutdown();  // drains, then checkpoints the engine if durable
  for (auto& t : connections) {
    if (t.joinable()) t.join();
  }
  // Final metrics, printed exactly once on the way out.
  std::printf("%s\n", server.MetricsJson().c_str());
  return 0;
}
