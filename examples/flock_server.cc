// flock_server: the prediction-serving layer over TCP.
//
// Speaks the line-delimited text protocol from serve/protocol.h: each
// connection gets a session, each line is one SQL statement (or a '.'
// command), each response is an OK/ERR frame. Admission control sheds
// with `ERR Unavailable ...` under overload, and SIGINT triggers a
// graceful drain (in-flight queries finish, new ones are refused).
//
//   ./flock_server [port] [workers] [queue_depth] [--data-dir=PATH]
//   ./flock_server [port] ... --replica-of=HOST:PORT [--staleness-bound=N]
//   ./flock_server [port] ... --microbatch=8 [--microbatch-wait-ms=1.0]
//   ./flock_server [port] ... --default-deadline-ms=250
//   ./flock_client 127.0.0.1 5433
//
// With --default-deadline-ms every statement runs under a deadline:
// queued past it, the request is shed before a worker touches it;
// running past it, the executor notices at its next poll point and the
// client sees `ERR DeadlineExceeded`. Sessions override per-connection
// with `.deadline <ms>|off|default`, and `.kill <session>` aborts the
// statement another connection has in flight.
//
// With --data-dir the server is durable: it recovers any existing
// snapshot + WAL from PATH on startup (skipping the demo build when the
// data survived), logs every mutation, and the SIGINT drain checkpoints
// before exit so a restart replays nothing. A durable server also
// answers `.repl bootstrap` / `.repl fetch` so replicas can stream its
// WAL.
//
// With --replica-of the server comes up as a read-only replica: it
// bootstraps a snapshot from the primary over the `.repl` endpoint,
// streams WAL records continuously, serves SELECT/EXPLAIN traffic from
// the replicated state, answers writes and DDL with `ERR Redirect`, and
// sheds reads with `ERR Unavailable` whenever replication lag exceeds
// --staleness-bound records (bounded staleness).
//
// With --microbatch=N concurrent single-row PREDICT calls coalesce into
// shared scoring-kernel invocations of up to N rows, waiting at most
// --microbatch-wait-ms (default 1.0) for the batch to fill; a lone
// client bypasses the window entirely (see DESIGN.md §4e).
//
// The demo database is a `users` table with a deployed GBDT `churn`
// model, so PREDICT traffic works out of the box:
//
//   SELECT id, PREDICT(churn, age, income, tenure, clicks, plan)
//   FROM users WHERE PREDICT(churn, age, income, tenure, clicks, plan)
//   > 0.8;

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/string_util.h"
#include "flock/flock_engine.h"
#include "lifecycle/rollout.h"
#include "ml/tree.h"
#include "repl/applier.h"
#include "repl/metrics.h"
#include "repl/publisher.h"
#include "repl/wire.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace {

std::atomic<int> g_listen_fd{-1};

void HandleSigint(int) {
  int fd = g_listen_fd.exchange(-1);
  if (fd >= 0) close(fd);  // unblocks accept(); the main loop drains
}

/// users table + trained churn model, the same shape the serving tests
/// and bench use.
bool BuildDemoDatabase(flock::flock::FlockEngine* engine, size_t rows) {
  auto create = engine->Execute(
      "CREATE TABLE users (id INT, age DOUBLE, income DOUBLE, "
      "tenure DOUBLE, clicks DOUBLE, plan VARCHAR)");
  if (!create.ok()) return false;

  flock::Random rng(7);
  const char* plans[] = {"basic", "plus", "pro"};
  flock::ml::Matrix raw(rows, 5);
  std::vector<double> labels(rows);
  std::string insert = "INSERT INTO users VALUES ";
  for (size_t i = 0; i < rows; ++i) {
    double age = 20 + rng.NextDouble() * 50;
    double income = 30 + rng.NextDouble() * 120;
    double tenure = rng.NextDouble() * 10;
    double clicks = rng.NextDouble() * 100;
    size_t plan = rng.Uniform(3);
    raw.at(i, 0) = age;
    raw.at(i, 1) = income;
    raw.at(i, 2) = tenure;
    raw.at(i, 3) = clicks;
    raw.at(i, 4) = static_cast<double>(plan);
    double z = 0.08 * (age - 45) - 0.02 * (income - 90) - 0.4 * tenure +
               0.03 * clicks + (plan == 0 ? 1.0 : (plan == 2 ? -1.0 : 0.0));
    labels[i] = z > 0 ? 1.0 : 0.0;
    if (i > 0) insert += ", ";
    char row[160];
    std::snprintf(row, sizeof(row), "(%zu, %.3f, %.3f, %.3f, %.3f, '%s')",
                  i, age, income, tenure, clicks, plans[plan]);
    insert += row;
  }
  if (!engine->Execute(insert).ok()) return false;

  flock::ml::Pipeline pipeline;
  std::vector<flock::ml::FeatureSpec> specs;
  for (const char* n : {"age", "income", "tenure", "clicks"}) {
    specs.push_back(
        flock::ml::FeatureSpec{n, flock::ml::FeatureKind::kNumeric, {}});
  }
  specs.push_back(flock::ml::FeatureSpec{
      "plan", flock::ml::FeatureKind::kCategorical,
      {"basic", "plus", "pro"}});
  pipeline.SetInputs(specs);
  pipeline.set_task(flock::ml::ModelTask::kBinaryClassification);
  pipeline.FitFeaturizers(raw, true, true);
  flock::ml::Dataset features;
  features.x = pipeline.Transform(raw);
  features.y = labels;
  flock::ml::GbtOptions gbt;
  gbt.num_trees = 10;
  gbt.max_depth = 3;
  pipeline.SetTreeModel(flock::ml::TrainGradientBoosting(features, gbt));
  return engine->DeployModel("churn", std::move(pipeline), "server-demo",
                             "examples/flock_server").ok();
}

/// ReplicationSource over the `.repl` wire protocol: a socket client
/// against a remote primary flock_server. One persistent connection; any
/// transport failure closes it and surfaces as Unavailable, so the
/// applier's retry-with-backoff policy doubles as the reconnect loop.
class TcpReplicationSource : public flock::repl::ReplicationSource {
 public:
  TcpReplicationSource(std::string host, int port)
      : host_(std::move(host)), port_(port) {}
  ~TcpReplicationSource() override {
    if (fd_ >= 0) close(fd_);
  }

  flock::StatusOr<flock::repl::BootstrapResult> Bootstrap() override {
    auto text = Roundtrip(".repl bootstrap\n");
    if (!text.ok()) return text.status();
    return flock::repl::ParseBootstrapResponse(*text);
  }

  flock::StatusOr<flock::repl::FetchResult> Fetch(
      flock::repl::ReplicationPosition from, size_t max_records) override {
    auto text = Roundtrip(".repl fetch " + std::to_string(from.epoch) +
                          " " + std::to_string(from.lsn) + " " +
                          std::to_string(max_records) + "\n");
    if (!text.ok()) return text.status();
    return flock::repl::ParseFetchResponse(*text);
  }

  flock::StatusOr<flock::repl::ReplicationPosition> DurableEnd() override {
    auto text = Roundtrip(".repl status\n");
    if (!text.ok()) return text.status();
    auto status = flock::repl::ParseStatusResponse(*text);
    if (!status.ok()) return status.status();
    return status->position;
  }

 private:
  flock::Status Connect() {
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return flock::Status::Unavailable(std::string("socket: ") +
                                        std::strerror(errno));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port_));
    if (inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
      close(fd);
      return flock::Status::InvalidArgument(
          "--replica-of host must be an IPv4 address: " + host_);
    }
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      close(fd);
      return flock::Status::Unavailable("connect " + host_ + ":" +
                                        std::to_string(port_) + ": " +
                                        std::strerror(errno));
    }
    fd_ = fd;
    return flock::Status::OK();
  }

  flock::Status Disconnect(const std::string& what) {
    if (fd_ >= 0) close(fd_);
    fd_ = -1;
    return flock::Status::Unavailable(what + " (" + host_ + ":" +
                                      std::to_string(port_) + ")");
  }

  /// "ERR <CodeName> <message>" back into the Status it came from, so
  /// the applier sees the primary's real error taxonomy (DataLoss is
  /// fatal, Unavailable retries) instead of a flattened transport error.
  static flock::Status DecodeWireError(const std::string& line) {
    using flock::StatusCode;
    std::string rest = line.substr(std::strlen("ERR "));
    size_t space = rest.find(' ');
    std::string name = rest.substr(0, space);
    std::string msg =
        space == std::string::npos ? "" : rest.substr(space + 1);
    for (StatusCode code :
         {StatusCode::kInvalidArgument, StatusCode::kNotFound,
          StatusCode::kAlreadyExists, StatusCode::kNotSupported,
          StatusCode::kInternal, StatusCode::kAborted,
          StatusCode::kOutOfRange, StatusCode::kPermissionDenied,
          StatusCode::kParseError, StatusCode::kUnavailable,
          StatusCode::kDataLoss, StatusCode::kRedirect,
          StatusCode::kCorruption, StatusCode::kDeadlineExceeded,
          StatusCode::kCancelled}) {
      if (name == flock::StatusCodeName(code)) {
        return flock::Status(code, msg);
      }
    }
    return flock::Status::Internal("unparseable wire error: " + line);
  }

  /// Sends one request line, reads one complete response (through the
  /// END terminator, or a single ERR line).
  flock::StatusOr<std::string> Roundtrip(const std::string& request) {
    if (fd_ < 0) {
      flock::Status connected = Connect();
      if (!connected.ok()) return connected;
    }
    if (write(fd_, request.data(), request.size()) !=
        static_cast<ssize_t>(request.size())) {
      return Disconnect("write to primary failed");
    }
    std::string buffer;
    char chunk[4096];
    while (true) {
      if (buffer.rfind("ERR ", 0) == 0) {
        size_t newline = buffer.find('\n');
        if (newline != std::string::npos) {
          // The protocol stays in sync after an ERR; keep the socket.
          return DecodeWireError(buffer.substr(0, newline));
        }
      } else if (buffer.size() >= 5 &&
                 buffer.compare(buffer.size() - 5, 5, "\nEND\n") == 0) {
        return buffer;
      }
      ssize_t n = read(fd_, chunk, sizeof(chunk));
      if (n <= 0) return Disconnect("primary connection closed");
      buffer.append(chunk, static_cast<size_t>(n));
    }
  }

  std::string host_;
  int port_;
  int fd_ = -1;
};

/// What a connection thread needs beyond the server itself: the data
/// directory (so each replica connection gets its own publisher cursor)
/// and, in replica mode, the applier (so `.repl status` reports the
/// applied position).
struct ConnectionContext {
  flock::serve::PredictionServer* server = nullptr;
  std::string data_dir;                            // "" = not durable
  flock::repl::ReplicaApplier* applier = nullptr;  // set in replica mode
  flock::lifecycle::RolloutManager* rollouts = nullptr;  // primary only
};

/// `.repl <args>` dispatch. The publisher is lazily created per
/// connection — each replica's stream holds its own WAL cursor.
std::string HandleRepl(
    ConnectionContext* ctx,
    std::unique_ptr<flock::repl::ReplicationPublisher>* publisher,
    const std::string& args) {
  using flock::repl::ReplCommand;
  ReplCommand cmd = flock::repl::ParseReplCommand(args);
  if (cmd.kind == ReplCommand::Kind::kInvalid) {
    return flock::serve::EncodeError(
        flock::Status::InvalidArgument(cmd.error));
  }
  if (ctx->applier != nullptr) {
    // A replica reports its applied position but does not publish:
    // chaining replicas would stream state nobody has made durable.
    if (cmd.kind == ReplCommand::Kind::kStatus) {
      return flock::repl::EncodeStatusResponse("replica",
                                               ctx->applier->applied());
    }
    return flock::serve::EncodeError(flock::Status::Redirect(
        "replica does not publish; bootstrap and fetch from the primary"));
  }
  if (ctx->data_dir.empty()) {
    return flock::serve::EncodeError(flock::Status::NotSupported(
        "replication requires a durable primary (start with --data-dir)"));
  }
  if (!*publisher) {
    *publisher = std::make_unique<flock::repl::ReplicationPublisher>(
        ctx->data_dir);
  }
  switch (cmd.kind) {
    case ReplCommand::Kind::kStatus: {
      auto end = (*publisher)->DurableEnd();
      if (!end.ok()) return flock::serve::EncodeError(end.status());
      return flock::repl::EncodeStatusResponse("primary", *end);
    }
    case ReplCommand::Kind::kBootstrap: {
      auto bootstrap = (*publisher)->Bootstrap();
      if (!bootstrap.ok()) {
        return flock::serve::EncodeError(bootstrap.status());
      }
      return flock::repl::EncodeBootstrapResponse(*bootstrap);
    }
    case ReplCommand::Kind::kFetch: {
      auto fetch = (*publisher)->Fetch(cmd.from, cmd.max_records);
      if (!fetch.ok()) return flock::serve::EncodeError(fetch.status());
      return flock::repl::EncodeFetchResponse(*fetch);
    }
    case ReplCommand::Kind::kInvalid:
      break;  // handled above
  }
  return flock::serve::EncodeError(
      flock::Status::Internal("unhandled repl command"));
}

/// `.rollout <args>` dispatch: status | begin <model> <source_model>
/// [fraction] | promote <model> | abort <model>.
std::string HandleRollout(ConnectionContext* ctx, const std::string& args) {
  if (ctx->rollouts == nullptr) {
    return flock::serve::EncodeError(flock::Status::Redirect(
        "replica is read-only; manage rollouts on the primary"));
  }
  flock::lifecycle::RolloutManager* manager = ctx->rollouts;
  std::vector<std::string> words = flock::SplitWhitespace(args);
  const std::string usage =
      "usage: .rollout status | begin <model> <source_model> [fraction] | "
      "promote <model> | abort <model>";
  if (words.empty()) {
    return flock::serve::EncodeError(flock::Status::InvalidArgument(usage));
  }
  if (words[0] == "status") {
    std::string json = manager->StatusJson();
    json.erase(std::remove(json.begin(), json.end(), '\n'), json.end());
    return json + "\n";
  }
  if (words[0] == "begin") {
    if (words.size() < 3 || words.size() > 4) {
      return flock::serve::EncodeError(
          flock::Status::InvalidArgument(usage));
    }
    flock::lifecycle::RolloutConfig config;
    if (words.size() == 4) {
      char* end = nullptr;
      double fraction = std::strtod(words[3].c_str(), &end);
      if (end == words[3].c_str() || *end != '\0' || fraction < 0.0 ||
          fraction > 1.0) {
        return flock::serve::EncodeError(flock::Status::InvalidArgument(
            "canary fraction must be a number in [0, 1]"));
      }
      config.canary_permille = static_cast<uint32_t>(fraction * 1000.0);
    }
    flock::Status begun =
        manager->Begin(words[1], words[2], config, "wire-admin");
    if (!begun.ok()) return flock::serve::EncodeError(begun);
    return "rollout " + words[1] + " staged\n";
  }
  if (words[0] == "promote" || words[0] == "abort") {
    if (words.size() != 2) {
      return flock::serve::EncodeError(
          flock::Status::InvalidArgument(usage));
    }
    flock::Status moved = words[0] == "promote" ? manager->Promote(words[1])
                                                : manager->Abort(words[1]);
    if (!moved.ok()) return flock::serve::EncodeError(moved);
    auto view = manager->Describe(words[1]);
    if (!view.ok()) return flock::serve::EncodeError(view.status());
    return "rollout " + words[1] + " " +
           flock::lifecycle::StageName(view->stage) + "\n";
  }
  return flock::serve::EncodeError(flock::Status::InvalidArgument(usage));
}

void ServeConnection(ConnectionContext* ctx, int fd) {
  using flock::serve::Request;
  flock::serve::PredictionServer* server = ctx->server;
  std::unique_ptr<flock::repl::ReplicationPublisher> publisher;
  auto session_or = server->OpenSession();
  if (!session_or.ok()) {
    std::string err = flock::serve::EncodeError(session_or.status());
    (void)write(fd, err.data(), err.size());
    close(fd);
    return;
  }
  uint64_t session = *session_or;

  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    size_t newline = buffer.find('\n');
    if (newline == std::string::npos) {
      ssize_t n = read(fd, chunk, sizeof(chunk));
      if (n <= 0) break;  // disconnect
      buffer.append(chunk, static_cast<size_t>(n));
      continue;
    }
    std::string line = buffer.substr(0, newline);
    buffer.erase(0, newline + 1);

    Request request = flock::serve::ParseRequestLine(line);
    std::string response;
    switch (request.kind) {
      case Request::Kind::kQuery:
        response =
            flock::serve::EncodeResponse(server->Execute(session,
                                                         request.text));
        break;
      case Request::Kind::kMetrics:
        if (request.text == "prom") {
          // Prometheus exposition is inherently multi-line; frame it
          // with END like a query response.
          response = server->MetricsPrometheus() + "END\n";
          break;
        }
        // One line on the wire: the client frames replies by newline.
        response = server->MetricsJson();
        response.erase(std::remove(response.begin(), response.end(), '\n'),
                       response.end());
        response += '\n';
        break;
      case Request::Kind::kTrace: {
        auto live = server->sessions()->Get(session);
        if (!live.ok()) {
          response = flock::serve::EncodeError(live.status());
        } else if (request.text == "on" || request.text == "off") {
          (*live)->set_trace(request.text == "on");
          response = "trace " + request.text + "\n";
        } else {
          response = flock::serve::EncodeError(
              flock::Status::InvalidArgument("usage: .trace on|off"));
        }
        break;
      }
      case Request::Kind::kSlowLog: {
        flock::obs::SlowQueryLog* slow_log =
            server->engine()->sql()->slow_log();
        if (request.text.empty()) {
          response = server->SlowLogJson();
          response.erase(
              std::remove(response.begin(), response.end(), '\n'),
              response.end());
          response += '\n';
        } else if (request.text == "clear") {
          slow_log->Clear();
          response = "slowlog cleared\n";
        } else {
          char* end = nullptr;
          double threshold = std::strtod(request.text.c_str(), &end);
          if (end != request.text.c_str() && *end == '\0') {
            slow_log->set_threshold_ms(threshold);
            response = "slowlog threshold_ms=" + request.text + "\n";
          } else {
            response = flock::serve::EncodeError(
                flock::Status::InvalidArgument(
                    "usage: .slowlog [clear|<threshold ms>]"));
          }
        }
        break;
      }
      case Request::Kind::kSession:
        response = "session " + std::to_string(session) + "\n";
        break;
      case Request::Kind::kKill: {
        char* end = nullptr;
        unsigned long long target =
            std::strtoull(request.text.c_str(), &end, 10);
        if (request.text.empty() || end == request.text.c_str() ||
            *end != '\0') {
          response = flock::serve::EncodeError(
              flock::Status::InvalidArgument("usage: .kill <session id>"));
          break;
        }
        flock::Status killed = server->KillSession(target);
        response = killed.ok()
                       ? "killed " + request.text + "\n"
                       : flock::serve::EncodeError(killed);
        break;
      }
      case Request::Kind::kDeadline: {
        auto live = server->sessions()->Get(session);
        if (!live.ok()) {
          response = flock::serve::EncodeError(live.status());
          break;
        }
        if (request.text == "off") {
          (*live)->set_deadline_ms(0.0);
          response = "deadline off\n";
        } else if (request.text == "default") {
          (*live)->set_deadline_ms(-1.0);
          response = "deadline default\n";
        } else {
          char* end = nullptr;
          double ms = std::strtod(request.text.c_str(), &end);
          if (request.text.empty() || end == request.text.c_str() ||
              *end != '\0' || ms <= 0.0) {
            response = flock::serve::EncodeError(
                flock::Status::InvalidArgument(
                    "usage: .deadline <ms>|off|default"));
          } else {
            (*live)->set_deadline_ms(ms);
            response = "deadline " + request.text + "ms\n";
          }
        }
        break;
      }
      case Request::Kind::kRepl:
        response = HandleRepl(ctx, &publisher, request.text);
        break;
      case Request::Kind::kRollout:
        response = HandleRollout(ctx, request.text);
        break;
      case Request::Kind::kQuit:
        open = false;
        continue;
      case Request::Kind::kEmpty:
        continue;
    }
    if (write(fd, response.data(), response.size()) < 0) break;
  }
  (void)server->CloseSession(session);
  close(fd);
}

}  // namespace

int main(int argc, char** argv) {
  std::string data_dir;
  std::string replica_of;
  uint64_t staleness_bound = 10000;  // records behind before shedding reads
  double default_deadline_ms = 0.0;  // 0 = no deadline
  flock::serve::MicroBatchOptions microbatch;  // off unless --microbatch
  std::vector<int> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--data-dir=", 0) == 0) {
      data_dir = arg.substr(std::strlen("--data-dir="));
    } else if (arg == "--data-dir" && i + 1 < argc) {
      data_dir = argv[++i];
    } else if (arg.rfind("--replica-of=", 0) == 0) {
      replica_of = arg.substr(std::strlen("--replica-of="));
    } else if (arg == "--replica-of" && i + 1 < argc) {
      replica_of = argv[++i];
    } else if (arg.rfind("--staleness-bound=", 0) == 0) {
      staleness_bound = std::strtoull(
          arg.c_str() + std::strlen("--staleness-bound="), nullptr, 10);
    } else if (arg == "--microbatch") {
      microbatch.enabled = true;
    } else if (arg.rfind("--microbatch=", 0) == 0) {
      microbatch.enabled = true;
      microbatch.max_batch = static_cast<size_t>(std::strtoull(
          arg.c_str() + std::strlen("--microbatch="), nullptr, 10));
    } else if (arg.rfind("--microbatch-wait-ms=", 0) == 0) {
      microbatch.enabled = true;
      microbatch.max_wait_ms =
          std::atof(arg.c_str() + std::strlen("--microbatch-wait-ms="));
    } else if (arg.rfind("--default-deadline-ms=", 0) == 0) {
      const char* text = arg.c_str() + std::strlen("--default-deadline-ms=");
      char* end = nullptr;
      default_deadline_ms = std::strtod(text, &end);
      if (end == text || *end != '\0' || default_deadline_ms < 0.0) {
        std::fprintf(stderr,
                     "--default-deadline-ms wants a non-negative number, "
                     "got %s\n", text);
        return 1;
      }
    } else {
      positional.push_back(std::atoi(arg.c_str()));
    }
  }
  if (microbatch.enabled && microbatch.max_batch < 2) {
    std::fprintf(stderr, "--microbatch wants a batch size >= 2\n");
    return 1;
  }
  if (!replica_of.empty() && !data_dir.empty()) {
    std::fprintf(stderr,
                 "--replica-of and --data-dir are mutually exclusive "
                 "(replicas are memory-only until promoted)\n");
    return 1;
  }
  int port = positional.size() > 0 ? positional[0] : 5433;
  flock::serve::ServerOptions options;
  options.admission.num_workers = positional.size() > 1 ? positional[1] : 4;
  options.admission.max_queue_depth =
      positional.size() > 2 ? positional[2] : 64;
  options.microbatch = microbatch;
  options.default_deadline_ms = default_deadline_ms;

  // One shared engine; serial per query so concurrency comes from the
  // serving worker pool, not nested morsel parallelism.
  flock::flock::FlockEngineOptions engine_options;
  engine_options.sql.num_threads = 1;
  flock::flock::FlockEngine engine(engine_options);
  std::unique_ptr<TcpReplicationSource> source;
  std::unique_ptr<flock::repl::ReplicaApplier> applier;
  if (!replica_of.empty()) {
    size_t colon = replica_of.rfind(':');
    if (colon == std::string::npos || colon + 1 >= replica_of.size()) {
      std::fprintf(stderr, "--replica-of wants HOST:PORT, got %s\n",
                   replica_of.c_str());
      return 1;
    }
    flock::Status replica_open = engine.OpenAsReplica();
    if (!replica_open.ok()) {
      std::fprintf(stderr, "open as replica: %s\n",
                   replica_open.ToString().c_str());
      return 1;
    }
    source = std::make_unique<TcpReplicationSource>(
        replica_of.substr(0, colon),
        std::atoi(replica_of.c_str() + colon + 1));
    applier = std::make_unique<flock::repl::ReplicaApplier>(&engine,
                                                            source.get());
    flock::Status caught_up = applier->CatchUp();
    if (!caught_up.ok()) {
      std::fprintf(stderr, "catch-up from %s: %s\n", replica_of.c_str(),
                   caught_up.ToString().c_str());
      return 1;
    }
    applier->Start();
    // Bounded staleness: reads are shed (Unavailable) while the applier
    // is more than staleness_bound records behind the primary's log.
    flock::repl::ReplicaApplier* gate = applier.get();
    uint64_t bound = staleness_bound;
    options.read_gate = [gate, bound]() -> flock::Status {
      uint64_t lag = gate->lag_records();
      if (lag <= bound) return flock::Status::OK();
      std::string lag_text = lag == UINT64_MAX ? std::string("inf")
                                               : std::to_string(lag);
      return flock::Status::Unavailable(
          "replica lag " + lag_text + " records exceeds staleness bound " +
          std::to_string(bound));
    };
    std::printf("replica of %s: caught up at %s "
                "(staleness bound %llu records)\n",
                replica_of.c_str(), applier->applied().ToString().c_str(),
                static_cast<unsigned long long>(staleness_bound));
  }
  if (!data_dir.empty()) {
    flock::Status opened = engine.Open(data_dir);
    if (!opened.ok()) {
      std::fprintf(stderr, "open %s: %s\n", data_dir.c_str(),
                   opened.ToString().c_str());
      return 1;
    }
    const flock::wal::RecoveryResult& rec =
        engine.durability()->recovery();
    std::printf(
        "durable at %s (snapshot %s, %zu WAL records replayed%s)\n",
        data_dir.c_str(), rec.snapshot_restored ? "restored" : "none",
        rec.wal_records_replayed,
        rec.tail_truncated ? ", torn tail dropped" : "");
  }
  // A recovered data dir already holds the users table and churn model;
  // rebuilding would fail on CREATE TABLE (AlreadyExists) and re-log the
  // whole demo, so only build into a fresh engine. Replicas never build:
  // their state comes from the primary's snapshot + log.
  if (replica_of.empty() && !engine.database()->HasTable("users")) {
    if (!BuildDemoDatabase(&engine, 2000)) {
      std::fprintf(stderr, "demo database setup failed\n");
      return 1;
    }
  }
  // The lifecycle manager sits between the wire and the engine: its
  // interceptor shadow-scores / canary-routes scoring queries while any
  // rollout is active, and recovers in-flight rollouts from the WAL.
  // Replicas skip it — their rollout state streams in via ApplyReplicated
  // and transitions belong to the primary.
  std::unique_ptr<flock::lifecycle::RolloutManager> rollouts;
  if (replica_of.empty()) {
    rollouts = std::make_unique<flock::lifecycle::RolloutManager>(&engine);
    flock::Status resumed = rollouts->Resume();
    if (!resumed.ok()) {
      std::fprintf(stderr, "rollout resume: %s\n",
                   resumed.ToString().c_str());
      return 1;
    }
    options.interceptor = rollouts->MakeInterceptor();
  }
  flock::serve::PredictionServer server(&engine, options);
  if (applier) {
    flock::repl::RegisterReplicaMetrics(server.metrics_registry(),
                                        applier.get());
  }
  if (rollouts) rollouts->RegisterMetrics(server.metrics_registry());

  int listen_fd = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::perror("socket");
    return 1;
  }
  int reuse = 1;
  setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      listen(listen_fd, 64) < 0) {
    std::perror("bind/listen");
    close(listen_fd);
    return 1;
  }
  g_listen_fd.store(listen_fd);
  signal(SIGINT, HandleSigint);
  signal(SIGPIPE, SIG_IGN);

  std::printf(
      "flock_server listening on port %d (%zu workers, queue %zu%s)\n"
      "try: ./flock_client 127.0.0.1 %d\n",
      port, options.admission.num_workers,
      options.admission.max_queue_depth,
      replica_of.empty() ? "" : ", read-only replica", port);

  ConnectionContext context;
  context.server = &server;
  context.data_dir = data_dir;
  context.applier = applier.get();
  context.rollouts = rollouts.get();

  std::vector<std::thread> connections;
  while (true) {
    int fd = accept(listen_fd, nullptr, nullptr);
    if (fd < 0) break;  // listen socket closed by SIGINT
    connections.emplace_back(ServeConnection, &context, fd);
  }

  std::printf("\ndraining (in-flight queries finish, new ones shed)%s...\n",
              engine.durable() ? ", then checkpointing" : "");
  server.Shutdown();  // drains, then checkpoints the engine if durable
  if (applier) applier->Stop();
  for (auto& t : connections) {
    if (t.joinable()) t.join();
  }
  // Final metrics, printed exactly once on the way out.
  std::printf("%s\n", server.MetricsJson().c_str());
  return 0;
}
