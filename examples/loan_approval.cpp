// Loan approval: the paper's "financial institution seeking to streamline
// its loan approval process" (§3), with the policy module of §4.1 closing
// the model-to-decision gap:
//
//   * a logistic-regression approval model scores applications in-DBMS;
//   * business policies override/veto the model (caps, minors, review
//     thresholds) — "business rules expressed as policies then override
//     the model";
//   * the decision batch is applied transactionally with rollback;
//   * the decision timeline explains every intervention.

#include <cstdio>

#include "common/random.h"
#include "common/string_util.h"
#include "flock/flock_engine.h"
#include "ml/linear.h"
#include "policy/policy_engine.h"

using flock::Status;
using flock::flock::FlockEngine;
using flock::policy::ActionKind;
using flock::policy::Decision;
using flock::policy::Policy;
using flock::policy::PolicyEngine;
using flock::storage::Value;

namespace {

/// Writes approved decisions into a decisions table; used transactionally.
class DecisionTableSink : public flock::policy::ActionSink {
 public:
  explicit DecisionTableSink(FlockEngine* engine) : engine_(engine) {}

  Status Apply(const Decision& decision) override {
    return engine_
        ->Execute("INSERT INTO decisions VALUES (" +
                  std::to_string(next_id_++) + ", " +
                  std::to_string(decision.final_value) + ", '" +
                  (decision.policy.empty() ? "model" : decision.policy) +
                  "')")
        .status();
  }
  void Rollback(const Decision& decision) override {
    (void)decision;
    --next_id_;
    (void)engine_->Execute("DELETE FROM decisions WHERE decision_id = " +
                           std::to_string(next_id_));
  }

 private:
  FlockEngine* engine_;
  int next_id_ = 0;
};

}  // namespace

int main() {
  FlockEngine engine;

  // Applications table.
  auto st = engine.ExecuteScript(
      "CREATE TABLE applications (app_id INT, amount DOUBLE, "
      "income DOUBLE, debt_ratio DOUBLE, age INT);"
      "CREATE TABLE decisions (decision_id INT, approval DOUBLE, "
      "decided_by VARCHAR);");
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.status().ToString().c_str());
    return 1;
  }
  flock::Random rng(77);
  std::string insert = "INSERT INTO applications VALUES ";
  for (int i = 0; i < 200; ++i) {
    if (i > 0) insert += ", ";
    insert += "(" + std::to_string(i) + ", " +
              std::to_string(rng.UniformInt(5, 900) * 1000) + ", " +
              std::to_string(rng.UniformInt(25, 250)) + ", " +
              flock::FormatDouble(rng.UniformDouble(0.05, 0.9), 2) + ", " +
              std::to_string(rng.UniformInt(16, 75)) + ")";
  }
  (void)engine.Execute(insert);

  // A simple approval model (trained elsewhere; weights stand in).
  flock::ml::Pipeline pipeline;
  pipeline.SetInputs(
      {flock::ml::FeatureSpec{"amount", flock::ml::FeatureKind::kNumeric, {}},
       flock::ml::FeatureSpec{"income", flock::ml::FeatureKind::kNumeric, {}},
       flock::ml::FeatureSpec{"debt_ratio",
                              flock::ml::FeatureKind::kNumeric, {}}});
  flock::ml::LinearModel model;
  model.weights = {-2e-6, 0.012, -2.5};
  model.bias = 0.6;
  model.logistic = true;
  pipeline.SetLinearModel(model);
  (void)engine.DeployModel("approval", pipeline, "risk-team",
                           "model-registry://approval/v7");

  // Score every application inside the DBMS.
  auto scored = engine.Execute(
      "SELECT app_id, amount, age, "
      "PREDICT(approval, amount, income, debt_ratio) AS p "
      "FROM applications ORDER BY app_id");
  if (!scored.ok()) {
    std::fprintf(stderr, "%s\n", scored.status().ToString().c_str());
    return 1;
  }

  // Business policies (first match wins).
  PolicyEngine policies;
  {
    auto p = Policy::Create("reject_minors", ActionKind::kReject,
                            "age < 18");
    p->set_reason("applicant below legal age");
    (void)policies.AddPolicy(std::move(p).value());
  }
  {
    auto p = Policy::Create("large_loans_need_review", ActionKind::kOverride,
                            "amount > 500000 AND prediction > 0.5");
    p->set_override_value(0.5).set_reason(
        "loans over 500k require human sign-off regardless of score");
    (void)policies.AddPolicy(std::move(p).value());
  }
  {
    auto p = Policy::Create("flag_borderline", ActionKind::kAlert,
                            "prediction BETWEEN 0.45 AND 0.55");
    p->set_reason("borderline score: route to analyst queue");
    (void)policies.AddPolicy(std::move(p).value());
  }

  // Run predictions through policies, decision by decision.
  const auto& batch = scored->batch;
  std::vector<double> predictions;
  flock::storage::Schema context_schema(
      {flock::storage::ColumnDef{"app_id", flock::storage::DataType::kInt64,
                                 false},
       flock::storage::ColumnDef{"amount",
                                 flock::storage::DataType::kDouble, false},
       flock::storage::ColumnDef{"age", flock::storage::DataType::kInt64,
                                 false}});
  flock::storage::RecordBatch context(context_schema);
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    predictions.push_back(batch.column(3)->double_at(r));
    (void)context.AppendRow({batch.column(0)->GetValue(r),
                             batch.column(1)->GetValue(r),
                             batch.column(2)->GetValue(r)});
  }
  auto decisions = policies.DecideBatch(predictions, context);
  if (!decisions.ok()) {
    std::fprintf(stderr, "%s\n", decisions.status().ToString().c_str());
    return 1;
  }

  size_t overridden = 0, rejected = 0, alerted = 0;
  for (const Decision& d : *decisions) {
    overridden += d.overridden ? 1 : 0;
    rejected += d.rejected ? 1 : 0;
    alerted += d.alerted ? 1 : 0;
  }
  std::printf("scored %zu applications: %zu policy override(s), %zu "
              "veto(es), %zu alert(s)\n",
              decisions->size(), overridden, rejected, alerted);

  // Apply the decision batch transactionally into the decisions table.
  DecisionTableSink sink(&engine);
  Status commit = policies.ApplyTransactionally(*decisions, &sink);
  std::printf("transactional apply: %s\n", commit.ToString().c_str());
  auto count = engine.Execute("SELECT COUNT(*), decided_by FROM decisions "
                              "GROUP BY decided_by ORDER BY decided_by");
  std::printf("\ndecisions by decider:\n%s\n",
              count->batch.ToString().c_str());

  // The timeline explains each intervention (debuggability, §4.1).
  std::printf("first policy interventions on the timeline:\n");
  size_t shown = 0;
  for (const auto& entry : policies.timeline()) {
    if (shown++ >= 5) break;
    std::printf("  #%llu %-24s %s: %.3f -> %.3f  [%s]\n",
                static_cast<unsigned long long>(entry.seq),
                entry.policy.c_str(),
                flock::policy::ActionKindName(entry.action), entry.before,
                entry.after, entry.context.c_str());
  }
  return 0;
}
