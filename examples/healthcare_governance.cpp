// Healthcare governance: the paper's motivating regulated scenario ("ML
// models may be trained on sensitive medical data, and make predictions
// that determine patient treatments", §1) exercised end-to-end:
//
//   * eager SQL provenance capture on every statement the engine runs;
//   * a training script analyzed by the Python provenance module;
//   * the catalog bridges both sides (challenge C3), so a schema change
//     yields the exact set of models to invalidate and retrain;
//   * model access control + audit ("access to a deployed model must be
//     controlled, similar to how access to data is controlled", §2).

#include <cstdio>

#include "flock/flock_engine.h"
#include "ml/tree.h"
#include "prov/bridge.h"
#include "prov/catalog.h"
#include "prov/sql_capture.h"
#include "pyprov/analyzer.h"
#include "pyprov/py_parser.h"

using flock::flock::FlockEngine;

int main() {
  FlockEngine engine;
  flock::prov::Catalog catalog;
  flock::prov::SqlCaptureModule sql_capture(&catalog, engine.database());

  // Every SQL statement the hospital's DBMS executes is captured eagerly.
  engine.sql()->set_statement_observer(
      [&](const std::string& sql, const flock::sql::Statement&) {
        (void)sql_capture.CaptureStatement(sql);
      });

  auto st = engine.ExecuteScript(
      "CREATE TABLE patients (patient_id INT, age INT, bmi DOUBLE, "
      "glucose DOUBLE, prior_admissions INT, readmitted INT);"
      "INSERT INTO patients VALUES "
      "(1, 64, 31.5, 140, 2, 1), (2, 41, 24.0, 95, 0, 0), "
      "(3, 77, 28.1, 180, 4, 1), (4, 55, 22.4, 100, 1, 0), "
      "(5, 68, 35.0, 160, 3, 1), (6, 33, 21.0, 88, 0, 0);");
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.status().ToString().c_str());
    return 1;
  }

  // The data-science team's training script (runs in their notebook env;
  // here we analyze its text exactly like the paper's Python module).
  const char* training_script = R"(
import pandas as pd
from sklearn.ensemble import GradientBoostingClassifier
from sklearn.metrics import roc_auc_score
df = db.query('SELECT age, bmi, glucose, prior_admissions, readmitted FROM patients')
X = df[['age', 'bmi', 'glucose', 'prior_admissions']]
y = df['readmitted']
model = GradientBoostingClassifier(n_estimators=200, max_depth=3)
model.fit(X, y)
auc = roc_auc_score(y, model.predict(X))
)";
  auto script =
      flock::pyprov::ParseScript("train_readmission.py", training_script);
  if (!script.ok()) {
    std::fprintf(stderr, "%s\n", script.status().ToString().c_str());
    return 1;
  }
  auto kb = flock::pyprov::KnowledgeBase::Default();
  auto analysis = flock::pyprov::Analyze(*script, kb);
  (void)flock::pyprov::ExportToCatalog(analysis, "train_readmission.py",
                                       &catalog);
  std::printf("script analysis: %zu model(s), %zu dataset read(s), %zu "
              "metric(s)\n",
              analysis.models.size(), analysis.datasets.size(),
              analysis.metrics.size());
  for (const auto& model : analysis.models) {
    std::printf("  model '%s' (%s), hyperparameters:", model.variable.c_str(),
                model.type.c_str());
    for (const auto& [k, v] : model.hyperparameters) {
      std::printf(" %s=%s", k.c_str(), v.c_str());
    }
    std::printf("\n");
  }

  // Bridge (C3): the script's SQL dataset derives from patients columns.
  for (const char* column :
       {"age", "bmi", "glucose", "prior_admissions", "readmitted"}) {
    (void)flock::prov::LinkDatasetToColumn(
        &catalog, analysis.datasets[0].source, "patients", column);
  }
  // The deployed model derives from the script's model entity.
  uint64_t deployed = catalog.GetOrCreate(flock::prov::EntityType::kModel,
                                          "readmission_risk");
  auto script_model = catalog.Find(flock::prov::EntityType::kModel,
                                   "train_readmission.py:model");
  catalog.AddEdge(deployed, *script_model,
                  flock::prov::EdgeType::kDerivesFrom);

  // Actually train & deploy (the in-DBMS scoring side).
  flock::ml::Pipeline pipeline;
  pipeline.SetInputs(
      {flock::ml::FeatureSpec{"age", flock::ml::FeatureKind::kNumeric, {}},
       flock::ml::FeatureSpec{"bmi", flock::ml::FeatureKind::kNumeric, {}},
       flock::ml::FeatureSpec{"glucose", flock::ml::FeatureKind::kNumeric,
                              {}},
       flock::ml::FeatureSpec{"prior_admissions",
                              flock::ml::FeatureKind::kNumeric, {}}});
  auto table = engine.database()->GetTable("patients");
  flock::storage::RecordBatch patients = (*table)->ScanAll();
  flock::ml::Dataset train;
  train.x = flock::ml::Matrix(patients.num_rows(), 4);
  for (size_t r = 0; r < patients.num_rows(); ++r) {
    for (size_t c = 0; c < 4; ++c) {
      train.x.at(r, c) = patients.column(c + 1)->AsDouble(r);
    }
    train.y.push_back(patients.column(5)->AsDouble(r));
  }
  flock::ml::GbtOptions gbt;
  gbt.num_trees = 20;
  gbt.max_depth = 3;
  gbt.min_samples_leaf = 1;
  pipeline.SetTreeModel(flock::ml::TrainGradientBoosting(train, gbt));
  (void)engine.DeployModel(
      "readmission_risk", pipeline, "clinical-ml-team",
      "prov://train_readmission.py");  // lineage pointer into the catalog

  // Only the care team may score patients.
  (void)engine.models()->SetAccessControl("readmission_risk",
                                          {"dr_chen", "care_portal"});
  engine.SetPrincipal("billing_service");
  auto denied = engine.Execute(
      "SELECT patient_id, PREDICT(readmission_risk, age, bmi, glucose, "
      "prior_admissions) FROM patients");
  std::printf("\nbilling_service scoring attempt: %s\n",
              denied.status().ToString().c_str());
  engine.SetPrincipal("dr_chen");
  auto allowed = engine.Execute(
      "SELECT patient_id, PREDICT(readmission_risk, age, bmi, glucose, "
      "prior_admissions) AS risk FROM patients ORDER BY risk DESC");
  std::printf("dr_chen sees the risk ranking:\n%s\n",
              allowed->batch.ToString(3).c_str());

  // Governance question 1 (models-as-data): how was this model derived?
  std::printf("upstream lineage of 'readmission_risk':\n");
  auto sources = flock::prov::ModelTrainingSources(catalog,
                                                   "readmission_risk");
  for (const auto* entity : sources) {
    std::printf("  %s %s\n",
                flock::prov::EntityTypeName(entity->type),
                entity->name.c_str());
  }

  // Governance question 2 (impact analysis): the lab changes how glucose
  // is measured — which models must be invalidated and retrained?
  auto impacted =
      flock::prov::FindImpactedModels(catalog, "patients", "glucose");
  std::printf("\n'patients.glucose' changed -> %zu model(s) to "
              "invalidate:\n",
              impacted.size());
  for (const auto* entity : impacted) {
    std::printf("  %s\n", entity->name.c_str());
  }

  // The audit trail ties it together.
  std::printf("\nmodel audit log:\n");
  for (const auto& event : engine.models()->audit_log()) {
    const char* kind =
        event.kind == flock::flock::AuditEvent::Kind::kRegister ? "REGISTER"
        : event.kind == flock::flock::AuditEvent::Kind::kScore  ? "SCORE"
        : event.kind == flock::flock::AuditEvent::Kind::kDenied ? "DENIED"
        : event.kind == flock::flock::AuditEvent::Kind::kDrop   ? "DROP"
                                                                : "SPEC";
    std::printf("  %-8s model=%s principal=%s rows=%zu\n", kind,
                event.model.c_str(), event.principal.c_str(), event.rows);
  }
  std::printf("\nprovenance catalog: %zu entities, %zu edges captured "
              "across SQL + script\n",
              catalog.num_entities(), catalog.num_edges());
  return 0;
}
