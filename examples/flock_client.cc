// flock_client: interactive line-protocol client for flock_server.
//
//   ./flock_client [host] [port]
//
// Reads statements from stdin (one per line), sends each to the server,
// and prints the OK/ERR frame it gets back. `.metrics`, `.session` and
// `.quit` pass through as protocol commands.

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

namespace {

/// Reads one protocol response from the socket. OK frames (and other
/// multi-line responses like `.metrics prom`) run through END\n; ERR
/// frames and one-line '.' command replies are a single line. `framed`
/// tells the reader whether the request expects an END-terminated
/// response regardless of its first line.
bool ReadResponse(int fd, bool framed, std::string* buffer,
                  std::string* out) {
  out->clear();
  bool until_end = framed;
  bool saw_first_line = false;
  while (true) {
    size_t newline = buffer->find('\n');
    if (newline == std::string::npos) {
      char chunk[4096];
      ssize_t n = read(fd, chunk, sizeof(chunk));
      if (n <= 0) return false;
      buffer->append(chunk, static_cast<size_t>(n));
      continue;
    }
    std::string line = buffer->substr(0, newline);
    buffer->erase(0, newline + 1);
    out->append(line);
    out->push_back('\n');
    if (!saw_first_line) {
      saw_first_line = true;
      until_end = until_end || line.rfind("OK ", 0) == 0;
      // ERR frames are always a single line, even for framed requests.
      if (line.rfind("ERR ", 0) == 0) return true;
      if (!until_end) return true;  // metrics JSON / session info
    } else if (line == "END") {
      return true;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const char* host = argc > 1 ? argv[1] : "127.0.0.1";
  const char* port = argc > 2 ? argv[2] : "5433";

  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* resolved = nullptr;
  if (getaddrinfo(host, port, &hints, &resolved) != 0 || !resolved) {
    std::fprintf(stderr, "cannot resolve %s:%s\n", host, port);
    return 1;
  }
  int fd = socket(resolved->ai_family, resolved->ai_socktype,
                  resolved->ai_protocol);
  if (fd < 0 ||
      connect(fd, resolved->ai_addr, resolved->ai_addrlen) < 0) {
    std::perror("connect");
    freeaddrinfo(resolved);
    return 1;
  }
  freeaddrinfo(resolved);

  std::fprintf(stderr,
               "connected to %s:%s -- one statement per line; "
               ".metrics / .session / .quit\n",
               host, port);

  std::string recv_buffer;
  std::string line;
  std::string response;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    std::string framed = line + "\n";
    if (write(fd, framed.data(), framed.size()) < 0) {
      std::perror("write");
      break;
    }
    if (line == ".quit" || line == ".exit") break;
    const bool multiline = line.rfind(".metrics prom", 0) == 0;
    if (!ReadResponse(fd, multiline, &recv_buffer, &response)) {
      std::fprintf(stderr, "server closed the connection\n");
      break;
    }
    std::fputs(response.c_str(), stdout);
    std::fflush(stdout);
  }
  close(fd);
  return 0;
}
