// Resource autotuner: the paper's concrete policy-module example (§4.1):
// "we have built models to automate the selection of parallelism for
// large big data jobs to avoid resource wastage (in the context of Cosmos
// clusters). While models are generally accurate, they occasionally
// predict resource requirements in excess of the amounts allowed by
// user-specified caps. Business rules expressed as policies then override
// the model."
//
// A regression model predicts tokens (parallelism) per job; policies clamp
// predictions to the user cap and veto unknown job classes; atomic
// multi-model deployment swaps the predictor and its fallback together.

#include <cstdio>

#include "common/random.h"
#include "common/string_util.h"
#include "flock/flock_engine.h"
#include "ml/tree.h"
#include "policy/policy_engine.h"

using flock::flock::FlockEngine;
using flock::policy::ActionKind;
using flock::policy::Policy;
using flock::policy::PolicyEngine;
using flock::storage::Value;

int main() {
  FlockEngine engine;
  auto st = engine.Execute(
      "CREATE TABLE jobs (job_id INT, input_gb DOUBLE, stages INT, "
      "avg_stage_cost DOUBLE, user_cap INT, job_class VARCHAR)");
  if (!st.ok()) return 1;

  flock::Random rng(31);
  const char* classes[] = {"etl", "reporting", "adhoc"};
  std::string insert = "INSERT INTO jobs VALUES ";
  for (int i = 0; i < 400; ++i) {
    if (i > 0) insert += ", ";
    insert += "(" + std::to_string(i) + ", " +
              flock::FormatDouble(rng.UniformDouble(1, 2000), 1) + ", " +
              std::to_string(rng.UniformInt(1, 40)) + ", " +
              flock::FormatDouble(rng.UniformDouble(0.5, 8.0), 2) + ", " +
              std::to_string(rng.UniformInt(50, 400)) + ", '" +
              classes[rng.Uniform(3)] + "')";
  }
  (void)engine.Execute(insert);

  // Train a parallelism-prediction model (tokens ~ size * cost).
  auto table = engine.database()->GetTable("jobs");
  flock::storage::RecordBatch jobs = (*table)->ScanAll();
  flock::ml::Dataset train;
  train.x = flock::ml::Matrix(jobs.num_rows(), 3);
  for (size_t r = 0; r < jobs.num_rows(); ++r) {
    double input_gb = jobs.column(1)->AsDouble(r);
    double stages = jobs.column(2)->AsDouble(r);
    double cost = jobs.column(3)->AsDouble(r);
    train.x.at(r, 0) = input_gb;
    train.x.at(r, 1) = stages;
    train.x.at(r, 2) = cost;
    train.y.push_back(0.2 * input_gb + 4.0 * stages + 10.0 * cost +
                      rng.NextGaussian() * 5.0);
  }
  flock::ml::Pipeline predictor;
  predictor.SetInputs(
      {flock::ml::FeatureSpec{"input_gb", flock::ml::FeatureKind::kNumeric,
                              {}},
       flock::ml::FeatureSpec{"stages", flock::ml::FeatureKind::kNumeric,
                              {}},
       flock::ml::FeatureSpec{"avg_stage_cost",
                              flock::ml::FeatureKind::kNumeric, {}}});
  predictor.set_task(flock::ml::ModelTask::kRegression);
  flock::ml::GbtOptions gbt;
  gbt.classification = false;
  gbt.num_trees = 60;
  gbt.learning_rate = 0.3;
  predictor.SetTreeModel(flock::ml::TrainGradientBoosting(train, gbt));

  // Atomic multi-model deployment: the predictor and a conservative
  // fallback swap together or not at all ("multiple models might have to
  // be updated transactionally", §2).
  flock::ml::Pipeline fallback = predictor;  // v1 fallback = same weights
  auto txn = engine.BeginDeployment();
  txn.StageRegister("parallelism", predictor, "cosmos-autotuner",
                    "train://parallelism/v2");
  txn.StageRegister("parallelism_fallback", fallback, "cosmos-autotuner",
                    "train://parallelism/v1");
  flock::Status commit = txn.Commit();
  std::printf("atomic deployment of predictor + fallback: %s\n",
              commit.ToString().c_str());

  // Score all queued jobs in-DBMS.
  auto scored = engine.Execute(
      "SELECT job_id, user_cap, job_class, "
      "PREDICT(parallelism, input_gb, stages, avg_stage_cost) AS tokens "
      "FROM jobs ORDER BY job_id");
  if (!scored.ok()) {
    std::fprintf(stderr, "%s\n", scored.status().ToString().c_str());
    return 1;
  }

  // Policies: never exceed the user's cap; big ad-hoc jobs get flagged.
  PolicyEngine policies;
  {
    auto p = Policy::Create("cap_overshoot", ActionKind::kOverride,
                            "prediction > user_cap");
    p->set_reason("model exceeded the user-specified cap");
    // Static policy parameters can't reference row fields, so the
    // override value is resolved to the row's own cap below.
    (void)policies.AddPolicy(std::move(p).value());
  }
  {
    auto p = Policy::Create("adhoc_guardrail", ActionKind::kAlert,
                            "job_class = 'adhoc' AND prediction > 200");
    p->set_reason("ad-hoc jobs above 200 tokens need review");
    (void)policies.AddPolicy(std::move(p).value());
  }

  flock::storage::Schema context_schema(
      {flock::storage::ColumnDef{"user_cap",
                                 flock::storage::DataType::kInt64, false},
       flock::storage::ColumnDef{"job_class",
                                 flock::storage::DataType::kString,
                                 false}});
  size_t capped = 0, alerted = 0;
  double wasted_without_policy = 0.0;
  for (size_t r = 0; r < scored->batch.num_rows(); ++r) {
    double prediction = scored->batch.column(3)->double_at(r);
    int64_t cap = scored->batch.column(1)->int_at(r);
    auto decision = policies.Decide(
        prediction, context_schema,
        {Value::Int(cap), scored->batch.column(2)->GetValue(r)});
    if (!decision.ok()) return 1;
    double final_tokens = decision->final_value;
    if (decision->overridden || decision->policy == "cap_overshoot") {
      // Resolve the override to the row's own cap.
      final_tokens = static_cast<double>(cap);
      ++capped;
      wasted_without_policy += prediction - final_tokens;
    }
    if (decision->alerted) ++alerted;
  }
  std::printf("\n%zu of %zu jobs had model predictions above their user "
              "cap and were clamped (policy override)\n",
              capped, scored->batch.num_rows());
  std::printf("%zu ad-hoc jobs flagged for review\n", alerted);
  std::printf("tokens saved by the policy layer this batch: %.0f\n",
              wasted_without_policy);
  std::printf("decision timeline holds %zu entries for debugging\n",
              policies.timeline().size());
  return 0;
}
