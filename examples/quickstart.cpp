// Quickstart: the Flock loop in one file.
//
//   1. create a table and load data (SQL);
//   2. train an inference pipeline (featurizers + GBDT) in the "cloud";
//   3. deploy it as a first-class database object;
//   4. score it *inside* SQL queries with PREDICT(...);
//   5. look at what the SQLxML cross-optimizer did to the plan.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "flock/flock_engine.h"
#include "ml/tree.h"
#include "workload/synthetic.h"

using flock::flock::FlockEngine;
using flock::flock::FlockEngineOptions;

int main() {
  // --- 1-3: table + data + trained/deployed model -----------------------
  // BuildInferenceWorkload stands in for "train in the cloud": it creates
  // table `clickstream`, trains a GBDT pipeline on a sample, and deploys
  // it as model `ctr`.
  FlockEngineOptions options;
  FlockEngine engine(options);
  flock::workload::InferenceWorkloadOptions workload_options;
  workload_options.num_rows = 20000;
  auto workload =
      flock::workload::BuildInferenceWorkload(&engine, workload_options);
  if (!workload.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }
  std::printf("deployed model 'ctr': %s\n",
              workload->pipeline.Summary().c_str());

  // --- 4: in-DBMS inference ---------------------------------------------
  auto top = engine.Execute(
      "SELECT id, PREDICT(ctr, f0, f1, f2, f3, f4, f5, f6, f7, f8, f9, "
      "f10, f11, f12, f13, f14, f15, f16, f17, f18, f19, f20, f21, f22, "
      "f23, f24, f25, f26, segment) AS score "
      "FROM clickstream WHERE segment = 'web' "
      "ORDER BY score DESC LIMIT 5");
  if (!top.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 top.status().ToString().c_str());
    return 1;
  }
  std::printf("\ntop-5 'web' rows by predicted click-through:\n%s\n",
              top->batch.ToString().c_str());

  // --- 5: what the cross-optimizer did ------------------------------------
  auto explain = engine.Execute(
      "EXPLAIN SELECT id FROM clickstream WHERE segment = 'web' AND "
      "PREDICT(ctr, f0, f1, f2, f3, f4, f5, f6, f7, f8, f9, f10, f11, "
      "f12, f13, f14, f15, f16, f17, f18, f19, f20, f21, f22, f23, f24, "
      "f25, f26, segment) > 0.8");
  std::printf("optimized plan (note the split filters, the PREDICT_GT "
              "threshold intrinsic, the pruned model '#p...' and the "
              "narrowed scan):\n%s\n",
              explain->plan_text.c_str());

  const auto& stats = engine.cross_optimizer()->stats();
  std::printf("cross-optimizer: %zu filter split(s), %zu predicate(s) "
              "pushed into the model, %zu unused feature(s) pruned, %zu "
              "tree node(s) removed via data statistics\n",
              stats.filters_split, stats.predicates_pushed_up,
              stats.features_pruned, stats.tree_nodes_compressed);

  // Models are governed objects: audit trail comes for free.
  std::printf("\naudit log has %zu event(s); last: model scored by "
              "'%s'\n",
              engine.models()->audit_log().size(),
              engine.models()->audit_log().back().principal.c_str());
  return 0;
}
