#ifndef FLOCK_REPL_REPLICATION_H_
#define FLOCK_REPL_REPLICATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status_or.h"
#include "wal/checkpoint.h"
#include "wal/wal_record.h"

namespace flock::repl {

/// A point in the primary's redo history. The WAL is truncated at every
/// checkpoint under a bumped epoch, so a bare LSN is meaningless across
/// checkpoints — positions carry both. `lsn` is the index of the next
/// record within the epoch's log (0 = nothing from this epoch applied).
///
/// Ordering: positions compare lexicographically (epoch first). An epoch
/// bump resets the LSN because the snapshot cut at that checkpoint
/// already contains every earlier record.
struct ReplicationPosition {
  uint64_t epoch = 0;
  uint64_t lsn = 0;

  bool operator==(const ReplicationPosition& o) const {
    return epoch == o.epoch && lsn == o.lsn;
  }
  bool operator<(const ReplicationPosition& o) const {
    return epoch != o.epoch ? epoch < o.epoch : lsn < o.lsn;
  }
  std::string ToString() const {
    return std::to_string(epoch) + ":" + std::to_string(lsn);
  }
};

/// Bootstrap payload: a full snapshot image plus the position a replica
/// sits at after installing it — {snapshot.epoch, 0}, the start of the
/// epoch's (possibly non-empty) log.
struct BootstrapResult {
  wal::SnapshotData snapshot;
  ReplicationPosition position;
  /// Encoded snapshot size (drives repl.catchup_bytes).
  uint64_t bytes = 0;
};

/// One streaming round: records from the requested position, in log
/// order, plus where the cursor now points.
struct FetchResult {
  std::vector<wal::WalRecord> records;
  /// Position after the last record in `records` (== the request
  /// position when none were returned).
  ReplicationPosition next;
  /// The durable log is exhausted at `next` — the replica is caught up
  /// until the primary commits more.
  bool end_of_log = false;
  /// The requested epoch is gone (a checkpoint truncated its log, or the
  /// replica asked for more records than the epoch ever held). Streaming
  /// cannot continue; the replica must re-bootstrap from the snapshot.
  bool snapshot_required = false;
  /// Bytes of log consumed this round (drives repl.catchup_bytes).
  uint64_t bytes = 0;
};

/// Where a replica's state comes from: the in-process publisher reading
/// the primary's data directory, or a TCP client speaking `.repl` to a
/// remote primary (examples/flock_server.cc). The applier is written
/// against this interface so the differential and failover tests run the
/// exact code path production streaming uses.
class ReplicationSource {
 public:
  virtual ~ReplicationSource() = default;

  /// Full-state bootstrap. Works even when the primary process is dead —
  /// the publisher reads the on-disk snapshot — which is what makes
  /// failover catch-up possible.
  virtual StatusOr<BootstrapResult> Bootstrap() = 0;

  /// Streams up to `max_records` committed records from `from`.
  virtual StatusOr<FetchResult> Fetch(ReplicationPosition from,
                                      size_t max_records) = 0;

  /// The durable end of the primary's log right now (epoch + record
  /// count); replica lag = DurableEnd - applied position.
  virtual StatusOr<ReplicationPosition> DurableEnd() = 0;
};

}  // namespace flock::repl

#endif  // FLOCK_REPL_REPLICATION_H_
