#include "repl/applier.h"

#include <chrono>

namespace flock::repl {

namespace {

bool IsFatal(const Status& s) {
  // Transient source conditions (file mid-creation, shed load) are the
  // retry policy's problem, and a fired cancel token says the *caller*
  // stopped the round — the stream itself is fine, so neither may wedge
  // sticky health. Everything else means the stream or the replica state
  // is damaged and must not be silently spanned.
  return !s.ok() && s.code() != StatusCode::kUnavailable &&
         s.code() != StatusCode::kNotFound &&
         s.code() != StatusCode::kCancelled &&
         s.code() != StatusCode::kDeadlineExceeded;
}

}  // namespace

ReplicaApplier::ReplicaApplier(flock::FlockEngine* engine,
                               ReplicationSource* source,
                               ReplicaApplierOptions options)
    : engine_(engine), source_(source), options_(options) {}

ReplicaApplier::~ReplicaApplier() { Stop(); }

void ReplicaApplier::NoteError(const Status& s) {
  if (!IsFatal(s)) return;
  std::lock_guard<std::mutex> lock(state_mu_);
  if (health_.ok()) health_ = s;
}

Status ReplicaApplier::health() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return health_;
}

ReplicationPosition ReplicaApplier::applied() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return position_;
}

ReplicationPosition ReplicaApplier::durable_end() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return durable_end_;
}

uint64_t ReplicaApplier::lag_records() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (durable_end_.epoch > position_.epoch) return UINT64_MAX;
  if (durable_end_.epoch < position_.epoch ||
      durable_end_.lsn <= position_.lsn) {
    return 0;
  }
  return durable_end_.lsn - position_.lsn;
}

bool ReplicaApplier::caught_up() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return caught_up_;
}

Status ReplicaApplier::Bootstrap() {
  std::lock_guard<std::mutex> lock(op_mu_);
  return BootstrapLocked();
}

Status ReplicaApplier::BootstrapLocked() {
  BootstrapResult bootstrap;
  Status fetched = serve::RetryUnavailable(
      options_.retry, options_.cancel, [&]() -> Status {
    auto result = source_->Bootstrap();
    Status s = result.status();
    if (result.ok()) bootstrap = *std::move(result);
    return s;
  });
  if (!fetched.ok()) {
    NoteError(fetched);
    return fetched;
  }
  Status installed = engine_->InstallReplicaSnapshot(bootstrap.snapshot);
  if (!installed.ok()) {
    NoteError(installed);
    return installed;
  }
  bytes_received_.fetch_add(bootstrap.bytes, std::memory_order_relaxed);
  bootstraps_.fetch_add(1, std::memory_order_relaxed);
  bootstrapped_ = true;
  std::lock_guard<std::mutex> lock(state_mu_);
  position_ = bootstrap.position;
  if (durable_end_ < position_) durable_end_ = position_;
  caught_up_ = false;
  return Status::OK();
}

StatusOr<size_t> ReplicaApplier::CatchUpOnce() {
  std::lock_guard<std::mutex> lock(op_mu_);
  return RoundLocked();
}

StatusOr<size_t> ReplicaApplier::RoundLocked() {
  FLOCK_RETURN_NOT_OK(options_.cancel.Check("replica.round"));
  FLOCK_RETURN_NOT_OK(health());
  if (!bootstrapped_) {
    FLOCK_RETURN_NOT_OK(BootstrapLocked());
  }
  ReplicationPosition from;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    from = position_;
  }
  FetchResult fetch;
  Status fetched = serve::RetryUnavailable(
      options_.retry, options_.cancel, [&]() -> Status {
    auto result = source_->Fetch(from, options_.batch_records);
    Status s = result.status();
    if (result.ok()) fetch = *std::move(result);
    return s;
  });
  if (!fetched.ok()) {
    NoteError(fetched);
    return fetched;
  }
  if (fetch.snapshot_required) {
    // The primary checkpointed past this replica's epoch: the log it was
    // streaming no longer exists. Start over from the fresh snapshot.
    FLOCK_RETURN_NOT_OK(BootstrapLocked());
    return static_cast<size_t>(0);
  }
  size_t applied_count = 0;
  for (const wal::WalRecord& record : fetch.records) {
    Status applied_status = engine_->ApplyReplicated(record);
    if (!applied_status.ok()) {
      NoteError(applied_status);
      return applied_status;
    }
    ++applied_count;
    std::lock_guard<std::mutex> lock(state_mu_);
    ++position_.lsn;
  }
  records_applied_.fetch_add(applied_count, std::memory_order_relaxed);
  bytes_received_.fetch_add(fetch.bytes, std::memory_order_relaxed);
  ReplicationPosition probed_end;
  bool have_probed_end = false;
  if (!fetch.end_of_log) {
    // The round stopped at batch_records, not at the log's end: ask the
    // source how far behind we still are so lag_records() (and the
    // bounded-staleness gate reading it) reflects the true durable end,
    // not just the prefix fetched so far. Best-effort — a failed probe
    // leaves the last-seen end in place.
    auto end = source_->DurableEnd();
    if (end.ok()) {
      probed_end = *end;
      have_probed_end = true;
    }
  }
  std::lock_guard<std::mutex> lock(state_mu_);
  position_ = fetch.next;
  if (fetch.end_of_log) {
    durable_end_ = fetch.next;
  } else if (durable_end_ < fetch.next) {
    durable_end_ = fetch.next;
  }
  if (have_probed_end && durable_end_ < probed_end) {
    durable_end_ = probed_end;
  }
  caught_up_ = fetch.end_of_log;
  return applied_count;
}

Status ReplicaApplier::CatchUp() {
  std::lock_guard<std::mutex> lock(op_mu_);
  while (true) {
    auto applied_count = RoundLocked();
    FLOCK_RETURN_NOT_OK(applied_count.status());
    std::lock_guard<std::mutex> state(state_mu_);
    if (caught_up_) return Status::OK();
  }
}

void ReplicaApplier::Start() {
  std::lock_guard<std::mutex> lock(thread_mu_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  streamer_ = std::thread([this] { StreamLoop(); });
}

void ReplicaApplier::Stop() {
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    if (!running_) return;
    stop_ = true;
    wake_cv_.notify_all();
  }
  streamer_.join();
  std::lock_guard<std::mutex> lock(thread_mu_);
  running_ = false;
}

void ReplicaApplier::StreamLoop() {
  while (true) {
    {
      std::lock_guard<std::mutex> lock(thread_mu_);
      if (stop_) return;
    }
    auto applied_count = CatchUpOnce();
    bool idle = true;
    if (applied_count.ok()) {
      idle = *applied_count == 0;
    } else if (IsFatal(applied_count.status())) {
      // Wedged (sticky health). Keep the thread parked until Stop so
      // the replica's last-applied state stays servable.
      idle = true;
    }
    if (idle) {
      std::unique_lock<std::mutex> lock(thread_mu_);
      wake_cv_.wait_for(
          lock, std::chrono::milliseconds(options_.poll_interval_ms),
          [this] { return stop_; });
      if (stop_) return;
    }
  }
}

}  // namespace flock::repl
