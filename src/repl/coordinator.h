#ifndef FLOCK_REPL_COORDINATOR_H_
#define FLOCK_REPL_COORDINATOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "flock/flock_engine.h"
#include "repl/applier.h"
#include "repl/replication.h"

namespace flock::repl {

/// One replica's health as the coordinator sees it.
struct ReplicaLag {
  std::string name;
  ReplicationPosition applied;
  ReplicationPosition durable_end;
  /// Records behind the primary's durable log (UINT64_MAX = re-bootstrap
  /// pending).
  uint64_t lag_records = 0;
  bool caught_up = false;
  /// The applier's sticky health ("OK" when streaming normally).
  std::string health;
};

/// Tracks the primary and its replica fleet: registration, lag
/// monitoring, graceful detach, and manual failover. Epochs double as
/// fence tokens — Promote seeds the new primary's durability above every
/// epoch the coordinator has observed, and AttachPrimary refuses any
/// engine whose epoch falls at or below the fence (a deposed primary
/// coming back must not be re-attached as if nothing happened).
///
/// The coordinator holds non-owning pointers; engines and appliers must
/// outlive their registration (or Detach first).
class ReplicationCoordinator {
 public:
  ReplicationCoordinator() = default;

  ReplicationCoordinator(const ReplicationCoordinator&) = delete;
  ReplicationCoordinator& operator=(const ReplicationCoordinator&) = delete;

  /// Registers the primary. The engine must be durable (replication
  /// ships its WAL). Aborted when the engine's epoch is at or below the
  /// fence raised by an earlier Promote — it is a deposed primary.
  Status AttachPrimary(flock::FlockEngine* primary);

  /// Forgets the primary (e.g. it crashed) without touching replicas;
  /// streaming continues from its on-disk log.
  void DetachPrimary();

  /// Registers a replica under a unique name. The applier must already
  /// target the replica's engine.
  Status AddReplica(const std::string& name, flock::FlockEngine* engine,
                    ReplicaApplier* applier);

  /// Graceful detach: stops the replica's streaming thread and forgets
  /// it. The replica keeps serving whatever it has applied.
  Status Detach(const std::string& name);

  /// Per-replica lag report, sorted by name.
  std::vector<ReplicaLag> Lags() const;

  /// Manual failover. Drains `name`'s remaining stream (works against a
  /// dead primary — catch-up reads its data directory), then promotes
  /// its engine to a full primary durable against `data_dir`, with the
  /// epoch seeded above everything observed so the old primary is
  /// fenced. The promoted replica is removed from the fleet and becomes
  /// the coordinator's primary; remaining replicas keep their appliers
  /// (the caller re-points their sources at the new primary).
  ///
  /// NotFound for an unknown name, Aborted when the replica cannot
  /// finish catch-up (its stream is wedged — promoting it would lose
  /// committed writes).
  Status Promote(const std::string& name, const std::string& data_dir,
                 flock::FlockDurabilityConfig config = {});

  /// Epoch fence: everything at or below this is a deposed primary.
  uint64_t fence_epoch() const;
  uint64_t failovers() const {
    return failovers_.load(std::memory_order_relaxed);
  }
  flock::FlockEngine* primary() const;
  size_t num_replicas() const;

 private:
  struct Replica {
    flock::FlockEngine* engine = nullptr;
    ReplicaApplier* applier = nullptr;
  };

  void ObserveEpochLocked(uint64_t epoch);

  mutable std::mutex mu_;
  flock::FlockEngine* primary_ = nullptr;
  std::map<std::string, Replica> replicas_;
  /// Highest epoch observed across primaries and promotions.
  uint64_t max_epoch_seen_ = 0;
  /// Epochs <= fence belong to deposed primaries.
  uint64_t fence_epoch_ = 0;
  std::atomic<uint64_t> failovers_{0};
};

}  // namespace flock::repl

#endif  // FLOCK_REPL_COORDINATOR_H_
