#include "repl/coordinator.h"

#include <algorithm>

namespace flock::repl {

void ReplicationCoordinator::ObserveEpochLocked(uint64_t epoch) {
  max_epoch_seen_ = std::max(max_epoch_seen_, epoch);
}

Status ReplicationCoordinator::AttachPrimary(flock::FlockEngine* primary) {
  if (primary == nullptr || !primary->durable()) {
    return Status::InvalidArgument(
        "replication needs a durable primary (call Open first)");
  }
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t epoch = primary->durability()->epoch();
  if (epoch <= fence_epoch_) {
    return Status::Aborted(
        "primary at epoch " + std::to_string(epoch) +
        " is fenced (failover promoted a replica past epoch " +
        std::to_string(fence_epoch_) + "); wipe or re-seed it");
  }
  primary_ = primary;
  ObserveEpochLocked(epoch);
  return Status::OK();
}

void ReplicationCoordinator::DetachPrimary() {
  std::lock_guard<std::mutex> lock(mu_);
  primary_ = nullptr;
}

Status ReplicationCoordinator::AddReplica(const std::string& name,
                                          flock::FlockEngine* engine,
                                          ReplicaApplier* applier) {
  if (engine == nullptr || applier == nullptr) {
    return Status::InvalidArgument("replica needs an engine and an applier");
  }
  if (!engine->replica()) {
    return Status::InvalidArgument(
        "engine for '" + name +
        "' is not in replica mode (call OpenAsReplica)");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto inserted = replicas_.emplace(name, Replica{engine, applier});
  if (!inserted.second) {
    return Status::AlreadyExists("replica '" + name +
                                 "' is already registered");
  }
  return Status::OK();
}

Status ReplicationCoordinator::Detach(const std::string& name) {
  ReplicaApplier* applier = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = replicas_.find(name);
    if (it == replicas_.end()) {
      return Status::NotFound("no replica named '" + name + "'");
    }
    applier = it->second.applier;
    replicas_.erase(it);
  }
  // Joining the streaming thread can block on an in-flight round; do it
  // off the coordinator lock so lag reports stay responsive.
  applier->Stop();
  return Status::OK();
}

std::vector<ReplicaLag> ReplicationCoordinator::Lags() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ReplicaLag> out;
  out.reserve(replicas_.size());
  for (const auto& [name, replica] : replicas_) {
    ReplicaLag lag;
    lag.name = name;
    lag.applied = replica.applier->applied();
    lag.durable_end = replica.applier->durable_end();
    lag.lag_records = replica.applier->lag_records();
    lag.caught_up = replica.applier->caught_up();
    lag.health = replica.applier->health().ToString();
    out.push_back(std::move(lag));
  }
  return out;
}

Status ReplicationCoordinator::Promote(const std::string& name,
                                       const std::string& data_dir,
                                       flock::FlockDurabilityConfig config) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = replicas_.find(name);
  if (it == replicas_.end()) {
    return Status::NotFound("no replica named '" + name + "'");
  }
  Replica replica = it->second;

  // Drain whatever the (possibly dead) primary left durable: the
  // publisher reads its data directory, so every committed record is
  // still reachable even though the process is gone. A replica that
  // cannot finish draining must not be promoted — it would silently drop
  // committed writes.
  replica.applier->Stop();
  Status drained = replica.applier->CatchUp();
  if (!drained.ok()) {
    return Status::Aborted("failover aborted: replica '" + name +
                           "' cannot drain the primary log: " +
                           drained.ToString());
  }

  uint64_t fence = max_epoch_seen_;
  if (primary_ != nullptr && primary_->durable()) {
    fence = std::max(fence, primary_->durability()->epoch());
  }
  fence = std::max(fence, replica.applier->applied().epoch);

  FLOCK_RETURN_NOT_OK(
      replica.engine->PromoteToPrimary(data_dir, config, fence + 1));

  fence_epoch_ = fence;
  ObserveEpochLocked(replica.engine->durability()->epoch());
  primary_ = replica.engine;
  replicas_.erase(name);
  failovers_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

uint64_t ReplicationCoordinator::fence_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fence_epoch_;
}

flock::FlockEngine* ReplicationCoordinator::primary() const {
  std::lock_guard<std::mutex> lock(mu_);
  return primary_;
}

size_t ReplicationCoordinator::num_replicas() const {
  std::lock_guard<std::mutex> lock(mu_);
  return replicas_.size();
}

}  // namespace flock::repl
