#include "repl/metrics.h"

namespace flock::repl {

void RegisterReplicaMetrics(obs::MetricsRegistry* registry,
                            ReplicaApplier* applier) {
  registry->RegisterGauge("repl.applied_epoch", [applier] {
    return applier->applied().epoch;
  });
  registry->RegisterGauge("repl.applied_lsn", [applier] {
    return applier->applied().lsn;
  });
  registry->RegisterGauge("repl.durable_epoch", [applier] {
    return applier->durable_end().epoch;
  });
  registry->RegisterGauge("repl.durable_lsn", [applier] {
    return applier->durable_end().lsn;
  });
  registry->RegisterGauge("repl.replica_lag_records", [applier] {
    return applier->lag_records();
  });
  registry->RegisterCounter("repl.records_applied", [applier] {
    return applier->records_applied();
  });
  registry->RegisterCounter("repl.catchup_bytes", [applier] {
    return applier->bytes_received();
  });
  registry->RegisterCounter("repl.bootstraps", [applier] {
    return applier->bootstraps();
  });
}

void RegisterCoordinatorMetrics(obs::MetricsRegistry* registry,
                                ReplicationCoordinator* coordinator) {
  registry->RegisterCounter("repl.failovers", [coordinator] {
    return coordinator->failovers();
  });
  registry->RegisterGauge("repl.replicas", [coordinator] {
    return static_cast<uint64_t>(coordinator->num_replicas());
  });
  registry->RegisterGauge("repl.fence_epoch", [coordinator] {
    return coordinator->fence_epoch();
  });
}

}  // namespace flock::repl
