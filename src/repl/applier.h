#ifndef FLOCK_REPL_APPLIER_H_
#define FLOCK_REPL_APPLIER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "common/cancel.h"
#include "flock/flock_engine.h"
#include "repl/replication.h"
#include "serve/retry.h"

namespace flock::repl {

struct ReplicaApplierOptions {
  /// Records requested per fetch round.
  size_t batch_records = 256;
  /// Sleep between rounds once caught up (the streaming thread's poll
  /// cadence, and the ceiling on steady-state replica lag in time).
  int poll_interval_ms = 5;
  /// Transient-failure policy for Bootstrap/Fetch calls: Unavailable
  /// from the source (publisher mid-checkpoint, primary shedding load)
  /// is retried with backoff instead of surfacing per round.
  serve::RetryPolicy retry{/*max_attempts=*/5, /*base_backoff_ms=*/5,
                           /*max_backoff_ms=*/100, /*jitter=*/0.2};
  /// Cooperative stop for manual CatchUp() drives (failover drain with a
  /// time budget): checked between rounds and between retry attempts. A
  /// fired token aborts the catch-up with kCancelled/kDeadlineExceeded —
  /// neither wedges sticky health; the applier can be re-driven later.
  CancelToken cancel;
};

/// Drives one replica engine from a ReplicationSource: bootstraps from a
/// snapshot, then streams WAL records and applies them through
/// FlockEngine::ApplyReplicated — the same replay switch crash recovery
/// uses. Tracks the applied position, the last observed durable end of
/// the primary's log (so bounded-staleness gates never do I/O on the
/// read path), and sticky health: corruption or a failed apply wedges
/// the applier exactly like a failed WAL append wedges a primary.
///
/// `snapshot_required` from the source (the primary checkpointed past
/// the replica's epoch) triggers an automatic re-bootstrap.
///
/// Thread model: CatchUpOnce/CatchUp/Bootstrap may be called manually
/// (tests, failover drain) or via the Start() streaming thread; rounds
/// are serialized internally. Position/lag accessors are safe from any
/// thread.
class ReplicaApplier {
 public:
  ReplicaApplier(flock::FlockEngine* engine, ReplicationSource* source,
                 ReplicaApplierOptions options = {});
  ~ReplicaApplier();

  ReplicaApplier(const ReplicaApplier&) = delete;
  ReplicaApplier& operator=(const ReplicaApplier&) = delete;

  /// Installs a fresh snapshot from the source (wiping local state).
  Status Bootstrap();

  /// One fetch+apply round; bootstraps first if never bootstrapped.
  /// Returns the number of records applied this round.
  StatusOr<size_t> CatchUpOnce();

  /// Rounds until the source reports end-of-durable-log.
  Status CatchUp();

  /// Starts the background streaming thread (idempotent).
  void Start();
  /// Stops and joins the streaming thread (idempotent; safe if never
  /// started). The applier can be restarted or driven manually after.
  void Stop();

  /// Position after the last applied record.
  ReplicationPosition applied() const;
  /// Durable end of the primary's log, as of the last fetch round.
  ReplicationPosition durable_end() const;
  /// Records between durable_end and applied. UINT64_MAX when the
  /// primary is an epoch ahead (re-bootstrap pending — effectively
  /// infinite staleness).
  uint64_t lag_records() const;
  /// True when the last round drained the durable log.
  bool caught_up() const;

  /// First fatal (non-transient) error, sticky. A wedged applier stops
  /// streaming; the replica keeps serving its last-applied state.
  Status health() const;

  uint64_t records_applied() const {
    return records_applied_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_received() const {
    return bytes_received_.load(std::memory_order_relaxed);
  }
  uint64_t bootstraps() const {
    return bootstraps_.load(std::memory_order_relaxed);
  }

 private:
  Status BootstrapLocked();
  StatusOr<size_t> RoundLocked();
  /// Marks `s` sticky when it is fatal (corruption / failed apply).
  void NoteError(const Status& s);
  void StreamLoop();

  flock::FlockEngine* engine_;
  ReplicationSource* source_;
  ReplicaApplierOptions options_;

  /// Serializes rounds (manual callers vs the streaming thread).
  std::mutex op_mu_;
  bool bootstrapped_ = false;

  /// Guards the published positions/health (read by gauges and gates).
  mutable std::mutex state_mu_;
  ReplicationPosition position_;
  ReplicationPosition durable_end_;
  bool caught_up_ = false;
  Status health_;

  std::atomic<uint64_t> records_applied_{0};
  std::atomic<uint64_t> bytes_received_{0};
  std::atomic<uint64_t> bootstraps_{0};

  std::mutex thread_mu_;
  std::condition_variable wake_cv_;
  bool stop_ = false;
  bool running_ = false;
  std::thread streamer_;
};

}  // namespace flock::repl

#endif  // FLOCK_REPL_APPLIER_H_
