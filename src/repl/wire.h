#ifndef FLOCK_REPL_WIRE_H_
#define FLOCK_REPL_WIRE_H_

#include <string>

#include "repl/replication.h"

namespace flock::repl {

/// Wire form of the `.repl` endpoint, layered on the serving layer's
/// line protocol so replication rides the same transport (and the same
/// `ERR <CodeName> <msg>` failure shape) as query traffic.
///
/// Requests (the argument after `.repl`):
///   status                         role + current position
///   bootstrap                      full snapshot image
///   fetch <epoch> <lsn> <max>      stream records from a position
///
/// Responses:
///   REPL STATUS <role> <epoch> <lsn>\nEND\n
///   REPL SNAPSHOT <epoch> <lsn>\n<hex snapshot>\nEND\n
///   REPL RECORDS <n> <next_epoch> <next_lsn> <eol> <snap>\n
///   <hex frame> x n\nEND\n
///
/// Payloads are lowercase-hex encoded (a record frame is the u8 type tag
/// + EncodeRecordPayload bytes) — binary-safe inside a line-delimited
/// text protocol at 2x size, which catch-up amortizes fine.

std::string HexEncode(const std::string& bytes);
StatusOr<std::string> HexDecode(const std::string& hex);

/// One record as a hex frame (and back).
std::string EncodeRecordFrame(const wal::WalRecord& record);
StatusOr<wal::WalRecord> DecodeRecordFrame(const std::string& hex);

/// A parsed `.repl` argument string.
struct ReplCommand {
  enum class Kind { kStatus, kBootstrap, kFetch, kInvalid };
  Kind kind = Kind::kInvalid;
  ReplicationPosition from;  // kFetch
  uint64_t max_records = 0;  // kFetch
  std::string error;         // kInvalid: what was wrong
};
ReplCommand ParseReplCommand(const std::string& args);

// --- server side: render responses ---
std::string EncodeStatusResponse(const std::string& role,
                                 ReplicationPosition position);
std::string EncodeBootstrapResponse(const BootstrapResult& bootstrap);
std::string EncodeFetchResponse(const FetchResult& fetch);

// --- client side: parse complete responses (header..END) ---
struct ReplStatus {
  std::string role;
  ReplicationPosition position;
};
StatusOr<ReplStatus> ParseStatusResponse(const std::string& text);
StatusOr<BootstrapResult> ParseBootstrapResponse(const std::string& text);
StatusOr<FetchResult> ParseFetchResponse(const std::string& text);

}  // namespace flock::repl

#endif  // FLOCK_REPL_WIRE_H_
