#include "repl/publisher.h"

#include "wal/checkpoint.h"
#include "wal/fault_injector.h"

namespace flock::repl {

ReplicationPublisher::ReplicationPublisher(std::string data_dir)
    : data_dir_(std::move(data_dir)) {}

StatusOr<BootstrapResult> ReplicationPublisher::Bootstrap() {
  std::lock_guard<std::mutex> lock(mu_);
  FLOCK_RETURN_NOT_OK(wal::FaultInjector::Get()->Hit("repl.bootstrap"));
  BootstrapResult out;
  wal::CheckpointManager checkpoint(data_dir_);
  auto snapshot = checkpoint.Read();
  if (snapshot.ok()) {
    out.snapshot = *std::move(snapshot);
  } else if (snapshot.status().code() == StatusCode::kNotFound) {
    // The primary has never checkpointed: its whole history is in the
    // epoch-1 WAL, so the bootstrap image is the empty engine.
    out.snapshot.epoch = 1;
  } else {
    return snapshot.status();
  }
  out.position = ReplicationPosition{out.snapshot.epoch, 0};
  out.bytes = wal::EncodeSnapshot(out.snapshot).size();
  return out;
}

StatusOr<FetchResult> ReplicationPublisher::Fetch(ReplicationPosition from,
                                                  size_t max_records) {
  std::lock_guard<std::mutex> lock(mu_);
  FLOCK_RETURN_NOT_OK(wal::FaultInjector::Get()->Hit("repl.fetch"));
  FetchResult out;
  out.next = from;

  if (reader_ == nullptr) {
    reader_ = std::make_unique<wal::WalTailReader>(wal_path());
  }
  if (reader_->epoch() != from.epoch || reader_->next_lsn() != from.lsn) {
    Status seek = reader_->Seek(from.lsn);
    if (seek.code() == StatusCode::kNotFound) {
      // No log on disk yet: everything durable is in the snapshot.
      out.end_of_log = true;
      return out;
    }
    if (seek.code() == StatusCode::kOutOfRange) {
      // The durable log holds fewer records than the replica claims to
      // have applied — its position is from a truncated (older) epoch.
      out.snapshot_required = true;
      return out;
    }
    FLOCK_RETURN_NOT_OK(seek);
    if (reader_->epoch() != from.epoch) {
      out.snapshot_required = true;
      return out;
    }
  }

  uint64_t start_offset = reader_->offset();
  auto polled = reader_->Poll(max_records);
  if (!polled.ok() && polled.status().code() == StatusCode::kNotFound) {
    out.end_of_log = true;
    return out;
  }
  FLOCK_RETURN_NOT_OK(polled.status());
  if (polled->epoch_changed) {
    // A checkpoint swapped the log out from under the cursor. The old
    // epoch's final LSN is unknowable (its file is gone), so streaming
    // continuity cannot be proven — the replica re-bootstraps from the
    // snapshot that very checkpoint wrote.
    out.snapshot_required = true;
    return out;
  }
  out.records = std::move(polled->records);
  out.end_of_log = polled->end_of_durable_log;
  out.next = ReplicationPosition{reader_->epoch(), reader_->next_lsn()};
  out.bytes = reader_->offset() - start_offset;
  return out;
}

StatusOr<ReplicationPosition> ReplicationPublisher::DurableEnd() {
  std::lock_guard<std::mutex> lock(mu_);
  wal::WalTailReader probe(wal_path());
  while (true) {
    auto polled = probe.Poll(1024);
    if (!polled.ok()) {
      if (polled.status().code() == StatusCode::kNotFound) {
        // No WAL: the snapshot (if any) is the entire durable state.
        wal::CheckpointManager checkpoint(data_dir_);
        auto snapshot = checkpoint.Read();
        if (snapshot.ok()) {
          return ReplicationPosition{snapshot->epoch, 0};
        }
        if (snapshot.status().code() == StatusCode::kNotFound) {
          return ReplicationPosition{1, 0};
        }
        return snapshot.status();
      }
      return polled.status();
    }
    if (polled->epoch_changed) continue;
    if (polled->end_of_durable_log) break;
  }
  return ReplicationPosition{probe.epoch(), probe.next_lsn()};
}

}  // namespace flock::repl
