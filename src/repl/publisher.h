#ifndef FLOCK_REPL_PUBLISHER_H_
#define FLOCK_REPL_PUBLISHER_H_

#include <memory>
#include <mutex>
#include <string>

#include "repl/replication.h"
#include "wal/wal_reader.h"

namespace flock::repl {

/// Serves catch-up and steady-state streaming for one replica, reading
/// purely from the primary's *data directory* (snapshot.fsnap +
/// wal.log). No live-engine dependency: the publisher works equally
/// against a running primary (the WAL writer fflushes every append, so
/// the file is always current up to the last committed record) and
/// against a dead one's leftover files — the failover path.
///
/// Torn tails are handled by WalTailReader: a half-written final frame is
/// "end of durable log", never an error, because the writer only acks a
/// record after its full frame (and fsync policy) lands. Checkpoint log
/// swaps surface as `snapshot_required` when the replica's position is
/// from a truncated epoch.
///
/// One publisher per replica (each holds its own cursor); all methods
/// are internally locked so a metrics scrape can call DurableEnd while a
/// fetch is in flight.
class ReplicationPublisher : public ReplicationSource {
 public:
  explicit ReplicationPublisher(std::string data_dir);

  StatusOr<BootstrapResult> Bootstrap() override;
  StatusOr<FetchResult> Fetch(ReplicationPosition from,
                              size_t max_records) override;
  StatusOr<ReplicationPosition> DurableEnd() override;

  const std::string& data_dir() const { return data_dir_; }

 private:
  std::string wal_path() const { return data_dir_ + "/wal.log"; }

  std::string data_dir_;
  std::mutex mu_;
  /// Cursor for this replica's stream; recreated on Seek mismatches.
  std::unique_ptr<wal::WalTailReader> reader_;
};

}  // namespace flock::repl

#endif  // FLOCK_REPL_PUBLISHER_H_
