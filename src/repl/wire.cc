#include "repl/wire.h"

#include <cstdint>

#include "common/string_util.h"

namespace flock::repl {

namespace {

const char kHexDigits[] = "0123456789abcdef";

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

/// Splits a complete response into lines and validates the trailing END.
StatusOr<std::vector<std::string>> ResponseLines(const std::string& text) {
  std::vector<std::string> lines = Split(text, '\n');
  // A well-formed response ends "...\nEND\n" -> trailing empty piece.
  while (!lines.empty() && lines.back().empty()) lines.pop_back();
  if (lines.empty() || lines.back() != "END") {
    return Status::ParseError("repl response is not END-terminated");
  }
  lines.pop_back();
  if (lines.empty()) {
    return Status::ParseError("repl response has no header line");
  }
  return lines;
}

}  // namespace

std::string HexEncode(const std::string& bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out += kHexDigits[c >> 4];
    out += kHexDigits[c & 0xF];
  }
  return out;
}

StatusOr<std::string> HexDecode(const std::string& hex) {
  if (hex.size() % 2 != 0) {
    return Status::ParseError("hex payload has odd length");
  }
  std::string out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexNibble(hex[i]);
    int lo = HexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::ParseError("hex payload has a non-hex character");
    }
    out += static_cast<char>((hi << 4) | lo);
  }
  return out;
}

std::string EncodeRecordFrame(const wal::WalRecord& record) {
  std::string frame;
  frame += static_cast<char>(static_cast<uint8_t>(record.type));
  frame += wal::EncodeRecordPayload(record);
  return HexEncode(frame);
}

StatusOr<wal::WalRecord> DecodeRecordFrame(const std::string& hex) {
  FLOCK_ASSIGN_OR_RETURN(std::string frame, HexDecode(hex));
  if (frame.empty()) {
    return Status::ParseError("record frame is empty");
  }
  return wal::DecodeRecordPayload(
      static_cast<wal::WalRecordType>(static_cast<uint8_t>(frame[0])),
      frame.data() + 1, frame.size() - 1);
}

ReplCommand ParseReplCommand(const std::string& args) {
  ReplCommand command;
  std::vector<std::string> words = SplitWhitespace(args);
  if (words.empty()) {
    command.error = "usage: .repl status|bootstrap|fetch <epoch> <lsn> <max>";
    return command;
  }
  if (words[0] == "status" && words.size() == 1) {
    command.kind = ReplCommand::Kind::kStatus;
  } else if (words[0] == "bootstrap" && words.size() == 1) {
    command.kind = ReplCommand::Kind::kBootstrap;
  } else if (words[0] == "fetch" && words.size() == 4) {
    if (ParseU64(words[1], &command.from.epoch) &&
        ParseU64(words[2], &command.from.lsn) &&
        ParseU64(words[3], &command.max_records) &&
        command.max_records > 0) {
      command.kind = ReplCommand::Kind::kFetch;
    } else {
      command.error = "fetch wants numeric <epoch> <lsn> <max>";
    }
  } else {
    command.error = "unknown .repl subcommand '" + words[0] + "'";
  }
  return command;
}

std::string EncodeStatusResponse(const std::string& role,
                                 ReplicationPosition position) {
  return "REPL STATUS " + role + " " + std::to_string(position.epoch) +
         " " + std::to_string(position.lsn) + "\nEND\n";
}

std::string EncodeBootstrapResponse(const BootstrapResult& bootstrap) {
  return "REPL SNAPSHOT " + std::to_string(bootstrap.position.epoch) +
         " " + std::to_string(bootstrap.position.lsn) + "\n" +
         HexEncode(wal::EncodeSnapshot(bootstrap.snapshot)) + "\nEND\n";
}

std::string EncodeFetchResponse(const FetchResult& fetch) {
  std::string out = "REPL RECORDS " + std::to_string(fetch.records.size()) +
                    " " + std::to_string(fetch.next.epoch) + " " +
                    std::to_string(fetch.next.lsn) + " " +
                    (fetch.end_of_log ? "1" : "0") + " " +
                    (fetch.snapshot_required ? "1" : "0") + "\n";
  for (const wal::WalRecord& record : fetch.records) {
    out += EncodeRecordFrame(record);
    out += '\n';
  }
  out += "END\n";
  return out;
}

StatusOr<ReplStatus> ParseStatusResponse(const std::string& text) {
  FLOCK_ASSIGN_OR_RETURN(std::vector<std::string> lines,
                         ResponseLines(text));
  std::vector<std::string> header = SplitWhitespace(lines[0]);
  if (header.size() != 5 || header[0] != "REPL" || header[1] != "STATUS") {
    return Status::ParseError("bad repl status header: " + lines[0]);
  }
  ReplStatus status;
  status.role = header[2];
  if (!ParseU64(header[3], &status.position.epoch) ||
      !ParseU64(header[4], &status.position.lsn)) {
    return Status::ParseError("bad repl status position: " + lines[0]);
  }
  return status;
}

StatusOr<BootstrapResult> ParseBootstrapResponse(const std::string& text) {
  FLOCK_ASSIGN_OR_RETURN(std::vector<std::string> lines,
                         ResponseLines(text));
  std::vector<std::string> header = SplitWhitespace(lines[0]);
  if (header.size() != 4 || header[0] != "REPL" ||
      header[1] != "SNAPSHOT") {
    return Status::ParseError("bad repl snapshot header: " + lines[0]);
  }
  if (lines.size() != 2) {
    return Status::ParseError("repl snapshot wants exactly one payload line");
  }
  BootstrapResult bootstrap;
  if (!ParseU64(header[2], &bootstrap.position.epoch) ||
      !ParseU64(header[3], &bootstrap.position.lsn)) {
    return Status::ParseError("bad repl snapshot position: " + lines[0]);
  }
  FLOCK_ASSIGN_OR_RETURN(std::string encoded, HexDecode(lines[1]));
  FLOCK_ASSIGN_OR_RETURN(bootstrap.snapshot,
                         wal::DecodeSnapshot(encoded));
  bootstrap.bytes = encoded.size();
  return bootstrap;
}

StatusOr<FetchResult> ParseFetchResponse(const std::string& text) {
  FLOCK_ASSIGN_OR_RETURN(std::vector<std::string> lines,
                         ResponseLines(text));
  std::vector<std::string> header = SplitWhitespace(lines[0]);
  if (header.size() != 7 || header[0] != "REPL" ||
      header[1] != "RECORDS") {
    return Status::ParseError("bad repl records header: " + lines[0]);
  }
  uint64_t count = 0;
  FetchResult fetch;
  if (!ParseU64(header[2], &count) ||
      !ParseU64(header[3], &fetch.next.epoch) ||
      !ParseU64(header[4], &fetch.next.lsn) ||
      (header[5] != "0" && header[5] != "1") ||
      (header[6] != "0" && header[6] != "1")) {
    return Status::ParseError("bad repl records header: " + lines[0]);
  }
  fetch.end_of_log = header[5] == "1";
  fetch.snapshot_required = header[6] == "1";
  if (lines.size() - 1 != count) {
    return Status::ParseError("repl records header promises " +
                              std::to_string(count) + " frames, got " +
                              std::to_string(lines.size() - 1));
  }
  fetch.records.reserve(count);
  for (size_t i = 1; i < lines.size(); ++i) {
    FLOCK_ASSIGN_OR_RETURN(wal::WalRecord record,
                           DecodeRecordFrame(lines[i]));
    fetch.records.push_back(std::move(record));
    fetch.bytes += lines[i].size() / 2;
  }
  return fetch;
}

}  // namespace flock::repl
