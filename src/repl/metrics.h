#ifndef FLOCK_REPL_METRICS_H_
#define FLOCK_REPL_METRICS_H_

#include "obs/metrics_registry.h"
#include "repl/applier.h"
#include "repl/coordinator.h"

namespace flock::repl {

/// Registers the repl.* family for a replica onto a (typically the
/// replica server's) metrics registry:
///
///   repl.applied_epoch / repl.applied_lsn   position after last apply
///   repl.durable_epoch / repl.durable_lsn   primary log end, last seen
///   repl.replica_lag_records                durable - applied
///   repl.records_applied, repl.catchup_bytes, repl.bootstraps
///
/// All reads go through the applier's cached positions — a metrics
/// scrape never touches the primary's files or the network.
void RegisterReplicaMetrics(obs::MetricsRegistry* registry,
                            ReplicaApplier* applier);

/// Coordinator-side counters: repl.failovers, repl.replicas,
/// repl.fence_epoch.
void RegisterCoordinatorMetrics(obs::MetricsRegistry* registry,
                                ReplicationCoordinator* coordinator);

}  // namespace flock::repl

#endif  // FLOCK_REPL_METRICS_H_
