#ifndef FLOCK_SERVE_SERVER_H_
#define FLOCK_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <string>

#include "common/cancel.h"

#include "common/status_or.h"
#include "flock/flock_engine.h"
#include "obs/metrics_registry.h"
#include "policy/policy_engine.h"
#include "serve/admission.h"
#include "serve/coalescer.h"
#include "serve/metrics.h"
#include "serve/retry.h"
#include "serve/session.h"

namespace flock::serve {

struct ServerOptions {
  AdmissionOptions admission;
  size_t max_sessions = 1024;
  /// Default per-statement deadline in ms (flock_server
  /// --default-deadline-ms). 0 = no deadline. Sessions can override with
  /// `.deadline <ms>|off|default`; every statement still gets a
  /// cancellable token so `.kill <session>` works regardless.
  double default_deadline_ms = 0.0;
  /// Cross-request micro-batching of single-row PREDICT calls. When
  /// enabled the server owns a MicroBatcher, installs it into the
  /// engine's scoring context for its lifetime, and exports
  /// serve.batch_size / serve.coalesce_* metrics. Scoring results are
  /// identical with or without coalescing; only latency/throughput
  /// change.
  MicroBatchOptions microbatch;
  /// Principal attached to sessions opened without one; "" = the
  /// engine's principal at server construction. Sessions with a
  /// different principal execute via FlockEngine::ExecuteAs (exclusive
  /// lock), default-principal sessions share the read lock.
  std::string default_principal;
  /// Policy engine whose decision counters should appear in the unified
  /// metrics (optional; must outlive the server).
  policy::PolicyEngine* policy = nullptr;
  /// Pre-execution gate checked on every Submit (optional). Replication
  /// wires bounded-staleness admission in here without the serving layer
  /// depending on repl: a replica whose lag exceeds the configured bound
  /// returns Unavailable from the gate, and the request fails fast
  /// instead of serving arbitrarily stale rows.
  std::function<Status()> read_gate;
  /// Statement executor the worker threads delegate to (optional). Like
  /// read_gate, this keeps higher layers out of serve's dependency set:
  /// lifecycle wires shadow double-scoring and canary routing in here.
  /// The interceptor receives the session principal, the submitted SQL,
  /// and `execute` — the server's own engine dispatch — and may call it
  /// any number of times (zero, once, or twice for shadow) with any SQL
  /// before returning the result the client sees.
  std::function<StatusOr<sql::QueryResult>(
      const std::string& principal, const std::string& sql,
      const std::function<StatusOr<sql::QueryResult>(const std::string&)>&
          execute)>
      interceptor;
};

/// The concurrent prediction-serving layer (paper §2/§4.1: scoring lives
/// inside the DBMS precisely so applications can hit it as a service).
/// Wraps one shared, thread-safe FlockEngine with:
///
///   * a SessionManager (per-client identity + counters, capped),
///   * an AdmissionController (bounded queue, worker pool, load
///     shedding, graceful drain),
///   * the SQL plan cache (hit = skip parse/plan/optimize; see
///     sql::PlanCache for the invalidation contract),
///   * a ServerMetrics registry (latency percentiles, shed count, queue
///     depth, cache hit rate) exported as JSON.
///
/// Transports sit on top: examples/flock_server.cc speaks a
/// line-delimited text protocol over TCP, and LoopbackClient (below)
/// calls straight in — tests and the serving bench use the loopback so
/// they measure the serving tier, not the socket stack.
class PredictionServer {
 public:
  explicit PredictionServer(flock::FlockEngine* engine,
                            ServerOptions options = {});
  ~PredictionServer();

  PredictionServer(const PredictionServer&) = delete;
  PredictionServer& operator=(const PredictionServer&) = delete;

  /// Opens a session; Unavailable at the session cap, or once Shutdown
  /// has begun. Empty principal = options.default_principal.
  StatusOr<uint64_t> OpenSession(const std::string& principal = "");
  Status CloseSession(uint64_t session_id);

  /// Admission-controlled asynchronous execution. The future resolves
  /// when a worker finishes the statement — or immediately with
  /// Unavailable (shed) / NotFound (bad session).
  std::future<StatusOr<sql::QueryResult>> Submit(uint64_t session_id,
                                                 std::string sql);

  /// Synchronous convenience wrapper around Submit.
  StatusOr<sql::QueryResult> Execute(uint64_t session_id,
                                     const std::string& sql);

  /// Aborts the statement currently queued or executing on behalf of
  /// `session_id` (the `.kill <session>` wire command): flips the
  /// session's active cancel token, which the engine notices at its next
  /// poll point and surfaces as kCancelled. NotFound for unknown
  /// sessions or when the session has no statement in flight.
  Status KillSession(uint64_t session_id);

  /// Graceful drain: stop admitting new requests and new sessions, wait
  /// for in-flight requests to finish. Idempotent.
  void Shutdown();
  bool accepting() const;

  ServerMetricsSnapshot Snapshot() const;

  /// Unified metrics (every registered subsystem: serve, plan_cache,
  /// slowlog, wal, policy) as JSON — the `.metrics` wire response.
  std::string MetricsJson() const { return registry_.ToJson(); }
  /// Same metrics, Prometheus text exposition (`.metrics prom`).
  std::string MetricsPrometheus() const { return registry_.ToPrometheus(); }
  /// Legacy flat snapshot JSON (kept for tooling that predates the
  /// registry; Snapshot() is the structured form).
  std::string SnapshotJson() const { return Snapshot().ToJson(); }
  /// The slow-query log dump (`.slowlog` wire response).
  std::string SlowLogJson() const {
    return engine_->sql()->slow_log()->ToJson();
  }

  flock::FlockEngine* engine() { return engine_; }
  SessionManager* sessions() { return &sessions_; }
  AdmissionController* admission() { return &admission_; }
  obs::MetricsRegistry* metrics_registry() { return &registry_; }
  /// The micro-batching stage, or nullptr when coalescing is disabled.
  MicroBatcher* microbatcher() { return batcher_.get(); }

 private:
  /// Registers every subsystem's counters with the unified registry
  /// (pull callbacks; called once from the constructor).
  void RegisterMetrics();

  /// Builds the per-request cancel token (session deadline override or
  /// server default) and registers it on the session for `.kill`.
  CancelToken MakeRequestToken(const SessionPtr& session) const;
  /// Folds a finished request's cancellation outcome into the exec.*
  /// counters and the cancel-latency histogram.
  void RecordCancellation(const Status& status, const CancelToken& token);

  flock::FlockEngine* engine_;
  ServerOptions options_;
  std::string default_principal_;
  SessionManager sessions_;
  AdmissionController admission_;
  ServerMetrics metrics_;
  std::atomic<uint64_t> cancelled_total_{0};
  std::atomic<uint64_t> deadline_total_{0};
  /// Time from the stop signal (kill instant / deadline) to the request
  /// actually completing with a cancel status — the responsiveness of
  /// the cooperative polling, exported as exec.cancel_latency_ms.
  LatencyHistogram cancel_latency_;
  obs::MetricsRegistry registry_;
  /// Owned micro-batcher, installed into the engine while the server is
  /// alive (detached in Shutdown, after the admission drain).
  std::unique_ptr<MicroBatcher> batcher_;
  std::atomic<bool> shutdown_{false};
};

/// In-process client: one session on a PredictionServer, synchronous
/// Execute. The differential tests drive 8 of these from 8 threads; the
/// serving bench's closed-loop clients are loopback clients too.
class LoopbackClient {
 public:
  /// `retry` governs Execute's handling of Unavailable results (shed,
  /// draining, staleness-gated). The default policy makes one attempt —
  /// identical to the historical fail-fast behavior.
  explicit LoopbackClient(PredictionServer* server,
                          const std::string& principal = "",
                          RetryPolicy retry = {});
  ~LoopbackClient();

  LoopbackClient(const LoopbackClient&) = delete;
  LoopbackClient& operator=(const LoopbackClient&) = delete;

  /// Session-open outcome; Execute fails fast when not OK.
  const Status& status() const { return open_status_; }
  uint64_t session_id() const { return session_id_; }

  StatusOr<sql::QueryResult> Execute(const std::string& sql);

 private:
  PredictionServer* server_;
  RetryPolicy retry_;
  Status open_status_;
  uint64_t session_id_ = 0;
};

}  // namespace flock::serve

#endif  // FLOCK_SERVE_SERVER_H_
