#ifndef FLOCK_SERVE_METRICS_H_
#define FLOCK_SERVE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace flock::serve {

/// Lock-free latency histogram with geometric buckets (x1.25 per bucket;
/// bucket 0 covers [0, 1.25 µs) and ~95 buckets reach past an hour).
/// Record is a single relaxed fetch_add, so the serving hot path never
/// serializes on metrics; percentiles are computed on demand from the
/// bucket counts, interpolating within the covering bucket, so the error
/// is bounded by one bucket width (±12 %) rather than biased toward the
/// bucket's upper bound.
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = 96;
  static constexpr double kGrowth = 1.25;

  /// Records one sample (relaxed; safe from any thread).
  void Record(double micros);

  uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double mean_ms() const;

  /// Approximate latency percentile in milliseconds; `p` in [0, 1].
  /// Returns 0 when no samples have been recorded.
  double PercentileMs(double p) const;

  void Reset();

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> total_nanos_{0};
};

/// One consistent-enough view of the serving counters, exported as JSON.
/// Composed by PredictionServer::Snapshot from the metrics registry, the
/// admission controller, the session manager and the SQL plan cache.
struct ServerMetricsSnapshot {
  uint64_t requests_ok = 0;
  uint64_t requests_error = 0;
  uint64_t requests_shed = 0;
  uint64_t sessions_open = 0;
  uint64_t sessions_opened_total = 0;
  uint64_t queue_depth = 0;
  uint64_t latency_count = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  double plan_cache_hit_rate = 0.0;

  std::string ToJson() const;
};

/// Per-server request counters + latency histogram. All methods are
/// thread-safe and wait-free (atomic counters only).
class ServerMetrics {
 public:
  void RecordRequest(double latency_ms, bool ok) {
    latency_.Record(latency_ms * 1e3);
    (ok ? requests_ok_ : requests_error_)
        .fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t requests_ok() const {
    return requests_ok_.load(std::memory_order_relaxed);
  }
  uint64_t requests_error() const {
    return requests_error_.load(std::memory_order_relaxed);
  }
  const LatencyHistogram& latency() const { return latency_; }

  void Reset();

 private:
  LatencyHistogram latency_;
  std::atomic<uint64_t> requests_ok_{0};
  std::atomic<uint64_t> requests_error_{0};
};

}  // namespace flock::serve

#endif  // FLOCK_SERVE_METRICS_H_
