#ifndef FLOCK_SERVE_COALESCER_H_
#define FLOCK_SERVE_COALESCER_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status_or.h"
#include "flock/predict_functions.h"
#include "obs/metrics_registry.h"

namespace flock::serve {

/// Knobs for cross-request micro-batching of single-row PREDICT calls.
struct MicroBatchOptions {
  /// Master switch; off = the server never installs the coalescer and
  /// single-row scoring keeps its direct path.
  bool enabled = false;
  /// A forming batch executes as soon as it holds this many rows.
  size_t max_batch = 32;
  /// Bounded coalescing window: the first request of a batch (the
  /// leader) waits at most this long for followers before scoring
  /// whatever has arrived. This is the worst-case added latency.
  double max_wait_ms = 1.0;
  /// When this request is the only scoring call in flight, skip the
  /// window entirely and score immediately — a lone client never pays
  /// the coalescing wait.
  bool bypass_solo = true;
};

/// Exact-count batch-size histogram (sizes 1..kMaxTracked, larger sizes
/// clamp into the last bucket). Record is one relaxed fetch_add; the
/// snapshot computes mean and percentiles over batch sizes for the
/// `serve.batch_size` exposition.
class BatchSizeHistogram {
 public:
  static constexpr size_t kMaxTracked = 64;

  void Record(size_t batch_size);
  obs::HistogramSnapshot Snapshot() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::array<std::atomic<uint64_t>, kMaxTracked + 1> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> total_rows_{0};
};

/// The serving layer's cross-request micro-batching stage.
///
/// Installed into the engine via FlockEngine::SetScoreCoalescer; every
/// concurrent single-row PREDICT call lands in ScoreOne, which groups
/// rows by model entry. The first arrival becomes the batch *leader* and
/// waits (bounded by max_wait_ms, or until max_batch rows gather); it
/// then scores the whole group through one flock::ScoreBatch dense-kernel
/// invocation and hands each follower its score. Followers block on the
/// leader, so no request ever waits longer than the leader's window plus
/// one batch execution — there is no background thread and nothing to
/// join.
///
/// Coalescing is bypassed (scored directly, recorded as a batch of 1)
/// when the batcher is draining, or when the request is the only scoring
/// call in flight (bypass_solo).
class MicroBatcher : public flock::ScoreCoalescer {
 public:
  explicit MicroBatcher(MicroBatchOptions options);
  ~MicroBatcher() override;

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  StatusOr<double> ScoreOne(const flock::ModelEntry& entry,
                            const double* row, size_t width) override;

  /// Wakes every waiting leader so partially-filled batches execute
  /// immediately (graceful drain flushes, it never drops).
  void Flush();

  /// Terminal: future calls bypass coalescing entirely, then Flush().
  /// The server drains admission afterwards, so by the time the batcher
  /// is destroyed no request can be waiting inside it.
  void Drain();

  const MicroBatchOptions& options() const { return options_; }
  const BatchSizeHistogram& batch_sizes() const { return batch_sizes_; }
  uint64_t batches_executed() const {
    return batches_.load(std::memory_order_relaxed);
  }
  uint64_t rows_scored() const {
    return rows_.load(std::memory_order_relaxed);
  }
  /// Rows that actually shared a kernel invocation (batch size >= 2).
  uint64_t rows_coalesced() const {
    return coalesced_rows_.load(std::memory_order_relaxed);
  }
  uint64_t bypassed() const {
    return bypassed_.load(std::memory_order_relaxed);
  }
  /// Mean leader wait over all executed batches, in ms — the
  /// `serve.coalesce_wait_ms` gauge.
  double avg_wait_ms() const;

 private:
  struct Batch {
    const flock::ModelEntry* entry = nullptr;
    size_t width = 0;
    size_t count = 0;
    std::vector<double> rows;  // count * width, row-major
    bool full = false;         // reached max_batch; leader should run now
    bool flush = false;        // Flush() asked the leader to run now
    bool closed = false;       // leader took it; no more joiners
    bool done = false;         // scores/status valid; followers may read
    Status status;
    std::vector<double> scores;
    std::condition_variable cv;
  };

  StatusOr<double> ScoreDirect(const flock::ModelEntry& entry,
                               const double* row, size_t width);

  MicroBatchOptions options_;
  std::mutex mu_;
  std::map<const void*, std::shared_ptr<Batch>> open_;
  std::atomic<size_t> inflight_{0};
  std::atomic<bool> draining_{false};

  BatchSizeHistogram batch_sizes_;
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> rows_{0};
  std::atomic<uint64_t> coalesced_rows_{0};
  std::atomic<uint64_t> bypassed_{0};
  std::atomic<uint64_t> wait_nanos_{0};
};

}  // namespace flock::serve

#endif  // FLOCK_SERVE_COALESCER_H_
