#include "serve/server.h"

#include "common/stopwatch.h"

namespace flock::serve {

PredictionServer::PredictionServer(flock::FlockEngine* engine,
                                   ServerOptions options)
    : engine_(engine),
      options_(options),
      default_principal_(options.default_principal.empty()
                             ? engine->principal()
                             : options.default_principal),
      sessions_(options.max_sessions),
      admission_(options.admission) {
  if (options_.microbatch.enabled) {
    batcher_ = std::make_unique<MicroBatcher>(options_.microbatch);
    engine_->SetScoreCoalescer(batcher_.get());
  }
  RegisterMetrics();
}

void PredictionServer::RegisterMetrics() {
  // serve.* — request counters, sessions, queue, latency.
  registry_.RegisterCounter("serve.requests_ok",
                            [this] { return metrics_.requests_ok(); });
  registry_.RegisterCounter("serve.requests_error",
                            [this] { return metrics_.requests_error(); });
  registry_.RegisterCounter("serve.requests_shed",
                            [this] { return admission_.shed_count(); });
  registry_.RegisterGauge("serve.sessions_open", [this] {
    return static_cast<uint64_t>(sessions_.num_open());
  });
  registry_.RegisterCounter("serve.sessions_opened_total",
                            [this] { return sessions_.total_opened(); });
  registry_.RegisterGauge("serve.queue_depth", [this] {
    return static_cast<uint64_t>(admission_.queue_depth());
  });
  registry_.RegisterHistogram("serve.latency_ms", [this] {
    const LatencyHistogram& hist = metrics_.latency();
    obs::HistogramSnapshot snap;
    snap.count = hist.count();
    snap.mean_ms = hist.mean_ms();
    snap.p50_ms = hist.PercentileMs(0.50);
    snap.p95_ms = hist.PercentileMs(0.95);
    snap.p99_ms = hist.PercentileMs(0.99);
    return snap;
  });

  // exec.* — the cancellation layer: how many statements ended by
  // explicit kill vs deadline expiry (including queue sheds), and how
  // quickly the cooperative polling noticed the stop signal.
  registry_.RegisterCounter("exec.cancelled", [this] {
    return cancelled_total_.load(std::memory_order_relaxed);
  });
  registry_.RegisterCounter("exec.deadline_exceeded", [this] {
    return deadline_total_.load(std::memory_order_relaxed);
  });
  registry_.RegisterCounter("exec.deadline_queue_shed", [this] {
    return admission_.deadline_shed_count();
  });
  registry_.RegisterHistogram("exec.cancel_latency_ms", [this] {
    const LatencyHistogram& hist = cancel_latency_;
    obs::HistogramSnapshot snap;
    snap.count = hist.count();
    snap.mean_ms = hist.mean_ms();
    snap.p50_ms = hist.PercentileMs(0.50);
    snap.p95_ms = hist.PercentileMs(0.95);
    snap.p99_ms = hist.PercentileMs(0.99);
    return snap;
  });

  // serve.batch_size / serve.coalesce_* — the micro-batching stage.
  if (batcher_ != nullptr) {
    MicroBatcher* batcher = batcher_.get();
    registry_.RegisterHistogram("serve.batch_size", [batcher] {
      return batcher->batch_sizes().Snapshot();
    });
    registry_.RegisterGaugeF("serve.coalesce_wait_ms", [batcher] {
      return batcher->avg_wait_ms();
    });
    registry_.RegisterCounter("serve.coalesce_batches", [batcher] {
      return batcher->batches_executed();
    });
    registry_.RegisterCounter("serve.coalesce_rows", [batcher] {
      return batcher->rows_coalesced();
    });
    registry_.RegisterCounter("serve.coalesce_bypass", [batcher] {
      return batcher->bypassed();
    });
  }

  // plan_cache.* — the SQL engine's prepared-statement cache.
  sql::SqlEngine* sql_engine = engine_->sql();
  registry_.RegisterCounter("plan_cache.hits", [sql_engine] {
    return sql_engine->plan_cache()->stats().hits;
  });
  registry_.RegisterCounter("plan_cache.misses", [sql_engine] {
    return sql_engine->plan_cache()->stats().misses;
  });
  registry_.RegisterCounter("plan_cache.insertions", [sql_engine] {
    return sql_engine->plan_cache()->stats().insertions;
  });
  registry_.RegisterCounter("plan_cache.invalidations", [sql_engine] {
    return sql_engine->plan_cache()->stats().invalidations;
  });
  registry_.RegisterGaugeF("plan_cache.hit_rate", [sql_engine] {
    return sql_engine->plan_cache()->stats().hit_rate();
  });
  registry_.RegisterGauge("plan_cache.entries", [sql_engine] {
    return static_cast<uint64_t>(sql_engine->plan_cache()->size());
  });

  // storage.* — segmented-scan counters: segments read vs skipped by
  // zone-map pruning, engine-lifetime totals across all table scans.
  registry_.RegisterCounter("storage.segments_scanned", [sql_engine] {
    return sql_engine->segments_scanned_total();
  });
  registry_.RegisterCounter("storage.segments_pruned", [sql_engine] {
    return sql_engine->segments_pruned_total();
  });

  // slowlog.* — the slow-query ring buffer.
  registry_.RegisterCounter("slowlog.total_recorded", [sql_engine] {
    return sql_engine->slow_log()->total_recorded();
  });
  registry_.RegisterGauge("slowlog.entries", [sql_engine] {
    return static_cast<uint64_t>(sql_engine->slow_log()->size());
  });
  registry_.RegisterGaugeF("slowlog.threshold_ms", [sql_engine] {
    return sql_engine->slow_log()->threshold_ms();
  });

  // wal.* — durability counters. Registered unconditionally and read
  // through durable() so a server constructed before Open() still
  // exposes them (as zeros until the engine turns durable).
  flock::FlockEngine* engine = engine_;
  registry_.RegisterCounter("wal.records_appended", [engine] {
    return engine->durable() ? engine->durability()->records_logged() : 0;
  });
  registry_.RegisterCounter("wal.syncs", [engine] {
    return engine->durable() ? engine->durability()->syncs() : 0;
  });
  registry_.RegisterCounter("wal.bytes_written", [engine] {
    return engine->durable() ? engine->durability()->bytes_written() : 0;
  });
  registry_.RegisterGauge("wal.epoch", [engine] {
    return engine->durable() ? engine->durability()->epoch() : 0;
  });

  // policy.* — decision counters, when a policy engine is attached.
  if (options_.policy != nullptr) {
    policy::PolicyEngine* policy = options_.policy;
    registry_.RegisterCounter("policy.decisions", [policy] {
      return policy->decisions_made();
    });
    registry_.RegisterCounter("policy.rejections",
                              [policy] { return policy->rejections(); });
  }
}

PredictionServer::~PredictionServer() { Shutdown(); }

StatusOr<uint64_t> PredictionServer::OpenSession(
    const std::string& principal) {
  if (!accepting()) {
    return Status::Unavailable("server is shutting down");
  }
  FLOCK_ASSIGN_OR_RETURN(
      SessionPtr session,
      sessions_.Open(principal.empty() ? default_principal_ : principal));
  return session->id();
}

Status PredictionServer::CloseSession(uint64_t session_id) {
  return sessions_.Close(session_id);
}

std::future<StatusOr<sql::QueryResult>> PredictionServer::Submit(
    uint64_t session_id, std::string sql) {
  auto promise =
      std::make_shared<std::promise<StatusOr<sql::QueryResult>>>();
  std::future<StatusOr<sql::QueryResult>> future = promise->get_future();

  auto session_or = sessions_.Get(session_id);
  if (!session_or.ok()) {
    promise->set_value(session_or.status());
    return future;
  }
  SessionPtr session = std::move(session_or).value();

  if (options_.read_gate) {
    Status gated = options_.read_gate();
    if (!gated.ok()) {
      // Gated before admission: no worker slot is consumed and the
      // client sees the gate's code (e.g. Unavailable on a stale
      // replica) immediately.
      promise->set_value(std::move(gated));
      return future;
    }
  }

  sql::ExecOptions exec_opts;
  exec_opts.trace = session->trace();
  // The request token is created before admission and registered on the
  // session immediately, so `.kill <session>` reaches a statement that
  // is still waiting in the queue, not just one a worker has started.
  CancelToken token = MakeRequestToken(session);
  exec_opts.cancel = token;
  session->SetActiveCancel(token);
  Status admitted = admission_.Admit(
      [this, session, sql = std::move(sql), exec_opts, promise,
       token]() mutable {
        Stopwatch timer;
        // Default-principal traffic shares the engine's read lock;
        // other principals serialize through ExecuteAs (see the
        // FlockEngine locking contract).
        auto execute =
            [this, &session,
             &exec_opts](const std::string& s) -> StatusOr<sql::QueryResult> {
          return session->principal() == default_principal_
                     ? engine_->Execute(s, exec_opts)
                     : engine_->ExecuteAs(s, session->principal(),
                                          exec_opts);
        };
        StatusOr<sql::QueryResult> result =
            options_.interceptor
                ? options_.interceptor(session->principal(), sql, execute)
                : execute(sql);
        metrics_.RecordRequest(timer.ElapsedMillis(), result.ok());
        session->RecordRequest(result.ok());
        RecordCancellation(result.status(), token);
        session->ClearActiveCancel(token);
        promise->set_value(std::move(result));
      },
      token,
      // Queued past its deadline (or killed while waiting): the worker
      // sheds it without parsing a byte of SQL.
      [this, session, promise, token](Status fired) {
        metrics_.RecordRequest(0.0, /*ok=*/false);
        session->RecordRequest(false);
        RecordCancellation(fired, token);
        session->ClearActiveCancel(token);
        promise->set_value(std::move(fired));
      });
  if (!admitted.ok()) {
    RecordCancellation(admitted, token);
    session->ClearActiveCancel(token);
    promise->set_value(admitted);  // fast shed, not queued
  }
  return future;
}

CancelToken PredictionServer::MakeRequestToken(
    const SessionPtr& session) const {
  double deadline_ms = session->deadline_ms();
  if (deadline_ms < 0.0) deadline_ms = options_.default_deadline_ms;
  return deadline_ms > 0.0 ? CancelToken::WithDeadline(deadline_ms)
                           : CancelToken::Cancellable();
}

void PredictionServer::RecordCancellation(const Status& status,
                                          const CancelToken& token) {
  if (status.code() == StatusCode::kCancelled) {
    cancelled_total_.fetch_add(1, std::memory_order_relaxed);
  } else if (status.code() == StatusCode::kDeadlineExceeded) {
    deadline_total_.fetch_add(1, std::memory_order_relaxed);
  } else {
    return;
  }
  // Record takes micros; CancelLatencyMs is elapsed time since the stop
  // signal fired, i.e. how long the polling took to notice.
  cancel_latency_.Record(token.CancelLatencyMs() * 1000.0);
}

Status PredictionServer::KillSession(uint64_t session_id) {
  FLOCK_ASSIGN_OR_RETURN(SessionPtr session, sessions_.Get(session_id));
  CancelToken token = session->active_cancel();
  if (!token.valid()) {
    return Status::NotFound("session " + std::to_string(session_id) +
                            " has no statement in flight");
  }
  token.Cancel();
  return Status::OK();
}

StatusOr<sql::QueryResult> PredictionServer::Execute(
    uint64_t session_id, const std::string& sql) {
  return Submit(session_id, sql).get();
}

void PredictionServer::Shutdown() {
  bool expected = false;
  const bool first = shutdown_.compare_exchange_strong(
      expected, true, std::memory_order_acq_rel);
  // Flush the micro-batcher first: waiting leaders wake and score their
  // partial batches immediately, so the admission drain below never
  // waits out a coalescing window (and no queued row is dropped).
  if (batcher_ != nullptr) batcher_->Drain();
  admission_.Drain();
  // With no request in flight the engine can safely forget the
  // coalescer before the server (its owner) goes away.
  if (first && batcher_ != nullptr) engine_->SetScoreCoalescer(nullptr);
  // Graceful drain doubles as a durability barrier: once no request is
  // in flight, fold the WAL tail into a fresh snapshot so the next
  // Open() replays nothing. Only the first Shutdown (the destructor
  // calls it again) checkpoints, and a wedged log is not fatal here —
  // recovery replays the WAL instead.
  if (first && engine_ != nullptr && engine_->durable()) {
    (void)engine_->Checkpoint();
  }
}

bool PredictionServer::accepting() const {
  return !shutdown_.load(std::memory_order_acquire) &&
         !admission_.draining();
}

ServerMetricsSnapshot PredictionServer::Snapshot() const {
  ServerMetricsSnapshot snap;
  snap.requests_ok = metrics_.requests_ok();
  snap.requests_error = metrics_.requests_error();
  snap.requests_shed = admission_.shed_count();
  snap.sessions_open = sessions_.num_open();
  snap.sessions_opened_total = sessions_.total_opened();
  snap.queue_depth = admission_.queue_depth();
  const LatencyHistogram& hist = metrics_.latency();
  snap.latency_count = hist.count();
  snap.mean_ms = hist.mean_ms();
  snap.p50_ms = hist.PercentileMs(0.50);
  snap.p95_ms = hist.PercentileMs(0.95);
  snap.p99_ms = hist.PercentileMs(0.99);
  sql::PlanCacheStats cache = engine_->sql()->plan_cache()->stats();
  snap.plan_cache_hits = cache.hits;
  snap.plan_cache_misses = cache.misses;
  snap.plan_cache_hit_rate = cache.hit_rate();
  return snap;
}

LoopbackClient::LoopbackClient(PredictionServer* server,
                               const std::string& principal,
                               RetryPolicy retry)
    : server_(server), retry_(retry) {
  auto id_or = server_->OpenSession(principal);
  if (id_or.ok()) {
    session_id_ = *id_or;
  } else {
    open_status_ = id_or.status();
  }
}

LoopbackClient::~LoopbackClient() {
  if (open_status_.ok()) {
    (void)server_->CloseSession(session_id_);
  }
}

StatusOr<sql::QueryResult> LoopbackClient::Execute(const std::string& sql) {
  FLOCK_RETURN_NOT_OK(open_status_);
  StatusOr<sql::QueryResult> result =
      Status::Unavailable("loopback execute never ran");
  Status last = RetryUnavailable(retry_, [&]() -> Status {
    result = server_->Execute(session_id_, sql);
    return result.status();
  });
  if (!last.ok()) return last;
  return result;
}

}  // namespace flock::serve
