#ifndef FLOCK_SERVE_RETRY_H_
#define FLOCK_SERVE_RETRY_H_

#include <functional>

#include "common/status.h"

namespace flock::serve {

/// Bounded retry with exponential backoff for transiently-failing calls.
/// Only Status::Unavailable is retried — it is the one code the serving
/// stack uses for "try again later" (load shed, draining, a log header
/// still being written); every other error is returned immediately.
///
/// Replica catch-up leans on this: a publisher mid-checkpoint or a
/// primary briefly at its admission limit shows up as Unavailable, and
/// the applier's next attempt lands after the backoff instead of
/// hot-spinning.
struct RetryPolicy {
  /// Total attempts, including the first. 1 = no retry (the default —
  /// existing fast-shed behavior is unchanged unless a caller opts in).
  int max_attempts = 1;
  /// Backoff before attempt N+1 is base << N, capped at `max_backoff_ms`.
  int base_backoff_ms = 5;
  int max_backoff_ms = 200;
  /// Fraction of each backoff randomized (0.2 = +/-20%), so a fleet of
  /// retrying replicas does not stampede the primary in lockstep.
  double jitter = 0.2;
};

/// Runs `op` until it succeeds, fails with a non-Unavailable code, or
/// `policy.max_attempts` is exhausted; returns the last status. Sleeps
/// the jittered backoff between attempts.
Status RetryUnavailable(const RetryPolicy& policy,
                        const std::function<Status()>& op);

}  // namespace flock::serve

#endif  // FLOCK_SERVE_RETRY_H_
