#ifndef FLOCK_SERVE_RETRY_H_
#define FLOCK_SERVE_RETRY_H_

#include <cstdint>
#include <functional>
#include <random>

#include "common/cancel.h"
#include "common/status.h"

namespace flock::serve {

/// Bounded retry with exponential backoff for transiently-failing calls.
/// Only Status::Unavailable is retried — it is the one code the serving
/// stack uses for "try again later" (load shed, draining, a log header
/// still being written); every other error is returned immediately.
///
/// Replica catch-up leans on this: a publisher mid-checkpoint or a
/// primary briefly at its admission limit shows up as Unavailable, and
/// the applier's next attempt lands after the backoff instead of
/// hot-spinning.
struct RetryPolicy {
  /// Total attempts, including the first. 1 = no retry (the default —
  /// existing fast-shed behavior is unchanged unless a caller opts in).
  int max_attempts = 1;
  /// Backoff before attempt N+1 is base << N, capped at `max_backoff_ms`.
  int base_backoff_ms = 5;
  int max_backoff_ms = 200;
  /// Fraction of each backoff randomized (0.2 = +/-20%), so a fleet of
  /// retrying replicas does not stampede the primary in lockstep.
  double jitter = 0.2;
  /// Jitter RNG seed. 0 (the default) seeds from std::random_device —
  /// the production behavior; any other value makes every backoff
  /// sequence of this policy reproducible, so tests can assert exact
  /// retry timing.
  uint64_t jitter_seed = 0;
};

/// The backoff before attempt `attempt`+2 (attempt is 0-based over the
/// sleeps): base << attempt capped at max, with the policy's jitter drawn
/// from `rng`. Exposed so tests can replay a seeded sequence.
int JitteredBackoffMs(const RetryPolicy& policy, int attempt,
                      std::mt19937_64& rng);

/// Runs `op` until it succeeds, fails with a non-Unavailable code, or
/// `policy.max_attempts` is exhausted; returns the last status. Sleeps
/// the jittered backoff between attempts; the jitter RNG is seeded per
/// call from `policy.jitter_seed`.
Status RetryUnavailable(const RetryPolicy& policy,
                        const std::function<Status()>& op);

/// Cancel-aware variant: the token is checked before every attempt and
/// caps each backoff sleep at the remaining deadline, so a retry loop
/// never outlives the request driving it. A fired token returns
/// kCancelled/kDeadlineExceeded — codes RetryUnavailable never retries
/// by construction (only kUnavailable is retryable; a spent budget or an
/// explicit kill cannot be "tried again").
Status RetryUnavailable(const RetryPolicy& policy, const CancelToken& cancel,
                        const std::function<Status()>& op);

}  // namespace flock::serve

#endif  // FLOCK_SERVE_RETRY_H_
