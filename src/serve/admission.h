#ifndef FLOCK_SERVE_ADMISSION_H_
#define FLOCK_SERVE_ADMISSION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <shared_mutex>

#include "common/cancel.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace flock::serve {

struct AdmissionOptions {
  /// Concurrent query executions (the serving worker pool, distinct from
  /// the engine's intra-query morsel pool).
  size_t num_workers = 4;
  /// Requests allowed to wait for a worker; beyond this, Admit sheds.
  size_t max_queue_depth = 64;
};

/// Admission control for the prediction server: a bounded request queue
/// in front of a fixed worker pool. Overload is answered with a fast
/// `Unavailable` (load shedding) instead of unbounded queueing, so
/// latency for admitted requests stays bounded — the standard serving-
/// tier defense the paper's "enterprise-grade" bar implies.
///
/// Built directly on common::ThreadPool's bounded TrySubmit mode; this
/// class adds the shed counter and the drain state machine.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options)
      : options_(options),
        pool_(options.num_workers == 0 ? 1 : options.num_workers,
              options.max_queue_depth) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Enqueues `work` for a worker, or sheds: Unavailable when the queue
  /// is full or the controller is draining. Never blocks.
  Status Admit(std::function<void()> work);

  /// Deadline-aware admission. Like Admit, but the request carries its
  /// cancel token: if the token has fired by the time a worker dequeues
  /// it (queued past its deadline, or killed while waiting), the worker
  /// invokes `expired` with the fired status instead of ever starting
  /// `work` — a statement the client has given up on costs parse-nothing.
  /// A token that has already fired at admit time is shed synchronously
  /// (the fired status is returned and nothing is enqueued).
  Status Admit(std::function<void()> work, CancelToken token,
               std::function<void(Status)> expired);

  /// Graceful shutdown: stop admitting, then wait until every admitted
  /// request has finished. Nothing is admitted once Drain has begun —
  /// the drain flag flips under the admission gate held exclusively, so
  /// no check-then-enqueue can straddle it. Idempotent; safe from any
  /// thread.
  void Drain();

  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }
  size_t queue_depth() const { return pool_.queue_depth(); }
  uint64_t shed_count() const {
    return shed_.load(std::memory_order_relaxed);
  }
  /// Requests shed because their deadline passed (or they were killed)
  /// while waiting in the queue — distinct from queue-full sheds.
  uint64_t deadline_shed_count() const {
    return deadline_shed_.load(std::memory_order_relaxed);
  }
  size_t num_workers() const { return pool_.num_threads(); }
  const AdmissionOptions& options() const { return options_; }

 private:
  AdmissionOptions options_;
  /// Admission gate: Admit holds it shared across its draining-check +
  /// enqueue; Drain takes it exclusively to flip `draining_`, which
  /// fences out any concurrently admitting thread before WaitIdle runs.
  std::shared_mutex drain_mu_;
  std::atomic<bool> draining_{false};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> deadline_shed_{0};
  ThreadPool pool_;
};

}  // namespace flock::serve

#endif  // FLOCK_SERVE_ADMISSION_H_
