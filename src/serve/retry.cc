#include "serve/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace flock::serve {

int JitteredBackoffMs(const RetryPolicy& policy, int attempt,
                      std::mt19937_64& rng) {
  // base << attempt, saturating at the cap (shift guarded against
  // overflow for pathological attempt counts).
  long long backoff = policy.base_backoff_ms;
  for (int i = 0; i < attempt && backoff < policy.max_backoff_ms; ++i) {
    backoff *= 2;
  }
  backoff = std::min<long long>(backoff, policy.max_backoff_ms);
  if (policy.jitter > 0.0 && backoff > 0) {
    std::uniform_real_distribution<double> dist(-policy.jitter,
                                                policy.jitter);
    backoff += static_cast<long long>(backoff * dist(rng));
  }
  return static_cast<int>(std::max<long long>(backoff, 0));
}

Status RetryUnavailable(const RetryPolicy& policy,
                        const std::function<Status()>& op) {
  return RetryUnavailable(policy, CancelToken(), op);
}

Status RetryUnavailable(const RetryPolicy& policy, const CancelToken& cancel,
                        const std::function<Status()>& op) {
  const int attempts = std::max(policy.max_attempts, 1);
  std::mt19937_64 rng{policy.jitter_seed != 0
                          ? policy.jitter_seed
                          : std::random_device{}()};
  Status last = Status::OK();
  for (int attempt = 0; attempt < attempts; ++attempt) {
    FLOCK_RETURN_NOT_OK(cancel.Check("retry.attempt"));
    if (attempt > 0) {
      double backoff_ms = JitteredBackoffMs(policy, attempt - 1, rng);
      // Never sleep past the request's deadline: cap the backoff at the
      // remaining budget, then re-check above on the next iteration.
      backoff_ms = std::min(backoff_ms, std::max(cancel.RemainingMs(), 0.0));
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
    }
    last = op();
    if (last.code() != StatusCode::kUnavailable) return last;
  }
  return last;
}

}  // namespace flock::serve
