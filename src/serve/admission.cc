#include "serve/admission.h"

namespace flock::serve {

Status AdmissionController::Admit(std::function<void()> work) {
  // The draining check and the enqueue must be atomic with respect to
  // Drain's flag flip: a thread that passed the check just before the
  // flip could otherwise enqueue concurrently with (or after) WaitIdle,
  // and Drain would return with a request still queued. Admitters share
  // the gate; Drain's exclusive acquisition waits out every in-progress
  // check+enqueue and bars all later ones.
  std::shared_lock<std::shared_mutex> gate(drain_mu_);
  if (draining()) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("server is draining");
  }
  if (!pool_.TrySubmit(std::move(work))) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable(
        "request queue full (" +
        std::to_string(options_.max_queue_depth) + " waiting)");
  }
  return Status::OK();
}

Status AdmissionController::Admit(std::function<void()> work,
                                  CancelToken token,
                                  std::function<void(Status)> expired) {
  // Already dead at admission (deadline spent upstream, or the session
  // was killed between submissions): shed synchronously, no queue slot.
  Status fired = token.Check("admission.admit");
  if (!fired.ok()) {
    deadline_shed_.fetch_add(1, std::memory_order_relaxed);
    return fired;
  }
  return Admit([this, work = std::move(work), token = std::move(token),
                expired = std::move(expired)] {
    // Dequeue-time check: the request waited in the queue; if its budget
    // ran out there, the worker reports the expiry without starting the
    // statement.
    Status queued_fired = token.Check("admission.queue");
    if (!queued_fired.ok()) {
      deadline_shed_.fetch_add(1, std::memory_order_relaxed);
      expired(std::move(queued_fired));
      return;
    }
    work();
  });
}

void AdmissionController::Drain() {
  {
    std::unique_lock<std::shared_mutex> gate(drain_mu_);
    draining_.store(true, std::memory_order_release);
  }
  // Everything admitted happened-before the exclusive acquisition above,
  // so WaitIdle observes the complete set of queued work.
  pool_.WaitIdle();
}

}  // namespace flock::serve
