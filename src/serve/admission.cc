#include "serve/admission.h"

namespace flock::serve {

Status AdmissionController::Admit(std::function<void()> work) {
  if (draining()) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("server is draining");
  }
  if (!pool_.TrySubmit(std::move(work))) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable(
        "request queue full (" +
        std::to_string(options_.max_queue_depth) + " waiting)");
  }
  return Status::OK();
}

void AdmissionController::Drain() {
  draining_.store(true, std::memory_order_release);
  pool_.WaitIdle();
}

}  // namespace flock::serve
