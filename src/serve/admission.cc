#include "serve/admission.h"

namespace flock::serve {

Status AdmissionController::Admit(std::function<void()> work) {
  // The draining check and the enqueue must be atomic with respect to
  // Drain's flag flip: a thread that passed the check just before the
  // flip could otherwise enqueue concurrently with (or after) WaitIdle,
  // and Drain would return with a request still queued. Admitters share
  // the gate; Drain's exclusive acquisition waits out every in-progress
  // check+enqueue and bars all later ones.
  std::shared_lock<std::shared_mutex> gate(drain_mu_);
  if (draining()) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("server is draining");
  }
  if (!pool_.TrySubmit(std::move(work))) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable(
        "request queue full (" +
        std::to_string(options_.max_queue_depth) + " waiting)");
  }
  return Status::OK();
}

void AdmissionController::Drain() {
  {
    std::unique_lock<std::shared_mutex> gate(drain_mu_);
    draining_.store(true, std::memory_order_release);
  }
  // Everything admitted happened-before the exclusive acquisition above,
  // so WaitIdle observes the complete set of queued work.
  pool_.WaitIdle();
}

}  // namespace flock::serve
