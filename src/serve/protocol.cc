#include "serve/protocol.h"

#include "common/string_util.h"
#include "obs/trace.h"

namespace flock::serve {

Request ParseRequestLine(const std::string& line) {
  Request request;
  std::string trimmed = Trim(line);
  if (trimmed.empty()) return request;  // kEmpty
  if (trimmed[0] == '.') {
    // Split "<command> <argument>" — commands are one word, the rest
    // (if any) is the argument (".trace on", ".slowlog 25").
    std::string command = trimmed;
    std::string argument;
    size_t space = trimmed.find(' ');
    if (space != std::string::npos) {
      command = trimmed.substr(0, space);
      argument = Trim(trimmed.substr(space + 1));
    }
    if (command == ".metrics") {
      request.kind = Request::Kind::kMetrics;
      request.text = std::move(argument);
    } else if (command == ".trace") {
      request.kind = Request::Kind::kTrace;
      request.text = std::move(argument);
    } else if (command == ".slowlog") {
      request.kind = Request::Kind::kSlowLog;
      request.text = std::move(argument);
    } else if (command == ".session") {
      request.kind = Request::Kind::kSession;
    } else if (command == ".kill") {
      request.kind = Request::Kind::kKill;
      request.text = std::move(argument);
    } else if (command == ".deadline") {
      request.kind = Request::Kind::kDeadline;
      request.text = std::move(argument);
    } else if (command == ".repl") {
      request.kind = Request::Kind::kRepl;
      request.text = std::move(argument);
    } else if (command == ".rollout") {
      request.kind = Request::Kind::kRollout;
      request.text = std::move(argument);
    } else if (command == ".quit" || command == ".exit") {
      request.kind = Request::Kind::kQuit;
    }
    return request;  // unknown '.' command stays kEmpty
  }
  request.kind = Request::Kind::kQuery;
  request.text = std::move(trimmed);
  return request;
}

std::string EscapeField(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

std::string EncodeError(const Status& status) {
  std::string msg = status.message();
  for (char& c : msg) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return std::string("ERR ") + StatusCodeName(status.code()) + " " + msg +
         "\n";
}

std::string EncodeResponse(const StatusOr<sql::QueryResult>& result) {
  if (!result.ok()) return EncodeError(result.status());
  const sql::QueryResult& qr = *result;
  const storage::RecordBatch& batch = qr.batch;
  std::string out = "OK " + std::to_string(batch.num_rows()) + " " +
                    std::to_string(batch.num_columns());
  if (batch.num_columns() == 0) {
    out += " affected=" + std::to_string(qr.rows_affected);
  }
  out += "\n";
  if (batch.num_columns() > 0) {
    for (size_t c = 0; c < batch.num_columns(); ++c) {
      if (c > 0) out += '\t';
      out += EscapeField(batch.schema().column(c).name);
    }
    out += '\n';
    for (size_t r = 0; r < batch.num_rows(); ++r) {
      std::vector<storage::Value> row = batch.GetRow(r);
      for (size_t c = 0; c < row.size(); ++c) {
        if (c > 0) out += '\t';
        out += EscapeField(row[c].ToString());
      }
      out += '\n';
    }
  }
  if (!qr.trace.empty()) {
    // Tracing section: announced with its line count so clients can
    // skip it without understanding span trees.
    std::string rendered = obs::RenderSpanTree(qr.trace);
    size_t lines = 0;
    for (char c : rendered) lines += c == '\n';
    out += "TRACE " + std::to_string(lines) + "\n" + rendered;
  }
  out += "END\n";
  return out;
}

}  // namespace flock::serve
