#include "serve/protocol.h"

#include "common/string_util.h"

namespace flock::serve {

Request ParseRequestLine(const std::string& line) {
  Request request;
  std::string trimmed = Trim(line);
  if (trimmed.empty()) return request;  // kEmpty
  if (trimmed[0] == '.') {
    if (trimmed == ".metrics") {
      request.kind = Request::Kind::kMetrics;
    } else if (trimmed == ".session") {
      request.kind = Request::Kind::kSession;
    } else if (trimmed == ".quit" || trimmed == ".exit") {
      request.kind = Request::Kind::kQuit;
    }
    return request;  // unknown '.' command stays kEmpty
  }
  request.kind = Request::Kind::kQuery;
  request.text = std::move(trimmed);
  return request;
}

std::string EscapeField(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

std::string EncodeError(const Status& status) {
  std::string msg = status.message();
  for (char& c : msg) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return std::string("ERR ") + StatusCodeName(status.code()) + " " + msg +
         "\n";
}

std::string EncodeResponse(const StatusOr<sql::QueryResult>& result) {
  if (!result.ok()) return EncodeError(result.status());
  const sql::QueryResult& qr = *result;
  const storage::RecordBatch& batch = qr.batch;
  std::string out = "OK " + std::to_string(batch.num_rows()) + " " +
                    std::to_string(batch.num_columns());
  if (batch.num_columns() == 0) {
    out += " affected=" + std::to_string(qr.rows_affected);
  }
  out += "\n";
  if (batch.num_columns() > 0) {
    for (size_t c = 0; c < batch.num_columns(); ++c) {
      if (c > 0) out += '\t';
      out += EscapeField(batch.schema().column(c).name);
    }
    out += '\n';
    for (size_t r = 0; r < batch.num_rows(); ++r) {
      std::vector<storage::Value> row = batch.GetRow(r);
      for (size_t c = 0; c < row.size(); ++c) {
        if (c > 0) out += '\t';
        out += EscapeField(row[c].ToString());
      }
      out += '\n';
    }
  }
  out += "END\n";
  return out;
}

}  // namespace flock::serve
