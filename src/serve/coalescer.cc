#include "serve/coalescer.h"

#include <algorithm>
#include <chrono>

#include "common/cancel.h"
#include "common/stopwatch.h"
#include "flock/scoring.h"
#include "ml/matrix.h"

namespace flock::serve {

void BatchSizeHistogram::Record(size_t batch_size) {
  if (batch_size == 0) return;
  const size_t bucket = std::min(batch_size, kMaxTracked);
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_rows_.fetch_add(batch_size, std::memory_order_relaxed);
}

obs::HistogramSnapshot BatchSizeHistogram::Snapshot() const {
  obs::HistogramSnapshot snap;
  uint64_t counts[kMaxTracked + 1];
  uint64_t total = 0;
  for (size_t i = 1; i <= kMaxTracked; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  snap.count = total;
  if (total == 0) return snap;
  snap.mean_ms = static_cast<double>(
                     total_rows_.load(std::memory_order_relaxed)) /
                 static_cast<double>(total);
  auto percentile = [&](double p) {
    const uint64_t rank = static_cast<uint64_t>(p * (total - 1)) + 1;
    uint64_t seen = 0;
    for (size_t i = 1; i <= kMaxTracked; ++i) {
      seen += counts[i];
      if (seen >= rank) return static_cast<double>(i);
    }
    return static_cast<double>(kMaxTracked);
  };
  snap.p50_ms = percentile(0.50);
  snap.p95_ms = percentile(0.95);
  snap.p99_ms = percentile(0.99);
  return snap;
}

MicroBatcher::MicroBatcher(MicroBatchOptions options)
    : options_(options) {
  if (options_.max_batch == 0) options_.max_batch = 1;
}

MicroBatcher::~MicroBatcher() { Drain(); }

double MicroBatcher::avg_wait_ms() const {
  const uint64_t batches = batches_.load(std::memory_order_relaxed);
  if (batches == 0) return 0.0;
  return static_cast<double>(wait_nanos_.load(std::memory_order_relaxed)) /
         1e6 / static_cast<double>(batches);
}

StatusOr<double> MicroBatcher::ScoreDirect(const flock::ModelEntry& entry,
                                           const double* row,
                                           size_t width) {
  ml::Matrix m(1, width);
  std::copy(row, row + width, m.row(0));
  FLOCK_ASSIGN_OR_RETURN(std::vector<double> scores,
                         flock::ScoreBatch(entry, m));
  return scores[0];
}

StatusOr<double> MicroBatcher::ScoreOne(const flock::ModelEntry& entry,
                                        const double* row, size_t width) {
  struct InFlightGuard {
    std::atomic<size_t>* counter;
    ~InFlightGuard() { counter->fetch_sub(1, std::memory_order_acq_rel); }
  };
  const size_t inflight =
      inflight_.fetch_add(1, std::memory_order_acq_rel) + 1;
  InFlightGuard guard{&inflight_};

  // The request's cancel token rides the executor's thread-local scope
  // (ScoreOne is reached through expression evaluation, which has no
  // token parameter path). A request that is already dead must not
  // contribute a row to anyone's batch.
  const CancelToken& cancel = CancelToken::Current();
  FLOCK_RETURN_NOT_OK(cancel.Check("microbatch.enter"));

  if (!options_.enabled || draining_.load(std::memory_order_acquire) ||
      options_.max_batch <= 1 ||
      (options_.bypass_solo && inflight == 1)) {
    bypassed_.fetch_add(1, std::memory_order_relaxed);
    batch_sizes_.Record(1);
    rows_.fetch_add(1, std::memory_order_relaxed);
    return ScoreDirect(entry, row, width);
  }

  std::shared_ptr<Batch> batch;
  size_t index = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    std::shared_ptr<Batch>& slot = open_[&entry];
    if (slot == nullptr || slot->closed ||
        slot->count >= options_.max_batch || slot->width != width) {
      slot = std::make_shared<Batch>();
      slot->entry = &entry;
      slot->width = width;
      slot->rows.reserve(width * options_.max_batch);
    }
    batch = slot;
    index = batch->count++;
    batch->rows.insert(batch->rows.end(), row, row + width);

    if (index != 0) {
      // Follower: maybe wake the leader early, then wait for scores.
      // The wait is deadline-aware and re-polls the token periodically,
      // so a waiter whose deadline expires (or whose session is killed)
      // leaves with kDeadlineExceeded/kCancelled instead of blocking on
      // the batch — its row stays behind and the leader scores it
      // harmlessly (the batch is shared_ptr-owned, so nothing dangles).
      if (batch->count >= options_.max_batch) {
        batch->full = true;
        batch->cv.notify_all();
      }
      while (!batch->done) {
        FLOCK_RETURN_NOT_OK(cancel.Check("microbatch.wait"));
        // Cap the sleep so an explicit kill (which cannot wake the cv)
        // is noticed within one poll interval even with no deadline set.
        const double wait_ms = std::min(cancel.RemainingMs(), 5.0);
        batch->cv.wait_for(
            lock, std::chrono::duration<double, std::milli>(wait_ms));
      }
      if (!batch->status.ok()) return batch->status;
      return batch->scores[index];
    }

    // Leader: bounded coalescing window, clamped to the leader's own
    // remaining deadline so an almost-expired request never donates its
    // last milliseconds to the coalescing window.
    Stopwatch window;
    const double window_ms =
        std::min(options_.max_wait_ms, cancel.RemainingMs());
    batch->cv.wait_for(
        lock, std::chrono::duration<double, std::milli>(window_ms),
        [&] {
          return batch->full || batch->flush ||
                 draining_.load(std::memory_order_relaxed);
        });
    wait_nanos_.fetch_add(
        static_cast<uint64_t>(window.ElapsedMicros() * 1e3),
        std::memory_order_relaxed);
    batch->closed = true;
    auto it = open_.find(&entry);
    if (it != open_.end() && it->second == batch) open_.erase(it);
  }

  // Leader, outside the lock: one shared kernel invocation for the whole
  // group. `batch` is closed, so count/rows are stable.
  ml::Matrix m(batch->count, width);
  m.data() = std::move(batch->rows);
  StatusOr<std::vector<double>> scores = std::vector<double>();
  {
    // Shield the shared invocation from the leader's own token: other
    // sessions' followers depend on these scores, and the work is
    // bounded by max_batch rows — so it runs to completion even if the
    // leader was killed mid-window (the leader reports its own cancel
    // after handing out the scores).
    CancelScope shield{CancelToken()};
    scores = flock::ScoreBatch(entry, m);
  }

  batches_.fetch_add(1, std::memory_order_relaxed);
  rows_.fetch_add(batch->count, std::memory_order_relaxed);
  if (batch->count >= 2) {
    coalesced_rows_.fetch_add(batch->count, std::memory_order_relaxed);
  }
  batch_sizes_.Record(batch->count);

  double leader_score = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (scores.ok()) {
      batch->scores = std::move(scores).value();
      leader_score = batch->scores[0];
    } else {
      batch->status = scores.status();
    }
    batch->done = true;
    batch->cv.notify_all();
  }
  if (!batch->status.ok()) return batch->status;
  // The leader always finishes the batch — followers depend on its
  // scores — but if its own deadline fired meanwhile, its request still
  // reports the expiry.
  FLOCK_RETURN_NOT_OK(cancel.Check("microbatch.leader"));
  return leader_score;
}

void MicroBatcher::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, batch] : open_) {
    batch->flush = true;
    batch->cv.notify_all();
  }
}

void MicroBatcher::Drain() {
  draining_.store(true, std::memory_order_release);
  Flush();
}

}  // namespace flock::serve
