#include "serve/metrics.h"

#include <cmath>
#include <cstdio>

namespace flock::serve {

namespace {

double BucketLowerMicros(size_t index) {
  if (index == 0) return 0.0;
  return std::pow(LatencyHistogram::kGrowth, static_cast<double>(index));
}

double BucketUpperMicros(size_t index) {
  return std::pow(LatencyHistogram::kGrowth,
                  static_cast<double>(index + 1));
}

// buckets_[0] counts samples in [0, kGrowth) microseconds; buckets_[i>0]
// counts [kGrowth^i, kGrowth^(i+1)).
size_t BucketIndex(double micros) {
  if (micros < LatencyHistogram::kGrowth) return 0;
  double raw = std::log(micros) / std::log(LatencyHistogram::kGrowth);
  size_t idx = static_cast<size_t>(raw);
  // log() rounding can land the truncated index one bucket off on exact
  // boundaries (e.g. micros == kGrowth^i computing raw = i - epsilon);
  // nudge until the half-open invariant lower <= micros < upper holds.
  if (BucketUpperMicros(idx) <= micros) ++idx;
  if (idx > 0 && micros < BucketLowerMicros(idx)) --idx;
  if (idx >= LatencyHistogram::kNumBuckets - 1) {
    return LatencyHistogram::kNumBuckets - 1;
  }
  return idx;
}

}  // namespace

void LatencyHistogram::Record(double micros) {
  buckets_[BucketIndex(micros)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_nanos_.fetch_add(static_cast<uint64_t>(micros * 1e3),
                         std::memory_order_relaxed);
}

double LatencyHistogram::mean_ms() const {
  uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0.0;
  return static_cast<double>(total_nanos_.load(std::memory_order_relaxed)) /
         static_cast<double>(n) / 1e6;
}

double LatencyHistogram::PercentileMs(double p) const {
  uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  uint64_t rank = static_cast<uint64_t>(std::ceil(p * n));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (seen + in_bucket >= rank) {
      // Interpolate within the bucket, assuming samples spread evenly
      // across it: the rank-th sample sits (rank - seen - 1/2) of the
      // way through the bucket's population. Returning the raw upper
      // bound would overstate every percentile by up to kGrowth x.
      double lower = BucketLowerMicros(i);
      double upper = BucketUpperMicros(i);
      double fraction =
          (static_cast<double>(rank - seen) - 0.5) /
          static_cast<double>(in_bucket);
      return (lower + fraction * (upper - lower)) / 1e3;
    }
    seen += in_bucket;
  }
  return BucketUpperMicros(kNumBuckets - 1) / 1e3;
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  total_nanos_.store(0, std::memory_order_relaxed);
}

void ServerMetrics::Reset() {
  latency_.Reset();
  requests_ok_.store(0, std::memory_order_relaxed);
  requests_error_.store(0, std::memory_order_relaxed);
}

namespace {

std::string JsonNumber(double v, const char* fmt) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

}  // namespace

// Built dynamically: a fixed snprintf buffer silently truncated into
// invalid JSON as soon as the snapshot widened.
std::string ServerMetricsSnapshot::ToJson() const {
  std::string out;
  out.reserve(512);
  out += "{\"requests\": {\"ok\": " + std::to_string(requests_ok) +
         ", \"error\": " + std::to_string(requests_error) +
         ", \"shed\": " + std::to_string(requests_shed) + "},\n";
  out += " \"sessions\": {\"open\": " + std::to_string(sessions_open) +
         ", \"opened_total\": " + std::to_string(sessions_opened_total) +
         "},\n";
  out += " \"queue_depth\": " + std::to_string(queue_depth) + ",\n";
  out += " \"latency_ms\": {\"count\": " + std::to_string(latency_count) +
         ", \"mean\": " + JsonNumber(mean_ms, "%.3f") +
         ", \"p50\": " + JsonNumber(p50_ms, "%.3f") +
         ", \"p95\": " + JsonNumber(p95_ms, "%.3f") +
         ", \"p99\": " + JsonNumber(p99_ms, "%.3f") + "},\n";
  out += " \"plan_cache\": {\"hits\": " + std::to_string(plan_cache_hits) +
         ", \"misses\": " + std::to_string(plan_cache_misses) +
         ", \"hit_rate\": " + JsonNumber(plan_cache_hit_rate, "%.4f") +
         "}}";
  return out;
}

}  // namespace flock::serve
