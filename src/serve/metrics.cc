#include "serve/metrics.h"

#include <cmath>
#include <cstdio>

namespace flock::serve {

namespace {

// buckets_[i] counts samples in [kGrowth^i, kGrowth^(i+1)) microseconds.
size_t BucketIndex(double micros) {
  if (micros <= 1.0) return 0;
  double idx = std::log(micros) / std::log(LatencyHistogram::kGrowth);
  if (idx >= LatencyHistogram::kNumBuckets - 1) {
    return LatencyHistogram::kNumBuckets - 1;
  }
  return static_cast<size_t>(idx);
}

double BucketUpperMicros(size_t index) {
  return std::pow(LatencyHistogram::kGrowth,
                  static_cast<double>(index + 1));
}

}  // namespace

void LatencyHistogram::Record(double micros) {
  buckets_[BucketIndex(micros)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_nanos_.fetch_add(static_cast<uint64_t>(micros * 1e3),
                         std::memory_order_relaxed);
}

double LatencyHistogram::mean_ms() const {
  uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0.0;
  return static_cast<double>(total_nanos_.load(std::memory_order_relaxed)) /
         static_cast<double>(n) / 1e6;
}

double LatencyHistogram::PercentileMs(double p) const {
  uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  uint64_t rank = static_cast<uint64_t>(std::ceil(p * n));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) return BucketUpperMicros(i) / 1e3;
  }
  return BucketUpperMicros(kNumBuckets - 1) / 1e3;
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  total_nanos_.store(0, std::memory_order_relaxed);
}

void ServerMetrics::Reset() {
  latency_.Reset();
  requests_ok_.store(0, std::memory_order_relaxed);
  requests_error_.store(0, std::memory_order_relaxed);
}

std::string ServerMetricsSnapshot::ToJson() const {
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "{\"requests\": {\"ok\": %llu, \"error\": %llu, \"shed\": %llu},\n"
      " \"sessions\": {\"open\": %llu, \"opened_total\": %llu},\n"
      " \"queue_depth\": %llu,\n"
      " \"latency_ms\": {\"count\": %llu, \"mean\": %.3f, \"p50\": %.3f, "
      "\"p95\": %.3f, \"p99\": %.3f},\n"
      " \"plan_cache\": {\"hits\": %llu, \"misses\": %llu, "
      "\"hit_rate\": %.4f}}",
      static_cast<unsigned long long>(requests_ok),
      static_cast<unsigned long long>(requests_error),
      static_cast<unsigned long long>(requests_shed),
      static_cast<unsigned long long>(sessions_open),
      static_cast<unsigned long long>(sessions_opened_total),
      static_cast<unsigned long long>(queue_depth),
      static_cast<unsigned long long>(latency_count), mean_ms, p50_ms,
      p95_ms, p99_ms, static_cast<unsigned long long>(plan_cache_hits),
      static_cast<unsigned long long>(plan_cache_misses),
      plan_cache_hit_rate);
  return buf;
}

}  // namespace flock::serve
