#include "serve/session.h"

namespace flock::serve {

StatusOr<SessionPtr> SessionManager::Open(std::string principal) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sessions_.size() >= max_sessions_) {
    return Status::Unavailable(
        "session limit reached (" + std::to_string(max_sessions_) + ")");
  }
  uint64_t id = next_id_++;
  auto session = std::make_shared<Session>(id, std::move(principal));
  sessions_.emplace(id, session);
  total_opened_.fetch_add(1, std::memory_order_relaxed);
  return session;
}

StatusOr<SessionPtr> SessionManager::Get(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("no open session with id " +
                            std::to_string(id));
  }
  return it->second;
}

Status SessionManager::Close(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sessions_.erase(id) == 0) {
    return Status::NotFound("no open session with id " +
                            std::to_string(id));
  }
  return Status::OK();
}

size_t SessionManager::num_open() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

std::vector<SessionPtr> SessionManager::ListSessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SessionPtr> out;
  out.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) out.push_back(session);
  return out;
}

}  // namespace flock::serve
