#ifndef FLOCK_SERVE_SESSION_H_
#define FLOCK_SERVE_SESSION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/cancel.h"
#include "common/status_or.h"

namespace flock::serve {

/// Per-client serving state: identity (principal, for model access
/// control and audit attribution) plus request counters. Sessions are
/// shared between the transport thread that owns the connection and the
/// worker thread executing its queries, so counters are atomic.
class Session {
 public:
  Session(uint64_t id, std::string principal)
      : id_(id), principal_(std::move(principal)) {}

  uint64_t id() const { return id_; }
  const std::string& principal() const { return principal_; }

  void RecordRequest(bool ok) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    if (!ok) errors_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }
  uint64_t errors() const {
    return errors_.load(std::memory_order_relaxed);
  }

  /// Per-session tracing toggle (`.trace on|off`): queries submitted
  /// while set carry ExecOptions::trace and return span trees. Atomic —
  /// the transport thread flips it while workers read it.
  void set_trace(bool on) { trace_.store(on, std::memory_order_relaxed); }
  bool trace() const { return trace_.load(std::memory_order_relaxed); }

  /// Per-session deadline override (`.deadline <ms>|off|default`):
  /// negative = inherit the server's --default-deadline-ms, 0 = no
  /// deadline, positive = per-statement budget in ms.
  void set_deadline_ms(double ms) {
    deadline_ms_.store(ms, std::memory_order_relaxed);
  }
  double deadline_ms() const {
    return deadline_ms_.load(std::memory_order_relaxed);
  }

  /// Registers the cancel token of the statement currently submitted on
  /// behalf of this session, so `.kill <id>` on the transport thread can
  /// abort it (queued or executing). Last submission wins; a statement
  /// clears only its own token on completion, so a successor's
  /// registration is never wiped by a finishing predecessor.
  void SetActiveCancel(const CancelToken& token) {
    std::lock_guard<std::mutex> lock(cancel_mu_);
    active_cancel_ = token;
  }
  void ClearActiveCancel(const CancelToken& token) {
    std::lock_guard<std::mutex> lock(cancel_mu_);
    if (active_cancel_.SameStateAs(token)) active_cancel_ = CancelToken();
  }
  /// The active statement's token; a null token when the session is idle.
  CancelToken active_cancel() const {
    std::lock_guard<std::mutex> lock(cancel_mu_);
    return active_cancel_;
  }

 private:
  uint64_t id_;
  std::string principal_;
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<bool> trace_{false};
  std::atomic<double> deadline_ms_{-1.0};
  mutable std::mutex cancel_mu_;
  CancelToken active_cancel_;
};

using SessionPtr = std::shared_ptr<Session>;

/// Thread-safe session table with a hard cap — the first admission-
/// control boundary (connection count), ahead of the request queue.
class SessionManager {
 public:
  explicit SessionManager(size_t max_sessions = 1024)
      : max_sessions_(max_sessions) {}

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Opens a session for `principal`; Unavailable when at capacity.
  StatusOr<SessionPtr> Open(std::string principal);

  /// NotFound once the session is closed (or never existed).
  StatusOr<SessionPtr> Get(uint64_t id) const;

  Status Close(uint64_t id);

  size_t num_open() const;
  uint64_t total_opened() const {
    return total_opened_.load(std::memory_order_relaxed);
  }
  size_t max_sessions() const { return max_sessions_; }

  /// Live sessions, for diagnostics.
  std::vector<SessionPtr> ListSessions() const;

 private:
  size_t max_sessions_;
  mutable std::mutex mu_;
  uint64_t next_id_ = 1;
  std::atomic<uint64_t> total_opened_{0};
  std::unordered_map<uint64_t, SessionPtr> sessions_;
};

}  // namespace flock::serve

#endif  // FLOCK_SERVE_SESSION_H_
