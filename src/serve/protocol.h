#ifndef FLOCK_SERVE_PROTOCOL_H_
#define FLOCK_SERVE_PROTOCOL_H_

#include <string>

#include "common/status_or.h"
#include "sql/engine.h"

namespace flock::serve {

/// The line-delimited text protocol shared by the TCP transport
/// (examples/flock_server.cc / flock_client.cc) and the protocol tests.
///
/// Requests — one line each, '\n'-terminated:
///   <sql statement>      execute one statement on this connection's session
///   .metrics             unified metrics (all subsystems) as JSON
///   .metrics prom        same, Prometheus text exposition
///   .trace on|off        toggle span-tree tracing for this session
///   .slowlog             slow-query log as JSON
///   .slowlog clear       empty the slow-query log
///   .slowlog <ms>        set the slow-query threshold (negative = off)
///   .session             this connection's session id / principal
///   .kill <session>      abort the statement in flight on that session
///                        (it completes with ERR Cancelled within one
///                        poll interval; see DESIGN.md "Cancellation
///                        contract")
///   .deadline <ms>       per-statement deadline for this session;
///                        `.deadline off` disables, `.deadline default`
///                        reverts to the server's --default-deadline-ms
///   .repl <subcommand>   replication endpoint (primary: status|bootstrap|
///                        fetch <epoch> <lsn> <max>; replica: status) —
///                        see repl/wire.h for the payload format
///   .rollout <subcmd>    model-lifecycle endpoint: status | begin <model>
///                        <source_model> [fraction] | promote <model> |
///                        abort <model> — see lifecycle/rollout.h
///   .quit                close the connection
///
/// Responses:
///   OK <nrows> <ncols>\n
///   <tab-separated column names>\n          (only when ncols > 0)
///   <tab-separated row values> x nrows\n    (tabs/newlines escaped)
///   TRACE <nspans>\n                        (only when tracing was on)
///   <rendered span line> x nspans\n
///   END\n
/// or, for DML/DDL (no result columns):
///   OK 0 0 affected=<n>\n
///   END\n
/// or on failure (always a single line, message newline-escaped):
///   ERR <CodeName> <message>\n
struct Request {
  enum class Kind {
    kQuery, kMetrics, kTrace, kSlowLog, kSession, kKill, kDeadline, kRepl,
    kRollout, kQuit, kEmpty
  };
  Kind kind = Kind::kEmpty;
  std::string text;  // the SQL for kQuery; the argument for commands
};

/// Classifies one request line (strips surrounding whitespace; lines
/// starting with '.' are commands, unknown commands come back as kEmpty).
Request ParseRequestLine(const std::string& line);

/// Renders a query outcome in the wire format above.
std::string EncodeResponse(const StatusOr<sql::QueryResult>& result);
std::string EncodeError(const Status& status);

/// Escapes tabs, newlines and backslashes in one field value.
std::string EscapeField(const std::string& value);

}  // namespace flock::serve

#endif  // FLOCK_SERVE_PROTOCOL_H_
