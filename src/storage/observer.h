#ifndef FLOCK_STORAGE_OBSERVER_H_
#define FLOCK_STORAGE_OBSERVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/record_batch.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace flock::storage {

class Table;

/// Observes committed table mutations. The durability subsystem installs
/// one to append logical redo records to the write-ahead log; callbacks
/// fire *after* the in-memory mutation succeeds, and the statement is only
/// acknowledged to the client once the corresponding log append returns
/// (the engine checks WAL health after every exclusive statement), so the
/// commit point is the log append.
///
/// Callbacks run on the mutating thread. Mutations are serialized by the
/// engine's exclusive lock; observers must not call back into the table.
class TableObserver {
 public:
  virtual ~TableObserver() = default;
  virtual void OnAppendBatch(const Table& table,
                             const RecordBatch& batch) = 0;
  virtual void OnAppendRow(const Table& table,
                           const std::vector<Value>& row) = 0;
  virtual void OnUpdateColumn(const Table& table, size_t col,
                              const std::vector<uint32_t>& rows,
                              const std::vector<Value>& values) = 0;
  /// `keep[i] == false` rows were removed; only fired when removed > 0.
  virtual void OnDeleteRows(const Table& table,
                            const std::vector<bool>& keep,
                            size_t removed) = 0;
};

/// TableObserver plus catalog-level DDL. Database installs itself-supplied
/// observers onto every table it creates (and existing tables when the
/// observer is set), so one object sees every mutation in the database.
class DatabaseObserver : public TableObserver {
 public:
  virtual void OnCreateTable(const std::string& name,
                             const Schema& schema) = 0;
  virtual void OnDropTable(const std::string& name) = 0;
};

}  // namespace flock::storage

#endif  // FLOCK_STORAGE_OBSERVER_H_
