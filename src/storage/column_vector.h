#ifndef FLOCK_STORAGE_COLUMN_VECTOR_H_
#define FLOCK_STORAGE_COLUMN_VECTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/value.h"

namespace flock::storage {

/// A typed, nullable column of values — the unit of vectorized execution.
///
/// Layout: a dense value array per type plus a validity byte-vector. The
/// executor and the ML Predict kernel both read the dense arrays directly,
/// which is what makes in-DBMS scoring avoid the per-row boxing that the
/// standalone ("sklearn"-style) baseline pays.
class ColumnVector {
 public:
  explicit ColumnVector(DataType type) : type_(type) {}

  DataType type() const { return type_; }
  size_t size() const { return validity_.size(); }

  bool IsNull(size_t i) const { return validity_[i] == 0; }

  // Typed accessors. Caller must respect type() and IsNull().
  bool bool_at(size_t i) const { return bools_[i] != 0; }
  int64_t int_at(size_t i) const { return ints_[i]; }
  double double_at(size_t i) const { return doubles_[i]; }
  const std::string& string_at(size_t i) const { return strings_[i]; }

  /// Raw dense arrays for kernel loops (valid entries only meaningful).
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<int64_t>& ints() const { return ints_; }

  // Typed appends.
  void AppendBool(bool v);
  void AppendInt(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string v);
  void AppendNull();

  /// Appends `v` after checking/casting to this column's type.
  Status AppendValue(const Value& v);

  /// Boxes element `i` into a Value.
  Value GetValue(size_t i) const;

  /// Numeric view of element i (NULL -> 0.0); used by feature assembly.
  double AsDouble(size_t i) const;

  void Reserve(size_t n);
  void Clear();

  /// Copies rows [begin, end) of `src` into this vector (types must match).
  void AppendRange(const ColumnVector& src, size_t begin, size_t end);

  /// Copies the rows selected by `sel` (indices into src).
  void AppendSelected(const ColumnVector& src,
                      const std::vector<uint32_t>& sel);

 private:
  DataType type_;
  std::vector<uint8_t> validity_;  // 1 = valid, 0 = null
  std::vector<uint8_t> bools_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
};

using ColumnVectorPtr = std::shared_ptr<ColumnVector>;

}  // namespace flock::storage

#endif  // FLOCK_STORAGE_COLUMN_VECTOR_H_
