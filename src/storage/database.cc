#include "storage/database.h"

#include "common/string_util.h"

namespace flock::storage {

Status Database::CreateTable(const std::string& name, Schema schema,
                             size_t segment_capacity) {
  TablePtr created;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::string key = ToLower(name);
    if (tables_.count(key) > 0) {
      return Status::AlreadyExists("table already exists: " + name);
    }
    if (segment_capacity == 0) segment_capacity = default_segment_capacity_;
    created = std::make_shared<Table>(name, std::move(schema),
                                      segment_capacity);
    created->set_observer(observer_);
    tables_[key] = created;
  }
  // Notify outside the catalog lock: the observer may do I/O.
  if (observer_ != nullptr) {
    observer_->OnCreateTable(created->name(), created->schema());
  }
  return Status::OK();
}

StatusOr<TablePtr> Database::GetTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("table not found: " + name);
  }
  return it->second;
}

Status Database::DropTable(const std::string& name) {
  std::string dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tables_.find(ToLower(name));
    if (it == tables_.end()) {
      return Status::NotFound("table not found: " + name);
    }
    dropped = it->second->name();
    it->second->set_observer(nullptr);
    tables_.erase(it);
  }
  if (observer_ != nullptr) observer_->OnDropTable(dropped);
  return Status::OK();
}

bool Database::HasTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tables_.count(ToLower(name)) > 0;
}

void Database::set_observer(DatabaseObserver* observer) {
  std::lock_guard<std::mutex> lock(mu_);
  observer_ = observer;
  for (auto& [key, table] : tables_) table->set_observer(observer);
}

void Database::set_default_segment_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity > 0) default_segment_capacity_ = capacity;
}

size_t Database::default_segment_capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return default_segment_capacity_;
}

std::vector<std::string> Database::ListTables() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, table] : tables_) names.push_back(table->name());
  return names;
}

}  // namespace flock::storage
