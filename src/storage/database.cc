#include "storage/database.h"

#include "common/string_util.h"

namespace flock::storage {

Status Database::CreateTable(const std::string& name, Schema schema) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = ToLower(name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  tables_[key] = std::make_shared<Table>(name, std::move(schema));
  return Status::OK();
}

StatusOr<TablePtr> Database::GetTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("table not found: " + name);
  }
  return it->second;
}

Status Database::DropTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("table not found: " + name);
  }
  tables_.erase(it);
  return Status::OK();
}

bool Database::HasTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tables_.count(ToLower(name)) > 0;
}

std::vector<std::string> Database::ListTables() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, table] : tables_) names.push_back(table->name());
  return names;
}

}  // namespace flock::storage
