#include "storage/value.h"

#include <cmath>

#include "common/hash.h"
#include "common/string_util.h"

namespace flock::storage {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kBool:
      return "BOOL";
    case DataType::kInt64:
      return "BIGINT";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "VARCHAR";
  }
  return "?";
}

StatusOr<DataType> DataTypeFromName(const std::string& name) {
  std::string up = ToUpper(name);
  if (up == "BOOL" || up == "BOOLEAN") return DataType::kBool;
  if (up == "INT" || up == "INTEGER" || up == "BIGINT" || up == "SMALLINT") {
    return DataType::kInt64;
  }
  if (up == "DOUBLE" || up == "FLOAT" || up == "REAL" || up == "DECIMAL" ||
      up == "NUMERIC") {
    return DataType::kDouble;
  }
  if (up == "VARCHAR" || up == "TEXT" || up == "CHAR" || up == "STRING" ||
      up == "DATE") {
    return DataType::kString;
  }
  return Status::InvalidArgument("unknown type name: " + name);
}

double Value::AsDouble() const {
  if (is_null_) return 0.0;
  switch (type_) {
    case DataType::kBool:
      return bool_value() ? 1.0 : 0.0;
    case DataType::kInt64:
      return static_cast<double>(int_value());
    case DataType::kDouble:
      return double_value();
    case DataType::kString:
      return 0.0;
  }
  return 0.0;
}

StatusOr<Value> Value::CastTo(DataType target) const {
  if (is_null_) return Value::Null(target);
  if (type_ == target) return *this;
  switch (target) {
    case DataType::kBool:
      return Value::Bool(AsDouble() != 0.0);
    case DataType::kInt64:
      if (type_ == DataType::kString) {
        try {
          return Value::Int(std::stoll(string_value()));
        } catch (...) {
          return Status::InvalidArgument("cannot cast '" + string_value() +
                                         "' to BIGINT");
        }
      }
      return Value::Int(static_cast<int64_t>(std::llround(AsDouble())));
    case DataType::kDouble:
      if (type_ == DataType::kString) {
        try {
          return Value::Double(std::stod(string_value()));
        } catch (...) {
          return Status::InvalidArgument("cannot cast '" + string_value() +
                                         "' to DOUBLE");
        }
      }
      return Value::Double(AsDouble());
    case DataType::kString:
      return Value::String(ToString());
  }
  return Status::Internal("unreachable cast");
}

bool Value::operator==(const Value& other) const {
  if (is_null_ || other.is_null_) return is_null_ && other.is_null_;
  if (type_ == other.type_) return data_ == other.data_;
  // Cross numeric comparison.
  if (type_ != DataType::kString && other.type_ != DataType::kString) {
    return AsDouble() == other.AsDouble();
  }
  return false;
}

int Value::Compare(const Value& other) const {
  if (is_null_ && other.is_null_) return 0;
  if (is_null_) return -1;
  if (other.is_null_) return 1;
  if (type_ == DataType::kString && other.type_ == DataType::kString) {
    return string_value().compare(other.string_value());
  }
  double a = AsDouble();
  double b = other.AsDouble();
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

uint64_t Value::Hash() const {
  if (is_null_) return 0x6E756C6CULL;  // "null"
  switch (type_) {
    case DataType::kBool:
      return HashInt64(bool_value() ? 1 : 0);
    case DataType::kInt64:
      return HashInt64(int_value());
    case DataType::kDouble: {
      double d = double_value();
      // Hash integral doubles like their int64 counterpart so mixed-type
      // join keys (42 vs 42.0) collide as expected.
      int64_t as_int = static_cast<int64_t>(d);
      if (static_cast<double>(as_int) == d) return HashInt64(as_int);
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(d));
      return HashInt64(static_cast<int64_t>(bits));
    }
    case DataType::kString:
      return HashString(string_value());
  }
  return 0;
}

std::string Value::ToString() const {
  if (is_null_) return "NULL";
  switch (type_) {
    case DataType::kBool:
      return bool_value() ? "true" : "false";
    case DataType::kInt64:
      return std::to_string(int_value());
    case DataType::kDouble: {
      std::string s = FormatDouble(double_value(), 6);
      // Trim trailing zeros but keep one decimal digit.
      size_t dot = s.find('.');
      if (dot != std::string::npos) {
        size_t last = s.find_last_not_of('0');
        if (last == dot) last = dot + 1;
        s.erase(last + 1);
      }
      return s;
    }
    case DataType::kString:
      return string_value();
  }
  return "?";
}

}  // namespace flock::storage
