#include "storage/table.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace flock::storage {

namespace {

bool IsNumericType(DataType type) {
  return type == DataType::kInt64 || type == DataType::kDouble ||
         type == DataType::kBool;
}

ColumnStats EmptyStats(DataType type) {
  ColumnStats stats;
  stats.numeric = IsNumericType(type);
  return stats;
}

/// Folds rows [begin, end) of `col` into `zm`.
void ExtendZoneMap(ColumnStats* zm, const ColumnVector& col, size_t begin,
                   size_t end) {
  for (size_t r = begin; r < end; ++r) {
    ++zm->row_count;
    if (col.IsNull(r)) {
      ++zm->null_count;
      continue;
    }
    if (!zm->numeric) continue;
    double v = col.AsDouble(r);
    if (!zm->has_range) {
      zm->min = v;
      zm->max = v;
      zm->has_range = true;
    } else {
      zm->min = std::min(zm->min, v);
      zm->max = std::max(zm->max, v);
    }
  }
}

}  // namespace

Table::Table(std::string name, Schema schema, size_t segment_capacity)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      segment_capacity_(std::max<size_t>(1, segment_capacity)) {
  stats_cache_.resize(schema_.num_columns());
  versions_.push_back(VersionInfo{0, "CREATE", 0});
}

void Table::BumpVersion(const std::string& op, size_t rows) {
  versions_.push_back(
      VersionInfo{versions_.back().version + 1, op, rows});
}

void Table::InvalidateStatsCache() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  std::fill(stats_cache_.begin(), stats_cache_.end(), std::nullopt);
}

void Table::InvalidateStatsCache(size_t col) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_cache_[col] = std::nullopt;
}

Segment* Table::OpenSegment() {
  if (segments_.empty() || segments_.back()->sealed) {
    auto seg = std::make_unique<Segment>();
    seg->columns.reserve(schema_.num_columns());
    seg->zone_maps.reserve(schema_.num_columns());
    for (size_t c = 0; c < schema_.num_columns(); ++c) {
      seg->columns.push_back(
          std::make_shared<ColumnVector>(schema_.column(c).type));
      seg->zone_maps.push_back(EmptyStats(schema_.column(c).type));
    }
    segments_.push_back(std::move(seg));
  }
  return segments_.back().get();
}

size_t Table::segment_row_begin(size_t s) const {
  size_t begin = 0;
  for (size_t i = 0; i < s; ++i) begin += segments_[i]->num_rows;
  return begin;
}

void Table::AppendRowsToSegments(const RecordBatch& dense) {
  size_t pos = 0;
  size_t total = dense.num_rows();
  while (pos < total) {
    Segment* seg = OpenSegment();
    size_t room = segment_capacity_ - seg->num_rows;
    size_t take = std::min(room, total - pos);
    for (size_t c = 0; c < schema_.num_columns(); ++c) {
      size_t old_size = seg->columns[c]->size();
      seg->columns[c]->AppendRange(*dense.column(c), pos, pos + take);
      ExtendZoneMap(&seg->zone_maps[c], *seg->columns[c], old_size,
                    old_size + take);
    }
    seg->num_rows += take;
    if (seg->num_rows >= segment_capacity_) seg->sealed = true;
    pos += take;
  }
  num_rows_ += total;
}

Status Table::AppendBatch(const RecordBatch& batch) {
  if (batch.num_columns() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "batch has " + std::to_string(batch.num_columns()) +
        " columns, table '" + name_ + "' has " +
        std::to_string(schema_.num_columns()));
  }
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    if (batch.column(c)->type() != schema_.column(c).type) {
      return Status::InvalidArgument("column type mismatch at position " +
                                     std::to_string(c));
    }
  }
  // Segment fill reads physical rows; flatten selection views first.
  const RecordBatch* dense = &batch;
  RecordBatch materialized(schema_);
  if (batch.has_selection()) {
    materialized = batch.Materialize();
    dense = &materialized;
  }
  if (dense->num_rows() > 0) {
    AppendRowsToSegments(*dense);
    InvalidateStatsCache();
  }
  BumpVersion("INSERT", dense->num_rows());
  if (observer_ != nullptr) observer_->OnAppendBatch(*this, batch);
  return Status::OK();
}

Status Table::AppendRow(const std::vector<Value>& row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument("row width mismatch for table " + name_);
  }
  Segment* seg = OpenSegment();
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    Status st = seg->columns[c]->AppendValue(row[c]);
    if (!st.ok()) {
      // Roll back the columns already appended so the segment stays
      // rectangular.
      std::vector<uint32_t> sel(seg->num_rows);
      for (size_t r = 0; r < seg->num_rows; ++r) {
        sel[r] = static_cast<uint32_t>(r);
      }
      for (size_t u = 0; u < c; ++u) {
        auto fresh = std::make_shared<ColumnVector>(seg->columns[u]->type());
        fresh->AppendSelected(*seg->columns[u], sel);
        seg->columns[u] = std::move(fresh);
      }
      return st;
    }
  }
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    ExtendZoneMap(&seg->zone_maps[c], *seg->columns[c], seg->num_rows,
                  seg->num_rows + 1);
  }
  seg->num_rows += 1;
  if (seg->num_rows >= segment_capacity_) seg->sealed = true;
  ++num_rows_;
  InvalidateStatsCache();
  BumpVersion("INSERT", 1);
  if (observer_ != nullptr) observer_->OnAppendRow(*this, row);
  return Status::OK();
}

RecordBatch Table::ScanSegment(size_t s, size_t begin, size_t end) const {
  const Segment& seg = *segments_[s];
  end = std::min(end, seg.num_rows);
  begin = std::min(begin, end);
  RecordBatch view(schema_);
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    view.SetColumn(c, seg.columns[c]);
  }
  if (begin == 0 && end == seg.num_rows) return view;
  std::vector<uint32_t> sel;
  sel.reserve(end - begin);
  for (size_t r = begin; r < end; ++r) {
    sel.push_back(static_cast<uint32_t>(r));
  }
  return view.SelectView(std::move(sel));
}

RecordBatch Table::ScanRange(size_t begin, size_t end) const {
  end = std::min(end, num_rows_);
  begin = std::min(begin, end);
  RecordBatch out(schema_);
  size_t seg_begin = 0;
  for (const auto& seg : segments_) {
    size_t seg_end = seg_begin + seg->num_rows;
    if (seg_end > begin && seg_begin < end) {
      size_t local_begin = begin > seg_begin ? begin - seg_begin : 0;
      size_t local_end = std::min(end, seg_end) - seg_begin;
      for (size_t c = 0; c < schema_.num_columns(); ++c) {
        out.mutable_column(c)->AppendRange(*seg->columns[c], local_begin,
                                           local_end);
      }
    }
    seg_begin = seg_end;
    if (seg_begin >= end) break;
  }
  return out;
}

size_t Table::FilterInPlace(const std::vector<bool>& keep) {
  FLOCK_CHECK(keep.size() == num_rows_);
  size_t removed = 0;
  size_t seg_begin = 0;
  for (size_t s = 0; s < segments_.size();) {
    Segment* seg = segments_[s].get();
    std::vector<uint32_t> sel;
    sel.reserve(seg->num_rows);
    for (size_t r = 0; r < seg->num_rows; ++r) {
      if (keep[seg_begin + r]) sel.push_back(static_cast<uint32_t>(r));
    }
    seg_begin += seg->num_rows;
    if (sel.size() == seg->num_rows) {
      // Untouched: keep column vectors and zone maps as-is.
      ++s;
      continue;
    }
    removed += seg->num_rows - sel.size();
    if (sel.empty()) {
      segments_.erase(segments_.begin() + s);
      continue;
    }
    // Rewrite with fresh vectors so outstanding views stay consistent
    // snapshots; the shrunken segment stays sealed if it was (it never
    // accepts appends again, preserving global row order).
    for (size_t c = 0; c < schema_.num_columns(); ++c) {
      auto fresh = std::make_shared<ColumnVector>(seg->columns[c]->type());
      fresh->AppendSelected(*seg->columns[c], sel);
      seg->columns[c] = std::move(fresh);
      RecomputeZoneMap(seg, c);
    }
    seg->num_rows = sel.size();
    ++s;
  }
  if (removed == 0) return 0;
  num_rows_ -= removed;
  InvalidateStatsCache();
  BumpVersion("DELETE", removed);
  if (observer_ != nullptr) observer_->OnDeleteRows(*this, keep, removed);
  return removed;
}

Status Table::UpdateColumn(size_t col, const std::vector<uint32_t>& rows,
                           const std::vector<Value>& values) {
  if (col >= schema_.num_columns()) {
    return Status::OutOfRange("column index out of range");
  }
  if (rows.size() != values.size()) {
    return Status::InvalidArgument("rows/values length mismatch");
  }
  std::vector<const Value*> replacement(num_rows_, nullptr);
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i] >= num_rows_) {
      return Status::OutOfRange("row index out of range in update");
    }
    replacement[rows[i]] = &values[i];
  }
  // Rewrite column `col` of each touched segment with a fresh vector
  // (columnar storage is immutable by position; updates are
  // rewrite-on-change like column stores do). Untouched segments and all
  // other columns keep their vectors and zone maps.
  std::vector<std::pair<size_t, ColumnVectorPtr>> rewrites;
  size_t seg_begin = 0;
  for (size_t s = 0; s < segments_.size(); ++s) {
    Segment* seg = segments_[s].get();
    bool touched = false;
    for (size_t r = 0; r < seg->num_rows; ++r) {
      if (replacement[seg_begin + r] != nullptr) {
        touched = true;
        break;
      }
    }
    if (touched) {
      auto fresh = std::make_shared<ColumnVector>(seg->columns[col]->type());
      fresh->Reserve(seg->num_rows);
      for (size_t r = 0; r < seg->num_rows; ++r) {
        const Value* repl = replacement[seg_begin + r];
        Status st = repl != nullptr
                        ? fresh->AppendValue(*repl)
                        : fresh->AppendValue(seg->columns[col]->GetValue(r));
        if (!st.ok()) return st;  // nothing installed yet: no change
      }
      rewrites.emplace_back(s, std::move(fresh));
    }
    seg_begin += seg->num_rows;
  }
  for (auto& [s, fresh] : rewrites) {
    segments_[s]->columns[col] = std::move(fresh);
    RecomputeZoneMap(segments_[s].get(), col);
  }
  InvalidateStatsCache(col);
  BumpVersion("UPDATE", rows.size());
  if (observer_ != nullptr) {
    observer_->OnUpdateColumn(*this, col, rows, values);
  }
  return Status::OK();
}

Status Table::RestoreSegments(const std::vector<RecordBatch>& segments) {
  if (num_rows_ != 0 || !segments_.empty()) {
    return Status::InvalidArgument(
        "RestoreSegments requires an empty table");
  }
  size_t total = 0;
  for (const RecordBatch& batch : segments) {
    if (batch.num_columns() != schema_.num_columns()) {
      return Status::InvalidArgument(
          "restored segment width mismatch for table " + name_);
    }
    if (batch.num_rows() == 0) continue;  // never persist empty segments
    auto seg = std::make_unique<Segment>();
    seg->columns.reserve(schema_.num_columns());
    seg->zone_maps.reserve(schema_.num_columns());
    bool dense = !batch.has_selection();
    for (size_t c = 0; c < schema_.num_columns(); ++c) {
      if (batch.column(c)->type() != schema_.column(c).type) {
        return Status::InvalidArgument(
            "restored segment type mismatch at position " +
            std::to_string(c));
      }
      ColumnVectorPtr column;
      if (dense) {
        column = batch.column(c);  // adopt decoded vector, no copy
      } else {
        column = std::make_shared<ColumnVector>(batch.column(c)->type());
        column->AppendSelected(*batch.column(c), batch.selection());
      }
      seg->columns.push_back(std::move(column));
      seg->zone_maps.push_back(EmptyStats(schema_.column(c).type));
    }
    seg->num_rows = batch.num_rows();
    for (size_t c = 0; c < schema_.num_columns(); ++c) {
      ExtendZoneMap(&seg->zone_maps[c], *seg->columns[c], 0, seg->num_rows);
    }
    seg->sealed = seg->num_rows >= segment_capacity_;
    total += seg->num_rows;
    segments_.push_back(std::move(seg));
  }
  // All segments except the last must behave as sealed: appending into the
  // middle would scramble global row order. (A last segment below capacity
  // stays open, exactly as it was when the snapshot was taken.)
  for (size_t s = 0; s + 1 < segments_.size(); ++s) {
    segments_[s]->sealed = true;
  }
  num_rows_ = total;
  InvalidateStatsCache();
  BumpVersion("INSERT", total);
  return Status::OK();
}

void Table::RecomputeZoneMap(Segment* seg, size_t c) {
  ColumnStats zm = EmptyStats(seg->columns[c]->type());
  ExtendZoneMap(&zm, *seg->columns[c], 0, seg->columns[c]->size());
  seg->zone_maps[c] = zm;
}

StatusOr<ColumnStats> Table::GetStats(size_t i) const {
  if (i >= schema_.num_columns()) {
    return Status::OutOfRange("column index out of range");
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (stats_cache_[i].has_value()) return *stats_cache_[i];
  }
  // Fold the per-segment zone maps; never rescans data.
  ColumnStats stats = EmptyStats(schema_.column(i).type);
  for (const auto& seg : segments_) {
    const ColumnStats& zm = seg->zone_maps[i];
    stats.row_count += zm.row_count;
    stats.null_count += zm.null_count;
    if (zm.has_range) {
      if (!stats.has_range) {
        stats.min = zm.min;
        stats.max = zm.max;
        stats.has_range = true;
      } else {
        stats.min = std::min(stats.min, zm.min);
        stats.max = std::max(stats.max, zm.max);
      }
    }
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_cache_[i] = stats;
  return stats;
}

bool Table::stats_cached(size_t i) const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return i < stats_cache_.size() && stats_cache_[i].has_value();
}

}  // namespace flock::storage
