#include "storage/table.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace flock::storage {

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  columns_.reserve(schema_.num_columns());
  for (size_t i = 0; i < schema_.num_columns(); ++i) {
    columns_.push_back(
        std::make_shared<ColumnVector>(schema_.column(i).type));
  }
  stats_cache_.resize(schema_.num_columns());
  versions_.push_back(VersionInfo{0, "CREATE", 0});
}

void Table::BumpVersion(const std::string& op, size_t rows) {
  versions_.push_back(
      VersionInfo{versions_.back().version + 1, op, rows});
  std::fill(stats_cache_.begin(), stats_cache_.end(), std::nullopt);
}

Status Table::AppendBatch(const RecordBatch& batch) {
  if (batch.num_columns() != columns_.size()) {
    return Status::InvalidArgument(
        "batch has " + std::to_string(batch.num_columns()) +
        " columns, table '" + name_ + "' has " +
        std::to_string(columns_.size()));
  }
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (batch.column(c)->type() != columns_[c]->type()) {
      return Status::InvalidArgument("column type mismatch at position " +
                                     std::to_string(c));
    }
  }
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c]->AppendRange(*batch.column(c), 0, batch.num_rows());
  }
  num_rows_ += batch.num_rows();
  BumpVersion("INSERT", batch.num_rows());
  if (observer_ != nullptr) observer_->OnAppendBatch(*this, batch);
  return Status::OK();
}

Status Table::AppendRow(const std::vector<Value>& row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument("row width mismatch for table " + name_);
  }
  for (size_t c = 0; c < columns_.size(); ++c) {
    FLOCK_RETURN_NOT_OK(columns_[c]->AppendValue(row[c]));
  }
  ++num_rows_;
  BumpVersion("INSERT", 1);
  if (observer_ != nullptr) observer_->OnAppendRow(*this, row);
  return Status::OK();
}

RecordBatch Table::ScanRange(size_t begin, size_t end) const {
  end = std::min(end, num_rows_);
  begin = std::min(begin, end);
  RecordBatch out(schema_);
  for (size_t c = 0; c < columns_.size(); ++c) {
    out.mutable_column(c)->AppendRange(*columns_[c], begin, end);
  }
  return out;
}

size_t Table::FilterInPlace(const std::vector<bool>& keep) {
  FLOCK_CHECK(keep.size() == num_rows_);
  std::vector<uint32_t> sel;
  sel.reserve(num_rows_);
  for (size_t i = 0; i < num_rows_; ++i) {
    if (keep[i]) sel.push_back(static_cast<uint32_t>(i));
  }
  size_t removed = num_rows_ - sel.size();
  if (removed == 0) return 0;
  for (size_t c = 0; c < columns_.size(); ++c) {
    auto fresh = std::make_shared<ColumnVector>(columns_[c]->type());
    fresh->AppendSelected(*columns_[c], sel);
    columns_[c] = std::move(fresh);
  }
  num_rows_ = sel.size();
  BumpVersion("DELETE", removed);
  if (observer_ != nullptr) observer_->OnDeleteRows(*this, keep, removed);
  return removed;
}

Status Table::UpdateColumn(size_t col, const std::vector<uint32_t>& rows,
                           const std::vector<Value>& values) {
  if (col >= columns_.size()) {
    return Status::OutOfRange("column index out of range");
  }
  if (rows.size() != values.size()) {
    return Status::InvalidArgument("rows/values length mismatch");
  }
  // Rebuild the column with replacements (columnar storage is immutable by
  // position; updates are rewrite-on-change like column stores do).
  auto fresh = std::make_shared<ColumnVector>(columns_[col]->type());
  fresh->Reserve(num_rows_);
  std::vector<const Value*> replacement(num_rows_, nullptr);
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i] >= num_rows_) {
      return Status::OutOfRange("row index out of range in update");
    }
    replacement[rows[i]] = &values[i];
  }
  for (size_t r = 0; r < num_rows_; ++r) {
    if (replacement[r] != nullptr) {
      FLOCK_RETURN_NOT_OK(fresh->AppendValue(*replacement[r]));
    } else {
      FLOCK_RETURN_NOT_OK(fresh->AppendValue(columns_[col]->GetValue(r)));
    }
  }
  columns_[col] = std::move(fresh);
  BumpVersion("UPDATE", rows.size());
  if (observer_ != nullptr) {
    observer_->OnUpdateColumn(*this, col, rows, values);
  }
  return Status::OK();
}

StatusOr<ColumnStats> Table::GetStats(size_t i) const {
  if (i >= columns_.size()) {
    return Status::OutOfRange("column index out of range");
  }
  if (stats_cache_[i].has_value()) return *stats_cache_[i];
  const ColumnVector& col = *columns_[i];
  ColumnStats stats;
  stats.row_count = col.size();
  stats.numeric = col.type() == DataType::kInt64 ||
                  col.type() == DataType::kDouble ||
                  col.type() == DataType::kBool;
  stats.min = std::numeric_limits<double>::infinity();
  stats.max = -std::numeric_limits<double>::infinity();
  for (size_t r = 0; r < col.size(); ++r) {
    if (col.IsNull(r)) {
      ++stats.null_count;
      continue;
    }
    if (stats.numeric) {
      double v = col.AsDouble(r);
      stats.min = std::min(stats.min, v);
      stats.max = std::max(stats.max, v);
    }
  }
  if (stats.row_count == stats.null_count || !stats.numeric) {
    stats.min = 0.0;
    stats.max = 0.0;
  }
  stats_cache_[i] = stats;
  return stats;
}

}  // namespace flock::storage
