#ifndef FLOCK_STORAGE_RECORD_BATCH_H_
#define FLOCK_STORAGE_RECORD_BATCH_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/column_vector.h"
#include "storage/schema.h"

namespace flock::storage {

/// A horizontal slice of rows in columnar form — the unit flowing between
/// physical operators. Default morsel size is 2,048 rows.
///
/// A batch may carry a *selection vector*: a list of physical row indexes
/// defining the logical row order/subset without copying column data. The
/// physical Filter operator emits selected views so consecutive filters
/// compose selections and the single gather happens at the first operator
/// that needs dense columns (or at the pipeline sink). `num_rows()`,
/// `GetRow()`, `Select()`, `Append()` and `ToString()` all see the logical
/// (selected) rows; `column(i)` exposes the underlying physical column, so
/// readers of raw columns must either call `Materialize()` first or map
/// indexes through `selection()`.
class RecordBatch {
 public:
  static constexpr size_t kDefaultBatchSize = 2048;

  RecordBatch() = default;
  explicit RecordBatch(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const {
    if (selection_) return selection_->size();
    return columns_.empty() ? 0 : columns_[0]->size();
  }

  /// Physical (unselected) row count of the underlying columns.
  size_t num_physical_rows() const {
    return columns_.empty() ? 0 : columns_[0]->size();
  }

  bool has_selection() const { return selection_ != nullptr; }
  /// Valid only when has_selection().
  const std::vector<uint32_t>& selection() const { return *selection_; }

  const ColumnVectorPtr& column(size_t i) const { return columns_[i]; }
  ColumnVector* mutable_column(size_t i) { return columns_[i].get(); }

  /// Replaces column `i` (same row count expected).
  void SetColumn(size_t i, ColumnVectorPtr col) {
    columns_[i] = std::move(col);
  }

  /// Adds a column to the right; extends the schema.
  void AddColumn(ColumnDef def, ColumnVectorPtr col);

  /// Boxes logical row `r` into Values (debug/result paths).
  std::vector<Value> GetRow(size_t r) const;

  Status AppendRow(const std::vector<Value>& row);

  /// Returns a dense batch with only rows selected by `sel` (logical
  /// indexes). Copies column data.
  RecordBatch Select(const std::vector<uint32_t>& sel) const;

  /// Zero-copy view: shares columns and records `sel` (logical indexes,
  /// composed with any existing selection) as the new selection vector.
  RecordBatch SelectView(std::vector<uint32_t> sel) const;

  /// Resolves any selection into dense columns. Cheap (shares columns)
  /// when the batch is already dense.
  RecordBatch Materialize() const;

  /// Returns a batch with only the given columns, in the given order.
  /// Shares column data and preserves any selection.
  RecordBatch Project(const std::vector<size_t>& column_indices) const;

  /// Appends all logical rows of `other` (schemas must be compatible).
  void Append(const RecordBatch& other);

  /// Renders rows as aligned text (for examples and debugging).
  std::string ToString(size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<ColumnVectorPtr> columns_;
  std::shared_ptr<const std::vector<uint32_t>> selection_;  // null = dense
};

}  // namespace flock::storage

#endif  // FLOCK_STORAGE_RECORD_BATCH_H_
