#ifndef FLOCK_STORAGE_RECORD_BATCH_H_
#define FLOCK_STORAGE_RECORD_BATCH_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/column_vector.h"
#include "storage/schema.h"

namespace flock::storage {

/// A horizontal slice of rows in columnar form — the unit flowing between
/// physical operators. Default morsel size is 2,048 rows.
class RecordBatch {
 public:
  static constexpr size_t kDefaultBatchSize = 2048;

  RecordBatch() = default;
  explicit RecordBatch(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0]->size();
  }

  const ColumnVectorPtr& column(size_t i) const { return columns_[i]; }
  ColumnVector* mutable_column(size_t i) { return columns_[i].get(); }

  /// Replaces column `i` (same row count expected).
  void SetColumn(size_t i, ColumnVectorPtr col) {
    columns_[i] = std::move(col);
  }

  /// Adds a column to the right; extends the schema.
  void AddColumn(ColumnDef def, ColumnVectorPtr col);

  /// Boxes row `r` into Values (debug/result paths).
  std::vector<Value> GetRow(size_t r) const;

  Status AppendRow(const std::vector<Value>& row);

  /// Returns a batch with only rows selected by `sel`.
  RecordBatch Select(const std::vector<uint32_t>& sel) const;

  /// Returns a batch with only the given columns, in the given order.
  RecordBatch Project(const std::vector<size_t>& column_indices) const;

  /// Appends all rows of `other` (schemas must be compatible).
  void Append(const RecordBatch& other);

  /// Renders rows as aligned text (for examples and debugging).
  std::string ToString(size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<ColumnVectorPtr> columns_;
};

}  // namespace flock::storage

#endif  // FLOCK_STORAGE_RECORD_BATCH_H_
