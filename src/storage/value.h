#ifndef FLOCK_STORAGE_VALUE_H_
#define FLOCK_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/status_or.h"

namespace flock::storage {

/// Column data types supported by the engine. Deliberately small: the EGML
/// scenarios in the paper (feature tables, TPC-H/TPC-C) only need scalars;
/// models themselves are first-class catalog objects, not column values.
enum class DataType { kBool, kInt64, kDouble, kString };

const char* DataTypeName(DataType t);

/// Parses "INT"/"BIGINT"/"DOUBLE"/"VARCHAR"/"TEXT"/"BOOL" (case-insensitive).
StatusOr<DataType> DataTypeFromName(const std::string& name);

/// A dynamically-typed scalar, nullable. Used at plan boundaries (literals,
/// query parameters, result inspection); hot loops operate on ColumnVector
/// instead.
class Value {
 public:
  /// Constructs SQL NULL.
  Value() : is_null_(true), type_(DataType::kInt64) {}

  static Value Null(DataType type = DataType::kInt64) {
    Value v;
    v.type_ = type;
    return v;
  }
  static Value Bool(bool b) { return Value(DataType::kBool, b); }
  static Value Int(int64_t i) { return Value(DataType::kInt64, i); }
  static Value Double(double d) { return Value(DataType::kDouble, d); }
  static Value String(std::string s) {
    return Value(DataType::kString, std::move(s));
  }

  bool is_null() const { return is_null_; }
  DataType type() const { return type_; }

  bool bool_value() const { return std::get<bool>(data_); }
  int64_t int_value() const { return std::get<int64_t>(data_); }
  double double_value() const { return std::get<double>(data_); }
  const std::string& string_value() const {
    return std::get<std::string>(data_);
  }

  /// Numeric view: int64 widens to double; bool becomes 0/1.
  double AsDouble() const;

  /// Casts to `target`; NULL casts to NULL of the target type.
  StatusOr<Value> CastTo(DataType target) const;

  /// SQL semantics: NULL != NULL (use is_null() for that); this is *storage*
  /// equality where two NULLs of any type compare equal (used by hash keys).
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Three-way storage comparison; NULL sorts first. Requires comparable
  /// types (numeric vs numeric, string vs string, bool vs bool).
  int Compare(const Value& other) const;

  /// Hash for join/aggregate keys.
  uint64_t Hash() const;

  /// SQL-literal rendering: NULL, true, 42, 1.5, 'text'.
  std::string ToString() const;

 private:
  Value(DataType t, bool b) : is_null_(false), type_(t), data_(b) {}
  Value(DataType t, int64_t i) : is_null_(false), type_(t), data_(i) {}
  Value(DataType t, double d) : is_null_(false), type_(t), data_(d) {}
  Value(DataType t, std::string s)
      : is_null_(false), type_(t), data_(std::move(s)) {}

  bool is_null_;
  DataType type_;
  std::variant<bool, int64_t, double, std::string> data_;
};

}  // namespace flock::storage

#endif  // FLOCK_STORAGE_VALUE_H_
