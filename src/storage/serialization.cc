#include "storage/serialization.h"

#include <cstring>

namespace flock::storage {

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutDouble(std::string* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(v));
  PutU64(out, bits);
}

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

Status ByteReader::GetU8(uint8_t* v) {
  if (remaining() < 1) return Status::DataLoss("truncated u8");
  *v = static_cast<uint8_t>(data_[pos_++]);
  return Status::OK();
}

Status ByteReader::GetU32(uint32_t* v) {
  if (remaining() < 4) return Status::DataLoss("truncated u32");
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 4;
  *v = out;
  return Status::OK();
}

Status ByteReader::GetU64(uint64_t* v) {
  if (remaining() < 8) return Status::DataLoss("truncated u64");
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 8;
  *v = out;
  return Status::OK();
}

Status ByteReader::GetI64(int64_t* v) {
  uint64_t bits;
  FLOCK_RETURN_NOT_OK(GetU64(&bits));
  *v = static_cast<int64_t>(bits);
  return Status::OK();
}

Status ByteReader::GetDouble(double* v) {
  uint64_t bits;
  FLOCK_RETURN_NOT_OK(GetU64(&bits));
  std::memcpy(v, &bits, sizeof(bits));
  return Status::OK();
}

Status ByteReader::GetString(std::string* v) {
  uint32_t len;
  FLOCK_RETURN_NOT_OK(GetU32(&len));
  if (remaining() < len) return Status::DataLoss("truncated string");
  v->assign(data_ + pos_, len);
  pos_ += len;
  return Status::OK();
}

namespace {

Status CheckDataType(uint8_t raw, DataType* out) {
  switch (raw) {
    case static_cast<uint8_t>(DataType::kBool):
    case static_cast<uint8_t>(DataType::kInt64):
    case static_cast<uint8_t>(DataType::kDouble):
    case static_cast<uint8_t>(DataType::kString):
      *out = static_cast<DataType>(raw);
      return Status::OK();
    default:
      return Status::DataLoss("unknown data type tag " +
                              std::to_string(raw));
  }
}

}  // namespace

void SerializeValue(const Value& v, std::string* out) {
  PutU8(out, v.is_null() ? 1 : 0);
  PutU8(out, static_cast<uint8_t>(v.type()));
  if (v.is_null()) return;
  switch (v.type()) {
    case DataType::kBool:
      PutU8(out, v.bool_value() ? 1 : 0);
      break;
    case DataType::kInt64:
      PutI64(out, v.int_value());
      break;
    case DataType::kDouble:
      PutDouble(out, v.double_value());
      break;
    case DataType::kString:
      PutString(out, v.string_value());
      break;
  }
}

Status DeserializeValue(ByteReader* in, Value* out) {
  uint8_t is_null, raw_type;
  FLOCK_RETURN_NOT_OK(in->GetU8(&is_null));
  FLOCK_RETURN_NOT_OK(in->GetU8(&raw_type));
  DataType type;
  FLOCK_RETURN_NOT_OK(CheckDataType(raw_type, &type));
  if (is_null) {
    *out = Value::Null(type);
    return Status::OK();
  }
  switch (type) {
    case DataType::kBool: {
      uint8_t b;
      FLOCK_RETURN_NOT_OK(in->GetU8(&b));
      *out = Value::Bool(b != 0);
      return Status::OK();
    }
    case DataType::kInt64: {
      int64_t i;
      FLOCK_RETURN_NOT_OK(in->GetI64(&i));
      *out = Value::Int(i);
      return Status::OK();
    }
    case DataType::kDouble: {
      double d;
      FLOCK_RETURN_NOT_OK(in->GetDouble(&d));
      *out = Value::Double(d);
      return Status::OK();
    }
    case DataType::kString: {
      std::string s;
      FLOCK_RETURN_NOT_OK(in->GetString(&s));
      *out = Value::String(std::move(s));
      return Status::OK();
    }
  }
  return Status::DataLoss("unreachable value type");
}

void SerializeSchema(const Schema& schema, std::string* out) {
  PutU32(out, static_cast<uint32_t>(schema.num_columns()));
  for (const ColumnDef& col : schema.columns()) {
    PutString(out, col.name);
    PutU8(out, static_cast<uint8_t>(col.type));
    PutU8(out, col.nullable ? 1 : 0);
  }
}

Status DeserializeSchema(ByteReader* in, Schema* out) {
  uint32_t n;
  FLOCK_RETURN_NOT_OK(in->GetU32(&n));
  std::vector<ColumnDef> columns;
  columns.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ColumnDef def;
    uint8_t raw_type, nullable;
    FLOCK_RETURN_NOT_OK(in->GetString(&def.name));
    FLOCK_RETURN_NOT_OK(in->GetU8(&raw_type));
    FLOCK_RETURN_NOT_OK(in->GetU8(&nullable));
    FLOCK_RETURN_NOT_OK(CheckDataType(raw_type, &def.type));
    def.nullable = nullable != 0;
    columns.push_back(std::move(def));
  }
  *out = Schema(std::move(columns));
  return Status::OK();
}

void SerializeBatch(const RecordBatch& batch, std::string* out) {
  const RecordBatch dense = batch.Materialize();
  SerializeSchema(dense.schema(), out);
  const size_t rows = dense.num_rows();
  PutU64(out, rows);
  for (size_t c = 0; c < dense.num_columns(); ++c) {
    const ColumnVector& col = *dense.column(c);
    for (size_t r = 0; r < rows; ++r) {
      if (col.IsNull(r)) {
        PutU8(out, 0);
        continue;
      }
      PutU8(out, 1);
      switch (col.type()) {
        case DataType::kBool:
          PutU8(out, col.bool_at(r) ? 1 : 0);
          break;
        case DataType::kInt64:
          PutI64(out, col.int_at(r));
          break;
        case DataType::kDouble:
          PutDouble(out, col.double_at(r));
          break;
        case DataType::kString:
          PutString(out, col.string_at(r));
          break;
      }
    }
  }
}

Status DeserializeBatch(ByteReader* in, RecordBatch* out) {
  Schema schema;
  FLOCK_RETURN_NOT_OK(DeserializeSchema(in, &schema));
  uint64_t rows;
  FLOCK_RETURN_NOT_OK(in->GetU64(&rows));
  RecordBatch batch(schema);
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    ColumnVector* col = batch.mutable_column(c);
    col->Reserve(rows);
    for (uint64_t r = 0; r < rows; ++r) {
      uint8_t valid;
      FLOCK_RETURN_NOT_OK(in->GetU8(&valid));
      if (!valid) {
        col->AppendNull();
        continue;
      }
      switch (schema.column(c).type) {
        case DataType::kBool: {
          uint8_t b;
          FLOCK_RETURN_NOT_OK(in->GetU8(&b));
          col->AppendBool(b != 0);
          break;
        }
        case DataType::kInt64: {
          int64_t i;
          FLOCK_RETURN_NOT_OK(in->GetI64(&i));
          col->AppendInt(i);
          break;
        }
        case DataType::kDouble: {
          double d;
          FLOCK_RETURN_NOT_OK(in->GetDouble(&d));
          col->AppendDouble(d);
          break;
        }
        case DataType::kString: {
          std::string s;
          FLOCK_RETURN_NOT_OK(in->GetString(&s));
          col->AppendString(std::move(s));
          break;
        }
      }
    }
  }
  *out = std::move(batch);
  return Status::OK();
}

}  // namespace flock::storage
