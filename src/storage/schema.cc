#include "storage/schema.h"

#include "common/string_util.h"

namespace flock::storage {

std::optional<size_t> Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  return std::nullopt;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += DataTypeName(columns_[i].type);
  }
  return out;
}

bool Schema::operator==(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (!EqualsIgnoreCase(columns_[i].name, other.columns_[i].name) ||
        columns_[i].type != other.columns_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace flock::storage
