#include "storage/record_batch.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace flock::storage {

RecordBatch::RecordBatch(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_columns());
  for (size_t i = 0; i < schema_.num_columns(); ++i) {
    columns_.push_back(
        std::make_shared<ColumnVector>(schema_.column(i).type));
  }
}

void RecordBatch::AddColumn(ColumnDef def, ColumnVectorPtr col) {
  FLOCK_DCHECK(selection_ == nullptr);
  FLOCK_DCHECK(columns_.empty() || col->size() == num_rows());
  schema_.AddColumn(std::move(def));
  columns_.push_back(std::move(col));
}

std::vector<Value> RecordBatch::GetRow(size_t r) const {
  if (selection_) r = (*selection_)[r];
  std::vector<Value> row;
  row.reserve(columns_.size());
  for (const auto& col : columns_) row.push_back(col->GetValue(r));
  return row;
}

Status RecordBatch::AppendRow(const std::vector<Value>& row) {
  FLOCK_DCHECK(selection_ == nullptr);
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values, batch has " +
        std::to_string(columns_.size()) + " columns");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    FLOCK_RETURN_NOT_OK(columns_[i]->AppendValue(row[i]));
  }
  return Status::OK();
}

RecordBatch RecordBatch::Select(const std::vector<uint32_t>& sel) const {
  RecordBatch out(schema_);
  if (selection_ == nullptr) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      out.columns_[c]->AppendSelected(*columns_[c], sel);
    }
    return out;
  }
  std::vector<uint32_t> physical(sel.size());
  for (size_t i = 0; i < sel.size(); ++i) {
    physical[i] = (*selection_)[sel[i]];
  }
  for (size_t c = 0; c < columns_.size(); ++c) {
    out.columns_[c]->AppendSelected(*columns_[c], physical);
  }
  return out;
}

RecordBatch RecordBatch::SelectView(std::vector<uint32_t> sel) const {
  RecordBatch out;
  out.schema_ = schema_;
  out.columns_ = columns_;
  if (selection_) {
    for (auto& s : sel) s = (*selection_)[s];
  }
  out.selection_ =
      std::make_shared<const std::vector<uint32_t>>(std::move(sel));
  return out;
}

RecordBatch RecordBatch::Materialize() const {
  if (selection_ == nullptr) return *this;
  RecordBatch out(schema_);
  for (size_t c = 0; c < columns_.size(); ++c) {
    out.columns_[c]->AppendSelected(*columns_[c], *selection_);
  }
  return out;
}

RecordBatch RecordBatch::Project(
    const std::vector<size_t>& column_indices) const {
  Schema schema;
  for (size_t idx : column_indices) schema.AddColumn(schema_.column(idx));
  RecordBatch out;
  out.schema_ = std::move(schema);
  for (size_t idx : column_indices) out.columns_.push_back(columns_[idx]);
  out.selection_ = selection_;
  return out;
}

void RecordBatch::Append(const RecordBatch& other) {
  FLOCK_DCHECK(selection_ == nullptr);
  FLOCK_DCHECK(columns_.empty() || other.num_columns() == num_columns());
  if (columns_.empty()) {
    schema_ = other.schema_;
    for (const auto& col : other.columns_) {
      columns_.push_back(std::make_shared<ColumnVector>(col->type()));
    }
  }
  if (other.selection_) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      columns_[c]->AppendSelected(*other.columns_[c], *other.selection_);
    }
    return;
  }
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c]->AppendRange(*other.columns_[c], 0,
                             other.columns_[c]->size());
  }
}

std::string RecordBatch::ToString(size_t max_rows) const {
  std::ostringstream out;
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    if (c > 0) out << " | ";
    out << schema_.column(c).name;
  }
  out << "\n";
  size_t n = std::min(num_rows(), max_rows);
  for (size_t r = 0; r < n; ++r) {
    size_t phys = selection_ ? (*selection_)[r] : r;
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) out << " | ";
      out << columns_[c]->GetValue(phys).ToString();
    }
    out << "\n";
  }
  if (num_rows() > n) {
    out << "... (" << num_rows() - n << " more rows)\n";
  }
  return out.str();
}

}  // namespace flock::storage
