#include "storage/column_vector.h"

#include "common/logging.h"

namespace flock::storage {

void ColumnVector::AppendBool(bool v) {
  FLOCK_DCHECK(type_ == DataType::kBool);
  validity_.push_back(1);
  bools_.push_back(v ? 1 : 0);
}

void ColumnVector::AppendInt(int64_t v) {
  FLOCK_DCHECK(type_ == DataType::kInt64);
  validity_.push_back(1);
  ints_.push_back(v);
}

void ColumnVector::AppendDouble(double v) {
  FLOCK_DCHECK(type_ == DataType::kDouble);
  validity_.push_back(1);
  doubles_.push_back(v);
}

void ColumnVector::AppendString(std::string v) {
  FLOCK_DCHECK(type_ == DataType::kString);
  validity_.push_back(1);
  strings_.push_back(std::move(v));
}

void ColumnVector::AppendNull() {
  validity_.push_back(0);
  switch (type_) {
    case DataType::kBool:
      bools_.push_back(0);
      break;
    case DataType::kInt64:
      ints_.push_back(0);
      break;
    case DataType::kDouble:
      doubles_.push_back(0.0);
      break;
    case DataType::kString:
      strings_.emplace_back();
      break;
  }
}

Status ColumnVector::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return Status::OK();
  }
  FLOCK_ASSIGN_OR_RETURN(Value cast, v.CastTo(type_));
  switch (type_) {
    case DataType::kBool:
      AppendBool(cast.bool_value());
      break;
    case DataType::kInt64:
      AppendInt(cast.int_value());
      break;
    case DataType::kDouble:
      AppendDouble(cast.double_value());
      break;
    case DataType::kString:
      AppendString(cast.string_value());
      break;
  }
  return Status::OK();
}

Value ColumnVector::GetValue(size_t i) const {
  if (IsNull(i)) return Value::Null(type_);
  switch (type_) {
    case DataType::kBool:
      return Value::Bool(bool_at(i));
    case DataType::kInt64:
      return Value::Int(int_at(i));
    case DataType::kDouble:
      return Value::Double(double_at(i));
    case DataType::kString:
      return Value::String(string_at(i));
  }
  return Value::Null(type_);
}

double ColumnVector::AsDouble(size_t i) const {
  if (IsNull(i)) return 0.0;
  switch (type_) {
    case DataType::kBool:
      return bool_at(i) ? 1.0 : 0.0;
    case DataType::kInt64:
      return static_cast<double>(int_at(i));
    case DataType::kDouble:
      return double_at(i);
    case DataType::kString:
      return 0.0;
  }
  return 0.0;
}

void ColumnVector::Reserve(size_t n) {
  validity_.reserve(n);
  switch (type_) {
    case DataType::kBool:
      bools_.reserve(n);
      break;
    case DataType::kInt64:
      ints_.reserve(n);
      break;
    case DataType::kDouble:
      doubles_.reserve(n);
      break;
    case DataType::kString:
      strings_.reserve(n);
      break;
  }
}

void ColumnVector::Clear() {
  validity_.clear();
  bools_.clear();
  ints_.clear();
  doubles_.clear();
  strings_.clear();
}

void ColumnVector::AppendRange(const ColumnVector& src, size_t begin,
                               size_t end) {
  FLOCK_DCHECK(src.type_ == type_);
  FLOCK_DCHECK(end <= src.size());
  validity_.insert(validity_.end(), src.validity_.begin() + begin,
                   src.validity_.begin() + end);
  switch (type_) {
    case DataType::kBool:
      bools_.insert(bools_.end(), src.bools_.begin() + begin,
                    src.bools_.begin() + end);
      break;
    case DataType::kInt64:
      ints_.insert(ints_.end(), src.ints_.begin() + begin,
                   src.ints_.begin() + end);
      break;
    case DataType::kDouble:
      doubles_.insert(doubles_.end(), src.doubles_.begin() + begin,
                      src.doubles_.begin() + end);
      break;
    case DataType::kString:
      strings_.insert(strings_.end(), src.strings_.begin() + begin,
                      src.strings_.begin() + end);
      break;
  }
}

void ColumnVector::AppendSelected(const ColumnVector& src,
                                  const std::vector<uint32_t>& sel) {
  FLOCK_DCHECK(src.type_ == type_);
  Reserve(size() + sel.size());
  for (uint32_t idx : sel) {
    validity_.push_back(src.validity_[idx]);
    switch (type_) {
      case DataType::kBool:
        bools_.push_back(src.bools_[idx]);
        break;
      case DataType::kInt64:
        ints_.push_back(src.ints_[idx]);
        break;
      case DataType::kDouble:
        doubles_.push_back(src.doubles_[idx]);
        break;
      case DataType::kString:
        strings_.push_back(src.strings_[idx]);
        break;
    }
  }
}

}  // namespace flock::storage
