#ifndef FLOCK_STORAGE_DATABASE_H_
#define FLOCK_STORAGE_DATABASE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status_or.h"
#include "storage/observer.h"
#include "storage/table.h"

namespace flock::storage {

/// The table catalog: name -> Table. Names are case-insensitive.
///
/// Thread-safe for catalog operations; per-table mutation is coordinated by
/// the engine above (queries are executed one statement at a time, with
/// intra-statement parallelism inside the executor).
class Database {
 public:
  Database() = default;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates a table. `segment_capacity` overrides the catalog default
  /// (0 = use the default); recovery passes the capacity recorded in the
  /// snapshot so the restored physical layout matches the original.
  Status CreateTable(const std::string& name, Schema schema,
                     size_t segment_capacity = 0);
  StatusOr<TablePtr> GetTable(const std::string& name) const;
  Status DropTable(const std::string& name);
  bool HasTable(const std::string& name) const;
  std::vector<std::string> ListTables() const;

  /// Installs `observer` on the catalog and on every current and future
  /// table (nullptr to clear). Set during single-threaded setup; the
  /// durability layer uses it to mirror mutations into the WAL.
  void set_observer(DatabaseObserver* observer);

  /// Segment capacity applied to tables created without an explicit one.
  /// Tests and benchmarks shrink it to force multi-segment tables from
  /// small row counts. Set during single-threaded setup.
  void set_default_segment_capacity(size_t capacity);
  size_t default_segment_capacity() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, TablePtr> tables_;  // keys lower-cased
  DatabaseObserver* observer_ = nullptr;    // not owned
  size_t default_segment_capacity_ = Table::kDefaultSegmentCapacity;
};

}  // namespace flock::storage

#endif  // FLOCK_STORAGE_DATABASE_H_
