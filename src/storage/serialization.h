#ifndef FLOCK_STORAGE_SERIALIZATION_H_
#define FLOCK_STORAGE_SERIALIZATION_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status_or.h"
#include "storage/record_batch.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace flock::storage {

/// Byte-oriented binary serialization of the storage value types, shared by
/// the WAL record codec and the checkpoint snapshot format. Everything is
/// written little-endian with explicit widths so files round-trip across
/// builds. Decoders are bounds-checked and return Status::DataLoss on
/// truncated or malformed input — on-disk bytes are untrusted.

// --- primitive writers (append to *out) ---
void PutU8(std::string* out, uint8_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutI64(std::string* out, int64_t v);
void PutDouble(std::string* out, double v);
/// u32 length prefix + raw bytes.
void PutString(std::string* out, std::string_view s);

/// Bounds-checked sequential reader over a byte buffer. Each getter
/// returns DataLoss when fewer bytes remain than requested.
class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(std::string_view buf)
      : data_(buf.data()), size_(buf.size()) {}

  Status GetU8(uint8_t* v);
  Status GetU32(uint32_t* v);
  Status GetU64(uint64_t* v);
  Status GetI64(int64_t* v);
  Status GetDouble(double* v);
  Status GetString(std::string* v);

  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }
  bool exhausted() const { return pos_ == size_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

// --- storage types ---
// Value: [u8 null?][u8 type][payload unless null]. NULLs keep their type.
void SerializeValue(const Value& v, std::string* out);
Status DeserializeValue(ByteReader* in, Value* out);

// Schema: u32 column count, then per column {string name, u8 type,
// u8 nullable}.
void SerializeSchema(const Schema& schema, std::string* out);
Status DeserializeSchema(ByteReader* in, Schema* out);

// RecordBatch: schema + u64 logical row count + columns written
// column-major as {u8 valid, payload-if-valid} per row. Any selection
// vector is resolved: the serialized form is always dense.
void SerializeBatch(const RecordBatch& batch, std::string* out);
Status DeserializeBatch(ByteReader* in, RecordBatch* out);

}  // namespace flock::storage

#endif  // FLOCK_STORAGE_SERIALIZATION_H_
