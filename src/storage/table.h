#ifndef FLOCK_STORAGE_TABLE_H_
#define FLOCK_STORAGE_TABLE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status_or.h"
#include "storage/observer.h"
#include "storage/record_batch.h"
#include "storage/schema.h"

namespace flock::storage {

/// Per-column summary statistics. The Flock cross-optimizer's
/// ModelCompression rule prunes decision-tree branches whose split threshold
/// lies outside [min, max] of the feeding column (paper §4.1: "model
/// compression exploiting input data statistics").
struct ColumnStats {
  double min = 0.0;
  double max = 0.0;
  size_t null_count = 0;
  size_t row_count = 0;
  bool numeric = false;
};

/// Metadata describing one table version. The paper treats every mutation as
/// producing a new version of the table in the provenance model (§4.2 C1);
/// Flock keeps this ledger and the provenance catalog mirrors it.
struct VersionInfo {
  uint64_t version = 0;
  std::string operation;  // "CREATE", "INSERT", "UPDATE", "DELETE"
  size_t rows_affected = 0;
};

/// An append-friendly columnar table with a version ledger.
class Table {
 public:
  Table(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }

  uint64_t current_version() const { return versions_.back().version; }
  const std::vector<VersionInfo>& versions() const { return versions_; }

  /// Appends rows; one version bump per call (a batch INSERT is one version).
  Status AppendBatch(const RecordBatch& batch);
  Status AppendRow(const std::vector<Value>& row);

  /// Copies rows [begin, end) into a fresh RecordBatch.
  RecordBatch ScanRange(size_t begin, size_t end) const;

  /// Copies the whole table.
  RecordBatch ScanAll() const { return ScanRange(0, num_rows_); }

  /// Direct column access for zero-copy kernels (index must be valid).
  const ColumnVector& column(size_t i) const { return *columns_[i]; }

  /// Deletes rows where `keep[i] == false`; returns rows removed.
  size_t FilterInPlace(const std::vector<bool>& keep);

  /// Overwrites column `col` at the given row indices; bumps version.
  Status UpdateColumn(size_t col, const std::vector<uint32_t>& rows,
                      const std::vector<Value>& values);

  /// Computes (and caches until next mutation) stats for column `i`.
  StatusOr<ColumnStats> GetStats(size_t i) const;

  /// Installs a mutation observer (nullptr to clear). Not synchronized
  /// with concurrent mutation; set during single-threaded setup.
  void set_observer(TableObserver* observer) { observer_ = observer; }

 private:
  void BumpVersion(const std::string& op, size_t rows);

  std::string name_;
  Schema schema_;
  std::vector<ColumnVectorPtr> columns_;
  size_t num_rows_ = 0;
  std::vector<VersionInfo> versions_;
  mutable std::vector<std::optional<ColumnStats>> stats_cache_;
  TableObserver* observer_ = nullptr;  // not owned
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace flock::storage

#endif  // FLOCK_STORAGE_TABLE_H_
