#ifndef FLOCK_STORAGE_TABLE_H_
#define FLOCK_STORAGE_TABLE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status_or.h"
#include "storage/observer.h"
#include "storage/record_batch.h"
#include "storage/schema.h"

namespace flock::storage {

/// Per-column summary statistics. The Flock cross-optimizer's
/// ModelCompression rule prunes decision-tree branches whose split threshold
/// lies outside [min, max] of the feeding column (paper §4.1: "model
/// compression exploiting input data statistics"), and the physical scan
/// operator prunes whole segments whose zone map cannot satisfy a pushed
/// filter conjunct.
struct ColumnStats {
  double min = 0.0;  // meaningful only when has_range
  double max = 0.0;  // meaningful only when has_range
  size_t null_count = 0;
  size_t row_count = 0;
  bool numeric = false;
  /// True when min/max describe at least one non-NULL numeric value.
  /// Empty, all-NULL, and non-numeric columns report has_range == false;
  /// callers must not read min/max then (historically they saw a bogus
  /// [0, 0] and could not tell it from a genuine zero range).
  bool has_range = false;
};

/// Metadata describing one table version. The paper treats every mutation as
/// producing a new version of the table in the provenance model (§4.2 C1);
/// Flock keeps this ledger and the provenance catalog mirrors it.
struct VersionInfo {
  uint64_t version = 0;
  std::string operation;  // "CREATE", "INSERT", "UPDATE", "DELETE"
  size_t rows_affected = 0;
};

/// A fixed-capacity horizontal slice of a table's columns. Rows append into
/// the *open* (last) segment until it reaches the table's segment capacity,
/// at which point it is sealed and a new open segment starts. Sealed
/// segments never grow again; UPDATE and DELETE rewrite affected segments
/// by swapping in *fresh* column vectors, so record batches viewing the old
/// vectors remain consistent snapshots. Zone maps (per-column min/max/null
/// counts) are maintained eagerly: incrementally on append, recomputed only
/// for segments a mutation rewrites.
struct Segment {
  std::vector<ColumnVectorPtr> columns;  // one per schema column
  std::vector<ColumnStats> zone_maps;    // one per schema column
  size_t num_rows = 0;
  bool sealed = false;
};

/// An append-friendly columnar table, stored as a sequence of fixed-capacity
/// immutable segments with per-segment zone maps, plus a version ledger.
///
/// Locking contract (enforced by the engine layer, documented here because
/// this class is where it matters): mutators (AppendBatch, AppendRow,
/// FilterInPlace, UpdateColumn, RestoreSegments, set_observer) require the
/// engine's exclusive lock — they are never concurrent with each other or
/// with readers. All const members, including GetStats, are safe to call
/// concurrently under the engine's shared lock: GetStats is the only const
/// member that writes shared state (the lazy aggregate-stats cache) and it
/// serializes those writes behind an internal mutex.
///
/// Zero-copy scans: ScanSegment returns views that share the segment's
/// column vectors. Views taken under the shared lock must not outlive the
/// statement that created them — a later append may grow the open segment's
/// vectors in place (sealed segments and mutation paths are safe: they swap
/// in fresh vectors instead of touching shared ones).
class Table {
 public:
  /// ~64K rows per segment: large enough to amortize per-segment metadata,
  /// small enough that zone maps discriminate on range predicates.
  static constexpr size_t kDefaultSegmentCapacity = 64 * 1024;

  /// `segment_capacity` is a knob for tests and benchmarks that need
  /// multi-segment tables with small row counts; production tables use
  /// the default.
  Table(std::string name, Schema schema,
        size_t segment_capacity = kDefaultSegmentCapacity);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }

  uint64_t current_version() const { return versions_.back().version; }
  const std::vector<VersionInfo>& versions() const { return versions_; }

  // --- Segment geometry -----------------------------------------------

  size_t num_segments() const { return segments_.size(); }
  size_t segment_capacity() const { return segment_capacity_; }
  /// Rows currently in segment `s` (may be below capacity after deletes).
  size_t segment_rows(size_t s) const { return segments_[s]->num_rows; }
  /// Global row index of segment `s`'s first row.
  size_t segment_row_begin(size_t s) const;
  /// Zone map for column `c` of segment `s` (maintained eagerly).
  const ColumnStats& segment_zone_map(size_t s, size_t c) const {
    return segments_[s]->zone_maps[c];
  }
  /// The shared column vector backing (s, c); read-only for callers.
  /// Exposed so tests can assert scan morsels alias segment memory.
  const ColumnVectorPtr& segment_column(size_t s, size_t c) const {
    return segments_[s]->columns[c];
  }

  // --- Reads ----------------------------------------------------------

  /// Zero-copy view of rows [begin, end) of segment `s`: the returned
  /// batch shares the segment's column vectors — dense when the range
  /// covers the whole segment, a selection view otherwise. See the class
  /// comment for view lifetime rules.
  RecordBatch ScanSegment(size_t s, size_t begin, size_t end) const;
  RecordBatch ScanSegment(size_t s) const {
    return ScanSegment(s, 0, segments_[s]->num_rows);
  }

  /// Copies rows [begin, end), in global row order, into a fresh batch
  /// (DML snapshots and other consumers that outlive the statement).
  RecordBatch ScanRange(size_t begin, size_t end) const;

  /// Copies the whole table.
  RecordBatch ScanAll() const { return ScanRange(0, num_rows_); }

  // --- Mutations (engine exclusive lock) ------------------------------

  /// Appends rows; one version bump per call (a batch INSERT is one
  /// version). Rows fill the open segment, then spill into new segments.
  Status AppendBatch(const RecordBatch& batch);
  Status AppendRow(const std::vector<Value>& row);

  /// Deletes rows where `keep[i] == false`; returns rows removed. Only
  /// segments that actually lose rows are rewritten (their zone maps
  /// recomputed); untouched segments keep their vectors and zone maps.
  /// Segments emptied entirely are dropped.
  size_t FilterInPlace(const std::vector<bool>& keep);

  /// Overwrites column `col` at the given global row indices; bumps
  /// version. Rewrites only the touched segments' column `col` (and its
  /// zone maps); other columns and segments are untouched.
  Status UpdateColumn(size_t col, const std::vector<uint32_t>& rows,
                      const std::vector<Value>& values);

  /// Installs `segments` as the table's exact physical layout (one batch
  /// per segment, in order). Recovery-only: the table must be empty; no
  /// observer fires; one version bump covers all rows.
  Status RestoreSegments(const std::vector<RecordBatch>& segments);

  // --- Statistics -----------------------------------------------------

  /// Aggregate stats for column `i`, folded from the per-segment zone
  /// maps (never scans data) and cached until the next mutation of that
  /// column. Safe under the engine's shared lock (see class comment).
  StatusOr<ColumnStats> GetStats(size_t i) const;

  /// True when column `i`'s aggregate is currently cached — a test hook
  /// for asserting invalidation stays column-granular.
  bool stats_cached(size_t i) const;

  /// Installs a mutation observer (nullptr to clear). Not synchronized
  /// with concurrent mutation; set during single-threaded setup.
  void set_observer(TableObserver* observer) { observer_ = observer; }

 private:
  void BumpVersion(const std::string& op, size_t rows);
  /// The open segment, creating one if the last is sealed/missing.
  Segment* OpenSegment();
  /// Appends rows [begin, end) of `dense` into segments, extending zone
  /// maps incrementally and sealing segments as they fill.
  void AppendRowsToSegments(const RecordBatch& dense);
  /// Recomputes the zone map of column `c` in segment `seg` from scratch.
  static void RecomputeZoneMap(Segment* seg, size_t c);
  /// Invalidates the aggregate-stats cache (all columns / one column).
  void InvalidateStatsCache();
  void InvalidateStatsCache(size_t col);

  std::string name_;
  Schema schema_;
  size_t segment_capacity_;
  std::vector<std::unique_ptr<Segment>> segments_;
  size_t num_rows_ = 0;
  std::vector<VersionInfo> versions_;
  /// Guards stats_cache_ only: GetStats may race with itself under the
  /// engine's shared lock; mutators also take it when invalidating.
  mutable std::mutex stats_mu_;
  mutable std::vector<std::optional<ColumnStats>> stats_cache_;
  TableObserver* observer_ = nullptr;  // not owned
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace flock::storage

#endif  // FLOCK_STORAGE_TABLE_H_
