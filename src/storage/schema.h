#ifndef FLOCK_STORAGE_SCHEMA_H_
#define FLOCK_STORAGE_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "storage/value.h"

namespace flock::storage {

/// One column definition: name + type (+ nullability).
struct ColumnDef {
  std::string name;
  DataType type = DataType::kInt64;
  bool nullable = true;
};

/// Ordered collection of column definitions. Copyable value type.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns)
      : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  void AddColumn(ColumnDef def) { columns_.push_back(std::move(def)); }

  /// Case-insensitive lookup; nullopt when absent.
  std::optional<size_t> FindColumn(const std::string& name) const;

  /// "name TYPE, name TYPE, ..." — used in error messages and EXPLAIN.
  std::string ToString() const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<ColumnDef> columns_;
};

}  // namespace flock::storage

#endif  // FLOCK_STORAGE_SCHEMA_H_
