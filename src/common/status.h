#ifndef FLOCK_COMMON_STATUS_H_
#define FLOCK_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace flock {

/// Error taxonomy shared across all Flock subsystems. Follows the
/// RocksDB/Arrow convention of returning rich status objects instead of
/// throwing exceptions across API boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kNotSupported,
  kInternal,
  kAborted,
  kOutOfRange,
  kPermissionDenied,
  kParseError,
  kUnavailable,
  kDataLoss,
  kRedirect,
  kCorruption,
  kDeadlineExceeded,
  kCancelled,
};

/// Returns a short human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Operation outcome: either OK or an error code with a message.
///
/// Cheap to copy in the OK case (empty message). All Flock APIs that can
/// fail return `Status` or `StatusOr<T>`.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  /// Transient overload: the caller may retry later (admission control
  /// sheds requests with this instead of queueing unboundedly).
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  /// Unrecoverable corruption of persistent state: checksum mismatches,
  /// truncated snapshots, mid-log torn records. Distinct from Internal
  /// (a programming error) — DataLoss means the bytes on disk are bad.
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  /// The request is valid but must be executed elsewhere: read-only
  /// replicas answer writes and DDL with this, naming the primary in the
  /// message. Distinct from Unavailable (retrying here will never help)
  /// and PermissionDenied (the caller is allowed to write — just not on
  /// this node).
  static Status Redirect(std::string msg) {
    return Status(StatusCode::kRedirect, std::move(msg));
  }
  /// A serialized artifact (model file, pipeline text) failed structural
  /// validation: truncated sections, garbled numbers, impossible counts.
  /// Distinct from ParseError (malformed *user input*, e.g. bad SQL) and
  /// DataLoss (bad bytes in the WAL/snapshot storage layer): Corruption
  /// means an artifact we once wrote — or were handed as one — no longer
  /// decodes, and the load must fail without taking the process down.
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  /// The request's deadline elapsed before the work completed. Never
  /// retryable (the caller's time budget is spent); retry loops must
  /// surface it immediately.
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// The request was explicitly cancelled (`.kill <session>`, client
  /// disconnect). Like DeadlineExceeded this is terminal, not transient:
  /// retrying a cancelled statement would resurrect work the caller
  /// asked to abort.
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// Propagates a non-OK status to the caller. Standard early-return macro.
#define FLOCK_RETURN_NOT_OK(expr)            \
  do {                                       \
    ::flock::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (0)

/// Evaluates a StatusOr expression, assigning the value on success and
/// returning the error on failure. `lhs` must be a declaration.
#define FLOCK_ASSIGN_OR_RETURN(lhs, expr)                    \
  FLOCK_ASSIGN_OR_RETURN_IMPL(                               \
      FLOCK_STATUS_CONCAT(_status_or, __LINE__), lhs, expr)

#define FLOCK_ASSIGN_OR_RETURN_IMPL(var, lhs, expr) \
  auto var = (expr);                                \
  if (!var.ok()) return var.status();               \
  lhs = std::move(var).value();

#define FLOCK_STATUS_CONCAT_IMPL(x, y) x##y
#define FLOCK_STATUS_CONCAT(x, y) FLOCK_STATUS_CONCAT_IMPL(x, y)

}  // namespace flock

#endif  // FLOCK_COMMON_STATUS_H_
