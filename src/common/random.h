#ifndef FLOCK_COMMON_RANDOM_H_
#define FLOCK_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace flock {

/// Deterministic xorshift64* PRNG. Every workload generator in Flock takes an
/// explicit seed so experiments are reproducible run-to-run.
class Random {
 public:
  explicit Random(uint64_t seed = 88172645463325252ULL)
      : state_(seed == 0 ? 0x9E3779B97F4A7C15ULL : seed) {}

  uint64_t NextUint64() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_ * 0x2545F4914F6CDD1DULL;
  }

  /// Uniform in [0, n).
  uint64_t Uniform(uint64_t n) { return n == 0 ? 0 : NextUint64() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    if (hi <= lo) return lo;
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Standard normal via Box-Muller.
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
  }

  bool NextBool(double p_true = 0.5) { return NextDouble() < p_true; }

 private:
  uint64_t state_;
};

/// Zipf-distributed sampler over ranks 1..n with skew `s`.
///
/// Used by the notebook-corpus generator (Figure 2): package popularity in
/// public notebooks is heavy-tailed, and coverage-vs-top-K curves are a
/// direct function of this distribution.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s, uint64_t seed);

  /// Returns a rank in [0, n).
  size_t Next();

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
  Random rng_;
};

inline ZipfSampler::ZipfSampler(size_t n, double s, uint64_t seed)
    : rng_(seed) {
  cdf_.resize(n);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = sum;
  }
  for (size_t i = 0; i < n; ++i) cdf_[i] /= sum;
}

inline size_t ZipfSampler::Next() {
  double u = rng_.NextDouble();
  // Binary search the CDF.
  size_t lo = 0, hi = cdf_.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo < cdf_.size() ? lo : cdf_.size() - 1;
}

}  // namespace flock

#endif  // FLOCK_COMMON_RANDOM_H_
