#ifndef FLOCK_COMMON_STRING_UTIL_H_
#define FLOCK_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace flock {

/// Splits `s` on `delim`, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char delim);

/// Splits `s` on any whitespace run, dropping empty pieces.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Removes leading and trailing whitespace.
std::string Trim(std::string_view s);

/// ASCII lower/upper-casing (SQL keywords are ASCII).
std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Formats `v` with `precision` digits after the decimal point.
std::string FormatDouble(double v, int precision);

/// Formats a count with thousands separators, e.g. 22330 -> "22,330".
std::string FormatWithCommas(long long v);

}  // namespace flock

#endif  // FLOCK_COMMON_STRING_UTIL_H_
