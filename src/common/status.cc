#include "common/status.h"

namespace flock {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kPermissionDenied:
      return "PermissionDenied";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kRedirect:
      return "Redirect";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace flock
