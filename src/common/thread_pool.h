#ifndef FLOCK_COMMON_THREAD_POOL_H_
#define FLOCK_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace flock {

/// Fixed-size worker pool.
///
/// The SQL executor uses this for morsel-driven parallelism: a table scan is
/// chopped into morsels and each worker pulls batches through its pipeline.
/// This is the mechanism behind the paper's "automatic parallelization of the
/// inference task in SQL Server" (Figure 4, up to 5.5x over standalone ORT).
class ThreadPool {
 public:
  /// Creates `num_threads` workers (>= 1; 0 means hardware concurrency).
  /// `max_queue_depth` bounds the number of *queued* (not yet running)
  /// tasks that TrySubmit will accept; 0 = unbounded. Submit ignores the
  /// bound — only TrySubmit sheds.
  explicit ThreadPool(size_t num_threads, size_t max_queue_depth = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Bounded-queue submission for admission control: enqueues `task`
  /// unless the pending queue is at `max_queue_depth` (or the pool is
  /// shutting down), in which case it returns false without blocking and
  /// the task is dropped.
  bool TrySubmit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void WaitIdle();

  size_t num_threads() const { return workers_.size(); }
  size_t max_queue_depth() const { return max_queue_depth_; }

  /// Tasks enqueued but not yet picked up by a worker.
  size_t queue_depth() const;

  /// Runs `fn(i)` for i in [0, n) across the pool and waits for completion.
  /// Work is divided into contiguous chunks, one per worker.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  size_t max_queue_depth_ = 0;  // 0 = unbounded (TrySubmit only)
  mutable std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace flock

#endif  // FLOCK_COMMON_THREAD_POOL_H_
