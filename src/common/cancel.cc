#include "common/cancel.h"

#include <algorithm>
#include <limits>
#include <string>

namespace flock {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             CancelToken::Clock::now().time_since_epoch())
      .count();
}

thread_local CancelToken g_current_token;

}  // namespace

CancelToken CancelToken::Cancellable() {
  CancelToken token;
  token.state_ = std::make_shared<State>();
  return token;
}

CancelToken CancelToken::WithDeadline(double timeout_ms) {
  CancelToken token = Cancellable();
  if (timeout_ms > 0) {
    token.state_->deadline_ns =
        NowNs() + static_cast<int64_t>(timeout_ms * 1e6);
  }
  return token;
}

void CancelToken::Cancel() const {
  if (state_ == nullptr) return;
  bool expected = false;
  if (state_->cancelled.compare_exchange_strong(
          expected, true, std::memory_order_acq_rel)) {
    state_->cancelled_at_ns.store(NowNs(), std::memory_order_release);
  }
}

bool CancelToken::expired() const {
  return state_ != nullptr && state_->deadline_ns != 0 &&
         NowNs() >= state_->deadline_ns;
}

double CancelToken::RemainingMs() const {
  if (state_ == nullptr || state_->deadline_ns == 0) {
    return std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(state_->deadline_ns - NowNs()) / 1e6;
}

Status CancelToken::Check(const char* where) const {
  if (state_ == nullptr) return Status::OK();
  // Explicit kill wins over expiry: a `.kill` on an already-late request
  // should report as Cancelled, the operator's intent.
  if (state_->cancelled.load(std::memory_order_acquire)) {
    return Status::Cancelled(std::string("request cancelled (") + where +
                             ")");
  }
  if (state_->deadline_ns != 0 && NowNs() >= state_->deadline_ns) {
    return Status::DeadlineExceeded(
        std::string("request deadline exceeded (") + where + ")");
  }
  return Status::OK();
}

double CancelToken::CancelLatencyMs() const {
  if (state_ == nullptr) return 0.0;
  const int64_t now = NowNs();
  const int64_t cancelled_at =
      state_->cancelled_at_ns.load(std::memory_order_acquire);
  int64_t fired_at = 0;
  if (cancelled_at != 0) {
    fired_at = cancelled_at;
  } else if (state_->deadline_ns != 0 && now >= state_->deadline_ns) {
    fired_at = state_->deadline_ns;
  } else {
    return 0.0;
  }
  return std::max<double>(0.0, static_cast<double>(now - fired_at) / 1e6);
}

const CancelToken& CancelToken::Current() { return g_current_token; }

CancelScope::CancelScope(const CancelToken& token)
    : previous_(g_current_token) {
  g_current_token = token;
}

CancelScope::~CancelScope() { g_current_token = previous_; }

}  // namespace flock
