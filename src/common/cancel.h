#ifndef FLOCK_COMMON_CANCEL_H_
#define FLOCK_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "common/status.h"

namespace flock {

/// Cooperative cancellation handle shared between a request's submitter
/// and the workers executing it. A token carries two independent stop
/// signals:
///
///   - an explicit cancel flag, flipped by `.kill <session>` or a client
///     teardown, and
///   - an optional deadline (steady-clock), set from the server's
///     `--default-deadline-ms` or a per-session override.
///
/// Tokens are value types over a shared state block, so the transport
/// thread that handles `.kill` can flip a flag the executor's morsel
/// loop is polling on a worker thread. A default-constructed token is
/// "null": `Check()` is always OK and costs one pointer test, so
/// hot loops can poll unconditionally.
///
/// Polling contract (see DESIGN.md "Cancellation contract"): checks are
/// cooperative and happen at natural batch boundaries — executor morsels,
/// dense-kernel blocks, micro-batch waits, replica catch-up rounds —
/// never by interrupting a thread. Between two poll points the engine
/// may do a bounded amount of work after cancellation; it must never
/// block unboundedly without re-checking.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Null token: never cancelled, no deadline.
  CancelToken() = default;

  /// A token with no deadline that can only be cancelled explicitly.
  static CancelToken Cancellable();

  /// A token that expires `timeout_ms` from now (and can also be
  /// cancelled explicitly). Non-positive timeouts behave like
  /// Cancellable().
  static CancelToken WithDeadline(double timeout_ms);

  bool valid() const { return state_ != nullptr; }

  /// Flips the explicit-cancel flag. Safe from any thread; idempotent.
  /// Records the cancel instant so CancelLatencyMs() can measure how
  /// long the engine took to notice.
  void Cancel() const;

  /// True once Cancel() was called.
  bool cancelled() const {
    return state_ != nullptr &&
           state_->cancelled.load(std::memory_order_acquire);
  }

  /// True once the deadline (if any) has passed.
  bool expired() const;

  /// Milliseconds until the deadline; +infinity when there is none.
  double RemainingMs() const;

  /// The poll point: OK while the request may keep running, otherwise
  /// Cancelled (explicit kill wins) or DeadlineExceeded. `where` names
  /// the poll site and is embedded in the error message so a kill can be
  /// traced to the loop that honoured it.
  Status Check(const char* where) const;

  /// Milliseconds elapsed since the stop signal fired: since Cancel()
  /// for explicit kills, since the deadline instant for expiries.
  /// Returns 0 when the token never fired. This is the "cancellation
  /// latency" the serving layer records per aborted request.
  double CancelLatencyMs() const;

  /// True when both tokens share one state block (copies of the same
  /// request token). Null tokens compare equal to each other.
  bool SameStateAs(const CancelToken& other) const {
    return state_ == other.state_;
  }

  /// Thread-local current token, installed by CancelScope. Deep layers
  /// that cannot take a token parameter through every call signature
  /// (scoring kernels invoked from expression evaluation, the
  /// micro-batch coalescer) poll this instead. Returns a null token
  /// when no scope is active.
  static const CancelToken& Current();

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    // Nanoseconds-since-steady-epoch; 0 = no deadline.
    int64_t deadline_ns = 0;
    // Set once by Cancel() for latency accounting; 0 = never cancelled.
    std::atomic<int64_t> cancelled_at_ns{0};
  };

  std::shared_ptr<State> state_;
};

/// RAII guard installing `token` as CancelToken::Current() for this
/// thread. The executor wraps each morsel-drive in one (worker threads),
/// and SqlEngine::Execute wraps the whole statement (caller thread), so
/// any code reached during execution can poll the request's token.
class CancelScope {
 public:
  explicit CancelScope(const CancelToken& token);
  ~CancelScope();

  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

 private:
  CancelToken previous_;
};

}  // namespace flock

#endif  // FLOCK_COMMON_CANCEL_H_
