#ifndef FLOCK_COMMON_STOPWATCH_H_
#define FLOCK_COMMON_STOPWATCH_H_

#include <chrono>

namespace flock {

/// Wall-clock stopwatch used by benchmark harnesses and provenance capture
/// latency accounting.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace flock

#endif  // FLOCK_COMMON_STOPWATCH_H_
