#ifndef FLOCK_COMMON_STATUS_OR_H_
#define FLOCK_COMMON_STATUS_OR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace flock {

/// Holds either a value of type `T` or an error `Status`.
///
/// Mirrors absl::StatusOr / arrow::Result. Construction from a value is
/// implicit so functions can `return value;` directly; construction from a
/// non-OK Status is implicit so `return Status::NotFound(...)` works too.
template <typename T>
class StatusOr {
 public:
  /// Constructs from a success value.
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs from an error; `status` must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status w/o value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Access the contained value. Requires `ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace flock

#endif  // FLOCK_COMMON_STATUS_OR_H_
