#ifndef FLOCK_COMMON_HASH_H_
#define FLOCK_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace flock {

/// FNV-1a 64-bit over raw bytes; used for hash-join/aggregate buckets and
/// provenance-node identity fingerprints.
inline uint64_t Fnv1a(const void* data, size_t len,
                      uint64_t seed = 14695981039346656037ULL) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

inline uint64_t HashString(std::string_view s, uint64_t seed =
                               14695981039346656037ULL) {
  return Fnv1a(s.data(), s.size(), seed);
}

inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  // Boost-style mix adapted to 64 bits.
  a ^= b + 0x9E3779B97F4A7C15ULL + (a << 12) + (a >> 4);
  return a;
}

inline uint64_t HashInt64(int64_t v, uint64_t seed = 0x9E3779B97F4A7C15ULL) {
  uint64_t x = static_cast<uint64_t>(v) + seed;
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace flock

#endif  // FLOCK_COMMON_HASH_H_
