#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace flock {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string Trim(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return std::string(s.substr(begin, end - begin));
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string FormatWithCommas(long long v) {
  std::string digits = std::to_string(v < 0 ? -v : v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (v < 0) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace flock
