#ifndef FLOCK_COMMON_LOGGING_H_
#define FLOCK_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace flock {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; flushes one line to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process after logging.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define FLOCK_LOG(level)                                              \
  ::flock::internal::LogMessage(::flock::LogLevel::k##level, __FILE__, \
                                __LINE__)

/// Invariant check: aborts with a message when `cond` is false. Used for
/// programmer errors only; recoverable conditions return Status instead.
#define FLOCK_CHECK(cond)                                       \
  if (!(cond))                                                  \
  ::flock::internal::FatalLogMessage(__FILE__, __LINE__, #cond)

#ifndef NDEBUG
#define FLOCK_DCHECK(cond) FLOCK_CHECK(cond)
#else
#define FLOCK_DCHECK(cond) \
  if (false)               \
  ::flock::internal::FatalLogMessage(__FILE__, __LINE__, #cond)
#endif

}  // namespace flock

#endif  // FLOCK_COMMON_LOGGING_H_
