#include "common/thread_pool.h"

#include <algorithm>

namespace flock {

ThreadPool::ThreadPool(size_t num_threads, size_t max_queue_depth)
    : max_queue_depth_(max_queue_depth) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

bool ThreadPool::TrySubmit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (shutdown_) return false;
    if (max_queue_depth_ != 0 && tasks_.size() >= max_queue_depth_) {
      return false;
    }
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
  return true;
}

size_t ThreadPool::queue_depth() const {
  std::unique_lock<std::mutex> lock(mu_);
  return tasks_.size();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  size_t num_chunks = std::min(n, workers_.size());
  size_t chunk = (n + num_chunks - 1) / num_chunks;
  for (size_t c = 0; c < num_chunks; ++c) {
    size_t begin = c * chunk;
    size_t end = std::min(n, begin + chunk);
    Submit([begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) fn(i);
    });
  }
  WaitIdle();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (shutdown_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace flock
