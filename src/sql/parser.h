#ifndef FLOCK_SQL_PARSER_H_
#define FLOCK_SQL_PARSER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status_or.h"
#include "sql/ast.h"
#include "sql/token.h"

namespace flock::sql {

/// Recursive-descent parser for Flock's SQL dialect.
///
/// Supported: SELECT (joins, GROUP BY/HAVING, ORDER BY, LIMIT/OFFSET,
/// DISTINCT), INSERT (VALUES and SELECT forms), UPDATE, DELETE,
/// CREATE/DROP TABLE, CREATE/DROP MODEL, EXPLAIN, scalar expressions with
/// CASE/IN/BETWEEN/LIKE/CAST/IS NULL, and function calls including
/// PREDICT(model, features...).
class Parser {
 public:
  /// Parses exactly one statement (a trailing ';' is allowed).
  static StatusOr<StatementPtr> Parse(const std::string& sql);

  /// Parses a ';'-separated script into a statement list.
  static StatusOr<std::vector<StatementPtr>> ParseScript(
      const std::string& sql);

  /// Parses a standalone scalar expression (used in tests and by the policy
  /// engine's condition language).
  static StatusOr<ExprPtr> ParseExpression(const std::string& text);

 private:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek(size_t ahead = 0) const;
  const Token& Advance();
  bool Check(TokenType t) const;
  bool CheckKeyword(const std::string& kw) const;
  bool MatchKeyword(const std::string& kw);
  bool Match(TokenType t);
  Status Expect(TokenType t, const std::string& what);
  Status ExpectKeyword(const std::string& kw);

  StatusOr<StatementPtr> ParseStatement();
  StatusOr<std::unique_ptr<SelectStatement>> ParseSelect();
  StatusOr<StatementPtr> ParseInsert();
  StatusOr<StatementPtr> ParseUpdate();
  StatusOr<StatementPtr> ParseDelete();
  StatusOr<StatementPtr> ParseCreate();
  StatusOr<StatementPtr> ParseDrop();

  StatusOr<TableRef> ParseTableRef();

  // Expression precedence ladder.
  StatusOr<ExprPtr> ParseExpr();          // OR
  StatusOr<ExprPtr> ParseAnd();
  StatusOr<ExprPtr> ParseNot();
  StatusOr<ExprPtr> ParseComparison();    // = <> < <= > >= LIKE IN BETWEEN IS
  StatusOr<ExprPtr> ParseAdditive();
  StatusOr<ExprPtr> ParseMultiplicative();
  StatusOr<ExprPtr> ParseUnary();
  StatusOr<ExprPtr> ParsePrimary();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace flock::sql

#endif  // FLOCK_SQL_PARSER_H_
