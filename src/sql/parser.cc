#include "sql/parser.h"

#include "common/string_util.h"
#include "sql/lexer.h"

namespace flock::sql {

using storage::DataType;
using storage::Value;

StatusOr<StatementPtr> Parser::Parse(const std::string& sql) {
  FLOCK_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  FLOCK_ASSIGN_OR_RETURN(StatementPtr stmt, parser.ParseStatement());
  parser.Match(TokenType::kSemicolon);
  if (!parser.Check(TokenType::kEof)) {
    return Status::ParseError("trailing input after statement near '" +
                              parser.Peek().text + "'");
  }
  return stmt;
}

StatusOr<std::vector<StatementPtr>> Parser::ParseScript(
    const std::string& sql) {
  FLOCK_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  std::vector<StatementPtr> out;
  while (!parser.Check(TokenType::kEof)) {
    if (parser.Match(TokenType::kSemicolon)) continue;
    FLOCK_ASSIGN_OR_RETURN(StatementPtr stmt, parser.ParseStatement());
    out.push_back(std::move(stmt));
  }
  return out;
}

StatusOr<ExprPtr> Parser::ParseExpression(const std::string& text) {
  FLOCK_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  FLOCK_ASSIGN_OR_RETURN(ExprPtr e, parser.ParseExpr());
  if (!parser.Check(TokenType::kEof)) {
    return Status::ParseError("trailing input after expression");
  }
  return e;
}

const Token& Parser::Peek(size_t ahead) const {
  size_t i = pos_ + ahead;
  if (i >= tokens_.size()) i = tokens_.size() - 1;
  return tokens_[i];
}

const Token& Parser::Advance() {
  const Token& t = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::Check(TokenType t) const { return Peek().type == t; }

bool Parser::CheckKeyword(const std::string& kw) const {
  return Peek().type == TokenType::kKeyword && Peek().text == kw;
}

bool Parser::MatchKeyword(const std::string& kw) {
  if (CheckKeyword(kw)) {
    Advance();
    return true;
  }
  return false;
}

bool Parser::Match(TokenType t) {
  if (Check(t)) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::Expect(TokenType t, const std::string& what) {
  if (!Check(t)) {
    return Status::ParseError("expected " + what + " near '" + Peek().text +
                              "' at offset " + std::to_string(Peek().offset));
  }
  Advance();
  return Status::OK();
}

Status Parser::ExpectKeyword(const std::string& kw) {
  if (!CheckKeyword(kw)) {
    return Status::ParseError("expected " + kw + " near '" + Peek().text +
                              "'");
  }
  Advance();
  return Status::OK();
}

StatusOr<StatementPtr> Parser::ParseStatement() {
  if (CheckKeyword("EXPLAIN")) {
    Advance();
    bool analyze = false;
    if (CheckKeyword("ANALYZE")) {
      Advance();
      analyze = true;
    }
    FLOCK_ASSIGN_OR_RETURN(StatementPtr inner, ParseStatement());
    auto stmt = std::make_unique<ExplainStatement>();
    stmt->inner = std::move(inner);
    stmt->analyze = analyze;
    return StatementPtr(std::move(stmt));
  }
  if (CheckKeyword("SELECT")) {
    FLOCK_ASSIGN_OR_RETURN(auto select, ParseSelect());
    return StatementPtr(std::move(select));
  }
  if (CheckKeyword("INSERT")) return ParseInsert();
  if (CheckKeyword("UPDATE")) return ParseUpdate();
  if (CheckKeyword("DELETE")) return ParseDelete();
  if (CheckKeyword("CREATE")) return ParseCreate();
  if (CheckKeyword("DROP")) return ParseDrop();
  return Status::ParseError("unexpected start of statement: '" +
                            Peek().text + "'");
}

StatusOr<std::unique_ptr<SelectStatement>> Parser::ParseSelect() {
  FLOCK_RETURN_NOT_OK(ExpectKeyword("SELECT"));
  auto stmt = std::make_unique<SelectStatement>();
  stmt->distinct = MatchKeyword("DISTINCT");
  if (stmt->distinct) {
    // no-op; ALL is the default
  } else {
    MatchKeyword("ALL");
  }

  // Select list.
  while (true) {
    SelectItem item;
    if (Check(TokenType::kStar)) {
      Advance();
      item.expr = Expr::MakeStar();
    } else {
      FLOCK_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("AS")) {
        if (!Check(TokenType::kIdentifier) &&
            !Check(TokenType::kKeyword)) {
          return Status::ParseError("expected alias after AS");
        }
        item.alias = Advance().text;
      } else if (Check(TokenType::kIdentifier)) {
        item.alias = Advance().text;
      }
    }
    stmt->select_list.push_back(std::move(item));
    if (!Match(TokenType::kComma)) break;
  }

  if (MatchKeyword("FROM")) {
    FLOCK_ASSIGN_OR_RETURN(stmt->from, ParseTableRef());
    // Joins.
    while (true) {
      JoinClause join;
      if (MatchKeyword("CROSS")) {
        FLOCK_RETURN_NOT_OK(ExpectKeyword("JOIN"));
        join.type = JoinType::kCross;
        FLOCK_ASSIGN_OR_RETURN(join.table, ParseTableRef());
        stmt->joins.push_back(std::move(join));
        continue;
      }
      bool left = false;
      if (CheckKeyword("LEFT")) {
        Advance();
        MatchKeyword("OUTER");
        left = true;
      } else if (CheckKeyword("INNER")) {
        Advance();
      } else if (!CheckKeyword("JOIN")) {
        if (Match(TokenType::kComma)) {
          // Comma join == cross join.
          join.type = JoinType::kCross;
          FLOCK_ASSIGN_OR_RETURN(join.table, ParseTableRef());
          stmt->joins.push_back(std::move(join));
          continue;
        }
        break;
      }
      FLOCK_RETURN_NOT_OK(ExpectKeyword("JOIN"));
      join.type = left ? JoinType::kLeft : JoinType::kInner;
      FLOCK_ASSIGN_OR_RETURN(join.table, ParseTableRef());
      FLOCK_RETURN_NOT_OK(ExpectKeyword("ON"));
      FLOCK_ASSIGN_OR_RETURN(join.condition, ParseExpr());
      stmt->joins.push_back(std::move(join));
    }
  }

  if (MatchKeyword("WHERE")) {
    FLOCK_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }

  if (MatchKeyword("GROUP")) {
    FLOCK_RETURN_NOT_OK(ExpectKeyword("BY"));
    while (true) {
      FLOCK_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      stmt->group_by.push_back(std::move(e));
      if (!Match(TokenType::kComma)) break;
    }
  }

  if (MatchKeyword("HAVING")) {
    FLOCK_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
  }

  if (MatchKeyword("ORDER")) {
    FLOCK_RETURN_NOT_OK(ExpectKeyword("BY"));
    while (true) {
      OrderByItem item;
      FLOCK_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("DESC")) {
        item.ascending = false;
      } else {
        MatchKeyword("ASC");
      }
      stmt->order_by.push_back(std::move(item));
      if (!Match(TokenType::kComma)) break;
    }
  }

  if (MatchKeyword("LIMIT")) {
    if (!Check(TokenType::kNumber)) {
      return Status::ParseError("expected number after LIMIT");
    }
    stmt->limit = static_cast<int64_t>(Advance().number);
  }
  if (MatchKeyword("OFFSET")) {
    if (!Check(TokenType::kNumber)) {
      return Status::ParseError("expected number after OFFSET");
    }
    stmt->offset = static_cast<int64_t>(Advance().number);
  }

  return stmt;
}

StatusOr<TableRef> Parser::ParseTableRef() {
  if (!Check(TokenType::kIdentifier)) {
    return Status::ParseError("expected table name near '" + Peek().text +
                              "'");
  }
  TableRef ref;
  ref.table_name = Advance().text;
  if (MatchKeyword("AS")) {
    if (!Check(TokenType::kIdentifier)) {
      return Status::ParseError("expected alias after AS");
    }
    ref.alias = Advance().text;
  } else if (Check(TokenType::kIdentifier)) {
    ref.alias = Advance().text;
  }
  return ref;
}

StatusOr<StatementPtr> Parser::ParseInsert() {
  FLOCK_RETURN_NOT_OK(ExpectKeyword("INSERT"));
  FLOCK_RETURN_NOT_OK(ExpectKeyword("INTO"));
  auto stmt = std::make_unique<InsertStatement>();
  if (!Check(TokenType::kIdentifier)) {
    return Status::ParseError("expected table name in INSERT");
  }
  stmt->table_name = Advance().text;

  if (Match(TokenType::kLParen)) {
    while (true) {
      if (!Check(TokenType::kIdentifier)) {
        return Status::ParseError("expected column name in INSERT list");
      }
      stmt->columns.push_back(Advance().text);
      if (!Match(TokenType::kComma)) break;
    }
    FLOCK_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
  }

  if (CheckKeyword("SELECT")) {
    FLOCK_ASSIGN_OR_RETURN(stmt->select, ParseSelect());
    return StatementPtr(std::move(stmt));
  }

  FLOCK_RETURN_NOT_OK(ExpectKeyword("VALUES"));
  while (true) {
    FLOCK_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
    std::vector<ExprPtr> row;
    while (true) {
      FLOCK_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      row.push_back(std::move(e));
      if (!Match(TokenType::kComma)) break;
    }
    FLOCK_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
    stmt->rows.push_back(std::move(row));
    if (!Match(TokenType::kComma)) break;
  }
  return StatementPtr(std::move(stmt));
}

StatusOr<StatementPtr> Parser::ParseUpdate() {
  FLOCK_RETURN_NOT_OK(ExpectKeyword("UPDATE"));
  auto stmt = std::make_unique<UpdateStatement>();
  if (!Check(TokenType::kIdentifier)) {
    return Status::ParseError("expected table name in UPDATE");
  }
  stmt->table_name = Advance().text;
  FLOCK_RETURN_NOT_OK(ExpectKeyword("SET"));
  while (true) {
    if (!Check(TokenType::kIdentifier)) {
      return Status::ParseError("expected column name in SET");
    }
    std::string col = Advance().text;
    FLOCK_RETURN_NOT_OK(Expect(TokenType::kEq, "'='"));
    FLOCK_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    stmt->assignments.emplace_back(std::move(col), std::move(e));
    if (!Match(TokenType::kComma)) break;
  }
  if (MatchKeyword("WHERE")) {
    FLOCK_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  return StatementPtr(std::move(stmt));
}

StatusOr<StatementPtr> Parser::ParseDelete() {
  FLOCK_RETURN_NOT_OK(ExpectKeyword("DELETE"));
  FLOCK_RETURN_NOT_OK(ExpectKeyword("FROM"));
  auto stmt = std::make_unique<DeleteStatement>();
  if (!Check(TokenType::kIdentifier)) {
    return Status::ParseError("expected table name in DELETE");
  }
  stmt->table_name = Advance().text;
  if (MatchKeyword("WHERE")) {
    FLOCK_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  return StatementPtr(std::move(stmt));
}

StatusOr<StatementPtr> Parser::ParseCreate() {
  FLOCK_RETURN_NOT_OK(ExpectKeyword("CREATE"));
  if (MatchKeyword("MODEL")) {
    auto stmt = std::make_unique<CreateModelStatement>();
    if (!Check(TokenType::kIdentifier)) {
      return Status::ParseError("expected model name");
    }
    stmt->model_name = Advance().text;
    FLOCK_RETURN_NOT_OK(ExpectKeyword("FROM"));
    if (!Check(TokenType::kString)) {
      return Status::ParseError(
          "expected serialized pipeline string after FROM");
    }
    stmt->definition = Advance().text;
    return StatementPtr(std::move(stmt));
  }
  FLOCK_RETURN_NOT_OK(ExpectKeyword("TABLE"));
  auto stmt = std::make_unique<CreateTableStatement>();
  if (!Check(TokenType::kIdentifier)) {
    return Status::ParseError("expected table name in CREATE TABLE");
  }
  stmt->table_name = Advance().text;
  FLOCK_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
  while (true) {
    if (MatchKeyword("PRIMARY")) {
      // PRIMARY KEY (col, ...) — accepted and recorded as a no-op
      // constraint; Flock does not enforce uniqueness.
      FLOCK_RETURN_NOT_OK(ExpectKeyword("KEY"));
      FLOCK_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
      while (!Check(TokenType::kRParen)) Advance();
      FLOCK_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
    } else {
      if (!Check(TokenType::kIdentifier)) {
        return Status::ParseError("expected column name near '" +
                                  Peek().text + "'");
      }
      storage::ColumnDef def;
      def.name = Advance().text;
      if (!Check(TokenType::kIdentifier) && !Check(TokenType::kKeyword)) {
        return Status::ParseError("expected type for column " + def.name);
      }
      std::string type_name = Advance().text;
      FLOCK_ASSIGN_OR_RETURN(def.type, storage::DataTypeFromName(type_name));
      // Optional (n) length, e.g. VARCHAR(25), DECIMAL(15,2).
      if (Match(TokenType::kLParen)) {
        while (!Check(TokenType::kRParen) && !Check(TokenType::kEof)) {
          Advance();
        }
        FLOCK_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      }
      // Optional NOT NULL.
      if (MatchKeyword("NOT")) {
        FLOCK_RETURN_NOT_OK(ExpectKeyword("NULL"));
        def.nullable = false;
      } else if (MatchKeyword("NULL")) {
        def.nullable = true;
      }
      stmt->schema.AddColumn(std::move(def));
    }
    if (!Match(TokenType::kComma)) break;
  }
  FLOCK_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
  return StatementPtr(std::move(stmt));
}

StatusOr<StatementPtr> Parser::ParseDrop() {
  FLOCK_RETURN_NOT_OK(ExpectKeyword("DROP"));
  if (MatchKeyword("MODEL")) {
    auto stmt = std::make_unique<DropModelStatement>();
    if (!Check(TokenType::kIdentifier)) {
      return Status::ParseError("expected model name");
    }
    stmt->model_name = Advance().text;
    return StatementPtr(std::move(stmt));
  }
  FLOCK_RETURN_NOT_OK(ExpectKeyword("TABLE"));
  auto stmt = std::make_unique<DropTableStatement>();
  if (!Check(TokenType::kIdentifier)) {
    return Status::ParseError("expected table name in DROP TABLE");
  }
  stmt->table_name = Advance().text;
  return StatementPtr(std::move(stmt));
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

StatusOr<ExprPtr> Parser::ParseExpr() {
  FLOCK_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
  while (MatchKeyword("OR")) {
    FLOCK_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
    lhs = Expr::MakeBinary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

StatusOr<ExprPtr> Parser::ParseAnd() {
  FLOCK_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
  while (MatchKeyword("AND")) {
    FLOCK_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
    lhs = Expr::MakeBinary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

StatusOr<ExprPtr> Parser::ParseNot() {
  if (MatchKeyword("NOT")) {
    FLOCK_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
    return Expr::MakeUnary(UnaryOp::kNot, std::move(operand));
  }
  return ParseComparison();
}

StatusOr<ExprPtr> Parser::ParseComparison() {
  FLOCK_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
  while (true) {
    BinaryOp op;
    if (Match(TokenType::kEq)) {
      op = BinaryOp::kEq;
    } else if (Match(TokenType::kNotEq)) {
      op = BinaryOp::kNotEq;
    } else if (Match(TokenType::kLtEq)) {
      op = BinaryOp::kLtEq;
    } else if (Match(TokenType::kLt)) {
      op = BinaryOp::kLt;
    } else if (Match(TokenType::kGtEq)) {
      op = BinaryOp::kGtEq;
    } else if (Match(TokenType::kGt)) {
      op = BinaryOp::kGt;
    } else if (CheckKeyword("LIKE") ||
               (CheckKeyword("NOT") && Peek(1).text == "LIKE")) {
      bool negated = MatchKeyword("NOT");
      FLOCK_RETURN_NOT_OK(ExpectKeyword("LIKE"));
      FLOCK_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      ExprPtr like = Expr::MakeBinary(BinaryOp::kLike, std::move(lhs),
                                      std::move(rhs));
      lhs = negated ? Expr::MakeUnary(UnaryOp::kNot, std::move(like))
                    : std::move(like);
      continue;
    } else if (CheckKeyword("IS")) {
      Advance();
      bool negated = MatchKeyword("NOT");
      FLOCK_RETURN_NOT_OK(ExpectKeyword("NULL"));
      lhs = Expr::MakeIsNull(std::move(lhs), negated);
      continue;
    } else if (CheckKeyword("IN") ||
               (CheckKeyword("NOT") && Peek(1).text == "IN")) {
      bool negated = MatchKeyword("NOT");
      FLOCK_RETURN_NOT_OK(ExpectKeyword("IN"));
      FLOCK_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
      auto in = std::make_unique<Expr>();
      in->kind = ExprKind::kIn;
      in->negated = negated;
      in->children.push_back(std::move(lhs));
      while (true) {
        FLOCK_ASSIGN_OR_RETURN(ExprPtr option, ParseExpr());
        in->children.push_back(std::move(option));
        if (!Match(TokenType::kComma)) break;
      }
      FLOCK_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      lhs = std::move(in);
      continue;
    } else if (CheckKeyword("BETWEEN") ||
               (CheckKeyword("NOT") && Peek(1).text == "BETWEEN")) {
      bool negated = MatchKeyword("NOT");
      FLOCK_RETURN_NOT_OK(ExpectKeyword("BETWEEN"));
      FLOCK_ASSIGN_OR_RETURN(ExprPtr low, ParseAdditive());
      FLOCK_RETURN_NOT_OK(ExpectKeyword("AND"));
      FLOCK_ASSIGN_OR_RETURN(ExprPtr high, ParseAdditive());
      auto between = std::make_unique<Expr>();
      between->kind = ExprKind::kBetween;
      between->negated = negated;
      between->children.push_back(std::move(lhs));
      between->children.push_back(std::move(low));
      between->children.push_back(std::move(high));
      lhs = std::move(between);
      continue;
    } else {
      break;
    }
    FLOCK_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
    lhs = Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

StatusOr<ExprPtr> Parser::ParseAdditive() {
  FLOCK_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
  while (true) {
    BinaryOp op;
    if (Match(TokenType::kPlus)) {
      op = BinaryOp::kAdd;
    } else if (Match(TokenType::kMinus)) {
      op = BinaryOp::kSub;
    } else {
      break;
    }
    FLOCK_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
    lhs = Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

StatusOr<ExprPtr> Parser::ParseMultiplicative() {
  FLOCK_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
  while (true) {
    BinaryOp op;
    if (Match(TokenType::kStar)) {
      op = BinaryOp::kMul;
    } else if (Match(TokenType::kSlash)) {
      op = BinaryOp::kDiv;
    } else if (Match(TokenType::kPercent)) {
      op = BinaryOp::kMod;
    } else {
      break;
    }
    FLOCK_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
    lhs = Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

StatusOr<ExprPtr> Parser::ParseUnary() {
  if (Match(TokenType::kMinus)) {
    FLOCK_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
    return Expr::MakeUnary(UnaryOp::kNeg, std::move(operand));
  }
  if (Match(TokenType::kPlus)) {
    return ParseUnary();
  }
  return ParsePrimary();
}

StatusOr<ExprPtr> Parser::ParsePrimary() {
  const Token& tok = Peek();
  switch (tok.type) {
    case TokenType::kNumber: {
      Advance();
      if (tok.is_integer) {
        return Expr::MakeLiteral(
            Value::Int(static_cast<int64_t>(tok.number)));
      }
      return Expr::MakeLiteral(Value::Double(tok.number));
    }
    case TokenType::kString: {
      Advance();
      return Expr::MakeLiteral(Value::String(tok.text));
    }
    case TokenType::kLParen: {
      Advance();
      FLOCK_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      FLOCK_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      return e;
    }
    case TokenType::kKeyword: {
      if (tok.text == "NULL") {
        Advance();
        return Expr::MakeLiteral(Value::Null());
      }
      if (tok.text == "TRUE") {
        Advance();
        return Expr::MakeLiteral(Value::Bool(true));
      }
      if (tok.text == "FALSE") {
        Advance();
        return Expr::MakeLiteral(Value::Bool(false));
      }
      if (tok.text == "CAST") {
        Advance();
        FLOCK_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
        FLOCK_ASSIGN_OR_RETURN(ExprPtr operand, ParseExpr());
        FLOCK_RETURN_NOT_OK(ExpectKeyword("AS"));
        if (!Check(TokenType::kIdentifier) && !Check(TokenType::kKeyword)) {
          return Status::ParseError("expected type name in CAST");
        }
        std::string type_name = Advance().text;
        FLOCK_ASSIGN_OR_RETURN(DataType type,
                               storage::DataTypeFromName(type_name));
        FLOCK_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
        return Expr::MakeCast(std::move(operand), type);
      }
      if (tok.text == "CASE") {
        Advance();
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kCase;
        while (MatchKeyword("WHEN")) {
          FLOCK_ASSIGN_OR_RETURN(ExprPtr when, ParseExpr());
          FLOCK_RETURN_NOT_OK(ExpectKeyword("THEN"));
          FLOCK_ASSIGN_OR_RETURN(ExprPtr then, ParseExpr());
          e->children.push_back(std::move(when));
          e->children.push_back(std::move(then));
        }
        if (e->children.empty()) {
          return Status::ParseError("CASE requires at least one WHEN");
        }
        if (MatchKeyword("ELSE")) {
          FLOCK_ASSIGN_OR_RETURN(ExprPtr other, ParseExpr());
          e->children.push_back(std::move(other));
          e->has_else = true;
        }
        FLOCK_RETURN_NOT_OK(ExpectKeyword("END"));
        return StatusOr<ExprPtr>(std::move(e));
      }
      if (tok.text == "PREDICT") {
        // PREDICT(model_name, arg, ...) — the in-DBMS scoring intrinsic.
        Advance();
        FLOCK_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
        std::vector<ExprPtr> args;
        if (!Check(TokenType::kRParen)) {
          while (true) {
            FLOCK_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
            args.push_back(std::move(arg));
            if (!Match(TokenType::kComma)) break;
          }
        }
        FLOCK_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
        return Expr::MakeFunction("PREDICT", std::move(args));
      }
      return Status::ParseError("unexpected keyword '" + tok.text +
                                "' in expression");
    }
    case TokenType::kStar:
      Advance();
      return Expr::MakeStar();
    case TokenType::kIdentifier: {
      std::string first = Advance().text;
      // Function call?
      if (Check(TokenType::kLParen)) {
        Advance();
        std::vector<ExprPtr> args;
        bool distinct = MatchKeyword("DISTINCT");
        if (!Check(TokenType::kRParen)) {
          while (true) {
            if (Check(TokenType::kStar)) {
              Advance();
              args.push_back(Expr::MakeStar());
            } else {
              FLOCK_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
              args.push_back(std::move(arg));
            }
            if (!Match(TokenType::kComma)) break;
          }
        }
        FLOCK_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
        ExprPtr fn = Expr::MakeFunction(first, std::move(args));
        fn->distinct = distinct;
        return fn;
      }
      // Qualified column: table.column
      if (Match(TokenType::kDot)) {
        if (Check(TokenType::kStar)) {
          Advance();
          // table.* — treated as bare * scoped by the planner.
          ExprPtr star = Expr::MakeStar();
          star->table_name = first;
          return star;
        }
        if (!Check(TokenType::kIdentifier)) {
          return Status::ParseError("expected column after '" + first +
                                    ".'");
        }
        std::string column = Advance().text;
        return Expr::MakeColumnRef(first, column);
      }
      return Expr::MakeColumnRef("", first);
    }
    default:
      return Status::ParseError("unexpected token '" + tok.text +
                                "' in expression");
  }
}

}  // namespace flock::sql
