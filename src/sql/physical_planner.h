#ifndef FLOCK_SQL_PHYSICAL_PLANNER_H_
#define FLOCK_SQL_PHYSICAL_PLANNER_H_

#include "common/status_or.h"
#include "sql/function_registry.h"
#include "sql/logical_plan.h"
#include "sql/physical_plan.h"

namespace flock::sql {

/// Lowers an optimized LogicalPlan into an executable PhysicalOperator
/// tree. Lowering decisions made here (not at runtime):
///  * join algorithm — equi-conjuncts become HashJoinBuild + HashJoinProbe
///    (probe side streams, so the join parallelizes); everything else
///    becomes a NestedLoopJoin;
///  * PREDICT hoisting — calls to scoring functions (ScalarFunction::
///    scoring) inside Filter/Project/Aggregate expressions are pulled into
///    a dedicated PredictScore operator below the consumer, so inference
///    appears in EXPLAIN with its own metrics. Thresholded calls produced
///    by the cross-optimizer's push-up (PREDICT_GT & co) hoist the same
///    way, preserving that optimization.
class PhysicalPlanner {
 public:
  explicit PhysicalPlanner(const FunctionRegistry* registry)
      : registry_(registry) {}

  StatusOr<PhysicalOperatorPtr> Lower(const LogicalPlan& plan) const;

 private:
  StatusOr<PhysicalOperatorPtr> LowerFilter(const LogicalPlan& plan) const;
  StatusOr<PhysicalOperatorPtr> LowerProject(const LogicalPlan& plan) const;
  StatusOr<PhysicalOperatorPtr> LowerJoin(const LogicalPlan& plan) const;
  StatusOr<PhysicalOperatorPtr> LowerAggregate(const LogicalPlan& plan) const;

  /// Collects the maximal scoring-call subtrees of `e` into `calls`
  /// (deduplicated structurally).
  void CollectScoringCalls(const Expr& e, std::vector<ExprPtr>* calls) const;

  /// Wraps `child` in a PredictScoreOp computing `calls`; returns the new
  /// child. `rewrite` targets then reference the appended score columns.
  StatusOr<PhysicalOperatorPtr> InsertPredictScore(
      PhysicalOperatorPtr child, std::vector<ExprPtr> calls) const;

  const FunctionRegistry* registry_;
};

}  // namespace flock::sql

#endif  // FLOCK_SQL_PHYSICAL_PLANNER_H_
