#ifndef FLOCK_SQL_PLAN_CACHE_H_
#define FLOCK_SQL_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "sql/logical_plan.h"

namespace flock::sql {

/// Normalizes a SQL statement into a plan-cache key: whitespace runs
/// collapse to one space, `--` comments are stripped (they separate
/// tokens like whitespace), everything outside single-quoted string
/// literals is lower-cased, and a trailing ';' is dropped. A doubled
/// quote (`''`) inside a literal is the escaped-quote idiom and does not
/// terminate the string. Two statements that differ only in case,
/// layout or comments therefore share one cache entry:
///
///   "SELECT  id FROM t;"        ->  "select id from t"
///   "select id\nfrom T"         ->  "select id from t"
///   "SELECT id FROM t -- hot"   ->  "select id from t"
///   "SELECT 'don''t' FROM t"    ->  "select 'don''t' from t"
std::string NormalizeSql(const std::string& sql);

/// Cumulative counters, readable while the cache is in use.
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t invalidations = 0;  // entries dropped by Clear()

  double hit_rate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// Thread-safe LRU cache of optimized logical plans keyed by normalized
/// SQL text — the prepared-statement path of the serving layer. A hit
/// skips parse/plan/optimize entirely; the caller still lowers the
/// (cloned) plan to a fresh physical tree per execution, so concurrent
/// executions of the same cached statement never share operator state.
///
/// Invalidation contract: cached plans embed resolved storage::TablePtr
/// handles and (after cross-optimization) specialized model names, so any
/// DDL — CREATE/DROP TABLE, CREATE/DROP MODEL — and any model redeploy
/// must Clear() the cache. Plain DML does not: scans read the live table
/// through the resolved handle. SqlEngine and FlockEngine enforce this;
/// see SqlEngine::Execute and FlockEngine's locking contract.
class PlanCache {
 public:
  explicit PlanCache(size_t capacity = 256) : capacity_(capacity) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns a private clone of the cached plan for `key`, or nullptr on
  /// miss. Counts a hit/miss and refreshes LRU order.
  PlanPtr Lookup(const std::string& key);

  /// Inserts (or replaces) the plan for `key`, evicting the least
  /// recently used entry when at capacity. The cache takes ownership;
  /// callers keep executing their own copy.
  void Insert(const std::string& key, PlanPtr plan);

  /// Drops every entry (DDL / model-redeploy invalidation).
  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }
  PlanCacheStats stats() const;

 private:
  using LruList = std::list<std::pair<std::string, PlanPtr>>;

  size_t capacity_;
  mutable std::mutex mu_;
  LruList lru_;  // front = most recently used
  std::unordered_map<std::string, LruList::iterator> index_;
  PlanCacheStats stats_;
};

}  // namespace flock::sql

#endif  // FLOCK_SQL_PLAN_CACHE_H_
