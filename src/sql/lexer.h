#ifndef FLOCK_SQL_LEXER_H_
#define FLOCK_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status_or.h"
#include "sql/token.h"

namespace flock::sql {

/// Returns true for words the parser treats as reserved.
bool IsKeyword(const std::string& upper);

/// Tokenizes a SQL string. Strings use single quotes with '' escapes;
/// comments are `-- ...` to end of line.
StatusOr<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace flock::sql

#endif  // FLOCK_SQL_LEXER_H_
