#ifndef FLOCK_SQL_TOKEN_H_
#define FLOCK_SQL_TOKEN_H_

#include <string>

namespace flock::sql {

enum class TokenType {
  kIdentifier,
  kKeyword,
  kNumber,
  kString,
  // punctuation / operators
  kComma,
  kLParen,
  kRParen,
  kSemicolon,
  kDot,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kEq,
  kNotEq,
  kLt,
  kLtEq,
  kGt,
  kGtEq,
  kEof,
};

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;   // identifier/keyword (upper-cased for keywords) or raw
  double number = 0;  // numeric literal value
  bool is_integer = false;
  size_t offset = 0;  // byte offset in the input, for error messages
};

}  // namespace flock::sql

#endif  // FLOCK_SQL_TOKEN_H_
