#ifndef FLOCK_SQL_PLANNER_H_
#define FLOCK_SQL_PLANNER_H_

#include <string>
#include <vector>

#include "common/status_or.h"
#include "sql/ast.h"
#include "sql/function_registry.h"
#include "sql/logical_plan.h"
#include "storage/database.h"

namespace flock::sql {

/// Binds a parsed SELECT against the catalog and produces a logical plan.
///
/// Binding resolves every column reference to an index in its node's input
/// schema and infers types along the way. Aggregation is planned as an
/// Aggregate node whose output columns (group keys, then aggregate values)
/// the SELECT/HAVING/ORDER BY expressions are rewritten to reference.
class Planner {
 public:
  Planner(const storage::Database* db, const FunctionRegistry* registry)
      : db_(db), registry_(registry) {}

  StatusOr<PlanPtr> PlanSelect(const SelectStatement& stmt);

 private:
  /// Name-resolution scope for one FROM clause: each table binding maps an
  /// alias to a contiguous column range in the concatenated schema.
  struct Scope {
    struct Binding {
      std::string name;  // alias if present, else table name
      size_t start = 0;
      size_t count = 0;
    };
    std::vector<Binding> bindings;
    storage::Schema schema;
  };

  StatusOr<Scope> BuildFromScope(const SelectStatement& stmt,
                                 PlanPtr* plan_out);

  /// Resolves column refs in `e` against `scope`; sets column_index and
  /// resolved_type.
  Status BindExpr(Expr* e, const Scope& scope);

  /// Binds against a plain output schema (post-projection / post-aggregate).
  Status BindExprToSchema(Expr* e, const storage::Schema& schema);

  const storage::Database* db_;
  const FunctionRegistry* registry_;
};

}  // namespace flock::sql

#endif  // FLOCK_SQL_PLANNER_H_
