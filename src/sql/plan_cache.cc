#include "sql/plan_cache.h"

#include <cctype>

namespace flock::sql {

std::string NormalizeSql(const std::string& sql) {
  std::string out;
  out.reserve(sql.size());
  bool in_string = false;
  bool pending_space = false;
  for (size_t i = 0; i < sql.size(); ++i) {
    char c = sql[i];
    if (in_string) {
      out += c;
      if (c == '\'') {
        // '' inside a literal is an escaped quote, not a terminator:
        // emit both characters and stay in the string.
        if (i + 1 < sql.size() && sql[i + 1] == '\'') {
          out += '\'';
          ++i;
        } else {
          in_string = false;
        }
      }
      continue;
    }
    if (c == '-' && i + 1 < sql.size() && sql[i + 1] == '-') {
      // A '--' comment runs to end of line and separates tokens like
      // whitespace; swallowing it (rather than copying it) keeps
      // `SELECT 1 -- note` and `SELECT 1` on one cache entry and stops
      // an apostrophe inside the comment from toggling string state.
      while (i < sql.size() && sql[i] != '\n') ++i;
      pending_space = true;
      continue;
    }
    if (c == '\'') {
      if (pending_space && !out.empty()) out += ' ';
      pending_space = false;
      out += c;
      in_string = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = true;
      continue;
    }
    if (pending_space && !out.empty()) out += ' ';
    pending_space = false;
    out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  // Drop a trailing statement terminator (and any space before it).
  while (!out.empty() && (out.back() == ';' || out.back() == ' ')) {
    out.pop_back();
  }
  return out;
}

PlanPtr PlanCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return it->second->second->Clone();
}

void PlanCache::Insert(const std::string& key, PlanPtr plan) {
  if (capacity_ == 0 || plan == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.invalidations;
  }
  lru_.emplace_front(key, std::move(plan));
  index_[key] = lru_.begin();
  ++stats_.insertions;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.invalidations += lru_.size();
  index_.clear();
  lru_.clear();
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace flock::sql
