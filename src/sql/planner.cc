#include "sql/planner.h"

#include <set>

#include "common/string_util.h"
#include "sql/evaluator.h"

namespace flock::sql {

using storage::DataType;
using storage::Schema;

namespace {

/// Derives a result-column name from an expression.
std::string DeriveName(const Expr& e, size_t position) {
  if (e.kind == ExprKind::kColumnRef) return e.column_name;
  if (e.kind == ExprKind::kFunction) return ToLower(e.function_name);
  return "col" + std::to_string(position);
}

/// Replaces, in-place, every subtree of `*e` equal to `target` with a column
/// reference to `index` of type `type`. Returns true if a replacement
/// happened anywhere.
bool ReplaceSubtree(ExprPtr* e, const Expr& target, int index,
                    DataType type) {
  if ((*e)->Equals(target)) {
    auto ref = Expr::MakeColumnRef("", target.ToString());
    ref->column_index = index;
    ref->resolved_type = type;
    *e = std::move(ref);
    return true;
  }
  bool any = false;
  for (auto& c : (*e)->children) {
    if (c && ReplaceSubtree(&c, target, index, type)) any = true;
  }
  return any;
}

/// Collects aggregate calls in `e` into `out` (deduplicated by structure).
void CollectAggregates(const Expr& e, std::vector<const Expr*>* out) {
  if (e.kind == ExprKind::kFunction && IsAggregateFunction(e.function_name)) {
    for (const Expr* existing : *out) {
      if (existing->Equals(e)) return;
    }
    out->push_back(&e);
    return;  // aggregates do not nest
  }
  for (const auto& c : e.children) {
    if (c) CollectAggregates(*c, out);
  }
}

}  // namespace

Status Planner::BindExpr(Expr* e, const Scope& scope) {
  if (e->kind == ExprKind::kFunction && e->function_name == "PREDICT") {
    // PREDICT(model, features...): the first argument is a model reference,
    // not a column — rewrite it to a string literal naming the model.
    if (e->children.empty()) {
      return Status::InvalidArgument("PREDICT requires a model argument");
    }
    if (e->children[0]->kind == ExprKind::kColumnRef) {
      e->children[0] = Expr::MakeLiteral(
          storage::Value::String(e->children[0]->column_name));
    }
    for (size_t i = 1; i < e->children.size(); ++i) {
      FLOCK_RETURN_NOT_OK(BindExpr(e->children[i].get(), scope));
    }
    return Status::OK();
  }
  if (e->kind == ExprKind::kColumnRef) {
    if (e->column_index >= 0) return Status::OK();  // already bound
    int found = -1;
    if (!e->table_name.empty()) {
      for (const auto& b : scope.bindings) {
        if (!EqualsIgnoreCase(b.name, e->table_name)) continue;
        for (size_t i = 0; i < b.count; ++i) {
          if (EqualsIgnoreCase(scope.schema.column(b.start + i).name,
                               e->column_name)) {
            found = static_cast<int>(b.start + i);
            break;
          }
        }
        if (found >= 0) break;
      }
      if (found < 0) {
        return Status::NotFound("column not found: " + e->table_name + "." +
                                e->column_name);
      }
    } else {
      int matches = 0;
      for (size_t i = 0; i < scope.schema.num_columns(); ++i) {
        if (EqualsIgnoreCase(scope.schema.column(i).name, e->column_name)) {
          ++matches;
          if (found < 0) found = static_cast<int>(i);
        }
      }
      if (matches == 0) {
        return Status::NotFound("column not found: " + e->column_name);
      }
      if (matches > 1) {
        return Status::InvalidArgument("ambiguous column: " +
                                       e->column_name);
      }
    }
    e->column_index = found;
    e->resolved_type = scope.schema.column(static_cast<size_t>(found)).type;
    return Status::OK();
  }
  for (auto& c : e->children) {
    if (c) FLOCK_RETURN_NOT_OK(BindExpr(c.get(), scope));
  }
  return Status::OK();
}

Status Planner::BindExprToSchema(Expr* e, const Schema& schema) {
  // Post-projection binding: qualifiers are gone, match by column name only
  // (a qualified ref like d.floor matches output column "floor").
  if (e->kind == ExprKind::kColumnRef) {
    if (e->column_index >= 0) return Status::OK();
    int found = -1;
    int matches = 0;
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      if (EqualsIgnoreCase(schema.column(i).name, e->column_name)) {
        ++matches;
        if (found < 0) found = static_cast<int>(i);
      }
    }
    if (matches == 0) {
      return Status::NotFound("column not found: " + e->column_name);
    }
    if (matches > 1) {
      return Status::InvalidArgument("ambiguous column: " + e->column_name);
    }
    e->column_index = found;
    e->resolved_type = schema.column(static_cast<size_t>(found)).type;
    return Status::OK();
  }
  for (auto& c : e->children) {
    if (c) FLOCK_RETURN_NOT_OK(BindExprToSchema(c.get(), schema));
  }
  return Status::OK();
}

StatusOr<Planner::Scope> Planner::BuildFromScope(const SelectStatement& stmt,
                                                 PlanPtr* plan_out) {
  Scope scope;
  if (!stmt.from.has_value()) {
    *plan_out = nullptr;
    return scope;
  }
  FLOCK_ASSIGN_OR_RETURN(storage::TablePtr table,
                         db_->GetTable(stmt.from->table_name));
  PlanPtr plan = LogicalPlan::MakeScan(stmt.from->table_name, table);
  std::string base_name = stmt.from->alias.empty() ? stmt.from->table_name
                                                   : stmt.from->alias;
  scope.bindings.push_back(
      Scope::Binding{base_name, 0, table->schema().num_columns()});
  scope.schema = table->schema();

  for (const auto& join : stmt.joins) {
    FLOCK_ASSIGN_OR_RETURN(storage::TablePtr right,
                           db_->GetTable(join.table.table_name));
    std::string right_name = join.table.alias.empty()
                                 ? join.table.table_name
                                 : join.table.alias;
    size_t start = scope.schema.num_columns();
    for (const auto& col : right->schema().columns()) {
      scope.schema.AddColumn(col);
    }
    scope.bindings.push_back(
        Scope::Binding{right_name, start, right->schema().num_columns()});

    auto join_plan = std::make_unique<LogicalPlan>();
    join_plan->kind = PlanKind::kJoin;
    join_plan->join_type = join.type;
    join_plan->children.push_back(std::move(plan));
    join_plan->children.push_back(
        LogicalPlan::MakeScan(join.table.table_name, right));
    join_plan->output_schema = scope.schema;
    if (join.condition) {
      join_plan->join_condition = join.condition->Clone();
      FLOCK_RETURN_NOT_OK(BindExpr(join_plan->join_condition.get(), scope));
    }
    plan = std::move(join_plan);
  }
  *plan_out = std::move(plan);
  return scope;
}

StatusOr<PlanPtr> Planner::PlanSelect(const SelectStatement& stmt) {
  PlanPtr plan;
  FLOCK_ASSIGN_OR_RETURN(Scope scope, BuildFromScope(stmt, &plan));

  if (plan == nullptr) {
    // SELECT without FROM: evaluate over a one-row dummy table.
    Schema schema({storage::ColumnDef{"__dummy", DataType::kInt64, false}});
    auto dummy = std::make_shared<storage::Table>("__dual", schema);
    FLOCK_RETURN_NOT_OK(dummy->AppendRow({storage::Value::Int(0)}));
    plan = LogicalPlan::MakeScan("__dual", dummy);
    scope.schema = schema;
    scope.bindings.push_back(Scope::Binding{"__dual", 0, 1});
  }

  // WHERE.
  if (stmt.where) {
    ExprPtr predicate = stmt.where->Clone();
    FLOCK_RETURN_NOT_OK(BindExpr(predicate.get(), scope));
    if (ContainsAggregate(*predicate)) {
      return Status::InvalidArgument("aggregates are not allowed in WHERE");
    }
    plan = LogicalPlan::MakeFilter(std::move(plan), std::move(predicate));
  }

  // Expand SELECT * and prepare output expressions.
  std::vector<ExprPtr> select_exprs;
  std::vector<std::string> select_names;
  for (const auto& item : stmt.select_list) {
    if (item.expr->kind == ExprKind::kStar) {
      const std::string& qualifier = item.expr->table_name;
      for (const auto& b : scope.bindings) {
        if (!qualifier.empty() && !EqualsIgnoreCase(b.name, qualifier)) {
          continue;
        }
        for (size_t i = 0; i < b.count; ++i) {
          auto ref = Expr::MakeColumnRef(
              b.name, scope.schema.column(b.start + i).name);
          ref->column_index = static_cast<int>(b.start + i);
          ref->resolved_type = scope.schema.column(b.start + i).type;
          select_names.push_back(scope.schema.column(b.start + i).name);
          select_exprs.push_back(std::move(ref));
        }
      }
      continue;
    }
    ExprPtr e = item.expr->Clone();
    FLOCK_RETURN_NOT_OK(BindExpr(e.get(), scope));
    select_names.push_back(item.alias.empty()
                               ? DeriveName(*e, select_exprs.size())
                               : item.alias);
    select_exprs.push_back(std::move(e));
  }

  // Aggregation.
  bool any_aggregate = !stmt.group_by.empty();
  for (const auto& e : select_exprs) {
    if (ContainsAggregate(*e)) any_aggregate = true;
  }
  ExprPtr having = stmt.having ? stmt.having->Clone() : nullptr;
  if (having) {
    FLOCK_RETURN_NOT_OK(BindExpr(having.get(), scope));
    if (ContainsAggregate(*having)) any_aggregate = true;
  }

  if (any_aggregate) {
    auto agg = std::make_unique<LogicalPlan>();
    agg->kind = PlanKind::kAggregate;

    // Bind group-by keys.
    for (const auto& g : stmt.group_by) {
      ExprPtr key = g->Clone();
      FLOCK_RETURN_NOT_OK(BindExpr(key.get(), scope));
      agg->group_by.push_back(std::move(key));
    }

    // Collect aggregate calls from SELECT + HAVING + ORDER BY.
    std::vector<const Expr*> agg_calls;
    for (const auto& e : select_exprs) CollectAggregates(*e, &agg_calls);
    if (having) CollectAggregates(*having, &agg_calls);
    for (const auto& item : stmt.order_by) {
      ExprPtr e = item.expr->Clone();
      // ORDER BY may reference select aliases; aggregates inside it are
      // computed by the Aggregate node when they bind against the scope.
      if (BindExpr(e.get(), scope).ok()) {
        CollectAggregates(*e, &agg_calls);
      }
    }

    Schema agg_schema;
    for (size_t i = 0; i < agg->group_by.size(); ++i) {
      FLOCK_ASSIGN_OR_RETURN(
          DataType t, InferExprType(*agg->group_by[i], scope.schema,
                                    registry_));
      agg_schema.AddColumn(storage::ColumnDef{
          agg->group_by[i]->ToString(), t, true});
    }
    for (const Expr* call : agg_calls) {
      ExprPtr copy = call->Clone();
      FLOCK_ASSIGN_OR_RETURN(
          DataType t, InferExprType(*copy, scope.schema, registry_));
      agg_schema.AddColumn(storage::ColumnDef{copy->ToString(), t, true});
      agg->agg_names.push_back(copy->ToString());
      agg->aggregates.push_back(std::move(copy));
    }
    agg->output_schema = agg_schema;
    agg->children.push_back(std::move(plan));

    // Rewrite SELECT/HAVING expressions against the aggregate output.
    auto rewrite = [&](ExprPtr* e) -> Status {
      // Unbind scan-scope references so leftovers are detectable below
      // (replacement refs get fresh indexes into the aggregate output).
      VisitExprMutable(e->get(), [](Expr* node) {
        if (node->kind == ExprKind::kColumnRef) node->column_index = -1;
      });
      // First replace whole-tree matches of group keys, then aggregates.
      for (size_t g = 0; g < agg->group_by.size(); ++g) {
        ReplaceSubtree(e, *agg->group_by[g], static_cast<int>(g),
                       agg_schema.column(g).type);
      }
      for (size_t a = 0; a < agg->aggregates.size(); ++a) {
        size_t out_idx = agg->group_by.size() + a;
        ReplaceSubtree(e, *agg->aggregates[a], static_cast<int>(out_idx),
                       agg_schema.column(out_idx).type);
      }
      // Any remaining raw column ref is invalid (not in GROUP BY).
      Status bad = Status::OK();
      VisitExpr(**e, [&](const Expr& node) {
        if (node.kind == ExprKind::kColumnRef && node.column_index < 0) {
          bad = Status::InvalidArgument(
              "column " + node.column_name +
              " must appear in GROUP BY or inside an aggregate");
        }
      });
      return bad;
    };

    // Select expressions were bound against the scan scope; re-derive
    // unbound clones so the rewrite can anchor on structural equality.
    for (auto& e : select_exprs) {
      FLOCK_RETURN_NOT_OK(rewrite(&e));
    }
    if (having) {
      FLOCK_RETURN_NOT_OK(rewrite(&having));
    }
    plan = std::move(agg);
    if (having) {
      plan = LogicalPlan::MakeFilter(std::move(plan), std::move(having));
    }

    // Project the select list on top of the aggregate.
    Schema project_schema;
    for (size_t i = 0; i < select_exprs.size(); ++i) {
      FLOCK_ASSIGN_OR_RETURN(
          DataType t, InferExprType(*select_exprs[i], plan->output_schema,
                                    registry_));
      project_schema.AddColumn(
          storage::ColumnDef{select_names[i], t, true});
    }
    auto project = LogicalPlan::MakeProject(
        std::move(plan), std::move(select_exprs), select_names);
    project->output_schema = project_schema;
    plan = std::move(project);

    // ORDER BY (bound against the projection output, aliases included).
    if (!stmt.order_by.empty()) {
      auto sort = std::make_unique<LogicalPlan>();
      sort->kind = PlanKind::kSort;
      sort->output_schema = plan->output_schema;
      for (size_t i = 0; i < stmt.order_by.size(); ++i) {
        SortKey key;
        key.ascending = stmt.order_by[i].ascending;
        key.expr = stmt.order_by[i].expr->Clone();
        FLOCK_RETURN_NOT_OK(
            BindExprToSchema(key.expr.get(), plan->output_schema));
        sort->sort_keys.push_back(std::move(key));
      }
      sort->children.push_back(std::move(plan));
      plan = std::move(sort);
    }
  } else {
    // Non-aggregate path: Sort runs below the projection so ORDER BY can
    // reference any FROM-scope column; bare refs that match a select alias
    // are substituted with the aliased expression first (SQL's alias rule).
    if (!stmt.order_by.empty()) {
      auto sort = std::make_unique<LogicalPlan>();
      sort->kind = PlanKind::kSort;
      sort->output_schema = plan->output_schema;
      for (const auto& item : stmt.order_by) {
        SortKey key;
        key.ascending = item.ascending;
        key.expr = item.expr->Clone();
        if (key.expr->kind == ExprKind::kColumnRef &&
            key.expr->table_name.empty()) {
          for (size_t i = 0; i < select_names.size(); ++i) {
            if (EqualsIgnoreCase(select_names[i], key.expr->column_name)) {
              key.expr = select_exprs[i]->Clone();
              break;
            }
          }
        }
        FLOCK_RETURN_NOT_OK(BindExpr(key.expr.get(), scope));
        sort->sort_keys.push_back(std::move(key));
      }
      sort->children.push_back(std::move(plan));
      plan = std::move(sort);
    }

    Schema project_schema;
    for (size_t i = 0; i < select_exprs.size(); ++i) {
      FLOCK_ASSIGN_OR_RETURN(
          DataType t,
          InferExprType(*select_exprs[i], scope.schema, registry_));
      project_schema.AddColumn(
          storage::ColumnDef{select_names[i], t, true});
    }
    auto project = LogicalPlan::MakeProject(
        std::move(plan), std::move(select_exprs), select_names);
    project->output_schema = project_schema;
    plan = std::move(project);
  }

  if (stmt.distinct) {
    auto distinct = std::make_unique<LogicalPlan>();
    distinct->kind = PlanKind::kDistinct;
    distinct->output_schema = plan->output_schema;
    distinct->children.push_back(std::move(plan));
    plan = std::move(distinct);
  }

  if (stmt.limit.has_value() || stmt.offset.has_value()) {
    plan = LogicalPlan::MakeLimit(std::move(plan),
                                  stmt.limit.value_or(-1),
                                  stmt.offset.value_or(0));
  }
  return plan;
}

}  // namespace flock::sql
