#include "sql/ast.h"

#include "common/string_util.h"

namespace flock::sql {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNotEq:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLtEq:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGtEq:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kLike:
      return "LIKE";
  }
  return "?";
}

ExprPtr Expr::Clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->literal = literal;
  out->table_name = table_name;
  out->column_name = column_name;
  out->column_index = column_index;
  out->resolved_type = resolved_type;
  out->bin_op = bin_op;
  out->un_op = un_op;
  out->function_name = function_name;
  out->distinct = distinct;
  out->has_else = has_else;
  out->cast_type = cast_type;
  out->negated = negated;
  out->children.reserve(children.size());
  for (const auto& c : children) {
    out->children.push_back(c ? c->Clone() : nullptr);
  }
  return out;
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      if (!literal.is_null() &&
          literal.type() == storage::DataType::kString) {
        return "'" + literal.string_value() + "'";
      }
      return literal.ToString();
    case ExprKind::kColumnRef:
      return table_name.empty() ? column_name
                                : table_name + "." + column_name;
    case ExprKind::kStar:
      return "*";
    case ExprKind::kBinary:
      return "(" + children[0]->ToString() + " " + BinaryOpName(bin_op) +
             " " + children[1]->ToString() + ")";
    case ExprKind::kUnary:
      // Parenthesized so nested negation never prints "--" (a comment).
      return std::string(un_op == UnaryOp::kNeg ? "(-" : "(NOT ") +
             children[0]->ToString() + ")";
    case ExprKind::kFunction: {
      std::string out = function_name + "(";
      if (distinct) out += "DISTINCT ";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case ExprKind::kCase: {
      std::string out = "CASE";
      size_t pairs = children.size() - (has_else ? 1 : 0);
      for (size_t i = 0; i + 1 < pairs + 1 && i + 1 < children.size();
           i += 2) {
        if (i + 1 >= pairs && has_else) break;
        out += " WHEN " + children[i]->ToString() + " THEN " +
               children[i + 1]->ToString();
      }
      if (has_else) out += " ELSE " + children.back()->ToString();
      return out + " END";
    }
    case ExprKind::kIn: {
      // Parenthesized so the whole test can appear as an operand.
      std::string out = "(" + children[0]->ToString();
      out += negated ? " NOT IN (" : " IN (";
      for (size_t i = 1; i < children.size(); ++i) {
        if (i > 1) out += ", ";
        out += children[i]->ToString();
      }
      return out + "))";
    }
    case ExprKind::kBetween:
      return "(" + children[0]->ToString() +
             (negated ? " NOT BETWEEN " : " BETWEEN ") +
             children[1]->ToString() + " AND " + children[2]->ToString() +
             ")";
    case ExprKind::kCast:
      return "CAST(" + children[0]->ToString() + " AS " +
             storage::DataTypeName(cast_type) + ")";
    case ExprKind::kIsNull:
      return "(" + children[0]->ToString() +
             (negated ? " IS NOT NULL)" : " IS NULL)");
  }
  return "?";
}

bool Expr::Equals(const Expr& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case ExprKind::kLiteral:
      if (literal.is_null() != other.literal.is_null()) return false;
      if (!literal.is_null() && !(literal == other.literal)) return false;
      break;
    case ExprKind::kColumnRef:
      if (!EqualsIgnoreCase(column_name, other.column_name)) return false;
      if (!table_name.empty() && !other.table_name.empty() &&
          !EqualsIgnoreCase(table_name, other.table_name)) {
        return false;
      }
      break;
    case ExprKind::kBinary:
      if (bin_op != other.bin_op) return false;
      break;
    case ExprKind::kUnary:
      if (un_op != other.un_op) return false;
      break;
    case ExprKind::kFunction:
      if (!EqualsIgnoreCase(function_name, other.function_name) ||
          distinct != other.distinct) {
        return false;
      }
      break;
    case ExprKind::kCast:
      if (cast_type != other.cast_type) return false;
      break;
    case ExprKind::kIsNull:
    case ExprKind::kIn:
    case ExprKind::kBetween:
      if (negated != other.negated) return false;
      break;
    case ExprKind::kStar:
    case ExprKind::kCase:
      break;
  }
  if (children.size() != other.children.size()) return false;
  for (size_t i = 0; i < children.size(); ++i) {
    if (!children[i]->Equals(*other.children[i])) return false;
  }
  return true;
}

ExprPtr Expr::MakeLiteral(storage::Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::MakeColumnRef(std::string table, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->table_name = std::move(table);
  e->column_name = std::move(column);
  return e;
}

ExprPtr Expr::MakeStar() {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kStar;
  return e;
}

ExprPtr Expr::MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->bin_op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr Expr::MakeUnary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->un_op = op;
  e->children.push_back(std::move(operand));
  return e;
}

ExprPtr Expr::MakeFunction(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFunction;
  e->function_name = ToUpper(name);
  e->children = std::move(args);
  return e;
}

ExprPtr Expr::MakeCast(ExprPtr operand, storage::DataType type) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCast;
  e->cast_type = type;
  e->children.push_back(std::move(operand));
  return e;
}

ExprPtr Expr::MakeIsNull(ExprPtr operand, bool negated) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIsNull;
  e->negated = negated;
  e->children.push_back(std::move(operand));
  return e;
}

bool IsAggregateFunction(const std::string& upper_name) {
  return upper_name == "COUNT" || upper_name == "SUM" ||
         upper_name == "AVG" || upper_name == "MIN" || upper_name == "MAX";
}

bool ContainsAggregate(const Expr& e) {
  if (e.kind == ExprKind::kFunction && IsAggregateFunction(e.function_name)) {
    return true;
  }
  for (const auto& c : e.children) {
    if (c && ContainsAggregate(*c)) return true;
  }
  return false;
}

void VisitExpr(const Expr& e, const std::function<void(const Expr&)>& fn) {
  fn(e);
  for (const auto& c : e.children) {
    if (c) VisitExpr(*c, fn);
  }
}

void VisitExprMutable(Expr* e, const std::function<void(Expr*)>& fn) {
  fn(e);
  for (auto& c : e->children) {
    if (c) VisitExprMutable(c.get(), fn);
  }
}

}  // namespace flock::sql
