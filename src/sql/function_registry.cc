#include "sql/function_registry.h"

#include <cmath>

#include "common/string_util.h"

namespace flock::sql {

using storage::ColumnVector;
using storage::ColumnVectorPtr;
using storage::DataType;

void FunctionRegistry::Register(const std::string& name, ScalarFunction fn) {
  functions_[ToUpper(name)] = std::move(fn);
}

StatusOr<const ScalarFunction*> FunctionRegistry::Lookup(
    const std::string& name) const {
  auto it = functions_.find(ToUpper(name));
  if (it == functions_.end()) {
    return Status::NotFound("unknown function: " + name);
  }
  return &it->second;
}

bool FunctionRegistry::Contains(const std::string& name) const {
  return functions_.count(ToUpper(name)) > 0;
}

bool FunctionRegistry::IsScoringFunction(const std::string& name) const {
  auto it = functions_.find(ToUpper(name));
  return it != functions_.end() && it->second.scoring;
}

std::vector<std::string> FunctionRegistry::ListFunctions() const {
  std::vector<std::string> out;
  out.reserve(functions_.size());
  for (const auto& [name, fn] : functions_) out.push_back(name);
  return out;
}

namespace {

/// Wraps an elementwise double->double function as a vectorized kernel.
ScalarFunction MakeUnaryMath(double (*fn)(double)) {
  ScalarFunction sf;
  sf.return_type = DataType::kDouble;
  sf.min_args = 1;
  sf.max_args = 1;
  sf.kernel = [fn](const std::vector<ColumnVectorPtr>& args,
                   size_t num_rows) -> StatusOr<ColumnVectorPtr> {
    auto out = std::make_shared<ColumnVector>(DataType::kDouble);
    out->Reserve(num_rows);
    const ColumnVector& in = *args[0];
    for (size_t i = 0; i < num_rows; ++i) {
      if (in.IsNull(i)) {
        out->AppendNull();
      } else {
        out->AppendDouble(fn(in.AsDouble(i)));
      }
    }
    return out;
  };
  return sf;
}

ScalarFunction MakeStringFn(
    std::string (*fn)(const std::string&)) {
  ScalarFunction sf;
  sf.return_type = DataType::kString;
  sf.min_args = 1;
  sf.max_args = 1;
  sf.kernel = [fn](const std::vector<ColumnVectorPtr>& args,
                   size_t num_rows) -> StatusOr<ColumnVectorPtr> {
    auto out = std::make_shared<ColumnVector>(DataType::kString);
    out->Reserve(num_rows);
    const ColumnVector& in = *args[0];
    for (size_t i = 0; i < num_rows; ++i) {
      if (in.IsNull(i)) {
        out->AppendNull();
      } else {
        out->AppendString(fn(in.GetValue(i).ToString()));
      }
    }
    return out;
  };
  return sf;
}

double Round(double x) { return std::round(x); }
double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

std::string UpperFn(const std::string& s) { return ToUpper(s); }
std::string LowerFn(const std::string& s) { return ToLower(s); }

}  // namespace

void FunctionRegistry::RegisterBuiltins(FunctionRegistry* registry) {
  registry->Register("ABS", MakeUnaryMath(std::fabs));
  registry->Register("SQRT", MakeUnaryMath(std::sqrt));
  registry->Register("EXP", MakeUnaryMath(std::exp));
  registry->Register("LN", MakeUnaryMath(std::log));
  registry->Register("LOG", MakeUnaryMath(std::log));
  registry->Register("FLOOR", MakeUnaryMath(std::floor));
  registry->Register("CEIL", MakeUnaryMath(std::ceil));
  registry->Register("ROUND", MakeUnaryMath(Round));
  registry->Register("SIGMOID", MakeUnaryMath(Sigmoid));
  registry->Register("UPPER", MakeStringFn(UpperFn));
  registry->Register("LOWER", MakeStringFn(LowerFn));

  {
    ScalarFunction sf;
    sf.return_type = DataType::kInt64;
    sf.min_args = 1;
    sf.max_args = 1;
    sf.kernel = [](const std::vector<ColumnVectorPtr>& args,
                   size_t num_rows) -> StatusOr<ColumnVectorPtr> {
      auto out = std::make_shared<ColumnVector>(DataType::kInt64);
      out->Reserve(num_rows);
      const ColumnVector& in = *args[0];
      for (size_t i = 0; i < num_rows; ++i) {
        if (in.IsNull(i)) {
          out->AppendNull();
        } else if (in.type() == DataType::kString) {
          out->AppendInt(static_cast<int64_t>(in.string_at(i).size()));
        } else {
          out->AppendInt(
              static_cast<int64_t>(in.GetValue(i).ToString().size()));
        }
      }
      return out;
    };
    registry->Register("LENGTH", sf);
  }

  {
    ScalarFunction sf;
    sf.return_type = DataType::kDouble;
    sf.min_args = 2;
    sf.max_args = 2;
    sf.kernel = [](const std::vector<ColumnVectorPtr>& args,
                   size_t num_rows) -> StatusOr<ColumnVectorPtr> {
      auto out = std::make_shared<ColumnVector>(DataType::kDouble);
      out->Reserve(num_rows);
      for (size_t i = 0; i < num_rows; ++i) {
        if (args[0]->IsNull(i) || args[1]->IsNull(i)) {
          out->AppendNull();
        } else {
          out->AppendDouble(
              std::pow(args[0]->AsDouble(i), args[1]->AsDouble(i)));
        }
      }
      return out;
    };
    registry->Register("POWER", sf);
  }

  {
    // SUBSTR(s, start[, len]) with 1-based start per SQL convention.
    ScalarFunction sf;
    sf.return_type = DataType::kString;
    sf.min_args = 2;
    sf.max_args = 3;
    sf.kernel = [](const std::vector<ColumnVectorPtr>& args,
                   size_t num_rows) -> StatusOr<ColumnVectorPtr> {
      auto out = std::make_shared<ColumnVector>(DataType::kString);
      out->Reserve(num_rows);
      for (size_t i = 0; i < num_rows; ++i) {
        if (args[0]->IsNull(i)) {
          out->AppendNull();
          continue;
        }
        std::string s = args[0]->GetValue(i).ToString();
        int64_t start = args[1]->IsNull(i)
                            ? 1
                            : static_cast<int64_t>(args[1]->AsDouble(i));
        if (start < 1) start = 1;
        size_t begin = static_cast<size_t>(start - 1);
        if (begin >= s.size()) {
          out->AppendString("");
          continue;
        }
        size_t len = s.size() - begin;
        if (args.size() == 3 && !args[2]->IsNull(i)) {
          int64_t l = static_cast<int64_t>(args[2]->AsDouble(i));
          if (l < 0) l = 0;
          len = std::min(len, static_cast<size_t>(l));
        }
        out->AppendString(s.substr(begin, len));
      }
      return out;
    };
    registry->Register("SUBSTR", sf);
    registry->Register("SUBSTRING", sf);
  }

  {
    ScalarFunction sf;
    sf.return_type = DataType::kString;
    sf.min_args = 1;
    sf.kernel = [](const std::vector<ColumnVectorPtr>& args,
                   size_t num_rows) -> StatusOr<ColumnVectorPtr> {
      auto out = std::make_shared<ColumnVector>(DataType::kString);
      out->Reserve(num_rows);
      for (size_t i = 0; i < num_rows; ++i) {
        std::string s;
        bool any_null = false;
        for (const auto& arg : args) {
          if (arg->IsNull(i)) {
            any_null = true;
            break;
          }
          s += arg->GetValue(i).ToString();
        }
        if (any_null) {
          out->AppendNull();
        } else {
          out->AppendString(std::move(s));
        }
      }
      return out;
    };
    registry->Register("CONCAT", sf);
  }

  {
    // COALESCE returns the first non-null argument; output typed like arg 0.
    ScalarFunction sf;
    sf.return_type = DataType::kDouble;
    sf.min_args = 1;
    sf.kernel = [](const std::vector<ColumnVectorPtr>& args,
                   size_t num_rows) -> StatusOr<ColumnVectorPtr> {
      auto out = std::make_shared<ColumnVector>(args[0]->type());
      out->Reserve(num_rows);
      for (size_t i = 0; i < num_rows; ++i) {
        bool found = false;
        for (const auto& arg : args) {
          if (!arg->IsNull(i)) {
            FLOCK_RETURN_NOT_OK(out->AppendValue(arg->GetValue(i)));
            found = true;
            break;
          }
        }
        if (!found) out->AppendNull();
      }
      return out;
    };
    registry->Register("COALESCE", sf);
  }
}

}  // namespace flock::sql
