#ifndef FLOCK_SQL_EVALUATOR_H_
#define FLOCK_SQL_EVALUATOR_H_

#include <vector>

#include "common/status_or.h"
#include "sql/ast.h"
#include "sql/function_registry.h"
#include "storage/record_batch.h"

namespace flock::sql {

/// Evaluates a bound expression (all column refs resolved to indexes in
/// `input`'s schema) over a batch, producing one column of
/// `input.num_rows()` entries. Vectorized: kernels loop over dense arrays.
StatusOr<storage::ColumnVectorPtr> EvaluateExpr(
    const Expr& expr, const storage::RecordBatch& input,
    const FunctionRegistry* registry);

/// Evaluates a predicate and returns the selected row indexes (rows where the
/// predicate is non-null true).
StatusOr<std::vector<uint32_t>> EvaluatePredicate(
    const Expr& expr, const storage::RecordBatch& input,
    const FunctionRegistry* registry);

/// Computes the static result type of `expr` against `schema`.
StatusOr<storage::DataType> InferExprType(const Expr& expr,
                                          const storage::Schema& schema,
                                          const FunctionRegistry* registry);

/// Evaluates an expression with no column references to a single Value
/// (constant folding, literal INSERT rows, policy thresholds).
StatusOr<storage::Value> EvaluateConstant(const Expr& expr,
                                          const FunctionRegistry* registry);

/// True when the tree has no column references, stars, or aggregates.
bool IsConstantExpr(const Expr& expr);

/// Appends the indexes of every resolved column reference in `expr`.
void CollectColumnIndexes(const Expr& expr, std::vector<int>* indexes);

/// SQL LIKE with % and _ wildcards.
bool LikeMatch(const std::string& text, const std::string& pattern);

}  // namespace flock::sql

#endif  // FLOCK_SQL_EVALUATOR_H_
