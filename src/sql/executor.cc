#include "sql/executor.h"

#include <algorithm>
#include <mutex>
#include <set>
#include <unordered_map>

#include "common/hash.h"
#include "common/logging.h"
#include "sql/evaluator.h"
#include "sql/optimizer.h"

namespace flock::sql {

using storage::ColumnVector;
using storage::ColumnVectorPtr;
using storage::DataType;
using storage::RecordBatch;
using storage::Schema;
using storage::Value;

namespace {

/// Serializes row `r`'s values from `cols` into a byte-key for hashing.
void AppendRowKey(const std::vector<ColumnVectorPtr>& cols, size_t r,
                  std::string* key) {
  for (const auto& col : cols) {
    if (col->IsNull(r)) {
      key->push_back('\0');
      continue;
    }
    key->push_back('\1');
    switch (col->type()) {
      case DataType::kBool:
        key->push_back(col->bool_at(r) ? '1' : '0');
        break;
      case DataType::kInt64: {
        int64_t v = col->int_at(r);
        key->append(reinterpret_cast<const char*>(&v), sizeof(v));
        break;
      }
      case DataType::kDouble: {
        double v = col->double_at(r);
        key->append(reinterpret_cast<const char*>(&v), sizeof(v));
        break;
      }
      case DataType::kString: {
        const std::string& s = col->string_at(r);
        uint32_t len = static_cast<uint32_t>(s.size());
        key->append(reinterpret_cast<const char*>(&len), sizeof(len));
        key->append(s);
        break;
      }
    }
  }
}

/// Extracted equi-join keys: pairs of (left column expr, right column expr),
/// with right-side indexes rebased to the right child's schema.
struct JoinKeys {
  std::vector<ExprPtr> left;
  std::vector<ExprPtr> right;
  std::vector<ExprPtr> residual;  // bound against joined row (left++right)
};

JoinKeys ExtractJoinKeys(const Expr* condition, size_t left_width) {
  JoinKeys keys;
  if (condition == nullptr) return keys;
  std::vector<ExprPtr> conjuncts = SplitConjuncts(condition->Clone());
  for (auto& conjunct : conjuncts) {
    if (conjunct->kind == ExprKind::kBinary &&
        conjunct->bin_op == BinaryOp::kEq) {
      Expr* a = conjunct->children[0].get();
      Expr* b = conjunct->children[1].get();
      auto side = [&](const Expr& e) -> int {
        // 0 = left-only, 1 = right-only, -1 = mixed/none.
        bool has_left = false, has_right = false;
        VisitExpr(e, [&](const Expr& node) {
          if (node.kind == ExprKind::kColumnRef) {
            if (node.column_index < static_cast<int>(left_width)) {
              has_left = true;
            } else {
              has_right = true;
            }
          }
        });
        if (has_left && !has_right) return 0;
        if (has_right && !has_left) return 1;
        return -1;
      };
      int sa = side(*a);
      int sb = side(*b);
      if (sa == 0 && sb == 1) {
        keys.left.push_back(std::move(conjunct->children[0]));
        keys.right.push_back(std::move(conjunct->children[1]));
        VisitExprMutable(keys.right.back().get(), [&](Expr* node) {
          if (node->kind == ExprKind::kColumnRef) {
            node->column_index -= static_cast<int>(left_width);
          }
        });
        continue;
      }
      if (sa == 1 && sb == 0) {
        keys.left.push_back(std::move(conjunct->children[1]));
        keys.right.push_back(std::move(conjunct->children[0]));
        VisitExprMutable(keys.right.back().get(), [&](Expr* node) {
          if (node->kind == ExprKind::kColumnRef) {
            node->column_index -= static_cast<int>(left_width);
          }
        });
        continue;
      }
    }
    keys.residual.push_back(std::move(conjunct));
  }
  return keys;
}

}  // namespace

StatusOr<RecordBatch> Executor::Execute(const LogicalPlan& plan) {
  switch (plan.kind) {
    case PlanKind::kScan:
    case PlanKind::kFilter:
    case PlanKind::kProject:
      return ExecutePipeline(plan);
    case PlanKind::kJoin:
      return ExecuteJoin(plan);
    case PlanKind::kAggregate:
      return ExecuteAggregate(plan);
    case PlanKind::kSort:
      return ExecuteSort(plan);
    case PlanKind::kDistinct:
      return ExecuteDistinct(plan);
    case PlanKind::kLimit:
      return ExecuteLimit(plan);
  }
  return Status::Internal("unknown plan kind");
}

StatusOr<RecordBatch> Executor::ExecutePipeline(const LogicalPlan& plan) {
  // Collect the Filter/Project chain down to the pipeline source.
  std::vector<const LogicalPlan*> ops;  // top-down
  const LogicalPlan* node = &plan;
  while (node->kind == PlanKind::kFilter ||
         node->kind == PlanKind::kProject) {
    ops.push_back(node);
    node = node->children[0].get();
  }

  // Applies the op chain (bottom-up) to one morsel.
  auto apply_ops = [&](RecordBatch batch) -> StatusOr<RecordBatch> {
    for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
      const LogicalPlan* op = *it;
      if (op->kind == PlanKind::kFilter) {
        FLOCK_ASSIGN_OR_RETURN(
            std::vector<uint32_t> sel,
            EvaluatePredicate(*op->predicate, batch, registry_));
        if (sel.size() != batch.num_rows()) {
          batch = batch.Select(sel);
        }
      } else {  // Project
        RecordBatch out(op->output_schema);
        if (batch.num_rows() > 0) {
          for (size_t i = 0; i < op->exprs.size(); ++i) {
            FLOCK_ASSIGN_OR_RETURN(
                ColumnVectorPtr col,
                EvaluateExpr(*op->exprs[i], batch, registry_));
            // Column types may legitimately widen (e.g. int literal in a
            // double column); normalize to the declared schema type.
            if (col->type() != op->output_schema.column(i).type) {
              auto cast = std::make_shared<ColumnVector>(
                  op->output_schema.column(i).type);
              cast->Reserve(col->size());
              for (size_t r = 0; r < col->size(); ++r) {
                FLOCK_RETURN_NOT_OK(cast->AppendValue(col->GetValue(r)));
              }
              col = std::move(cast);
            }
            out.SetColumn(i, std::move(col));
          }
        }
        batch = std::move(out);
      }
    }
    return batch;
  };

  if (node->kind != PlanKind::kScan) {
    // Pipeline over a blocking source: materialize it, then stream morsels.
    FLOCK_ASSIGN_OR_RETURN(RecordBatch input, Execute(*node));
    RecordBatch result(plan.output_schema);
    size_t n = input.num_rows();
    if (n == 0) {
      FLOCK_ASSIGN_OR_RETURN(RecordBatch empty, apply_ops(std::move(input)));
      return empty;
    }
    for (size_t begin = 0; begin < n; begin += options_.morsel_size) {
      size_t end = std::min(n, begin + options_.morsel_size);
      std::vector<uint32_t> sel(end - begin);
      for (size_t i = begin; i < end; ++i) {
        sel[i - begin] = static_cast<uint32_t>(i);
      }
      FLOCK_ASSIGN_OR_RETURN(RecordBatch piece, apply_ops(input.Select(sel)));
      result.Append(piece);
    }
    return result;
  }

  const storage::Table& table = *node->table;
  const std::vector<size_t>& projection = node->projection;
  auto scan_morsel = [&](size_t begin, size_t end) -> RecordBatch {
    RecordBatch batch = table.ScanRange(begin, end);
    if (!projection.empty()) batch = batch.Project(projection);
    return batch;
  };

  size_t total = table.num_rows();
  size_t threads = std::max<size_t>(1, options_.num_threads);
  if (pool_ == nullptr) threads = 1;

  if (threads == 1 || total < options_.morsel_size * 2) {
    RecordBatch result(plan.output_schema);
    for (size_t begin = 0; begin < total || begin == 0;
         begin += options_.morsel_size) {
      size_t end = std::min(total, begin + options_.morsel_size);
      FLOCK_ASSIGN_OR_RETURN(RecordBatch piece,
                             apply_ops(scan_morsel(begin, end)));
      result.Append(piece);
      if (end >= total) break;
    }
    return result;
  }

  // Morsel-driven parallel scan: partition the row range, one task per
  // chunk, deterministic merge in chunk order.
  size_t num_tasks = threads * 4;
  size_t chunk = (total + num_tasks - 1) / num_tasks;
  chunk = std::max(chunk, options_.morsel_size);
  num_tasks = (total + chunk - 1) / chunk;

  std::vector<RecordBatch> partials(num_tasks);
  std::vector<Status> statuses(num_tasks, Status::OK());
  pool_->ParallelFor(num_tasks, [&](size_t t) {
    size_t begin = t * chunk;
    size_t end = std::min(total, begin + chunk);
    RecordBatch local(plan.output_schema);
    for (size_t m = begin; m < end; m += options_.morsel_size) {
      size_t mend = std::min(end, m + options_.morsel_size);
      auto piece = apply_ops(scan_morsel(m, mend));
      if (!piece.ok()) {
        statuses[t] = piece.status();
        return;
      }
      local.Append(*piece);
    }
    partials[t] = std::move(local);
  });
  for (const Status& st : statuses) {
    if (!st.ok()) return st;
  }
  RecordBatch result(plan.output_schema);
  for (auto& partial : partials) result.Append(partial);
  return result;
}

StatusOr<RecordBatch> Executor::ExecuteJoin(const LogicalPlan& plan) {
  FLOCK_ASSIGN_OR_RETURN(RecordBatch left, Execute(*plan.children[0]));
  FLOCK_ASSIGN_OR_RETURN(RecordBatch right, Execute(*plan.children[1]));
  size_t left_width = left.num_columns();

  JoinKeys keys = ExtractJoinKeys(plan.join_condition.get(), left_width);

  // Build the joined batch from matching (l, r) index pairs.
  auto emit = [&](const std::vector<uint32_t>& lsel,
                  const std::vector<int64_t>& rsel) -> RecordBatch {
    RecordBatch out(plan.output_schema);
    for (size_t c = 0; c < left_width; ++c) {
      out.mutable_column(c)->AppendSelected(*left.column(c), lsel);
    }
    for (size_t c = 0; c < right.num_columns(); ++c) {
      ColumnVector* dst = out.mutable_column(left_width + c);
      const ColumnVector& src = *right.column(c);
      for (int64_t r : rsel) {
        if (r < 0) {
          dst->AppendNull();
        } else {
          dst->AppendRange(src, static_cast<size_t>(r),
                           static_cast<size_t>(r) + 1);
        }
      }
    }
    return out;
  };

  std::vector<uint32_t> lsel;
  std::vector<int64_t> rsel;

  if (!keys.left.empty()) {
    // Hash join: build on right.
    std::vector<ColumnVectorPtr> right_keys;
    for (const auto& e : keys.right) {
      FLOCK_ASSIGN_OR_RETURN(ColumnVectorPtr col,
                             EvaluateExpr(*e, right, registry_));
      right_keys.push_back(std::move(col));
    }
    std::unordered_map<std::string, std::vector<uint32_t>> ht;
    ht.reserve(right.num_rows());
    std::string key;
    for (size_t r = 0; r < right.num_rows(); ++r) {
      key.clear();
      bool any_null = false;
      for (const auto& col : right_keys) {
        if (col->IsNull(r)) any_null = true;
      }
      if (any_null) continue;  // nulls never join
      AppendRowKey(right_keys, r, &key);
      ht[key].push_back(static_cast<uint32_t>(r));
    }
    std::vector<ColumnVectorPtr> left_keys;
    for (const auto& e : keys.left) {
      FLOCK_ASSIGN_OR_RETURN(ColumnVectorPtr col,
                             EvaluateExpr(*e, left, registry_));
      left_keys.push_back(std::move(col));
    }
    for (size_t l = 0; l < left.num_rows(); ++l) {
      bool any_null = false;
      for (const auto& col : left_keys) {
        if (col->IsNull(l)) any_null = true;
      }
      bool matched = false;
      if (!any_null) {
        key.clear();
        AppendRowKey(left_keys, l, &key);
        auto it = ht.find(key);
        if (it != ht.end()) {
          for (uint32_t r : it->second) {
            lsel.push_back(static_cast<uint32_t>(l));
            rsel.push_back(r);
            matched = true;
          }
        }
      }
      if (!matched && plan.join_type == JoinType::kLeft) {
        lsel.push_back(static_cast<uint32_t>(l));
        rsel.push_back(-1);
      }
    }
  } else {
    // Nested-loop (cross join or non-equi condition).
    for (size_t l = 0; l < left.num_rows(); ++l) {
      bool matched = false;
      for (size_t r = 0; r < right.num_rows(); ++r) {
        lsel.push_back(static_cast<uint32_t>(l));
        rsel.push_back(static_cast<int64_t>(r));
        matched = true;
      }
      if (!matched && plan.join_type == JoinType::kLeft) {
        lsel.push_back(static_cast<uint32_t>(l));
        rsel.push_back(-1);
      }
    }
  }

  RecordBatch joined = emit(lsel, rsel);

  // Residual predicate (plus full condition for nested-loop joins).
  std::vector<ExprPtr> residuals;
  if (!keys.left.empty()) {
    for (auto& e : keys.residual) residuals.push_back(std::move(e));
  } else if (plan.join_condition != nullptr) {
    residuals.push_back(plan.join_condition->Clone());
  }
  if (!residuals.empty()) {
    if (plan.join_type == JoinType::kLeft) {
      // For left joins, the residual only filters matched rows.
      ExprPtr residual = CombineConjuncts(std::move(residuals));
      FLOCK_ASSIGN_OR_RETURN(ColumnVectorPtr mask,
                             EvaluateExpr(*residual, joined, registry_));
      std::vector<uint32_t> sel;
      for (size_t i = 0; i < joined.num_rows(); ++i) {
        bool is_padded = rsel[i] < 0;
        if (is_padded || (!mask->IsNull(i) && mask->AsDouble(i) != 0.0)) {
          sel.push_back(static_cast<uint32_t>(i));
        }
      }
      joined = joined.Select(sel);
    } else {
      ExprPtr residual = CombineConjuncts(std::move(residuals));
      FLOCK_ASSIGN_OR_RETURN(
          std::vector<uint32_t> sel,
          EvaluatePredicate(*residual, joined, registry_));
      joined = joined.Select(sel);
    }
  }
  return joined;
}

StatusOr<RecordBatch> Executor::ExecuteAggregate(const LogicalPlan& plan) {
  FLOCK_ASSIGN_OR_RETURN(RecordBatch input, Execute(*plan.children[0]));
  const size_t n = input.num_rows();

  // Evaluate group keys and aggregate arguments once, vectorized.
  std::vector<ColumnVectorPtr> key_cols;
  for (const auto& g : plan.group_by) {
    FLOCK_ASSIGN_OR_RETURN(ColumnVectorPtr col,
                           EvaluateExpr(*g, input, registry_));
    key_cols.push_back(std::move(col));
  }
  struct AggSpec {
    std::string fn;       // COUNT/SUM/AVG/MIN/MAX
    bool star = false;    // COUNT(*)
    bool distinct = false;
    ColumnVectorPtr arg;  // null when star
  };
  std::vector<AggSpec> specs;
  for (const auto& agg : plan.aggregates) {
    if (agg->distinct && agg->function_name != "COUNT") {
      return Status::NotSupported(
          "DISTINCT is only supported for COUNT aggregates");
    }
    AggSpec spec;
    spec.distinct = agg->distinct;
    spec.fn = agg->function_name;
    if (agg->children.empty() ||
        agg->children[0]->kind == ExprKind::kStar) {
      spec.star = true;
    } else {
      FLOCK_ASSIGN_OR_RETURN(
          spec.arg, EvaluateExpr(*agg->children[0], input, registry_));
    }
    specs.push_back(std::move(spec));
  }

  struct AggState {
    int64_t count = 0;
    double sum = 0.0;
    bool has_value = false;
    Value min, max;
    std::set<std::string> distinct_keys;  // COUNT(DISTINCT x) only
  };
  struct Group {
    std::vector<Value> keys;
    std::vector<AggState> states;
  };

  std::unordered_map<std::string, size_t> group_index;
  std::vector<Group> groups;

  auto get_group = [&](size_t row) -> Group& {
    std::string key;
    AppendRowKey(key_cols, row, &key);
    auto [it, inserted] = group_index.try_emplace(key, groups.size());
    if (inserted) {
      Group g;
      for (const auto& col : key_cols) g.keys.push_back(col->GetValue(row));
      g.states.resize(specs.size());
      groups.push_back(std::move(g));
    }
    return groups[it->second];
  };

  if (plan.group_by.empty()) {
    // Global aggregate: exactly one group, even over zero rows.
    Group g;
    g.states.resize(specs.size());
    groups.push_back(std::move(g));
  }

  for (size_t r = 0; r < n; ++r) {
    Group& g = plan.group_by.empty() ? groups[0] : get_group(r);
    for (size_t a = 0; a < specs.size(); ++a) {
      const AggSpec& spec = specs[a];
      AggState& state = g.states[a];
      if (spec.star) {
        ++state.count;
        continue;
      }
      if (spec.arg->IsNull(r)) continue;
      if (spec.distinct) {
        std::string key;
        std::vector<ColumnVectorPtr> one = {spec.arg};
        AppendRowKey(one, r, &key);
        state.distinct_keys.insert(std::move(key));
        continue;
      }
      ++state.count;
      state.sum += spec.arg->AsDouble(r);
      Value v = spec.arg->GetValue(r);
      if (!state.has_value) {
        state.min = v;
        state.max = v;
        state.has_value = true;
      } else {
        if (v.Compare(state.min) < 0) state.min = v;
        if (v.Compare(state.max) > 0) state.max = std::move(v);
      }
    }
  }

  RecordBatch out(plan.output_schema);
  for (const Group& g : groups) {
    std::vector<Value> row;
    row.reserve(plan.output_schema.num_columns());
    for (const Value& key : g.keys) row.push_back(key);
    for (size_t a = 0; a < specs.size(); ++a) {
      const AggState& state = g.states[a];
      const std::string& fn = specs[a].fn;
      if (fn == "COUNT") {
        row.push_back(Value::Int(
            specs[a].distinct
                ? static_cast<int64_t>(state.distinct_keys.size())
                : state.count));
      } else if (fn == "SUM") {
        row.push_back(state.count > 0 ? Value::Double(state.sum)
                                      : Value::Null(DataType::kDouble));
      } else if (fn == "AVG") {
        row.push_back(state.count > 0
                          ? Value::Double(state.sum /
                                          static_cast<double>(state.count))
                          : Value::Null(DataType::kDouble));
      } else if (fn == "MIN") {
        row.push_back(state.has_value ? state.min : Value::Null());
      } else if (fn == "MAX") {
        row.push_back(state.has_value ? state.max : Value::Null());
      } else {
        return Status::Internal("unknown aggregate: " + fn);
      }
    }
    FLOCK_RETURN_NOT_OK(out.AppendRow(row));
  }
  return out;
}

StatusOr<RecordBatch> Executor::ExecuteSort(const LogicalPlan& plan) {
  FLOCK_ASSIGN_OR_RETURN(RecordBatch input, Execute(*plan.children[0]));
  std::vector<ColumnVectorPtr> key_cols;
  std::vector<bool> ascending;
  for (const auto& k : plan.sort_keys) {
    FLOCK_ASSIGN_OR_RETURN(ColumnVectorPtr col,
                           EvaluateExpr(*k.expr, input, registry_));
    key_cols.push_back(std::move(col));
    ascending.push_back(k.ascending);
  }
  std::vector<uint32_t> order(input.num_rows());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<uint32_t>(i);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](uint32_t a, uint32_t b) {
                     for (size_t k = 0; k < key_cols.size(); ++k) {
                       Value va = key_cols[k]->GetValue(a);
                       Value vb = key_cols[k]->GetValue(b);
                       int cmp = va.Compare(vb);
                       if (cmp != 0) return ascending[k] ? cmp < 0 : cmp > 0;
                     }
                     return false;
                   });
  return input.Select(order);
}

StatusOr<RecordBatch> Executor::ExecuteDistinct(const LogicalPlan& plan) {
  FLOCK_ASSIGN_OR_RETURN(RecordBatch input, Execute(*plan.children[0]));
  std::vector<ColumnVectorPtr> cols;
  for (size_t c = 0; c < input.num_columns(); ++c) {
    cols.push_back(input.column(c));
  }
  std::unordered_map<std::string, bool> seen;
  std::vector<uint32_t> sel;
  std::string key;
  for (size_t r = 0; r < input.num_rows(); ++r) {
    key.clear();
    AppendRowKey(cols, r, &key);
    if (seen.try_emplace(key, true).second) {
      sel.push_back(static_cast<uint32_t>(r));
    }
  }
  return input.Select(sel);
}

StatusOr<RecordBatch> Executor::ExecuteLimit(const LogicalPlan& plan) {
  FLOCK_ASSIGN_OR_RETURN(RecordBatch input, Execute(*plan.children[0]));
  size_t begin = std::min<size_t>(static_cast<size_t>(plan.offset),
                                  input.num_rows());
  size_t end = input.num_rows();
  if (plan.limit >= 0) {
    end = std::min(end, begin + static_cast<size_t>(plan.limit));
  }
  std::vector<uint32_t> sel;
  sel.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    sel.push_back(static_cast<uint32_t>(i));
  }
  return input.Select(sel);
}

}  // namespace flock::sql
