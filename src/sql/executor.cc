#include "sql/executor.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <unordered_map>

#include "common/logging.h"
#include "obs/trace.h"
#include "sql/evaluator.h"

namespace flock::sql {

using storage::ColumnVector;
using storage::ColumnVectorPtr;
using storage::DataType;
using storage::RecordBatch;
using storage::Schema;
using storage::Value;

namespace {

using Clock = std::chrono::steady_clock;

uint64_t NanosSince(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

/// Polls `token` and, when it fires, annotates the active trace (if this
/// thread carries a recorder) with the cancel cause — so a traced request
/// that was killed shows `exec.cancelled` / `exec.deadline_exceeded`
/// where execution stopped.
Status CheckCancel(const CancelToken& token, const char* where) {
  Status st = token.Check(where);
  if (!st.ok() && obs::TraceRecorder::Current() != nullptr) {
    obs::ScopedSpan cause(st.code() == StatusCode::kCancelled
                              ? "exec.cancelled"
                              : "exec.deadline_exceeded");
  }
  return st;
}

}  // namespace

// ---------------------------------------------------------------------------
// Pipeline sinks
// ---------------------------------------------------------------------------

/// Receives the morsels a pipeline produces. Each parallel task owns one
/// local state (no locking on the hot path); Finish merges local states in
/// task order, which keeps results deterministic for a fixed thread count.
class Executor::PipelineSink {
 public:
  virtual ~PipelineSink() = default;
  virtual void MakeLocals(size_t n) = 0;
  virtual Status Consume(size_t local, RecordBatch morsel) = 0;
};

/// Concatenates morsels in task order into one dense batch.
class Executor::CollectSink : public Executor::PipelineSink {
 public:
  explicit CollectSink(Schema schema) : schema_(std::move(schema)) {}

  void MakeLocals(size_t n) override {
    locals_.clear();
    for (size_t i = 0; i < n; ++i) locals_.emplace_back(schema_);
  }

  Status Consume(size_t local, RecordBatch morsel) override {
    locals_[local].Append(morsel);
    return Status::OK();
  }

  StatusOr<RecordBatch> Finish() {
    RecordBatch result(schema_);
    for (const auto& local : locals_) result.Append(local);
    return result;
  }

 private:
  Schema schema_;
  std::vector<RecordBatch> locals_;
};

/// Thread-local hash aggregation: every task folds its morsels into a
/// private group table; Finish merges the partial states (count/sum/min/
/// max/distinct-set union) in task order and emits the final rows.
class Executor::AggregateSink : public Executor::PipelineSink {
 public:
  AggregateSink(HashAggregateOp* op, const ExecContext& ctx)
      : op_(op), ctx_(ctx) {}

  Status Init() {
    for (const auto& agg : op_->aggregates) {
      if (agg->distinct && agg->function_name != "COUNT") {
        return Status::NotSupported(
            "DISTINCT is only supported for COUNT aggregates");
      }
      AggSpec spec;
      spec.fn = agg->function_name;
      spec.distinct = agg->distinct;
      if (agg->children.empty() ||
          agg->children[0]->kind == ExprKind::kStar) {
        spec.star = true;
      } else {
        spec.arg = agg->children[0].get();
      }
      specs_.push_back(spec);
    }
    return Status::OK();
  }

  void MakeLocals(size_t n) override { locals_.resize(n); }

  Status Consume(size_t local, RecordBatch morsel) override {
    const size_t n = morsel.num_rows();
    const auto start = Clock::now();
    LocalState& state = locals_[local];

    // Vectorized: evaluate group keys and aggregate arguments per morsel.
    std::vector<ColumnVectorPtr> key_cols;
    key_cols.reserve(op_->group_by.size());
    for (const auto& g : op_->group_by) {
      FLOCK_ASSIGN_OR_RETURN(ColumnVectorPtr col,
                             EvaluateExpr(*g, morsel, ctx_.registry));
      key_cols.push_back(std::move(col));
    }
    std::vector<ColumnVectorPtr> arg_cols(specs_.size());
    for (size_t a = 0; a < specs_.size(); ++a) {
      if (specs_[a].star) continue;
      FLOCK_ASSIGN_OR_RETURN(
          arg_cols[a], EvaluateExpr(*specs_[a].arg, morsel, ctx_.registry));
    }

    std::string key;
    for (size_t r = 0; r < n; ++r) {
      Group* g;
      if (op_->group_by.empty()) {
        if (state.groups.empty()) state.groups.emplace_back(specs_.size());
        g = &state.groups[0];
      } else {
        key.clear();
        AppendRowKey(key_cols, r, &key);
        auto [it, inserted] =
            state.index.try_emplace(key, state.groups.size());
        if (inserted) {
          Group fresh(specs_.size());
          fresh.key = key;
          for (const auto& col : key_cols) {
            fresh.keys.push_back(col->GetValue(r));
          }
          state.groups.push_back(std::move(fresh));
        }
        g = &state.groups[it->second];
      }
      for (size_t a = 0; a < specs_.size(); ++a) {
        const AggSpec& spec = specs_[a];
        AggState& s = g->states[a];
        if (spec.star) {
          ++s.count;
          continue;
        }
        const ColumnVector& arg = *arg_cols[a];
        if (arg.IsNull(r)) continue;
        if (spec.distinct) {
          std::string dkey;
          std::vector<ColumnVectorPtr> one = {arg_cols[a]};
          AppendRowKey(one, r, &dkey);
          s.distinct_keys.insert(std::move(dkey));
          continue;
        }
        ++s.count;
        s.sum += arg.AsDouble(r);
        Value v = arg.GetValue(r);
        if (!s.has_value) {
          s.min = v;
          s.max = v;
          s.has_value = true;
        } else {
          if (v.Compare(s.min) < 0) s.min = v;
          if (v.Compare(s.max) > 0) s.max = std::move(v);
        }
      }
    }
    op_->metrics.Record(n, 0, NanosSince(start));
    return Status::OK();
  }

  StatusOr<RecordBatch> Finish() {
    const auto start = Clock::now();
    // Merge thread-local tables in task order: group output order is then
    // first-seen order across tasks, deterministic for a fixed task count.
    std::unordered_map<std::string, size_t> index;
    std::vector<Group> groups;
    for (auto& local : locals_) {
      for (size_t li = 0; li < local.groups.size(); ++li) {
        Group& src = local.groups[li];
        size_t gi;
        if (op_->group_by.empty()) {
          if (groups.empty()) groups.emplace_back(specs_.size());
          gi = 0;
        } else {
          auto [it, inserted] = index.try_emplace(src.key, groups.size());
          if (inserted) {
            Group fresh(specs_.size());
            fresh.key = src.key;
            fresh.keys = src.keys;
            groups.push_back(std::move(fresh));
          }
          gi = it->second;
        }
        Group& dst = groups[gi];
        for (size_t a = 0; a < specs_.size(); ++a) {
          AggState& from = src.states[a];
          AggState& to = dst.states[a];
          to.count += from.count;
          to.sum += from.sum;
          if (from.has_value) {
            if (!to.has_value) {
              to.min = from.min;
              to.max = from.max;
              to.has_value = true;
            } else {
              if (from.min.Compare(to.min) < 0) to.min = from.min;
              if (from.max.Compare(to.max) > 0) to.max = from.max;
            }
          }
          to.distinct_keys.merge(from.distinct_keys);
        }
      }
    }
    if (op_->group_by.empty() && groups.empty()) {
      // Global aggregate: exactly one group, even over zero rows.
      groups.emplace_back(specs_.size());
    }

    RecordBatch out(op_->output_schema());
    for (const Group& g : groups) {
      std::vector<Value> row;
      row.reserve(op_->output_schema().num_columns());
      for (const Value& k : g.keys) row.push_back(k);
      for (size_t a = 0; a < specs_.size(); ++a) {
        const AggState& s = g.states[a];
        const std::string& fn = specs_[a].fn;
        if (fn == "COUNT") {
          row.push_back(Value::Int(
              specs_[a].distinct
                  ? static_cast<int64_t>(s.distinct_keys.size())
                  : s.count));
        } else if (fn == "SUM") {
          row.push_back(s.count > 0 ? Value::Double(s.sum)
                                    : Value::Null(DataType::kDouble));
        } else if (fn == "AVG") {
          row.push_back(s.count > 0
                            ? Value::Double(s.sum /
                                            static_cast<double>(s.count))
                            : Value::Null(DataType::kDouble));
        } else if (fn == "MIN") {
          row.push_back(s.has_value ? s.min : Value::Null());
        } else if (fn == "MAX") {
          row.push_back(s.has_value ? s.max : Value::Null());
        } else {
          return Status::Internal("unknown aggregate: " + fn);
        }
      }
      FLOCK_RETURN_NOT_OK(out.AppendRow(row));
    }
    op_->metrics.Record(0, out.num_rows(), NanosSince(start));
    return out;
  }

 private:
  struct AggSpec {
    std::string fn;        // COUNT/SUM/AVG/MIN/MAX
    bool star = false;     // COUNT(*)
    bool distinct = false;
    const Expr* arg = nullptr;  // null when star
  };
  struct AggState {
    int64_t count = 0;
    double sum = 0.0;
    bool has_value = false;
    Value min, max;
    std::set<std::string> distinct_keys;  // COUNT(DISTINCT x) only
  };
  struct Group {
    explicit Group(size_t num_specs) { states.resize(num_specs); }
    std::string key;            // serialized group key bytes
    std::vector<Value> keys;    // boxed key values for output
    std::vector<AggState> states;
  };
  struct LocalState {
    std::unordered_map<std::string, size_t> index;
    std::vector<Group> groups;
  };

  HashAggregateOp* op_;
  ExecContext ctx_;
  std::vector<AggSpec> specs_;
  std::vector<LocalState> locals_;
};

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

ExecContext Executor::MakeContext() const {
  ExecContext ctx;
  ctx.registry = registry_;
  ctx.pool = pool_;
  ctx.num_threads = pool_ ? std::max<size_t>(1, options_.num_threads) : 1;
  ctx.morsel_size = options_.morsel_size;
  ctx.cancel = options_.cancel;
  return ctx;
}

StatusOr<RecordBatch> Executor::Execute(const LogicalPlan& plan) {
  PhysicalPlanner planner(registry_);
  FLOCK_ASSIGN_OR_RETURN(PhysicalOperatorPtr root, planner.Lower(plan));
  return Execute(root.get());
}

StatusOr<RecordBatch> Executor::Execute(PhysicalOperator* root) {
  return Run(root);
}

StatusOr<RecordBatch> Executor::Run(PhysicalOperator* op) {
  // Every pipeline breaker and recursive materialization passes through
  // here, so one check covers sort/distinct/limit/build-side entry.
  FLOCK_RETURN_NOT_OK(CheckCancel(options_.cancel, "executor.run"));
  switch (op->kind()) {
    case PhysicalOperator::Kind::kTableScan:
    case PhysicalOperator::Kind::kFilter:
    case PhysicalOperator::Kind::kProject:
    case PhysicalOperator::Kind::kPredictScore:
    case PhysicalOperator::Kind::kHashJoinProbe:
    case PhysicalOperator::Kind::kNestedLoopJoin: {
      CollectSink sink(op->output_schema());
      FLOCK_RETURN_NOT_OK(RunPipeline(op, &sink));
      return sink.Finish();
    }
    case PhysicalOperator::Kind::kHashAggregate: {
      auto* agg = static_cast<HashAggregateOp*>(op);
      AggregateSink sink(agg, MakeContext());
      FLOCK_RETURN_NOT_OK(sink.Init());
      FLOCK_RETURN_NOT_OK(RunPipeline(agg->children[0].get(), &sink));
      return sink.Finish();
    }
    case PhysicalOperator::Kind::kSort:
      return RunSort(static_cast<SortOp*>(op));
    case PhysicalOperator::Kind::kDistinct:
      return RunDistinct(static_cast<DistinctOp*>(op));
    case PhysicalOperator::Kind::kLimit:
      return RunLimit(static_cast<LimitOp*>(op));
    case PhysicalOperator::Kind::kHashJoinBuild:
      return Status::Internal("HashJoinBuild cannot be executed standalone");
  }
  return Status::Internal("unknown physical operator kind");
}

Status Executor::PrepareHashJoin(HashJoinProbeOp* probe) {
  HashJoinBuildOp* build = probe->build();
  FLOCK_ASSIGN_OR_RETURN(RecordBatch rows, Run(build->children[0].get()));
  const auto start = Clock::now();

  auto table = std::make_shared<JoinHashTable>();
  std::vector<ColumnVectorPtr> key_cols;
  key_cols.reserve(build->keys.size());
  for (const auto& e : build->keys) {
    FLOCK_ASSIGN_OR_RETURN(ColumnVectorPtr col,
                           EvaluateExpr(*e, rows, registry_));
    key_cols.push_back(std::move(col));
  }
  table->index.reserve(rows.num_rows());
  std::string key;
  size_t indexed = 0;
  for (size_t r = 0; r < rows.num_rows(); ++r) {
    bool any_null = false;
    for (const auto& col : key_cols) {
      if (col->IsNull(r)) any_null = true;
    }
    if (any_null) continue;  // nulls never join
    key.clear();
    AppendRowKey(key_cols, r, &key);
    table->index[key].push_back(static_cast<uint32_t>(r));
    ++indexed;
  }
  build->metrics.Record(rows.num_rows(), indexed, NanosSince(start));
  table->rows = std::move(rows);
  build->table = std::move(table);
  return Status::OK();
}

Status Executor::PrepareNestedLoop(NestedLoopJoinOp* join) {
  FLOCK_ASSIGN_OR_RETURN(RecordBatch rows, Run(join->children[1].get()));
  join->right_rows = std::make_shared<RecordBatch>(std::move(rows));
  return Status::OK();
}

Status Executor::RunPipeline(PhysicalOperator* top, PipelineSink* sink) {
  // Walk down the streaming chain to the pipeline source.
  std::vector<PhysicalOperator*> chain;  // top-down
  PhysicalOperator* node = top;
  while (node->IsStreaming()) {
    chain.push_back(node);
    node = node->children[0].get();
  }

  // Materialize join build sides up front: ParallelFor must never nest, so
  // all blocking child work happens before this pipeline's workers start.
  for (PhysicalOperator* op : chain) {
    if (op->kind() == PhysicalOperator::Kind::kHashJoinProbe) {
      FLOCK_RETURN_NOT_OK(
          PrepareHashJoin(static_cast<HashJoinProbeOp*>(op)));
    } else if (op->kind() == PhysicalOperator::Kind::kNestedLoopJoin) {
      FLOCK_RETURN_NOT_OK(
          PrepareNestedLoop(static_cast<NestedLoopJoinOp*>(op)));
    }
  }

  const ExecContext ctx = MakeContext();

  // The source: either a parallel table scan or a materialized child.
  TableScanOp* scan = nullptr;
  RecordBatch mat;
  if (node->kind() == PhysicalOperator::Kind::kTableScan) {
    scan = static_cast<TableScanOp*>(node);
  } else {
    FLOCK_ASSIGN_OR_RETURN(mat, Run(node));
  }

  // Build the morsel work list. For a scan, morsels never straddle
  // segments (so each is a zero-copy view over one segment's columns),
  // and zone-map pruning drops whole segments here — an execution-time
  // decision against live statistics, which is why cached plans stay
  // valid across DML.
  struct Morsel {
    size_t segment;  // kNoSegment for materialized sources
    size_t begin;
    size_t end;
  };
  constexpr size_t kNoSegment = static_cast<size_t>(-1);
  std::vector<Morsel> work;
  if (scan != nullptr) {
    const bool prune =
        options_.enable_zone_map_pruning && !scan->prune_conjuncts.empty();
    uint64_t scanned = 0, pruned = 0;
    const size_t num_segments = scan->table->num_segments();
    for (size_t s = 0; s < num_segments; ++s) {
      const size_t rows = scan->table->segment_rows(s);
      if (rows == 0) continue;
      if (prune && scan->CanSkipSegment(s)) {
        ++pruned;
        continue;
      }
      ++scanned;
      for (size_t begin = 0; begin < rows; begin += options_.morsel_size) {
        work.push_back(
            Morsel{s, begin, std::min(rows, begin + options_.morsel_size)});
      }
    }
    scan->metrics.RecordSegments(scanned, pruned);
  } else {
    const size_t total = mat.num_rows();
    for (size_t begin = 0; begin < total; begin += options_.morsel_size) {
      work.push_back(Morsel{kNoSegment, begin,
                            std::min(total, begin + options_.morsel_size)});
    }
  }

  auto make_morsel = [&](const Morsel& m) -> RecordBatch {
    if (scan != nullptr) {
      const auto start = Clock::now();
      RecordBatch batch = scan->ScanMorsel(m.segment, m.begin, m.end);
      scan->metrics.Record(m.end - m.begin, batch.num_rows(),
                           NanosSince(start));
      return batch;
    }
    std::vector<uint32_t> sel(m.end - m.begin);
    for (size_t i = m.begin; i < m.end; ++i) {
      sel[i - m.begin] = static_cast<uint32_t>(i);
    }
    return mat.SelectView(std::move(sel));
  };

  // Pushes one source morsel through the chain into the sink. The
  // per-morsel poll is the executor's main cancellation point: a kill or
  // deadline expiry stops the query within one morsel's worth of work.
  auto drive = [&](size_t local, const Morsel& morsel) -> Status {
    FLOCK_RETURN_NOT_OK(CheckCancel(options_.cancel, "executor.morsel"));
    RecordBatch m = make_morsel(morsel);
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      PhysicalOperator* op = *it;
      if (op->NeedsDenseInput() && m.has_selection()) m = m.Materialize();
      const uint64_t in_rows = m.num_rows();
      const auto start = Clock::now();
      FLOCK_ASSIGN_OR_RETURN(m, op->ProcessMorsel(ctx, std::move(m)));
      op->metrics.Record(in_rows, m.num_rows(), NanosSince(start));
    }
    return sink->Consume(local, std::move(m));
  };

  size_t threads = pool_ ? std::max<size_t>(1, options_.num_threads) : 1;
  if (threads == 1 || work.size() < 2) {
    // Install the token thread-locally so layers reached through
    // expression evaluation without a context parameter (scoring
    // kernels, the serving coalescer) can poll it too.
    CancelScope cancel_scope(options_.cancel);
    sink->MakeLocals(1);
    for (const Morsel& morsel : work) {
      FLOCK_RETURN_NOT_OK(drive(0, morsel));
    }
    return Status::OK();
  }

  // Morsel-driven parallelism: partition the work list into contiguous
  // chunks, one task per chunk; sinks merge per-task state in chunk order
  // (deterministic, and preserves source order end-to-end).
  size_t num_tasks = threads * 4;
  size_t chunk = std::max<size_t>(1, (work.size() + num_tasks - 1) / num_tasks);
  num_tasks = (work.size() + chunk - 1) / chunk;

  sink->MakeLocals(num_tasks);
  std::vector<Status> statuses(num_tasks, Status::OK());
  pool_->ParallelFor(num_tasks, [&](size_t t) {
    // Each worker re-installs the token on its own thread (thread-local
    // state does not cross ParallelFor). Workers observe a kill at their
    // next morsel boundary and drain normally — no detached threads, so
    // ParallelFor's join is the leak-freedom guarantee.
    CancelScope cancel_scope(options_.cancel);
    size_t begin = t * chunk;
    size_t end = std::min(work.size(), begin + chunk);
    for (size_t m = begin; m < end; ++m) {
      Status st = drive(t, work[m]);
      if (!st.ok()) {
        statuses[t] = std::move(st);
        return;
      }
    }
  });
  for (const Status& st : statuses) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

StatusOr<RecordBatch> Executor::RunSort(SortOp* op) {
  FLOCK_ASSIGN_OR_RETURN(RecordBatch input, Run(op->children[0].get()));
  const auto start = Clock::now();
  std::vector<ColumnVectorPtr> key_cols;
  std::vector<bool> ascending;
  for (const auto& k : op->keys) {
    FLOCK_ASSIGN_OR_RETURN(ColumnVectorPtr col,
                           EvaluateExpr(*k.expr, input, registry_));
    key_cols.push_back(std::move(col));
    ascending.push_back(k.ascending);
  }
  std::vector<uint32_t> order(input.num_rows());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<uint32_t>(i);
  }
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    for (size_t k = 0; k < key_cols.size(); ++k) {
      Value va = key_cols[k]->GetValue(a);
      Value vb = key_cols[k]->GetValue(b);
      int cmp = va.Compare(vb);
      if (cmp != 0) return ascending[k] ? cmp < 0 : cmp > 0;
    }
    return false;
  });
  RecordBatch out = input.Select(order);
  op->metrics.Record(input.num_rows(), out.num_rows(), NanosSince(start));
  return out;
}

StatusOr<RecordBatch> Executor::RunDistinct(DistinctOp* op) {
  FLOCK_ASSIGN_OR_RETURN(RecordBatch input, Run(op->children[0].get()));
  const auto start = Clock::now();
  std::vector<ColumnVectorPtr> cols;
  for (size_t c = 0; c < input.num_columns(); ++c) {
    cols.push_back(input.column(c));
  }
  std::unordered_map<std::string, bool> seen;
  std::vector<uint32_t> sel;
  std::string key;
  for (size_t r = 0; r < input.num_rows(); ++r) {
    key.clear();
    AppendRowKey(cols, r, &key);
    if (seen.try_emplace(key, true).second) {
      sel.push_back(static_cast<uint32_t>(r));
    }
  }
  RecordBatch out = input.Select(sel);
  op->metrics.Record(input.num_rows(), out.num_rows(), NanosSince(start));
  return out;
}

StatusOr<RecordBatch> Executor::RunLimit(LimitOp* op) {
  FLOCK_ASSIGN_OR_RETURN(RecordBatch input, Run(op->children[0].get()));
  const auto start = Clock::now();
  size_t begin = std::min<size_t>(static_cast<size_t>(op->offset),
                                  input.num_rows());
  size_t end = input.num_rows();
  if (op->limit >= 0) {
    end = std::min(end, begin + static_cast<size_t>(op->limit));
  }
  std::vector<uint32_t> sel;
  sel.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    sel.push_back(static_cast<uint32_t>(i));
  }
  RecordBatch out = input.Select(sel);
  op->metrics.Record(input.num_rows(), out.num_rows(), NanosSince(start));
  return out;
}

}  // namespace flock::sql
