#include "sql/physical_plan.h"

#include <algorithm>
#include <sstream>

#include "sql/evaluator.h"
#include "sql/optimizer.h"

namespace flock::sql {

using storage::ColumnVector;
using storage::ColumnVectorPtr;
using storage::DataType;
using storage::RecordBatch;
using storage::Schema;

void AppendRowKey(const std::vector<ColumnVectorPtr>& cols, size_t r,
                  std::string* key) {
  for (const auto& col : cols) {
    if (col->IsNull(r)) {
      key->push_back('\0');
      continue;
    }
    key->push_back('\1');
    switch (col->type()) {
      case DataType::kBool:
        key->push_back(col->bool_at(r) ? '1' : '0');
        break;
      case DataType::kInt64: {
        int64_t v = col->int_at(r);
        key->append(reinterpret_cast<const char*>(&v), sizeof(v));
        break;
      }
      case DataType::kDouble: {
        double v = col->double_at(r);
        key->append(reinterpret_cast<const char*>(&v), sizeof(v));
        break;
      }
      case DataType::kString: {
        const std::string& s = col->string_at(r);
        uint32_t len = static_cast<uint32_t>(s.size());
        key->append(reinterpret_cast<const char*>(&len), sizeof(len));
        key->append(s);
        break;
      }
    }
  }
}

namespace {

std::string JoinExprs(const std::vector<ExprPtr>& exprs) {
  std::string out;
  for (size_t i = 0; i < exprs.size(); ++i) {
    if (i > 0) out += ", ";
    out += exprs[i]->ToString();
  }
  return out;
}

/// Widens an evaluated column to the declared schema type when needed
/// (e.g. an int literal feeding a double column).
StatusOr<ColumnVectorPtr> NormalizeType(ColumnVectorPtr col,
                                        DataType want) {
  if (col->type() == want) return col;
  auto cast = std::make_shared<ColumnVector>(want);
  cast->Reserve(col->size());
  for (size_t r = 0; r < col->size(); ++r) {
    FLOCK_RETURN_NOT_OK(cast->AppendValue(col->GetValue(r)));
  }
  return ColumnVectorPtr(std::move(cast));
}

}  // namespace

// ---------------------------------------------------------------------------
// PhysicalOperator
// ---------------------------------------------------------------------------

StatusOr<RecordBatch> PhysicalOperator::ProcessMorsel(const ExecContext&,
                                                      RecordBatch) {
  return Status::Internal("operator '" + label() + "' is not streaming");
}

std::string PhysicalOperator::ToString(int indent, bool analyze) const {
  std::ostringstream out;
  out << std::string(static_cast<size_t>(indent) * 2, ' ') << label()
      << " width=" << output_schema_.num_columns();
  if (analyze) {
    char buf[144];
    uint64_t scanned =
        metrics.segments_scanned.load(std::memory_order_relaxed);
    uint64_t pruned = metrics.segments_pruned.load(std::memory_order_relaxed);
    if (scanned + pruned > 0) {
      std::snprintf(
          buf, sizeof(buf),
          " [in=%llu out=%llu time=%.3fms segments=%llu pruned=%llu]",
          static_cast<unsigned long long>(
              metrics.rows_in.load(std::memory_order_relaxed)),
          static_cast<unsigned long long>(
              metrics.rows_out.load(std::memory_order_relaxed)),
          metrics.millis(), static_cast<unsigned long long>(scanned),
          static_cast<unsigned long long>(pruned));
    } else {
      std::snprintf(buf, sizeof(buf), " [in=%llu out=%llu time=%.3fms]",
                    static_cast<unsigned long long>(
                        metrics.rows_in.load(std::memory_order_relaxed)),
                    static_cast<unsigned long long>(
                        metrics.rows_out.load(std::memory_order_relaxed)),
                    metrics.millis());
    }
    out << buf;
  }
  out << "\n";
  for (const auto& child : children) {
    out << child->ToString(indent + 1, analyze);
  }
  return out.str();
}

void PhysicalOperator::CollectMetrics(std::vector<OperatorMetricsSnapshot>* out,
                                      int depth) const {
  OperatorMetricsSnapshot snap;
  snap.name = label();
  snap.depth = depth;
  snap.rows_in = metrics.rows_in.load(std::memory_order_relaxed);
  snap.rows_out = metrics.rows_out.load(std::memory_order_relaxed);
  snap.wall_ms = metrics.millis();
  snap.segments_scanned =
      metrics.segments_scanned.load(std::memory_order_relaxed);
  snap.segments_pruned =
      metrics.segments_pruned.load(std::memory_order_relaxed);
  out->push_back(std::move(snap));
  for (const auto& child : children) {
    child->CollectMetrics(out, depth + 1);
  }
}

void PhysicalOperator::ResetMetrics() {
  metrics.Reset();
  for (const auto& child : children) child->ResetMetrics();
}

// ---------------------------------------------------------------------------
// TableScanOp
// ---------------------------------------------------------------------------

std::string TableScanOp::label() const {
  std::string out = "TableScan(" + table_name;
  if (!projection.empty()) {
    out += " cols=[";
    for (size_t i = 0; i < projection.size(); ++i) {
      if (i > 0) out += ",";
      out += table->schema().column(projection[i]).name;
    }
    out += "]";
  }
  out += ")";
  return out;
}

RecordBatch TableScanOp::ScanMorsel(size_t segment, size_t begin,
                                    size_t end) const {
  RecordBatch batch = table->ScanSegment(segment, begin, end);
  if (!projection.empty()) batch = batch.Project(projection);
  return batch;
}

bool TableScanOp::CanSkipSegment(size_t segment) const {
  for (const ScanPruneConjunct& conjunct : prune_conjuncts) {
    const storage::ColumnStats& zm =
        table->segment_zone_map(segment, conjunct.table_column);
    switch (conjunct.kind) {
      case ScanPruneConjunct::Kind::kIsNull:
        if (zm.null_count == 0) return true;
        break;
      case ScanPruneConjunct::Kind::kIsNotNull:
        if (zm.null_count == zm.row_count) return true;
        break;
      case ScanPruneConjunct::Kind::kCompare:
        // A comparison never passes NULL, so an all-NULL segment cannot
        // satisfy it regardless of the range.
        if (zm.null_count == zm.row_count) return true;
        if (!zm.numeric || !zm.has_range) break;  // cannot rule out
        switch (conjunct.op) {
          case BinaryOp::kLt:
            if (!(zm.min < conjunct.literal)) return true;
            break;
          case BinaryOp::kLtEq:
            if (!(zm.min <= conjunct.literal)) return true;
            break;
          case BinaryOp::kGt:
            if (!(zm.max > conjunct.literal)) return true;
            break;
          case BinaryOp::kGtEq:
            if (!(zm.max >= conjunct.literal)) return true;
            break;
          case BinaryOp::kEq:
            if (conjunct.literal < zm.min || conjunct.literal > zm.max) {
              return true;
            }
            break;
          default:
            break;
        }
        break;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// FilterOp
// ---------------------------------------------------------------------------

FilterOp::FilterOp(PhysicalOperatorPtr child, ExprPtr predicate)
    : PhysicalOperator(Kind::kFilter, child->output_schema()),
      predicate(std::move(predicate)) {
  children.push_back(std::move(child));
}

std::string FilterOp::label() const {
  return "Filter(" + predicate->ToString() + ")";
}

StatusOr<RecordBatch> FilterOp::ProcessMorsel(const ExecContext& ctx,
                                              RecordBatch input) {
  FLOCK_ASSIGN_OR_RETURN(std::vector<uint32_t> sel,
                         EvaluatePredicate(*predicate, input, ctx.registry));
  if (sel.size() == input.num_rows()) return input;
  // Zero-copy: record the survivors as a selection vector; the gather
  // happens at the first operator that needs dense columns.
  return input.SelectView(std::move(sel));
}

// ---------------------------------------------------------------------------
// ProjectOp
// ---------------------------------------------------------------------------

ProjectOp::ProjectOp(PhysicalOperatorPtr child, std::vector<ExprPtr> exprs,
                     Schema schema)
    : PhysicalOperator(Kind::kProject, std::move(schema)),
      exprs(std::move(exprs)) {
  const Schema& in = child->output_schema();
  is_passthrough_ = true;
  for (size_t i = 0; i < this->exprs.size(); ++i) {
    const Expr& e = *this->exprs[i];
    if (e.kind != ExprKind::kColumnRef || e.column_index < 0 ||
        static_cast<size_t>(e.column_index) >= in.num_columns() ||
        in.column(static_cast<size_t>(e.column_index)).type !=
            output_schema().column(i).type) {
      is_passthrough_ = false;
      break;
    }
    passthrough_.push_back(static_cast<size_t>(e.column_index));
  }
  children.push_back(std::move(child));
}

std::string ProjectOp::label() const {
  return "Project(" + JoinExprs(exprs) + ")";
}

StatusOr<RecordBatch> ProjectOp::ProcessMorsel(const ExecContext& ctx,
                                               RecordBatch input) {
  if (is_passthrough_) {
    // Pure column shuffle: share column data, keep any selection vector.
    return input.Project(passthrough_);
  }
  RecordBatch out(output_schema());
  if (input.num_rows() > 0) {
    for (size_t i = 0; i < exprs.size(); ++i) {
      FLOCK_ASSIGN_OR_RETURN(ColumnVectorPtr col,
                             EvaluateExpr(*exprs[i], input, ctx.registry));
      FLOCK_ASSIGN_OR_RETURN(
          col, NormalizeType(std::move(col), output_schema().column(i).type));
      out.SetColumn(i, std::move(col));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// PredictScoreOp
// ---------------------------------------------------------------------------

PredictScoreOp::PredictScoreOp(PhysicalOperatorPtr child,
                               std::vector<ExprPtr> calls, Schema schema)
    : PhysicalOperator(Kind::kPredictScore, std::move(schema)),
      calls(std::move(calls)) {
  children.push_back(std::move(child));
}

std::string PredictScoreOp::label() const {
  return "PredictScore(" + JoinExprs(calls) + ")";
}

StatusOr<RecordBatch> PredictScoreOp::ProcessMorsel(const ExecContext& ctx,
                                                    RecordBatch input) {
  const size_t child_width = input.num_columns();
  RecordBatch out(output_schema());
  for (size_t c = 0; c < child_width; ++c) {
    out.SetColumn(c, input.column(c));
  }
  for (size_t i = 0; i < calls.size(); ++i) {
    FLOCK_ASSIGN_OR_RETURN(ColumnVectorPtr col,
                           EvaluateExpr(*calls[i], input, ctx.registry));
    FLOCK_ASSIGN_OR_RETURN(
        col, NormalizeType(std::move(col),
                           output_schema().column(child_width + i).type));
    out.SetColumn(child_width + i, std::move(col));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------------

HashJoinBuildOp::HashJoinBuildOp(PhysicalOperatorPtr child,
                                 std::vector<ExprPtr> keys)
    : PhysicalOperator(Kind::kHashJoinBuild, child->output_schema()),
      keys(std::move(keys)) {
  children.push_back(std::move(child));
}

std::string HashJoinBuildOp::label() const {
  return "HashJoinBuild(keys=[" + JoinExprs(keys) + "])";
}

HashJoinProbeOp::HashJoinProbeOp(PhysicalOperatorPtr probe,
                                 PhysicalOperatorPtr build,
                                 std::vector<ExprPtr> keys,
                                 std::vector<ExprPtr> residual,
                                 JoinType join_type, Schema schema)
    : PhysicalOperator(Kind::kHashJoinProbe, std::move(schema)),
      keys(std::move(keys)),
      residual(std::move(residual)),
      join_type(join_type) {
  children.push_back(std::move(probe));
  children.push_back(std::move(build));
}

std::string HashJoinProbeOp::label() const {
  std::string out = join_type == JoinType::kLeft ? "HashJoinProbe(LEFT"
                                                 : "HashJoinProbe(INNER";
  out += ", keys=[" + JoinExprs(keys) + "]";
  if (!residual.empty()) {
    out += ", residual=" + JoinExprs(residual);
  }
  out += ")";
  return out;
}

StatusOr<RecordBatch> HashJoinProbeOp::ProcessMorsel(const ExecContext& ctx,
                                                     RecordBatch input) {
  const JoinHashTable& ht = *build()->table;
  const size_t probe_width = input.num_columns();

  // Evaluate probe-side key expressions over the (dense) morsel.
  std::vector<ColumnVectorPtr> probe_keys;
  probe_keys.reserve(keys.size());
  for (const auto& e : keys) {
    FLOCK_ASSIGN_OR_RETURN(ColumnVectorPtr col,
                           EvaluateExpr(*e, input, ctx.registry));
    probe_keys.push_back(std::move(col));
  }

  // All workers probe the shared read-only hash table concurrently.
  std::vector<uint32_t> lsel;
  std::vector<int64_t> rsel;  // -1 = null-padded (left join, no match)
  std::string key;
  for (size_t l = 0; l < input.num_rows(); ++l) {
    bool any_null = false;
    for (const auto& col : probe_keys) {
      if (col->IsNull(l)) any_null = true;
    }
    bool matched = false;
    if (!any_null) {
      key.clear();
      AppendRowKey(probe_keys, l, &key);
      auto it = ht.index.find(key);
      if (it != ht.index.end()) {
        for (uint32_t r : it->second) {
          lsel.push_back(static_cast<uint32_t>(l));
          rsel.push_back(r);
          matched = true;
        }
      }
    }
    if (!matched && join_type == JoinType::kLeft) {
      lsel.push_back(static_cast<uint32_t>(l));
      rsel.push_back(-1);
    }
  }

  RecordBatch out(output_schema());
  for (size_t c = 0; c < probe_width; ++c) {
    out.mutable_column(c)->AppendSelected(*input.column(c), lsel);
  }
  for (size_t c = 0; c < ht.rows.num_columns(); ++c) {
    ColumnVector* dst = out.mutable_column(probe_width + c);
    const ColumnVector& src = *ht.rows.column(c);
    for (int64_t r : rsel) {
      if (r < 0) {
        dst->AppendNull();
      } else {
        dst->AppendRange(src, static_cast<size_t>(r),
                         static_cast<size_t>(r) + 1);
      }
    }
  }

  if (residual.empty()) return out;

  std::vector<ExprPtr> clauses;
  clauses.reserve(residual.size());
  for (const auto& e : residual) clauses.push_back(e->Clone());
  ExprPtr combined = CombineConjuncts(std::move(clauses));
  if (join_type == JoinType::kLeft) {
    // The residual only filters matched rows; padded rows always survive.
    FLOCK_ASSIGN_OR_RETURN(ColumnVectorPtr mask,
                           EvaluateExpr(*combined, out, ctx.registry));
    std::vector<uint32_t> sel;
    for (size_t i = 0; i < out.num_rows(); ++i) {
      bool is_padded = rsel[i] < 0;
      if (is_padded || (!mask->IsNull(i) && mask->AsDouble(i) != 0.0)) {
        sel.push_back(static_cast<uint32_t>(i));
      }
    }
    return out.SelectView(std::move(sel));
  }
  FLOCK_ASSIGN_OR_RETURN(std::vector<uint32_t> sel,
                         EvaluatePredicate(*combined, out, ctx.registry));
  if (sel.size() == out.num_rows()) return out;
  return out.SelectView(std::move(sel));
}

NestedLoopJoinOp::NestedLoopJoinOp(PhysicalOperatorPtr left,
                                   PhysicalOperatorPtr right,
                                   ExprPtr condition, JoinType join_type,
                                   Schema schema)
    : PhysicalOperator(Kind::kNestedLoopJoin, std::move(schema)),
      condition(std::move(condition)),
      join_type(join_type) {
  children.push_back(std::move(left));
  children.push_back(std::move(right));
}

std::string NestedLoopJoinOp::label() const {
  std::string out = "NestedLoopJoin(";
  switch (join_type) {
    case JoinType::kInner:
      out += "INNER";
      break;
    case JoinType::kLeft:
      out += "LEFT";
      break;
    case JoinType::kCross:
      out += "CROSS";
      break;
  }
  if (condition) out += ", " + condition->ToString();
  out += ")";
  return out;
}

StatusOr<RecordBatch> NestedLoopJoinOp::ProcessMorsel(const ExecContext& ctx,
                                                      RecordBatch input) {
  const RecordBatch& right = *right_rows;
  const size_t left_width = input.num_columns();
  const size_t nr = right.num_rows();

  std::vector<uint32_t> lsel;
  std::vector<int64_t> rsel;
  for (size_t l = 0; l < input.num_rows(); ++l) {
    // One left row fans out to the whole right side, so a cross-join
    // morsel is unbounded in the morsel size; poll per left row to keep
    // kill latency bounded by one inner sweep.
    FLOCK_RETURN_NOT_OK(ctx.cancel.Check("nested_loop_join"));
    if (nr == 0) {
      if (join_type == JoinType::kLeft) {
        lsel.push_back(static_cast<uint32_t>(l));
        rsel.push_back(-1);
      }
      continue;
    }
    for (size_t r = 0; r < nr; ++r) {
      lsel.push_back(static_cast<uint32_t>(l));
      rsel.push_back(static_cast<int64_t>(r));
    }
  }

  RecordBatch out(output_schema());
  for (size_t c = 0; c < left_width; ++c) {
    out.mutable_column(c)->AppendSelected(*input.column(c), lsel);
  }
  for (size_t c = 0; c < right.num_columns(); ++c) {
    ColumnVector* dst = out.mutable_column(left_width + c);
    const ColumnVector& src = *right.column(c);
    for (int64_t r : rsel) {
      if (r < 0) {
        dst->AppendNull();
      } else {
        dst->AppendRange(src, static_cast<size_t>(r),
                         static_cast<size_t>(r) + 1);
      }
    }
  }

  if (condition == nullptr) return out;

  if (join_type == JoinType::kLeft) {
    FLOCK_ASSIGN_OR_RETURN(ColumnVectorPtr mask,
                           EvaluateExpr(*condition, out, ctx.registry));
    std::vector<uint32_t> sel;
    for (size_t i = 0; i < out.num_rows(); ++i) {
      bool is_padded = rsel[i] < 0;
      if (is_padded || (!mask->IsNull(i) && mask->AsDouble(i) != 0.0)) {
        sel.push_back(static_cast<uint32_t>(i));
      }
    }
    return out.SelectView(std::move(sel));
  }
  FLOCK_ASSIGN_OR_RETURN(std::vector<uint32_t> sel,
                         EvaluatePredicate(*condition, out, ctx.registry));
  if (sel.size() == out.num_rows()) return out;
  return out.SelectView(std::move(sel));
}

// ---------------------------------------------------------------------------
// Pipeline breakers
// ---------------------------------------------------------------------------

HashAggregateOp::HashAggregateOp(PhysicalOperatorPtr child,
                                 std::vector<ExprPtr> group_by,
                                 std::vector<ExprPtr> aggregates,
                                 Schema schema)
    : PhysicalOperator(Kind::kHashAggregate, std::move(schema)),
      group_by(std::move(group_by)),
      aggregates(std::move(aggregates)) {
  children.push_back(std::move(child));
}

std::string HashAggregateOp::label() const {
  return "HashAggregate(groups=[" + JoinExprs(group_by) + "], aggs=[" +
         JoinExprs(aggregates) + "])";
}

SortOp::SortOp(PhysicalOperatorPtr child, std::vector<SortKey> keys)
    : PhysicalOperator(Kind::kSort, child->output_schema()),
      keys(std::move(keys)) {
  children.push_back(std::move(child));
}

std::string SortOp::label() const {
  std::string out = "Sort(";
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i > 0) out += ", ";
    out += keys[i].expr->ToString();
    out += keys[i].ascending ? " ASC" : " DESC";
  }
  out += ")";
  return out;
}

DistinctOp::DistinctOp(PhysicalOperatorPtr child)
    : PhysicalOperator(Kind::kDistinct, child->output_schema()) {
  children.push_back(std::move(child));
}

std::string DistinctOp::label() const { return "Distinct"; }

LimitOp::LimitOp(PhysicalOperatorPtr child, int64_t limit, int64_t offset)
    : PhysicalOperator(Kind::kLimit, child->output_schema()),
      limit(limit),
      offset(offset) {
  children.push_back(std::move(child));
}

std::string LimitOp::label() const {
  std::string out = "Limit(" + std::to_string(limit);
  if (offset > 0) out += " OFFSET " + std::to_string(offset);
  out += ")";
  return out;
}

}  // namespace flock::sql
