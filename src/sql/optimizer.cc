#include "sql/optimizer.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "obs/trace.h"
#include "sql/evaluator.h"

namespace flock::sql {

using storage::DataType;
using storage::Schema;
using storage::Value;

std::vector<ExprPtr> SplitConjuncts(ExprPtr predicate) {
  std::vector<ExprPtr> out;
  if (predicate == nullptr) return out;
  if (predicate->kind == ExprKind::kBinary &&
      predicate->bin_op == BinaryOp::kAnd) {
    auto lhs = SplitConjuncts(std::move(predicate->children[0]));
    auto rhs = SplitConjuncts(std::move(predicate->children[1]));
    for (auto& e : lhs) out.push_back(std::move(e));
    for (auto& e : rhs) out.push_back(std::move(e));
    return out;
  }
  out.push_back(std::move(predicate));
  return out;
}

ExprPtr CombineConjuncts(std::vector<ExprPtr> conjuncts) {
  if (conjuncts.empty()) {
    return Expr::MakeLiteral(Value::Bool(true));
  }
  ExprPtr result = std::move(conjuncts[0]);
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    result = Expr::MakeBinary(BinaryOp::kAnd, std::move(result),
                              std::move(conjuncts[i]));
  }
  return result;
}

namespace {

// ---------------------------------------------------------------------------
// Constant folding
// ---------------------------------------------------------------------------

Status FoldExpr(ExprPtr* e, const FunctionRegistry* registry) {
  for (auto& c : (*e)->children) {
    if (c) FLOCK_RETURN_NOT_OK(FoldExpr(&c, registry));
  }
  if ((*e)->kind == ExprKind::kLiteral) return Status::OK();
  if (!IsConstantExpr(**e)) return Status::OK();
  // PREDICT over constants is still expensive+stateful; leave it alone.
  bool has_udf = false;
  VisitExpr(**e, [&](const Expr& node) {
    if (node.kind == ExprKind::kFunction &&
        node.function_name == "PREDICT") {
      has_udf = true;
    }
  });
  if (has_udf) return Status::OK();
  auto folded = EvaluateConstant(**e, registry);
  if (!folded.ok()) return Status::OK();  // fold opportunistically
  *e = Expr::MakeLiteral(std::move(folded).value());
  return Status::OK();
}

Status FoldPlan(LogicalPlan* plan, const FunctionRegistry* registry) {
  for (auto& c : plan->children) {
    FLOCK_RETURN_NOT_OK(FoldPlan(c.get(), registry));
  }
  if (plan->predicate) FLOCK_RETURN_NOT_OK(FoldExpr(&plan->predicate,
                                                    registry));
  for (auto& e : plan->exprs) FLOCK_RETURN_NOT_OK(FoldExpr(&e, registry));
  for (auto& e : plan->group_by) FLOCK_RETURN_NOT_OK(FoldExpr(&e, registry));
  if (plan->join_condition) {
    FLOCK_RETURN_NOT_OK(FoldExpr(&plan->join_condition, registry));
  }
  for (auto& k : plan->sort_keys) {
    FLOCK_RETURN_NOT_OK(FoldExpr(&k.expr, registry));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Predicate pushdown
// ---------------------------------------------------------------------------

/// Max column index referenced, or -1 for none.
int MaxColumnIndex(const Expr& e) {
  int max_idx = -1;
  VisitExpr(e, [&](const Expr& node) {
    if (node.kind == ExprKind::kColumnRef) {
      max_idx = std::max(max_idx, node.column_index);
    }
  });
  return max_idx;
}

int MinColumnIndex(const Expr& e) {
  int min_idx = 1 << 30;
  VisitExpr(e, [&](const Expr& node) {
    if (node.kind == ExprKind::kColumnRef) {
      min_idx = std::min(min_idx, node.column_index);
    }
  });
  return min_idx == (1 << 30) ? -1 : min_idx;
}


/// Substitutes column refs in `e` with clones of `sources[index]`.
void SubstituteColumns(Expr* e, const std::vector<ExprPtr>& sources) {
  if (e->kind == ExprKind::kColumnRef) {
    FLOCK_CHECK(e->column_index >= 0 &&
                static_cast<size_t>(e->column_index) < sources.size());
    *e = std::move(*sources[static_cast<size_t>(e->column_index)]->Clone());
    return;
  }
  for (auto& c : e->children) {
    if (c) SubstituteColumns(c.get(), sources);
  }
}

/// True if every column the conjunct touches maps to a cheap (column or
/// literal) projection source.
bool SubstitutionIsCheap(const Expr& conjunct,
                         const std::vector<ExprPtr>& sources) {
  bool cheap = true;
  VisitExpr(conjunct, [&](const Expr& node) {
    if (node.kind == ExprKind::kColumnRef && node.column_index >= 0) {
      const Expr& src = *sources[static_cast<size_t>(node.column_index)];
      if (src.kind != ExprKind::kColumnRef &&
          src.kind != ExprKind::kLiteral) {
        cheap = false;
      }
    }
  });
  return cheap;
}

void ShiftColumnIndexes(Expr* e, int delta) {
  VisitExprMutable(e, [delta](Expr* node) {
    if (node->kind == ExprKind::kColumnRef) node->column_index += delta;
  });
}

void PushDown(PlanPtr* plan);

/// Handles Filter-over-X rewrites; `*plan` is a Filter node.
void PushDownFilter(PlanPtr* plan) {
  LogicalPlan* filter = plan->get();
  LogicalPlan* child = filter->children[0].get();
  switch (child->kind) {
    case PlanKind::kFilter: {
      // Merge adjacent filters.
      filter->predicate = Expr::MakeBinary(BinaryOp::kAnd,
                                           std::move(filter->predicate),
                                           std::move(child->predicate));
      filter->children[0] = std::move(child->children[0]);
      PushDownFilter(plan);
      return;
    }
    case PlanKind::kProject: {
      std::vector<ExprPtr> conjuncts =
          SplitConjuncts(std::move(filter->predicate));
      std::vector<ExprPtr> pushed;
      std::vector<ExprPtr> kept;
      for (auto& conjunct : conjuncts) {
        if (SubstitutionIsCheap(*conjunct, child->exprs)) {
          SubstituteColumns(conjunct.get(), child->exprs);
          pushed.push_back(std::move(conjunct));
        } else {
          kept.push_back(std::move(conjunct));
        }
      }
      if (!pushed.empty()) {
        PlanPtr grandchild = std::move(child->children[0]);
        child->children[0] = LogicalPlan::MakeFilter(
            std::move(grandchild), CombineConjuncts(std::move(pushed)));
        PushDown(&child->children[0]);
      }
      if (kept.empty()) {
        // Filter dissolves entirely.
        *plan = std::move(filter->children[0]);
        PushDown(plan);
      } else {
        filter->predicate = CombineConjuncts(std::move(kept));
        PushDown(&filter->children[0]);
      }
      return;
    }
    case PlanKind::kJoin: {
      size_t left_width =
          child->children[0]->output_schema.num_columns();
      std::vector<ExprPtr> conjuncts =
          SplitConjuncts(std::move(filter->predicate));
      std::vector<ExprPtr> to_left, to_right, kept;
      for (auto& conjunct : conjuncts) {
        int lo = MinColumnIndex(*conjunct);
        int hi = MaxColumnIndex(*conjunct);
        bool left_only = hi >= 0 && hi < static_cast<int>(left_width);
        bool right_only = lo >= static_cast<int>(left_width);
        if (left_only) {
          to_left.push_back(std::move(conjunct));
        } else if (right_only && child->join_type != JoinType::kLeft) {
          ShiftColumnIndexes(conjunct.get(),
                             -static_cast<int>(left_width));
          to_right.push_back(std::move(conjunct));
        } else {
          kept.push_back(std::move(conjunct));
        }
      }
      if (!to_left.empty()) {
        child->children[0] = LogicalPlan::MakeFilter(
            std::move(child->children[0]),
            CombineConjuncts(std::move(to_left)));
      }
      if (!to_right.empty()) {
        child->children[1] = LogicalPlan::MakeFilter(
            std::move(child->children[1]),
            CombineConjuncts(std::move(to_right)));
      }
      PushDown(&child->children[0]);
      PushDown(&child->children[1]);
      if (kept.empty()) {
        *plan = std::move(filter->children[0]);
      } else {
        filter->predicate = CombineConjuncts(std::move(kept));
      }
      return;
    }
    default:
      PushDown(&filter->children[0]);
      return;
  }
}

void PushDown(PlanPtr* plan) {
  if ((*plan)->kind == PlanKind::kFilter) {
    PushDownFilter(plan);
    return;
  }
  for (auto& c : (*plan)->children) PushDown(&c);
}

// ---------------------------------------------------------------------------
// Projection pruning
// ---------------------------------------------------------------------------

void AddExprColumns(const Expr& e, std::set<size_t>* required) {
  VisitExpr(e, [&](const Expr& node) {
    if (node.kind == ExprKind::kColumnRef && node.column_index >= 0) {
      required->insert(static_cast<size_t>(node.column_index));
    }
  });
}

void RemapExpr(Expr* e, const std::vector<int>& remap) {
  VisitExprMutable(e, [&](Expr* node) {
    if (node->kind == ExprKind::kColumnRef && node->column_index >= 0) {
      int idx = remap[static_cast<size_t>(node->column_index)];
      FLOCK_CHECK(idx >= 0) << "pruned a column that is still referenced";
      node->column_index = idx;
    }
  });
}

/// Narrows `plan`'s output to `required` where possible. Returns the remap
/// from old output column indexes to new ones (-1 = dropped).
std::vector<int> Prune(LogicalPlan* plan, const std::set<size_t>& required) {
  size_t width = plan->output_schema.num_columns();
  std::vector<int> identity(width);
  for (size_t i = 0; i < width; ++i) identity[i] = static_cast<int>(i);

  switch (plan->kind) {
    case PlanKind::kScan: {
      // Compose with any existing projection.
      std::vector<size_t> base = plan->projection;
      if (base.empty()) {
        base.resize(width);
        for (size_t i = 0; i < width; ++i) base[i] = i;
      }
      std::vector<int> remap(width, -1);
      std::vector<size_t> new_projection;
      Schema new_schema;
      for (size_t i = 0; i < width; ++i) {
        if (required.count(i) > 0) {
          remap[i] = static_cast<int>(new_projection.size());
          new_projection.push_back(base[i]);
          new_schema.AddColumn(plan->output_schema.column(i));
        }
      }
      if (new_projection.empty() && width > 0) {
        // Keep one column so the scan still yields row counts.
        remap[0] = 0;
        new_projection.push_back(base[0]);
        new_schema.AddColumn(plan->output_schema.column(0));
      }
      plan->projection = std::move(new_projection);
      plan->output_schema = std::move(new_schema);
      return remap;
    }
    case PlanKind::kFilter: {
      std::set<size_t> child_required = required;
      AddExprColumns(*plan->predicate, &child_required);
      std::vector<int> remap = Prune(plan->children[0].get(),
                                     child_required);
      RemapExpr(plan->predicate.get(), remap);
      plan->output_schema = plan->children[0]->output_schema;
      return remap;
    }
    case PlanKind::kProject: {
      // Keep only the required output expressions.
      std::vector<int> remap(width, -1);
      std::vector<ExprPtr> kept_exprs;
      std::vector<std::string> kept_names;
      Schema kept_schema;
      for (size_t i = 0; i < plan->exprs.size(); ++i) {
        if (required.count(i) > 0 || required.empty()) {
          remap[i] = static_cast<int>(kept_exprs.size());
          kept_exprs.push_back(std::move(plan->exprs[i]));
          kept_names.push_back(plan->names[i]);
          kept_schema.AddColumn(plan->output_schema.column(i));
        }
      }
      if (kept_exprs.empty() && !plan->exprs.empty()) {
        remap[0] = 0;
        kept_exprs.push_back(std::move(plan->exprs[0]));
        kept_names.push_back(plan->names[0]);
        kept_schema.AddColumn(plan->output_schema.column(0));
      }
      plan->exprs = std::move(kept_exprs);
      plan->names = std::move(kept_names);
      plan->output_schema = std::move(kept_schema);

      std::set<size_t> child_required;
      for (const auto& e : plan->exprs) AddExprColumns(*e, &child_required);
      std::vector<int> child_remap =
          Prune(plan->children[0].get(), child_required);
      for (auto& e : plan->exprs) RemapExpr(e.get(), child_remap);
      return remap;
    }
    case PlanKind::kJoin: {
      size_t left_width = plan->children[0]->output_schema.num_columns();
      size_t right_width = plan->children[1]->output_schema.num_columns();
      std::set<size_t> all = required;
      if (plan->join_condition) {
        AddExprColumns(*plan->join_condition, &all);
      }
      std::set<size_t> left_req, right_req;
      for (size_t idx : all) {
        if (idx < left_width) {
          left_req.insert(idx);
        } else {
          right_req.insert(idx - left_width);
        }
      }
      std::vector<int> left_remap = Prune(plan->children[0].get(), left_req);
      std::vector<int> right_remap =
          Prune(plan->children[1].get(), right_req);
      size_t new_left_width =
          plan->children[0]->output_schema.num_columns();
      std::vector<int> remap(width, -1);
      for (size_t i = 0; i < left_width; ++i) remap[i] = left_remap[i];
      for (size_t i = 0; i < right_width; ++i) {
        if (right_remap[i] >= 0) {
          remap[left_width + i] =
              right_remap[i] + static_cast<int>(new_left_width);
        }
      }
      if (plan->join_condition) {
        RemapExpr(plan->join_condition.get(), remap);
      }
      Schema new_schema = plan->children[0]->output_schema;
      for (const auto& col : plan->children[1]->output_schema.columns()) {
        new_schema.AddColumn(col);
      }
      plan->output_schema = std::move(new_schema);
      return remap;
    }
    case PlanKind::kAggregate: {
      std::set<size_t> child_required;
      for (const auto& e : plan->group_by) {
        AddExprColumns(*e, &child_required);
      }
      for (const auto& e : plan->aggregates) {
        AddExprColumns(*e, &child_required);
      }
      std::vector<int> child_remap =
          Prune(plan->children[0].get(), child_required);
      for (auto& e : plan->group_by) RemapExpr(e.get(), child_remap);
      for (auto& e : plan->aggregates) RemapExpr(e.get(), child_remap);
      return identity;  // aggregate output shape unchanged
    }
    case PlanKind::kSort: {
      std::set<size_t> child_required = required;
      for (const auto& k : plan->sort_keys) {
        AddExprColumns(*k.expr, &child_required);
      }
      std::vector<int> remap = Prune(plan->children[0].get(),
                                     child_required);
      for (auto& k : plan->sort_keys) RemapExpr(k.expr.get(), remap);
      plan->output_schema = plan->children[0]->output_schema;
      return remap;
    }
    case PlanKind::kLimit:
    case PlanKind::kDistinct: {
      // Distinct semantics depend on the full row; require all columns.
      std::set<size_t> child_required;
      for (size_t i = 0; i < width; ++i) child_required.insert(i);
      std::vector<int> remap = Prune(plan->children[0].get(),
                                     child_required);
      plan->output_schema = plan->children[0]->output_schema;
      return remap;
    }
  }
  return identity;
}

}  // namespace

Status Optimize(PlanPtr* plan, const FunctionRegistry* registry,
                const OptimizerOptions& options) {
  if (options.constant_folding) {
    obs::ScopedSpan span("rule.constant_folding");
    FLOCK_RETURN_NOT_OK(FoldPlan(plan->get(), registry));
  }
  if (options.predicate_pushdown) {
    obs::ScopedSpan span("rule.predicate_pushdown");
    PushDown(plan);
  }
  if (options.projection_pruning) {
    obs::ScopedSpan span("rule.projection_pruning");
    std::set<size_t> all;
    for (size_t i = 0; i < (*plan)->output_schema.num_columns(); ++i) {
      all.insert(i);
    }
    Prune(plan->get(), all);
  }
  return Status::OK();
}

}  // namespace flock::sql
