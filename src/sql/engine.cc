#include "sql/engine.h"

#include <cstdio>
#include <optional>
#include <thread>

#include "common/hash.h"
#include "common/stopwatch.h"
#include "sql/evaluator.h"
#include "sql/parser.h"
#include "sql/physical_planner.h"
#include "sql/planner.h"

namespace flock::sql {

namespace {

/// Cheap prefix test for EXPLAIN ANALYZE so Execute can decide whether
/// to trace without lower-casing the whole statement on the hot path.
bool IsExplainAnalyze(const std::string& sql) {
  size_t i = 0;
  auto skip_space = [&] {
    while (i < sql.size() &&
           std::isspace(static_cast<unsigned char>(sql[i]))) {
      ++i;
    }
  };
  auto match_word = [&](const char* word) {
    size_t start = i;
    for (const char* w = word; *w != '\0'; ++w, ++i) {
      if (i >= sql.size() ||
          std::tolower(static_cast<unsigned char>(sql[i])) != *w) {
        i = start;
        return false;
      }
    }
    if (i < sql.size() &&
        !std::isspace(static_cast<unsigned char>(sql[i]))) {
      i = start;
      return false;
    }
    return true;
  };
  skip_space();
  if (!match_word("explain")) return false;
  skip_space();
  return match_word("analyze");
}

/// Converts the executor's per-operator wall_ms into nanoseconds for
/// span grafting.
uint64_t WallNanos(double wall_ms) {
  return wall_ms <= 0.0 ? 0
                        : static_cast<uint64_t>(wall_ms * 1e6);
}

/// Grafts the executed physical plan's per-operator counters under the
/// (already closed) `execute` span, plus a synthesized sibling `score`
/// span summing the PredictScore operators — so a trace shows where
/// model scoring sits inside execution without a separate timer on the
/// scoring hot path.
void GraftExecutionSpans(
    obs::TraceRecorder* recorder, size_t execute_span,
    const std::vector<OperatorMetricsSnapshot>& operator_metrics) {
  if (recorder == nullptr) return;
  double score_ms = 0.0;
  for (const auto& op : operator_metrics) {
    recorder->AddUnder(execute_span, op.name, op.depth,
                       WallNanos(op.wall_ms));
    if (op.name.rfind("PredictScore", 0) == 0) score_ms += op.wall_ms;
  }
  if (score_ms > 0.0) {
    // Sibling of execute (extra_depth -1 lifts it back to the stage
    // level): the model-scoring share of the run.
    recorder->AddUnder(execute_span, "score", -1, WallNanos(score_ms));
  }
}

/// Binds column refs in a DML predicate/assignment against a single table
/// schema, with the same PREDICT(model, ...) first-argument handling as
/// the SELECT planner — so `UPDATE t SET flagged = 1 WHERE PREDICT(m,
/// a, b) > 0.9` works.
Status BindDmlExpr(Expr* e, const storage::Schema& schema) {
  if (e->kind == ExprKind::kFunction && e->function_name == "PREDICT") {
    if (e->children.empty()) {
      return Status::InvalidArgument("PREDICT requires a model argument");
    }
    if (e->children[0]->kind == ExprKind::kColumnRef) {
      e->children[0] = Expr::MakeLiteral(
          storage::Value::String(e->children[0]->column_name));
    }
    for (size_t i = 1; i < e->children.size(); ++i) {
      FLOCK_RETURN_NOT_OK(BindDmlExpr(e->children[i].get(), schema));
    }
    return Status::OK();
  }
  if (e->kind == ExprKind::kColumnRef) {
    if (e->column_index >= 0) return Status::OK();
    auto idx = schema.FindColumn(e->column_name);
    if (!idx.has_value()) {
      return Status::NotFound("column not found: " + e->column_name);
    }
    e->column_index = static_cast<int>(*idx);
    e->resolved_type = schema.column(*idx).type;
    return Status::OK();
  }
  for (auto& c : e->children) {
    if (c) FLOCK_RETURN_NOT_OK(BindDmlExpr(c.get(), schema));
  }
  return Status::OK();
}

}  // namespace

using storage::DataType;
using storage::RecordBatch;
using storage::Schema;
using storage::TablePtr;
using storage::Value;

std::string PlanDigest(
    const std::vector<OperatorMetricsSnapshot>& operator_metrics) {
  if (operator_metrics.empty()) return "";
  uint64_t h = 0xCBF29CE484222325ULL;
  for (const auto& op : operator_metrics) {
    h = HashCombine(h, HashString(op.name));
    h = HashCombine(h, HashInt64(op.depth));
  }
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(h));
  return hex;
}

SqlEngine::SqlEngine(storage::Database* db, EngineOptions options)
    : db_(db), options_(options),
      plan_cache_(options.plan_cache_capacity),
      slow_log_(options.slow_log_capacity,
                options.slow_query_threshold_ms) {
  if (options_.num_threads == 0) {
    options_.num_threads =
        std::max(1u, std::thread::hardware_concurrency());
  }
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  FunctionRegistry::RegisterBuiltins(&registry_);
}

StatusOr<QueryResult> SqlEngine::Execute(const std::string& sql,
                                         const ExecOptions& exec_opts) {
  Stopwatch timer;
  // A request that spent its whole deadline in the admission queue (or
  // was killed before a worker picked it up) stops here, before parsing.
  FLOCK_RETURN_NOT_OK(exec_opts.cancel.Check("sql.execute"));
  // Install the token thread-locally for the parse/plan/DML phases; the
  // executor re-installs it on its own workers for the execute phase.
  CancelScope cancel_scope(exec_opts.cancel);
  // Tracing is per-call (the serving layer's `.trace on`) and implied by
  // EXPLAIN ANALYZE. The recorder is installed thread-locally so layers
  // without an explicit parameter path — the optimizer's rules, the WAL
  // observer firing behind the storage API — can attach spans; untraced
  // requests never allocate a recorder.
  const bool tracing = exec_opts.trace || IsExplainAnalyze(sql);
  std::optional<obs::TraceRecorder> recorder;
  std::optional<obs::TraceScope> trace_scope;
  if (tracing) {
    recorder.emplace();
    trace_scope.emplace(&*recorder);
  }
  // Prepared-statement fast path: a normalized-text hit returns a private
  // clone of the optimized plan and skips parse/plan/optimize entirely.
  // Bypassed while an observer is set — observers must see every parsed
  // statement (eager provenance capture).
  const bool use_cache =
      options_.enable_plan_cache && statement_observer_ == nullptr;
  std::string cache_key;
  if (use_cache) {
    PlanPtr cached;
    {
      obs::ScopedSpan span("plan_cache.lookup");
      cache_key = NormalizeSql(sql);
      cached = plan_cache_.Lookup(cache_key);
    }
    if (cached != nullptr) {
      FLOCK_ASSIGN_OR_RETURN(QueryResult result,
                             ExecuteCachedPlan(*cached, exec_opts.cancel));
      result.elapsed_ms = timer.ElapsedMillis();
      if (recorder.has_value()) result.trace = recorder->Snapshot();
      MaybeRecordSlowQuery(result, sql, &cache_key);
      if (options_.keep_query_log) AppendQueryLog(sql);
      return result;
    }
  }
  StatementPtr stmt;
  {
    obs::ScopedSpan span("parse");
    FLOCK_ASSIGN_OR_RETURN(stmt, Parser::Parse(sql));
  }
  FLOCK_ASSIGN_OR_RETURN(
      QueryResult result,
      ExecuteStatement(sql, *stmt, use_cache ? &cache_key : nullptr,
                       exec_opts.cancel));
  result.elapsed_ms = timer.ElapsedMillis();
  if (recorder.has_value()) result.trace = recorder->Snapshot();
  MaybeRecordSlowQuery(result, sql,
                       use_cache ? &cache_key : nullptr);
  if (options_.keep_query_log) AppendQueryLog(sql);
  if (statement_observer_) statement_observer_(sql, *stmt);
  return result;
}

StatusOr<QueryResult> SqlEngine::ExecuteCachedPlan(
    const LogicalPlan& plan, const CancelToken& cancel) {
  PhysicalPlanner physical_planner(&registry_);
  QueryResult result;
  PhysicalOperatorPtr lowered;
  {
    obs::ScopedSpan span("lower");
    FLOCK_ASSIGN_OR_RETURN(lowered, physical_planner.Lower(plan));
  }
  size_t execute_span = 0;
  {
    obs::ScopedSpan exec_span("execute");
    execute_span = exec_span.index();
    FLOCK_ASSIGN_OR_RETURN(result.batch,
                           ExecutePhysical(lowered.get(), cancel));
    lowered->CollectMetrics(&result.operator_metrics);
  }
  AccumulateScanMetrics(result.operator_metrics);
  if (auto* rec = obs::TraceRecorder::Current()) {
    GraftExecutionSpans(rec, execute_span, result.operator_metrics);
  }
  result.plan_digest = PlanDigest(result.operator_metrics);
  result.from_plan_cache = true;
  return result;
}

void SqlEngine::AccumulateScanMetrics(
    const std::vector<OperatorMetricsSnapshot>& snapshots) {
  uint64_t scanned = 0, pruned = 0;
  for (const auto& snap : snapshots) {
    scanned += snap.segments_scanned;
    pruned += snap.segments_pruned;
  }
  if (scanned > 0) {
    segments_scanned_total_.fetch_add(scanned, std::memory_order_relaxed);
  }
  if (pruned > 0) {
    segments_pruned_total_.fetch_add(pruned, std::memory_order_relaxed);
  }
}

void SqlEngine::MaybeRecordSlowQuery(const QueryResult& result,
                                     const std::string& sql,
                                     const std::string* normalized) {
  if (!slow_log_.ShouldRecord(result.elapsed_ms)) return;
  obs::SlowQueryEntry entry;
  entry.sql = normalized != nullptr ? *normalized : NormalizeSql(sql);
  entry.plan_digest = result.plan_digest;
  entry.elapsed_ms = result.elapsed_ms;
  entry.from_plan_cache = result.from_plan_cache;
  entry.trace = result.trace;
  slow_log_.Record(std::move(entry));
}

void SqlEngine::AppendQueryLog(const std::string& sql) {
  std::lock_guard<std::mutex> lock(query_log_mu_);
  query_log_.push_back(sql);
}

StatusOr<QueryResult> SqlEngine::ExecuteScript(const std::string& sql) {
  FLOCK_ASSIGN_OR_RETURN(std::vector<StatementPtr> stmts,
                         Parser::ParseScript(sql));
  QueryResult last;
  for (const auto& stmt : stmts) {
    FLOCK_ASSIGN_OR_RETURN(last, ExecuteStatement(sql, *stmt, nullptr));
  }
  return last;
}

StatusOr<QueryResult> SqlEngine::ExecuteStatement(
    const std::string& sql, const Statement& stmt,
    const std::string* cache_key, const CancelToken& cancel) {
  // DML/DDL mutate in place and are not interruptible mid-statement
  // (see DESIGN.md "Cancellation contract"); the check here covers the
  // window between parse and the first mutation.
  FLOCK_RETURN_NOT_OK(cancel.Check("sql.statement"));
  switch (stmt.kind()) {
    case StatementKind::kSelect:
      return ExecuteSelect(static_cast<const SelectStatement&>(stmt),
                           cache_key, cancel);
    case StatementKind::kInsert:
      return ExecuteInsert(static_cast<const InsertStatement&>(stmt));
    case StatementKind::kUpdate:
      return ExecuteUpdate(static_cast<const UpdateStatement&>(stmt));
    case StatementKind::kDelete:
      return ExecuteDelete(static_cast<const DeleteStatement&>(stmt));
    case StatementKind::kCreateTable: {
      const auto& create = static_cast<const CreateTableStatement&>(stmt);
      FLOCK_RETURN_NOT_OK(db_->CreateTable(create.table_name,
                                           create.schema));
      plan_cache_.Clear();  // cached plans hold resolved table handles
      return QueryResult{};
    }
    case StatementKind::kDropTable: {
      const auto& drop = static_cast<const DropTableStatement&>(stmt);
      FLOCK_RETURN_NOT_OK(db_->DropTable(drop.table_name));
      plan_cache_.Clear();
      return QueryResult{};
    }
    case StatementKind::kCreateModel: {
      if (!create_model_handler_) {
        return Status::NotSupported(
            "CREATE MODEL requires the Flock layer (use flock::FlockEngine)");
      }
      FLOCK_RETURN_NOT_OK(create_model_handler_(
          static_cast<const CreateModelStatement&>(stmt)));
      // Cached plans may reference specializations of the old version.
      plan_cache_.Clear();
      return QueryResult{};
    }
    case StatementKind::kDropModel: {
      if (!drop_model_handler_) {
        return Status::NotSupported(
            "DROP MODEL requires the Flock layer (use flock::FlockEngine)");
      }
      FLOCK_RETURN_NOT_OK(drop_model_handler_(
          static_cast<const DropModelStatement&>(stmt)));
      plan_cache_.Clear();
      return QueryResult{};
    }
    case StatementKind::kExplain: {
      const auto& explain = static_cast<const ExplainStatement&>(stmt);
      if (explain.inner->kind() != StatementKind::kSelect) {
        return Status::NotSupported("EXPLAIN supports SELECT only");
      }
      const auto& select =
          static_cast<const SelectStatement&>(*explain.inner);
      PlanPtr plan;
      {
        obs::ScopedSpan span("plan");
        FLOCK_ASSIGN_OR_RETURN(plan, PlanQuery(select));
      }
      FLOCK_RETURN_NOT_OK(OptimizePlan(&plan));
      PhysicalPlanner physical_planner(&registry_);
      PhysicalOperatorPtr root;
      {
        obs::ScopedSpan span("lower");
        FLOCK_ASSIGN_OR_RETURN(root, physical_planner.Lower(*plan));
      }
      QueryResult result;
      if (explain.analyze) {
        // EXPLAIN ANALYZE: execute, then render the plan with the
        // per-operator counters the run recorded.
        size_t execute_span = 0;
        {
          obs::ScopedSpan span("execute");
          execute_span = span.index();
          FLOCK_ASSIGN_OR_RETURN(RecordBatch discard,
                                 ExecutePhysical(root.get(), cancel));
          (void)discard;
          root->CollectMetrics(&result.operator_metrics);
        }
        AccumulateScanMetrics(result.operator_metrics);
        if (auto* rec = obs::TraceRecorder::Current()) {
          GraftExecutionSpans(rec, execute_span, result.operator_metrics);
        }
        result.plan_digest = PlanDigest(result.operator_metrics);
      }
      result.plan_text = "== Logical Plan ==\n" + plan->ToString() +
                         "== Physical Plan ==\n" +
                         root->ToString(0, explain.analyze);
      if (explain.analyze) {
        // Surface plan-cache effectiveness next to the operator counters.
        PlanCacheStats cache = plan_cache_.stats();
        char line[160];
        std::snprintf(line, sizeof(line),
                      "== Plan Cache ==\nhits=%llu misses=%llu "
                      "hit_rate=%.1f%% entries=%zu\n",
                      static_cast<unsigned long long>(cache.hits),
                      static_cast<unsigned long long>(cache.misses),
                      100.0 * cache.hit_rate(), plan_cache_.size());
        result.plan_text += line;
        // EXPLAIN ANALYZE always runs traced (Execute installs the
        // recorder when it sees the prefix); render the span tree too.
        if (auto* rec = obs::TraceRecorder::Current()) {
          result.plan_text +=
              "== Trace ==\n" + obs::RenderSpanTree(rec->Snapshot());
        }
      }
      Schema schema({storage::ColumnDef{"plan", DataType::kString, false}});
      result.batch = RecordBatch(schema);
      FLOCK_RETURN_NOT_OK(
          result.batch.AppendRow({Value::String(result.plan_text)}));
      return result;
    }
  }
  (void)sql;
  return Status::Internal("unhandled statement kind");
}

StatusOr<PlanPtr> SqlEngine::PlanQuery(const SelectStatement& stmt) {
  Planner planner(db_, &registry_);
  return planner.PlanSelect(stmt);
}

Status SqlEngine::OptimizePlan(PlanPtr* plan) {
  obs::ScopedSpan span("optimize");
  if (options_.enable_optimizer) {
    FLOCK_RETURN_NOT_OK(Optimize(plan, &registry_));
  }
  if (plan_rewriter_) {
    {
      obs::ScopedSpan rewrite_span("optimize.cross_optimizer");
      FLOCK_RETURN_NOT_OK(plan_rewriter_(plan));
    }
    // The rewriter may have changed column usage (e.g. pruned PREDICT
    // arguments); re-run pruning so scans narrow accordingly.
    if (options_.enable_optimizer) {
      obs::ScopedSpan prune_span("optimize.post_rewrite_prune");
      OptimizerOptions prune_only;
      prune_only.constant_folding = false;
      prune_only.predicate_pushdown = false;
      FLOCK_RETURN_NOT_OK(Optimize(plan, &registry_, prune_only));
    }
  }
  return Status::OK();
}

StatusOr<RecordBatch> SqlEngine::ExecutePlan(const LogicalPlan& plan,
                                             const CancelToken& cancel) {
  ExecutorOptions exec_options;
  exec_options.num_threads = options_.num_threads;
  exec_options.morsel_size = options_.morsel_size;
  exec_options.enable_zone_map_pruning = options_.enable_zone_map_pruning;
  exec_options.cancel = cancel;
  Executor executor(&registry_, pool_.get(), exec_options);
  return executor.Execute(plan);
}

StatusOr<RecordBatch> SqlEngine::ExecutePhysical(PhysicalOperator* root,
                                                 const CancelToken& cancel) {
  ExecutorOptions exec_options;
  exec_options.num_threads = options_.num_threads;
  exec_options.morsel_size = options_.morsel_size;
  exec_options.enable_zone_map_pruning = options_.enable_zone_map_pruning;
  exec_options.cancel = cancel;
  Executor executor(&registry_, pool_.get(), exec_options);
  return executor.Execute(root);
}

StatusOr<QueryResult> SqlEngine::ExecuteSelect(
    const SelectStatement& stmt, const std::string* cache_key,
    const CancelToken& cancel) {
  PlanPtr plan;
  {
    obs::ScopedSpan span("plan");
    FLOCK_ASSIGN_OR_RETURN(plan, PlanQuery(stmt));
  }
  FLOCK_RETURN_NOT_OK(OptimizePlan(&plan));
  if (cache_key != nullptr) {
    plan_cache_.Insert(*cache_key, plan->Clone());
  }
  PhysicalPlanner physical_planner(&registry_);
  PhysicalOperatorPtr root;
  {
    obs::ScopedSpan span("lower");
    FLOCK_ASSIGN_OR_RETURN(root, physical_planner.Lower(*plan));
  }
  QueryResult result;
  size_t execute_span = 0;
  {
    obs::ScopedSpan span("execute");
    execute_span = span.index();
    FLOCK_ASSIGN_OR_RETURN(result.batch,
                           ExecutePhysical(root.get(), cancel));
    root->CollectMetrics(&result.operator_metrics);
  }
  AccumulateScanMetrics(result.operator_metrics);
  if (auto* rec = obs::TraceRecorder::Current()) {
    GraftExecutionSpans(rec, execute_span, result.operator_metrics);
  }
  result.plan_digest = PlanDigest(result.operator_metrics);
  return result;
}

StatusOr<QueryResult> SqlEngine::ExecuteInsert(const InsertStatement& stmt) {
  obs::ScopedSpan span("execute");
  FLOCK_ASSIGN_OR_RETURN(TablePtr table, db_->GetTable(stmt.table_name));
  const Schema& schema = table->schema();

  // Resolve the target column order.
  std::vector<size_t> targets;
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < schema.num_columns(); ++i) targets.push_back(i);
  } else {
    for (const auto& name : stmt.columns) {
      auto idx = schema.FindColumn(name);
      if (!idx.has_value()) {
        return Status::NotFound("column not found: " + name + " in " +
                                stmt.table_name);
      }
      targets.push_back(*idx);
    }
  }

  RecordBatch staged(schema);
  if (stmt.select != nullptr) {
    FLOCK_ASSIGN_OR_RETURN(QueryResult sub,
                           ExecuteSelect(*stmt.select, nullptr));
    if (sub.batch.num_columns() != targets.size()) {
      return Status::InvalidArgument(
          "INSERT SELECT column count mismatch");
    }
    for (size_t r = 0; r < sub.batch.num_rows(); ++r) {
      std::vector<Value> row(schema.num_columns(), Value::Null());
      std::vector<Value> src = sub.batch.GetRow(r);
      for (size_t c = 0; c < targets.size(); ++c) {
        row[targets[c]] = src[c];
      }
      FLOCK_RETURN_NOT_OK(staged.AppendRow(row));
    }
  } else {
    for (const auto& value_row : stmt.rows) {
      if (value_row.size() != targets.size()) {
        return Status::InvalidArgument("INSERT VALUES arity mismatch");
      }
      std::vector<Value> row(schema.num_columns(), Value::Null());
      for (size_t c = 0; c < targets.size(); ++c) {
        FLOCK_ASSIGN_OR_RETURN(Value v, EvaluateConstant(*value_row[c],
                                                         &registry_));
        row[targets[c]] = std::move(v);
      }
      FLOCK_RETURN_NOT_OK(staged.AppendRow(row));
    }
  }
  FLOCK_RETURN_NOT_OK(table->AppendBatch(staged));
  QueryResult result;
  result.rows_affected = staged.num_rows();
  return result;
}

StatusOr<QueryResult> SqlEngine::ExecuteUpdate(const UpdateStatement& stmt) {
  obs::ScopedSpan span("execute");
  FLOCK_ASSIGN_OR_RETURN(TablePtr table, db_->GetTable(stmt.table_name));
  const Schema& schema = table->schema();
  RecordBatch snapshot = table->ScanAll();

  // Select target rows.
  std::vector<uint32_t> rows;
  if (stmt.where != nullptr) {
    ExprPtr predicate = stmt.where->Clone();
    FLOCK_RETURN_NOT_OK(BindDmlExpr(predicate.get(), schema));
    FLOCK_ASSIGN_OR_RETURN(rows, EvaluatePredicate(*predicate, snapshot,
                                                   &registry_));
  } else {
    rows.resize(snapshot.num_rows());
    for (size_t i = 0; i < rows.size(); ++i) {
      rows[i] = static_cast<uint32_t>(i);
    }
  }

  // Evaluate assignments over the selected rows.
  RecordBatch selected = snapshot.Select(rows);
  size_t affected = rows.size();
  for (const auto& [col_name, expr] : stmt.assignments) {
    auto idx = schema.FindColumn(col_name);
    if (!idx.has_value()) {
      return Status::NotFound("column not found: " + col_name);
    }
    ExprPtr bound = expr->Clone();
    FLOCK_RETURN_NOT_OK(BindDmlExpr(bound.get(), schema));
    FLOCK_ASSIGN_OR_RETURN(storage::ColumnVectorPtr values,
                           EvaluateExpr(*bound, selected, &registry_));
    std::vector<Value> boxed;
    boxed.reserve(values->size());
    for (size_t i = 0; i < values->size(); ++i) {
      boxed.push_back(values->GetValue(i));
    }
    FLOCK_RETURN_NOT_OK(table->UpdateColumn(*idx, rows, boxed));
  }
  QueryResult result;
  result.rows_affected = affected;
  return result;
}

StatusOr<QueryResult> SqlEngine::ExecuteDelete(const DeleteStatement& stmt) {
  obs::ScopedSpan span("execute");
  FLOCK_ASSIGN_OR_RETURN(TablePtr table, db_->GetTable(stmt.table_name));
  const Schema& schema = table->schema();
  std::vector<bool> keep(table->num_rows(), true);
  if (stmt.where != nullptr) {
    RecordBatch snapshot = table->ScanAll();
    ExprPtr predicate = stmt.where->Clone();
    FLOCK_RETURN_NOT_OK(BindDmlExpr(predicate.get(), schema));
    FLOCK_ASSIGN_OR_RETURN(
        std::vector<uint32_t> doomed,
        EvaluatePredicate(*predicate, snapshot, &registry_));
    for (uint32_t r : doomed) keep[r] = false;
  } else {
    std::fill(keep.begin(), keep.end(), false);
  }
  size_t removed = table->FilterInPlace(keep);
  QueryResult result;
  result.rows_affected = removed;
  return result;
}

}  // namespace flock::sql
