#ifndef FLOCK_SQL_FUNCTION_REGISTRY_H_
#define FLOCK_SQL_FUNCTION_REGISTRY_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status_or.h"
#include "storage/column_vector.h"

namespace flock::sql {

/// A vectorized scalar kernel: consumes evaluated argument columns (each of
/// `num_rows` entries) and produces one output column of `num_rows` entries.
using ScalarKernel = std::function<StatusOr<storage::ColumnVectorPtr>(
    const std::vector<storage::ColumnVectorPtr>& args, size_t num_rows)>;

/// Metadata + kernel for one scalar function.
struct ScalarFunction {
  ScalarKernel kernel;
  storage::DataType return_type = storage::DataType::kDouble;
  size_t min_args = 0;
  size_t max_args = 64;
  /// Model-scoring functions (the PREDICT family). The physical planner
  /// hoists calls to scoring functions out of scalar expressions into a
  /// dedicated PredictScore operator so they execute once per morsel,
  /// show up in EXPLAIN, and report their own OperatorMetrics.
  bool scoring = false;
};

/// Name -> scalar function table. The SQL engine pre-populates built-ins
/// (ABS, ROUND, SQRT, UPPER, ...); the Flock layer registers PREDICT and
/// model-specific UDFs here. This is the extension point that lets the core
/// engine stay ML-agnostic while supporting in-DBMS inference (paper §4.1).
class FunctionRegistry {
 public:
  FunctionRegistry() = default;

  /// Registers or replaces `name` (case-insensitive).
  void Register(const std::string& name, ScalarFunction fn);

  /// Looks up `name`; NotFound if missing.
  StatusOr<const ScalarFunction*> Lookup(const std::string& name) const;

  bool Contains(const std::string& name) const;

  /// True when `name` is registered with `scoring = true`.
  bool IsScoringFunction(const std::string& name) const;

  std::vector<std::string> ListFunctions() const;

  /// Installs the standard math/string built-ins into `registry`.
  static void RegisterBuiltins(FunctionRegistry* registry);

 private:
  std::map<std::string, ScalarFunction> functions_;  // upper-case keys
};

}  // namespace flock::sql

#endif  // FLOCK_SQL_FUNCTION_REGISTRY_H_
