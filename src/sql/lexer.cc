#include "sql/lexer.h"

#include <cctype>
#include <unordered_set>

#include "common/string_util.h"

namespace flock::sql {

namespace {

const std::unordered_set<std::string>& KeywordSet() {
  static const auto* kKeywords = new std::unordered_set<std::string>{
      "SELECT", "FROM",   "WHERE",    "GROUP",  "BY",      "HAVING",
      "ORDER",  "LIMIT",  "OFFSET",   "ASC",    "DESC",    "AS",
      "AND",    "OR",     "NOT",      "IN",     "BETWEEN", "LIKE",
      "IS",     "NULL",   "TRUE",     "FALSE",  "CASE",    "WHEN",
      "THEN",   "ELSE",   "END",      "CAST",   "JOIN",    "INNER",
      "LEFT",   "RIGHT",  "OUTER",    "ON",     "CROSS",   "INSERT",
      "INTO",   "VALUES", "UPDATE",   "SET",    "DELETE",  "CREATE",
      "TABLE",  "DROP",   "MODEL",    "DISTINCT", "EXPLAIN", "WITH",
      "UNION",  "ALL",    "EXISTS",   "PRIMARY", "KEY",    "USING",
      "RUNTIME", "PREDICT", "ANALYZE"};
  return *kKeywords;
}

}  // namespace

bool IsKeyword(const std::string& upper) {
  return KeywordSet().count(upper) > 0;
}

StatusOr<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comments.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    // Identifiers / keywords.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      std::string word = sql.substr(start, i - start);
      std::string upper = ToUpper(word);
      if (IsKeyword(upper)) {
        tok.type = TokenType::kKeyword;
        tok.text = upper;
      } else {
        tok.type = TokenType::kIdentifier;
        tok.text = word;
      }
      tokens.push_back(std::move(tok));
      continue;
    }
    // Quoted identifiers "name".
    if (c == '"') {
      size_t start = ++i;
      while (i < n && sql[i] != '"') ++i;
      if (i >= n) {
        return Status::ParseError("unterminated quoted identifier");
      }
      tok.type = TokenType::kIdentifier;
      tok.text = sql.substr(start, i - start);
      ++i;
      tokens.push_back(std::move(tok));
      continue;
    }
    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      bool has_dot = false;
      bool has_exp = false;
      while (i < n) {
        char d = sql[i];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          ++i;
        } else if (d == '.' && !has_dot && !has_exp) {
          has_dot = true;
          ++i;
        } else if ((d == 'e' || d == 'E') && !has_exp) {
          has_exp = true;
          ++i;
          if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
        } else {
          break;
        }
      }
      std::string num = sql.substr(start, i - start);
      tok.type = TokenType::kNumber;
      tok.text = num;
      try {
        tok.number = std::stod(num);
      } catch (...) {
        return Status::ParseError("bad numeric literal: " + num);
      }
      tok.is_integer = !has_dot && !has_exp;
      tokens.push_back(std::move(tok));
      continue;
    }
    // Strings.
    if (c == '\'') {
      ++i;
      std::string text;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {
            text.push_back('\'');
            i += 2;
            continue;
          }
          break;
        }
        text.push_back(sql[i]);
        ++i;
      }
      if (i >= n) return Status::ParseError("unterminated string literal");
      ++i;  // closing quote
      tok.type = TokenType::kString;
      tok.text = std::move(text);
      tokens.push_back(std::move(tok));
      continue;
    }
    // Operators & punctuation.
    auto push1 = [&](TokenType t) {
      tok.type = t;
      tok.text = std::string(1, c);
      ++i;
      tokens.push_back(tok);
    };
    switch (c) {
      case ',':
        push1(TokenType::kComma);
        break;
      case '(':
        push1(TokenType::kLParen);
        break;
      case ')':
        push1(TokenType::kRParen);
        break;
      case ';':
        push1(TokenType::kSemicolon);
        break;
      case '.':
        push1(TokenType::kDot);
        break;
      case '*':
        push1(TokenType::kStar);
        break;
      case '+':
        push1(TokenType::kPlus);
        break;
      case '-':
        push1(TokenType::kMinus);
        break;
      case '/':
        push1(TokenType::kSlash);
        break;
      case '%':
        push1(TokenType::kPercent);
        break;
      case '=':
        push1(TokenType::kEq);
        break;
      case '<':
        if (i + 1 < n && sql[i + 1] == '=') {
          tok.type = TokenType::kLtEq;
          tok.text = "<=";
          i += 2;
          tokens.push_back(tok);
        } else if (i + 1 < n && sql[i + 1] == '>') {
          tok.type = TokenType::kNotEq;
          tok.text = "<>";
          i += 2;
          tokens.push_back(tok);
        } else {
          push1(TokenType::kLt);
        }
        break;
      case '>':
        if (i + 1 < n && sql[i + 1] == '=') {
          tok.type = TokenType::kGtEq;
          tok.text = ">=";
          i += 2;
          tokens.push_back(tok);
        } else {
          push1(TokenType::kGt);
        }
        break;
      case '!':
        if (i + 1 < n && sql[i + 1] == '=') {
          tok.type = TokenType::kNotEq;
          tok.text = "!=";
          i += 2;
          tokens.push_back(tok);
        } else {
          return Status::ParseError("unexpected character '!' at offset " +
                                    std::to_string(i));
        }
        break;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(i));
    }
  }
  Token eof;
  eof.type = TokenType::kEof;
  eof.offset = n;
  tokens.push_back(eof);
  return tokens;
}

}  // namespace flock::sql
