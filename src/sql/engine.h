#ifndef FLOCK_SQL_ENGINE_H_
#define FLOCK_SQL_ENGINE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/status_or.h"
#include "common/thread_pool.h"
#include "obs/slow_log.h"
#include "obs/trace.h"
#include "sql/ast.h"
#include "sql/executor.h"
#include "sql/function_registry.h"
#include "sql/logical_plan.h"
#include "sql/optimizer.h"
#include "sql/physical_plan.h"
#include "sql/plan_cache.h"
#include "storage/database.h"

namespace flock::sql {

/// Result of one statement.
struct QueryResult {
  storage::RecordBatch batch;   // rows for SELECT / EXPLAIN text rendered
  size_t rows_affected = 0;     // for DML
  std::string plan_text;        // filled for EXPLAIN
  double elapsed_ms = 0.0;
  /// True when this execution reused an optimized plan from the plan
  /// cache (parse/plan/optimize skipped).
  bool from_plan_cache = false;
  /// Per-operator execution counters for the physical plan (pre-order;
  /// filled for SELECT and EXPLAIN ANALYZE). Empty for DML/DDL.
  std::vector<OperatorMetricsSnapshot> operator_metrics;
  /// Request span tree (pre-order), filled when the statement ran with
  /// tracing on (ExecOptions::trace or EXPLAIN ANALYZE). Empty otherwise.
  std::vector<obs::SpanSnapshot> trace;
  /// Stable 16-hex-digit digest of the executed physical plan shape
  /// (operator names + depths). Empty for DML/DDL.
  std::string plan_digest;
};

/// Per-call execution options (as opposed to the engine-wide
/// EngineOptions). Threaded from the serving layer down through
/// FlockEngine::Execute.
struct ExecOptions {
  /// Record a span tree for this statement into QueryResult::trace.
  bool trace = false;
  /// Cooperative deadline/kill token for this statement. Polled at
  /// executor morsel boundaries, inside scoring-kernel block loops and
  /// the micro-batch coalescer's waits; a fired token surfaces as
  /// Cancelled or DeadlineExceeded. Null (the default) = uncancellable.
  CancelToken cancel;
};

/// Stable digest of a physical plan's shape: a 16-hex-digit hash over
/// the pre-order operator names and depths. Two executions of the same
/// (optimized) statement produce the same digest regardless of row
/// counts, so the slow-query log can group outliers by plan.
std::string PlanDigest(
    const std::vector<OperatorMetricsSnapshot>& operator_metrics);

struct EngineOptions {
  /// Intra-query parallelism. 0 = hardware concurrency.
  size_t num_threads = 0;
  size_t morsel_size = storage::RecordBatch::kDefaultBatchSize;
  /// Built-in relational optimizations (folding, pushdown, pruning).
  bool enable_optimizer = true;
  /// Record every executed statement for lazy provenance capture.
  bool keep_query_log = true;
  /// Prepared-statement plan cache keyed on normalized SQL text: SELECT
  /// executions reuse the optimized logical plan, skipping
  /// parse/plan/optimize. Invalidated on any DDL. Bypassed while a
  /// statement observer is set (observers must see every parsed
  /// statement).
  bool enable_plan_cache = true;
  size_t plan_cache_capacity = 256;
  /// Skip table segments whose zone maps disprove a scan's pushed-down
  /// filter conjuncts. An execution-time decision (plans are identical
  /// either way), so cached plans stay valid across DML; off only for
  /// differential testing and ablation benchmarks.
  bool enable_zone_map_pruning = true;
  /// Statements slower than this are captured in the slow-query log
  /// (normalized SQL + plan digest + span tree). Negative disables.
  double slow_query_threshold_ms = 100.0;
  /// Ring-buffer capacity of the slow-query log.
  size_t slow_log_capacity = 64;
};

/// The SQL engine facade: parse -> plan -> optimize -> execute.
///
/// Extension points used by the Flock layer (all optional):
///  * `functions()` — register PREDICT and other ML UDFs;
///  * `set_plan_rewriter` — the SQLxML cross-optimizer hook, invoked after
///    built-in optimization and before execution;
///  * `set_model_ddl_handler` — CREATE/DROP MODEL delegation;
///  * `set_statement_observer` — eager provenance capture taps each
///    successfully executed statement.
class SqlEngine {
 public:
  using PlanRewriter = std::function<Status(PlanPtr*)>;
  using CreateModelHandler =
      std::function<Status(const CreateModelStatement&)>;
  using DropModelHandler = std::function<Status(const DropModelStatement&)>;
  using StatementObserver =
      std::function<void(const std::string& sql, const Statement& stmt)>;

  explicit SqlEngine(storage::Database* db, EngineOptions options = {});

  SqlEngine(const SqlEngine&) = delete;
  SqlEngine& operator=(const SqlEngine&) = delete;

  /// Parses and executes one statement.
  StatusOr<QueryResult> Execute(const std::string& sql,
                                const ExecOptions& exec_opts = {});

  /// Executes a ';'-separated script; returns the last statement's result.
  StatusOr<QueryResult> ExecuteScript(const std::string& sql);

  /// Plans (and binds) a SELECT without executing it.
  StatusOr<PlanPtr> PlanQuery(const SelectStatement& stmt);

  /// Runs the built-in optimizer, then the plan rewriter if set.
  Status OptimizePlan(PlanPtr* plan);

  /// Executes a bound plan (lowers to a physical plan internally).
  StatusOr<storage::RecordBatch> ExecutePlan(const LogicalPlan& plan,
                                             const CancelToken& cancel = {});

  /// Executes an already-lowered physical plan; metrics accumulate into
  /// the operator tree.
  StatusOr<storage::RecordBatch> ExecutePhysical(
      PhysicalOperator* root, const CancelToken& cancel = {});

  storage::Database* database() { return db_; }
  FunctionRegistry* functions() { return &registry_; }
  const FunctionRegistry* functions() const { return &registry_; }
  PlanCache* plan_cache() { return &plan_cache_; }
  const PlanCache* plan_cache() const { return &plan_cache_; }
  obs::SlowQueryLog* slow_log() { return &slow_log_; }
  const obs::SlowQueryLog* slow_log() const { return &slow_log_; }
  ThreadPool* thread_pool() { return pool_.get(); }
  const EngineOptions& options() const { return options_; }
  void set_num_threads(size_t n) { options_.num_threads = n; }
  void set_enable_optimizer(bool on) { options_.enable_optimizer = on; }

  /// Engine-lifetime totals of segments read/skipped by table scans,
  /// accumulated after each SELECT / EXPLAIN ANALYZE; exported through
  /// the obs metrics registry as storage.segments_{scanned,pruned}.
  uint64_t segments_scanned_total() const {
    return segments_scanned_total_.load(std::memory_order_relaxed);
  }
  uint64_t segments_pruned_total() const {
    return segments_pruned_total_.load(std::memory_order_relaxed);
  }

  void set_plan_rewriter(PlanRewriter rewriter) {
    plan_rewriter_ = std::move(rewriter);
  }
  void set_model_ddl_handler(CreateModelHandler create,
                             DropModelHandler drop) {
    create_model_handler_ = std::move(create);
    drop_model_handler_ = std::move(drop);
  }
  void set_statement_observer(StatementObserver observer) {
    statement_observer_ = std::move(observer);
  }

  /// Not synchronized with concurrent Execute calls; read only while the
  /// engine is quiescent (tests, provenance capture).
  const std::vector<std::string>& query_log() const { return query_log_; }
  void ClearQueryLog() {
    std::lock_guard<std::mutex> lock(query_log_mu_);
    query_log_.clear();
  }

 private:
  /// `cache_key` is the normalized SQL text to cache an optimized SELECT
  /// plan under, or nullptr to skip caching (scripts, subqueries).
  StatusOr<QueryResult> ExecuteStatement(const std::string& sql,
                                         const Statement& stmt,
                                         const std::string* cache_key,
                                         const CancelToken& cancel = {});
  StatusOr<QueryResult> ExecuteSelect(const SelectStatement& stmt,
                                      const std::string* cache_key,
                                      const CancelToken& cancel = {});
  StatusOr<QueryResult> ExecuteInsert(const InsertStatement& stmt);
  StatusOr<QueryResult> ExecuteUpdate(const UpdateStatement& stmt);
  StatusOr<QueryResult> ExecuteDelete(const DeleteStatement& stmt);

  StatusOr<QueryResult> ExecuteCachedPlan(const LogicalPlan& plan,
                                          const CancelToken& cancel);
  void AppendQueryLog(const std::string& sql);
  /// Folds scan segment counters from one statement's operator metrics
  /// into the engine-lifetime totals.
  void AccumulateScanMetrics(
      const std::vector<OperatorMetricsSnapshot>& snapshots);
  /// Captures `result` in the slow-query log when it crossed the
  /// threshold. `normalized` is the already-normalized SQL when the plan
  /// cache computed it, else null (normalization happens lazily then).
  void MaybeRecordSlowQuery(const QueryResult& result,
                            const std::string& sql,
                            const std::string* normalized);

  storage::Database* db_;
  EngineOptions options_;
  FunctionRegistry registry_;
  std::unique_ptr<ThreadPool> pool_;
  PlanCache plan_cache_;
  obs::SlowQueryLog slow_log_;
  std::mutex query_log_mu_;
  std::vector<std::string> query_log_;
  std::atomic<uint64_t> segments_scanned_total_{0};
  std::atomic<uint64_t> segments_pruned_total_{0};

  PlanRewriter plan_rewriter_;
  CreateModelHandler create_model_handler_;
  DropModelHandler drop_model_handler_;
  StatementObserver statement_observer_;
};

}  // namespace flock::sql

#endif  // FLOCK_SQL_ENGINE_H_
