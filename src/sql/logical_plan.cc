#include "sql/logical_plan.h"

#include <sstream>

namespace flock::sql {

PlanPtr LogicalPlan::Clone() const {
  auto out = std::make_unique<LogicalPlan>();
  out->kind = kind;
  out->table_name = table_name;
  out->table = table;
  out->projection = projection;
  out->predicate = predicate ? predicate->Clone() : nullptr;
  out->exprs.reserve(exprs.size());
  for (const auto& e : exprs) out->exprs.push_back(e->Clone());
  out->names = names;
  out->join_type = join_type;
  out->join_condition = join_condition ? join_condition->Clone() : nullptr;
  out->group_by.reserve(group_by.size());
  for (const auto& e : group_by) out->group_by.push_back(e->Clone());
  out->aggregates.reserve(aggregates.size());
  for (const auto& e : aggregates) out->aggregates.push_back(e->Clone());
  out->agg_names = agg_names;
  out->sort_keys.reserve(sort_keys.size());
  for (const auto& k : sort_keys) {
    out->sort_keys.push_back(SortKey{k.expr->Clone(), k.ascending});
  }
  out->limit = limit;
  out->offset = offset;
  out->output_schema = output_schema;
  out->children.reserve(children.size());
  for (const auto& c : children) out->children.push_back(c->Clone());
  return out;
}

std::string LogicalPlan::ToString(int indent) const {
  std::ostringstream out;
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  out << pad;
  switch (kind) {
    case PlanKind::kScan:
      out << "Scan(" << table_name;
      if (!projection.empty()) {
        out << " cols=[";
        for (size_t i = 0; i < projection.size(); ++i) {
          if (i > 0) out << ",";
          out << table->schema().column(projection[i]).name;
        }
        out << "]";
      }
      out << ")";
      break;
    case PlanKind::kFilter:
      out << "Filter(" << predicate->ToString() << ")";
      break;
    case PlanKind::kProject: {
      out << "Project(";
      for (size_t i = 0; i < exprs.size(); ++i) {
        if (i > 0) out << ", ";
        out << exprs[i]->ToString();
        if (!names[i].empty()) out << " AS " << names[i];
      }
      out << ")";
      break;
    }
    case PlanKind::kJoin:
      out << (join_type == JoinType::kLeft
                  ? "LeftJoin"
                  : (join_type == JoinType::kCross ? "CrossJoin"
                                                   : "InnerJoin"));
      if (join_condition) out << "(" << join_condition->ToString() << ")";
      break;
    case PlanKind::kAggregate: {
      out << "Aggregate(groups=[";
      for (size_t i = 0; i < group_by.size(); ++i) {
        if (i > 0) out << ", ";
        out << group_by[i]->ToString();
      }
      out << "], aggs=[";
      for (size_t i = 0; i < aggregates.size(); ++i) {
        if (i > 0) out << ", ";
        out << aggregates[i]->ToString();
      }
      out << "])";
      break;
    }
    case PlanKind::kSort: {
      out << "Sort(";
      for (size_t i = 0; i < sort_keys.size(); ++i) {
        if (i > 0) out << ", ";
        out << sort_keys[i].expr->ToString()
            << (sort_keys[i].ascending ? " ASC" : " DESC");
      }
      out << ")";
      break;
    }
    case PlanKind::kLimit:
      out << "Limit(" << limit;
      if (offset > 0) out << " OFFSET " << offset;
      out << ")";
      break;
    case PlanKind::kDistinct:
      out << "Distinct";
      break;
  }
  out << "\n";
  for (const auto& c : children) out << c->ToString(indent + 1);
  return out.str();
}

PlanPtr LogicalPlan::MakeScan(std::string table_name,
                              storage::TablePtr table) {
  auto plan = std::make_unique<LogicalPlan>();
  plan->kind = PlanKind::kScan;
  plan->table_name = std::move(table_name);
  plan->output_schema = table->schema();
  plan->table = std::move(table);
  return plan;
}

PlanPtr LogicalPlan::MakeFilter(PlanPtr child, ExprPtr predicate) {
  auto plan = std::make_unique<LogicalPlan>();
  plan->kind = PlanKind::kFilter;
  plan->predicate = std::move(predicate);
  plan->output_schema = child->output_schema;
  plan->children.push_back(std::move(child));
  return plan;
}

PlanPtr LogicalPlan::MakeProject(PlanPtr child, std::vector<ExprPtr> exprs,
                                 std::vector<std::string> names) {
  auto plan = std::make_unique<LogicalPlan>();
  plan->kind = PlanKind::kProject;
  plan->exprs = std::move(exprs);
  plan->names = std::move(names);
  plan->children.push_back(std::move(child));
  return plan;
}

PlanPtr LogicalPlan::MakeLimit(PlanPtr child, int64_t limit, int64_t offset) {
  auto plan = std::make_unique<LogicalPlan>();
  plan->kind = PlanKind::kLimit;
  plan->limit = limit;
  plan->offset = offset;
  plan->output_schema = child->output_schema;
  plan->children.push_back(std::move(child));
  return plan;
}

}  // namespace flock::sql
