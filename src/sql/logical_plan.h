#ifndef FLOCK_SQL_LOGICAL_PLAN_H_
#define FLOCK_SQL_LOGICAL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "sql/ast.h"
#include "storage/table.h"

namespace flock::sql {

enum class PlanKind {
  kScan,
  kFilter,
  kProject,
  kJoin,
  kAggregate,
  kSort,
  kLimit,
  kDistinct,
};

struct SortKey {
  ExprPtr expr;
  bool ascending = true;
};

struct LogicalPlan;
using PlanPtr = std::unique_ptr<LogicalPlan>;

/// A logical/physical hybrid plan node (the engine interprets these
/// directly). Expressions inside a node are bound against the node's child
/// output schema (for kScan, against the table schema narrowed by
/// `projection`).
///
/// Like Expr, this is one open struct so that rewrite passes — the built-in
/// optimizer and Flock's SQLxML cross-optimizer — can pattern-match and
/// restructure plans without visitor machinery.
struct LogicalPlan {
  PlanKind kind = PlanKind::kScan;

  // kScan
  std::string table_name;
  storage::TablePtr table;            // resolved by the planner
  std::vector<size_t> projection;     // column subset (empty = all)

  // kFilter
  ExprPtr predicate;

  // kProject
  std::vector<ExprPtr> exprs;
  std::vector<std::string> names;

  // kJoin
  JoinType join_type = JoinType::kInner;
  ExprPtr join_condition;             // bound against concat(left, right)

  // kAggregate
  std::vector<ExprPtr> group_by;
  std::vector<ExprPtr> aggregates;    // COUNT/SUM/AVG/MIN/MAX calls
  std::vector<std::string> agg_names;

  // kSort
  std::vector<SortKey> sort_keys;

  // kLimit
  int64_t limit = -1;                  // -1 = unbounded
  int64_t offset = 0;

  storage::Schema output_schema;
  std::vector<PlanPtr> children;

  PlanPtr Clone() const;

  /// Indented EXPLAIN rendering.
  std::string ToString(int indent = 0) const;

  static PlanPtr MakeScan(std::string table_name, storage::TablePtr table);
  static PlanPtr MakeFilter(PlanPtr child, ExprPtr predicate);
  static PlanPtr MakeProject(PlanPtr child, std::vector<ExprPtr> exprs,
                             std::vector<std::string> names);
  static PlanPtr MakeLimit(PlanPtr child, int64_t limit, int64_t offset);
};

}  // namespace flock::sql

#endif  // FLOCK_SQL_LOGICAL_PLAN_H_
