#ifndef FLOCK_SQL_PHYSICAL_PLAN_H_
#define FLOCK_SQL_PHYSICAL_PLAN_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/cancel.h"
#include "common/status_or.h"
#include "common/thread_pool.h"
#include "sql/ast.h"
#include "sql/function_registry.h"
#include "sql/logical_plan.h"
#include "storage/record_batch.h"
#include "storage/table.h"

namespace flock::sql {

/// Shared read-only state for one physical-plan execution.
struct ExecContext {
  const FunctionRegistry* registry = nullptr;
  ThreadPool* pool = nullptr;  // may be null (serial execution)
  size_t num_threads = 1;
  size_t morsel_size = storage::RecordBatch::kDefaultBatchSize;
  /// The request's cancellation token. Operators whose per-morsel work is
  /// unbounded in the morsel size (nested-loop join: morsel x entire
  /// right side) must poll it inside their row loops; everything else is
  /// covered by the executor's per-morsel check.
  CancelToken cancel;
};

/// Per-operator execution counters, accumulated across all worker threads
/// (wall time is therefore cumulative thread time, like EXPLAIN ANALYZE's
/// "actual time" summed over parallel workers).
struct OperatorMetrics {
  std::atomic<uint64_t> rows_in{0};
  std::atomic<uint64_t> rows_out{0};
  std::atomic<uint64_t> nanos{0};
  // Scan-only: segments read vs skipped by zone-map pruning.
  std::atomic<uint64_t> segments_scanned{0};
  std::atomic<uint64_t> segments_pruned{0};

  void Record(uint64_t in, uint64_t out, uint64_t ns) {
    rows_in.fetch_add(in, std::memory_order_relaxed);
    rows_out.fetch_add(out, std::memory_order_relaxed);
    nanos.fetch_add(ns, std::memory_order_relaxed);
  }
  void RecordSegments(uint64_t scanned, uint64_t pruned) {
    segments_scanned.fetch_add(scanned, std::memory_order_relaxed);
    segments_pruned.fetch_add(pruned, std::memory_order_relaxed);
  }
  void Reset() {
    rows_in.store(0, std::memory_order_relaxed);
    rows_out.store(0, std::memory_order_relaxed);
    nanos.store(0, std::memory_order_relaxed);
    segments_scanned.store(0, std::memory_order_relaxed);
    segments_pruned.store(0, std::memory_order_relaxed);
  }
  double millis() const {
    return static_cast<double>(nanos.load(std::memory_order_relaxed)) / 1e6;
  }
};

/// A flattened, copyable view of one operator's metrics, in plan order
/// (pre-order; `depth` reconstructs the tree shape). Surfaced through
/// QueryResult for EXPLAIN ANALYZE and per-operator bench breakdowns.
struct OperatorMetricsSnapshot {
  std::string name;  // operator label, e.g. "HashJoinProbe(keys=1)"
  int depth = 0;
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  double wall_ms = 0.0;
  uint64_t segments_scanned = 0;  // scans only
  uint64_t segments_pruned = 0;   // scans only
};

class PhysicalOperator;
using PhysicalOperatorPtr = std::unique_ptr<PhysicalOperator>;

/// One node of the executable plan. The PhysicalPlanner lowers every
/// LogicalPlan into a tree of these; the Executor drives them as
/// morsel-parallel push pipelines.
///
/// Streaming operators (Filter, Project, PredictScore, HashJoinProbe,
/// NestedLoopJoin) transform one morsel at a time via ProcessMorsel and
/// carry no cross-morsel state, so the pipeline driver can run them on any
/// worker. Pipeline breakers (HashJoinBuild, HashAggregate, Sort, Distinct,
/// Limit) are materialized by the Executor.
class PhysicalOperator {
 public:
  enum class Kind {
    kTableScan,
    kFilter,
    kProject,
    kPredictScore,
    kHashJoinBuild,
    kHashJoinProbe,
    kNestedLoopJoin,
    kHashAggregate,
    kSort,
    kDistinct,
    kLimit,
  };

  PhysicalOperator(Kind kind, storage::Schema schema)
      : kind_(kind), output_schema_(std::move(schema)) {}
  virtual ~PhysicalOperator() = default;

  PhysicalOperator(const PhysicalOperator&) = delete;
  PhysicalOperator& operator=(const PhysicalOperator&) = delete;

  Kind kind() const { return kind_; }
  const storage::Schema& output_schema() const { return output_schema_; }

  /// Operator name + salient parameters, e.g. "Filter(salary > 100)".
  virtual std::string label() const = 0;

  /// True for operators that transform morsels without cross-morsel state.
  virtual bool IsStreaming() const { return false; }

  /// Streaming operators that read raw columns (rather than evaluating
  /// expressions) need their input selection resolved first.
  virtual bool NeedsDenseInput() const { return false; }

  /// Transforms one morsel. Only called when IsStreaming().
  virtual StatusOr<storage::RecordBatch> ProcessMorsel(
      const ExecContext& ctx, storage::RecordBatch input);

  /// Indented rendering; with `analyze`, appends per-operator metrics.
  std::string ToString(int indent = 0, bool analyze = false) const;

  /// Pre-order flatten of the subtree's metrics.
  void CollectMetrics(std::vector<OperatorMetricsSnapshot>* out,
                      int depth = 0) const;

  void ResetMetrics();

  std::vector<PhysicalOperatorPtr> children;
  mutable OperatorMetrics metrics;

 private:
  Kind kind_;
  storage::Schema output_schema_;
};

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// One conjunct of a scan's pushed-down predicate, pre-resolved against
/// *table* column indexes so zone-map checks are just numeric compares at
/// execution time. Pruning is conservative: a conjunct that cannot rule a
/// segment out leaves it scanned, and the Filter operator above still
/// evaluates the full predicate — so attaching conjuncts is strictly an
/// optimization and cached plans stay correct across DML.
struct ScanPruneConjunct {
  enum class Kind { kCompare, kIsNull, kIsNotNull };
  Kind kind = Kind::kCompare;
  size_t table_column = 0;
  BinaryOp op = BinaryOp::kEq;  // kCompare only: col OP literal
  double literal = 0.0;         // kCompare only
};

class TableScanOp : public PhysicalOperator {
 public:
  TableScanOp(std::string table_name, storage::TablePtr table,
              std::vector<size_t> projection, storage::Schema schema)
      : PhysicalOperator(Kind::kTableScan, std::move(schema)),
        table_name(std::move(table_name)),
        table(std::move(table)),
        projection(std::move(projection)) {}

  std::string label() const override;

  /// Zero-copy view of rows [begin, end) of segment `segment`, narrowed to
  /// `projection`. The batch shares the segment's column vectors and must
  /// not outlive the statement (see storage::Table).
  storage::RecordBatch ScanMorsel(size_t segment, size_t begin,
                                  size_t end) const;

  /// True when the segment's zone maps prove no row can satisfy the
  /// pushed-down conjuncts. Evaluated per execution against live stats.
  bool CanSkipSegment(size_t segment) const;

  std::string table_name;
  storage::TablePtr table;
  std::vector<size_t> projection;  // empty = all columns
  /// Filled by the planner from the parent Filter's predicate; consulted
  /// by the executor when zone-map pruning is enabled.
  std::vector<ScanPruneConjunct> prune_conjuncts;
};

// ---------------------------------------------------------------------------
// Streaming operators
// ---------------------------------------------------------------------------

class FilterOp : public PhysicalOperator {
 public:
  FilterOp(PhysicalOperatorPtr child, ExprPtr predicate);

  std::string label() const override;
  bool IsStreaming() const override { return true; }
  StatusOr<storage::RecordBatch> ProcessMorsel(
      const ExecContext& ctx, storage::RecordBatch input) override;

  ExprPtr predicate;
};

class ProjectOp : public PhysicalOperator {
 public:
  ProjectOp(PhysicalOperatorPtr child, std::vector<ExprPtr> exprs,
            storage::Schema schema);

  std::string label() const override;
  bool IsStreaming() const override { return true; }
  StatusOr<storage::RecordBatch> ProcessMorsel(
      const ExecContext& ctx, storage::RecordBatch input) override;

  std::vector<ExprPtr> exprs;

 private:
  /// Set when every expression is a bound column reference of matching
  /// type: the projection is then a zero-copy column shuffle that
  /// preserves selection vectors.
  std::vector<size_t> passthrough_;
  bool is_passthrough_ = false;
};

/// In-DBMS inference as a first-class operator (paper §4.1): evaluates one
/// or more PREDICT-family calls once per morsel and appends their scores as
/// extra columns, which the parent Filter/Project/Aggregate references.
/// Hoisting scoring out of scalar-expression evaluation gives it its own
/// EXPLAIN line and OperatorMetrics, and keeps threshold push-up intact
/// (PREDICT_GT & friends are just calls with a bool output column).
class PredictScoreOp : public PhysicalOperator {
 public:
  PredictScoreOp(PhysicalOperatorPtr child, std::vector<ExprPtr> calls,
                 storage::Schema schema);

  std::string label() const override;
  bool IsStreaming() const override { return true; }
  bool NeedsDenseInput() const override { return true; }
  StatusOr<storage::RecordBatch> ProcessMorsel(
      const ExecContext& ctx, storage::RecordBatch input) override;

  std::vector<ExprPtr> calls;  // PREDICT-family function calls
};

// ---------------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------------

/// The hash table shared (read-only) by all probe workers.
struct JoinHashTable {
  std::unordered_map<std::string, std::vector<uint32_t>> index;
  storage::RecordBatch rows;  // dense materialized build side
};

/// Build side of a hash join: a pipeline breaker that materializes its
/// child and indexes it by the join keys. Executed once by the Executor
/// before the probe pipeline starts.
class HashJoinBuildOp : public PhysicalOperator {
 public:
  HashJoinBuildOp(PhysicalOperatorPtr child, std::vector<ExprPtr> keys);

  std::string label() const override;

  std::vector<ExprPtr> keys;  // bound against the build child's schema
  std::shared_ptr<const JoinHashTable> table;  // set by the Executor
};

/// Probe side of a hash join: a streaming operator, so probes run
/// morsel-parallel against the shared read-only hash table — this is what
/// extends "automatic parallelization" past scan pipelines to joins.
/// children[0] = probe input, children[1] = HashJoinBuildOp.
class HashJoinProbeOp : public PhysicalOperator {
 public:
  HashJoinProbeOp(PhysicalOperatorPtr probe, PhysicalOperatorPtr build,
                  std::vector<ExprPtr> keys, std::vector<ExprPtr> residual,
                  JoinType join_type, storage::Schema schema);

  std::string label() const override;
  bool IsStreaming() const override { return true; }
  bool NeedsDenseInput() const override { return true; }
  StatusOr<storage::RecordBatch> ProcessMorsel(
      const ExecContext& ctx, storage::RecordBatch input) override;

  HashJoinBuildOp* build() {
    return static_cast<HashJoinBuildOp*>(children[1].get());
  }

  std::vector<ExprPtr> keys;      // bound against the probe child's schema
  std::vector<ExprPtr> residual;  // bound against probe ++ build schema
  JoinType join_type = JoinType::kInner;
};

/// Cross join / non-equi join: streams probe-side morsels against the
/// materialized right side. children[0] = left input, children[1] = right
/// input (materialized by the Executor into `right_rows`).
class NestedLoopJoinOp : public PhysicalOperator {
 public:
  NestedLoopJoinOp(PhysicalOperatorPtr left, PhysicalOperatorPtr right,
                   ExprPtr condition, JoinType join_type,
                   storage::Schema schema);

  std::string label() const override;
  bool IsStreaming() const override { return true; }
  bool NeedsDenseInput() const override { return true; }
  StatusOr<storage::RecordBatch> ProcessMorsel(
      const ExecContext& ctx, storage::RecordBatch input) override;

  ExprPtr condition;  // may be null (cross join)
  JoinType join_type = JoinType::kCross;
  std::shared_ptr<const storage::RecordBatch> right_rows;  // set by Executor
};

// ---------------------------------------------------------------------------
// Pipeline breakers
// ---------------------------------------------------------------------------

/// Grouped aggregation. The Executor runs the child pipeline with
/// thread-local hash states merged at pipeline end (deterministically, in
/// task order), so aggregation scales with the thread pool.
class HashAggregateOp : public PhysicalOperator {
 public:
  HashAggregateOp(PhysicalOperatorPtr child, std::vector<ExprPtr> group_by,
                  std::vector<ExprPtr> aggregates, storage::Schema schema);

  std::string label() const override;

  std::vector<ExprPtr> group_by;
  std::vector<ExprPtr> aggregates;  // COUNT/SUM/AVG/MIN/MAX calls
};

class SortOp : public PhysicalOperator {
 public:
  SortOp(PhysicalOperatorPtr child, std::vector<SortKey> keys);

  std::string label() const override;

  std::vector<SortKey> keys;
};

class DistinctOp : public PhysicalOperator {
 public:
  explicit DistinctOp(PhysicalOperatorPtr child);

  std::string label() const override;
};

class LimitOp : public PhysicalOperator {
 public:
  LimitOp(PhysicalOperatorPtr child, int64_t limit, int64_t offset);

  std::string label() const override;

  int64_t limit = -1;  // -1 = unbounded
  int64_t offset = 0;
};

/// Serializes row `r` of `cols` into a byte-key for hash tables (join keys,
/// group keys, DISTINCT). Shared by the executor and operator kernels.
void AppendRowKey(const std::vector<storage::ColumnVectorPtr>& cols,
                  size_t r, std::string* key);

}  // namespace flock::sql

#endif  // FLOCK_SQL_PHYSICAL_PLAN_H_
